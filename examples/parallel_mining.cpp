// Runs all five parallel formulations (CD, DD, DD+comm, IDD, HD) over the
// same synthetic workload, verifies they find identical frequent itemsets,
// and contrasts their exact work/traffic profiles plus the modeled
// response time on the paper's Cray T3E.
//
//   $ ./parallel_mining [num_ranks] [num_transactions]
//   $ ./parallel_mining 8 20000

#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "pam/datagen/quest_gen.h"
#include "pam/model/cost_model.h"
#include "pam/parallel/driver.h"

namespace {

std::map<std::vector<pam::Item>, pam::Count> Flatten(
    const pam::FrequentItemsets& fi) {
  std::map<std::vector<pam::Item>, pam::Count> out;
  for (const auto& level : fi.levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      pam::ItemSpan s = level.Get(i);
      out[std::vector<pam::Item>(s.begin(), s.end())] = level.count(i);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::size_t num_transactions =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 8000;

  pam::QuestConfig quest;
  quest.num_transactions = num_transactions;
  quest.num_items = 300;
  quest.avg_transaction_len = 10;
  quest.avg_pattern_len = 4;
  quest.num_patterns = 150;
  quest.seed = 11;
  pam::TransactionDatabase db = pam::GenerateQuest(quest);

  pam::ParallelConfig config;
  config.apriori.minsup_fraction = 0.005;
  config.hd_threshold_m = 500;

  const pam::CostModel model(pam::MachineModel::CrayT3E());
  const pam::Algorithm algorithms[] = {
      pam::Algorithm::kCD,  pam::Algorithm::kDD, pam::Algorithm::kDDComm,
      pam::Algorithm::kIDD, pam::Algorithm::kHD, pam::Algorithm::kHPA};

  std::printf(
      "Mining %zu transactions on %d logical processors "
      "(0.5%% minimum support)\n\n",
      db.size(), num_ranks);
  std::printf("%-8s %10s %14s %14s %14s %12s %14s\n", "algo", "frequent",
              "leaf visits", "data MB", "reduce words", "imbalance",
              "T3E model (s)");

  std::map<std::vector<pam::Item>, pam::Count> reference;
  for (pam::Algorithm alg : algorithms) {
    pam::ParallelResult result =
        pam::MineParallel(alg, db, num_ranks, config);

    if (reference.empty()) {
      reference = Flatten(result.frequent);
    } else if (Flatten(result.frequent) != reference) {
      std::printf("ERROR: %s diverged from CD's frequent itemsets!\n",
                  pam::AlgorithmName(alg).c_str());
      return 1;
    }

    std::uint64_t leaf_visits = 0;
    std::uint64_t data_bytes = 0;
    std::uint64_t reduce_words = 0;
    double heaviest_work = -1.0;
    double heaviest_imbalance = 1.0;  // imbalance of the heaviest pass
    for (int pass = 0; pass < result.metrics.num_passes(); ++pass) {
      leaf_visits += result.metrics.TotalLeafVisits(pass);
      data_bytes += result.metrics.TotalDataBytes(pass);
      for (const pam::PassMetrics& m :
           result.metrics.per_pass[static_cast<std::size_t>(pass)]) {
        reduce_words += m.reduction_words;
      }
      const pam::LoadSummary balance =
          result.metrics.SubsetWorkBalance(pass);
      if (balance.total > heaviest_work) {
        heaviest_work = balance.total;
        heaviest_imbalance = balance.imbalance;
      }
    }
    std::printf("%-8s %10zu %14llu %14.2f %14llu %11.1f%% %14.3f\n",
                pam::AlgorithmName(alg).c_str(),
                result.frequent.TotalCount(),
                static_cast<unsigned long long>(leaf_visits),
                static_cast<double>(data_bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(reduce_words),
                (heaviest_imbalance - 1.0) * 100.0,
                model.RunTime(alg, result.metrics));
  }
  std::printf(
      "\nAll six formulations produced identical frequent itemsets.\n");
  return 0;
}
