// A miniature of the paper's Figure 10 scaleup experiment: keep the
// transactions-per-processor constant, sweep the processor count, and
// report the modeled Cray T3E response time of each formulation. DD's
// curve climbs steeply, DD+comm and IDD grow moderately, CD and HD stay
// nearly flat with HD edging out CD at scale — the paper's headline plot.
//
//   $ ./cluster_scaleup [tx_per_rank]
//   $ ./cluster_scaleup 2000

#include <cstdio>
#include <cstdlib>

#include "pam/datagen/quest_gen.h"
#include "pam/model/cost_model.h"
#include "pam/parallel/driver.h"

int main(int argc, char** argv) {
  const std::size_t tx_per_rank =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1000;

  const pam::CostModel model(pam::MachineModel::CrayT3E());
  const pam::Algorithm algorithms[] = {
      pam::Algorithm::kCD, pam::Algorithm::kDD, pam::Algorithm::kDDComm,
      pam::Algorithm::kIDD, pam::Algorithm::kHD};

  std::printf("Scaleup with %zu transactions per processor (modeled T3E "
              "seconds per run)\n\n",
              tx_per_rank);
  std::printf("%6s %10s %10s %10s %10s %10s\n", "P", "CD", "DD", "DD+comm",
              "IDD", "HD");

  for (int p : {2, 4, 8, 16}) {
    // A concentrated pattern pool keeps the candidate count small
    // relative to N at example scale — the regime of the paper's scaleup
    // runs (see EXPERIMENTS.md on Figure 10).
    pam::QuestConfig quest;
    quest.num_transactions = tx_per_rank * static_cast<std::size_t>(p);
    quest.num_items = 1000;
    quest.avg_transaction_len = 15;
    quest.avg_pattern_len = 6;
    quest.num_patterns = 40;
    quest.seed = 3;
    pam::TransactionDatabase db = pam::GenerateQuest(quest);

    pam::ParallelConfig config;
    config.apriori.minsup_fraction = 0.02;
    config.apriori.tree = pam::HashTreeConfig::TunedFor(8000, 2, 8);
    config.hd_threshold_m = 2000;

    std::printf("%6d", p);
    for (pam::Algorithm alg : algorithms) {
      pam::ParallelResult result = pam::MineParallel(alg, db, p, config);
      std::printf(" %10.3f", model.RunTime(alg, result.metrics));
    }
    std::printf("\n");
  }
  std::printf("\nCD/HD flat = linear scaleup; DD's growth is the "
              "redundant work + contention the paper eliminates.\n");
  return 0;
}
