// The paper's conclusion scenario (Section VI): "when all the data is
// coming from a database server or a single file system, one processor
// can read data from the single source and pass the data along the
// communication pipeline defined in the algorithm."
//
// This example stages the whole database on rank 0 (the "server"), mines
// frequent itemsets with single-source IDD (rank 0 feeds the Figure-6
// ring; no other rank ever touches the source), then generates the
// association rules in parallel and verifies both against a serial run.
//
//   $ ./database_server [num_ranks] [num_transactions]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "pam/core/rulegen.h"
#include "pam/core/serial_apriori.h"
#include "pam/datagen/quest_gen.h"
#include "pam/mp/runtime.h"
#include "pam/parallel/driver.h"
#include "pam/parallel/rulegen_parallel.h"

int main(int argc, char** argv) {
  const int num_ranks = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::size_t num_transactions =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 5000;

  pam::QuestConfig quest;
  quest.num_transactions = num_transactions;
  quest.num_items = 250;
  quest.avg_transaction_len = 9;
  quest.avg_pattern_len = 4;
  quest.num_patterns = 120;
  quest.seed = 23;
  pam::TransactionDatabase db = pam::GenerateQuest(quest);
  std::printf("database server holds %zu transactions (%.2f avg items)\n",
              db.size(), db.AverageLength());

  // Step 1: single-source IDD — only rank 0 reads the database.
  pam::ParallelConfig config;
  config.apriori.minsup_fraction = 0.008;
  config.single_source = true;
  pam::ParallelResult mined =
      pam::MineParallel(pam::Algorithm::kIDD, db, num_ranks, config);
  std::printf("single-source IDD on %d ranks: %zu frequent itemsets "
              "(largest size %d)\n",
              num_ranks, mined.frequent.TotalCount(),
              mined.frequent.MaxK());

  std::uint64_t ring_bytes = 0;
  for (int pass = 0; pass < mined.metrics.num_passes(); ++pass) {
    ring_bytes += mined.metrics.TotalDataBytes(pass);
  }
  std::printf("ring pipeline moved %.2f MB in total\n",
              static_cast<double>(ring_bytes) / 1048576.0);

  // Step 2: parallel rule generation over the mined itemsets.
  const double min_confidence = 0.75;
  std::vector<pam::Rule> rules;
  pam::Runtime runtime(num_ranks);
  runtime.Run([&](pam::Comm& comm) {
    std::vector<pam::Rule> mine = pam::GenerateRulesParallel(
        comm, mined.frequent, db.size(), min_confidence);
    if (comm.rank() == 0) rules = std::move(mine);
  });
  std::printf("parallel rule generation: %zu rules at %.0f%% confidence\n",
              rules.size(), min_confidence * 100.0);
  for (std::size_t i = 0; i < rules.size() && i < 5; ++i) {
    std::printf("  %s\n", rules[i].ToString().c_str());
  }

  // Verify against a fully serial pipeline.
  pam::SerialResult serial = pam::MineSerial(db, config.apriori);
  std::vector<pam::Rule> serial_rules =
      pam::GenerateRules(serial.frequent, db.size(), min_confidence);
  const bool same_counts =
      serial.frequent.TotalCount() == mined.frequent.TotalCount() &&
      serial_rules.size() == rules.size();
  std::printf("serial cross-check: %s (%zu itemsets, %zu rules)\n",
              same_counts ? "MATCH" : "MISMATCH",
              serial.frequent.TotalCount(), serial_rules.size());
  return same_counts ? 0 : 1;
}
