// Quickstart: mine association rules from the paper's Table I supermarket
// database with the serial Apriori miner.
//
//   $ ./quickstart
//
// Reproduces the running example of Section II: sigma(Diaper, Milk) = 3,
// sigma(Diaper, Milk, Beer) = 2, and the rule {Diaper, Milk} => {Beer}
// with support 40% and confidence 66%.

#include <cstdio>
#include <string>
#include <vector>

#include "pam/core/rulegen.h"
#include "pam/core/serial_apriori.h"
#include "pam/tdb/database.h"

namespace {

const char* kItemNames[] = {"Beer", "Bread", "Coke", "Diaper", "Milk"};

std::string NameSet(pam::ItemSpan items) {
  std::string out = "{";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    out += kItemNames[items[i]];
  }
  return out + "}";
}

std::string NameVec(const std::vector<pam::Item>& items) {
  return NameSet(pam::ItemSpan(items.data(), items.size()));
}

}  // namespace

int main() {
  // Table I of the paper (items: Beer=0, Bread=1, Coke=2, Diaper=3,
  // Milk=4).
  pam::TransactionDatabase db;
  db.Add({1, 2, 4});     // Bread, Coke, Milk
  db.Add({0, 1});        // Beer, Bread
  db.Add({0, 2, 3, 4});  // Beer, Coke, Diaper, Milk
  db.Add({0, 1, 3, 4});  // Beer, Bread, Diaper, Milk
  db.Add({2, 3, 4});     // Coke, Diaper, Milk

  pam::AprioriConfig config;
  config.minsup_count = 2;  // 40% of 5 transactions

  pam::SerialResult result = pam::MineSerial(db, config);

  std::printf("Frequent itemsets (minimum support count %llu):\n",
              static_cast<unsigned long long>(result.minsup_count));
  for (const auto& level : result.frequent.levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      std::printf("  %-28s support %llu/5\n",
                  NameSet(level.Get(i)).c_str(),
                  static_cast<unsigned long long>(level.count(i)));
    }
  }

  std::printf("\nAssociation rules (minimum confidence 60%%):\n");
  for (const pam::Rule& rule :
       pam::GenerateRules(result.frequent, db.size(), 0.6)) {
    std::printf("  %-20s => %-16s support %4.0f%%  confidence %4.0f%%\n",
                NameVec(rule.antecedent).c_str(),
                NameVec(rule.consequent).c_str(), rule.support * 100.0,
                rule.confidence * 100.0);
  }
  return 0;
}
