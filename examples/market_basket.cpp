// Market-basket mining on synthetic IBM-Quest-style data (the T..I..
// datasets of the paper's evaluation): generates a database, mines it with
// serial Apriori, prints the per-pass breakdown the paper's analysis
// reasons about (candidates, frequent sets, hash tree size, subset work),
// and shows the strongest rules.
//
//   $ ./market_basket [num_transactions] [minsup_percent]
//   $ ./market_basket 20000 0.5

#include <cstdio>
#include <cstdlib>

#include "pam/core/rulegen.h"
#include "pam/core/serial_apriori.h"
#include "pam/datagen/quest_gen.h"
#include "pam/util/timer.h"

int main(int argc, char** argv) {
  const std::size_t num_transactions =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 10000;
  const double minsup_percent = argc > 2 ? std::atof(argv[2]) : 1.0;

  pam::QuestConfig quest;
  quest.num_transactions = num_transactions;
  quest.num_items = 500;
  quest.avg_transaction_len = 10;
  quest.avg_pattern_len = 4;
  quest.num_patterns = 200;
  quest.seed = 42;

  std::printf("Generating T%.0f.I%.0f data: %zu transactions, %u items...\n",
              quest.avg_transaction_len, quest.avg_pattern_len,
              quest.num_transactions, quest.num_items);
  pam::WallTimer gen_timer;
  pam::TransactionDatabase db = pam::GenerateQuest(quest);
  std::printf("  generated in %.2fs, average length %.2f\n\n",
              gen_timer.Seconds(), db.AverageLength());

  pam::AprioriConfig config;
  config.minsup_fraction = minsup_percent / 100.0;

  pam::SerialResult result = pam::MineSerial(db, config);
  std::printf("Mined at %.2f%% minimum support (count %llu) in %.2fs\n\n",
              minsup_percent,
              static_cast<unsigned long long>(result.minsup_count),
              result.total_seconds);

  std::printf("%4s %12s %12s %10s %14s %14s\n", "pass", "candidates",
              "frequent", "leaves", "leaf visits", "time (s)");
  for (const pam::SerialPassInfo& pass : result.passes) {
    std::printf("%4d %12zu %12zu %10zu %14llu %14.3f\n", pass.k,
                pass.num_candidates, pass.num_frequent, pass.num_leaves,
                static_cast<unsigned long long>(
                    pass.subset.distinct_leaf_visits),
                pass.seconds);
  }
  std::printf("\nTotal frequent itemsets: %zu (largest size %d)\n",
              result.frequent.TotalCount(), result.frequent.MaxK());

  const std::vector<pam::Rule> rules =
      pam::GenerateRules(result.frequent, db.size(), 0.7);
  std::printf("\nTop rules at 70%% confidence (%zu total):\n", rules.size());
  const std::size_t show = rules.size() < 10 ? rules.size() : 10;
  for (std::size_t i = 0; i < show; ++i) {
    std::printf("  %s\n", rules[i].ToString().c_str());
  }
  return 0;
}
