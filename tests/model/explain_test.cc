#include "pam/model/explain.h"

#include <gtest/gtest.h>

#include "pam/parallel/driver.h"
#include "testing/random_db.h"

namespace pam {
namespace {

ParallelResult SmallRun() {
  TransactionDatabase db = testing::RandomDb(200, 20, 8, 91);
  ParallelConfig cfg;
  cfg.apriori.minsup_count = 6;
  return MineParallel(Algorithm::kHD, db, 4, cfg);
}

TEST(ExplainTest, MentionsAlgorithmMachineAndPasses) {
  ParallelResult run = SmallRun();
  CostModel model(MachineModel::CrayT3E());
  const std::string text = ExplainRun(model, Algorithm::kHD, run.metrics);
  EXPECT_NE(text.find("HD on 4 ranks"), std::string::npos);
  EXPECT_NE(text.find("Cray T3E"), std::string::npos);
  EXPECT_NE(text.find("modeled response time"), std::string::npos);
  // One line per pass plus headers/footer.
  std::size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines,
            static_cast<std::size_t>(run.metrics.num_passes()) + 3);
}

TEST(ExplainTest, TotalMatchesRunTime) {
  ParallelResult run = SmallRun();
  CostModel model(MachineModel::CrayT3E());
  const double expected = model.RunTime(Algorithm::kHD, run.metrics);
  const std::string text = ExplainRun(model, Algorithm::kHD, run.metrics);
  char buffer[64];
  snprintf(buffer, sizeof(buffer), "modeled response time: %.3fs",
           expected);
  EXPECT_NE(text.find(buffer), std::string::npos) << text;
}

TEST(ExplainTest, CounterSummaryHasOneRowPerPass) {
  ParallelResult run = SmallRun();
  const std::string text = SummarizeCounters(run.metrics);
  std::size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines,
            static_cast<std::size_t>(run.metrics.num_passes()) + 1);
}

TEST(ExplainTest, EmptyMetrics) {
  CostModel model(MachineModel::CrayT3E());
  RunMetrics metrics;
  const std::string text = ExplainRun(model, Algorithm::kCD, metrics);
  EXPECT_NE(text.find("modeled response time: 0.000s"), std::string::npos);
}

}  // namespace
}  // namespace pam
