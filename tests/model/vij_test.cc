#include "pam/model/vij.h"

#include <cmath>

#include <gtest/gtest.h>

#include "pam/util/prng.h"

namespace pam {
namespace {

TEST(VijTest, BaseCases) {
  EXPECT_DOUBLE_EQ(ExpectedDistinctLeaves(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedDistinctLeaves(1, 10), 1.0);
  EXPECT_DOUBLE_EQ(ExpectedDistinctLeaves(5, 1), 1.0);
}

TEST(VijTest, ClosedFormMatchesRecurrence) {
  for (double j : {2.0, 5.0, 17.0, 100.0, 12345.0}) {
    for (std::uint64_t i : {1ull, 2ull, 3ull, 10ull, 50ull, 500ull}) {
      EXPECT_NEAR(ExpectedDistinctLeaves(static_cast<double>(i), j),
                  ExpectedDistinctLeavesRecurrence(i, j),
                  1e-9 * j)
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(VijTest, LargeTreeLimitIsI) {
  // Paper Equation 2: lim_{j->inf} V_{i,j} = i.
  for (double i : {1.0, 7.0, 100.0}) {
    EXPECT_NEAR(ExpectedDistinctLeaves(i, 1e12), i, 1e-6 * i);
  }
}

TEST(VijTest, BoundedByLeavesAndCandidates) {
  for (double i : {1.0, 10.0, 1000.0}) {
    for (double j : {2.0, 10.0, 1000.0}) {
      const double v = ExpectedDistinctLeaves(i, j);
      EXPECT_LE(v, j + 1e-9);
      EXPECT_LE(v, i + 1e-9);
      EXPECT_GE(v, 1.0 - 1e-9);
    }
  }
}

TEST(VijTest, MonotoneInCandidatesAndLeaves) {
  EXPECT_LT(ExpectedDistinctLeaves(5, 50), ExpectedDistinctLeaves(10, 50));
  EXPECT_LT(ExpectedDistinctLeaves(100, 20), ExpectedDistinctLeaves(100, 80));
}

TEST(VijTest, SublinearShrinkKeyToDdRedundancy) {
  // The paper's core observation about DD: V_{C, L/P} > V_{C,L} / P, i.e.
  // shrinking the tree P-fold shrinks per-tree leaf visits by less than P,
  // so P partitioned trees do more total checking than one full tree.
  const double c = 100.0;
  const double l = 200.0;
  for (double p : {2.0, 4.0, 8.0, 16.0}) {
    EXPECT_GT(ExpectedDistinctLeaves(c, l / p),
              ExpectedDistinctLeaves(c, l) / p)
        << "P=" << p;
  }
}

TEST(VijTest, IddScalingBeatsDd) {
  // IDD shrinks *both* C and L by P: V_{C/P, L/P} * P stays close to
  // V_{C,L}, unlike DD's V_{C, L/P} * P which blows up.
  const double c = 120.0;
  const double l = 240.0;
  const double serial = ExpectedDistinctLeaves(c, l);
  for (double p : {2.0, 4.0, 8.0}) {
    const double idd_total = p * ExpectedDistinctLeaves(c / p, l / p);
    const double dd_total = p * ExpectedDistinctLeaves(c, l / p);
    EXPECT_LT(idd_total, dd_total);
    EXPECT_NEAR(idd_total, serial, 0.15 * serial);
  }
}

TEST(VijTest, MatchesMonteCarloSimulation) {
  // Throw i balls into j bins uniformly; count distinct bins hit.
  Prng rng(99);
  for (auto [i, j] : std::vector<std::pair<int, int>>{
           {5, 10}, {30, 10}, {10, 100}, {200, 50}}) {
    const int trials = 4000;
    double total_distinct = 0.0;
    std::vector<int> mark(static_cast<std::size_t>(j), -1);
    for (int t = 0; t < trials; ++t) {
      int distinct = 0;
      for (int b = 0; b < i; ++b) {
        const std::size_t bin = rng.NextBounded(static_cast<std::uint64_t>(j));
        if (mark[bin] != t) {
          mark[bin] = t;
          ++distinct;
        }
      }
      total_distinct += distinct;
    }
    const double simulated = total_distinct / trials;
    const double predicted = ExpectedDistinctLeaves(i, j);
    EXPECT_NEAR(simulated, predicted, 0.03 * predicted)
        << "i=" << i << " j=" << j;
  }
}

TEST(BinomialTest, SmallValues) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(15, 3), 455.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(3, 7), 0.0);
}

TEST(BinomialTest, SymmetryAndPascal) {
  for (std::uint64_t n = 1; n <= 20; ++n) {
    for (std::uint64_t k = 0; k <= n; ++k) {
      EXPECT_NEAR(BinomialCoefficient(n, k), BinomialCoefficient(n, n - k),
                  1e-6);
      if (k >= 1 && k <= n - 1) {
        EXPECT_NEAR(BinomialCoefficient(n, k),
                    BinomialCoefficient(n - 1, k - 1) +
                        BinomialCoefficient(n - 1, k),
                    1e-6);
      }
    }
  }
}

}  // namespace
}  // namespace pam
