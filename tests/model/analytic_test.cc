#include "pam/model/analytic.h"

#include <gtest/gtest.h>

namespace pam {
namespace {

AnalyticWorkload PaperScale() {
  AnalyticWorkload w;
  w.num_transactions = 1.3e6;
  w.num_candidates = 0.7e6;
  w.avg_transaction_items = 15;
  w.pass_k = 3;
  w.avg_leaf_candidates = 16;
  w.num_processors = 64;
  w.hd_grid_rows = 8;
  return w;
}

TEST(AnalyticTest, PotentialCandidatesIsBinomial) {
  AnalyticWorkload w;
  w.avg_transaction_items = 15;
  w.pass_k = 2;
  EXPECT_DOUBLE_EQ(w.PotentialCandidates(), 105.0);
  w.pass_k = 3;
  EXPECT_DOUBLE_EQ(w.PotentialCandidates(), 455.0);
}

TEST(AnalyticTest, CdEfficiencyHighAtPaperScale) {
  // Eq. 4 vs Eq. 3: CD's only overheads are tree build and the reduction;
  // at the paper's N/P = 20K transactions per processor it stays
  // reasonably efficient but visibly below 1.
  const MachineModel machine = MachineModel::CrayT3E();
  const double e = PredictEfficiency(Algorithm::kCD, PaperScale(), machine);
  EXPECT_GT(e, 0.3);
  EXPECT_LT(e, 1.0);
}

TEST(AnalyticTest, DdSlowerThanIddEverywhere) {
  const MachineModel machine = MachineModel::CrayT3E();
  for (int p : {2, 8, 32, 128}) {
    AnalyticWorkload w = PaperScale();
    w.num_processors = p;
    EXPECT_GT(PredictParallelPassSeconds(Algorithm::kDD, w, machine),
              PredictParallelPassSeconds(Algorithm::kIDD, w, machine))
        << "P=" << p;
    EXPECT_GT(PredictParallelPassSeconds(Algorithm::kDD, w, machine),
              PredictParallelPassSeconds(Algorithm::kDDComm, w, machine))
        << "P=" << p;
  }
}

TEST(AnalyticTest, DdRedundantWorkMatchesSectionIv) {
  // The analysis's central inequality: DD's per-pass checking work
  // N * V(C, L/P) exceeds the serial N * V(C, L) / P share — so DD's
  // total time degrades relative to CD as P grows even with free
  // communication.
  MachineModel free_comm = MachineModel::CrayT3E();
  free_comm.bandwidth = 1e18;
  free_comm.latency = 0;
  free_comm.dd_contention = 1.0;
  AnalyticWorkload w = PaperScale();
  double prev_ratio = 0.0;
  for (int p : {4, 16, 64}) {
    w.num_processors = p;
    const double dd =
        PredictParallelPassSeconds(Algorithm::kDD, w, free_comm);
    const double cd =
        PredictParallelPassSeconds(Algorithm::kCD, w, free_comm);
    const double ratio = dd / cd;
    EXPECT_GT(ratio, prev_ratio) << "P=" << p;
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 2.0);
}

TEST(AnalyticTest, HdInterpolatesCdAndIdd) {
  const MachineModel machine = MachineModel::CrayT3E();
  AnalyticWorkload w = PaperScale();
  // G = 1 reproduces Eq. 4 (CD) exactly.
  w.hd_grid_rows = 1;
  EXPECT_NEAR(PredictParallelPassSeconds(Algorithm::kHD, w, machine),
              PredictParallelPassSeconds(Algorithm::kCD, w, machine),
              1e-12);
  // G = P reproduces Eq. 6 (IDD) exactly.
  w.hd_grid_rows = w.num_processors;
  EXPECT_NEAR(PredictParallelPassSeconds(Algorithm::kHD, w, machine),
              PredictParallelPassSeconds(Algorithm::kIDD, w, machine),
              1e-12);
}

TEST(AnalyticTest, HdBeatsCdInTheEquation8Band) {
  // When M is large relative to N/P there is a G strictly between 1 and
  // M*P/N where HD outperforms CD (Eq. 8).
  const MachineModel machine = MachineModel::CrayT3E();
  AnalyticWorkload w = PaperScale();
  w.num_candidates = 4e6;  // M >> N/P regime (paper Figure 15's right)
  const double upper_g = HdAdvantageUpperG(w);
  EXPECT_GT(upper_g, 1.0);
  const double cd = PredictParallelPassSeconds(Algorithm::kCD, w, machine);
  bool any_better = false;
  for (int g : {2, 4, 8, 16, 32, 64}) {
    if (g > w.num_processors) break;
    w.hd_grid_rows = g;
    if (PredictParallelPassSeconds(Algorithm::kHD, w, machine) < cd) {
      any_better = true;
    }
  }
  EXPECT_TRUE(any_better);
}

TEST(AnalyticTest, CdScalesWithNButNotWithM) {
  // Section IV's scalability claims: CD's efficiency is maintained as N
  // grows with P (scaleup) but collapses as M grows with P.
  const MachineModel machine = MachineModel::CrayT3E();
  AnalyticWorkload small = PaperScale();
  small.num_processors = 8;
  small.num_transactions = 8 * 50e3;

  AnalyticWorkload big = small;
  big.num_processors = 128;
  big.num_transactions = 128 * 50e3;
  const double e_small = PredictEfficiency(Algorithm::kCD, small, machine);
  const double e_big = PredictEfficiency(Algorithm::kCD, big, machine);
  // Scaleup in N: efficiency nearly flat.
  EXPECT_GT(e_big, e_small * 0.8);

  // Growing M instead: efficiency falls.
  AnalyticWorkload big_m = small;
  big_m.num_processors = 128;
  big_m.num_candidates = small.num_candidates * 16;
  EXPECT_LT(PredictEfficiency(Algorithm::kCD, big_m, machine),
            e_small * 0.7);
}

TEST(AnalyticTest, IddLosesEfficiencyAsPGrowsWithFixedProblem) {
  const MachineModel machine = MachineModel::CrayT3E();
  AnalyticWorkload w = PaperScale();
  double prev = 1.0;
  for (int p : {4, 16, 64, 256}) {
    w.num_processors = p;
    const double e = PredictEfficiency(Algorithm::kIDD, w, machine);
    EXPECT_LT(e, prev + 1e-9) << "P=" << p;
    prev = e;
  }
}

TEST(AnalyticTest, HpaVolumeGrowsWithK) {
  const MachineModel machine = MachineModel::CrayT3E();
  AnalyticWorkload w = PaperScale();
  w.num_processors = 16;
  w.pass_k = 2;
  const double t2 =
      PredictParallelPassSeconds(Algorithm::kHPA, w, machine);
  w.pass_k = 4;
  const double t4 =
      PredictParallelPassSeconds(Algorithm::kHPA, w, machine);
  EXPECT_GT(t4, t2 * 5.0);
}

}  // namespace
}  // namespace pam
