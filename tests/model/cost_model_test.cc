#include "pam/model/cost_model.h"

#include <gtest/gtest.h>

namespace pam {
namespace {

PassMetrics MakeRank(std::uint64_t traversal, std::uint64_t leaves,
                     std::uint64_t checks) {
  PassMetrics m;
  m.k = 2;
  m.subset.traversal_steps = traversal;
  m.subset.distinct_leaf_visits = leaves;
  m.subset.leaf_candidates_checked = checks;
  return m;
}

TEST(CostModelTest, SubsetSecondsLinearInCounters) {
  MachineModel machine;
  machine.t_travers = 1.0;
  machine.t_check = 10.0;
  machine.t_compare = 100.0;
  CostModel model(machine);
  SubsetStats s;
  s.traversal_steps = 2;
  s.distinct_leaf_visits = 3;
  s.leaf_candidates_checked = 4;
  EXPECT_DOUBLE_EQ(model.SubsetSeconds(s), 2.0 + 30.0 + 400.0);
}

TEST(CostModelTest, SlowestRankPacesThePass) {
  MachineModel machine;
  machine.t_travers = 1.0;
  CostModel model(machine);
  std::vector<PassMetrics> ranks = {MakeRank(10, 0, 0), MakeRank(50, 0, 0),
                                    MakeRank(20, 0, 0)};
  PassTimeBreakdown t = model.PassTime(Algorithm::kCD, ranks);
  EXPECT_DOUBLE_EQ(t.subset, 50.0);
}

TEST(CostModelTest, DdPaysContention) {
  MachineModel machine;
  machine.bandwidth = 100.0;
  machine.latency = 0.0;
  machine.dd_contention = 4.0;
  CostModel model(machine);
  PassMetrics m;
  m.data_bytes_sent = 1000;
  std::vector<PassMetrics> ranks = {m};
  const double dd = model.PassTime(Algorithm::kDD, ranks).data_comm;
  const double idd = model.PassTime(Algorithm::kIDD, ranks).data_comm;
  EXPECT_DOUBLE_EQ(idd, 10.0);
  EXPECT_DOUBLE_EQ(dd, 40.0);
}

TEST(CostModelTest, ReductionScalesWithLogP) {
  MachineModel machine;
  machine.bandwidth = 1e9;
  machine.latency = 1.0;
  CostModel model(machine);
  PassMetrics m;
  m.reduction_words = 1;
  std::vector<PassMetrics> ranks16(16, m);
  std::vector<PassMetrics> ranks64(64, m);
  const double r16 = model.PassTime(Algorithm::kCD, ranks16).reduction;
  const double r64 = model.PassTime(Algorithm::kCD, ranks64).reduction;
  EXPECT_NEAR(r16, 4.0, 1e-6);
  EXPECT_NEAR(r64, 6.0, 1e-6);
}

TEST(CostModelTest, HdReductionUsesGridCols) {
  MachineModel machine;
  machine.bandwidth = 1e9;
  machine.latency = 1.0;
  CostModel model(machine);
  PassMetrics m;
  m.reduction_words = 1;
  m.grid_rows = 8;
  m.grid_cols = 8;
  std::vector<PassMetrics> ranks(64, m);
  // HD reduces along rows of width 8 -> 3 stages, not log2(64) = 6.
  EXPECT_NEAR(model.PassTime(Algorithm::kHD, ranks).reduction, 3.0, 1e-6);
}

TEST(CostModelTest, IoChargedOnlyWithFiniteIoBandwidth) {
  MachineModel ram;
  ram.io_bandwidth = 0.0;
  MachineModel disk;
  disk.io_bandwidth = 100.0;
  PassMetrics m;
  m.db_scans = 3;
  m.local_db_wire_bytes = 1000;
  std::vector<PassMetrics> ranks = {m};
  EXPECT_DOUBLE_EQ(CostModel(ram).PassTime(Algorithm::kCD, ranks).io, 0.0);
  EXPECT_DOUBLE_EQ(CostModel(disk).PassTime(Algorithm::kCD, ranks).io, 30.0);
}

TEST(CostModelTest, TreeBuildChargesInsertsAndGeneration) {
  MachineModel machine;
  machine.t_build = 2.0;
  machine.t_gen = 1.0;
  CostModel model(machine);
  PassMetrics m;
  m.tree_build_inserts = 10;
  m.num_candidates_global = 5;
  std::vector<PassMetrics> ranks = {m};
  EXPECT_DOUBLE_EQ(model.PassTime(Algorithm::kCD, ranks).tree_build, 25.0);
}

TEST(CostModelTest, RunTimeSumsPasses) {
  MachineModel machine;
  machine.t_travers = 1.0;
  CostModel model(machine);
  RunMetrics metrics;
  metrics.per_pass.push_back({MakeRank(10, 0, 0)});
  metrics.per_pass.push_back({MakeRank(30, 0, 0)});
  EXPECT_DOUBLE_EQ(model.RunTime(Algorithm::kCD, metrics), 40.0);
}

TEST(CostModelTest, SerialRunTime) {
  MachineModel machine;
  machine.t_travers = 1.0;
  machine.t_build = 1.0;
  machine.t_gen = 0.0;
  machine.io_bandwidth = 10.0;
  CostModel model(machine);
  SerialResult result;
  SerialPassInfo pass;
  pass.subset.traversal_steps = 5;
  pass.tree_build_inserts = 5;
  pass.db_scans = 2;
  result.passes.push_back(pass);
  // 5 + 5 + 2 * 100 / 10 = 30.
  EXPECT_DOUBLE_EQ(model.SerialRunTime(result, 100), 30.0);
}

TEST(CostModelTest, MachinePresetsAreSane) {
  const MachineModel t3e = MachineModel::CrayT3E();
  const MachineModel sp2 = MachineModel::IbmSp2();
  EXPECT_GT(t3e.bandwidth, sp2.bandwidth);
  EXPECT_LT(t3e.t_travers, sp2.t_travers);
  EXPECT_EQ(t3e.io_bandwidth, 0.0);
  EXPECT_GT(sp2.io_bandwidth, 0.0);
  EXPECT_GT(sp2.memory_capacity_candidates, 0u);
  EXPECT_GT(t3e.dd_contention, 1.0);
}

TEST(CostModelTest, BroadcastUsesGroupGeometry) {
  MachineModel machine;
  machine.bandwidth = 8.0;  // 1 word/sec
  machine.latency = 0.0;
  CostModel model(machine);
  PassMetrics m;
  m.broadcast_words = 10;
  m.grid_rows = 4;
  m.grid_cols = 2;
  // IDD: one group of all ranks, total words = 20.
  std::vector<PassMetrics> ranks(2, m);
  EXPECT_DOUBLE_EQ(model.PassTime(Algorithm::kIDD, ranks).broadcast, 20.0);
  // HD: 2 column groups exchanging in parallel -> per-group 10 words.
  EXPECT_DOUBLE_EQ(model.PassTime(Algorithm::kHD, ranks).broadcast, 10.0);
}

}  // namespace
}  // namespace pam
