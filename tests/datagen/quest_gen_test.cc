#include "pam/datagen/quest_gen.h"

#include <gtest/gtest.h>

#include "pam/core/serial_apriori.h"

namespace pam {
namespace {

TEST(QuestGenTest, ProducesRequestedTransactionCount) {
  QuestConfig cfg;
  cfg.num_transactions = 500;
  cfg.num_items = 100;
  TransactionDatabase db = GenerateQuest(cfg);
  EXPECT_EQ(db.size(), 500u);
}

TEST(QuestGenTest, ItemsStayInRange) {
  QuestConfig cfg;
  cfg.num_transactions = 300;
  cfg.num_items = 50;
  TransactionDatabase db = GenerateQuest(cfg);
  for (std::size_t t = 0; t < db.size(); ++t) {
    for (Item x : db.Transaction(t)) EXPECT_LT(x, 50u);
  }
}

TEST(QuestGenTest, DeterministicForSameSeed) {
  QuestConfig cfg;
  cfg.num_transactions = 200;
  cfg.seed = 99;
  TransactionDatabase a = GenerateQuest(cfg);
  TransactionDatabase b = GenerateQuest(cfg);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.items(), b.items());
  EXPECT_EQ(a.offsets(), b.offsets());
}

TEST(QuestGenTest, DifferentSeedsProduceDifferentData) {
  QuestConfig cfg;
  cfg.num_transactions = 200;
  cfg.seed = 1;
  TransactionDatabase a = GenerateQuest(cfg);
  cfg.seed = 2;
  TransactionDatabase b = GenerateQuest(cfg);
  EXPECT_NE(a.items(), b.items());
}

TEST(QuestGenTest, AverageLengthNearTarget) {
  // T15 data should average close to 15 items per transaction (pattern
  // corruption and the fit rule skew it somewhat; allow a generous band).
  QuestConfig cfg;
  cfg.num_transactions = 5000;
  cfg.num_items = 1000;
  cfg.avg_transaction_len = 15.0;
  TransactionDatabase db = GenerateQuest(cfg);
  EXPECT_GT(db.AverageLength(), 8.0);
  EXPECT_LT(db.AverageLength(), 22.0);
}

TEST(QuestGenTest, ContainsFrequentPatterns) {
  // Pattern reuse must create itemsets far more frequent than independent
  // uniform choice would: the most frequent pair should clear a multiple of
  // the uniform expectation.
  QuestConfig cfg;
  cfg.num_transactions = 3000;
  cfg.num_items = 200;
  cfg.avg_transaction_len = 10.0;
  cfg.num_patterns = 50;
  TransactionDatabase db = GenerateQuest(cfg);

  // Count pair frequencies via a coarse sample of item pairs from the
  // first transactions.
  std::vector<std::vector<Count>> pair_counts(
      200, std::vector<Count>(200, 0));
  for (std::size_t t = 0; t < db.size(); ++t) {
    ItemSpan tx = db.Transaction(t);
    for (std::size_t i = 0; i < tx.size(); ++i) {
      for (std::size_t j = i + 1; j < tx.size(); ++j) {
        ++pair_counts[tx[i]][tx[j]];
      }
    }
  }
  Count max_pair = 0;
  for (const auto& row : pair_counts) {
    for (Count c : row) max_pair = std::max(max_pair, c);
  }
  // Uniform-independent expectation per ordered pair is roughly
  // N * (T/num_items)^2 ~= 3000 * (10/200)^2 = 7.5.
  EXPECT_GT(max_pair, 75u);
}

TEST(QuestGenTest, NoEmptyTransactions) {
  QuestConfig cfg;
  cfg.num_transactions = 1000;
  cfg.corruption_mean = 0.9;  // aggressive corruption still never empties
  TransactionDatabase db = GenerateQuest(cfg);
  for (std::size_t t = 0; t < db.size(); ++t) {
    EXPECT_GE(db.Transaction(t).size(), 1u);
  }
}

TEST(QuestGenTest, PresetFamiliesTrackTheirT) {
  // The Tx.Iy presets must produce average transaction lengths ordered
  // by (and roughly near) their nominal T.
  const std::size_t n = 3000;
  const double t5 = GenerateQuest(QuestT5I2(n, 7)).AverageLength();
  const double t10 = GenerateQuest(QuestT10I4(n, 7)).AverageLength();
  const double t15 = GenerateQuest(QuestT15I6(n, 7)).AverageLength();
  const double t20 = GenerateQuest(QuestT20I6(n, 7)).AverageLength();
  EXPECT_LT(t5, t10);
  EXPECT_LT(t10, t15);
  EXPECT_LT(t15, t20);
  EXPECT_NEAR(t5, 5.0, 2.5);
  EXPECT_NEAR(t20, 20.0, 8.0);
}

TEST(QuestGenTest, PresetsMineDeeperWithLongerPatterns) {
  // I6 families support longer frequent itemsets than I2 families at the
  // same threshold.
  AprioriConfig cfg;
  cfg.minsup_fraction = 0.01;
  cfg.max_k = 8;
  const int deep =
      MineSerial(GenerateQuest(QuestT15I6(2000, 3)), cfg).frequent.MaxK();
  const int shallow =
      MineSerial(GenerateQuest(QuestT5I2(2000, 3)), cfg).frequent.MaxK();
  EXPECT_GT(deep, shallow);
}

TEST(QuestGenTest, HotPrefixOffIsStreamIdentical) {
  // The skewed-prefix knob must leave the generator's random stream
  // untouched when disabled, whichever half of the pair is zero — existing
  // seeds keep producing bit-identical databases.
  QuestConfig base;
  base.num_transactions = 400;
  base.num_items = 200;
  base.seed = 31;
  const TransactionDatabase plain = GenerateQuest(base);

  QuestConfig zero_mass = base;
  zero_mass.hot_items = 40;
  zero_mass.hot_item_mass = 0.0;
  QuestConfig zero_items = base;
  zero_items.hot_items = 0;
  zero_items.hot_item_mass = 0.5;
  for (const QuestConfig& cfg : {zero_mass, zero_items}) {
    const TransactionDatabase db = GenerateQuest(cfg);
    EXPECT_EQ(db.items(), plain.items());
    EXPECT_EQ(db.offsets(), plain.offsets());
  }
}

TEST(QuestGenTest, HotPrefixConcentratesMass) {
  QuestConfig cfg;
  cfg.num_transactions = 2000;
  cfg.num_items = 1000;
  cfg.seed = 31;
  const auto hot_fraction = [&](Item hot_items, double mass) {
    QuestConfig c = cfg;
    c.hot_items = hot_items;
    c.hot_item_mass = mass;
    const TransactionDatabase db = GenerateQuest(c);
    std::size_t hot = 0;
    std::size_t total = 0;
    for (std::size_t t = 0; t < db.size(); ++t) {
      for (Item x : db.Transaction(t)) {
        total += 1;
        if (x < hot_items) hot += 1;
      }
    }
    return static_cast<double>(hot) / static_cast<double>(total);
  };
  // Uniform draws land in a 40-item prefix of a 1000-item universe ~4% of
  // the time; redirecting half the draws should concentrate far more.
  EXPECT_LT(hot_fraction(40, 0.0), 0.20);
  EXPECT_GT(hot_fraction(40, 0.5), 0.40);
  // More mass, more concentration.
  EXPECT_GT(hot_fraction(40, 0.8), hot_fraction(40, 0.4));
}

TEST(QuestGenTest, TinyItemUniverse) {
  QuestConfig cfg;
  cfg.num_transactions = 100;
  cfg.num_items = 3;
  cfg.avg_transaction_len = 5.0;
  cfg.avg_pattern_len = 2.0;
  TransactionDatabase db = GenerateQuest(cfg);
  EXPECT_EQ(db.size(), 100u);
  EXPECT_LE(db.NumItems(), 3u);
}

}  // namespace
}  // namespace pam
