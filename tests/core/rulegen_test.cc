#include "pam/core/rulegen.h"

#include <set>

#include <gtest/gtest.h>

#include "testing/random_db.h"

namespace pam {
namespace {

using RuleKey = std::pair<std::vector<Item>, std::vector<Item>>;

std::set<RuleKey> Keys(const std::vector<Rule>& rules) {
  std::set<RuleKey> out;
  for (const Rule& r : rules) out.insert({r.antecedent, r.consequent});
  return out;
}

FrequentItemsets MineSupermarket(Count minsup) {
  AprioriConfig cfg;
  cfg.minsup_count = minsup;
  return MineSerial(testing::SupermarketDb(), cfg).frequent;
}

TEST(RuleGenTest, PaperExampleRule) {
  // {Diaper, Milk} => {Beer}: support 40%, confidence 66%. With minsup
  // count 2 the triple {Beer, Diaper, Milk} is frequent, so the rule is
  // generated at min_confidence 0.6.
  FrequentItemsets frequent = MineSupermarket(2);
  std::vector<Rule> rules = GenerateRules(frequent, 5, 0.6);

  bool found = false;
  for (const Rule& r : rules) {
    if (r.antecedent ==
            std::vector<Item>{testing::kDiaper, testing::kMilk} &&
        r.consequent == std::vector<Item>{testing::kBeer}) {
      found = true;
      EXPECT_NEAR(r.support, 0.4, 1e-9);
      EXPECT_NEAR(r.confidence, 2.0 / 3.0, 1e-9);
      EXPECT_EQ(r.joint_count, 2u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RuleGenTest, ConfidenceThresholdFilters) {
  FrequentItemsets frequent = MineSupermarket(2);
  std::vector<Rule> all = GenerateRules(frequent, 5, 0.0);
  std::vector<Rule> strict = GenerateRules(frequent, 5, 0.9);
  EXPECT_GT(all.size(), strict.size());
  for (const Rule& r : strict) EXPECT_GE(r.confidence, 0.9);
}

TEST(RuleGenTest, MatchesBruteForceOnRandomDbs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    TransactionDatabase db = testing::RandomDb(80, 10, 7, seed);
    AprioriConfig cfg;
    cfg.minsup_count = 6;
    FrequentItemsets frequent = MineSerial(db, cfg).frequent;
    for (double conf : {0.3, 0.6, 0.9}) {
      std::vector<Rule> fast = GenerateRules(frequent, db.size(), conf);
      std::vector<Rule> slow =
          GenerateRulesBruteForce(frequent, db.size(), conf);
      EXPECT_EQ(Keys(fast), Keys(slow))
          << "seed " << seed << " conf " << conf;
      ASSERT_EQ(fast.size(), slow.size());
      for (std::size_t i = 0; i < fast.size(); ++i) {
        EXPECT_DOUBLE_EQ(fast[i].confidence, slow[i].confidence);
        EXPECT_DOUBLE_EQ(fast[i].support, slow[i].support);
      }
    }
  }
}

TEST(RuleGenTest, RulesAreSortedByConfidence) {
  TransactionDatabase db = testing::RandomDb(80, 10, 7, 9);
  AprioriConfig cfg;
  cfg.minsup_count = 5;
  FrequentItemsets frequent = MineSerial(db, cfg).frequent;
  std::vector<Rule> rules = GenerateRules(frequent, db.size(), 0.2);
  for (std::size_t i = 1; i < rules.size(); ++i) {
    EXPECT_GE(rules[i - 1].confidence, rules[i].confidence);
  }
}

TEST(RuleGenTest, AntecedentAndConsequentDisjointNonEmpty) {
  TransactionDatabase db = testing::RandomDb(80, 10, 7, 10);
  AprioriConfig cfg;
  cfg.minsup_count = 5;
  FrequentItemsets frequent = MineSerial(db, cfg).frequent;
  std::vector<Rule> rules = GenerateRules(frequent, db.size(), 0.1);
  for (const Rule& r : rules) {
    EXPECT_FALSE(r.antecedent.empty());
    EXPECT_FALSE(r.consequent.empty());
    std::set<Item> inter;
    std::set<Item> ante(r.antecedent.begin(), r.antecedent.end());
    for (Item x : r.consequent) EXPECT_EQ(ante.count(x), 0u);
  }
}

TEST(RuleGenTest, NoFrequentPairsMeansNoRules) {
  FrequentItemsets frequent;
  frequent.levels.emplace_back(1);
  Item x = 3;
  frequent.levels[0].AddWithCount(ItemSpan(&x, 1), 5);
  EXPECT_TRUE(GenerateRules(frequent, 10, 0.1).empty());
}

TEST(RuleGenTest, ToStringRendersRule) {
  Rule r;
  r.antecedent = {1, 2};
  r.consequent = {3};
  r.support = 0.5;
  r.confidence = 0.75;
  const std::string s = r.ToString();
  EXPECT_NE(s.find("{1 2}"), std::string::npos);
  EXPECT_NE(s.find("{3}"), std::string::npos);
  EXPECT_NE(s.find("0.75"), std::string::npos);
}

}  // namespace
}  // namespace pam
