#include "pam/core/apriori_gen.h"

#include <set>

#include <gtest/gtest.h>

#include "pam/util/prng.h"
#include "testing/random_db.h"

namespace pam {
namespace {

ItemsetCollection MakeCollection(int k,
                                 std::vector<std::vector<Item>> sets) {
  ItemsetCollection col(k);
  for (auto& s : sets) col.Add(ItemSpan(s.data(), s.size()));
  col.SortLexicographic();
  return col;
}

TEST(CountItemsTest, CountsOccurrences) {
  TransactionDatabase db;
  db.Add({0, 1});
  db.Add({1, 2});
  db.Add({1});
  std::vector<Count> counts = CountItems(db, {0, db.size()});
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(CountItemsTest, SliceRestricts) {
  TransactionDatabase db;
  db.Add({0});
  db.Add({0, 1});
  std::vector<Count> counts = CountItems(db, {1, 2});
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(MakeF1Test, FiltersByMinsup) {
  ItemsetCollection f1 = MakeF1({5, 2, 7, 3}, 3);
  ASSERT_EQ(f1.size(), 3u);
  EXPECT_EQ(f1.Get(0)[0], 0u);
  EXPECT_EQ(f1.Get(1)[0], 2u);
  EXPECT_EQ(f1.Get(2)[0], 3u);
  EXPECT_EQ(f1.count(0), 5u);
}

TEST(AprioriGenTest, JoinsF1Pairs) {
  ItemsetCollection f1 = MakeCollection(1, {{1}, {3}, {5}});
  ItemsetCollection c2 = AprioriGen(f1);
  ASSERT_EQ(c2.size(), 3u);  // {1,3} {1,5} {3,5}
  EXPECT_EQ(c2.Get(0)[0], 1u);
  EXPECT_EQ(c2.Get(0)[1], 3u);
  EXPECT_EQ(c2.Get(2)[0], 3u);
  EXPECT_EQ(c2.Get(2)[1], 5u);
}

TEST(AprioriGenTest, PruneRemovesCandidatesWithInfrequentSubsets) {
  // Classic example from the Apriori paper: F3 = {123, 124, 134, 135, 234};
  // join yields {1234, 1345}; 1345 is pruned because {145} (and {345}) are
  // not frequent.
  ItemsetCollection f3 = MakeCollection(
      3, {{1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {1, 3, 5}, {2, 3, 4}});
  ItemsetCollection c4 = AprioriGen(f3);
  ASSERT_EQ(c4.size(), 1u);
  EXPECT_EQ(c4.Get(0)[0], 1u);
  EXPECT_EQ(c4.Get(0)[1], 2u);
  EXPECT_EQ(c4.Get(0)[2], 3u);
  EXPECT_EQ(c4.Get(0)[3], 4u);
}

TEST(AprioriGenTest, EmptyAndSingletonInputs) {
  ItemsetCollection empty(2);
  EXPECT_TRUE(AprioriGen(empty).empty());
  ItemsetCollection one = MakeCollection(2, {{1, 2}});
  EXPECT_TRUE(AprioriGen(one).empty());
}

TEST(AprioriGenTest, OutputSortedUnique) {
  Prng rng(31);
  // Random F2 over 12 items.
  std::set<std::pair<Item, Item>> pairs;
  while (pairs.size() < 30) {
    Item a = static_cast<Item>(rng.NextBounded(12));
    Item b = static_cast<Item>(rng.NextBounded(12));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    pairs.insert({a, b});
  }
  ItemsetCollection f2(2);
  for (auto [a, b] : pairs) {
    std::vector<Item> s = {a, b};
    f2.Add(ItemSpan(s.data(), 2));
  }
  ItemsetCollection c3 = AprioriGen(f2);
  EXPECT_TRUE(c3.IsSortedUnique());
  EXPECT_EQ(c3.k(), 3);
}

// Property: every candidate's (k-1)-subsets are all in F_{k-1}, and every
// k-itemset whose (k-1)-subsets are all frequent appears as a candidate
// (soundness and completeness of apriori_gen).
TEST(AprioriGenTest, SoundAndCompleteOverRandomInput) {
  Prng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    std::set<std::vector<Item>> f2_sets;
    const Item universe = 10;
    while (f2_sets.size() < 20) {
      Item a = static_cast<Item>(rng.NextBounded(universe));
      Item b = static_cast<Item>(rng.NextBounded(universe));
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      f2_sets.insert({a, b});
    }
    ItemsetCollection f2(2);
    for (const auto& s : f2_sets) f2.Add(ItemSpan(s.data(), 2));
    ItemsetCollection c3 = AprioriGen(f2);

    auto has_pair = [&f2_sets](Item a, Item b) {
      return f2_sets.count({a, b}) > 0;
    };
    // Soundness.
    for (std::size_t i = 0; i < c3.size(); ++i) {
      ItemSpan s = c3.Get(i);
      EXPECT_TRUE(has_pair(s[0], s[1]));
      EXPECT_TRUE(has_pair(s[0], s[2]));
      EXPECT_TRUE(has_pair(s[1], s[2]));
    }
    // Completeness.
    std::size_t expected = 0;
    for (Item a = 0; a < universe; ++a) {
      for (Item b = a + 1; b < universe; ++b) {
        for (Item c = b + 1; c < universe; ++c) {
          if (has_pair(a, b) && has_pair(a, c) && has_pair(b, c)) ++expected;
        }
      }
    }
    EXPECT_EQ(c3.size(), expected);
  }
}

}  // namespace
}  // namespace pam
