#include <map>

#include <gtest/gtest.h>

#include "pam/core/apriori_gen.h"
#include "pam/core/serial_apriori.h"
#include "pam/datagen/quest_gen.h"
#include "pam/parallel/driver.h"
#include "testing/random_db.h"

namespace pam {
namespace {

std::map<std::vector<Item>, Count> Flatten(const FrequentItemsets& fi) {
  std::map<std::vector<Item>, Count> out;
  for (const auto& level : fi.levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      ItemSpan s = level.Get(i);
      out[std::vector<Item>(s.begin(), s.end())] = level.count(i);
    }
  }
  return out;
}

TEST(DhpFilterTest, BucketCountUpperBoundsPairSupport) {
  // The safety property DHP rests on: a pair's bucket count can never be
  // below its true support (other pairs may inflate it, never deflate).
  TransactionDatabase db = testing::RandomDb(200, 25, 9, 131);
  for (std::size_t buckets : {16u, 256u, 65536u}) {
    std::vector<Count> bucket_counts =
        CountPairBuckets(db, {0, db.size()}, buckets);
    for (Item a = 0; a < 25; ++a) {
      for (Item b = a + 1; b < 25; ++b) {
        Item pair[2] = {a, b};
        Count support = 0;
        for (std::size_t t = 0; t < db.size(); ++t) {
          if (IsSortedSubset(ItemSpan(pair, 2), db.Transaction(t))) {
            ++support;
          }
        }
        EXPECT_GE(bucket_counts[HashItemset(ItemSpan(pair, 2)) % buckets],
                  support)
            << "pair {" << a << "," << b << "} buckets=" << buckets;
      }
    }
  }
}

TEST(DhpFilterTest, FilterPreservesAllTrueFrequentPairs) {
  TransactionDatabase db = testing::RandomDb(200, 20, 8, 137);
  const Count minsup = 8;
  std::vector<Count> item_counts = CountItems(db, {0, db.size()});
  ItemsetCollection c2 = AprioriGen(MakeF1(item_counts, minsup));
  std::vector<Count> buckets = CountPairBuckets(db, {0, db.size()}, 64);
  ItemsetCollection filtered = FilterByBuckets(c2, buckets, minsup);
  EXPECT_LE(filtered.size(), c2.size());
  // No frequent pair may be filtered out.
  std::vector<Count> true_counts =
      CountBruteForce(db, {0, db.size()}, c2);
  for (std::size_t i = 0; i < c2.size(); ++i) {
    if (true_counts[i] >= minsup) {
      EXPECT_NE(filtered.Find(c2.Get(i)), ItemsetCollection::npos);
    }
  }
}

TEST(DhpFilterTest, SerialResultsIdenticalWithFilter) {
  TransactionDatabase db = GenerateQuest([] {
    QuestConfig q;
    q.num_transactions = 800;
    q.num_items = 120;
    q.avg_transaction_len = 8;
    q.avg_pattern_len = 3;
    q.seed = 19;
    return q;
  }());
  AprioriConfig plain;
  plain.minsup_fraction = 0.015;
  SerialResult without = MineSerial(db, plain);

  AprioriConfig with = plain;
  with.dhp_buckets = 4096;
  SerialResult with_filter = MineSerial(db, with);

  EXPECT_EQ(Flatten(with_filter.frequent), Flatten(without.frequent));
  // The filter must actually prune C_2 on this workload.
  ASSERT_GE(with_filter.passes.size(), 2u);
  EXPECT_LT(with_filter.passes[1].num_candidates,
            without.passes[1].num_candidates);
}

TEST(DhpFilterTest, MoreBucketsPruneMore) {
  TransactionDatabase db = testing::RandomDb(400, 60, 8, 139);
  AprioriConfig base;
  base.minsup_count = 10;
  std::size_t prev_candidates = static_cast<std::size_t>(-1);
  for (std::size_t buckets : {0u, 64u, 4096u, 262144u}) {
    AprioriConfig cfg = base;
    cfg.dhp_buckets = buckets;
    SerialResult result = MineSerial(db, cfg);
    if (result.passes.size() < 2) break;
    const std::size_t c2 = result.passes[1].num_candidates;
    EXPECT_LE(c2, prev_candidates) << "buckets=" << buckets;
    prev_candidates = c2;
  }
}

class DhpParallelSweep : public ::testing::TestWithParam<Algorithm> {};

TEST_P(DhpParallelSweep, ParallelResultsIdenticalWithFilter) {
  TransactionDatabase db = GenerateQuest([] {
    QuestConfig q;
    q.num_transactions = 500;
    q.num_items = 80;
    q.avg_transaction_len = 7;
    q.avg_pattern_len = 3;
    q.seed = 29;
    return q;
  }());
  AprioriConfig serial_cfg;
  serial_cfg.minsup_fraction = 0.02;
  SerialResult serial = MineSerial(db, serial_cfg);

  ParallelConfig cfg;
  cfg.apriori = serial_cfg;
  cfg.apriori.dhp_buckets = 2048;
  ParallelResult result = MineParallel(GetParam(), db, 4, cfg);
  EXPECT_EQ(Flatten(result.frequent), Flatten(serial.frequent));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, DhpParallelSweep,
    ::testing::Values(Algorithm::kCD, Algorithm::kDD, Algorithm::kDDComm,
                      Algorithm::kIDD, Algorithm::kHD, Algorithm::kHPA),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      std::string name = AlgorithmName(info.param);
      for (char& c : name) {
        if (c == '+') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace pam
