#include "pam/core/itemset_collection.h"

#include <gtest/gtest.h>

namespace pam {
namespace {

std::vector<Item> ToVec(ItemSpan s) {
  return std::vector<Item>(s.begin(), s.end());
}

TEST(ItemsetCollectionTest, AddAndGet) {
  ItemsetCollection col(3);
  std::vector<Item> a = {1, 2, 3};
  std::vector<Item> b = {2, 5, 9};
  col.Add(ItemSpan(a.data(), a.size()));
  col.AddWithCount(ItemSpan(b.data(), b.size()), 7);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(ToVec(col.Get(0)), a);
  EXPECT_EQ(ToVec(col.Get(1)), b);
  EXPECT_EQ(col.count(0), 0u);
  EXPECT_EQ(col.count(1), 7u);
}

TEST(ItemsetCollectionTest, CountMutation) {
  ItemsetCollection col(1);
  Item x = 4;
  col.Add(ItemSpan(&x, 1));
  col.set_count(0, 10);
  col.add_count(0, 5);
  EXPECT_EQ(col.count(0), 15u);
}

TEST(ItemsetCollectionTest, SortLexicographicPermutesCounts) {
  ItemsetCollection col(2);
  std::vector<std::vector<Item>> sets = {{3, 4}, {1, 9}, {1, 2}, {2, 7}};
  for (std::size_t i = 0; i < sets.size(); ++i) {
    col.AddWithCount(ItemSpan(sets[i].data(), 2), 100 + i);
  }
  col.SortLexicographic();
  ASSERT_TRUE(col.IsSortedUnique());
  EXPECT_EQ(ToVec(col.Get(0)), (std::vector<Item>{1, 2}));
  EXPECT_EQ(col.count(0), 102u);
  EXPECT_EQ(ToVec(col.Get(3)), (std::vector<Item>{3, 4}));
  EXPECT_EQ(col.count(3), 100u);
}

TEST(ItemsetCollectionTest, IsSortedUniqueDetectsDuplicates) {
  ItemsetCollection col(2);
  std::vector<Item> a = {1, 2};
  col.Add(ItemSpan(a.data(), 2));
  col.Add(ItemSpan(a.data(), 2));
  EXPECT_FALSE(col.IsSortedUnique());
}

TEST(ItemsetCollectionTest, PruneBelowKeepsOrder) {
  ItemsetCollection col(1);
  for (Item x = 0; x < 10; ++x) col.AddWithCount(ItemSpan(&x, 1), x);
  col.PruneBelow(5);
  ASSERT_EQ(col.size(), 5u);
  for (std::size_t i = 0; i < col.size(); ++i) {
    EXPECT_EQ(col.Get(i)[0], static_cast<Item>(5 + i));
    EXPECT_EQ(col.count(i), 5 + i);
  }
}

TEST(ItemsetCollectionTest, PruneAll) {
  ItemsetCollection col(1);
  for (Item x = 0; x < 4; ++x) col.AddWithCount(ItemSpan(&x, 1), 1);
  col.PruneBelow(2);
  EXPECT_TRUE(col.empty());
}

TEST(ItemsetCollectionTest, FindBinarySearch) {
  ItemsetCollection col(2);
  for (Item a = 0; a < 8; ++a) {
    for (Item b = a + 1; b < 8; ++b) {
      std::vector<Item> s = {a, b};
      col.Add(ItemSpan(s.data(), 2));
    }
  }
  ASSERT_TRUE(col.IsSortedUnique());
  std::vector<Item> probe = {3, 6};
  const std::size_t idx = col.Find(ItemSpan(probe.data(), 2));
  ASSERT_NE(idx, ItemsetCollection::npos);
  EXPECT_EQ(ToVec(col.Get(idx)), probe);

  std::vector<Item> missing = {6, 3};  // unsorted would never be stored
  std::vector<Item> missing2 = {7, 9};
  EXPECT_EQ(col.Find(ItemSpan(missing2.data(), 2)), ItemsetCollection::npos);
}

TEST(ItemsetCollectionTest, SerializeRoundTrip) {
  ItemsetCollection col(3);
  std::vector<std::vector<Item>> sets = {{1, 2, 3}, {4, 6, 8}, {5, 7, 11}};
  for (std::size_t i = 0; i < sets.size(); ++i) {
    col.AddWithCount(ItemSpan(sets[i].data(), 3), i * 1000 + 1);
  }
  std::vector<std::uint64_t> wire = col.Serialize();
  ItemsetCollection back =
      ItemsetCollection::Deserialize(wire.data(), wire.size());
  ASSERT_EQ(back.k(), 3);
  ASSERT_EQ(back.size(), col.size());
  for (std::size_t i = 0; i < col.size(); ++i) {
    EXPECT_EQ(ToVec(back.Get(i)), ToVec(col.Get(i)));
    EXPECT_EQ(back.count(i), col.count(i));
  }
}

TEST(ItemsetCollectionTest, SerializeEmpty) {
  ItemsetCollection col(2);
  std::vector<std::uint64_t> wire = col.Serialize();
  ItemsetCollection back =
      ItemsetCollection::Deserialize(wire.data(), wire.size());
  EXPECT_EQ(back.k(), 2);
  EXPECT_TRUE(back.empty());
}

}  // namespace
}  // namespace pam
