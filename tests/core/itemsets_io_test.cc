#include "pam/core/itemsets_io.h"

#include <filesystem>
#include <fstream>
#include <map>

#include <gtest/gtest.h>

#include "pam/util/prng.h"
#include "testing/random_db.h"

namespace pam {
namespace {

class ItemsetsIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pam_fi_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

std::map<std::vector<Item>, Count> Flatten(const FrequentItemsets& fi) {
  std::map<std::vector<Item>, Count> out;
  for (const auto& level : fi.levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      ItemSpan s = level.Get(i);
      out[std::vector<Item>(s.begin(), s.end())] = level.count(i);
    }
  }
  return out;
}

TEST_F(ItemsetsIoTest, RoundTrip) {
  TransactionDatabase db = testing::RandomDb(150, 15, 8, 81);
  AprioriConfig cfg;
  cfg.minsup_count = 6;
  FrequentItemsets frequent = MineSerial(db, cfg).frequent;
  ASSERT_GT(frequent.TotalCount(), 0u);

  ASSERT_TRUE(WriteFrequentItemsets(frequent, Path("fi.bin")).ok());
  auto loaded = ReadFrequentItemsets(Path("fi.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(Flatten(loaded.value()), Flatten(frequent));
}

TEST_F(ItemsetsIoTest, EmptyItemsets) {
  FrequentItemsets empty;
  ASSERT_TRUE(WriteFrequentItemsets(empty, Path("empty.bin")).ok());
  auto loaded = ReadFrequentItemsets(Path("empty.bin"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->TotalCount(), 0u);
}

TEST_F(ItemsetsIoTest, MissingFileFails) {
  EXPECT_FALSE(ReadFrequentItemsets(Path("nope.bin")).ok());
}

TEST_F(ItemsetsIoTest, RejectsWrongMagic) {
  std::ofstream out(Path("bad.bin"), std::ios::binary);
  const std::uint64_t junk[4] = {1, 2, 3, 4};
  out.write(reinterpret_cast<const char*>(junk), sizeof(junk));
  out.close();
  EXPECT_FALSE(ReadFrequentItemsets(Path("bad.bin")).ok());
}

TEST_F(ItemsetsIoTest, FuzzedCorruptionNeverCrashes) {
  TransactionDatabase db = testing::RandomDb(100, 12, 7, 83);
  AprioriConfig cfg;
  cfg.minsup_count = 5;
  FrequentItemsets frequent = MineSerial(db, cfg).frequent;
  ASSERT_TRUE(WriteFrequentItemsets(frequent, Path("base.bin")).ok());

  std::ifstream in(Path("base.bin"), std::ios::binary);
  std::vector<char> base((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  in.close();

  Prng rng(997);
  for (int trial = 0; trial < 150; ++trial) {
    std::vector<char> corrupted = base;
    corrupted[rng.NextBounded(corrupted.size())] =
        static_cast<char>(rng.NextU64());
    std::ofstream out(Path("c.bin"), std::ios::binary);
    out.write(corrupted.data(),
              static_cast<std::streamsize>(corrupted.size()));
    out.close();
    auto loaded = ReadFrequentItemsets(Path("c.bin"));
    if (loaded.ok()) {
      // Counts may silently differ, but the structure must be valid.
      for (const auto& level : loaded->levels) {
        EXPECT_TRUE(level.IsSortedUnique());
      }
    }
  }
}

}  // namespace
}  // namespace pam
