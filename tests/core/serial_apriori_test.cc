#include "pam/core/serial_apriori.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "pam/datagen/quest_gen.h"
#include "testing/random_db.h"

namespace pam {
namespace {

// Reference miner: exhaustive enumeration of all itemsets up to size
// max_k with support >= minsup. Exponential; test-sized inputs only.
std::map<std::vector<Item>, Count> BruteForceFrequent(
    const TransactionDatabase& db, Count minsup, int max_k) {
  std::map<std::vector<Item>, Count> counts;
  for (std::size_t t = 0; t < db.size(); ++t) {
    ItemSpan tx = db.Transaction(t);
    const std::size_t n = tx.size();
    // Enumerate all non-empty subsets of at most max_k items.
    for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
      if (__builtin_popcountll(mask) > max_k) continue;
      std::vector<Item> subset;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (1ULL << i)) subset.push_back(tx[i]);
      }
      ++counts[subset];
    }
  }
  std::map<std::vector<Item>, Count> frequent;
  for (const auto& [set, c] : counts) {
    if (c >= minsup) frequent[set] = c;
  }
  return frequent;
}

std::map<std::vector<Item>, Count> Flatten(const FrequentItemsets& fi) {
  std::map<std::vector<Item>, Count> out;
  for (const auto& level : fi.levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      ItemSpan s = level.Get(i);
      out[std::vector<Item>(s.begin(), s.end())] = level.count(i);
    }
  }
  return out;
}

TEST(SerialAprioriTest, SupermarketExample) {
  // Table I: with minsup count 3, {Diaper, Milk} is frequent with count 3.
  TransactionDatabase db = testing::SupermarketDb();
  AprioriConfig cfg;
  cfg.minsup_count = 3;
  SerialResult result = MineSerial(db, cfg);

  Count c = 0;
  std::vector<Item> dm = {testing::kDiaper, testing::kMilk};
  ASSERT_TRUE(result.frequent.Lookup(ItemSpan(dm.data(), 2), &c));
  EXPECT_EQ(c, 3u);

  // {Diaper, Milk, Beer} has support 2 < 3: not frequent.
  std::vector<Item> dmb = {testing::kBeer, testing::kDiaper, testing::kMilk};
  EXPECT_FALSE(result.frequent.Lookup(ItemSpan(dmb.data(), 3), nullptr));
}

TEST(SerialAprioriTest, MatchesBruteForceOnRandomDbs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    TransactionDatabase db = testing::RandomDb(60, 12, 8, seed);
    AprioriConfig cfg;
    cfg.minsup_count = 5;
    SerialResult result = MineSerial(db, cfg);
    auto expected = BruteForceFrequent(db, 5, /*max_k=*/8);
    auto actual = Flatten(result.frequent);
    EXPECT_EQ(actual, expected) << "seed " << seed;
  }
}

TEST(SerialAprioriTest, MinsupFractionResolution) {
  AprioriConfig cfg;
  cfg.minsup_fraction = 0.01;
  EXPECT_EQ(cfg.ResolveMinsup(1000), 10u);
  EXPECT_EQ(cfg.ResolveMinsup(50), 1u);
  cfg.minsup_count = 7;
  EXPECT_EQ(cfg.ResolveMinsup(1000), 7u);  // absolute wins
  AprioriConfig tiny;
  tiny.minsup_fraction = 0.0001;
  EXPECT_EQ(tiny.ResolveMinsup(10), 1u);  // never below 1
}

TEST(SerialAprioriTest, MaxKStopsEarly) {
  TransactionDatabase db = testing::RandomDb(100, 8, 6, 9);
  AprioriConfig cfg;
  cfg.minsup_count = 2;
  cfg.max_k = 2;
  SerialResult result = MineSerial(db, cfg);
  EXPECT_LE(result.frequent.MaxK(), 2);
  EXPECT_LE(result.passes.size(), 2u);
}

TEST(SerialAprioriTest, MemoryCapProducesSameAnswerWithMoreScans) {
  TransactionDatabase db = GenerateQuest([] {
    QuestConfig q;
    q.num_transactions = 800;
    q.num_items = 60;
    q.avg_transaction_len = 8;
    q.avg_pattern_len = 3;
    q.seed = 4;
    return q;
  }());
  AprioriConfig unlimited;
  unlimited.minsup_fraction = 0.02;
  SerialResult full = MineSerial(db, unlimited);

  AprioriConfig capped = unlimited;
  capped.max_candidates_in_memory = 10;
  SerialResult chunked = MineSerial(db, capped);

  EXPECT_EQ(Flatten(full.frequent), Flatten(chunked.frequent));
  // At least one pass must have needed multiple scans.
  bool multi_scan = false;
  for (const auto& pass : chunked.passes) {
    if (pass.db_scans > 1) multi_scan = true;
  }
  EXPECT_TRUE(multi_scan);
}

TEST(SerialAprioriTest, SliceRestrictsMining) {
  TransactionDatabase db;
  db.Add({1, 2});
  db.Add({1, 2});
  db.Add({3, 4});
  db.Add({3, 4});
  AprioriConfig cfg;
  cfg.minsup_count = 2;
  SerialResult first_half =
      MineSerial(db, cfg, TransactionDatabase::Slice{0, 2});
  std::vector<Item> s12 = {1, 2};
  std::vector<Item> s34 = {3, 4};
  EXPECT_TRUE(first_half.frequent.Lookup(ItemSpan(s12.data(), 2), nullptr));
  EXPECT_FALSE(first_half.frequent.Lookup(ItemSpan(s34.data(), 2), nullptr));
}

TEST(SerialAprioriTest, PassInfoIsConsistent) {
  TransactionDatabase db = testing::RandomDb(200, 15, 8, 10);
  AprioriConfig cfg;
  cfg.minsup_count = 10;
  SerialResult result = MineSerial(db, cfg);
  ASSERT_FALSE(result.passes.empty());
  EXPECT_EQ(result.passes[0].k, 1);
  for (std::size_t p = 1; p < result.passes.size(); ++p) {
    const auto& pass = result.passes[p];
    EXPECT_EQ(pass.k, static_cast<int>(p) + 1);
    EXPECT_LE(pass.num_frequent, pass.num_candidates);
    if (p < result.frequent.levels.size()) {
      EXPECT_EQ(pass.num_frequent, result.frequent.levels[p].size());
    }
    EXPECT_EQ(pass.subset.transactions, db.size());
  }
}

TEST(SerialAprioriTest, EmptyDatabase) {
  TransactionDatabase db;
  AprioriConfig cfg;
  cfg.minsup_count = 1;
  SerialResult result = MineSerial(db, cfg);
  EXPECT_EQ(result.frequent.TotalCount(), 0u);
}

TEST(SerialAprioriTest, HighMinsupYieldsNothing) {
  TransactionDatabase db = testing::RandomDb(50, 20, 5, 11);
  AprioriConfig cfg;
  cfg.minsup_count = 1000;
  SerialResult result = MineSerial(db, cfg);
  EXPECT_EQ(result.frequent.TotalCount(), 0u);
}

}  // namespace
}  // namespace pam
