#include "pam/core/maximal.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "testing/random_db.h"

namespace pam {
namespace {

FrequentItemsets Mine(const TransactionDatabase& db, Count minsup) {
  AprioriConfig cfg;
  cfg.minsup_count = minsup;
  return MineSerial(db, cfg).frequent;
}

std::set<std::vector<Item>> Sets(const FrequentItemsets& fi) {
  std::set<std::vector<Item>> out;
  for (const auto& level : fi.levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      ItemSpan s = level.Get(i);
      out.insert(std::vector<Item>(s.begin(), s.end()));
    }
  }
  return out;
}

TEST(MaximalTest, SimpleChain) {
  // {1,2,3} frequent => {1,2}, {1,3}, {2,3}, singletons all frequent but
  // only the triple is maximal (plus any frequent item outside it).
  TransactionDatabase db;
  for (int i = 0; i < 5; ++i) db.Add({1, 2, 3});
  db.Add({9});
  db.Add({9});
  FrequentItemsets frequent = Mine(db, 2);
  FrequentItemsets maximal = ExtractMaximal(frequent);
  auto sets = Sets(maximal);
  EXPECT_EQ(sets.size(), 2u);
  EXPECT_TRUE(sets.count({1, 2, 3}));
  EXPECT_TRUE(sets.count({9}));
}

TEST(MaximalTest, MaximalSetsAreAntichain) {
  TransactionDatabase db = testing::RandomDb(150, 12, 8, 61);
  FrequentItemsets maximal = ExtractMaximal(Mine(db, 8));
  auto sets = Sets(maximal);
  for (const auto& a : sets) {
    for (const auto& b : sets) {
      if (a == b) continue;
      EXPECT_FALSE(IsSortedSubset(ItemSpan(a.data(), a.size()),
                                  ItemSpan(b.data(), b.size())))
          << "maximal set contained in another maximal set";
    }
  }
}

TEST(MaximalTest, ClosureRecoversAllFrequentSets) {
  TransactionDatabase db = testing::RandomDb(150, 12, 8, 67);
  FrequentItemsets frequent = Mine(db, 8);
  FrequentItemsets maximal = ExtractMaximal(frequent);
  // Every frequent itemset is covered by some maximal superset, and
  // nothing non-frequent is.
  for (const auto& level : frequent.levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      EXPECT_TRUE(CoveredByClosure(maximal, level.Get(i)));
    }
  }
  std::vector<Item> bogus = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  EXPECT_FALSE(
      CoveredByClosure(maximal, ItemSpan(bogus.data(), bogus.size())));
}

TEST(ClosedTest, ClosedSupersetOfMaximal) {
  // Maximal sets are closed (no frequent superset at all), so
  // maximal ⊆ closed ⊆ frequent.
  TransactionDatabase db = testing::RandomDb(150, 12, 8, 71);
  FrequentItemsets frequent = Mine(db, 8);
  auto maximal = Sets(ExtractMaximal(frequent));
  auto closed = Sets(ExtractClosed(frequent));
  auto all = Sets(frequent);
  for (const auto& s : maximal) EXPECT_TRUE(closed.count(s));
  for (const auto& s : closed) EXPECT_TRUE(all.count(s));
}

TEST(ClosedTest, ClosedPreservesSupportInformation) {
  // Reference definition: an itemset is closed iff no immediate superset
  // has the same count.
  TransactionDatabase db = testing::RandomDb(120, 10, 7, 73);
  FrequentItemsets frequent = Mine(db, 6);
  std::map<std::vector<Item>, Count> counts;
  for (const auto& level : frequent.levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      ItemSpan s = level.Get(i);
      counts[std::vector<Item>(s.begin(), s.end())] = level.count(i);
    }
  }
  auto closed = Sets(ExtractClosed(frequent));
  for (const auto& [set, count] : counts) {
    bool has_equal_superset = false;
    for (const auto& [other, other_count] : counts) {
      if (other.size() != set.size() + 1 || other_count != count) continue;
      if (IsSortedSubset(ItemSpan(set.data(), set.size()),
                         ItemSpan(other.data(), other.size()))) {
        has_equal_superset = true;
      }
    }
    EXPECT_EQ(closed.count(set) > 0, !has_equal_superset)
        << "itemset size " << set.size();
  }
}

TEST(MaximalTest, EmptyInput) {
  FrequentItemsets empty;
  EXPECT_EQ(ExtractMaximal(empty).TotalCount(), 0u);
  EXPECT_EQ(ExtractClosed(empty).TotalCount(), 0u);
  std::vector<Item> probe = {1};
  EXPECT_FALSE(CoveredByClosure(empty, ItemSpan(probe.data(), 1)));
}

}  // namespace
}  // namespace pam
