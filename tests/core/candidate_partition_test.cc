#include "pam/core/candidate_partition.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "pam/core/apriori_gen.h"
#include "pam/util/prng.h"

namespace pam {
namespace {

// Candidate set over `universe` items where items < skew_until carry
// `heavy` candidates each as first item and the rest carry one.
ItemsetCollection SkewedCandidates(Item universe, Item skew_until,
                                   std::size_t heavy) {
  ItemsetCollection col(2);
  for (Item first = 0; first < universe; ++first) {
    const std::size_t n = first < skew_until ? heavy : 1;
    std::size_t added = 0;
    for (Item second = first + 1; second < universe && added < n; ++second) {
      std::vector<Item> s = {first, second};
      col.Add(ItemSpan(s.data(), 2));
      ++added;
    }
  }
  col.SortLexicographic();
  return col;
}

void ExpectExactCover(const CandidatePartition& p, std::size_t m) {
  std::set<std::uint32_t> seen;
  for (const auto& ids : p.ids_per_part) {
    for (std::uint32_t id : ids) {
      EXPECT_TRUE(seen.insert(id).second) << "candidate " << id << " twice";
      EXPECT_LT(id, m);
    }
  }
  EXPECT_EQ(seen.size(), m);
}

TEST(RoundRobinPartitionTest, CoversAllCandidatesOnce) {
  CandidatePartition p = PartitionRoundRobin(101, 7);
  ASSERT_EQ(p.ids_per_part.size(), 7u);
  ExpectExactCover(p, 101);
  EXPECT_TRUE(p.first_item_filter.empty());
}

TEST(RoundRobinPartitionTest, NearPerfectSizeBalance) {
  CandidatePartition p = PartitionRoundRobin(100, 8);
  for (const auto& ids : p.ids_per_part) {
    EXPECT_GE(ids.size(), 12u);
    EXPECT_LE(ids.size(), 13u);
  }
}

TEST(PrefixPartitionTest, CoversAllCandidatesOnce) {
  ItemsetCollection col = SkewedCandidates(40, 0, 1);
  CandidatePartition p = PartitionByPrefix(col, 40, 5,
                                           PrefixStrategy::kBinPacked);
  ExpectExactCover(p, col.size());
}

TEST(PrefixPartitionTest, BitmapMatchesOwnership) {
  ItemsetCollection col = SkewedCandidates(30, 10, 3);
  CandidatePartition p = PartitionByPrefix(col, 30, 4,
                                           PrefixStrategy::kBinPacked,
                                           /*split_heavy_prefixes=*/false);
  ASSERT_EQ(p.first_item_filter.size(), 4u);
  for (int part = 0; part < 4; ++part) {
    const Bitmap& bm = p.first_item_filter[static_cast<std::size_t>(part)];
    // Every owned candidate's first item has its bit set.
    for (std::uint32_t id : p.ids_per_part[static_cast<std::size_t>(part)]) {
      EXPECT_TRUE(bm.Test(col.Get(id)[0]));
    }
    // Without heavy-prefix splitting, first items are exclusive: a bit set
    // on this part is clear on every other part.
    for (std::size_t bit = 0; bit < bm.size(); ++bit) {
      if (!bm.Test(bit)) continue;
      for (int other = 0; other < 4; ++other) {
        if (other != part) {
          EXPECT_FALSE(
              p.first_item_filter[static_cast<std::size_t>(other)].Test(bit));
        }
      }
    }
  }
}

TEST(PrefixPartitionTest, BinPackedBeatsContiguousOnSkew) {
  // Paper's example: all the candidate mass under the first half of the
  // items.
  ItemsetCollection col = SkewedCandidates(100, 50, 8);
  CandidatePartition packed = PartitionByPrefix(
      col, 100, 2, PrefixStrategy::kBinPacked, false);
  CandidatePartition contiguous = PartitionByPrefix(
      col, 100, 2, PrefixStrategy::kContiguous, false);
  EXPECT_LT(packed.CandidateBalance().imbalance,
            contiguous.CandidateBalance().imbalance);
  EXPECT_GT(contiguous.CandidateBalance().imbalance_percent, 50.0);
  EXPECT_LT(packed.CandidateBalance().imbalance_percent, 10.0);
}

TEST(PrefixPartitionTest, HeavyPrefixSplittingCapsDominantItem) {
  // One item owns nearly every candidate: without splitting one part gets
  // almost everything; with splitting the load spreads.
  ItemsetCollection col(2);
  for (Item second = 1; second <= 64; ++second) {
    std::vector<Item> s = {0, second};
    col.Add(ItemSpan(s.data(), 2));
  }
  for (Item first = 70; first < 74; ++first) {
    std::vector<Item> s = {first, first + 1};
    col.Add(ItemSpan(s.data(), 2));
  }
  col.SortLexicographic();

  CandidatePartition no_split = PartitionByPrefix(
      col, 100, 4, PrefixStrategy::kBinPacked, false);
  CandidatePartition split = PartitionByPrefix(
      col, 100, 4, PrefixStrategy::kBinPacked, true);
  EXPECT_GT(no_split.CandidateBalance().imbalance, 3.0);
  EXPECT_LT(split.CandidateBalance().imbalance, 1.5);
  ExpectExactCover(split, col.size());

  // The split item's bit must be set on every part that owns a piece.
  int parts_with_item0 = 0;
  for (int part = 0; part < 4; ++part) {
    bool owns = false;
    for (std::uint32_t id :
         split.ids_per_part[static_cast<std::size_t>(part)]) {
      if (col.Get(id)[0] == 0) owns = true;
    }
    if (owns) {
      ++parts_with_item0;
      EXPECT_TRUE(
          split.first_item_filter[static_cast<std::size_t>(part)].Test(0));
    }
  }
  EXPECT_GT(parts_with_item0, 1);
}

TEST(PrefixPartitionTest, SinglePartOwnsEverything) {
  ItemsetCollection col = SkewedCandidates(20, 5, 2);
  CandidatePartition p = PartitionByPrefix(col, 20, 1,
                                           PrefixStrategy::kBinPacked);
  ASSERT_EQ(p.ids_per_part.size(), 1u);
  EXPECT_EQ(p.ids_per_part[0].size(), col.size());
}

TEST(PrefixPartitionTest, EmptyCandidates) {
  ItemsetCollection col(2);
  CandidatePartition p = PartitionByPrefix(col, 10, 4,
                                           PrefixStrategy::kBinPacked);
  for (const auto& ids : p.ids_per_part) EXPECT_TRUE(ids.empty());
}

TEST(WeightedPartitionTest, UniformCostsMatchStaticBitForBit) {
  // The adaptive balancer's contract: a cost vector that rates every item
  // equal must reproduce the static candidate-count partition exactly
  // (weights scale proportionally, LPT order and ties are unchanged).
  ItemsetCollection col = SkewedCandidates(60, 20, 5);
  const CandidatePartition statik =
      PartitionByPrefix(col, 60, 4, PrefixStrategy::kBinPacked, true);
  for (std::uint64_t cost : {std::uint64_t{1}, std::uint64_t{1024}}) {
    const std::vector<std::uint64_t> costs(60, cost);
    const CandidatePartition weighted = PartitionByPrefix(
        col, 60, 4, PrefixStrategy::kBinPacked, true, &costs);
    EXPECT_EQ(PartitionDigest(weighted), PartitionDigest(statik))
        << "cost " << cost;
    EXPECT_EQ(PartitionMoves(statik, weighted), 0u) << "cost " << cost;
  }
}

TEST(WeightedPartitionTest, SkewedCostsMoveCandidates) {
  // Equal candidate counts per item, but items < 10 cost 8x: the measured
  // packing must differ from the static one and weigh the parts by cost.
  ItemsetCollection col = SkewedCandidates(40, 0, 1);
  std::vector<std::uint64_t> costs(40, 1024);
  for (Item f = 0; f < 10; ++f) costs[f] = 8 * 1024;
  const CandidatePartition statik =
      PartitionByPrefix(col, 40, 4, PrefixStrategy::kBinPacked, true);
  const CandidatePartition weighted = PartitionByPrefix(
      col, 40, 4, PrefixStrategy::kBinPacked, true, &costs);
  ExpectExactCover(weighted, col.size());
  EXPECT_NE(PartitionDigest(weighted), PartitionDigest(statik));
  EXPECT_GT(PartitionMoves(statik, weighted), 0u);

  // The weighted parts must be balanced in cost, hence visibly unbalanced
  // in candidate count (the expensive items crowd out cheap ones).
  std::vector<std::uint64_t> part_cost(4, 0);
  for (int part = 0; part < 4; ++part) {
    for (std::uint32_t id :
         weighted.ids_per_part[static_cast<std::size_t>(part)]) {
      part_cost[static_cast<std::size_t>(part)] += costs[col.Get(id)[0]];
    }
  }
  const std::uint64_t max_cost =
      *std::max_element(part_cost.begin(), part_cost.end());
  const std::uint64_t min_cost =
      *std::min_element(part_cost.begin(), part_cost.end());
  EXPECT_LT(static_cast<double>(max_cost),
            1.35 * static_cast<double>(min_cost));
}

TEST(WeightedPartitionTest, WeightedHeavySplitUsesCost) {
  // One first item whose *cost* (not candidate count) exceeds the per-part
  // share must be split across parts when splitting is on.
  ItemsetCollection col = SkewedCandidates(16, 16, 4);  // ~4 cands each
  std::vector<std::uint64_t> costs(16, 1024);
  costs[0] = 64 * 1024;  // item 0: 4 candidates but ~84% of total weight
  const CandidatePartition weighted = PartitionByPrefix(
      col, 16, 4, PrefixStrategy::kBinPacked, true, &costs);
  ExpectExactCover(weighted, col.size());
  int parts_with_item0 = 0;
  for (int part = 0; part < 4; ++part) {
    for (std::uint32_t id :
         weighted.ids_per_part[static_cast<std::size_t>(part)]) {
      if (col.Get(id)[0] == 0) {
        ++parts_with_item0;
        break;
      }
    }
  }
  EXPECT_GT(parts_with_item0, 1);
}

TEST(WeightedPartitionTest, DeterministicAcrossCalls) {
  ItemsetCollection col = SkewedCandidates(50, 25, 3);
  Prng rng(11);
  std::vector<std::uint64_t> costs(50);
  for (auto& c : costs) c = 64 + rng.NextBounded(4096);
  const std::uint64_t a = PartitionDigest(PartitionByPrefix(
      col, 50, 8, PrefixStrategy::kBinPacked, true, &costs));
  const std::uint64_t b = PartitionDigest(PartitionByPrefix(
      col, 50, 8, PrefixStrategy::kBinPacked, true, &costs));
  EXPECT_EQ(a, b);
}

TEST(PrefixPartitionTest, PaperReportedBalanceBand) {
  // The paper reports candidate-count imbalance around 1.3% (P=4) and 2.3%
  // (P=8) on realistic candidate sets; verify the packer achieves a small
  // imbalance (< 5%) on a random-ish candidate distribution.
  Prng rng(5);
  ItemsetCollection col(2);
  for (Item first = 0; first < 120; ++first) {
    const std::size_t n = 1 + rng.NextBounded(12);
    for (std::size_t j = 0; j < n; ++j) {
      const Item second =
          first + 1 + static_cast<Item>(rng.NextBounded(60) + j * 60);
      std::vector<Item> s = {first, second};
      col.Add(ItemSpan(s.data(), 2));
    }
  }
  col.SortLexicographic();
  for (int p : {4, 8}) {
    CandidatePartition part = PartitionByPrefix(
        col, 1000, p, PrefixStrategy::kBinPacked);
    EXPECT_LT(part.CandidateBalance().imbalance_percent, 5.0)
        << "P=" << p;
  }
}

}  // namespace
}  // namespace pam
