// Miner-level parameter sweeps: the serial Apriori result must be
// invariant to every performance knob (hash tree shape, memory cap, DHP
// buckets), and the itemset collection must behave like a reference map
// under randomized operations.

#include <map>
#include <tuple>

#include <gtest/gtest.h>

#include "pam/core/serial_apriori.h"
#include "pam/model/cost_model.h"
#include "pam/parallel/driver.h"
#include "pam/util/prng.h"
#include "testing/random_db.h"

namespace pam {
namespace {

std::map<std::vector<Item>, Count> Flatten(const FrequentItemsets& fi) {
  std::map<std::vector<Item>, Count> out;
  for (const auto& level : fi.levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      ItemSpan s = level.Get(i);
      out[std::vector<Item>(s.begin(), s.end())] = level.count(i);
    }
  }
  return out;
}

class MinerKnobSweep
    : public ::testing::TestWithParam<
          std::tuple<int, int, std::size_t, std::size_t>> {};

TEST_P(MinerKnobSweep, ResultInvariantToPerformanceKnobs) {
  const auto [fanout, leaf_capacity, memory_cap, dhp] = GetParam();
  static const TransactionDatabase db = testing::RandomDb(220, 18, 9, 555);

  AprioriConfig reference;
  reference.minsup_count = 7;
  static const auto expected = Flatten(MineSerial(db, reference).frequent);
  ASSERT_FALSE(expected.empty());

  AprioriConfig cfg = reference;
  cfg.tree.fanout = fanout;
  cfg.tree.leaf_capacity = leaf_capacity;
  cfg.max_candidates_in_memory = memory_cap;
  cfg.dhp_buckets = dhp;
  EXPECT_EQ(Flatten(MineSerial(db, cfg).frequent), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, MinerKnobSweep,
    ::testing::Combine(::testing::Values(2, 7, 64),
                       ::testing::Values(1, 16),
                       ::testing::Values(std::size_t{0}, std::size_t{13}),
                       ::testing::Values(std::size_t{0}, std::size_t{32},
                                         std::size_t{8192})),
    [](const ::testing::TestParamInfo<
        std::tuple<int, int, std::size_t, std::size_t>>& info) {
      return "fan" + std::to_string(std::get<0>(info.param)) + "_leaf" +
             std::to_string(std::get<1>(info.param)) + "_cap" +
             std::to_string(std::get<2>(info.param)) + "_dhp" +
             std::to_string(std::get<3>(info.param));
    });

TEST(ItemsetCollectionPropertyTest, BehavesLikeReferenceMap) {
  Prng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    const int k = 1 + static_cast<int>(rng.NextBounded(4));
    std::map<std::vector<Item>, Count> reference;
    ItemsetCollection col(k);
    // Random unique sorted itemsets with random counts.
    for (int i = 0; i < 60; ++i) {
      std::vector<Item> set;
      while (set.size() < static_cast<std::size_t>(k)) {
        const Item x = static_cast<Item>(rng.NextBounded(30));
        if (std::find(set.begin(), set.end(), x) == set.end()) {
          set.push_back(x);
        }
      }
      std::sort(set.begin(), set.end());
      if (reference.count(set)) continue;
      const Count c = rng.NextBounded(100);
      reference[set] = c;
      col.AddWithCount(ItemSpan(set.data(), set.size()), c);
    }
    col.SortLexicographic();
    ASSERT_TRUE(col.IsSortedUnique());
    ASSERT_EQ(col.size(), reference.size());

    // Lookup every stored set and some absent probes.
    for (const auto& [set, count] : reference) {
      const std::size_t idx = col.Find(ItemSpan(set.data(), set.size()));
      ASSERT_NE(idx, ItemsetCollection::npos);
      EXPECT_EQ(col.count(idx), count);
    }
    // Prune and compare against the reference filtered the same way.
    const Count threshold = 50;
    col.PruneBelow(threshold);
    std::size_t expected_size = 0;
    for (const auto& [set, count] : reference) {
      if (count >= threshold) ++expected_size;
    }
    EXPECT_EQ(col.size(), expected_size);
    for (std::size_t i = 0; i < col.size(); ++i) {
      EXPECT_GE(col.count(i), threshold);
    }
  }
}

TEST(MinerSweepExtra, Sp2ModelAlsoRanksPaperStyle) {
  // The SP2 machine model must produce the same qualitative ordering as
  // the T3E one on an M-heavy workload (Figure 12's machine).
  TransactionDatabase db = testing::RandomDb(600, 40, 10, 557);
  ParallelConfig cfg;
  cfg.apriori.minsup_count = 10;
  const CostModel sp2(MachineModel::IbmSp2());
  ParallelResult dd = MineParallel(Algorithm::kDD, db, 4, cfg);
  ParallelResult idd = MineParallel(Algorithm::kIDD, db, 4, cfg);
  EXPECT_GT(sp2.RunTime(Algorithm::kDD, dd.metrics),
            sp2.RunTime(Algorithm::kIDD, idd.metrics));
}

}  // namespace
}  // namespace pam
