#include "pam/mp/comm.h"

#include <atomic>
#include <numeric>

#include <gtest/gtest.h>

#include "pam/mp/runtime.h"
#include "pam/util/prng.h"

namespace pam {
namespace {

TEST(CommTest, PointToPointDelivers) {
  Runtime rt(2);
  rt.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::uint32_t> payload = {1, 2, 3};
      comm.SendVec(1, 7, payload);
    } else {
      std::vector<std::uint32_t> got = comm.RecvVec<std::uint32_t>(0, 7);
      EXPECT_EQ(got, (std::vector<std::uint32_t>{1, 2, 3}));
    }
  });
}

TEST(CommTest, TagsDemultiplex) {
  Runtime rt(2);
  rt.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.SendVec<std::uint32_t>(1, 5, {55});
      comm.SendVec<std::uint32_t>(1, 4, {44});
    } else {
      // Receive in the opposite order of sending.
      EXPECT_EQ(comm.RecvVec<std::uint32_t>(0, 4)[0], 44u);
      EXPECT_EQ(comm.RecvVec<std::uint32_t>(0, 5)[0], 55u);
    }
  });
}

TEST(CommTest, FifoPerSourceAndTag) {
  Runtime rt(2);
  rt.Run([](Comm& comm) {
    const int n = 200;
    if (comm.rank() == 0) {
      for (int i = 0; i < n; ++i) {
        comm.SendVec<std::uint32_t>(1, 3, {static_cast<std::uint32_t>(i)});
      }
    } else {
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(comm.RecvVec<std::uint32_t>(0, 3)[0],
                  static_cast<std::uint32_t>(i));
      }
    }
  });
}

TEST(CommTest, AnySourceReceivesAll) {
  const int p = 5;
  Runtime rt(p);
  rt.Run([p](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<bool> seen(static_cast<std::size_t>(p), false);
      for (int i = 0; i < p - 1; ++i) {
        int src = -1;
        std::vector<std::uint32_t> v =
            comm.RecvVec<std::uint32_t>(-1, 9, &src);
        EXPECT_EQ(v[0], static_cast<std::uint32_t>(src));
        seen[static_cast<std::size_t>(src)] = true;
      }
      for (int r = 1; r < p; ++r) EXPECT_TRUE(seen[static_cast<std::size_t>(r)]);
    } else {
      comm.SendVec<std::uint32_t>(0, 9,
                                  {static_cast<std::uint32_t>(comm.rank())});
    }
  });
}

TEST(CommTest, TryRecvNonBlocking) {
  Runtime rt(2);
  rt.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> data;
      EXPECT_FALSE(comm.TryRecv(1, 11, &data));  // nothing sent yet
      comm.Barrier();
      comm.Barrier();  // rank 1 sends between the barriers
      EXPECT_TRUE(comm.TryRecv(1, 11, &data));
      EXPECT_EQ(data.size(), 4u);
    } else {
      comm.Barrier();
      comm.SendVec<std::uint32_t>(0, 11, {1});
      comm.Barrier();
    }
  });
}

TEST(CommTest, BarrierSynchronizes) {
  const int p = 8;
  Runtime rt(p);
  std::atomic<int> phase_counter{0};
  rt.Run([&phase_counter](Comm& comm) {
    for (int phase = 0; phase < 10; ++phase) {
      ++phase_counter;
      comm.Barrier();
      // After the barrier every rank must have bumped the counter.
      EXPECT_GE(phase_counter.load(), (phase + 1) * comm.size());
      comm.Barrier();
    }
  });
}

TEST(CommTest, AllReduceSumsEverywhere) {
  const int p = 7;
  Runtime rt(p);
  rt.Run([](Comm& comm) {
    std::vector<std::uint64_t> vals = {
        static_cast<std::uint64_t>(comm.rank()), 1,
        static_cast<std::uint64_t>(comm.rank()) * 10};
    comm.AllReduceSum(std::span<std::uint64_t>(vals));
    const std::uint64_t ranks_sum = 21;  // 0+..+6
    EXPECT_EQ(vals[0], ranks_sum);
    EXPECT_EQ(vals[1], static_cast<std::uint64_t>(comm.size()));
    EXPECT_EQ(vals[2], ranks_sum * 10);
  });
}

TEST(CommTest, AllReduceSumsPowerOfTwo) {
  // Exercises the recursive-doubling path (group size is a power of two).
  const int p = 8;
  Runtime rt(p);
  rt.Run([](Comm& comm) {
    std::vector<std::uint64_t> vals(100);
    for (std::size_t i = 0; i < vals.size(); ++i) {
      vals[i] = static_cast<std::uint64_t>(comm.rank()) * 1000 + i;
    }
    comm.AllReduceSum(std::span<std::uint64_t>(vals));
    const std::uint64_t rank_sum = 28;  // 0+..+7
    for (std::size_t i = 0; i < vals.size(); ++i) {
      EXPECT_EQ(vals[i], rank_sum * 1000 + 8 * i);
    }
  });
}

TEST(CommTest, RepeatedAllReducesStayAligned) {
  const int p = 4;
  Runtime rt(p);
  rt.Run([](Comm& comm) {
    for (std::uint64_t round = 0; round < 50; ++round) {
      std::vector<std::uint64_t> v = {round};
      comm.AllReduceSum(std::span<std::uint64_t>(v));
      EXPECT_EQ(v[0], round * 4);
    }
  });
}

TEST(CommTest, AllGatherCollectsInRankOrder) {
  const int p = 6;
  Runtime rt(p);
  rt.Run([](Comm& comm) {
    std::vector<std::uint32_t> mine(
        static_cast<std::size_t>(comm.rank()) + 1,
        static_cast<std::uint32_t>(comm.rank()));
    auto blobs = comm.AllGather(std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(mine.data()),
        mine.size() * sizeof(std::uint32_t)));
    ASSERT_EQ(blobs.size(), static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      const auto& blob = blobs[static_cast<std::size_t>(r)];
      ASSERT_EQ(blob.size(), (static_cast<std::size_t>(r) + 1) * 4);
      const auto* vals = reinterpret_cast<const std::uint32_t*>(blob.data());
      for (int i = 0; i <= r; ++i) {
        EXPECT_EQ(vals[i], static_cast<std::uint32_t>(r));
      }
    }
  });
}

TEST(CommTest, BcastDistributesRootData) {
  Runtime rt(5);
  rt.Run([](Comm& comm) {
    std::vector<std::byte> data;
    if (comm.rank() == 2) {
      data = {std::byte{9}, std::byte{8}};
    }
    std::vector<std::byte> got = comm.Bcast(2, data);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], std::byte{9});
  });
}

TEST(CommTest, IrecvWaitMatchesIsend) {
  Runtime rt(2);
  rt.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      RecvRequest req = comm.Irecv(1, 13);
      std::vector<std::uint32_t> payload = {77};
      comm.Isend(1, 13, std::span<const std::byte>(
                            reinterpret_cast<const std::byte*>(payload.data()),
                            4));
      comm.Wait(req);
      EXPECT_EQ(req.data().size(), 4u);
    } else {
      RecvRequest req = comm.Irecv(0, 13);
      std::vector<std::uint32_t> payload = {88};
      comm.Isend(0, 13, std::span<const std::byte>(
                            reinterpret_cast<const std::byte*>(payload.data()),
                            4));
      comm.Wait(req);
      const auto* v = reinterpret_cast<const std::uint32_t*>(req.data().data());
      EXPECT_EQ(*v, 77u);
    }
  });
}

TEST(CommTest, TestPollsWithoutBlocking) {
  // Test() must return false while nothing is deliverable and complete the
  // request without a Wait() once the message lands.
  Runtime rt(2);
  rt.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      RecvRequest req = comm.Irecv(1, 14);
      EXPECT_FALSE(comm.Test(req));  // nothing sent yet
      EXPECT_FALSE(req.done());
      comm.Barrier();
      comm.Barrier();  // rank 1 sends between the barriers
      EXPECT_TRUE(comm.Test(req));
      EXPECT_TRUE(req.done());
      EXPECT_EQ(req.data().size(), 4u);
      comm.Wait(req);  // idempotent on a completed request
      EXPECT_EQ(req.data().size(), 4u);
    } else {
      comm.Barrier();
      comm.SendVec<std::uint32_t>(0, 14, {5});
      comm.Barrier();
    }
  });
}

TEST(CommTest, SenderMutationAfterIsendDoesNotCorruptInFlight) {
  // Send(span) snapshots the bytes into an immutable payload: scribbling
  // over the source buffer afterwards must not reach the receiver (nor
  // trip the integrity check).
  Runtime rt(2);
  rt.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::uint32_t> buffer = {1, 2, 3, 4};
      comm.Isend(1, 15,
                 std::span<const std::byte>(
                     reinterpret_cast<const std::byte*>(buffer.data()),
                     buffer.size() * sizeof(std::uint32_t)));
      for (auto& x : buffer) x = 0xDEAD;  // mutate after the send
      comm.Barrier();
    } else {
      comm.Barrier();  // receive only after the sender has mutated
      EXPECT_EQ(comm.RecvVec<std::uint32_t>(0, 15),
                (std::vector<std::uint32_t>{1, 2, 3, 4}));
    }
  });
}

TEST(CommTest, ForwardedHandleSurvivesOriginatorScope) {
  // Rank 0 originates a payload inside a scope that ends before the chain
  // completes; ranks 1 and 2 forward the received handle. The refcount —
  // not the originator's stack — must keep the bytes alive.
  Runtime rt(3);
  rt.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      {
        std::vector<std::uint32_t> words(1024);
        for (std::size_t i = 0; i < words.size(); ++i) {
          words[i] = static_cast<std::uint32_t>(i * 3 + 1);
        }
        comm.Send(1, 16,
                  std::span<const std::byte>(
                      reinterpret_cast<const std::byte*>(words.data()),
                      words.size() * sizeof(std::uint32_t)));
      }  // originator's buffer gone
      const std::vector<std::uint32_t> got = comm.RecvVec<std::uint32_t>(2, 16);
      ASSERT_EQ(got.size(), 1024u);
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], static_cast<std::uint32_t>(i * 3 + 1));
      }
    } else {
      Payload handle = comm.RecvPayload(comm.rank() - 1, 16);
      comm.Send((comm.rank() + 1) % 3, 16, std::move(handle));
    }
  });
}

TEST(CommTest, ForwardingAHandleCopiesNothing) {
  // One materialization at the source, then a relay hop and the final
  // receive all share the same buffer: the pool's copy counter must move
  // by exactly one for the whole chain.
  Runtime rt(2);
  const std::uint64_t copies_before = BufferPool::CopyCount();
  rt.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::uint32_t> words = {10, 20, 30};
      comm.Send(1, 17,
                std::span<const std::byte>(
                    reinterpret_cast<const std::byte*>(words.data()),
                    words.size() * sizeof(std::uint32_t)));
      const Payload back = comm.RecvPayload(1, 18);
      EXPECT_EQ(back.size(), 12u);
    } else {
      Payload handle = comm.RecvPayload(0, 17);
      comm.Send(0, 18, std::move(handle));  // relay: same handle
    }
  });
  EXPECT_EQ(BufferPool::CopyCount() - copies_before, 1u);
}

TEST(CommTest, AllReduceMaxEverywhere) {
  const int p = 6;  // exercises the non-power-of-two fold
  Runtime rt(p);
  rt.Run([p](Comm& comm) {
    std::vector<std::uint64_t> vals = {
        static_cast<std::uint64_t>(comm.rank()),
        static_cast<std::uint64_t>(p - comm.rank()), 7};
    comm.AllReduceMax(std::span<std::uint64_t>(vals));
    EXPECT_EQ(vals[0], static_cast<std::uint64_t>(p - 1));
    EXPECT_EQ(vals[1], static_cast<std::uint64_t>(p));
    EXPECT_EQ(vals[2], 7u);
  });
}

TEST(CommTest, BcastFromEveryRootNonPowerOfTwo) {
  // The binomial tree must deliver for any root in a non-power-of-two
  // group (vrank arithmetic wraps around the ring).
  const int p = 7;
  Runtime rt(p);
  rt.Run([p](Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<std::byte> data;
      if (comm.rank() == root) {
        data = {std::byte{static_cast<unsigned char>(root)},
                std::byte{42}};
      }
      const std::vector<std::byte> got = comm.Bcast(root, data);
      ASSERT_EQ(got.size(), 2u);
      EXPECT_EQ(got[0], std::byte{static_cast<unsigned char>(root)});
      EXPECT_EQ(got[1], std::byte{42});
    }
  });
}

TEST(CommTest, RingNeighbors) {
  Runtime rt(4);
  rt.Run([](Comm& comm) {
    EXPECT_EQ(comm.RightNeighbor(), (comm.rank() + 1) % 4);
    EXPECT_EQ(comm.LeftNeighbor(), (comm.rank() + 3) % 4);
  });
}

TEST(CommTest, SubCommunicatorIsolatesTraffic) {
  const int p = 6;
  Runtime rt(p);
  rt.Run([](Comm& comm) {
    // Two groups: even and odd ranks.
    std::vector<int> members;
    for (int r = comm.rank() % 2; r < comm.size(); r += 2) {
      members.push_back(r);
    }
    Comm sub = comm.Sub(members, /*label=*/comm.rank() % 2 == 0 ? 100 : 200);
    EXPECT_EQ(sub.size(), 3);
    // Reduce within the group: sums differ between groups.
    std::vector<std::uint64_t> v = {static_cast<std::uint64_t>(comm.rank())};
    sub.AllReduceSum(std::span<std::uint64_t>(v));
    if (comm.rank() % 2 == 0) {
      EXPECT_EQ(v[0], 0u + 2 + 4);
    } else {
      EXPECT_EQ(v[0], 1u + 3 + 5);
    }
  });
}

TEST(CommTest, NestedSubCommunicators) {
  // 2x2 grid from 4 ranks: row comms then column comms, HD-style.
  Runtime rt(4);
  rt.Run([](Comm& comm) {
    const int row = comm.rank() / 2;
    const int col = comm.rank() % 2;
    Comm row_comm = comm.Sub({row * 2, row * 2 + 1}, 1);
    Comm col_comm = comm.Sub({col, col + 2}, 2);
    EXPECT_EQ(row_comm.size(), 2);
    EXPECT_EQ(col_comm.size(), 2);

    std::vector<std::uint64_t> v = {1};
    row_comm.AllReduceSum(std::span<std::uint64_t>(v));
    EXPECT_EQ(v[0], 2u);
    col_comm.AllReduceSum(std::span<std::uint64_t>(v));
    EXPECT_EQ(v[0], 4u);
  });
}

TEST(CommTest, TrafficCountersAccumulate) {
  Runtime rt(2);
  rt.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.SendVec<std::uint32_t>(1, 1, {1, 2, 3, 4});
    } else {
      comm.RecvVec<std::uint32_t>(0, 1);
    }
  });
  EXPECT_EQ(rt.TotalBytesSent(), 16u);
  EXPECT_EQ(rt.TotalMessagesSent(), 1u);
}

TEST(CommTest, RandomizedMessageStorm) {
  // Every rank sends a random-but-deterministic workload to every other
  // rank; receivers verify checksums. Exercises mailbox matching under
  // heavy interleaving.
  const int p = 5;
  Runtime rt(p);
  rt.Run([p](Comm& comm) {
    const int per_pair = 50;
    Prng rng(1000 + static_cast<std::uint64_t>(comm.rank()));
    for (int i = 0; i < per_pair; ++i) {
      for (int dst = 0; dst < p; ++dst) {
        if (dst == comm.rank()) continue;
        std::vector<std::uint64_t> payload = {
            static_cast<std::uint64_t>(comm.rank()),
            static_cast<std::uint64_t>(i), rng.NextU64()};
        payload.push_back(payload[0] ^ payload[1] ^ payload[2]);
        comm.SendVec(dst, 21, payload);
      }
    }
    for (int i = 0; i < per_pair * (p - 1); ++i) {
      std::vector<std::uint64_t> got = comm.RecvVec<std::uint64_t>(-1, 21);
      ASSERT_EQ(got.size(), 4u);
      EXPECT_EQ(got[3], got[0] ^ got[1] ^ got[2]);
    }
    comm.Barrier();
  });
}

TEST(CommTest, ZeroByteMessageDelivers) {
  // Empty payloads are real messages (HPA uses them as end-of-stream
  // markers); framing must pass them through intact.
  Runtime rt(2);
  rt.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, 6, std::span<const std::byte>());
      comm.SendVec<std::uint32_t>(1, 6, {1});
    } else {
      EXPECT_TRUE(comm.Recv(0, 6).empty());
      EXPECT_EQ(comm.RecvVec<std::uint32_t>(0, 6)[0], 1u);  // FIFO kept
    }
  });
}

TEST(CommTest, SelfSendDelivers) {
  Runtime rt(3);
  rt.Run([](Comm& comm) {
    comm.SendVec<std::uint32_t>(comm.rank(), 8,
                                {static_cast<std::uint32_t>(comm.rank())});
    std::vector<std::byte> data;
    EXPECT_TRUE(comm.TryRecv(comm.rank(), 8, &data));
    EXPECT_EQ(*reinterpret_cast<const std::uint32_t*>(data.data()),
              static_cast<std::uint32_t>(comm.rank()));
    // And via blocking receive.
    comm.SendVec<std::uint32_t>(comm.rank(), 8, {99});
    EXPECT_EQ(comm.RecvVec<std::uint32_t>(comm.rank(), 8)[0], 99u);
  });
}

TEST(CommTest, InterleavedTagsFromSameSourceStayFifoPerTag) {
  // One source interleaves many sends across three tags; each tag's
  // stream must come out FIFO no matter the order the receiver drains
  // them in.
  Runtime rt(2);
  rt.Run([](Comm& comm) {
    const int n = 60;
    if (comm.rank() == 0) {
      for (int i = 0; i < n; ++i) {
        comm.SendVec<std::uint32_t>(1, 100 + i % 3,
                                    {static_cast<std::uint32_t>(i)});
      }
    } else {
      // Drain tag 102 fully, then 100, then 101.
      for (int tag : {102, 100, 101}) {
        for (int i = tag - 100; i < n; i += 3) {
          EXPECT_EQ(comm.RecvVec<std::uint32_t>(0, tag)[0],
                    static_cast<std::uint32_t>(i))
              << "tag " << tag;
        }
      }
    }
  });
}

TEST(CommTest, SubCommPointToPointIsolation) {
  // Same endpoints, same tag, two different sub-communicators: traffic on
  // one must be invisible on the other (streams are keyed by comm id).
  Runtime rt(2);
  rt.Run([](Comm& comm) {
    Comm a = comm.Sub({0, 1}, /*label=*/10);
    Comm b = comm.Sub({0, 1}, /*label=*/20);
    if (comm.rank() == 0) {
      a.SendVec<std::uint32_t>(1, 5, {111});
      b.SendVec<std::uint32_t>(1, 5, {222});
    } else {
      std::vector<std::byte> data;
      // b's message must not satisfy a receive on... a's stream has its
      // own message here, so check cross-delivery by draining b first.
      EXPECT_EQ(b.RecvVec<std::uint32_t>(0, 5)[0], 222u);
      EXPECT_EQ(a.RecvVec<std::uint32_t>(0, 5)[0], 111u);
      EXPECT_FALSE(a.TryRecv(0, 5, &data));
      EXPECT_FALSE(b.TryRecv(0, 5, &data));
    }
  });
}

// ---- Fault injection unit tests -----------------------------------------

TEST(CommFaultTest, CorruptionRepairedByRetransmit) {
  // Half of all delivery attempts corrupt the payload; with a retransmit
  // budget every message still arrives intact and in order.
  Runtime rt(2);
  FaultConfig fc = FaultConfig::Uniform(FaultKind::kCorrupt, 0.5,
                                        /*seed=*/5, /*max_retries=*/16);
  fc.recv_timeout_ms = 5000;
  rt.SetFaultConfig(fc);
  rt.Run([](Comm& comm) {
    const int n = 100;
    if (comm.rank() == 0) {
      for (int i = 0; i < n; ++i) {
        comm.SendVec<std::uint32_t>(1, 3, {static_cast<std::uint32_t>(i), 7u});
      }
    } else {
      for (int i = 0; i < n; ++i) {
        std::vector<std::uint32_t> got = comm.RecvVec<std::uint32_t>(0, 3);
        ASSERT_EQ(got.size(), 2u);
        EXPECT_EQ(got[0], static_cast<std::uint32_t>(i));
        EXPECT_EQ(got[1], 7u);
      }
    }
  });
  const CommFaultStats stats = rt.TotalFaultStats();
  EXPECT_GT(stats.injected, 0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.detected, 0u);  // receiver discarded the corrupt copies
}

TEST(CommFaultTest, DuplicatesFilteredBySequenceNumber) {
  Runtime rt(2);
  rt.SetFaultConfig(FaultConfig::Uniform(FaultKind::kDuplicate, 1.0,
                                         /*seed=*/6, /*max_retries=*/0));
  rt.Run([](Comm& comm) {
    const int n = 50;
    if (comm.rank() == 0) {
      for (int i = 0; i < n; ++i) {
        comm.SendVec<std::uint32_t>(1, 4, {static_cast<std::uint32_t>(i)});
      }
    } else {
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(comm.RecvVec<std::uint32_t>(0, 4)[0],
                  static_cast<std::uint32_t>(i));
      }
      // The duplicate copies must not linger as phantom messages.
      std::vector<std::byte> data;
      EXPECT_FALSE(comm.TryRecv(0, 4, &data));
    }
  });
  EXPECT_EQ(rt.TotalFaultStats().injected, 50u);
  EXPECT_GT(rt.TotalFaultStats().detected, 0u);
}

TEST(CommFaultTest, ReorderRepairedByResequencing) {
  // Every envelope jumps the queue, yet the receiver still sees the
  // stream in sequence order.
  Runtime rt(2);
  rt.SetFaultConfig(FaultConfig::Uniform(FaultKind::kReorder, 1.0,
                                         /*seed=*/8, /*max_retries=*/0));
  rt.Run([](Comm& comm) {
    const int n = 50;
    if (comm.rank() == 0) {
      for (int i = 0; i < n; ++i) {
        comm.SendVec<std::uint32_t>(1, 2, {static_cast<std::uint32_t>(i)});
      }
    } else {
      comm.Barrier();  // let all sends land so the queue is truly scrambled
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(comm.RecvVec<std::uint32_t>(0, 2)[0],
                  static_cast<std::uint32_t>(i));
      }
    }
    if (comm.rank() == 0) comm.Barrier();
  });
}

TEST(CommFaultTest, ExhaustedRetransmitBudgetTimesOut) {
  // Certain drop with no retries: the message is lost and the receiver's
  // deadline turns the loss into a structured, attributed error.
  Runtime rt(2);
  FaultConfig fc = FaultConfig::Uniform(FaultKind::kDrop, 1.0, /*seed=*/9,
                                        /*max_retries=*/0);
  fc.recv_timeout_ms = 100;
  rt.SetFaultConfig(fc);
  try {
    rt.Run([](Comm& comm) {
      if (comm.rank() == 0) {
        comm.SendVec<std::uint32_t>(1, 5, {1});
      } else {
        comm.RecvVec<std::uint32_t>(0, 5);
      }
    });
    FAIL() << "lost message did not surface as CommError";
  } catch (const CommError& e) {
    EXPECT_EQ(e.kind(), CommErrorKind::kTimeout);
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.peer(), 0);
    EXPECT_EQ(e.tag(), 5);
  }
}

TEST(CommFaultTest, EmptyPayloadCorruptionBecomesDrop) {
  // A zero-byte payload cannot be corrupted or truncated; the schedule
  // substitutes a drop, which here (no retries) loses the marker.
  Runtime rt(2);
  FaultConfig fc = FaultConfig::Uniform(FaultKind::kCorrupt, 1.0,
                                        /*seed=*/3, /*max_retries=*/0);
  fc.recv_timeout_ms = 100;
  rt.SetFaultConfig(fc);
  EXPECT_THROW(rt.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, 5, std::span<const std::byte>());
    } else {
      comm.Recv(0, 5);
    }
  }),
               CommError);
}

TEST(CommFaultTest, TimeoutWithNoSenderAtAll) {
  // Deadline applies to receives generally, not just faulted streams.
  Runtime rt(2);
  FaultConfig fc;
  fc.enabled = true;  // all probabilities zero: no injection, just deadlines
  fc.recv_timeout_ms = 100;
  rt.SetFaultConfig(fc);
  EXPECT_THROW(rt.Run([](Comm& comm) {
    if (comm.rank() == 1) comm.Recv(0, 5);
  }),
               CommError);
}

TEST(CommFaultTest, StallDelaysButDelivers) {
  Runtime rt(2);
  FaultConfig fc = FaultConfig::Uniform(FaultKind::kStall, 1.0, /*seed=*/4,
                                        /*max_retries=*/0);
  fc.stall_ticks_ms = 1;
  rt.SetFaultConfig(fc);
  rt.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        comm.SendVec<std::uint32_t>(1, 7, {static_cast<std::uint32_t>(i)});
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(comm.RecvVec<std::uint32_t>(0, 7)[0],
                  static_cast<std::uint32_t>(i));
      }
    }
  });
  EXPECT_EQ(rt.TotalFaultStats().injected, 10u);
}

TEST(CommFaultTest, CollectivesSurviveMixedFaults) {
  // The collectives are built on the same point-to-point machinery, so a
  // faulty transport under them must still yield exact reductions.
  const int p = 4;
  Runtime rt(p);
  FaultConfig fc = FaultConfig::Mixed(0.3, /*seed=*/12, /*max_retries=*/16);
  fc.recv_timeout_ms = 5000;
  rt.SetFaultConfig(fc);
  rt.Run([](Comm& comm) {
    for (std::uint64_t round = 0; round < 20; ++round) {
      std::vector<std::uint64_t> v = {round, static_cast<std::uint64_t>(
                                                 comm.rank())};
      comm.AllReduceSum(std::span<std::uint64_t>(v));
      EXPECT_EQ(v[0], round * 4);
      EXPECT_EQ(v[1], 6u);  // 0+1+2+3
      comm.Barrier();
    }
  });
  EXPECT_GT(rt.TotalFaultStats().injected, 0u);
}

TEST(CommFaultTest, TrafficCountersExcludeRetransmits) {
  // Figure benches rely on exact logical traffic counts; retransmitted
  // and duplicated copies must not inflate them.
  auto run_once = [](const FaultConfig& fc) {
    Runtime rt(2);
    rt.SetFaultConfig(fc);
    rt.Run([](Comm& comm) {
      if (comm.rank() == 0) {
        for (int i = 0; i < 20; ++i) {
          comm.SendVec<std::uint32_t>(1, 1, {1, 2, 3});
        }
      } else {
        for (int i = 0; i < 20; ++i) comm.RecvVec<std::uint32_t>(0, 1);
      }
    });
    return std::pair<std::uint64_t, std::uint64_t>(rt.TotalBytesSent(),
                                                   rt.TotalMessagesSent());
  };
  const auto clean = run_once(FaultConfig());
  FaultConfig noisy = FaultConfig::Mixed(0.4, /*seed=*/2, /*max_retries=*/16);
  noisy.recv_timeout_ms = 5000;
  const auto faulty = run_once(noisy);
  EXPECT_EQ(clean, faulty);
}

}  // namespace
}  // namespace pam
