#include "pam/mp/runtime.h"

#include <atomic>
#include <set>

#include <gtest/gtest.h>

namespace pam {
namespace {

TEST(RuntimeTest, SpawnsEveryRankExactlyOnce) {
  const int p = 6;
  Runtime rt(p);
  std::mutex mu;
  std::set<int> seen;
  rt.Run([&](Comm& comm) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(seen.insert(comm.rank()).second);
    EXPECT_EQ(comm.size(), p);
  });
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(p));
}

TEST(RuntimeTest, SingleRankWorks) {
  Runtime rt(1);
  int calls = 0;
  rt.Run([&calls](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    comm.Barrier();
    std::vector<std::uint64_t> v = {7};
    comm.AllReduceSum(std::span<std::uint64_t>(v));
    EXPECT_EQ(v[0], 7u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(RuntimeTest, RunCanBeCalledRepeatedly) {
  const int p = 3;
  Runtime rt(p);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    rt.Run([&total](Comm& comm) {
      // Exchange a token around the ring each round.
      comm.SendVec<std::uint32_t>(comm.RightNeighbor(), 1,
                                  {static_cast<std::uint32_t>(comm.rank())});
      std::vector<std::uint32_t> got =
          comm.RecvVec<std::uint32_t>(comm.LeftNeighbor(), 1);
      EXPECT_EQ(got[0], static_cast<std::uint32_t>(comm.LeftNeighbor()));
      ++total;
    });
  }
  EXPECT_EQ(total.load(), 15);
}

TEST(RuntimeTest, TrafficCountersAccumulateAcrossRuns) {
  Runtime rt(2);
  auto send_once = [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.SendVec<std::uint32_t>(1, 2, {1, 2});
    } else {
      comm.RecvVec<std::uint32_t>(0, 2);
    }
  };
  rt.Run(send_once);
  const std::uint64_t after_first = rt.TotalBytesSent();
  rt.Run(send_once);
  EXPECT_EQ(rt.TotalBytesSent(), after_first * 2);
  EXPECT_EQ(rt.TotalMessagesSent(), 2u);
}

TEST(RuntimeTest, ManyRanksOversubscribed) {
  // Far more ranks than host cores: the runtime is a logical-processor
  // abstraction and must stay correct under heavy oversubscription.
  const int p = 48;
  Runtime rt(p);
  std::atomic<std::uint64_t> sum{0};
  rt.Run([&sum](Comm& comm) {
    std::vector<std::uint64_t> v = {1};
    comm.AllReduceSum(std::span<std::uint64_t>(v));
    EXPECT_EQ(v[0], 48u);
    sum += v[0];
    comm.Barrier();
  });
  EXPECT_EQ(sum.load(), 48u * 48u);
}

TEST(RuntimeTest, IndependentRuntimesDoNotInterfere) {
  Runtime a(2);
  Runtime b(2);
  a.Run([](Comm& comm) {
    if (comm.rank() == 0) comm.SendVec<std::uint32_t>(1, 5, {11});
    if (comm.rank() == 1) {
      EXPECT_EQ(comm.RecvVec<std::uint32_t>(0, 5)[0], 11u);
    }
  });
  b.Run([](Comm& comm) {
    if (comm.rank() == 0) comm.SendVec<std::uint32_t>(1, 5, {22});
    if (comm.rank() == 1) {
      EXPECT_EQ(comm.RecvVec<std::uint32_t>(0, 5)[0], 22u);
    }
  });
  EXPECT_EQ(a.TotalBytesSent(), 4u);
  EXPECT_EQ(b.TotalBytesSent(), 4u);
}

TEST(RuntimeTest, RankExceptionPropagatesInsteadOfDeadlocking) {
  // Rank 0 throws while rank 1 is parked in a blocking receive with no
  // deadline. Run must abort the world (waking rank 1 out of the receive),
  // join every thread, and rethrow rank 0's exception — the historical
  // failure mode was a deadlocked join on rank 1.
  Runtime rt(2);
  try {
    rt.Run([](Comm& comm) {
      if (comm.rank() == 0) {
        throw std::runtime_error("rank 0 failed");
      }
      comm.Recv(0, 1);  // never satisfied; woken by the abort
    });
    FAIL() << "Run returned despite a rank throwing";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 0 failed");
  }
}

TEST(RuntimeTest, FirstExceptionWinsWhenPeersUnwind) {
  // The peers woken by the abort throw CommError{kAborted}; Run must still
  // report the original failure, not a secondary abort error.
  const int p = 4;
  Runtime rt(p);
  try {
    rt.Run([](Comm& comm) {
      if (comm.rank() == 2) {
        throw std::logic_error("original");
      }
      comm.Recv((comm.rank() + 1) % comm.size(), 9);
    });
    FAIL() << "Run returned despite a rank throwing";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "original");
  } catch (const CommError& e) {
    FAIL() << "abort error shadowed the original exception: " << e.what();
  }
}

TEST(RuntimeTest, FreshRuntimeUsableAfterAbortedRun) {
  {
    Runtime rt(2);
    EXPECT_THROW(rt.Run([](Comm& comm) {
      if (comm.rank() == 0) throw std::runtime_error("boom");
      comm.Recv(0, 1);
    }),
                 std::runtime_error);
  }
  Runtime fresh(2);
  fresh.Run([](Comm& comm) {
    if (comm.rank() == 0) comm.SendVec<std::uint32_t>(1, 1, {5});
    if (comm.rank() == 1) {
      EXPECT_EQ(comm.RecvVec<std::uint32_t>(0, 1)[0], 5u);
    }
  });
}

TEST(RuntimeTest, SameRuntimeRecoversAcrossRuns) {
  // Run resets the abort flag on entry, so a Runtime that aborted can host
  // a later clean run (MineParallel constructs a fresh Runtime per call,
  // but reuse must not silently poison receives with kAborted).
  Runtime rt(2);
  EXPECT_THROW(rt.Run([](Comm& comm) {
    if (comm.rank() == 0) throw std::runtime_error("boom");
    comm.Recv(0, 1);
  }),
               std::runtime_error);
  rt.Run([](Comm& comm) {
    if (comm.rank() == 0) comm.SendVec<std::uint32_t>(1, 1, {6});
    if (comm.rank() == 1) {
      EXPECT_EQ(comm.RecvVec<std::uint32_t>(0, 1)[0], 6u);
    }
  });
}

}  // namespace
}  // namespace pam
