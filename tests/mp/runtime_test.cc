#include "pam/mp/runtime.h"

#include <atomic>
#include <set>

#include <gtest/gtest.h>

namespace pam {
namespace {

TEST(RuntimeTest, SpawnsEveryRankExactlyOnce) {
  const int p = 6;
  Runtime rt(p);
  std::mutex mu;
  std::set<int> seen;
  rt.Run([&](Comm& comm) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(seen.insert(comm.rank()).second);
    EXPECT_EQ(comm.size(), p);
  });
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(p));
}

TEST(RuntimeTest, SingleRankWorks) {
  Runtime rt(1);
  int calls = 0;
  rt.Run([&calls](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    comm.Barrier();
    std::vector<std::uint64_t> v = {7};
    comm.AllReduceSum(std::span<std::uint64_t>(v));
    EXPECT_EQ(v[0], 7u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(RuntimeTest, RunCanBeCalledRepeatedly) {
  const int p = 3;
  Runtime rt(p);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    rt.Run([&total](Comm& comm) {
      // Exchange a token around the ring each round.
      comm.SendVec<std::uint32_t>(comm.RightNeighbor(), 1,
                                  {static_cast<std::uint32_t>(comm.rank())});
      std::vector<std::uint32_t> got =
          comm.RecvVec<std::uint32_t>(comm.LeftNeighbor(), 1);
      EXPECT_EQ(got[0], static_cast<std::uint32_t>(comm.LeftNeighbor()));
      ++total;
    });
  }
  EXPECT_EQ(total.load(), 15);
}

TEST(RuntimeTest, TrafficCountersAccumulateAcrossRuns) {
  Runtime rt(2);
  auto send_once = [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.SendVec<std::uint32_t>(1, 2, {1, 2});
    } else {
      comm.RecvVec<std::uint32_t>(0, 2);
    }
  };
  rt.Run(send_once);
  const std::uint64_t after_first = rt.TotalBytesSent();
  rt.Run(send_once);
  EXPECT_EQ(rt.TotalBytesSent(), after_first * 2);
  EXPECT_EQ(rt.TotalMessagesSent(), 2u);
}

TEST(RuntimeTest, ManyRanksOversubscribed) {
  // Far more ranks than host cores: the runtime is a logical-processor
  // abstraction and must stay correct under heavy oversubscription.
  const int p = 48;
  Runtime rt(p);
  std::atomic<std::uint64_t> sum{0};
  rt.Run([&sum](Comm& comm) {
    std::vector<std::uint64_t> v = {1};
    comm.AllReduceSum(std::span<std::uint64_t>(v));
    EXPECT_EQ(v[0], 48u);
    sum += v[0];
    comm.Barrier();
  });
  EXPECT_EQ(sum.load(), 48u * 48u);
}

TEST(RuntimeTest, IndependentRuntimesDoNotInterfere) {
  Runtime a(2);
  Runtime b(2);
  a.Run([](Comm& comm) {
    if (comm.rank() == 0) comm.SendVec<std::uint32_t>(1, 5, {11});
    if (comm.rank() == 1) {
      EXPECT_EQ(comm.RecvVec<std::uint32_t>(0, 5)[0], 11u);
    }
  });
  b.Run([](Comm& comm) {
    if (comm.rank() == 0) comm.SendVec<std::uint32_t>(1, 5, {22});
    if (comm.rank() == 1) {
      EXPECT_EQ(comm.RecvVec<std::uint32_t>(0, 5)[0], 22u);
    }
  });
  EXPECT_EQ(a.TotalBytesSent(), 4u);
  EXPECT_EQ(b.TotalBytesSent(), 4u);
}

}  // namespace
}  // namespace pam
