#include "pam/mp/payload.h"

#include <cstring>
#include <thread>

#include <gtest/gtest.h>

namespace pam {
namespace {

std::vector<std::byte> Bytes(std::initializer_list<unsigned char> values) {
  std::vector<std::byte> out;
  for (unsigned char v : values) out.push_back(std::byte{v});
  return out;
}

TEST(PayloadChecksumTest, SensitiveToEveryBytePosition) {
  // Flip one byte at a time across a buffer spanning several 8-byte words
  // plus a ragged tail; every flip must change the checksum (the kernel
  // folds full words and a packed tail word).
  std::vector<std::byte> base(21);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = std::byte{static_cast<unsigned char>(i * 7 + 1)};
  }
  const std::uint64_t reference = PayloadChecksum(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    std::vector<std::byte> mutated = base;
    mutated[i] ^= std::byte{0x01};
    EXPECT_NE(PayloadChecksum(mutated), reference) << "byte " << i;
  }
}

TEST(PayloadChecksumTest, SensitiveToLength) {
  // Appending or stripping zero bytes must change the checksum even when
  // the tail word packs to the same value — the length fold guarantees a
  // truncation at a word boundary is still caught.
  const std::vector<std::byte> eight(8, std::byte{0});
  const std::vector<std::byte> sixteen(16, std::byte{0});
  EXPECT_NE(PayloadChecksum(eight), PayloadChecksum(sixteen));
  EXPECT_NE(PayloadChecksum({}), PayloadChecksum(eight));
}

TEST(PayloadChecksumTest, MatchesReferenceFnvOverWords) {
  // The word-at-a-time kernel is FNV-1a over little-endian-packed words;
  // pin one value so the wire framing cannot silently change.
  std::vector<std::byte> data = Bytes({1, 2, 3, 4, 5, 6, 7, 8});
  std::uint64_t word = 0;
  std::memcpy(&word, data.data(), 8);
  std::uint64_t expected = 14695981039346656037ULL;
  expected = (expected ^ word) * 1099511628211ULL;
  expected = (expected ^ 8u) * 1099511628211ULL;  // length fold
  EXPECT_EQ(PayloadChecksum(data), expected);
}

TEST(PayloadTest, CopySnapshotsAndMemoizesChecksum) {
  std::vector<std::byte> source = Bytes({10, 20, 30});
  const Payload payload = Payload::Copy(source);
  const std::uint64_t before = payload.checksum();
  source[0] = std::byte{99};  // mutating the source must not reach the copy
  EXPECT_EQ(payload.checksum(), before);
  EXPECT_EQ(payload.checksum(), PayloadChecksum(payload.bytes()));
  EXPECT_EQ(payload.size(), 3u);
  EXPECT_EQ(payload.bytes()[0], std::byte{10});
}

TEST(PayloadTest, AdoptTakesOwnershipWithoutCounting) {
  const std::uint64_t copies_before = BufferPool::CopyCount();
  const Payload payload = Payload::Adopt(Bytes({1, 2, 3, 4}));
  EXPECT_EQ(BufferPool::CopyCount(), copies_before);  // no materialization
  EXPECT_EQ(payload.size(), 4u);
  EXPECT_EQ(payload.checksum(), PayloadChecksum(payload.bytes()));
}

TEST(PayloadTest, CopyIncrementsTheCopyCounter) {
  const std::uint64_t copies_before = BufferPool::CopyCount();
  const Payload a = Payload::Copy(Bytes({1}));
  const Payload b = a;  // handle copy: free
  const Payload c = Payload::Copy(a.bytes());
  EXPECT_EQ(BufferPool::CopyCount() - copies_before, 2u);
  EXPECT_TRUE(a.SharesBufferWith(b));
  EXPECT_FALSE(a.SharesBufferWith(c));
}

TEST(PayloadTest, EmptyPayloadIsWellFormed) {
  const Payload empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.data(), nullptr);
  EXPECT_EQ(empty.checksum(), PayloadChecksum({}));
  // Copying an empty span also yields the canonical empty payload.
  const std::uint64_t copies_before = BufferPool::CopyCount();
  const Payload copied = Payload::Copy({});
  EXPECT_TRUE(copied.empty());
  EXPECT_EQ(BufferPool::CopyCount(), copies_before);
  EXPECT_FALSE(empty.SharesBufferWith(copied));  // no rep to share
}

TEST(PayloadTest, HandlesShareOneBufferAcrossScopes) {
  Payload outer;
  {
    const Payload inner = Payload::Copy(Bytes({7, 8, 9}));
    outer = inner;
  }  // inner gone; the shared buffer must survive
  ASSERT_EQ(outer.size(), 3u);
  EXPECT_EQ(outer.bytes()[2], std::byte{9});
}

TEST(PayloadTest, ConcurrentChecksumCallsAgree) {
  // First use races benignly: all threads must observe the same value.
  const Payload payload = Payload::Copy(Bytes({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  const std::uint64_t expected = PayloadChecksum(payload.bytes());
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> seen(8, 0);
  for (std::size_t t = 0; t < seen.size(); ++t) {
    threads.emplace_back([&, t] { seen[t] = payload.checksum(); });
  }
  for (auto& th : threads) th.join();
  for (std::uint64_t value : seen) EXPECT_EQ(value, expected);
}

TEST(BufferPoolTest, ReleasedBuffersAreRecycled) {
  BufferPool& pool = BufferPool::Global();
  std::vector<std::byte> buffer = pool.Acquire(512);
  ASSERT_EQ(buffer.size(), 512u);
  const void* address = buffer.data();
  pool.Release(std::move(buffer));
  const std::uint64_t hits_before = pool.Hits();
  // Same bucket, smaller request: must come back from the free list (other
  // tests run sequentially, so the buffer we just released is on top).
  std::vector<std::byte> again = pool.Acquire(300);
  EXPECT_EQ(again.size(), 300u);
  EXPECT_EQ(again.data(), address);
  EXPECT_EQ(pool.Hits(), hits_before + 1);
}

TEST(BufferPoolTest, PayloadBuffersReturnToThePool) {
  BufferPool& pool = BufferPool::Global();
  const void* address = nullptr;
  {
    const Payload payload = Payload::Copy(std::vector<std::byte>(
        1024, std::byte{5}));
    address = payload.data();
  }  // last handle dropped: Rep returns its buffer to the pool
  const std::vector<std::byte> recycled = pool.Acquire(1024);
  EXPECT_EQ(static_cast<const void*>(recycled.data()), address);
}

}  // namespace
}  // namespace pam
