#include <atomic>

#include <gtest/gtest.h>

#include "pam/mp/payload.h"
#include "pam/mp/runtime.h"
#include "pam/parallel/common.h"

namespace pam {
namespace {

// Regression guards (label: comm_perf) pinning the transport's zero-copy
// contract through the pool's copy counter: materializing a payload from
// raw bytes is the only operation that increments it, so the counter
// measures exactly how many times message bytes were copied, process-wide.

TEST(RingZeroCopyGuard, ForwardingHopsDoNotCopyPayloads) {
  // Every page circulates P-1 hops. The only copies the whole pipeline may
  // perform are the initial per-page wraps plus the round-count
  // negotiation's small collective — if a per-hop copy ever sneaks back
  // into RingShiftAll, the count jumps by ~(P-1)x and this fails.
  const int p = 8;
  const std::uint64_t rounds = 4;
  Runtime rt(p);
  std::atomic<std::uint64_t> pages_seen{0};
  const std::uint64_t copies_before = BufferPool::CopyCount();
  rt.Run([&](Comm& comm) {
    std::vector<Page> pages(rounds);
    for (std::uint64_t i = 0; i < rounds; ++i) {
      pages[i].assign(
          1024, static_cast<std::uint32_t>(comm.rank()) * 100 +
                    static_cast<std::uint32_t>(i));
    }
    parallel_internal::RingShiftAll(
        comm, pages, [&pages_seen](PageView) { pages_seen += 1; }, nullptr);
  });
  // Every rank saw all P * rounds pages.
  EXPECT_EQ(pages_seen.load(),
            static_cast<std::uint64_t>(p) * p * rounds);

  const std::uint64_t delta = BufferPool::CopyCount() - copies_before;
  const std::uint64_t wraps = static_cast<std::uint64_t>(p) * rounds;
  // AllReduceMax exchanges log2(P) one-word messages per rank.
  const std::uint64_t collective_slack = static_cast<std::uint64_t>(p) * 4;
  EXPECT_GE(delta, wraps);
  EXPECT_LE(delta, wraps + collective_slack)
      << "ring forwarding reintroduced a per-hop payload copy";
  // And the old per-hop-copy regime (P * rounds * (P-1) materializations)
  // is comfortably far away.
  EXPECT_LT(delta, wraps * static_cast<std::uint64_t>(p - 1) / 2);
}

TEST(RingZeroCopyGuard, AllGatherForwardsHandlesWithoutCopying) {
  // Each member contributes one pre-wrapped handle; the ring's P-1
  // forwarding steps per rank must add zero materializations, so the
  // process-wide delta is exactly P (the contributions we made ourselves).
  const int p = 8;
  Runtime rt(p);
  const std::uint64_t copies_before = BufferPool::CopyCount();
  rt.Run([](Comm& comm) {
    const std::vector<std::uint32_t> mine(
        256, static_cast<std::uint32_t>(comm.rank()));
    Payload handle = Payload::Copy(std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(mine.data()),
        mine.size() * sizeof(std::uint32_t)));
    const std::vector<Payload> all = comm.AllGatherPayload(std::move(handle));
    ASSERT_EQ(all.size(), static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      const auto* words = reinterpret_cast<const std::uint32_t*>(
          all[static_cast<std::size_t>(r)].data());
      EXPECT_EQ(words[0], static_cast<std::uint32_t>(r));
    }
  });
  EXPECT_EQ(BufferPool::CopyCount() - copies_before,
            static_cast<std::uint64_t>(p))
      << "all-gather forwarding reintroduced a per-hop payload copy";
}

}  // namespace
}  // namespace pam
