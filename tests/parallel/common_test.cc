#include "pam/parallel/common.h"

#include <atomic>
#include <set>

#include <gtest/gtest.h>

#include "pam/core/apriori_gen.h"
#include "pam/mp/runtime.h"
#include "testing/random_db.h"

namespace pam {
namespace {

using parallel_internal::ExchangeFrequent;
using parallel_internal::FrequentSubset;
using parallel_internal::ParallelPass1;
using parallel_internal::RingShiftAll;

TEST(RingShiftAllTest, EveryRankSeesEveryPageExactlyOnce) {
  TransactionDatabase db = testing::RandomDb(60, 20, 6, 111);
  const int p = 5;
  Runtime rt(p);
  std::vector<std::multiset<std::vector<Item>>> seen(
      static_cast<std::size_t>(p));
  rt.Run([&](Comm& comm) {
    const auto slice = db.RankSlice(comm.rank(), comm.size());
    const std::vector<Page> pages = Paginate(db, slice, 64);
    auto& mine = seen[static_cast<std::size_t>(comm.rank())];
    RingShiftAll(comm, pages,
                 [&mine](PageView page) {
                   ForEachTransaction(page, [&mine](ItemSpan tx) {
                     mine.insert(std::vector<Item>(tx.begin(), tx.end()));
                   });
                 },
                 nullptr);
  });
  // Every rank saw exactly the whole database (as a multiset).
  std::multiset<std::vector<Item>> expected;
  for (std::size_t t = 0; t < db.size(); ++t) {
    ItemSpan tx = db.Transaction(t);
    expected.insert(std::vector<Item>(tx.begin(), tx.end()));
  }
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(seen[static_cast<std::size_t>(r)], expected) << "rank " << r;
  }
}

TEST(RingShiftAllTest, ReportsBytesSent) {
  TransactionDatabase db = testing::RandomDb(40, 15, 5, 113);
  const int p = 4;
  Runtime rt(p);
  std::atomic<std::uint64_t> total_bytes{0};
  std::atomic<std::uint64_t> total_msgs{0};
  rt.Run([&](Comm& comm) {
    const auto slice = db.RankSlice(comm.rank(), comm.size());
    const std::vector<Page> pages = Paginate(db, slice, 128);
    std::uint64_t msgs = 0;
    total_bytes += RingShiftAll(comm, pages, [](PageView) {}, &msgs);
    total_msgs += msgs;
  });
  // Every page is forwarded P-1 times in total... by each holder: each
  // rank sends its current buffer every step, so total bytes equal
  // (P-1) * database wire bytes (padding rounds send empty buffers).
  EXPECT_EQ(total_bytes.load(),
            static_cast<std::uint64_t>(p - 1) * db.WireBytes({0, db.size()}));
  EXPECT_GT(total_msgs.load(), 0u);
}

TEST(RingShiftAllTest, SingleRankProcessesLocally) {
  TransactionDatabase db = testing::RandomDb(10, 10, 4, 115);
  Runtime rt(1);
  rt.Run([&](Comm& comm) {
    const std::vector<Page> pages = Paginate(db, {0, db.size()}, 4096);
    std::size_t transactions = 0;
    const std::uint64_t bytes = RingShiftAll(
        comm, pages,
        [&transactions](PageView page) {
          transactions += PageTransactionCount(page);
        },
        nullptr);
    EXPECT_EQ(bytes, 0u);
    EXPECT_EQ(transactions, db.size());
  });
}

TEST(RingShiftAllTest, UnevenPageCountsStayInLockstep) {
  // Rank 0 holds everything (single-source shape); others contribute
  // nothing but must still see all pages.
  TransactionDatabase db = testing::RandomDb(30, 12, 5, 117);
  const int p = 3;
  Runtime rt(p);
  std::vector<std::size_t> seen(static_cast<std::size_t>(p), 0);
  rt.Run([&](Comm& comm) {
    const TransactionDatabase::Slice slice =
        comm.rank() == 0 ? TransactionDatabase::Slice{0, db.size()}
                         : TransactionDatabase::Slice{db.size(), db.size()};
    const std::vector<Page> pages = Paginate(db, slice, 64);
    RingShiftAll(comm, pages,
                 [&, r = comm.rank()](PageView page) {
                   seen[static_cast<std::size_t>(r)] +=
                       PageTransactionCount(page);
                 },
                 nullptr);
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(seen[static_cast<std::size_t>(r)], db.size()) << "rank " << r;
  }
}

TEST(ParallelPass1Test, MatchesGlobalItemCounts) {
  TransactionDatabase db = testing::RandomDb(90, 15, 6, 119);
  const Count minsup = 5;
  std::vector<Count> expected = CountItems(db, {0, db.size()});
  ItemsetCollection expected_f1 = MakeF1(expected, minsup);

  const int p = 4;
  Runtime rt(p);
  std::atomic<int> matches{0};
  rt.Run([&](Comm& comm) {
    PassMetrics metrics;
    ItemsetCollection f1 = ParallelPass1(
        db, db.RankSlice(comm.rank(), comm.size()), comm, minsup, &metrics);
    if (f1.size() == expected_f1.size()) {
      bool same = true;
      for (std::size_t i = 0; i < f1.size(); ++i) {
        same = same && f1.Get(i)[0] == expected_f1.Get(i)[0] &&
               f1.count(i) == expected_f1.count(i);
      }
      if (same) ++matches;
    }
    EXPECT_EQ(metrics.k, 1);
    EXPECT_GT(metrics.reduction_words, 0u);
  });
  EXPECT_EQ(matches.load(), p);
}

TEST(FrequentSubsetTest, SelectsOwnedFrequentOnly) {
  ItemsetCollection candidates(2);
  for (Item a = 0; a < 6; ++a) {
    std::vector<Item> s = {a, static_cast<Item>(a + 1)};
    candidates.AddWithCount(ItemSpan(s.data(), 2), a * 10);
  }
  std::vector<std::uint32_t> owned = {1, 3, 5};
  ItemsetCollection frequent = FrequentSubset(candidates, owned, 25);
  ASSERT_EQ(frequent.size(), 2u);  // ids 3 (30) and 5 (50)
  EXPECT_EQ(frequent.Get(0)[0], 3u);
  EXPECT_EQ(frequent.count(0), 30u);
  EXPECT_EQ(frequent.Get(1)[0], 5u);
}

TEST(ExchangeFrequentTest, MergesDisjointPartitionsSorted) {
  const int p = 3;
  Runtime rt(p);
  rt.Run([p](Comm& comm) {
    // Rank r contributes pairs starting with items r, r+p, ...
    ItemsetCollection mine(2);
    for (Item first = static_cast<Item>(comm.rank()); first < 9;
         first = first + static_cast<Item>(p)) {
      std::vector<Item> s = {first, static_cast<Item>(first + 10)};
      mine.AddWithCount(ItemSpan(s.data(), 2), first + 100);
    }
    std::uint64_t words = 0;
    ItemsetCollection merged = ExchangeFrequent(comm, mine, &words);
    EXPECT_GT(words, 0u);
    ASSERT_EQ(merged.size(), 9u);
    EXPECT_TRUE(merged.IsSortedUnique());
    for (std::size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged.Get(i)[0], static_cast<Item>(i));
      EXPECT_EQ(merged.count(i), i + 100);
    }
  });
}

}  // namespace
}  // namespace pam
