// The wire page size is a pure performance knob: results must be
// identical across pathological and generous page sizes for every
// formulation that moves transaction data.

#include <map>
#include <tuple>

#include <gtest/gtest.h>

#include "pam/core/serial_apriori.h"
#include "pam/parallel/driver.h"
#include "testing/random_db.h"

namespace pam {
namespace {

std::map<std::vector<Item>, Count> Flatten(const FrequentItemsets& fi) {
  std::map<std::vector<Item>, Count> out;
  for (const auto& level : fi.levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      ItemSpan s = level.Get(i);
      out[std::vector<Item>(s.begin(), s.end())] = level.count(i);
    }
  }
  return out;
}

class PageSizeSweep
    : public ::testing::TestWithParam<std::tuple<Algorithm, std::size_t>> {
};

TEST_P(PageSizeSweep, ResultsIndependentOfPageSize) {
  const auto [algorithm, page_bytes] = GetParam();
  TransactionDatabase db = testing::RandomDb(250, 25, 9, 777);
  AprioriConfig serial_cfg;
  serial_cfg.minsup_count = 8;
  SerialResult serial = MineSerial(db, serial_cfg);
  ASSERT_GT(serial.frequent.TotalCount(), 0u);

  ParallelConfig cfg;
  cfg.apriori = serial_cfg;
  cfg.page_bytes = page_bytes;
  ParallelResult result = MineParallel(algorithm, db, 5, cfg);
  EXPECT_EQ(Flatten(result.frequent), Flatten(serial.frequent));
}

INSTANTIATE_TEST_SUITE_P(
    MovementAlgorithms, PageSizeSweep,
    ::testing::Combine(::testing::Values(Algorithm::kDD, Algorithm::kDDComm,
                                         Algorithm::kIDD, Algorithm::kHD,
                                         Algorithm::kHPA),
                       ::testing::Values(std::size_t{1}, std::size_t{64},
                                         std::size_t{100000})),
    [](const ::testing::TestParamInfo<std::tuple<Algorithm, std::size_t>>&
           info) {
      std::string name = AlgorithmName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '+') c = '_';
      }
      return name + "_pb" + std::to_string(std::get<1>(info.param));
    });

// Page size changes data *message* counts but never data volume for the
// ring algorithms.
TEST(PageSizeSweepExtra, VolumeInvariantMessagesNot) {
  TransactionDatabase db = testing::RandomDb(300, 20, 8, 779);
  ParallelConfig small;
  small.apriori.minsup_count = 10;
  small.page_bytes = 64;
  ParallelConfig large = small;
  large.page_bytes = 1 << 20;

  ParallelResult a = MineParallel(Algorithm::kIDD, db, 4, small);
  ParallelResult b = MineParallel(Algorithm::kIDD, db, 4, large);
  ASSERT_EQ(a.metrics.num_passes(), b.metrics.num_passes());
  std::uint64_t small_msgs = 0;
  std::uint64_t large_msgs = 0;
  for (int pass = 1; pass < a.metrics.num_passes(); ++pass) {
    EXPECT_EQ(a.metrics.TotalDataBytes(pass),
              b.metrics.TotalDataBytes(pass));
    for (const PassMetrics& m :
         a.metrics.per_pass[static_cast<std::size_t>(pass)]) {
      small_msgs += m.data_messages_sent;
    }
    for (const PassMetrics& m :
         b.metrics.per_pass[static_cast<std::size_t>(pass)]) {
      large_msgs += m.data_messages_sent;
    }
  }
  EXPECT_GT(small_msgs, large_msgs);
}

}  // namespace
}  // namespace pam
