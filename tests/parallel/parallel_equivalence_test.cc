#include <tuple>

#include <gtest/gtest.h>

#include "pam/core/serial_apriori.h"
#include "pam/parallel/driver.h"
#include "testing/test_support.h"

namespace pam {
namespace {

using testing::Flatten;

TransactionDatabase TestDb() { return testing::SmallQuestDb(); }

// The central correctness property of the reproduction: every parallel
// formulation produces exactly the frequent itemsets (and counts) of the
// serial Apriori algorithm, for any processor count.
class ParallelEquivalence
    : public ::testing::TestWithParam<std::tuple<Algorithm, int>> {};

TEST_P(ParallelEquivalence, MatchesSerial) {
  const auto [algorithm, num_ranks] = GetParam();
  TransactionDatabase db = TestDb();

  AprioriConfig serial_cfg;
  serial_cfg.minsup_fraction = 0.02;
  SerialResult serial = MineSerial(db, serial_cfg);
  ASSERT_GT(serial.frequent.TotalCount(), 0u);
  ASSERT_GE(serial.frequent.MaxK(), 3) << "test workload too shallow";

  ParallelConfig cfg;
  cfg.apriori = serial_cfg;
  cfg.page_bytes = 512;       // force multi-page movement
  cfg.hd_threshold_m = 100;   // force HD to form real grids
  ParallelResult parallel = MineParallel(algorithm, db, num_ranks, cfg);

  EXPECT_EQ(Flatten(parallel.frequent), Flatten(serial.frequent))
      << AlgorithmName(algorithm) << " P=" << num_ranks;
  EXPECT_EQ(parallel.minsup_count, serial.minsup_count);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAndRankCounts, ParallelEquivalence,
    ::testing::Combine(::testing::Values(Algorithm::kCD, Algorithm::kDD,
                                         Algorithm::kDDComm, Algorithm::kIDD,
                                         Algorithm::kHD, Algorithm::kHPA),
                       ::testing::Values(1, 2, 3, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<Algorithm, int>>& info) {
      std::string name = AlgorithmName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '+') c = '_';
      }
      return name + "_P" + std::to_string(std::get<1>(info.param));
    });

TEST(ParallelEquivalenceExtra, HdGridShapes) {
  // Exercise HD across thresholds that induce different G at fixed P.
  TransactionDatabase db = TestDb();
  AprioriConfig base;
  base.minsup_fraction = 0.02;
  SerialResult serial = MineSerial(db, base);

  for (std::size_t m : {1u, 50u, 1000u, 1000000u}) {
    ParallelConfig cfg;
    cfg.apriori = base;
    cfg.hd_threshold_m = m;
    ParallelResult hd = MineParallel(Algorithm::kHD, db, 6, cfg);
    EXPECT_EQ(Flatten(hd.frequent), Flatten(serial.frequent)) << "m=" << m;
  }
}

TEST(ParallelEquivalenceExtra, ContiguousPrefixStrategyStillCorrect) {
  TransactionDatabase db = TestDb();
  AprioriConfig base;
  base.minsup_fraction = 0.02;
  SerialResult serial = MineSerial(db, base);

  ParallelConfig cfg;
  cfg.apriori = base;
  cfg.prefix_strategy = PrefixStrategy::kContiguous;
  cfg.split_heavy_prefixes = false;
  ParallelResult idd = MineParallel(Algorithm::kIDD, db, 4, cfg);
  EXPECT_EQ(Flatten(idd.frequent), Flatten(serial.frequent));
}

TEST(ParallelEquivalenceExtra, IddWithoutBitmapStillCorrect) {
  TransactionDatabase db = TestDb();
  AprioriConfig base;
  base.minsup_fraction = 0.02;
  SerialResult serial = MineSerial(db, base);

  ParallelConfig cfg;
  cfg.apriori = base;
  cfg.idd_use_bitmap = false;
  ParallelResult idd = MineParallel(Algorithm::kIDD, db, 4, cfg);
  EXPECT_EQ(Flatten(idd.frequent), Flatten(serial.frequent));
}

TEST(ParallelEquivalenceExtra, MemoryCappedCdMatchesSerial) {
  TransactionDatabase db = TestDb();
  AprioriConfig base;
  base.minsup_fraction = 0.02;
  SerialResult serial = MineSerial(db, base);

  ParallelConfig cfg;
  cfg.apriori = base;
  cfg.apriori.max_candidates_in_memory = 25;
  ParallelResult cd = MineParallel(Algorithm::kCD, db, 4, cfg);
  EXPECT_EQ(Flatten(cd.frequent), Flatten(serial.frequent));

  bool multi_scan = false;
  for (const auto& pass : cd.metrics.per_pass) {
    if (pass[0].db_scans > 1) multi_scan = true;
  }
  EXPECT_TRUE(multi_scan);
}

TEST(ParallelEquivalenceExtra, SingleSourceIddMatchesSerial) {
  // Paper Section VI: IDD also works when the whole database lives on one
  // processor that feeds the ring pipeline.
  TransactionDatabase db = TestDb();
  AprioriConfig base;
  base.minsup_fraction = 0.02;
  SerialResult serial = MineSerial(db, base);

  ParallelConfig cfg;
  cfg.apriori = base;
  cfg.single_source = true;
  for (int p : {1, 2, 4, 8}) {
    ParallelResult idd = MineParallel(Algorithm::kIDD, db, p, cfg);
    EXPECT_EQ(Flatten(idd.frequent), Flatten(serial.frequent)) << "P=" << p;
  }
}

TEST(ParallelEquivalenceExtra, SingleSourceOnlyRankZeroReadsLocally) {
  TransactionDatabase db = TestDb();
  ParallelConfig cfg;
  cfg.apriori.minsup_fraction = 0.02;
  cfg.single_source = true;
  ParallelResult idd = MineParallel(Algorithm::kIDD, db, 4, cfg);
  // Every rank still processes the full database per pass (ring feed).
  for (std::size_t pass = 1; pass < idd.metrics.per_pass.size(); ++pass) {
    for (const PassMetrics& m : idd.metrics.per_pass[pass]) {
      EXPECT_EQ(m.transactions_processed, db.size());
    }
    // Only rank 0 has local wire bytes to feed into the ring.
    EXPECT_GT(idd.metrics.per_pass[pass][0].local_db_wire_bytes, 0u);
    for (int r = 1; r < 4; ++r) {
      EXPECT_EQ(idd.metrics.per_pass[pass][static_cast<std::size_t>(r)]
                    .local_db_wire_bytes,
                0u);
    }
  }
}

TEST(ParallelEquivalenceExtra, DeterministicAcrossRuns) {
  TransactionDatabase db = TestDb();
  ParallelConfig cfg;
  cfg.apriori.minsup_fraction = 0.02;
  ParallelResult a = MineParallel(Algorithm::kHD, db, 4, cfg);
  ParallelResult b = MineParallel(Algorithm::kHD, db, 4, cfg);
  EXPECT_EQ(Flatten(a.frequent), Flatten(b.frequent));
  ASSERT_EQ(a.metrics.per_pass.size(), b.metrics.per_pass.size());
  for (std::size_t p = 0; p < a.metrics.per_pass.size(); ++p) {
    for (int r = 0; r < 4; ++r) {
      const PassMetrics& ma = a.metrics.per_pass[p][static_cast<std::size_t>(r)];
      const PassMetrics& mb = b.metrics.per_pass[p][static_cast<std::size_t>(r)];
      EXPECT_EQ(ma.subset.traversal_steps, mb.subset.traversal_steps);
      EXPECT_EQ(ma.subset.distinct_leaf_visits,
                mb.subset.distinct_leaf_visits);
      EXPECT_EQ(ma.data_bytes_sent, mb.data_bytes_sent);
    }
  }
}

}  // namespace
}  // namespace pam
