#include "pam/parallel/rulegen_parallel.h"

#include <set>

#include <gtest/gtest.h>

#include "pam/core/serial_apriori.h"
#include "pam/mp/runtime.h"
#include "testing/random_db.h"

namespace pam {
namespace {

using RuleKey = std::pair<std::vector<Item>, std::vector<Item>>;

std::set<RuleKey> Keys(const std::vector<Rule>& rules) {
  std::set<RuleKey> out;
  for (const Rule& r : rules) out.insert({r.antecedent, r.consequent});
  return out;
}

TEST(RuleSerializationTest, RoundTrip) {
  std::vector<Rule> rules;
  rules.push_back(Rule{{1, 2}, {3}, 17, 0.25, 0.8});
  rules.push_back(Rule{{4}, {5, 6, 7}, 3, 0.031, 0.51});
  std::vector<std::uint64_t> wire = SerializeRules(rules);
  std::vector<Rule> back = DeserializeRules(wire.data(), wire.size());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].antecedent, rules[0].antecedent);
  EXPECT_EQ(back[0].consequent, rules[0].consequent);
  EXPECT_EQ(back[0].joint_count, 17u);
  EXPECT_DOUBLE_EQ(back[0].support, 0.25);
  EXPECT_DOUBLE_EQ(back[0].confidence, 0.8);
  EXPECT_EQ(back[1].antecedent, rules[1].antecedent);
  EXPECT_DOUBLE_EQ(back[1].confidence, 0.51);
}

TEST(RuleSerializationTest, EmptyRules) {
  std::vector<std::uint64_t> wire = SerializeRules({});
  EXPECT_TRUE(DeserializeRules(wire.data(), wire.size()).empty());
}

class ParallelRulegenSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParallelRulegenSweep, MatchesSerialRulegen) {
  const int p = GetParam();
  TransactionDatabase db = testing::RandomDb(120, 12, 7, 31);
  AprioriConfig cfg;
  cfg.minsup_count = 6;
  FrequentItemsets frequent = MineSerial(db, cfg).frequent;
  std::vector<Rule> serial = GenerateRules(frequent, db.size(), 0.4);
  ASSERT_FALSE(serial.empty()) << "workload produced no rules";

  std::vector<std::vector<Rule>> per_rank(static_cast<std::size_t>(p));
  Runtime rt(p);
  rt.Run([&](Comm& comm) {
    per_rank[static_cast<std::size_t>(comm.rank())] =
        GenerateRulesParallel(comm, frequent, db.size(), 0.4);
  });

  for (int r = 0; r < p; ++r) {
    const auto& rules = per_rank[static_cast<std::size_t>(r)];
    ASSERT_EQ(rules.size(), serial.size()) << "rank " << r;
    EXPECT_EQ(Keys(rules), Keys(serial)) << "rank " << r;
    for (std::size_t i = 0; i < rules.size(); ++i) {
      EXPECT_DOUBLE_EQ(rules[i].confidence, serial[i].confidence);
      EXPECT_DOUBLE_EQ(rules[i].support, serial[i].support);
      EXPECT_EQ(rules[i].joint_count, serial[i].joint_count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParallelRulegenSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(ParallelRulegenTest, AllConfidenceLevels) {
  TransactionDatabase db = testing::RandomDb(100, 10, 6, 17);
  AprioriConfig cfg;
  cfg.minsup_count = 5;
  FrequentItemsets frequent = MineSerial(db, cfg).frequent;
  for (double conf : {0.0, 0.5, 0.95}) {
    std::vector<Rule> serial = GenerateRules(frequent, db.size(), conf);
    std::vector<Rule> parallel;
    Runtime rt(4);
    rt.Run([&](Comm& comm) {
      std::vector<Rule> mine =
          GenerateRulesParallel(comm, frequent, db.size(), conf);
      if (comm.rank() == 0) parallel = std::move(mine);
    });
    EXPECT_EQ(Keys(parallel), Keys(serial)) << "conf " << conf;
  }
}

}  // namespace
}  // namespace pam
