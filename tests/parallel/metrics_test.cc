#include "pam/parallel/metrics.h"

#include <gtest/gtest.h>

namespace pam {
namespace {

PassMetrics MakeMetrics(std::uint64_t traversal, std::uint64_t checks,
                        std::uint64_t leaf_visits, std::uint64_t data_bytes,
                        std::uint64_t transactions) {
  PassMetrics m;
  m.subset.traversal_steps = traversal;
  m.subset.leaf_candidates_checked = checks;
  m.subset.distinct_leaf_visits = leaf_visits;
  m.subset.transactions = transactions;
  m.data_bytes_sent = data_bytes;
  m.transactions_processed = transactions;
  return m;
}

RunMetrics MakeRun() {
  RunMetrics run;
  run.per_pass.push_back({MakeMetrics(10, 100, 5, 1000, 50),
                          MakeMetrics(30, 200, 15, 3000, 50)});
  run.per_pass.push_back({MakeMetrics(5, 50, 2, 500, 50),
                          MakeMetrics(5, 50, 2, 500, 50)});
  return run;
}

TEST(RunMetricsTest, Dimensions) {
  RunMetrics run = MakeRun();
  EXPECT_EQ(run.num_passes(), 2);
  EXPECT_EQ(run.num_ranks(), 2);
  EXPECT_EQ(RunMetrics{}.num_ranks(), 0);
}

TEST(RunMetricsTest, TotalsSumOverRanks) {
  RunMetrics run = MakeRun();
  EXPECT_EQ(run.TotalDataBytes(0), 4000u);
  EXPECT_EQ(run.TotalDataBytes(1), 1000u);
  EXPECT_EQ(run.TotalLeafVisits(0), 20u);
  EXPECT_EQ(run.TotalTransactionsProcessed(0), 100u);
}

TEST(RunMetricsTest, SubsetWorkBalance) {
  RunMetrics run = MakeRun();
  // Work = traversal + checks: rank0 = 110, rank1 = 230; mean 170.
  LoadSummary balance = run.SubsetWorkBalance(0);
  EXPECT_DOUBLE_EQ(balance.max, 230.0);
  EXPECT_DOUBLE_EQ(balance.mean, 170.0);
  EXPECT_NEAR(balance.imbalance, 230.0 / 170.0, 1e-12);
  // Pass 1 perfectly balanced.
  EXPECT_DOUBLE_EQ(run.SubsetWorkBalance(1).imbalance, 1.0);
}

TEST(RunMetricsTest, PassSubsetStatsAccumulates) {
  RunMetrics run = MakeRun();
  SubsetStats stats = run.PassSubsetStats(0);
  EXPECT_EQ(stats.traversal_steps, 40u);
  EXPECT_EQ(stats.leaf_candidates_checked, 300u);
  EXPECT_EQ(stats.distinct_leaf_visits, 20u);
  EXPECT_EQ(stats.transactions, 100u);
  EXPECT_DOUBLE_EQ(stats.AvgLeafVisitsPerTransaction(), 0.2);
}

TEST(SubsetStatsTest, AvgWithZeroTransactions) {
  SubsetStats stats;
  EXPECT_DOUBLE_EQ(stats.AvgLeafVisitsPerTransaction(), 0.0);
}

TEST(SubsetStatsTest, AccumulateAddsEverything) {
  SubsetStats a;
  a.transactions = 1;
  a.root_items_considered = 2;
  a.root_items_skipped = 3;
  a.traversal_steps = 4;
  a.distinct_leaf_visits = 5;
  a.leaf_candidates_checked = 6;
  SubsetStats b = a;
  b.Accumulate(a);
  EXPECT_EQ(b.transactions, 2u);
  EXPECT_EQ(b.root_items_considered, 4u);
  EXPECT_EQ(b.root_items_skipped, 6u);
  EXPECT_EQ(b.traversal_steps, 8u);
  EXPECT_EQ(b.distinct_leaf_visits, 10u);
  EXPECT_EQ(b.leaf_candidates_checked, 12u);
}

}  // namespace
}  // namespace pam
