#include <gtest/gtest.h>

#include "pam/parallel/common.h"

namespace pam {
namespace {

using parallel_internal::ChooseGridRows;

TEST(HdGridTest, BelowThresholdRunsCd) {
  EXPECT_EQ(ChooseGridRows(34000, 50000, 64), 1);
  EXPECT_EQ(ChooseGridRows(0, 50000, 64), 1);
  EXPECT_EQ(ChooseGridRows(49999, 50000, 64), 1);
}

TEST(HdGridTest, ReproducesPaperTable2) {
  // Table II: P = 64, m = 50K. Candidate counts per pass and the grid the
  // paper's HD implementation chose (rows x cols).
  const std::size_t m = 50000;
  const int p = 64;
  struct Row {
    std::size_t candidates;
    int expected_rows;
  };
  const Row rows[] = {
      {351000, 8},    // pass 2: 8 x 8
      {4348000, 64},  // pass 3: 64 x 1 (pure IDD)
      {115000, 4},    // pass 4: 4 x 16
      {76000, 2},     // pass 5: 2 x 32
      {56000, 2},     // pass 6: 2 x 32
      {34000, 1},     // pass 7: 1 x 64 (pure CD)
  };
  for (const Row& row : rows) {
    EXPECT_EQ(ChooseGridRows(row.candidates, m, p), row.expected_rows)
        << "M=" << row.candidates;
  }
}

TEST(HdGridTest, RowsAlwaysDivideP) {
  for (int p : {2, 6, 12, 64, 60}) {
    for (std::size_t m : {1u, 10u, 100u, 1000u}) {
      for (std::size_t candidates :
           {0u, 5u, 50u, 500u, 5000u, 50000u}) {
        const int rows = ChooseGridRows(candidates, m, p);
        EXPECT_GE(rows, 1);
        EXPECT_LE(rows, p);
        EXPECT_EQ(p % rows, 0) << "p=" << p << " rows=" << rows;
      }
    }
  }
}

TEST(HdGridTest, RowsMonotoneInCandidates) {
  const int p = 64;
  const std::size_t m = 1000;
  int prev = 1;
  for (std::size_t candidates = 100; candidates <= 200000;
       candidates += 900) {
    const int rows = ChooseGridRows(candidates, m, p);
    EXPECT_GE(rows, prev);
    prev = rows;
  }
  EXPECT_EQ(prev, p);
}

TEST(HdGridTest, ZeroThresholdMeansCd) {
  EXPECT_EQ(ChooseGridRows(1000000, 0, 64), 1);
}

TEST(HdGridTest, RowsCoverAtLeastCeilRatio) {
  // The chosen G must satisfy M / G <= m whenever any divisor allows it,
  // i.e. G >= ceil(M/m) (unless capped at P).
  for (int p : {8, 12, 64}) {
    for (std::size_t candidates : {1000u, 5000u, 12345u, 99999u}) {
      const std::size_t m = 1000;
      const int rows = ChooseGridRows(candidates, m, p);
      const std::size_t want = (candidates + m - 1) / m;
      if (want <= static_cast<std::size_t>(p)) {
        EXPECT_GE(static_cast<std::size_t>(rows), want);
      } else {
        EXPECT_EQ(rows, p);
      }
    }
  }
}

}  // namespace
}  // namespace pam
