#include <gtest/gtest.h>

#include "pam/datagen/quest_gen.h"
#include "pam/parallel/driver.h"

namespace pam {
namespace {

TransactionDatabase TestDb() {
  QuestConfig q;
  q.num_transactions = 800;
  q.num_items = 120;
  q.avg_transaction_len = 10;
  q.avg_pattern_len = 4;
  q.num_patterns = 60;
  q.seed = 13;
  return GenerateQuest(q);
}

ParallelConfig BaseConfig() {
  ParallelConfig cfg;
  cfg.apriori.minsup_fraction = 0.02;
  cfg.page_bytes = 1024;
  return cfg;
}

// Section IV / Figure 11: IDD's bitmap + prefix partitioning cuts the
// distinct-leaf-visit work per rank well below DD's for the same pass.
TEST(ParallelBehaviorTest, IddVisitsFewerLeavesThanDd) {
  TransactionDatabase db = TestDb();
  const int p = 4;
  ParallelResult dd = MineParallel(Algorithm::kDD, db, p, BaseConfig());
  ParallelResult idd = MineParallel(Algorithm::kIDD, db, p, BaseConfig());
  ASSERT_EQ(dd.metrics.per_pass.size(), idd.metrics.per_pass.size());

  // Compare the pass with the most candidates (usually k=2 or 3).
  std::size_t best_pass = 1;
  std::size_t best_m = 0;
  for (std::size_t i = 1; i < dd.metrics.per_pass.size(); ++i) {
    const std::size_t m = dd.metrics.per_pass[i][0].num_candidates_global;
    if (m > best_m) {
      best_m = m;
      best_pass = i;
    }
  }
  const SubsetStats dd_stats =
      dd.metrics.PassSubsetStats(static_cast<int>(best_pass));
  const SubsetStats idd_stats =
      idd.metrics.PassSubsetStats(static_cast<int>(best_pass));
  EXPECT_LT(idd_stats.distinct_leaf_visits, dd_stats.distinct_leaf_visits);
  EXPECT_LT(idd_stats.traversal_steps, dd_stats.traversal_steps);
  EXPECT_GT(idd_stats.root_items_skipped, 0u);
}

// CD performs no redundant work: its total leaf visits match a P=1 run.
TEST(ParallelBehaviorTest, CdTotalWorkIndependentOfP) {
  TransactionDatabase db = TestDb();
  ParallelResult p1 = MineParallel(Algorithm::kCD, db, 1, BaseConfig());
  ParallelResult p4 = MineParallel(Algorithm::kCD, db, 4, BaseConfig());
  ASSERT_EQ(p1.metrics.per_pass.size(), p4.metrics.per_pass.size());
  for (std::size_t pass = 1; pass < p1.metrics.per_pass.size(); ++pass) {
    EXPECT_EQ(p1.metrics.TotalLeafVisits(static_cast<int>(pass)),
              p4.metrics.TotalLeafVisits(static_cast<int>(pass)))
        << "pass " << pass;
  }
}

// DD's total leaf-visit work *grows* with P (the redundant work the paper
// analyzes); IDD's stays near the serial amount.
TEST(ParallelBehaviorTest, DdRedundantWorkGrowsWithP) {
  TransactionDatabase db = TestDb();
  ParallelResult serial = MineParallel(Algorithm::kCD, db, 1, BaseConfig());
  ParallelResult dd2 = MineParallel(Algorithm::kDD, db, 2, BaseConfig());
  ParallelResult dd8 = MineParallel(Algorithm::kDD, db, 8, BaseConfig());
  ParallelResult idd8 = MineParallel(Algorithm::kIDD, db, 8, BaseConfig());

  std::uint64_t serial_total = 0;
  std::uint64_t dd2_total = 0;
  std::uint64_t dd8_total = 0;
  std::uint64_t idd8_total = 0;
  for (std::size_t pass = 1; pass < serial.metrics.per_pass.size(); ++pass) {
    serial_total += serial.metrics.TotalLeafVisits(static_cast<int>(pass));
    dd2_total += dd2.metrics.TotalLeafVisits(static_cast<int>(pass));
    dd8_total += dd8.metrics.TotalLeafVisits(static_cast<int>(pass));
    idd8_total += idd8.metrics.TotalLeafVisits(static_cast<int>(pass));
  }
  EXPECT_GT(dd8_total, dd2_total);
  EXPECT_GT(dd8_total, serial_total);
  EXPECT_LT(idd8_total, dd8_total);
}

// Data movement volume: with P ranks, DD and IDD both ship each local
// block P-1 times, so total bytes ~ (P-1) * database wire size.
TEST(ParallelBehaviorTest, RingShipsExpectedVolume) {
  TransactionDatabase db = TestDb();
  const int p = 4;
  ParallelResult idd = MineParallel(Algorithm::kIDD, db, p, BaseConfig());
  const std::uint64_t db_bytes = db.WireBytes({0, db.size()});
  const std::size_t passes = idd.metrics.per_pass.size();
  ASSERT_GT(passes, 1u);
  std::uint64_t total = 0;
  for (std::size_t pass = 1; pass < passes; ++pass) {
    total += idd.metrics.TotalDataBytes(static_cast<int>(pass));
  }
  // Each counting pass (k >= 2) ships (P-1) * |DB| bytes in total.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(passes - 1) * (p - 1) * db_bytes;
  EXPECT_EQ(total, expected);
}

// CD moves no transaction data at all.
TEST(ParallelBehaviorTest, CdMovesNoTransactionData) {
  TransactionDatabase db = TestDb();
  ParallelResult cd = MineParallel(Algorithm::kCD, db, 4, BaseConfig());
  for (std::size_t pass = 0; pass < cd.metrics.per_pass.size(); ++pass) {
    EXPECT_EQ(cd.metrics.TotalDataBytes(static_cast<int>(pass)), 0u);
  }
}

// In CD every rank processes N/P transactions; in DD/IDD every rank
// processes all N; in HD every rank processes G*N/P.
TEST(ParallelBehaviorTest, TransactionsProcessedPerAlgorithm) {
  TransactionDatabase db = TestDb();
  const int p = 4;
  ParallelConfig cfg = BaseConfig();
  cfg.hd_threshold_m = 1;  // force G = P (IDD-like)

  ParallelResult cd = MineParallel(Algorithm::kCD, db, p, cfg);
  ParallelResult idd = MineParallel(Algorithm::kIDD, db, p, cfg);
  ParallelResult hd = MineParallel(Algorithm::kHD, db, p, cfg);

  const std::uint64_t n = db.size();
  for (std::size_t pass = 1; pass < cd.metrics.per_pass.size(); ++pass) {
    EXPECT_EQ(cd.metrics.TotalTransactionsProcessed(static_cast<int>(pass)),
              n);
  }
  for (std::size_t pass = 1; pass < idd.metrics.per_pass.size(); ++pass) {
    EXPECT_EQ(idd.metrics.TotalTransactionsProcessed(static_cast<int>(pass)),
              n * p);
  }
  for (std::size_t pass = 1; pass < hd.metrics.per_pass.size(); ++pass) {
    const int rows = hd.metrics.per_pass[pass][0].grid_rows;
    EXPECT_EQ(hd.metrics.TotalTransactionsProcessed(static_cast<int>(pass)),
              n * static_cast<std::uint64_t>(rows));
  }
}

// HD with a huge threshold never forms a grid (G=1) and becomes CD: no
// data movement, full-size reductions.
TEST(ParallelBehaviorTest, HdDegeneratesToCdWithHugeThreshold) {
  TransactionDatabase db = TestDb();
  ParallelConfig cfg = BaseConfig();
  cfg.hd_threshold_m = 100000000;
  ParallelResult hd = MineParallel(Algorithm::kHD, db, 4, cfg);
  for (std::size_t pass = 1; pass < hd.metrics.per_pass.size(); ++pass) {
    const auto& row = hd.metrics.per_pass[pass];
    EXPECT_EQ(row[0].grid_rows, 1);
    EXPECT_EQ(row[0].grid_cols, 4);
    EXPECT_EQ(hd.metrics.TotalDataBytes(static_cast<int>(pass)), 0u);
  }
}

// HD with threshold 1 always forms G=P (pure IDD): no reductions.
TEST(ParallelBehaviorTest, HdDegeneratesToIddWithThresholdOne) {
  TransactionDatabase db = TestDb();
  ParallelConfig cfg = BaseConfig();
  cfg.hd_threshold_m = 1;
  ParallelResult hd = MineParallel(Algorithm::kHD, db, 4, cfg);
  for (std::size_t pass = 1; pass < hd.metrics.per_pass.size(); ++pass) {
    const auto& row = hd.metrics.per_pass[pass];
    // Tiny final passes may have fewer candidates than P, where
    // G = ceil(M/1) = M < P is the correct grid; only passes with at
    // least P candidates must be pure IDD (G = P, no reduction).
    if (row[0].num_candidates_global < 4) continue;
    EXPECT_EQ(row[0].grid_rows, 4);
    EXPECT_EQ(row[0].grid_cols, 1);
    for (const PassMetrics& m : row) EXPECT_EQ(m.reduction_words, 0u);
  }
}

// The bitmap ablation: IDD without root filtering does strictly more
// traversal work.
TEST(ParallelBehaviorTest, BitmapAblationIncreasesWork) {
  TransactionDatabase db = TestDb();
  ParallelConfig with = BaseConfig();
  ParallelConfig without = BaseConfig();
  without.idd_use_bitmap = false;
  ParallelResult a = MineParallel(Algorithm::kIDD, db, 4, with);
  ParallelResult b = MineParallel(Algorithm::kIDD, db, 4, without);
  std::uint64_t with_steps = 0;
  std::uint64_t without_steps = 0;
  for (std::size_t pass = 1; pass < a.metrics.per_pass.size(); ++pass) {
    with_steps +=
        a.metrics.PassSubsetStats(static_cast<int>(pass)).traversal_steps;
    without_steps +=
        b.metrics.PassSubsetStats(static_cast<int>(pass)).traversal_steps;
  }
  EXPECT_LT(with_steps, without_steps);
}

// Section III-E's HPA analysis: for pass k, HPA ships (|t| choose k)
// subsets per transaction, so its per-pass data volume grows with k while
// IDD's is flat (one copy of the database per pass regardless of k).
TEST(ParallelBehaviorTest, HpaVolumeGrowsWithKUnlikeIdd) {
  TransactionDatabase db = TestDb();
  const int p = 4;
  ParallelConfig cfg = BaseConfig();
  cfg.apriori.minsup_fraction = 0.01;  // deep enough for several passes
  ParallelResult hpa = MineParallel(Algorithm::kHPA, db, p, cfg);
  ParallelResult idd = MineParallel(Algorithm::kIDD, db, p, cfg);
  ASSERT_GE(hpa.metrics.num_passes(), 4);

  // IDD ships the same bytes every pass; HPA's bytes per pass track the
  // subset count (grows from k=2 to k=3 on this workload).
  const std::uint64_t idd2 = idd.metrics.TotalDataBytes(1);
  const std::uint64_t idd3 = idd.metrics.TotalDataBytes(2);
  EXPECT_EQ(idd2, idd3);
  const std::uint64_t hpa2 = hpa.metrics.TotalDataBytes(1);
  const std::uint64_t hpa3 = hpa.metrics.TotalDataBytes(2);
  EXPECT_GT(hpa3, hpa2);
  // And by pass 3, HPA's volume exceeds IDD's (the paper's "much larger
  // communication volume than DD and IDD for k > 2").
  EXPECT_GT(hpa3, idd3);
}

// HPA's hash ownership cannot be balanced deliberately, but on a uniform
// hash it is statistically even: candidate counts across ranks stay
// within a loose band.
TEST(ParallelBehaviorTest, HpaHashOwnershipRoughlyEven) {
  TransactionDatabase db = TestDb();
  ParallelResult hpa = MineParallel(Algorithm::kHPA, db, 4, BaseConfig());
  for (std::size_t pass = 1; pass < hpa.metrics.per_pass.size(); ++pass) {
    const auto& row = hpa.metrics.per_pass[pass];
    const std::size_t m = row[0].num_candidates_global;
    if (m < 200) continue;  // tiny passes are noisy
    std::size_t total_local = 0;
    for (const PassMetrics& r : row) {
      total_local += r.num_candidates_local;
      EXPECT_LT(r.num_candidates_local, m / 2);
    }
    EXPECT_EQ(total_local, m);
  }
}

// DD classic and DD+comm move the same volume; only the pattern differs
// (message counts differ: all-to-all sends P-1 messages per page from the
// owner, the ring forwards pages hop by hop).
TEST(ParallelBehaviorTest, DdCommVolumeMatchesDd) {
  TransactionDatabase db = TestDb();
  const int p = 4;
  ParallelResult dd = MineParallel(Algorithm::kDD, db, p, BaseConfig());
  ParallelResult ddc = MineParallel(Algorithm::kDDComm, db, p, BaseConfig());
  for (std::size_t pass = 1; pass < dd.metrics.per_pass.size(); ++pass) {
    EXPECT_EQ(dd.metrics.TotalDataBytes(static_cast<int>(pass)),
              ddc.metrics.TotalDataBytes(static_cast<int>(pass)))
        << "pass " << pass;
  }
}

}  // namespace
}  // namespace pam
