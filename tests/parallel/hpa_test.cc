#include <map>

#include <gtest/gtest.h>

#include "pam/core/serial_apriori.h"
#include "pam/model/vij.h"
#include "pam/parallel/driver.h"
#include "testing/random_db.h"

namespace pam {
namespace {

std::map<std::vector<Item>, Count> Flatten(const FrequentItemsets& fi) {
  std::map<std::vector<Item>, Count> out;
  for (const auto& level : fi.levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      ItemSpan s = level.Get(i);
      out[std::vector<Item>(s.begin(), s.end())] = level.count(i);
    }
  }
  return out;
}

TEST(HpaTest, SubsetGenerationCountIdentity) {
  // HPA generates exactly sum over transactions of C(|t|, k) potential
  // candidates in pass k; traversal_steps counts them and
  // leaf_candidates_checked counts the probes, which must match (every
  // subset is probed somewhere exactly once).
  TransactionDatabase db = testing::RandomDb(150, 15, 9, 41);
  ParallelConfig cfg;
  cfg.apriori.minsup_count = 2;
  cfg.apriori.max_k = 3;
  // The pass-2 triangle path counts pairs without routing subsets; pin it
  // off so the identity holds for every pass.
  cfg.apriori.use_pass2_triangle = false;
  const int p = 3;
  ParallelResult hpa = MineParallel(Algorithm::kHPA, db, p, cfg);

  for (int pass = 1; pass < hpa.metrics.num_passes(); ++pass) {
    const int k = hpa.metrics.per_pass[static_cast<std::size_t>(pass)][0].k;
    double expected = 0.0;
    for (std::size_t t = 0; t < db.size(); ++t) {
      expected += BinomialCoefficient(db.Transaction(t).size(),
                                      static_cast<std::uint64_t>(k));
    }
    const SubsetStats stats = hpa.metrics.PassSubsetStats(pass);
    EXPECT_DOUBLE_EQ(static_cast<double>(stats.traversal_steps), expected)
        << "pass " << pass;
    EXPECT_EQ(stats.leaf_candidates_checked, stats.traversal_steps)
        << "every generated subset must be probed exactly once";
  }
}

TEST(HpaTest, CandidateOwnershipPartitionsCandidates) {
  TransactionDatabase db = testing::RandomDb(200, 20, 8, 43);
  ParallelConfig cfg;
  cfg.apriori.minsup_count = 4;
  const int p = 5;
  ParallelResult hpa = MineParallel(Algorithm::kHPA, db, p, cfg);
  for (std::size_t pass = 1; pass < hpa.metrics.per_pass.size(); ++pass) {
    const auto& row = hpa.metrics.per_pass[pass];
    std::size_t local_sum = 0;
    for (const PassMetrics& m : row) local_sum += m.num_candidates_local;
    EXPECT_EQ(local_sum, row[0].num_candidates_global) << "pass " << pass;
  }
}

TEST(HpaTest, NoWireTrafficOnSingleRank) {
  TransactionDatabase db = testing::RandomDb(100, 15, 7, 47);
  ParallelConfig cfg;
  cfg.apriori.minsup_count = 3;
  ParallelResult hpa = MineParallel(Algorithm::kHPA, db, 1, cfg);
  for (int pass = 0; pass < hpa.metrics.num_passes(); ++pass) {
    EXPECT_EQ(hpa.metrics.TotalDataBytes(pass), 0u);
  }
}

TEST(HpaTest, SmallPageSizeStillCorrect) {
  // Tiny flush buffers force many batches and exercise the end-of-stream
  // protocol under fragmentation.
  TransactionDatabase db = testing::RandomDb(120, 14, 8, 53);
  AprioriConfig serial_cfg;
  serial_cfg.minsup_count = 3;
  SerialResult serial = MineSerial(db, serial_cfg);

  ParallelConfig cfg;
  cfg.apriori = serial_cfg;
  cfg.page_bytes = 8;  // pathologically small
  ParallelResult hpa = MineParallel(Algorithm::kHPA, db, 4, cfg);
  EXPECT_EQ(Flatten(hpa.frequent), Flatten(serial.frequent));
}

TEST(HpaTest, ShortTransactionsGenerateNoSubsets) {
  TransactionDatabase db;
  db.Add({1});
  db.Add({2});
  db.Add({1, 2});
  db.Add({1, 2});
  ParallelConfig cfg;
  cfg.apriori.minsup_count = 2;
  // Count subsets through the router, not the pass-2 triangle kernel.
  cfg.apriori.use_pass2_triangle = false;
  ParallelResult hpa = MineParallel(Algorithm::kHPA, db, 2, cfg);
  ASSERT_GE(hpa.metrics.num_passes(), 2);
  // Pass 2: only the two {1,2} transactions yield subsets.
  EXPECT_EQ(hpa.metrics.PassSubsetStats(1).traversal_steps, 2u);
  std::vector<Item> pair = {1, 2};
  Count c = 0;
  ASSERT_TRUE(hpa.frequent.Lookup(ItemSpan(pair.data(), 2), &c));
  EXPECT_EQ(c, 2u);
}

}  // namespace
}  // namespace pam
