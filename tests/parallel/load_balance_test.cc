// Adaptive load balancing (DESIGN.md §14): LoadModel unit behavior, the
// counting kernel's per-first-item work attribution, and the end-to-end
// guarantees of metrics-driven repartitioning — mined output byte-identical
// to serial, scheduling decisions bit-identical across ranks and across
// runs (pinned through PassMetrics::partition_digest), and imbalance no
// worse than the static bin-packed baseline on skewed-prefix data. The
// chaos cells re-check decision determinism under an intentionally faulty
// transport. Labeled `balance`; scripts/ci.sh runs it under ASan and TSan.

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pam/core/serial_apriori.h"
#include "pam/datagen/quest_gen.h"
#include "pam/hashtree/hash_tree.h"
#include "pam/mp/fault.h"
#include "pam/parallel/driver.h"
#include "pam/parallel/load_model.h"
#include "testing/test_support.h"

namespace pam {
namespace {

// ---------------------------------------------------------------------------
// LoadModel units
// ---------------------------------------------------------------------------

ItemsetCollection Pairs(const std::vector<std::pair<Item, Item>>& pairs) {
  ItemsetCollection col(2);
  for (const auto& [a, b] : pairs) {
    std::vector<Item> s = {a, b};
    col.Add(ItemSpan(s.data(), 2));
  }
  col.SortLexicographic();
  return col;
}

// Feedback for one pass where each listed first item owns `candidates[i]`
// candidates that cost `work[i]` in total. Enough structure to calibrate.
LoadModel::PassFeedback Feedback(std::vector<Item> items,
                                 std::vector<std::uint32_t> candidates,
                                 std::vector<std::uint64_t> work) {
  LoadModel::PassFeedback fb;
  fb.first_items = std::move(items);
  fb.item_candidates = std::move(candidates);
  fb.item_work = std::move(work);
  fb.part_work = {std::accumulate(fb.item_work.begin(), fb.item_work.end(),
                                  std::uint64_t{0})};
  fb.transactions = 1000;
  fb.traversal_steps = fb.part_work[0] / 2;
  fb.leaf_checks = fb.part_work[0] - fb.traversal_steps;
  fb.num_candidates = std::accumulate(fb.item_candidates.begin(),
                                      fb.item_candidates.end(), 0u);
  fb.grid_rows = 1;
  fb.tree_pass = true;
  return fb;
}

TEST(LoadModelTest, DistinctFirstItemsAscending) {
  ItemsetCollection col =
      Pairs({{3, 5}, {3, 9}, {7, 8}, {12, 13}, {12, 20}, {12, 21}});
  EXPECT_EQ(LoadModel::DistinctFirstItems(col),
            (std::vector<Item>{3, 7, 12}));
}

TEST(LoadModelTest, UncalibratedOffersNoCostsAndFallsBack) {
  LoadModel model(100);
  EXPECT_FALSE(model.HasCalibration());
  EXPECT_DOUBLE_EQ(model.DensityOf(7), 0.0);
  EXPECT_TRUE(model.ItemCosts(Pairs({{1, 2}, {3, 4}})).empty());
  EXPECT_EQ(model.ChooseGridRows(10000, 1000, 1 << 20, 8, /*fallback=*/4), 4);

  // A triangle pass carries no attribution and must not calibrate.
  LoadModel::PassFeedback fb = Feedback({1, 3}, {10, 10}, {500, 500});
  fb.tree_pass = false;
  model.Observe(fb);
  EXPECT_FALSE(model.HasCalibration());
}

TEST(LoadModelTest, ObserveLearnsRelativeDensities) {
  LoadModel model(100);
  // Items 3 and 9, equal candidate counts, item 3's candidates 3x as
  // expensive per candidate.
  model.Observe(Feedback({3, 9}, {10, 10}, {3000, 1000}));
  ASSERT_TRUE(model.HasCalibration());
  EXPECT_NEAR(model.DensityOf(3), 1.5, 1e-9);   // 300 per cand / 200 mean
  EXPECT_NEAR(model.DensityOf(9), 0.5, 1e-9);

  const ItemsetCollection next = Pairs({{3, 4}, {3, 5}, {9, 10}, {9, 11}});
  const std::vector<std::uint64_t> costs = model.ItemCosts(next);
  ASSERT_FALSE(costs.empty());
  EXPECT_NEAR(static_cast<double>(costs[3]) / static_cast<double>(costs[9]),
              3.0, 0.01);
  // Normalization: the mean candidate of the next pass costs kCostScale.
  const double mean = (2.0 * static_cast<double>(costs[3]) +
                       2.0 * static_cast<double>(costs[9])) /
                      4.0;
  EXPECT_NEAR(mean, static_cast<double>(LoadModel::kCostScale), 1.0);
  // An item never measured counts as average.
  EXPECT_EQ(costs[50], LoadModel::kCostScale);
}

TEST(LoadModelTest, DensityClampBoundsExtremeSkew) {
  LoadModel model(10);
  model.Observe(
      Feedback({1, 2}, {10, 10}, {std::uint64_t{1} << 40, 1}));
  const std::vector<std::uint64_t> costs =
      model.ItemCosts(Pairs({{1, 3}, {2, 3}}));
  ASSERT_FALSE(costs.empty());
  for (Item f : {Item{1}, Item{2}}) {
    EXPECT_GE(costs[f], LoadModel::kCostScale / LoadModel::kMaxSkew);
    EXPECT_LE(costs[f], LoadModel::kCostScale * LoadModel::kMaxSkew);
  }
}

TEST(LoadModelTest, EmaBlendsAcrossPasses) {
  LoadModel model(10);
  model.Observe(Feedback({1, 2}, {10, 10}, {3000, 1000}));  // density 1.5
  const double after_one = model.DensityOf(1);
  model.Observe(Feedback({1, 2}, {10, 10}, {1000, 1000}));  // density 1.0
  const double after_two = model.DensityOf(1);
  EXPECT_GT(after_one, after_two);
  EXPECT_GT(after_two, 1.0);  // blended, not replaced
  EXPECT_NEAR(after_two, 0.5 * (after_one + 1.0), 1e-9);
}

TEST(LoadModelTest, UniformCostsReproduceStaticPartition) {
  // After observing a perfectly uniform pass, the weighted partition must
  // be bit-identical to the static one — adaptive mode may only deviate
  // when the measurements do.
  LoadModel model(40);
  model.Observe(Feedback({0, 1, 2, 3}, {5, 5, 5, 5}, {800, 800, 800, 800}));
  std::vector<std::pair<Item, Item>> pairs;
  for (Item f = 0; f < 8; ++f) {
    for (Item s = 10; s < 13; ++s) pairs.push_back({f, s});
  }
  const ItemsetCollection col = Pairs(pairs);
  const std::vector<std::uint64_t> costs = model.ItemCosts(col);
  ASSERT_FALSE(costs.empty());
  const CandidatePartition statik =
      PartitionByPrefix(col, 40, 3, PrefixStrategy::kBinPacked, true);
  const CandidatePartition weighted = PartitionByPrefix(
      col, 40, 3, PrefixStrategy::kBinPacked, true, &costs);
  EXPECT_EQ(PartitionDigest(weighted), PartitionDigest(statik));
}

// ---------------------------------------------------------------------------
// Kernel work attribution
// ---------------------------------------------------------------------------

TEST(AttributionTest, ItemWorkAndLeafVisitsAreExact) {
  // Synthetic 3-itemset candidates over a small universe, counted over a
  // deterministic Quest workload with the identity-root tree and full
  // attribution on; a plain hashed-root tree provides the reference.
  const TransactionDatabase db = testing::SeededQuestDb(17);
  AprioriConfig mine_cfg;
  mine_cfg.minsup_fraction = 0.02;
  mine_cfg.max_k = 3;
  const SerialResult serial = MineSerial(db, mine_cfg);
  ASSERT_GE(serial.frequent.levels.size(), 3u);
  const ItemsetCollection& candidates = serial.frequent.levels[2];
  ASSERT_GT(candidates.size(), 20u);
  std::vector<std::uint32_t> all_ids(candidates.size());
  std::iota(all_ids.begin(), all_ids.end(), 0);

  HashTreeConfig plain_cfg;
  HashTreeConfig identity_cfg;
  identity_cfg.identity_root = true;
  HashTree plain(candidates, all_ids, plain_cfg);
  HashTree identity(candidates, all_ids, identity_cfg);

  std::vector<Count> plain_counts(candidates.size(), 0);
  std::vector<Count> identity_counts(candidates.size(), 0);
  SubsetStats stats;
  std::vector<std::uint64_t> item_work(db.NumItems(), 0);
  std::vector<std::uint64_t> leaf_visits(identity.num_leaves(), 0);
  for (std::size_t t = 0; t < db.size(); ++t) {
    plain.Subset(db.Transaction(t), plain_counts, nullptr);
    identity.Subset(db.Transaction(t), identity_counts, &stats, nullptr,
                    std::span<std::uint64_t>(item_work),
                    std::span<std::uint64_t>(leaf_visits));
  }

  // Counts are shape-independent: identity root changes traversal, never
  // the support of any candidate.
  EXPECT_EQ(identity_counts, plain_counts);

  // Every unit of measured subset work is attributed to exactly one root
  // item...
  const std::uint64_t attributed =
      std::accumulate(item_work.begin(), item_work.end(), std::uint64_t{0});
  EXPECT_EQ(attributed, stats.traversal_steps + stats.leaf_candidates_checked);

  // ...and the per-leaf visit counts expand to exactly the candidate
  // checks the stats saw (each candidate of a leaf is checked once per
  // distinct visit).
  std::vector<std::uint64_t> cand_checks(candidates.size(), 0);
  identity.AccumulateCandidateChecks(leaf_visits, cand_checks);
  const std::uint64_t checks = std::accumulate(
      cand_checks.begin(), cand_checks.end(), std::uint64_t{0});
  EXPECT_EQ(checks, stats.leaf_candidates_checked);
  const std::uint64_t visits = std::accumulate(
      leaf_visits.begin(), leaf_visits.end(), std::uint64_t{0});
  EXPECT_EQ(visits, stats.distinct_leaf_visits);
}

// ---------------------------------------------------------------------------
// End-to-end adaptive mining
// ---------------------------------------------------------------------------

// Skewed-prefix workload for the end-to-end cells: a hot item prefix plus
// low pattern corruption, the regime where candidate counts misjudge
// per-candidate cost (see bench_balance for the full-size version).
TransactionDatabase SkewedDb() {
  QuestConfig q;
  q.num_transactions = 1000;
  q.num_items = 500;
  q.avg_transaction_len = 12;
  q.avg_pattern_len = 5;
  q.num_patterns = 60;
  q.corruption_mean = 0.2;
  q.hot_items = 20;
  q.hot_item_mass = 0.4;
  q.seed = 42;
  return GenerateQuest(q);
}

ParallelConfig AdaptiveConfig() {
  ParallelConfig cfg;
  cfg.apriori.minsup_fraction = 0.015;
  cfg.adaptive_balance = true;
  cfg.hd_threshold_m = 100;  // force HD onto real grids
  return cfg;
}

// Per-pass rank-0 partition digests, asserting every rank agrees first.
std::vector<std::uint64_t> Digests(const RunMetrics& metrics,
                                   const std::string& label) {
  std::vector<std::uint64_t> out;
  for (const auto& pass : metrics.per_pass) {
    for (const PassMetrics& m : pass) {
      EXPECT_EQ(m.partition_digest, pass[0].partition_digest)
          << label << " k=" << m.k << " rank disagreement";
    }
    out.push_back(pass[0].partition_digest);
  }
  return out;
}

std::uint64_t TotalRebalanced(const RunMetrics& metrics) {
  std::uint64_t total = 0;
  for (const auto& pass : metrics.per_pass) total += pass[0].rebalanced_candidates;
  return total;
}

// Sum over passes of max and mean per-rank subset work; the ratio is the
// run's aggregate imbalance (per-pass maxima are what serialize a lockstep
// run, so this is the modeled critical path over the modeled average).
double TotalImbalance(const RunMetrics& metrics) {
  double total_max = 0.0;
  double total_mean = 0.0;
  for (int p = 1; p < metrics.num_passes(); ++p) {
    const LoadSummary s = metrics.SubsetWorkBalance(p);
    total_max += s.max;
    total_mean += s.mean;
  }
  return total_mean > 0.0 ? total_max / total_mean : 1.0;
}

TEST(AdaptiveBalanceTest, IddMatchesSerialAcrossTeamSizes) {
  const TransactionDatabase db = SkewedDb();
  ParallelConfig cfg = AdaptiveConfig();
  const auto serial_flat = testing::SerialReference(db, cfg.apriori);
  ASSERT_FALSE(serial_flat.empty());
  for (int threads : {1, 2}) {
    cfg.apriori.threads_per_rank = threads;
    ParallelResult result = MineParallel(Algorithm::kIDD, db, 8, cfg);
    testing::ExpectMatchesSerial(result, serial_flat,
                                 "adaptive IDD threads=" +
                                     std::to_string(threads));
  }
}

TEST(AdaptiveBalanceTest, HdMatchesSerialAcrossTeamSizes) {
  const TransactionDatabase db = SkewedDb();
  ParallelConfig cfg = AdaptiveConfig();
  const auto serial_flat = testing::SerialReference(db, cfg.apriori);
  ASSERT_FALSE(serial_flat.empty());
  for (int threads : {1, 2}) {
    cfg.apriori.threads_per_rank = threads;
    ParallelResult result = MineParallel(Algorithm::kHD, db, 8, cfg);
    testing::ExpectMatchesSerial(result, serial_flat,
                                 "adaptive HD threads=" +
                                     std::to_string(threads));
  }
}

TEST(AdaptiveBalanceTest, RepartitioningKicksInDeterministically) {
  const TransactionDatabase db = SkewedDb();
  const ParallelConfig adaptive_cfg = AdaptiveConfig();
  ParallelConfig static_cfg = adaptive_cfg;
  static_cfg.adaptive_balance = false;

  ParallelResult a = MineParallel(Algorithm::kIDD, db, 8, adaptive_cfg);
  ParallelResult b = MineParallel(Algorithm::kIDD, db, 8, adaptive_cfg);
  ParallelResult s = MineParallel(Algorithm::kIDD, db, 8, static_cfg);

  // Identical runs make identical decisions, pass for pass.
  EXPECT_EQ(Digests(a.metrics, "adaptive run A"),
            Digests(b.metrics, "adaptive run B"));

  // The measured weights actually moved candidates off the static packing
  // on this workload, and the feedback collective was charged.
  EXPECT_GT(TotalRebalanced(a.metrics), 0u);
  EXPECT_NE(Digests(a.metrics, "adaptive"), Digests(s.metrics, "static"));
  std::uint64_t sync_words = 0;
  for (const auto& pass : a.metrics.per_pass) {
    sync_words += pass[0].balance_sync_words;
  }
  EXPECT_GT(sync_words, 0u);
  // The static run never rebalances and never pays the collective.
  EXPECT_EQ(TotalRebalanced(s.metrics), 0u);
  for (const auto& pass : s.metrics.per_pass) {
    EXPECT_EQ(pass[0].balance_sync_words, 0u);
  }
}

TEST(AdaptiveBalanceTest, ImprovesImbalanceOnSkewedPrefixData) {
  const TransactionDatabase db = SkewedDb();
  const ParallelConfig adaptive_cfg = AdaptiveConfig();
  ParallelConfig static_cfg = adaptive_cfg;
  static_cfg.adaptive_balance = false;
  const double adaptive =
      TotalImbalance(MineParallel(Algorithm::kIDD, db, 8, adaptive_cfg).metrics);
  const double statik =
      TotalImbalance(MineParallel(Algorithm::kIDD, db, 8, static_cfg).metrics);
  // Deterministic work counters, so this is a pinned regression guard,
  // not a flaky perf assertion. bench_balance records the full-size
  // scenario where the excess shrinks by >= 25%.
  EXPECT_LT(adaptive, statik);
}

TEST(AdaptiveBalanceTest, ContiguousAblationStaysStatic) {
  // The contiguous partition ablation has no weights to re-pack: with
  // adaptive_balance on it must make bit-identical decisions to the static
  // contiguous run and never report a repartition.
  const TransactionDatabase db = SkewedDb();
  ParallelConfig cfg = AdaptiveConfig();
  cfg.prefix_strategy = PrefixStrategy::kContiguous;
  ParallelConfig static_cfg = cfg;
  static_cfg.adaptive_balance = false;
  ParallelResult a = MineParallel(Algorithm::kIDD, db, 8, cfg);
  ParallelResult s = MineParallel(Algorithm::kIDD, db, 8, static_cfg);
  EXPECT_EQ(Digests(a.metrics, "adaptive contiguous"),
            Digests(s.metrics, "static contiguous"));
  EXPECT_EQ(TotalRebalanced(a.metrics), 0u);
}

// ---------------------------------------------------------------------------
// Chaos: decisions and output under transport faults
// ---------------------------------------------------------------------------

TEST(AdaptiveBalanceChaosTest, FaultsChangeNeitherDecisionsNorOutput) {
  const TransactionDatabase db = SkewedDb();
  ParallelConfig clean_cfg = AdaptiveConfig();
  const auto serial_flat = testing::SerialReference(db, clean_cfg.apriori);
  ParallelConfig chaos_cfg = clean_cfg;
  chaos_cfg.fault = FaultConfig::Mixed(0.15, /*seed=*/99, /*max_retries=*/8);

  for (Algorithm alg : {Algorithm::kIDD, Algorithm::kHD}) {
    const std::string label =
        std::string("chaos adaptive ") + AlgorithmName(alg);
    ParallelResult clean = MineParallel(alg, db, 8, clean_cfg);
    ParallelResult chaos = MineParallel(alg, db, 8, chaos_cfg);
    // The faulty transport really fired and was repaired...
    EXPECT_GT(chaos.metrics.TotalFaultsInjected(), 0u) << label;
    // ...yet every pass's partition decision and the mined output are
    // bit-identical to the fault-free run (and to serial).
    EXPECT_EQ(Digests(chaos.metrics, label + " faulty"),
              Digests(clean.metrics, label + " clean"));
    testing::ExpectMatchesSerial(chaos, serial_flat, label);
    EXPECT_GT(TotalRebalanced(chaos.metrics), 0u) << label;
  }
}

}  // namespace
}  // namespace pam
