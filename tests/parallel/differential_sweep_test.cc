// Randomized differential sweep: for each seed, draw mining configurations
// from the cross product {minsup} x {num_ranks} x {page_bytes} x
// {use_pass2_triangle} x {threads_per_rank} and check that CD, DD, IDD,
// HD and HPA each produce the serial Apriori result byte-for-byte. Fault
// injection is off here; the chaos harness (tests/testing/chaos_test.cc)
// covers the faulty transport.
//
// The draw is deterministic per seed, so a failure report of the form
// "seed=202 draw=3" is enough to reproduce a cell exactly.

#include <cstddef>
#include <string>

#include <gtest/gtest.h>

#include "pam/core/serial_apriori.h"
#include "pam/parallel/driver.h"
#include "pam/util/prng.h"
#include "testing/test_support.h"

namespace pam {
namespace {

class DifferentialSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialSweep, AllAlgorithmsMatchSerial) {
  const std::uint64_t seed = GetParam();
  Prng rng(seed);

  // Workload varies with the seed so the sweep covers different candidate
  // populations, not just different configs over one database.
  const TransactionDatabase db = testing::SeededQuestDb(seed);

  const double minsups[] = {0.015, 0.02, 0.03};
  const int ranks[] = {2, 3, 4, 6, 8};
  const std::size_t pages[] = {256, 512, 4096};
  const int threads[] = {1, 2, 3};

  constexpr int kDrawsPerSeed = 4;
  for (int draw = 0; draw < kDrawsPerSeed; ++draw) {
    AprioriConfig serial_cfg;
    serial_cfg.minsup_fraction = minsups[rng.NextBounded(3)];
    serial_cfg.use_pass2_triangle = rng.NextBounded(2) == 1;
    serial_cfg.threads_per_rank = threads[rng.NextBounded(3)];
    const int p = ranks[rng.NextBounded(5)];
    const std::size_t page_bytes = pages[rng.NextBounded(3)];

    // The reference is always single-threaded; parallel runs draw their
    // own team size so the sweep crosses it with everything else.
    AprioriConfig reference_cfg = serial_cfg;
    reference_cfg.threads_per_rank = 1;
    const auto serial_flat = testing::SerialReference(db, reference_cfg);
    ASSERT_FALSE(serial_flat.empty());

    ParallelConfig cfg;
    cfg.apriori = serial_cfg;
    cfg.page_bytes = page_bytes;
    cfg.hd_threshold_m = 100;  // force HD onto real grids
    // Adaptive rebalancing must never change mined output: cross it with
    // everything else (only IDD/HD honor it; the rest must ignore it).
    cfg.adaptive_balance = rng.NextBounded(2) == 1;
    for (Algorithm alg : {Algorithm::kCD, Algorithm::kDD, Algorithm::kIDD,
                          Algorithm::kHD, Algorithm::kHPA}) {
      const std::string label =
          AlgorithmName(alg) + " seed=" + std::to_string(seed) +
          " draw=" + std::to_string(draw) +
          " minsup=" + std::to_string(serial_cfg.minsup_fraction) +
          " P=" + std::to_string(p) +
          " page=" + std::to_string(page_bytes) + " tri=" +
          (serial_cfg.use_pass2_triangle ? "1" : "0") +
          " threads=" + std::to_string(serial_cfg.threads_per_rank) +
          " adaptive=" + (cfg.adaptive_balance ? "1" : "0");
      ParallelResult result = MineParallel(alg, db, p, cfg);
      testing::ExpectMatchesSerial(result, serial_flat, label);
      EXPECT_EQ(result.metrics.TotalFaultsInjected(), 0u) << label;
      EXPECT_EQ(result.metrics.TotalCommRetries(), 0u) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSweep,
                         ::testing::Values(101u, 202u, 303u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "Seed" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace pam
