# End-to-end CLI test: pam_gen writes a dataset, pam_mine mines it with a
# parallel formulation and rules, and both must succeed with coherent
# output. Invoked by CTest with -DGEN=<pam_gen> -DMINE=<pam_mine>
# -DWORKDIR=<scratch dir>.

file(MAKE_DIRECTORY "${WORKDIR}")
set(DATA "${WORKDIR}/tools_test.bin")
set(ITEMSETS "${WORKDIR}/tools_test.fi")

execute_process(
  COMMAND "${GEN}" --transactions 2000 --items 150 --avg-len 8
          --patterns 60 --seed 9 --output "${DATA}"
  RESULT_VARIABLE gen_rc OUTPUT_VARIABLE gen_out ERROR_VARIABLE gen_err)
if(NOT gen_rc EQUAL 0)
  message(FATAL_ERROR "pam_gen failed (${gen_rc}): ${gen_out}${gen_err}")
endif()
if(NOT gen_out MATCHES "wrote 2000 transactions")
  message(FATAL_ERROR "pam_gen output unexpected: ${gen_out}")
endif()

execute_process(
  COMMAND "${MINE}" --input "${DATA}" --minsup 1 --algorithm hd --ranks 4
          --rules --minconf 70 --machine t3e --explain --stats
          --save-itemsets "${ITEMSETS}" --top 5
  RESULT_VARIABLE mine_rc OUTPUT_VARIABLE mine_out ERROR_VARIABLE mine_err)
if(NOT mine_rc EQUAL 0)
  message(FATAL_ERROR "pam_mine failed (${mine_rc}): ${mine_out}${mine_err}")
endif()
foreach(needle
        "loaded 2000 transactions"
        "mined with HD on 4 logical ranks"
        "modeled response time"
        "frequent itemsets:"
        "saved frequent itemsets")
  if(NOT mine_out MATCHES "${needle}")
    message(FATAL_ERROR "pam_mine output missing '${needle}': ${mine_out}")
  endif()
endforeach()
if(NOT EXISTS "${ITEMSETS}")
  message(FATAL_ERROR "itemset file not written")
endif()

# Unknown flags must be rejected with a non-zero exit.
execute_process(
  COMMAND "${MINE}" --input "${DATA}" --no-such-flag
  RESULT_VARIABLE bad_rc OUTPUT_QUIET ERROR_QUIET)
if(bad_rc EQUAL 0)
  message(FATAL_ERROR "pam_mine accepted an unknown flag")
endif()

# DHP filter must preserve the mined itemset count.
execute_process(
  COMMAND "${MINE}" --input "${DATA}" --minsup 1 --algorithm cd --ranks 2
          --dhp 65536 --top 1
  RESULT_VARIABLE dhp_rc OUTPUT_VARIABLE dhp_out)
execute_process(
  COMMAND "${MINE}" --input "${DATA}" --minsup 1 --algorithm cd --ranks 2
          --top 1
  RESULT_VARIABLE plain_rc OUTPUT_VARIABLE plain_out)
if(NOT dhp_rc EQUAL 0 OR NOT plain_rc EQUAL 0)
  message(FATAL_ERROR "pam_mine CD runs failed")
endif()
string(REGEX MATCH "frequent itemsets: [0-9]+" dhp_count "${dhp_out}")
string(REGEX MATCH "frequent itemsets: [0-9]+" plain_count "${plain_out}")
if(NOT dhp_count STREQUAL plain_count)
  message(FATAL_ERROR
          "DHP changed results: '${dhp_count}' vs '${plain_count}'")
endif()

file(REMOVE "${DATA}" "${ITEMSETS}")
