#include "pam/util/bitmap.h"

#include <gtest/gtest.h>

#include "pam/util/prng.h"

namespace pam {
namespace {

TEST(BitmapTest, StartsAllClear) {
  Bitmap bm(130);
  EXPECT_EQ(bm.size(), 130u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(bm.Test(i));
  EXPECT_EQ(bm.Popcount(), 0u);
}

TEST(BitmapTest, SetAndClear) {
  Bitmap bm(100);
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(99);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(99));
  EXPECT_FALSE(bm.Test(1));
  EXPECT_EQ(bm.Popcount(), 4u);
  bm.Clear(63);
  EXPECT_FALSE(bm.Test(63));
  EXPECT_EQ(bm.Popcount(), 3u);
}

TEST(BitmapTest, ResetClearsEverything) {
  Bitmap bm(77);
  for (std::size_t i = 0; i < 77; i += 3) bm.Set(i);
  EXPECT_GT(bm.Popcount(), 0u);
  bm.Reset();
  EXPECT_EQ(bm.Popcount(), 0u);
}

TEST(BitmapTest, RandomizedAgainstReference) {
  Prng rng(5);
  const std::size_t n = 500;
  Bitmap bm(n);
  std::vector<bool> ref(n, false);
  for (int op = 0; op < 5000; ++op) {
    const std::size_t i = rng.NextBounded(n);
    if (rng.NextU64() & 1) {
      bm.Set(i);
      ref[i] = true;
    } else {
      bm.Clear(i);
      ref[i] = false;
    }
  }
  std::size_t expected_pop = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(bm.Test(i), ref[i]) << "bit " << i;
    if (ref[i]) ++expected_pop;
  }
  EXPECT_EQ(bm.Popcount(), expected_pop);
}

TEST(BitmapTest, WordsExposeRawStorage) {
  Bitmap bm(65);
  bm.Set(64);
  ASSERT_EQ(bm.words().size(), 2u);
  EXPECT_EQ(bm.words()[1], 1u);
}

}  // namespace
}  // namespace pam
