#include "pam/util/stats.h"

#include <gtest/gtest.h>

namespace pam {
namespace {

TEST(StatsTest, EmptyInput) {
  LoadSummary s = Summarize(std::vector<double>{});
  EXPECT_DOUBLE_EQ(s.imbalance, 1.0);
  EXPECT_DOUBLE_EQ(s.total, 0.0);
}

TEST(StatsTest, UniformValuesPerfectlyBalanced) {
  LoadSummary s = Summarize(std::vector<double>{4.0, 4.0, 4.0, 4.0});
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.imbalance, 1.0);
  EXPECT_DOUBLE_EQ(s.imbalance_percent, 0.0);
}

TEST(StatsTest, ImbalanceIsMaxOverMean) {
  // mean = 5, max = 8 -> imbalance 1.6 -> 60%.
  LoadSummary s = Summarize(std::vector<double>{2.0, 5.0, 8.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.imbalance, 1.6);
  EXPECT_NEAR(s.imbalance_percent, 60.0, 1e-9);
}

TEST(StatsTest, IntegerOverload) {
  LoadSummary s = Summarize(std::vector<std::uint64_t>{10, 20, 30});
  EXPECT_DOUBLE_EQ(s.total, 60.0);
  EXPECT_DOUBLE_EQ(s.max, 30.0);
  EXPECT_DOUBLE_EQ(s.imbalance, 1.5);
}

TEST(StatsTest, AllZerosKeepsImbalanceOne) {
  LoadSummary s = Summarize(std::vector<double>{0.0, 0.0});
  EXPECT_DOUBLE_EQ(s.imbalance, 1.0);
}

}  // namespace
}  // namespace pam
