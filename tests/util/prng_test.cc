#include "pam/util/prng.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pam {
namespace {

TEST(PrngTest, DeterministicForSameSeed) {
  Prng a(123);
  Prng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(PrngTest, DifferentSeedsDiverge) {
  Prng a(1);
  Prng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(PrngTest, BoundedStaysInRange) {
  Prng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(PrngTest, BoundedCoversRange) {
  Prng rng(9);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) ++hits[rng.NextBounded(10)];
  for (int h : hits) EXPECT_GT(h, 700);  // ~1000 expected each
}

TEST(PrngTest, DoubleInUnitInterval) {
  Prng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(PrngTest, ExponentialMeanApproximatelyCorrect) {
  Prng rng(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(PrngTest, PoissonSmallMeanMatches) {
  Prng rng(17);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.NextPoisson(6.0));
  }
  EXPECT_NEAR(sum / n, 6.0, 0.05);
}

TEST(PrngTest, PoissonLargeMeanMatches) {
  Prng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.NextPoisson(100.0));
  }
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(PrngTest, GaussianMoments) {
  Prng rng(23);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(PrngTest, PoissonZeroMean) {
  Prng rng(29);
  EXPECT_EQ(rng.NextPoisson(0.0), 0u);
  EXPECT_EQ(rng.NextPoisson(-1.0), 0u);
}

}  // namespace
}  // namespace pam
