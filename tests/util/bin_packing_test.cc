#include "pam/util/bin_packing.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "pam/util/prng.h"

namespace pam {
namespace {

TEST(BinPackingTest, EmptyInput) {
  BinPackingResult r = PackBins({}, 4);
  EXPECT_TRUE(r.bin_of.empty());
  ASSERT_EQ(r.bin_weight.size(), 4u);
  EXPECT_DOUBLE_EQ(r.Imbalance(), 1.0);
}

TEST(BinPackingTest, SingleBinTakesEverything) {
  BinPackingResult r = PackBins({5, 3, 9, 1}, 1);
  for (int b : r.bin_of) EXPECT_EQ(b, 0);
  EXPECT_EQ(r.bin_weight[0], 18u);
  EXPECT_DOUBLE_EQ(r.Imbalance(), 1.0);
}

TEST(BinPackingTest, EqualWeightsSplitEvenly) {
  std::vector<std::uint64_t> weights(12, 7);
  BinPackingResult r = PackBins(weights, 4);
  for (std::uint64_t w : r.bin_weight) EXPECT_EQ(w, 21u);
  EXPECT_DOUBLE_EQ(r.Imbalance(), 1.0);
}

TEST(BinPackingTest, BinWeightsMatchAssignment) {
  std::vector<std::uint64_t> weights = {10, 1, 1, 1, 8, 3, 3, 5};
  BinPackingResult r = PackBins(weights, 3);
  std::vector<std::uint64_t> recomputed(3, 0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    ASSERT_GE(r.bin_of[i], 0);
    ASSERT_LT(r.bin_of[i], 3);
    recomputed[static_cast<std::size_t>(r.bin_of[i])] += weights[i];
  }
  EXPECT_EQ(recomputed, r.bin_weight);
}

TEST(BinPackingTest, LptBoundHolds) {
  // LPT guarantees max <= (4/3 - 1/(3m)) * OPT, and OPT >= total/m, so
  // imbalance = max / (total/m) <= 4/3 always (weaker but easy to assert).
  Prng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint64_t> weights(40 + rng.NextBounded(60));
    for (auto& w : weights) w = 1 + rng.NextBounded(100);
    const int bins = 2 + static_cast<int>(rng.NextBounded(7));
    BinPackingResult r = PackBins(weights, bins);
    // Max bin also bounded by avg + max element.
    const std::uint64_t total =
        std::accumulate(weights.begin(), weights.end(), std::uint64_t{0});
    const std::uint64_t max_elem =
        *std::max_element(weights.begin(), weights.end());
    const double avg = static_cast<double>(total) / bins;
    const double max_bin = static_cast<double>(
        *std::max_element(r.bin_weight.begin(), r.bin_weight.end()));
    EXPECT_LE(max_bin, avg + static_cast<double>(max_elem));
  }
}

TEST(BinPackingTest, DeterministicAcrossCalls) {
  std::vector<std::uint64_t> weights = {3, 9, 2, 9, 4, 4, 4, 1, 12};
  BinPackingResult a = PackBins(weights, 3);
  BinPackingResult b = PackBins(weights, 3);
  EXPECT_EQ(a.bin_of, b.bin_of);
  EXPECT_EQ(a.bin_weight, b.bin_weight);
}

TEST(BinPackingTest, BeatsContiguousOnSkew) {
  // The paper's bad example: all the weight in the first half of the
  // items. Contiguous splitting puts all work on bin 0; bin packing
  // balances it.
  std::vector<std::uint64_t> weights(100, 0);
  for (std::size_t i = 0; i < 50; ++i) weights[i] = 10;
  BinPackingResult contiguous = PackContiguous(weights, 2);
  BinPackingResult packed = PackBins(weights, 2);
  EXPECT_NEAR(contiguous.Imbalance(), 2.0, 1e-9);
  EXPECT_NEAR(packed.Imbalance(), 1.0, 1e-9);
}

TEST(BinPackingTest, ContiguousAssignsMonotonically) {
  std::vector<std::uint64_t> weights(17, 1);
  BinPackingResult r = PackContiguous(weights, 4);
  for (std::size_t i = 1; i < weights.size(); ++i) {
    EXPECT_LE(r.bin_of[i - 1], r.bin_of[i]);
  }
  // Every bin used.
  std::vector<bool> used(4, false);
  for (int b : r.bin_of) used[static_cast<std::size_t>(b)] = true;
  for (bool u : used) EXPECT_TRUE(u);
}

TEST(BinPackingTest, MoreBinsThanElements) {
  BinPackingResult r = PackBins({5, 2}, 8);
  ASSERT_EQ(r.bin_weight.size(), 8u);
  EXPECT_EQ(std::accumulate(r.bin_weight.begin(), r.bin_weight.end(),
                            std::uint64_t{0}),
            7u);
}

TEST(BinPackingTest, ContiguousMoreBinsThanElements) {
  BinPackingResult r = PackContiguous({5, 2}, 8);
  ASSERT_EQ(r.bin_weight.size(), 8u);
  EXPECT_EQ(std::accumulate(r.bin_weight.begin(), r.bin_weight.end(),
                            std::uint64_t{0}),
            7u);
  // Contiguous assignment stays monotone even with empty bins between.
  EXPECT_LE(r.bin_of[0], r.bin_of[1]);
}

TEST(BinPackingTest, AllZeroWeights) {
  const std::vector<std::uint64_t> zeros(9, 0);
  for (const BinPackingResult& r :
       {PackBins(zeros, 3), PackContiguous(zeros, 3)}) {
    ASSERT_EQ(r.bin_of.size(), 9u);
    for (int b : r.bin_of) {
      EXPECT_GE(b, 0);
      EXPECT_LT(b, 3);
    }
    for (std::uint64_t w : r.bin_weight) EXPECT_EQ(w, 0u);
    // Zero total weight is defined as perfectly balanced, not a division
    // by zero.
    EXPECT_DOUBLE_EQ(r.Imbalance(), 1.0);
  }
}

TEST(BinPackingTest, TieBreakDeterminismOnEqualWeights) {
  // LPT with all-equal weights: elements are taken in index order and the
  // lightest-bin tie breaks by bin index, so the assignment is the exact
  // round-robin cycle — pinned here so packer refactors can't silently
  // change partition digests.
  const std::vector<std::uint64_t> weights(10, 4);
  BinPackingResult r = PackBins(weights, 3);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_EQ(r.bin_of[i], static_cast<int>(i % 3)) << "element " << i;
  }
}

TEST(BinPackingTest, ImbalanceInvariants) {
  // Imbalance() is max/mean over bins: always >= 1.0, exactly 1.0 only
  // when every bin weighs the same. Randomized over both packers.
  Prng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint64_t> weights(1 + rng.NextBounded(50));
    for (auto& w : weights) w = rng.NextBounded(20);  // zeros included
    const int bins = 1 + static_cast<int>(rng.NextBounded(8));
    for (const BinPackingResult& r :
         {PackBins(weights, bins), PackContiguous(weights, bins)}) {
      const double imb = r.Imbalance();
      EXPECT_GE(imb, 1.0);
      const std::uint64_t max =
          *std::max_element(r.bin_weight.begin(), r.bin_weight.end());
      const std::uint64_t min =
          *std::min_element(r.bin_weight.begin(), r.bin_weight.end());
      if (max == min) {
        EXPECT_DOUBLE_EQ(imb, 1.0);
      }
      if (imb == 1.0) {
        EXPECT_EQ(max, min);
      }
    }
  }
}

}  // namespace
}  // namespace pam
