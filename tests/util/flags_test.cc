#include "pam/util/flags.h"

#include <gtest/gtest.h>

namespace pam {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  FlagParser parser;
  EXPECT_TRUE(parser.Parse(static_cast<int>(args.size()), args.data()));
  return parser;
}

TEST(FlagsTest, EqualsSyntax) {
  FlagParser p = Parse({"--name=value", "--count=42"});
  EXPECT_EQ(p.GetString("name", ""), "value");
  EXPECT_EQ(p.GetInt("count", 0), 42);
}

TEST(FlagsTest, SpaceSyntax) {
  FlagParser p = Parse({"--name", "value", "--ratio", "2.5"});
  EXPECT_EQ(p.GetString("name", ""), "value");
  EXPECT_DOUBLE_EQ(p.GetDouble("ratio", 0.0), 2.5);
}

TEST(FlagsTest, BareFlagIsBooleanTrue) {
  FlagParser p = Parse({"--verbose", "--output", "x"});
  EXPECT_TRUE(p.GetBool("verbose", false));
  EXPECT_EQ(p.GetString("output", ""), "x");
}

TEST(FlagsTest, TrailingBareFlag) {
  FlagParser p = Parse({"--rules"});
  EXPECT_TRUE(p.GetBool("rules", false));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  FlagParser p = Parse({});
  EXPECT_EQ(p.GetString("missing", "fallback"), "fallback");
  EXPECT_EQ(p.GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(p.GetDouble("missing", 1.5), 1.5);
  EXPECT_FALSE(p.GetBool("missing", false));
  EXPECT_TRUE(p.GetBool("missing", true));
  EXPECT_FALSE(p.Has("missing"));
}

TEST(FlagsTest, PositionalArguments) {
  FlagParser p = Parse({"first", "--flag=1", "second"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "first");
  EXPECT_EQ(p.positional()[1], "second");
}

TEST(FlagsTest, BooleanSpellings) {
  FlagParser p =
      Parse({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"});
  EXPECT_TRUE(p.GetBool("a", false));
  EXPECT_TRUE(p.GetBool("b", false));
  EXPECT_TRUE(p.GetBool("c", false));
  EXPECT_FALSE(p.GetBool("d", true));
  EXPECT_FALSE(p.GetBool("e", true));
}

TEST(FlagsTest, UnknownFlagDetection) {
  FlagParser p = Parse({"--known=1", "--typo=2"});
  std::vector<std::string> unknown = p.UnknownFlags({"known", "other"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(FlagsTest, EmptyFlagNameIsError) {
  const char* args[] = {"prog", "--"};
  FlagParser p;
  EXPECT_FALSE(p.Parse(2, args));
  EXPECT_FALSE(p.error().empty());
}

TEST(FlagsTest, LastValueWins) {
  FlagParser p = Parse({"--x=1", "--x=2"});
  EXPECT_EQ(p.GetInt("x", 0), 2);
}

}  // namespace
}  // namespace pam
