#include "pam/util/types.h"

#include <vector>

#include <gtest/gtest.h>

namespace pam {
namespace {

ItemSpan Span(const std::vector<Item>& v) {
  return ItemSpan(v.data(), v.size());
}

TEST(TypesTest, EmptySetIsSubsetOfAnything) {
  std::vector<Item> empty;
  std::vector<Item> some = {1, 2, 3};
  EXPECT_TRUE(IsSortedSubset(Span(empty), Span(some)));
  EXPECT_TRUE(IsSortedSubset(Span(empty), Span(empty)));
}

TEST(TypesTest, SubsetDetection) {
  std::vector<Item> hay = {1, 3, 5, 7, 9};
  EXPECT_TRUE(IsSortedSubset(Span({3, 7}), Span(hay)));
  EXPECT_TRUE(IsSortedSubset(Span({1, 3, 5, 7, 9}), Span(hay)));
  EXPECT_FALSE(IsSortedSubset(Span({2}), Span(hay)));
  EXPECT_FALSE(IsSortedSubset(Span({1, 4}), Span(hay)));
  EXPECT_FALSE(IsSortedSubset(Span({9, 10}), Span(hay)));
}

TEST(TypesTest, SupersetNotSubset) {
  EXPECT_FALSE(IsSortedSubset(Span({1, 2, 3}), Span({1, 2})));
}

TEST(TypesTest, CompareItemsetsOrdering) {
  EXPECT_EQ(CompareItemsets(Span({1, 2}), Span({1, 2})), 0);
  EXPECT_LT(CompareItemsets(Span({1, 2}), Span({1, 3})), 0);
  EXPECT_GT(CompareItemsets(Span({2, 1}), Span({1, 9})), 0);
  // Prefix is smaller.
  EXPECT_LT(CompareItemsets(Span({1, 2}), Span({1, 2, 3})), 0);
  EXPECT_GT(CompareItemsets(Span({1, 2, 3}), Span({1, 2})), 0);
}

TEST(TypesTest, HashDiffersForDifferentSets) {
  EXPECT_NE(HashItemset(Span({1, 2, 3})), HashItemset(Span({1, 2, 4})));
  EXPECT_NE(HashItemset(Span({1, 2})), HashItemset(Span({2, 1})));
  EXPECT_EQ(HashItemset(Span({5, 6})), HashItemset(Span({5, 6})));
}

}  // namespace
}  // namespace pam
