#include "pam/hashtree/hash_tree.h"

#include <cmath>
#include <numeric>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "pam/core/apriori_gen.h"
#include "pam/util/prng.h"
#include "testing/random_db.h"

namespace pam {
namespace {

using testing::RandomCandidates;

TEST(HashTreeTest, CountsMatchBruteForceSmall) {
  TransactionDatabase db = testing::SupermarketDb();
  ItemsetCollection c2(2);
  for (Item a = 0; a < 5; ++a) {
    for (Item b = a + 1; b < 5; ++b) {
      std::vector<Item> s = {a, b};
      c2.Add(ItemSpan(s.data(), 2));
    }
  }
  HashTree tree(c2, HashTreeConfig{3, 2});
  std::vector<Count> counts(c2.size(), 0);
  for (std::size_t t = 0; t < db.size(); ++t) {
    tree.Subset(db.Transaction(t), std::span<Count>(counts), nullptr);
  }
  std::vector<Count> expected = CountBruteForce(db, {0, db.size()}, c2);
  EXPECT_EQ(counts, expected);
}

// Parameterized sweep: (k, fanout, leaf_capacity).
class HashTreeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HashTreeSweep, MatchesBruteForceOnRandomData) {
  const auto [k, fanout, leaf_capacity] = GetParam();
  TransactionDatabase db = testing::RandomDb(300, 25, 12, 1000 + k);
  ItemsetCollection candidates =
      RandomCandidates(k, 150, 25, 2000 + fanout);
  HashTree tree(candidates, HashTreeConfig{fanout, leaf_capacity});
  std::vector<Count> counts(candidates.size(), 0);
  SubsetStats stats;
  for (std::size_t t = 0; t < db.size(); ++t) {
    tree.Subset(db.Transaction(t), std::span<Count>(counts), &stats);
  }
  EXPECT_EQ(counts, CountBruteForce(db, {0, db.size()}, candidates));
  EXPECT_EQ(stats.transactions, db.size());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HashTreeSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 5),
                       ::testing::Values(2, 3, 8),
                       ::testing::Values(1, 4, 64)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
      std::string name = "k";
      name += std::to_string(std::get<0>(info.param));
      name += "_fan";
      name += std::to_string(std::get<1>(info.param));
      name += "_leaf";
      name += std::to_string(std::get<2>(info.param));
      return name;
    });

TEST(HashTreeTest, PartitionedTreesSumToFullCounts) {
  // Counting a partition of the candidates on separate trees must add up
  // to counting all candidates on one tree (DD/IDD rely on this).
  TransactionDatabase db = testing::RandomDb(200, 20, 10, 11);
  ItemsetCollection candidates = RandomCandidates(3, 120, 20, 12);

  HashTree full(candidates, HashTreeConfig{4, 4});
  std::vector<Count> full_counts(candidates.size(), 0);
  for (std::size_t t = 0; t < db.size(); ++t) {
    full.Subset(db.Transaction(t), std::span<Count>(full_counts), nullptr);
  }

  std::vector<Count> split_counts(candidates.size(), 0);
  const int parts = 4;
  for (int part = 0; part < parts; ++part) {
    std::vector<std::uint32_t> ids;
    for (std::size_t i = static_cast<std::size_t>(part); i < candidates.size();
         i += parts) {
      ids.push_back(static_cast<std::uint32_t>(i));
    }
    HashTree tree(candidates, ids, HashTreeConfig{4, 4});
    for (std::size_t t = 0; t < db.size(); ++t) {
      tree.Subset(db.Transaction(t), std::span<Count>(split_counts), nullptr);
    }
  }
  EXPECT_EQ(split_counts, full_counts);
}

TEST(HashTreeTest, BitmapFilterSkipsForeignStartItems) {
  // IDD usage: the tree holds only the candidates whose first item the
  // rank owns, and the bitmap skips all other start items at the root.
  // Counts of owned candidates must still be exact, and the filter must
  // measurably cut traversal work.
  TransactionDatabase db = testing::RandomDb(150, 20, 10, 21);
  ItemsetCollection candidates = RandomCandidates(2, 60, 20, 22);

  Bitmap filter(20);
  for (Item i = 0; i < 10; ++i) filter.Set(i);
  std::vector<std::uint32_t> owned_ids;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates.Get(i)[0] < 10) {
      owned_ids.push_back(static_cast<std::uint32_t>(i));
    }
  }
  ASSERT_FALSE(owned_ids.empty());

  HashTree tree(candidates, owned_ids, HashTreeConfig{4, 4});
  std::vector<Count> counts(candidates.size(), 0);
  SubsetStats with_filter;
  for (std::size_t t = 0; t < db.size(); ++t) {
    tree.Subset(db.Transaction(t), std::span<Count>(counts), &with_filter,
                &filter);
  }
  std::vector<Count> expected = CountBruteForce(db, {0, db.size()}, candidates);
  for (std::uint32_t id : owned_ids) {
    EXPECT_EQ(counts[id], expected[id]) << "owned candidate " << id;
  }
  EXPECT_GT(with_filter.root_items_skipped, 0u);

  // Without the filter the same tree does strictly more root work.
  HashTree unfiltered(candidates, owned_ids, HashTreeConfig{4, 4});
  std::vector<Count> counts2(candidates.size(), 0);
  SubsetStats no_filter;
  for (std::size_t t = 0; t < db.size(); ++t) {
    unfiltered.Subset(db.Transaction(t), std::span<Count>(counts2),
                      &no_filter);
  }
  EXPECT_EQ(no_filter.root_items_skipped, 0u);
  EXPECT_GT(no_filter.root_items_considered,
            with_filter.root_items_considered);
  for (std::uint32_t id : owned_ids) EXPECT_EQ(counts2[id], counts[id]);
}

TEST(HashTreeTest, LeafVisitsBoundedByPotentialCandidates) {
  // Distinct leaf visits per transaction can never exceed the number of
  // leaves nor the number of size-k sub-patterns the traversal can open.
  TransactionDatabase db = testing::RandomDb(100, 15, 10, 31);
  ItemsetCollection candidates = RandomCandidates(3, 100, 15, 32);
  HashTree tree(candidates, HashTreeConfig{3, 2});
  std::vector<Count> counts(candidates.size(), 0);
  for (std::size_t t = 0; t < db.size(); ++t) {
    SubsetStats stats;
    tree.Subset(db.Transaction(t), std::span<Count>(counts), &stats);
    EXPECT_LE(stats.distinct_leaf_visits, tree.num_leaves());
  }
}

TEST(HashTreeTest, ShortTransactionsAreCheap) {
  ItemsetCollection candidates = RandomCandidates(3, 50, 15, 41);
  HashTree tree(candidates, HashTreeConfig{4, 4});
  std::vector<Count> counts(candidates.size(), 0);
  SubsetStats stats;
  std::vector<Item> tiny = {3, 7};  // shorter than k=3
  tree.Subset(ItemSpan(tiny.data(), tiny.size()), std::span<Count>(counts),
              &stats);
  EXPECT_EQ(stats.traversal_steps, 0u);
  EXPECT_EQ(stats.distinct_leaf_visits, 0u);
  EXPECT_EQ(stats.transactions, 1u);
}

TEST(HashTreeTest, SmallLeafCapacityForcesSplits) {
  ItemsetCollection candidates = RandomCandidates(3, 200, 30, 51);
  HashTree split_tree(candidates, HashTreeConfig{4, 1});
  HashTree flat_tree(candidates, HashTreeConfig{4, 1000});
  EXPECT_GT(split_tree.num_leaves(), flat_tree.num_leaves());
  EXPECT_EQ(flat_tree.num_leaves(), 1u);
  EXPECT_EQ(split_tree.num_candidates(), 200u);
  EXPECT_EQ(split_tree.build_inserts(), 200u);
}

TEST(HashTreeTest, DuplicateItemsBeyondDepthChainInLeaf) {
  // Candidates identical under the hash path (same items mod fanout at
  // every level) must still count correctly by chaining in one leaf.
  ItemsetCollection candidates(2);
  std::vector<std::vector<Item>> sets = {{0, 4}, {0, 8}, {4, 8}, {0, 12}};
  for (auto& s : sets) candidates.Add(ItemSpan(s.data(), 2));
  // fanout 4: 0,4,8,12 all hash to bucket 0.
  HashTree tree(candidates, HashTreeConfig{4, 1});
  TransactionDatabase db;
  db.Add({0, 4, 8, 12});
  db.Add({0, 8});
  std::vector<Count> counts(candidates.size(), 0);
  for (std::size_t t = 0; t < db.size(); ++t) {
    tree.Subset(db.Transaction(t), std::span<Count>(counts), nullptr);
  }
  EXPECT_EQ(counts, CountBruteForce(db, {0, db.size()}, candidates));
}

TEST(HashTreeConfigTest, TunedForProducesTargetOccupancy) {
  // The paper's S-tuning rule: fanout^k should cover M / S leaves.
  for (std::size_t m : {100u, 5000u, 200000u}) {
    for (int k : {2, 3, 5}) {
      for (int s : {4, 16}) {
        HashTreeConfig cfg = HashTreeConfig::TunedFor(m, k, s);
        EXPECT_GE(cfg.fanout, 4);
        EXPECT_LE(cfg.fanout, 1024);
        EXPECT_EQ(cfg.leaf_capacity, s);
        const double paths = std::pow(cfg.fanout, k);
        EXPECT_GE(paths + 1e-6, static_cast<double>(m) / s)
            << "m=" << m << " k=" << k << " s=" << s;
      }
    }
  }
}

TEST(HashTreeConfigTest, TunedTreeAvoidsLeafChaining) {
  // With the tuned fanout, the average leaf occupancy stays near S even
  // for candidate sets that would saturate a narrow tree.
  TransactionDatabase db = testing::RandomDb(50, 40, 10, 71);
  ItemsetCollection candidates = RandomCandidates(3, 600, 40, 72);
  const int s = 8;
  HashTreeConfig tuned =
      HashTreeConfig::TunedFor(candidates.size(), 3, s);
  HashTreeConfig narrow{4, s};
  HashTree tuned_tree(candidates, tuned);
  HashTree narrow_tree(candidates, narrow);
  const double tuned_occupancy =
      static_cast<double>(candidates.size()) /
      static_cast<double>(tuned_tree.num_leaves());
  const double narrow_occupancy =
      static_cast<double>(candidates.size()) /
      static_cast<double>(narrow_tree.num_leaves());
  EXPECT_LT(tuned_occupancy, narrow_occupancy);
  EXPECT_LE(tuned_occupancy, 2.0 * s);
  // And counting stays correct.
  std::vector<Count> counts(candidates.size(), 0);
  for (std::size_t t = 0; t < db.size(); ++t) {
    tuned_tree.Subset(db.Transaction(t), std::span<Count>(counts), nullptr);
  }
  EXPECT_EQ(counts, CountBruteForce(db, {0, db.size()}, candidates));
}

TEST(HashTreeConfigTest, TunedForClampedFanoutRaisesLeafCapacity) {
  // When even fanout 1024 cannot reach M / S depth-k paths, the capacity
  // must be raised to the achievable occupancy ceil(M / fanout^k) instead
  // of silently keeping the unreachable target S.
  const std::size_t m = std::size_t{1} << 30;
  HashTreeConfig big = HashTreeConfig::TunedFor(m, 2, 8);
  EXPECT_EQ(big.fanout, 1024);
  // 1024^2 = 2^20 paths for 2^30 candidates: 1024 candidates per leaf.
  EXPECT_EQ(big.leaf_capacity, 1024);

  HashTreeConfig mid = HashTreeConfig::TunedFor(5'000'000, 2, 2);
  EXPECT_EQ(mid.fanout, 1024);
  EXPECT_EQ(mid.leaf_capacity, 5);  // ceil(5e6 / 2^20)

  // The invariant behind both cases: paths * capacity covers M.
  const double paths = std::pow(1024.0, 2);
  EXPECT_GE(paths * big.leaf_capacity + 1e-6, static_cast<double>(m));
  EXPECT_GE(paths * mid.leaf_capacity + 1e-6, 5'000'000.0);

  // Reachable configurations keep the exact target S.
  HashTreeConfig small = HashTreeConfig::TunedFor(100'000, 3, 8);
  EXPECT_EQ(small.leaf_capacity, 8);
}

TEST(HashTreeConfigTest, TunedForDegenerateInputs) {
  HashTreeConfig tiny = HashTreeConfig::TunedFor(0, 2, 16);
  EXPECT_GE(tiny.fanout, 4);
  HashTreeConfig zero_s = HashTreeConfig::TunedFor(100, 2, 0);
  EXPECT_EQ(zero_s.leaf_capacity, 1);
}

TEST(HashTreeTest, EmptyCandidateSet) {
  ItemsetCollection candidates(2);
  HashTree tree(candidates, HashTreeConfig{4, 4});
  TransactionDatabase db;
  db.Add({1, 2, 3});
  std::vector<Count> counts;
  SubsetStats stats;
  tree.Subset(db.Transaction(0), std::span<Count>(counts), &stats);
  EXPECT_EQ(stats.leaf_candidates_checked, 0u);
}

TEST(HashTreeTest, RealAprioriC3CountsMatch) {
  // End-to-end shape: candidates produced by apriori_gen from actual F2.
  TransactionDatabase db = testing::RandomDb(400, 30, 10, 61);
  std::vector<Count> item_counts = CountItems(db, {0, db.size()});
  ItemsetCollection f1 = MakeF1(item_counts, 40);
  ItemsetCollection c2 = AprioriGen(f1);
  ASSERT_GT(c2.size(), 0u);
  HashTree t2(c2, HashTreeConfig{8, 8});
  std::vector<Count> counts2(c2.size(), 0);
  for (std::size_t t = 0; t < db.size(); ++t) {
    t2.Subset(db.Transaction(t), std::span<Count>(counts2), nullptr);
  }
  EXPECT_EQ(counts2, CountBruteForce(db, {0, db.size()}, c2));

  c2.counts() = counts2;
  c2.PruneBelow(20);
  if (c2.size() >= 2) {
    ItemsetCollection c3 = AprioriGen(c2);
    if (!c3.empty()) {
      HashTree t3(c3, HashTreeConfig{8, 8});
      std::vector<Count> counts3(c3.size(), 0);
      for (std::size_t t = 0; t < db.size(); ++t) {
        t3.Subset(db.Transaction(t), std::span<Count>(counts3), nullptr);
      }
      EXPECT_EQ(counts3, CountBruteForce(db, {0, db.size()}, c3));
    }
  }
}

}  // namespace
}  // namespace pam
