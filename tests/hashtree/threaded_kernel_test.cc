// Differential tests for the intra-rank counting team (DESIGN.md §11):
// counts AND SubsetStats must be byte-identical between the 1-thread path
// and every team size, for the flat hash-tree kernel and the pass-2
// triangle kernel, across tree shapes, page sizes, and full mining runs
// of every formulation. A chaos cell combines fault injection with the
// thread team so the TSan job exercises rank threads and counting workers
// together.

#include <algorithm>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pam/core/apriori_gen.h"
#include "pam/core/count_team.h"
#include "pam/core/serial_apriori.h"
#include "pam/hashtree/counting_pool.h"
#include "pam/hashtree/hash_tree.h"
#include "pam/hashtree/pair_counter.h"
#include "pam/mp/fault.h"
#include "pam/parallel/driver.h"
#include "pam/util/prng.h"
#include "testing/test_support.h"

namespace pam {
namespace {

using testing::RandomCandidates;

void ExpectStatsEqual(const SubsetStats& a, const SubsetStats& b,
                      const std::string& label) {
  EXPECT_EQ(a.transactions, b.transactions) << label;
  EXPECT_EQ(a.root_items_considered, b.root_items_considered) << label;
  EXPECT_EQ(a.root_items_skipped, b.root_items_skipped) << label;
  EXPECT_EQ(a.traversal_steps, b.traversal_steps) << label;
  EXPECT_EQ(a.distinct_leaf_visits, b.distinct_leaf_visits) << label;
  EXPECT_EQ(a.leaf_candidates_checked, b.leaf_candidates_checked) << label;
}

struct TeamRun {
  std::vector<Count> counts;
  SubsetStats stats;
  std::vector<std::uint64_t> shard_work;
};

TeamRun RunTeam(const TransactionDatabase& db,
                const ItemsetCollection& candidates, HashTreeConfig config,
                int threads) {
  std::vector<std::uint32_t> ids(candidates.size());
  std::iota(ids.begin(), ids.end(), 0u);
  HashTree tree(candidates, std::move(ids), config);
  TeamRun out;
  out.counts.assign(candidates.size(), 0);
  CountingPool pool(threads);
  TeamCounter team(&pool, &tree, std::span<Count>(out.counts), &out.stats);
  team.CountSlice(db, {0, db.size()});
  team.Finish();
  out.shard_work = team.shard_work();
  return out;
}

// The tentpole guarantee: the team's merged counts and stats are identical
// to the single-threaded kernel for every team size and tree shape
// (deterministic fixed-order strip merge, DESIGN.md §11).
TEST(ThreadedKernelTest, TreeCountsIdenticalAcrossTeamSizes) {
  const TransactionDatabase db = testing::RandomDb(400, 30, 10, 17);
  const ItemsetCollection candidates = RandomCandidates(3, 300, 30, 99);
  for (const int leaf_capacity : {1, 4, 16}) {
    for (const int fanout : {4, 8}) {
      HashTreeConfig config;
      config.leaf_capacity = leaf_capacity;
      config.fanout = fanout;
      const TeamRun base = RunTeam(db, candidates, config, 1);
      EXPECT_TRUE(base.shard_work.empty());  // degenerate team collects none
      for (const int threads : {2, 3, 4, 8}) {
        const std::string label = "leaf=" + std::to_string(leaf_capacity) +
                                  " fanout=" + std::to_string(fanout) +
                                  " threads=" + std::to_string(threads);
        const TeamRun run = RunTeam(db, candidates, config, threads);
        EXPECT_EQ(run.counts, base.counts) << label;
        ExpectStatsEqual(run.stats, base.stats, label);
        // The per-shard work decomposition must cover the whole pass.
        ASSERT_EQ(run.shard_work.size(),
                  static_cast<std::size_t>(threads)) << label;
        std::uint64_t shard_total = 0;
        for (const std::uint64_t w : run.shard_work) shard_total += w;
        EXPECT_EQ(shard_total, run.stats.traversal_steps +
                                   run.stats.leaf_candidates_checked)
            << label;
      }
    }
  }
}

// Same guarantee for the pass-2 triangle kernel: shard triangles merged in
// fixed order equal the single-threaded triangular count.
TEST(ThreadedKernelTest, TriangleCountsIdenticalAcrossTeamSizes) {
  const TransactionDatabase db = testing::RandomDb(500, 24, 9, 23);
  AprioriConfig cfg;
  cfg.minsup_count = 3;
  cfg.max_k = 1;
  const SerialResult pass1 = MineSerial(db, cfg);
  ASSERT_FALSE(pass1.frequent.levels.empty());
  const ItemsetCollection& f1 = pass1.frequent.levels[0];
  ASSERT_GE(f1.size(), 4u);
  const ItemsetCollection candidates = AprioriGen(f1);
  ASSERT_FALSE(candidates.empty());

  auto run = [&](int threads) {
    TeamRun out;
    TrianglePairCounter tri(f1);
    CountingPool pool(threads);
    TriangleTeam team(&pool, &tri, &out.stats);
    team.CountSlice(db, {0, db.size()});
    team.Finish();
    out.shard_work = team.shard_work();
    out.counts.assign(candidates.size(), 0);
    tri.Extract(candidates, std::span<Count>(out.counts));
    return out;
  };
  const TeamRun base = run(1);
  for (const int threads : {2, 4, 8}) {
    const std::string label = "threads=" + std::to_string(threads);
    const TeamRun team = run(threads);
    EXPECT_EQ(team.counts, base.counts) << label;
    ExpectStatsEqual(team.stats, base.stats, label);
    ASSERT_EQ(team.shard_work.size(), static_cast<std::size_t>(threads))
        << label;
  }
}

// End-to-end: every formulation's mined itemsets and counts are identical
// to the 1-thread serial reference at every team size and page size.
TEST(ThreadedKernelTest, MiningByteIdenticalAcrossThreadCounts) {
  const TransactionDatabase db = testing::SmallQuestDb();
  AprioriConfig serial_cfg;
  serial_cfg.minsup_fraction = 0.02;
  const auto reference = testing::SerialReference(db, serial_cfg);

  for (const int threads : {2, 4, 8}) {
    AprioriConfig threaded = serial_cfg;
    threaded.threads_per_rank = threads;
    testing::ExpectMatchesSerial(
        MineSerial(db, threaded), reference,
        "serial threads=" + std::to_string(threads));
  }

  const Algorithm algorithms[] = {Algorithm::kCD,  Algorithm::kDD,
                                  Algorithm::kDDComm, Algorithm::kIDD,
                                  Algorithm::kHD,  Algorithm::kHPA};
  for (const Algorithm algorithm : algorithms) {
    for (const int threads : {2, 4}) {
      for (const std::size_t page_bytes : {256u, 4096u}) {
        ParallelConfig cfg;
        cfg.apriori = serial_cfg;
        cfg.apriori.threads_per_rank = threads;
        cfg.page_bytes = page_bytes;
        const std::string label = std::string(AlgorithmName(algorithm)) +
                                  " threads=" + std::to_string(threads) +
                                  " page=" + std::to_string(page_bytes);
        testing::ExpectMatchesSerial(MineParallel(algorithm, db, 4, cfg),
                                     reference, label);
      }
    }
  }
}

// threads_per_rank and the shard work decomposition surface through the
// unified metrics matrix.
TEST(ThreadedKernelTest, ShardWorkSurfacesInMetrics) {
  const TransactionDatabase db = testing::SmallQuestDb();
  ParallelConfig cfg;
  cfg.apriori.minsup_fraction = 0.02;
  cfg.apriori.threads_per_rank = 4;
  const ParallelResult result = MineParallel(Algorithm::kCD, db, 2, cfg);
  ASSERT_GE(result.metrics.num_passes(), 2);
  const PassMetrics& pass2 = result.metrics.per_pass[1][0];
  EXPECT_EQ(pass2.threads_per_rank, 4);
  ASSERT_EQ(pass2.shard_subset_work.size(), 4u);
  std::uint64_t total = 0;
  for (const std::uint64_t w : pass2.shard_subset_work) total += w;
  EXPECT_EQ(total, pass2.subset.traversal_steps +
                       pass2.subset.leaf_candidates_checked);
}

// Fault injection and the counting team together: rank threads retransmit
// through a lossy transport while each rank's team counts in parallel.
// Exact results still required; this is the TSan job's combined cell.
TEST(ThreadedKernelTest, ChaosRunWithThreadTeamStaysExact) {
  const TransactionDatabase db = testing::TinyQuestDb();
  AprioriConfig serial_cfg;
  serial_cfg.minsup_fraction = 0.03;
  const auto reference = testing::SerialReference(db, serial_cfg);

  for (const Algorithm algorithm :
       {Algorithm::kCD, Algorithm::kIDD, Algorithm::kHPA}) {
    ParallelConfig cfg;
    cfg.apriori = serial_cfg;
    cfg.apriori.threads_per_rank = 4;
    cfg.fault = FaultConfig::Mixed(0.2, /*seed=*/7, /*max_retries=*/8);
    const ParallelResult result = MineParallel(algorithm, db, 3, cfg);
    testing::ExpectMatchesSerial(
        result, reference,
        std::string(AlgorithmName(algorithm)) + " under mixed faults");
  }
}

}  // namespace
}  // namespace pam
