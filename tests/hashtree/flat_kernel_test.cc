// Differential tests for the flat subset-counting kernel and the
// triangular pass-2 counter: both must be indistinguishable from the
// classic recursive traversal (counts AND SubsetStats, bit for bit) and
// from brute-force counting, across random databases, tree shapes, root
// filters, and the chunked memory-cap configurations of the miners.

#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "pam/core/apriori_gen.h"
#include "pam/core/serial_apriori.h"
#include "pam/hashtree/hash_tree.h"
#include "pam/hashtree/pair_counter.h"
#include "pam/parallel/driver.h"
#include "pam/util/prng.h"
#include "testing/random_db.h"

namespace pam {
namespace {

using testing::RandomCandidates;

struct KernelOutput {
  std::vector<Count> counts;
  SubsetStats stats;
};

KernelOutput RunKernel(const TransactionDatabase& db,
                 const ItemsetCollection& candidates,
                 const std::vector<std::uint32_t>& ids, HashTreeConfig config,
                 HashTreeKernel kernel, const Bitmap* filter = nullptr) {
  config.kernel = kernel;
  HashTree tree(candidates, ids, config);
  KernelOutput out;
  out.counts.assign(candidates.size(), 0);
  for (std::size_t t = 0; t < db.size(); ++t) {
    tree.Subset(db.Transaction(t), std::span<Count>(out.counts), &out.stats,
                filter);
  }
  return out;
}

void ExpectSameStats(const SubsetStats& a, const SubsetStats& b) {
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.root_items_considered, b.root_items_considered);
  EXPECT_EQ(a.root_items_skipped, b.root_items_skipped);
  EXPECT_EQ(a.traversal_steps, b.traversal_steps);
  EXPECT_EQ(a.distinct_leaf_visits, b.distinct_leaf_visits);
  EXPECT_EQ(a.leaf_candidates_checked, b.leaf_candidates_checked);
}

std::vector<std::uint32_t> AllIds(std::size_t n) {
  std::vector<std::uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

TEST(FlatKernelTest, MatchesClassicAndBruteForceAcrossRandomShapes) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    TransactionDatabase db =
        testing::RandomDb(250, 30, 14, 900 + seed);
    for (int k : {2, 3, 4}) {
      ItemsetCollection candidates =
          RandomCandidates(k, 180, 30, 7000 + seed * 10 + k);
      // Non-power-of-two fanouts exercise the construction-time rounding;
      // both kernels must round identically.
      for (int fanout : {3, 8, 17}) {
        const HashTreeConfig config{fanout, 4};
        const std::vector<std::uint32_t> ids = AllIds(candidates.size());
        KernelOutput flat =
            RunKernel(db, candidates, ids, config, HashTreeKernel::kFlat);
        KernelOutput classic =
            RunKernel(db, candidates, ids, config, HashTreeKernel::kClassic);
        EXPECT_EQ(flat.counts, classic.counts)
            << "seed=" << seed << " k=" << k << " fanout=" << fanout;
        ExpectSameStats(flat.stats, classic.stats);
        EXPECT_EQ(flat.counts, CountBruteForce(db, {0, db.size()}, candidates));
      }
    }
  }
}

TEST(FlatKernelTest, MatchesClassicWithRootFilter) {
  TransactionDatabase db = testing::RandomDb(200, 24, 12, 77);
  ItemsetCollection candidates = RandomCandidates(3, 150, 24, 78);
  // IDD-style ownership: the tree holds only candidates starting below 12
  // and the bitmap prunes all other start items at the root.
  Bitmap filter(24);
  for (Item i = 0; i < 12; ++i) filter.Set(i);
  std::vector<std::uint32_t> owned;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates.Get(i)[0] < 12) {
      owned.push_back(static_cast<std::uint32_t>(i));
    }
  }
  ASSERT_FALSE(owned.empty());
  const HashTreeConfig config{4, 2};
  KernelOutput flat =
      RunKernel(db, candidates, owned, config, HashTreeKernel::kFlat, &filter);
  KernelOutput classic =
      RunKernel(db, candidates, owned, config, HashTreeKernel::kClassic, &filter);
  EXPECT_EQ(flat.counts, classic.counts);
  ExpectSameStats(flat.stats, classic.stats);
  EXPECT_GT(flat.stats.root_items_skipped, 0u);
}

TEST(FlatKernelTest, MatchesClassicOnPartitionedChunks) {
  // The memory-capped miners build trees over candidate id ranges; both
  // kernels must agree chunk by chunk.
  TransactionDatabase db = testing::RandomDb(150, 20, 10, 91);
  ItemsetCollection candidates = RandomCandidates(2, 120, 20, 92);
  const HashTreeConfig config{8, 4};
  const std::size_t chunk_size = 37;
  for (std::size_t lo = 0; lo < candidates.size(); lo += chunk_size) {
    const std::size_t hi = std::min(candidates.size(), lo + chunk_size);
    std::vector<std::uint32_t> ids(hi - lo);
    std::iota(ids.begin(), ids.end(), static_cast<std::uint32_t>(lo));
    KernelOutput flat = RunKernel(db, candidates, ids, config, HashTreeKernel::kFlat);
    KernelOutput classic =
        RunKernel(db, candidates, ids, config, HashTreeKernel::kClassic);
    EXPECT_EQ(flat.counts, classic.counts) << "chunk at " << lo;
    ExpectSameStats(flat.stats, classic.stats);
  }
}

TEST(FlatKernelTest, DegenerateSingleLeafTree) {
  // Capacity large enough that the root never splits: the degenerate
  // root-leaf path must agree between kernels (one check per transaction).
  TransactionDatabase db = testing::RandomDb(120, 15, 8, 101);
  ItemsetCollection candidates = RandomCandidates(2, 40, 15, 102);
  const HashTreeConfig config{4, 1000};
  const std::vector<std::uint32_t> ids = AllIds(candidates.size());
  KernelOutput flat = RunKernel(db, candidates, ids, config, HashTreeKernel::kFlat);
  KernelOutput classic =
      RunKernel(db, candidates, ids, config, HashTreeKernel::kClassic);
  EXPECT_EQ(flat.counts, classic.counts);
  ExpectSameStats(flat.stats, classic.stats);
  EXPECT_EQ(flat.counts, CountBruteForce(db, {0, db.size()}, candidates));
}

TEST(TrianglePairCounterTest, MatchesTreeCountsOnC2) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    TransactionDatabase db = testing::RandomDb(300, 40, 15, 500 + seed);
    std::vector<Count> item_counts = CountItems(db, {0, db.size()});
    ItemsetCollection f1 = MakeF1(item_counts, 30);
    if (f1.size() < 2) continue;
    ItemsetCollection c2 = AprioriGen(f1);
    ASSERT_GT(c2.size(), 0u);

    TrianglePairCounter tri(f1);
    SubsetStats stats;
    for (std::size_t t = 0; t < db.size(); ++t) {
      tri.AddTransaction(db.Transaction(t), &stats);
    }
    std::vector<Count> tri_counts(c2.size(), 0);
    tri.Extract(c2, std::span<Count>(tri_counts));
    EXPECT_EQ(stats.transactions, db.size());

    EXPECT_EQ(tri_counts, CountBruteForce(db, {0, db.size()}, c2));
  }
}

TEST(TrianglePairCounterTest, MatchesTreeCountsOnDhpFilteredC2) {
  // DHP drops some C2 candidates; the triangle must extract exactly the
  // surviving subset's counts.
  TransactionDatabase db = testing::RandomDb(250, 30, 12, 611);
  std::vector<Count> item_counts = CountItems(db, {0, db.size()});
  ItemsetCollection f1 = MakeF1(item_counts, 25);
  ASSERT_GE(f1.size(), 2u);
  std::vector<Count> buckets = CountPairBuckets(db, {0, db.size()}, 64);
  ItemsetCollection c2 = FilterByBuckets(AprioriGen(f1), buckets, 25);
  ASSERT_GT(c2.size(), 0u);

  TrianglePairCounter tri(f1);
  for (std::size_t t = 0; t < db.size(); ++t) {
    tri.AddTransaction(db.Transaction(t), nullptr);
  }
  std::vector<Count> tri_counts(c2.size(), 0);
  tri.Extract(c2, std::span<Count>(tri_counts));
  EXPECT_EQ(tri_counts, CountBruteForce(db, {0, db.size()}, c2));
}

TEST(TrianglePairCounterTest, FitsHonorsMemoryCap) {
  EXPECT_TRUE(TrianglePairCounter::Fits(100, 0));       // no cap
  EXPECT_TRUE(TrianglePairCounter::Fits(100, 4950));    // exactly R(R-1)/2
  EXPECT_FALSE(TrianglePairCounter::Fits(100, 4949));
  EXPECT_FALSE(TrianglePairCounter::Fits(1, 1000));     // no pairs to count
}

void ExpectSameFrequent(const FrequentItemsets& a, const FrequentItemsets& b) {
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (std::size_t i = 0; i < a.levels.size(); ++i) {
    EXPECT_EQ(a.levels[i].Serialize(), b.levels[i].Serialize())
        << "level " << i + 1;
  }
}

TEST(TrianglePathTest, SerialMinerOutputUnchangedByToggle) {
  TransactionDatabase db = testing::RandomDb(400, 35, 12, 712);
  for (std::size_t cap : {std::size_t{0}, std::size_t{40}}) {
    AprioriConfig with;
    with.minsup_count = 20;
    with.max_candidates_in_memory = cap;
    AprioriConfig without = with;
    without.use_pass2_triangle = false;
    SerialResult r1 = MineSerial(db, with);
    SerialResult r2 = MineSerial(db, without);
    ExpectSameFrequent(r1.frequent, r2.frequent);
    // The triangle (when it fits the cap) counts pass 2 in one scan.
    for (const SerialPassInfo& pass : r1.passes) {
      if (pass.k != 2) continue;
      const bool fits = TrianglePairCounter::Fits(
          r1.frequent.levels[0].size(), cap);
      const std::size_t chunks =
          cap == 0 ? 1 : (pass.num_candidates + cap - 1) / cap;
      EXPECT_EQ(pass.db_scans, fits ? 1u : chunks);
    }
  }
}

TEST(TrianglePathTest, CdOutputUnchangedByToggle) {
  TransactionDatabase db = testing::RandomDb(360, 30, 12, 813);
  for (int p : {1, 4}) {
    ParallelConfig with;
    with.apriori.minsup_count = 18;
    ParallelConfig without = with;
    without.apriori.use_pass2_triangle = false;
    ParallelResult r1 = MineParallel(Algorithm::kCD, db, p, with);
    ParallelResult r2 = MineParallel(Algorithm::kCD, db, p, without);
    ExpectSameFrequent(r1.frequent, r2.frequent);
  }
}

}  // namespace
}  // namespace pam
