#include "pam/tdb/remap.h"

#include <map>

#include <gtest/gtest.h>

#include "pam/core/serial_apriori.h"
#include "pam/datagen/quest_gen.h"
#include "testing/random_db.h"

namespace pam {
namespace {

TEST(RemapTest, MostFrequentItemGetsIdZero) {
  TransactionDatabase db;
  db.Add({0, 2});
  db.Add({2});
  db.Add({1, 2});
  ItemRemap remap = BuildFrequencyRemap(db);
  EXPECT_EQ(remap.old_to_new[2], 0u);  // freq 3
  EXPECT_EQ(remap.new_to_old[0], 2u);
}

TEST(RemapTest, TiesBrokenByOldId) {
  TransactionDatabase db;
  db.Add({0, 1, 2});
  ItemRemap remap = BuildFrequencyRemap(db);
  EXPECT_EQ(remap.old_to_new[0], 0u);
  EXPECT_EQ(remap.old_to_new[1], 1u);
  EXPECT_EQ(remap.old_to_new[2], 2u);
}

TEST(RemapTest, RemapIsBijective) {
  TransactionDatabase db = testing::RandomDb(200, 50, 8, 3);
  ItemRemap remap = BuildFrequencyRemap(db);
  ASSERT_EQ(remap.old_to_new.size(), remap.new_to_old.size());
  for (Item old_id = 0; old_id < remap.old_to_new.size(); ++old_id) {
    EXPECT_EQ(remap.new_to_old[remap.old_to_new[old_id]], old_id);
  }
}

TEST(RemapTest, FrequenciesDescendUnderNewLabels) {
  TransactionDatabase db = testing::RandomDb(300, 40, 10, 5);
  ItemRemap remap = BuildFrequencyRemap(db);
  TransactionDatabase remapped = ApplyRemap(db, remap.old_to_new);
  std::vector<Count> freq(remapped.NumItems(), 0);
  for (std::size_t t = 0; t < remapped.size(); ++t) {
    for (Item x : remapped.Transaction(t)) ++freq[x];
  }
  for (std::size_t i = 1; i < freq.size(); ++i) {
    EXPECT_GE(freq[i - 1], freq[i]) << "item " << i;
  }
}

TEST(RemapTest, TransactionContentsPreserved) {
  TransactionDatabase db = testing::RandomDb(100, 30, 6, 7);
  ItemRemap remap = BuildFrequencyRemap(db);
  TransactionDatabase remapped = ApplyRemap(db, remap.old_to_new);
  ASSERT_EQ(remapped.size(), db.size());
  for (std::size_t t = 0; t < db.size(); ++t) {
    ItemSpan new_tx = remapped.Transaction(t);
    std::vector<Item> back = TranslateBack(remap, new_tx);
    ItemSpan old_tx = db.Transaction(t);
    EXPECT_EQ(back, std::vector<Item>(old_tx.begin(), old_tx.end()))
        << "transaction " << t;
  }
}

TEST(RemapTest, MiningInvariantUnderRelabeling) {
  // Frequent itemsets of the remapped database translate back exactly to
  // the frequent itemsets of the original (same counts).
  TransactionDatabase db = GenerateQuest([] {
    QuestConfig q;
    q.num_transactions = 500;
    q.num_items = 60;
    q.avg_transaction_len = 7;
    q.avg_pattern_len = 3;
    q.seed = 11;
    return q;
  }());
  ItemRemap remap = BuildFrequencyRemap(db);
  TransactionDatabase remapped = ApplyRemap(db, remap.old_to_new);

  AprioriConfig cfg;
  cfg.minsup_fraction = 0.02;
  SerialResult original = MineSerial(db, cfg);
  SerialResult relabeled = MineSerial(remapped, cfg);

  std::map<std::vector<Item>, Count> expected;
  for (const auto& level : original.frequent.levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      ItemSpan s = level.Get(i);
      expected[std::vector<Item>(s.begin(), s.end())] = level.count(i);
    }
  }
  std::map<std::vector<Item>, Count> translated;
  for (const auto& level : relabeled.frequent.levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      translated[TranslateBack(remap, level.Get(i))] = level.count(i);
    }
  }
  EXPECT_EQ(translated, expected);
}

TEST(RemapTest, FixesTheContiguousPartitionSkew) {
  // The paper's III-C example: all activity on the low half of the id
  // space makes a contiguous first-item split maximally unbalanced.
  // Frequency remapping interleaves hot items across the id space enough
  // that even the naive contiguous split improves.
  TransactionDatabase db;
  Prng rng(13);
  for (int t = 0; t < 400; ++t) {
    std::vector<Item> tx;
    for (int i = 0; i < 6; ++i) {
      // Hot region: ids 0..49 with 95% probability.
      const bool hot = rng.NextBounded(100) < 95;
      tx.push_back(static_cast<Item>(hot ? rng.NextBounded(50)
                                         : 50 + rng.NextBounded(50)));
    }
    db.Add(tx);
  }
  // Counting 2-candidates per first item as the imbalance proxy.
  auto first_item_weights = [](const TransactionDatabase& d) {
    std::vector<Count> freq(d.NumItems(), 0);
    for (std::size_t t = 0; t < d.size(); ++t) {
      for (Item x : d.Transaction(t)) ++freq[x];
    }
    // Hot-half mass fraction.
    Count low = 0;
    Count total = 0;
    for (Item x = 0; x < freq.size(); ++x) {
      total += freq[x];
      if (x < freq.size() / 2) low += freq[x];
    }
    return static_cast<double>(low) / static_cast<double>(total);
  };
  const double before = first_item_weights(db);
  ItemRemap remap = BuildFrequencyRemap(db);
  TransactionDatabase remapped = ApplyRemap(db, remap.old_to_new);
  const double after = first_item_weights(remapped);
  EXPECT_GT(before, 0.9);
  // After remapping, the heavy items occupy the dense low prefix — the
  // mass is *still* in the low half (that is the point: the layout is now
  // *known*, frequency-descending), so partitioners can exploit it.
  EXPECT_GT(after, before - 0.05);
}

}  // namespace
}  // namespace pam
