#include "pam/tdb/io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "testing/random_db.h"

namespace pam {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pam_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

void ExpectSameDb(const TransactionDatabase& a, const TransactionDatabase& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    ItemSpan ta = a.Transaction(t);
    ItemSpan tb = b.Transaction(t);
    ASSERT_EQ(std::vector<Item>(ta.begin(), ta.end()),
              std::vector<Item>(tb.begin(), tb.end()))
        << "transaction " << t;
  }
}

TEST_F(IoTest, TextRoundTrip) {
  TransactionDatabase db = testing::RandomDb(200, 50, 10, 3);
  ASSERT_TRUE(WriteText(db, Path("db.txt")).ok());
  auto loaded = ReadText(Path("db.txt"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ExpectSameDb(db, loaded.value());
}

TEST_F(IoTest, BinaryRoundTrip) {
  TransactionDatabase db = testing::RandomDb(200, 50, 10, 4);
  ASSERT_TRUE(WriteBinary(db, Path("db.bin")).ok());
  auto loaded = ReadBinary(Path("db.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ExpectSameDb(db, loaded.value());
}

TEST_F(IoTest, TextReaderSkipsBlankLinesAndSorts) {
  std::ofstream out(Path("manual.txt"));
  out << "3 1 2\n\n7 7 5\n";
  out.close();
  auto loaded = ReadText(Path("manual.txt"));
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  ItemSpan t0 = loaded->Transaction(0);
  EXPECT_EQ(std::vector<Item>(t0.begin(), t0.end()),
            (std::vector<Item>{1, 2, 3}));
  ItemSpan t1 = loaded->Transaction(1);
  EXPECT_EQ(std::vector<Item>(t1.begin(), t1.end()),
            (std::vector<Item>{5, 7}));
}

TEST_F(IoTest, MissingFileFailsCleanly) {
  auto loaded = ReadText(Path("does_not_exist.txt"));
  EXPECT_FALSE(loaded.ok());
  auto loaded_bin = ReadBinary(Path("does_not_exist.bin"));
  EXPECT_FALSE(loaded_bin.ok());
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  std::ofstream out(Path("junk.bin"), std::ios::binary);
  const char garbage[32] = {1, 2, 3};
  out.write(garbage, sizeof(garbage));
  out.close();
  auto loaded = ReadBinary(Path("junk.bin"));
  EXPECT_FALSE(loaded.ok());
}

TEST_F(IoTest, BinaryRejectsTruncation) {
  TransactionDatabase db = testing::RandomDb(50, 20, 8, 5);
  ASSERT_TRUE(WriteBinary(db, Path("full.bin")).ok());
  // Copy all but the last 16 bytes.
  std::ifstream in(Path("full.bin"), std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  std::ofstream out(Path("cut.bin"), std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 16));
  out.close();
  auto loaded = ReadBinary(Path("cut.bin"));
  EXPECT_FALSE(loaded.ok());
}

TEST_F(IoTest, EmptyDatabaseRoundTrips) {
  TransactionDatabase db;
  ASSERT_TRUE(WriteBinary(db, Path("empty.bin")).ok());
  auto loaded = ReadBinary(Path("empty.bin"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
}

}  // namespace
}  // namespace pam
