#include "pam/tdb/page_buffer.h"

#include <gtest/gtest.h>

#include "testing/random_db.h"

namespace pam {
namespace {

TEST(PageBufferTest, RoundTripPreservesTransactions) {
  TransactionDatabase db = testing::RandomDb(137, 40, 9, 6);
  const TransactionDatabase::Slice slice{0, db.size()};
  std::vector<Page> pages = Paginate(db, slice, 128);

  std::vector<std::vector<Item>> seen;
  for (const Page& page : pages) {
    ForEachTransaction(page, [&seen](ItemSpan tx) {
      seen.emplace_back(tx.begin(), tx.end());
    });
  }
  ASSERT_EQ(seen.size(), db.size());
  for (std::size_t t = 0; t < db.size(); ++t) {
    ItemSpan tx = db.Transaction(t);
    EXPECT_EQ(seen[t], std::vector<Item>(tx.begin(), tx.end()));
  }
}

TEST(PageBufferTest, RespectsPageSize) {
  TransactionDatabase db = testing::RandomDb(100, 40, 5, 7);
  const std::size_t page_bytes = 64;
  std::vector<Page> pages = Paginate(db, {0, db.size()}, page_bytes);
  for (const Page& page : pages) {
    // A page may exceed the limit only if it holds a single transaction.
    if (PageBytes(page) > page_bytes) {
      EXPECT_EQ(PageTransactionCount(page), 1u);
    }
  }
}

TEST(PageBufferTest, JumboTransactionGetsOwnPage) {
  TransactionDatabase db;
  std::vector<Item> big;
  for (Item i = 0; i < 100; ++i) big.push_back(i);
  db.Add(big);
  db.Add({1, 2});
  std::vector<Page> pages = Paginate(db, {0, 2}, 16);
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(PageTransactionCount(pages[0]), 1u);
}

TEST(PageBufferTest, SliceSelectsSubrange) {
  TransactionDatabase db;
  db.Add({1});
  db.Add({2});
  db.Add({3});
  std::vector<Page> pages = Paginate(db, {1, 3}, 4096);
  ASSERT_EQ(pages.size(), 1u);
  std::vector<Item> items;
  ForEachTransaction(pages[0], [&items](ItemSpan tx) {
    items.insert(items.end(), tx.begin(), tx.end());
  });
  EXPECT_EQ(items, (std::vector<Item>{2, 3}));
}

TEST(PageBufferTest, EmptySliceYieldsNoPages) {
  TransactionDatabase db = testing::RandomDb(10, 10, 3, 8);
  EXPECT_TRUE(Paginate(db, {4, 4}, 1024).empty());
}

TEST(PageBufferTest, TransactionCountMatches) {
  TransactionDatabase db = testing::RandomDb(55, 30, 7, 9);
  std::vector<Page> pages = Paginate(db, {0, db.size()}, 256);
  std::size_t total = 0;
  for (const Page& page : pages) total += PageTransactionCount(page);
  EXPECT_EQ(total, db.size());
}

}  // namespace
}  // namespace pam
