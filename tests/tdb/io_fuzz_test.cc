// Failure-injection tests for the binary reader: random single-byte
// corruption, truncation at every boundary, and garbage files must never
// crash or return a structurally invalid database — they either fail
// cleanly or (for corruption that only touches item payloads) return a
// database that still satisfies every invariant.

#include <cstring>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "pam/tdb/io.h"
#include "pam/util/prng.h"
#include "testing/random_db.h"

namespace pam {
namespace {

class IoFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pam_io_fuzz_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  static std::vector<char> ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  }

  void WriteAll(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Checks the invariants a successfully loaded database must satisfy.
  static void ExpectStructurallyValid(const TransactionDatabase& db) {
    for (std::size_t t = 0; t < db.size(); ++t) {
      ItemSpan tx = db.Transaction(t);
      for (std::size_t i = 1; i < tx.size(); ++i) {
        ASSERT_LT(tx[i - 1], tx[i]);
      }
      for (Item x : tx) ASSERT_LT(x, db.NumItems());
    }
  }

  std::filesystem::path dir_;
};

TEST_F(IoFuzzTest, SingleByteCorruptionNeverCrashes) {
  TransactionDatabase db = testing::RandomDb(80, 30, 8, 101);
  ASSERT_TRUE(WriteBinary(db, Path("base.bin")).ok());
  const std::vector<char> base = ReadAll(Path("base.bin"));
  ASSERT_FALSE(base.empty());

  Prng rng(202);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<char> corrupted = base;
    const std::size_t pos = rng.NextBounded(corrupted.size());
    corrupted[pos] = static_cast<char>(rng.NextU64());
    WriteAll(Path("corrupt.bin"), corrupted);
    auto loaded = ReadBinary(Path("corrupt.bin"));
    if (loaded.ok()) {
      ExpectStructurallyValid(loaded.value());
    } else {
      EXPECT_FALSE(loaded.status().message().empty());
    }
  }
}

TEST_F(IoFuzzTest, TruncationAtEveryGranularityFails) {
  TransactionDatabase db = testing::RandomDb(40, 20, 6, 103);
  ASSERT_TRUE(WriteBinary(db, Path("base.bin")).ok());
  const std::vector<char> base = ReadAll(Path("base.bin"));
  for (std::size_t keep : {std::size_t{0}, std::size_t{7}, std::size_t{8},
                           std::size_t{16}, std::size_t{24},
                           base.size() / 2, base.size() - 1}) {
    std::vector<char> cut(base.begin(),
                          base.begin() + static_cast<long>(keep));
    WriteAll(Path("cut.bin"), cut);
    auto loaded = ReadBinary(Path("cut.bin"));
    EXPECT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
  }
}

TEST_F(IoFuzzTest, RandomGarbageFails) {
  Prng rng(404);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<char> garbage(8 + rng.NextBounded(512));
    for (char& c : garbage) c = static_cast<char>(rng.NextU64());
    WriteAll(Path("garbage.bin"), garbage);
    auto loaded = ReadBinary(Path("garbage.bin"));
    // Random 8-byte magic collision probability is negligible.
    EXPECT_FALSE(loaded.ok());
  }
}

TEST_F(IoFuzzTest, TextReaderSurvivesBinaryGarbage) {
  Prng rng(505);
  std::vector<char> garbage(256);
  for (char& c : garbage) {
    c = static_cast<char>(rng.NextU64());
    if (c == '\0') c = 'x';
  }
  WriteAll(Path("garbage.txt"), garbage);
  auto loaded = ReadText(Path("garbage.txt"));
  // Either a clean parse error or a structurally valid database (lines of
  // digit runs may parse).
  if (loaded.ok()) {
    ExpectStructurallyValid(loaded.value());
  }
}

}  // namespace
}  // namespace pam
