#include "pam/tdb/database.h"

#include <gtest/gtest.h>

#include "testing/random_db.h"

namespace pam {
namespace {

TEST(DatabaseTest, EmptyDatabase) {
  TransactionDatabase db;
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.TotalItems(), 0u);
  EXPECT_EQ(db.NumItems(), 0u);
  EXPECT_DOUBLE_EQ(db.AverageLength(), 0.0);
}

TEST(DatabaseTest, AddSortsAndDeduplicates) {
  TransactionDatabase db;
  db.Add({5, 1, 3, 1, 5});
  ASSERT_EQ(db.size(), 1u);
  ItemSpan tx = db.Transaction(0);
  ASSERT_EQ(tx.size(), 3u);
  EXPECT_EQ(tx[0], 1u);
  EXPECT_EQ(tx[1], 3u);
  EXPECT_EQ(tx[2], 5u);
}

TEST(DatabaseTest, NumItemsTracksLargestId) {
  TransactionDatabase db;
  db.Add({2});
  EXPECT_EQ(db.NumItems(), 3u);
  db.Add({7, 1});
  EXPECT_EQ(db.NumItems(), 8u);
  db.Add({0});
  EXPECT_EQ(db.NumItems(), 8u);
}

TEST(DatabaseTest, AverageLength) {
  TransactionDatabase db;
  db.Add({1, 2});
  db.Add({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(db.AverageLength(), 3.0);
}

TEST(DatabaseTest, SupermarketSupportCounts) {
  // Table I of the paper: sigma(Diaper, Milk) = 3 and
  // sigma(Diaper, Milk, Beer) = 2.
  TransactionDatabase db = testing::SupermarketDb();
  using testing::kBeer;
  using testing::kDiaper;
  using testing::kMilk;
  auto support = [&db](std::vector<Item> set) {
    std::sort(set.begin(), set.end());
    Count c = 0;
    for (std::size_t t = 0; t < db.size(); ++t) {
      if (IsSortedSubset(ItemSpan(set.data(), set.size()),
                         db.Transaction(t))) {
        ++c;
      }
    }
    return c;
  };
  EXPECT_EQ(support({kDiaper, kMilk}), 3u);
  EXPECT_EQ(support({kDiaper, kMilk, kBeer}), 2u);
}

TEST(DatabaseTest, RankSliceCoversAllWithoutOverlap) {
  TransactionDatabase db = testing::RandomDb(103, 20, 6, 1);
  for (int p : {1, 2, 3, 7, 16, 103, 200}) {
    std::size_t covered = 0;
    std::size_t prev_end = 0;
    for (int r = 0; r < p; ++r) {
      auto s = db.RankSlice(r, p);
      EXPECT_EQ(s.begin, prev_end);
      prev_end = s.end;
      covered += s.size();
    }
    EXPECT_EQ(prev_end, db.size()) << "p=" << p;
    EXPECT_EQ(covered, db.size()) << "p=" << p;
  }
}

TEST(DatabaseTest, RankSliceBalanced) {
  TransactionDatabase db = testing::RandomDb(100, 20, 6, 2);
  for (int p : {3, 7, 9}) {
    std::size_t min_size = db.size();
    std::size_t max_size = 0;
    for (int r = 0; r < p; ++r) {
      auto s = db.RankSlice(r, p);
      min_size = std::min(min_size, s.size());
      max_size = std::max(max_size, s.size());
    }
    EXPECT_LE(max_size - min_size, 1u) << "p=" << p;
  }
}

TEST(DatabaseTest, WireBytesCountsItemsAndLengths) {
  TransactionDatabase db;
  db.Add({1, 2, 3});
  db.Add({4});
  // (3 items + 1 length) + (1 item + 1 length) = 6 words.
  EXPECT_EQ(db.WireBytes({0, 2}), 6 * sizeof(std::uint32_t));
  EXPECT_EQ(db.WireBytes({1, 2}), 2 * sizeof(std::uint32_t));
}

TEST(DatabaseTest, AddSortedPreservesInput) {
  TransactionDatabase db;
  std::vector<Item> items = {2, 4, 9};
  db.AddSorted(ItemSpan(items.data(), items.size()));
  ItemSpan tx = db.Transaction(0);
  EXPECT_EQ(std::vector<Item>(tx.begin(), tx.end()), items);
}

}  // namespace
}  // namespace pam
