#include "pam/tdb/db_stats.h"

#include <gtest/gtest.h>

#include "pam/datagen/quest_gen.h"
#include "testing/random_db.h"

namespace pam {
namespace {

TEST(DbStatsTest, EmptyDatabase) {
  DbStats stats = ComputeDbStats(TransactionDatabase{});
  EXPECT_EQ(stats.num_transactions, 0u);
  EXPECT_EQ(stats.total_item_occurrences, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_transaction_len, 0.0);
  EXPECT_DOUBLE_EQ(stats.item_gini, 0.0);
}

TEST(DbStatsTest, BasicCounts) {
  TransactionDatabase db;
  db.Add({0, 1, 2});
  db.Add({1});
  db.Add({1, 2});
  DbStats stats = ComputeDbStats(db);
  EXPECT_EQ(stats.num_transactions, 3u);
  EXPECT_EQ(stats.num_items, 3u);
  EXPECT_EQ(stats.distinct_items, 3u);
  EXPECT_EQ(stats.total_item_occurrences, 6u);
  EXPECT_DOUBLE_EQ(stats.avg_transaction_len, 2.0);
  EXPECT_EQ(stats.min_transaction_len, 1u);
  EXPECT_EQ(stats.max_transaction_len, 3u);
  ASSERT_EQ(stats.item_frequencies.size(), 3u);
  EXPECT_EQ(stats.item_frequencies[0], 1u);
  EXPECT_EQ(stats.item_frequencies[1], 3u);
  EXPECT_EQ(stats.item_frequencies[2], 2u);
}

TEST(DbStatsTest, UniformFrequenciesHaveZeroGini) {
  TransactionDatabase db;
  for (int t = 0; t < 10; ++t) db.Add({0, 1, 2, 3});
  DbStats stats = ComputeDbStats(db);
  EXPECT_NEAR(stats.item_gini, 0.0, 1e-9);
  EXPECT_EQ(stats.items_covering_half, 2u);
}

TEST(DbStatsTest, SkewedFrequenciesHaveHighGini) {
  TransactionDatabase db;
  for (int t = 0; t < 100; ++t) db.Add({0});
  db.Add({1});
  db.Add({2});
  db.Add({3});
  DbStats stats = ComputeDbStats(db);
  EXPECT_GT(stats.item_gini, 0.7);
  EXPECT_EQ(stats.items_covering_half, 1u);
}

TEST(DbStatsTest, DistinctVsAlphabet) {
  TransactionDatabase db;
  db.Add({0, 9});  // items 1..8 never occur
  DbStats stats = ComputeDbStats(db);
  EXPECT_EQ(stats.num_items, 10u);
  EXPECT_EQ(stats.distinct_items, 2u);
}

TEST(DbStatsTest, QuestDataIsSkewed) {
  // Pattern-based generation concentrates mass on pattern items: gini
  // must be clearly above a uniform-random baseline.
  QuestConfig q;
  q.num_transactions = 2000;
  q.num_items = 500;
  q.num_patterns = 50;
  q.seed = 3;
  DbStats quest = ComputeDbStats(GenerateQuest(q));
  DbStats uniform =
      ComputeDbStats(testing::RandomDb(2000, 500, 15, 3));
  EXPECT_GT(quest.item_gini, uniform.item_gini + 0.2);
}

TEST(DbStatsTest, ToStringMentionsKeyNumbers) {
  TransactionDatabase db;
  db.Add({0, 1});
  const std::string s = ComputeDbStats(db).ToString();
  EXPECT_NE(s.find("transactions: 1"), std::string::npos);
  EXPECT_NE(s.find("occurrences: 2"), std::string::npos);
}

}  // namespace
}  // namespace pam
