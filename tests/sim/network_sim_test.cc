#include "pam/sim/network_sim.h"

#include <gtest/gtest.h>

namespace pam {
namespace {

constexpr double kBw = 100.0;  // bytes per second
constexpr double kLat = 0.0;

TEST(NetworkSimTest, SingleMessageTakesServiceTime) {
  NetworkSimulator sim(2, Topology::kFullyConnectedOnePort, kBw, kLat);
  SimResult r = sim.Run({{0, 1, 100}});
  // 100 bytes at 100 B/s over out-port then in-port (store-and-forward):
  // two hops of 1s each.
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
}

TEST(NetworkSimTest, LatencyChargedPerHop) {
  NetworkSimulator sim(2, Topology::kFullyConnectedOnePort, kBw, 0.5);
  SimResult r = sim.Run({{0, 1, 100}});
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);  // (1 + 0.5) * 2 hops
}

TEST(NetworkSimTest, SelfAndEmptyMessagesAreFree) {
  NetworkSimulator sim(4, Topology::kRing, kBw, kLat);
  SimResult r = sim.Run({{2, 2, 1000}, {0, 1, 0}});
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
}

TEST(NetworkSimTest, OnePortSerializesASendersMessages) {
  NetworkSimulator sim(3, Topology::kFullyConnectedOnePort, kBw, kLat);
  // Node 0 sends to 1 and 2: the out-port serializes them.
  SimResult r = sim.Run({{0, 1, 100}, {0, 2, 100}});
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);  // second send starts at t=1
}

TEST(NetworkSimTest, DisjointPairsRunInParallel) {
  NetworkSimulator sim(4, Topology::kFullyConnectedOnePort, kBw, kLat);
  SimResult r = sim.Run({{0, 1, 100}, {2, 3, 100}});
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
}

TEST(NetworkSimTest, RingRouteTakesShorterDirection) {
  NetworkSimulator sim(8, Topology::kRing, kBw, kLat);
  EXPECT_EQ(sim.Route(0, 2).size(), 2u);
  EXPECT_EQ(sim.Route(0, 7).size(), 1u);  // backward wrap
  EXPECT_EQ(sim.Route(0, 4).size(), 4u);
  EXPECT_TRUE(sim.Route(3, 3).empty());
}

TEST(NetworkSimTest, RingShiftHasNoContention) {
  // Neighbor shifts use disjoint links: P simultaneous sends finish in
  // one service time per round.
  const int p = 8;
  NetworkSimulator sim(p, Topology::kRing, kBw, kLat);
  const int rounds = 5;
  SimResult r = sim.Run(NetworkSimulator::RingShift(p, 100, rounds));
  EXPECT_DOUBLE_EQ(r.makespan, rounds * 1.0);
  const double factor = ContentionFactor(
      sim, NetworkSimulator::RingShift(p, 100, rounds), kBw);
  EXPECT_NEAR(factor, 1.0, 1e-9);
}

TEST(NetworkSimTest, TorusShapeFactorsCubically) {
  NetworkSimulator sim64(64, Topology::kTorus3D, kBw, kLat);
  EXPECT_EQ(sim64.torus_shape()[0] * sim64.torus_shape()[1] *
                sim64.torus_shape()[2],
            64);
  EXPECT_EQ(sim64.torus_shape()[0], 4);
  EXPECT_EQ(sim64.torus_shape()[1], 4);
  EXPECT_EQ(sim64.torus_shape()[2], 4);

  NetworkSimulator sim12(12, Topology::kTorus3D, kBw, kLat);
  EXPECT_EQ(sim12.torus_shape()[0] * sim12.torus_shape()[1] *
                sim12.torus_shape()[2],
            12);
}

TEST(NetworkSimTest, TorusRouteLengthIsManhattanWithWrap) {
  NetworkSimulator sim(27, Topology::kTorus3D, kBw, kLat);  // 3x3x3
  // (0,0,0) -> (2,2,2): one wrap hop per dimension.
  EXPECT_EQ(sim.Route(0, 26).size(), 3u);
  // (0,0,0) -> (1,1,0): two hops.
  EXPECT_EQ(sim.Route(0, 4).size(), 2u);
}

TEST(NetworkSimTest, AllToAllPatternHasAllPairs) {
  auto msgs = NetworkSimulator::AllToAll(5, 10);
  EXPECT_EQ(msgs.size(), 20u);
  for (const SimMessage& m : msgs) {
    EXPECT_NE(m.src, m.dst);
    EXPECT_EQ(m.bytes, 10u);
  }
}

TEST(NetworkSimTest, AllToAllContentionExceedsRingOnTorus) {
  // The paper's core network claim: on a realistic sparse interconnect,
  // DD's unstructured all-to-all pays contention that the ring shift
  // avoids, and the gap grows with P.
  for (int p : {8, 27, 64}) {
    NetworkSimulator torus(p, Topology::kTorus3D, kBw, kLat);
    const std::uint64_t per_peer = 100;
    const double all_to_all = ContentionFactor(
        torus, NetworkSimulator::AllToAll(p, per_peer), kBw);
    // Ring shifts moving the same total volume: P-1 rounds.
    const double ring = ContentionFactor(
        torus, NetworkSimulator::RingShift(p, per_peer, p - 1), kBw);
    EXPECT_GT(all_to_all, ring * 1.3) << "p=" << p;
    EXPECT_LT(ring, 2.5) << "p=" << p;
  }
}

TEST(NetworkSimTest, ContentionGrowsWithP) {
  // Compare shapes from the same family (4x2x2, 4x4x4, 5x5x5): absolute
  // contention depends on the torus shape, so mixing degenerate and
  // cubic shapes (e.g. 2x2x2 vs 3x3x3) is not monotone.
  double prev = 0.0;
  for (int p : {16, 64, 125}) {
    NetworkSimulator torus(p, Topology::kTorus3D, kBw, kLat);
    const double factor = ContentionFactor(
        torus, NetworkSimulator::AllToAll(p, 100), kBw);
    EXPECT_GT(factor, prev) << "p=" << p;
    prev = factor;
  }
}

TEST(NetworkSimTest, UtilizationBounded) {
  NetworkSimulator sim(16, Topology::kTorus3D, kBw, kLat);
  SimResult r = sim.Run(NetworkSimulator::AllToAll(16, 50));
  EXPECT_GT(r.link_utilization, 0.0);
  EXPECT_LE(r.link_utilization, 1.0 + 1e-9);
  EXPECT_LE(r.max_link_busy, r.makespan + 1e-9);
}

}  // namespace
}  // namespace pam
