// Golden regression tests: a fixed-seed workload must produce exactly
// these frequent-itemset counts per pass, for the serial miner and for
// every parallel formulation. Any change to the generator, apriori_gen,
// the hash tree, or the parallel protocols that alters behavior shows up
// here immediately.

#include <gtest/gtest.h>

#include "pam/api/session.h"
#include "pam/core/serial_apriori.h"
#include "pam/datagen/quest_gen.h"

namespace pam {
namespace {

TransactionDatabase GoldenDb() {
  QuestConfig q;
  q.num_transactions = 1000;
  q.num_items = 100;
  q.avg_transaction_len = 8;
  q.avg_pattern_len = 3;
  q.num_patterns = 40;
  q.correlation = 0.5;
  q.corruption_mean = 0.5;
  q.seed = 20260706;
  return GenerateQuest(q);
}

// Captured once from a verified run (all formulations agree with the
// serial miner and the serial miner agrees with brute force on sibling
// workloads). If an intentional change alters these, re-capture.
struct Golden {
  std::size_t num_transactions;
  std::size_t total_items;
  std::vector<std::size_t> frequent_per_level;
};

Golden CaptureActual() {
  TransactionDatabase db = GoldenDb();
  AprioriConfig cfg;
  cfg.minsup_fraction = 0.02;
  SerialResult result = MineSerial(db, cfg);
  Golden g;
  g.num_transactions = db.size();
  g.total_items = db.TotalItems();
  for (const auto& level : result.frequent.levels) {
    g.frequent_per_level.push_back(level.size());
  }
  return g;
}

TEST(GoldenTest, WorkloadIsStable) {
  const Golden actual = CaptureActual();
  EXPECT_EQ(actual.num_transactions, 1000u);
  // The generator is deterministic: any change to Prng or the pattern
  // pool construction changes this count.
  EXPECT_EQ(actual.total_items, 7194u);
}

TEST(GoldenTest, SerialFrequentCountsAreStable) {
  const Golden actual = CaptureActual();
  const std::vector<std::size_t> expected = {45, 320, 561, 364, 108, 11};
  EXPECT_EQ(actual.frequent_per_level, expected);
}

TEST(GoldenTest, EveryFormulationReproducesTheGoldenCounts) {
  TransactionDatabase db = GoldenDb();
  ParallelConfig cfg;
  cfg.apriori.minsup_fraction = 0.02;
  const Golden golden = CaptureActual();
  for (Algorithm alg : {Algorithm::kCD, Algorithm::kDD, Algorithm::kDDComm,
                        Algorithm::kIDD, Algorithm::kHD, Algorithm::kHPA}) {
    MiningRequest request;
    request.algorithm = FromParallelAlgorithm(alg);
    request.num_ranks = 3;
    request.config = cfg;
    MiningSession session;
    MiningReport result = session.Run(request, db);
    std::vector<std::size_t> counts;
    for (const auto& level : result.frequent.levels) {
      counts.push_back(level.size());
    }
    EXPECT_EQ(counts, golden.frequent_per_level) << AlgorithmName(alg);
  }
}

}  // namespace
}  // namespace pam
