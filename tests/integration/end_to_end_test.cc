#include <filesystem>
#include <map>

#include <gtest/gtest.h>

#include "pam/api/session.h"
#include "pam/core/rulegen.h"
#include "pam/core/serial_apriori.h"
#include "pam/datagen/quest_gen.h"
#include "pam/model/cost_model.h"
#include "pam/tdb/io.h"
#include "testing/test_support.h"

namespace pam {
namespace {

// Full pipeline: generate -> persist -> reload -> mine in parallel ->
// generate rules -> estimate machine time. Exercises every library layer
// the way the examples and benches do.
TEST(EndToEndTest, GenerateStoreMineRules) {
  QuestConfig q;
  q.num_transactions = 1000;
  q.num_items = 100;
  q.avg_transaction_len = 8;
  q.avg_pattern_len = 3;
  q.num_patterns = 50;
  q.seed = 21;
  TransactionDatabase generated = GenerateQuest(q);

  const std::string path =
      (std::filesystem::temp_directory_path() / "pam_e2e.bin").string();
  ASSERT_TRUE(WriteBinary(generated, path).ok());
  auto loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok());
  std::filesystem::remove(path);
  const TransactionDatabase& db = loaded.value();

  ParallelConfig cfg;
  cfg.apriori.minsup_fraction = 0.015;
  cfg.hd_threshold_m = 200;
  MiningReport result = testing::SessionMine(Algorithm::kHD, db, 6, cfg);
  ASSERT_GT(result.frequent.TotalCount(), 0u);
  testing::ExpectMatchesSerial(
      result, testing::SerialReference(db, cfg.apriori), "HD P=6 e2e");

  // Rules from the parallel-mined frequent sets.
  std::vector<Rule> rules = GenerateRules(result.frequent, db.size(), 0.5);
  for (const Rule& r : rules) {
    EXPECT_GE(r.confidence, 0.5);
    EXPECT_GT(r.support, 0.0);
    // The rule's joint itemset must itself be frequent.
    std::vector<Item> joint(r.antecedent);
    joint.insert(joint.end(), r.consequent.begin(), r.consequent.end());
    std::sort(joint.begin(), joint.end());
    Count c = 0;
    EXPECT_TRUE(
        result.frequent.Lookup(ItemSpan(joint.data(), joint.size()), &c));
    EXPECT_EQ(c, r.joint_count);
  }

  // Machine-model estimate is finite and positive.
  CostModel model(MachineModel::CrayT3E());
  const double seconds = model.RunTime(Algorithm::kHD, result.metrics);
  EXPECT_GT(seconds, 0.0);
  EXPECT_LT(seconds, 1e6);
}

// The Figure-10 relationship in miniature: on a fixed workload, the cost
// model must rank DD above (slower than) DD+comm above IDD, and HD at or
// below CD, mirroring the paper's scaleup ordering.
TEST(EndToEndTest, ModeledResponseTimesFollowPaperOrdering) {
  QuestConfig q;
  q.num_transactions = 1500;
  q.num_items = 150;
  q.avg_transaction_len = 10;
  q.avg_pattern_len = 4;
  q.num_patterns = 80;
  q.seed = 5;
  TransactionDatabase db = GenerateQuest(q);

  ParallelConfig cfg;
  cfg.apriori.minsup_fraction = 0.01;
  cfg.page_bytes = 2048;
  cfg.hd_threshold_m = 200;
  const int p = 8;

  CostModel model(MachineModel::CrayT3E());
  std::map<Algorithm, double> seconds;
  for (Algorithm alg : {Algorithm::kCD, Algorithm::kDD, Algorithm::kDDComm,
                        Algorithm::kIDD, Algorithm::kHD}) {
    MiningReport r = testing::SessionMine(alg, db, p, cfg);
    seconds[alg] = model.RunTime(alg, r.metrics);
  }
  EXPECT_GT(seconds[Algorithm::kDD], seconds[Algorithm::kDDComm]);
  EXPECT_GT(seconds[Algorithm::kDDComm], seconds[Algorithm::kIDD]);
  EXPECT_LE(seconds[Algorithm::kHD], seconds[Algorithm::kCD] * 1.10);
}

// Scaleup property (Figure 10's x-axis): with transactions per rank fixed,
// CD and HD response times stay roughly flat as P grows.
TEST(EndToEndTest, CdAndHdScaleupRoughlyFlat) {
  CostModel model(MachineModel::CrayT3E());
  std::map<int, std::map<Algorithm, double>> t;
  for (int p : {2, 8}) {
    QuestConfig q;
    q.num_transactions = static_cast<std::size_t>(300) * p;
    q.num_items = 100;
    q.avg_transaction_len = 8;
    q.avg_pattern_len = 3;
    q.num_patterns = 50;
    q.seed = 77;  // same pattern pool statistics at both scales
    TransactionDatabase db = GenerateQuest(q);
    ParallelConfig cfg;
    cfg.apriori.minsup_fraction = 0.02;
    cfg.hd_threshold_m = 100;
    for (Algorithm alg : {Algorithm::kCD, Algorithm::kHD}) {
      MiningReport r = testing::SessionMine(alg, db, p, cfg);
      t[p][alg] = model.RunTime(alg, r.metrics);
    }
  }
  // Allow generous tolerance: candidates differ a bit between scales.
  EXPECT_LT(t[8][Algorithm::kCD], t[2][Algorithm::kCD] * 3.0);
  EXPECT_LT(t[8][Algorithm::kHD], t[2][Algorithm::kHD] * 3.0);
}

}  // namespace
}  // namespace pam
