// Trace-writer schema tests: the span timeline of a session run must nest
// correctly per track, its span counts must agree with the RunMetrics
// matrix, the chrome-trace document must be well-formed JSON, and the
// whole apparatus must cost nothing when no sink is attached.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pam/api/session.h"
#include "pam/mp/payload.h"
#include "pam/obs/chrome_trace.h"
#include "pam/obs/json_metrics.h"
#include "pam/obs/trace.h"
#include "testing/test_support.h"

namespace pam {
namespace {

// Minimal recursive-descent JSON syntax checker — enough of RFC 8259 to
// certify that the Trace Event Format documents the writers emit would be
// accepted by chrome://tracing's (strict) JSON loader.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return p_ == end_;
  }

 private:
  void SkipWs() {
    while (p_ < end_ &&
           (*p_ == ' ' || *p_ == '\n' || *p_ == '\r' || *p_ == '\t')) {
      ++p_;
    }
  }

  bool Literal(const char* lit) {
    const char* q = p_;
    while (*lit != '\0') {
      if (q == end_ || *q != *lit) return false;
      ++q;
      ++lit;
    }
    p_ = q;
    return true;
  }

  bool String() {
    if (p_ == end_ || *p_ != '"') return false;
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
      }
      ++p_;
    }
    if (p_ == end_) return false;
    ++p_;  // closing quote
    return true;
  }

  bool Number() {
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') ++p_;
    while (p_ < end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    if (p_ == start || (*start == '-' && p_ == start + 1)) return false;
    if (p_ < end_ && *p_ == '.') {
      ++p_;
      if (p_ == end_ || *p_ < '0' || *p_ > '9') return false;
      while (p_ < end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    }
    if (p_ < end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ < end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ == end_ || *p_ < '0' || *p_ > '9') return false;
      while (p_ < end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    }
    return true;
  }

  bool Object() {
    ++p_;  // '{'
    SkipWs();
    if (p_ < end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (p_ < end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      break;
    }
    if (p_ == end_ || *p_ != '}') return false;
    ++p_;
    return true;
  }

  bool Array() {
    ++p_;  // '['
    SkipWs();
    if (p_ < end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (p_ < end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      break;
    }
    if (p_ == end_ || *p_ != ']') return false;
    ++p_;
    return true;
  }

  bool Value() {
    if (p_ == end_) return false;
    switch (*p_) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  const char* p_;
  const char* end_;
};

std::size_t CountOccurrences(const std::string& text,
                             const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// Runs one algorithm through a session with a chrome-trace sink attached;
// the report carries the structured timeline the assertions inspect.
MiningReport TracedRun(MiningAlgorithm algorithm,
                       const TransactionDatabase& db, int num_ranks,
                       obs::ChromeTraceWriter* writer) {
  MiningRequest request;
  request.algorithm = algorithm;
  request.num_ranks = num_ranks;
  request.config.apriori.minsup_fraction = 0.02;
  MiningSession session;
  session.AddTraceSink(writer);
  return session.Run(request, db);
}

std::size_t CountKind(const obs::Timeline& timeline, obs::SpanKind kind) {
  return static_cast<std::size_t>(
      std::count_if(timeline.spans.begin(), timeline.spans.end(),
                    [kind](const obs::SpanRecord& s) {
                      return s.kind == kind && !s.instant;
                    }));
}

// Within one track (rank), interval spans must strictly nest: any two
// either do not overlap or one contains the other. A partial overlap
// would render as broken stacks in chrome://tracing and would mean a
// ScopedSpan outlived its parent scope.
void ExpectTrackSpansNest(const obs::Timeline& timeline, int rank) {
  std::vector<obs::SpanRecord> track;
  for (const obs::SpanRecord& s : timeline.spans) {
    if (s.rank == rank && !s.instant) track.push_back(s);
  }
  for (std::size_t i = 0; i < track.size(); ++i) {
    for (std::size_t j = i + 1; j < track.size(); ++j) {
      const obs::SpanRecord& a = track[i];
      const obs::SpanRecord& b = track[j];
      const double a_end = a.ts_us + a.dur_us;
      const double b_end = b.ts_us + b.dur_us;
      const bool disjoint = a_end <= b.ts_us || b_end <= a.ts_us;
      const bool a_in_b = b.ts_us <= a.ts_us && a_end <= b_end;
      const bool b_in_a = a.ts_us <= b.ts_us && b_end <= a_end;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << "rank " << rank << ": " << obs::SpanKindName(a.kind) << " ["
          << a.ts_us << ", " << a_end << ") partially overlaps "
          << obs::SpanKindName(b.kind) << " [" << b.ts_us << ", " << b_end
          << ")";
    }
  }
}

TEST(TraceTest, ChromeTraceIsValidJsonWithOneEventPerSpan) {
  const TransactionDatabase db = testing::SmallQuestDb();
  obs::ChromeTraceWriter writer;
  MiningReport report = TracedRun(MiningAlgorithm::kCD, db, 4, &writer);
  ASSERT_GT(report.frequent.TotalCount(), 0u);
  ASSERT_FALSE(report.timeline.empty());

  const std::string json = writer.ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);

  // One "X" event per interval span, one "i" per instant event, and a
  // thread_name metadata record for each of the 4 rank tracks.
  std::size_t instants = 0;
  for (const obs::SpanRecord& s : report.timeline.spans) {
    if (s.instant) ++instants;
  }
  EXPECT_EQ(writer.size(), report.timeline.size());
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""),
            report.timeline.size() - instants);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"i\""), instants);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"thread_name\""), 4u);
}

TEST(TraceTest, MetricsJsonIsValid) {
  const TransactionDatabase db = testing::SmallQuestDb();
  MiningRequest request;
  request.algorithm = MiningAlgorithm::kHD;
  request.num_ranks = 4;
  request.config.apriori.minsup_fraction = 0.02;
  obs::JsonMetricsWriter writer;
  MiningSession session;
  session.AddMetricsSink(&writer);
  MiningReport report = session.Run(request, db);
  ASSERT_GT(report.metrics.num_passes(), 0);
  EXPECT_TRUE(JsonValidator(writer.ToJson()).Valid())
      << writer.ToJson().substr(0, 400);
}

TEST(TraceTest, SpanCountsMatchRunMetrics) {
  const TransactionDatabase db = testing::SmallQuestDb();
  const struct {
    MiningAlgorithm algorithm;
    int ranks;
  } cases[] = {
      {MiningAlgorithm::kSerial, 1},
      {MiningAlgorithm::kCD, 4},
      {MiningAlgorithm::kHD, 4},
  };
  for (const auto& c : cases) {
    obs::ChromeTraceWriter writer;
    MiningReport report = TracedRun(c.algorithm, db, c.ranks, &writer);
    SCOPED_TRACE(MiningAlgorithmName(c.algorithm));
    ASSERT_GE(report.metrics.num_passes(), 3);

    // Exactly one run span, and one pass span per PassMetrics row: a pass
    // that records no row (the empty-candidate break) emits no span.
    EXPECT_EQ(CountKind(report.timeline, obs::SpanKind::kRun), 1u);
    EXPECT_EQ(CountKind(report.timeline, obs::SpanKind::kPass),
              static_cast<std::size_t>(report.metrics.num_passes()) *
                  static_cast<std::size_t>(c.ranks));
    EXPECT_GT(CountKind(report.timeline, obs::SpanKind::kSubsetCount), 0u);

    for (int rank = 0; rank < c.ranks; ++rank) {
      ExpectTrackSpansNest(report.timeline, rank);
    }
  }
}

TEST(TraceTest, PassSpansContainTheirRingRounds) {
  const TransactionDatabase db = testing::SmallQuestDb();
  obs::ChromeTraceWriter writer;
  MiningReport report = TracedRun(MiningAlgorithm::kIDD, db, 4, &writer);

  std::vector<obs::SpanRecord> passes;
  std::vector<obs::SpanRecord> rounds;
  for (const obs::SpanRecord& s : report.timeline.spans) {
    if (s.instant) continue;
    if (s.kind == obs::SpanKind::kPass) passes.push_back(s);
    if (s.kind == obs::SpanKind::kRingRound) rounds.push_back(s);
  }
  // IDD's counting passes pipeline pages around the whole ring: P-1
  // shifts per counting pass on every rank.
  ASSERT_GE(rounds.size(), 3u);

  for (const obs::SpanRecord& round : rounds) {
    const bool contained = std::any_of(
        passes.begin(), passes.end(), [&round](const obs::SpanRecord& pass) {
          return pass.rank == round.rank && pass.pass_k == round.pass_k &&
                 pass.ts_us <= round.ts_us &&
                 round.ts_us + round.dur_us <= pass.ts_us + pass.dur_us;
        });
    EXPECT_TRUE(contained)
        << "ring round " << round.index << " (rank " << round.rank
        << ", pass " << round.pass_k
        << ") lies outside every pass span of its track";
  }
}

// The disabled path must not touch the span machinery at all: no span
// emission anywhere, and on the serial counting path no transport-buffer
// copies either (the observability layer shares no state with the
// BufferPool, so a delta here would mean spans sneaked an allocation into
// the kernel).
TEST(TraceTest, NullSinkRunsAreZeroOverhead) {
  const TransactionDatabase db = testing::SmallQuestDb();
  ParallelConfig cfg;
  cfg.apriori.minsup_fraction = 0.02;

  const std::uint64_t spans_before = obs::SpansEmittedTotal();
  const std::uint64_t copies_before = BufferPool::CopyCount();
  SerialResult serial = MineSerial(db, cfg.apriori);
  ASSERT_GT(serial.frequent.TotalCount(), 0u);
  EXPECT_EQ(BufferPool::CopyCount(), copies_before);
  MiningReport parallel = testing::SessionMine(Algorithm::kCD, db, 4, cfg);
  ASSERT_GT(parallel.frequent.TotalCount(), 0u);
  EXPECT_EQ(obs::SpansEmittedTotal(), spans_before);
  EXPECT_TRUE(parallel.timeline.empty());
}

}  // namespace
}  // namespace pam
