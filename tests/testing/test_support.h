#ifndef PAM_TESTS_TESTING_TEST_SUPPORT_H_
#define PAM_TESTS_TESTING_TEST_SUPPORT_H_

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pam/api/session.h"
#include "pam/core/serial_apriori.h"
#include "pam/datagen/quest_gen.h"
#include "pam/parallel/driver.h"
#include "pam/tdb/database.h"
#include "testing/random_db.h"

namespace pam::testing {

/// Flattens the per-level frequent-itemset representation into one ordered
/// map so two mining results can be compared with a single EXPECT_EQ and a
/// mismatch prints the offending itemsets.
inline std::map<std::vector<Item>, Count> Flatten(const FrequentItemsets& fi) {
  std::map<std::vector<Item>, Count> out;
  for (const auto& level : fi.levels) {
    for (std::size_t i = 0; i < level.size(); ++i) {
      ItemSpan s = level.Get(i);
      out[std::vector<Item>(s.begin(), s.end())] = level.count(i);
    }
  }
  return out;
}

/// The standard small Quest workload used by the equivalence tests:
/// 600 transactions over 80 items, deep enough that every parallel
/// formulation runs at least three passes at minsup 2%.
inline QuestConfig SmallQuestConfig() {
  QuestConfig q;
  q.num_transactions = 600;
  q.num_items = 80;
  q.avg_transaction_len = 8;
  q.avg_pattern_len = 3;
  q.num_patterns = 40;
  q.seed = 7;
  return q;
}

inline TransactionDatabase SmallQuestDb() {
  return GenerateQuest(SmallQuestConfig());
}

/// The small Quest workload re-seeded, so sweep-style tests can vary the
/// candidate population per seed while keeping the shape that guarantees
/// three-plus passes at minsup 2%.
inline TransactionDatabase SeededQuestDb(std::uint64_t seed) {
  QuestConfig q = SmallQuestConfig();
  q.seed = seed;
  return GenerateQuest(q);
}

/// A smaller Quest workload for the chaos matrix, where each cell pays the
/// fault-injection overhead (retransmits, deadline scans) on every message:
/// 200 transactions over 40 items still produces 3+ passes at minsup 3%.
inline TransactionDatabase TinyQuestDb() {
  QuestConfig q;
  q.num_transactions = 200;
  q.num_items = 40;
  q.avg_transaction_len = 8;
  q.avg_pattern_len = 3;
  q.num_patterns = 20;
  q.seed = 13;
  return GenerateQuest(q);
}

/// Serial Apriori reference run, flattened for comparison.
inline std::map<std::vector<Item>, Count> SerialReference(
    const TransactionDatabase& db, const AprioriConfig& cfg) {
  return Flatten(MineSerial(db, cfg).frequent);
}

/// Asserts a mining result (ParallelResult or MiningReport — anything with
/// a `frequent` member) matches the serial reference byte-for-byte (same
/// itemsets, same counts). `label` names the configuration under test in
/// failure output.
template <typename MiningResult>
void ExpectMatchesSerial(
    const MiningResult& mined,
    const std::map<std::vector<Item>, Count>& serial_flat,
    const std::string& label) {
  EXPECT_EQ(Flatten(mined.frequent), serial_flat) << label;
}

/// Runs one parallel formulation through the public MiningSession facade
/// with no observers attached — the integration tests exercise the same
/// entry point the tools and benches use.
inline MiningReport SessionMine(Algorithm algorithm,
                                const TransactionDatabase& db, int num_ranks,
                                const ParallelConfig& config) {
  MiningRequest request;
  request.algorithm = FromParallelAlgorithm(algorithm);
  request.num_ranks = num_ranks;
  request.config = config;
  MiningSession session;
  return session.Run(request, db);
}

}  // namespace pam::testing

#endif  // PAM_TESTS_TESTING_TEST_SUPPORT_H_
