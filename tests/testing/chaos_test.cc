// Chaos matrix for the fault-injecting communicator: every parallel
// formulation x every fault kind x several schedule seeds, over a small
// Quest workload. Each recovered cell must produce byte-identical frequent
// itemsets to serial Apriori — the envelope framing and retransmit
// machinery must hide the faults completely. Unrecoverable cells (drops
// with no retransmit budget) must fail with a structured CommError and
// never hang or return partial results.
//
// Every cell is reproducible from its printed name: the fault schedule is
// a pure function of (seed, src, dst, tag, seq, attempt), independent of
// thread interleaving.

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "pam/core/serial_apriori.h"
#include "pam/mp/fault.h"
#include "pam/parallel/driver.h"
#include "testing/test_support.h"

namespace pam {
namespace {

constexpr int kRanks = 4;
constexpr double kMinsup = 0.03;

// One workload and serial reference for the whole matrix (the database is
// deterministic, so sharing it across cells is sound).
const TransactionDatabase& ChaosDb() {
  static const TransactionDatabase db = testing::TinyQuestDb();
  return db;
}

const std::map<std::vector<Item>, Count>& ChaosReference() {
  static const std::map<std::vector<Item>, Count> flat = [] {
    AprioriConfig cfg;
    cfg.minsup_fraction = kMinsup;
    return testing::SerialReference(ChaosDb(), cfg);
  }();
  return flat;
}

ParallelConfig ChaosConfig() {
  ParallelConfig cfg;
  cfg.apriori.minsup_fraction = kMinsup;
  cfg.page_bytes = 256;      // many small messages: more fault opportunities
  cfg.hd_threshold_m = 50;   // force HD onto real grids
  return cfg;
}

std::string CellName(Algorithm alg, FaultKind kind, std::uint64_t seed) {
  return AlgorithmName(alg) + std::string("/") + FaultKindName(kind) +
         "/seed" + std::to_string(seed);
}

// ---------------------------------------------------------------------------
// Recovered matrix: faults at 5% per delivery attempt, retransmit budget 8.
// The probability that all nine attempts of one message fault is ~2e-12, so
// every cell deterministically completes — and must match serial exactly.
// ---------------------------------------------------------------------------

class ChaosRecovered
    : public ::testing::TestWithParam<
          std::tuple<Algorithm, FaultKind, std::uint64_t>> {};

TEST_P(ChaosRecovered, MatchesSerialExactly) {
  const auto [alg, kind, seed] = GetParam();
  ParallelConfig cfg = ChaosConfig();
  cfg.fault = FaultConfig::Uniform(kind, 0.05, seed, /*max_retries=*/8);
  cfg.fault.recv_timeout_ms = 10000;

  ParallelResult result = MineParallel(alg, ChaosDb(), kRanks, cfg);
  testing::ExpectMatchesSerial(result, ChaosReference(),
                               CellName(alg, kind, seed));
  // Counters are threaded per pass; the whole-run aggregate must be
  // consistent (retries only happen to repair injected faults).
  if (result.metrics.TotalCommRetries() > 0) {
    EXPECT_GT(result.metrics.TotalFaultsInjected(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ChaosRecovered,
    ::testing::Combine(
        ::testing::Values(Algorithm::kCD, Algorithm::kDD, Algorithm::kIDD,
                          Algorithm::kHD),
        ::testing::Values(FaultKind::kCorrupt, FaultKind::kTruncate,
                          FaultKind::kDuplicate, FaultKind::kDrop,
                          FaultKind::kReorder, FaultKind::kStall),
        ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<
        std::tuple<Algorithm, FaultKind, std::uint64_t>>& info) {
      std::string name(AlgorithmName(std::get<0>(info.param)) +
                       std::string("_") +
                       FaultKindName(std::get<1>(info.param)) + "_S" +
                       std::to_string(std::get<2>(info.param)));
      for (char& c : name) {
        if (c == '+') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Mixed storm: all six kinds at once at a high aggregate rate. The fault
// counters must show real activity end to end (injected on send, repaired
// by retries, bad envelopes detected on receive) and the result must still
// be exact.
// ---------------------------------------------------------------------------

TEST(ChaosMixed, HighFaultRateStillExactAndCountersMove) {
  for (Algorithm alg : {Algorithm::kCD, Algorithm::kDD, Algorithm::kIDD,
                        Algorithm::kHD}) {
    ParallelConfig cfg = ChaosConfig();
    cfg.fault = FaultConfig::Mixed(0.3, /*seed=*/99, /*max_retries=*/8);
    cfg.fault.recv_timeout_ms = 10000;

    ParallelResult result = MineParallel(alg, ChaosDb(), kRanks, cfg);
    testing::ExpectMatchesSerial(result, ChaosReference(),
                                 AlgorithmName(alg) + std::string(" mixed"));
    EXPECT_GT(result.metrics.TotalFaultsInjected(), 0u) << AlgorithmName(alg);
    EXPECT_GT(result.metrics.TotalCommRetries(), 0u) << AlgorithmName(alg);
    EXPECT_GT(result.metrics.TotalFaultsDetected(), 0u) << AlgorithmName(alg);
  }
}

TEST(ChaosMixed, SameSeedSameFaultSchedule) {
  // The schedule is deterministic: two identical runs inject the same
  // number of faults and retries, pass by pass.
  ParallelConfig cfg = ChaosConfig();
  cfg.fault = FaultConfig::Mixed(0.2, /*seed=*/7, /*max_retries=*/8);
  ParallelResult a = MineParallel(Algorithm::kCD, ChaosDb(), kRanks, cfg);
  ParallelResult b = MineParallel(Algorithm::kCD, ChaosDb(), kRanks, cfg);
  EXPECT_EQ(a.metrics.TotalFaultsInjected(), b.metrics.TotalFaultsInjected());
  EXPECT_EQ(a.metrics.TotalCommRetries(), b.metrics.TotalCommRetries());
  EXPECT_EQ(testing::Flatten(a.frequent), testing::Flatten(b.frequent));
}

TEST(ChaosMixed, FaultsOffInjectsNothing) {
  // The differential baseline: with the plan disabled the counters stay
  // exactly zero (no schedule consultation on the fast path).
  ParallelConfig cfg = ChaosConfig();
  ParallelResult r = MineParallel(Algorithm::kHD, ChaosDb(), kRanks, cfg);
  EXPECT_EQ(r.metrics.TotalFaultsInjected(), 0u);
  EXPECT_EQ(r.metrics.TotalCommRetries(), 0u);
  EXPECT_EQ(r.metrics.TotalFaultsDetected(), 0u);
}

// ---------------------------------------------------------------------------
// Unrecoverable matrix: heavy drops with no retransmit budget. Every cell
// must terminate with a structured CommError — typed, attributed to a rank
// and peer — rather than hanging or returning partial itemsets.
// ---------------------------------------------------------------------------

class ChaosUnrecoverable
    : public ::testing::TestWithParam<std::tuple<Algorithm, std::uint64_t>> {
};

TEST_P(ChaosUnrecoverable, FailsWithTypedErrorNotHang) {
  const auto [alg, seed] = GetParam();
  ParallelConfig cfg = ChaosConfig();
  cfg.fault = FaultConfig::Uniform(FaultKind::kDrop, 0.3, seed,
                                   /*max_retries=*/0);
  cfg.fault.recv_timeout_ms = 200;

  try {
    ParallelResult result = MineParallel(alg, ChaosDb(), kRanks, cfg);
    // A run that survives 30% unrepaired drops would itself be a bug in
    // the detection machinery (some pass exchanged no messages it missed).
    ADD_FAILURE() << CellName(alg, FaultKind::kDrop, seed)
                  << ": completed despite unrecoverable drops";
  } catch (const CommError& e) {
    // The first failure is always the deadline expiring on the rank whose
    // message was lost; peers woken by the abort report kAborted but
    // Runtime::Run rethrows the first error.
    EXPECT_EQ(e.kind(), CommErrorKind::kTimeout)
        << CellName(alg, FaultKind::kDrop, seed) << ": " << e.what();
    EXPECT_GE(e.rank(), 0);
    EXPECT_LT(e.rank(), kRanks);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ChaosUnrecoverable,
    ::testing::Combine(::testing::Values(Algorithm::kCD, Algorithm::kDD,
                                         Algorithm::kIDD, Algorithm::kHD),
                       ::testing::Values(11u, 22u, 33u)),
    [](const ::testing::TestParamInfo<std::tuple<Algorithm, std::uint64_t>>&
           info) {
      std::string name(AlgorithmName(std::get<0>(info.param)) +
                       std::string("_S") +
                       std::to_string(std::get<1>(info.param)));
      for (char& c : name) {
        if (c == '+') c = '_';
      }
      return name;
    });

TEST(ChaosUnrecoverable, RuntimeReusableAfterFailure) {
  // A failed run must not poison the process: a fresh clean run right
  // after an aborted one produces exact results.
  ParallelConfig bad = ChaosConfig();
  bad.fault = FaultConfig::Uniform(FaultKind::kDrop, 0.5, /*seed=*/42,
                                   /*max_retries=*/0);
  bad.fault.recv_timeout_ms = 100;
  EXPECT_THROW(MineParallel(Algorithm::kCD, ChaosDb(), kRanks, bad),
               CommError);

  ParallelConfig clean = ChaosConfig();
  ParallelResult r = MineParallel(Algorithm::kCD, ChaosDb(), kRanks, clean);
  testing::ExpectMatchesSerial(r, ChaosReference(), "post-failure clean run");
}

}  // namespace
}  // namespace pam
