#ifndef PAM_TESTS_TESTING_RANDOM_DB_H_
#define PAM_TESTS_TESTING_RANDOM_DB_H_

#include <algorithm>
#include <set>
#include <vector>

#include "pam/core/itemset_collection.h"
#include "pam/tdb/database.h"
#include "pam/util/prng.h"

namespace pam::testing {

/// A small uniform-random database for property tests: `num_transactions`
/// transactions, each with a uniform length in [1, max_len] over
/// `num_items` items.
inline TransactionDatabase RandomDb(std::size_t num_transactions,
                                    Item num_items, std::size_t max_len,
                                    std::uint64_t seed) {
  Prng rng(seed);
  TransactionDatabase db;
  std::vector<Item> tx;
  for (std::size_t t = 0; t < num_transactions; ++t) {
    tx.clear();
    const std::size_t len = 1 + rng.NextBounded(max_len);
    for (std::size_t i = 0; i < len; ++i) {
      tx.push_back(static_cast<Item>(rng.NextBounded(num_items)));
    }
    db.Add(tx);
  }
  return db;
}

/// A random sorted-unique candidate collection of arity k, shared by the
/// hash-tree / flat-kernel / threaded-kernel differential tests. The guard
/// bounds the rejection loop when `how_many` approaches C(universe, k).
inline ItemsetCollection RandomCandidates(int k, std::size_t how_many,
                                          Item universe, std::uint64_t seed) {
  Prng rng(seed);
  std::set<std::vector<Item>> sets;
  std::size_t guard = 0;
  while (sets.size() < how_many && guard < how_many * 50) {
    ++guard;
    std::vector<Item> scratch;
    while (scratch.size() < static_cast<std::size_t>(k)) {
      const Item x = static_cast<Item>(rng.NextBounded(universe));
      if (std::find(scratch.begin(), scratch.end(), x) == scratch.end()) {
        scratch.push_back(x);
      }
    }
    std::sort(scratch.begin(), scratch.end());
    sets.insert(std::move(scratch));
  }
  ItemsetCollection col(k);
  for (const auto& s : sets) col.Add(ItemSpan(s.data(), s.size()));
  return col;
}

/// The paper's Table I supermarket database (items renamed to ids:
/// Beer=0, Bread=1, Coke=2, Diaper=3, Milk=4).
inline TransactionDatabase SupermarketDb() {
  TransactionDatabase db;
  db.Add({1, 2, 4});        // Bread, Coke, Milk
  db.Add({0, 1});           // Beer, Bread
  db.Add({0, 2, 3, 4});     // Beer, Coke, Diaper, Milk
  db.Add({0, 1, 3, 4});     // Beer, Bread, Diaper, Milk
  db.Add({2, 3, 4});        // Coke, Diaper, Milk
  return db;
}

inline constexpr Item kBeer = 0;
inline constexpr Item kBread = 1;
inline constexpr Item kCoke = 2;
inline constexpr Item kDiaper = 3;
inline constexpr Item kMilk = 4;

}  // namespace pam::testing

#endif  // PAM_TESTS_TESTING_RANDOM_DB_H_
