// Deadlines, cooperative cancellation, and graceful degradation
// (DESIGN.md §13): the CancelToken itself, cancellation through the
// MiningSession facade, every server-side abort path (deadline mid-run,
// cancel while queued, client cancel mid-run, watchdog fire, shutdown
// during cancellation), and the dataset cache's budget/TTL/pinning
// behaviour — each asserting the typed response, balanced admission
// counters, and a whole rank pool afterwards.

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pam/mp/fault.h"
#include "pam/serve/server.h"
#include "pam/util/cancel.h"
#include "testing/test_support.h"

namespace pam {
namespace {

using serve::DatasetCache;
using serve::DatasetHandle;
using serve::MiningServer;
using serve::ServeResponse;
using serve::ServeStatus;
using serve::ServerConfig;
using serve::ServerStats;

/// Asserts the server's post-drain accounting invariant: every submit is
/// admitted or rejected, and every admitted request resolved with exactly
/// one of the four post-admission statuses.
void ExpectBalancedStats(const ServerStats& stats) {
  EXPECT_EQ(stats.submitted, stats.admitted + stats.TotalRejected());
  EXPECT_EQ(stats.admitted, stats.completed + stats.mining_faults +
                                stats.cancelled + stats.deadline_exceeded);
}

/// Asserts every lease came home.
void ExpectPoolWhole(MiningServer& server, const ServerConfig& config) {
  EXPECT_EQ(server.pool().Available(), config.pool_ranks);
  EXPECT_EQ(server.pool().LeasesOutstanding(), 0);
}

/// A request over `dataset` slowed by an always-stall fault plan: every
/// message delivery sleeps `stall_ms`, so the run reliably outlives short
/// deadlines without ever actually failing.
MiningRequest SlowRequest(const std::string& dataset, int ranks,
                          int stall_ms) {
  MiningRequest request;
  request.tenant = "slow";
  request.dataset = dataset;
  request.algorithm = MiningAlgorithm::kCD;
  request.num_ranks = ranks;
  request.config.apriori.minsup_fraction = 0.03;
  request.config.fault =
      FaultConfig::Uniform(FaultKind::kStall, 1.0, /*seed=*/1);
  request.config.fault.stall_ticks_ms = stall_ms;
  request.config.fault.recv_timeout_ms = 120000;
  return request;
}

TEST(CancelTokenTest, NullTokenNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_EQ(token.Check(), CancelReason::kNone);
  token.Cancel();              // no-op
  token.ArmDeadlineIn(0.001);  // no-op
  token.Beat();
  EXPECT_NO_THROW(token.Checkpoint());
  EXPECT_EQ(token.Check(), CancelReason::kNone);
  EXPECT_EQ(token.MillisSinceBeat(), 0.0);
}

TEST(CancelTokenTest, FirstReasonWinsAndLatches) {
  CancelToken token = CancelToken::Create();
  EXPECT_TRUE(token.valid());
  EXPECT_EQ(token.Check(), CancelReason::kNone);
  token.Cancel(CancelReason::kCancelled);
  token.Cancel(CancelReason::kWatchdog);  // loses: first reason wins
  EXPECT_EQ(token.Check(), CancelReason::kCancelled);
  EXPECT_THROW(token.ThrowIfCancelled(3), CancelledError);
  try {
    token.Checkpoint(3);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kCancelled);
    EXPECT_EQ(e.rank(), 3);
  }
}

TEST(CancelTokenTest, DeadlineLatchesAndOnlyTightens) {
  CancelToken token = CancelToken::Create();
  EXPECT_FALSE(token.has_deadline());
  token.ArmDeadlineIn(60000.0);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_EQ(token.Check(), CancelReason::kNone);  // an hour away
  // Arming later than the current deadline is a no-op; arming earlier
  // tightens. An already-passed deadline latches kDeadline on Check.
  token.ArmDeadlineIn(-1.0);
  EXPECT_EQ(token.Check(), CancelReason::kDeadline);
  EXPECT_EQ(token.Check(), CancelReason::kDeadline);  // latched
  // A copy shares the same state.
  CancelToken copy = token;
  EXPECT_EQ(copy.Check(), CancelReason::kDeadline);
}

TEST(CancelTokenTest, BeatFeedsWatchdogClock) {
  CancelToken token = CancelToken::Create();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(token.MillisSinceBeat(), 0.0);
  token.Beat();
  EXPECT_LT(token.MillisSinceBeat(), 5000.0);
}

TEST(SessionCancelTest, ExpiredDeadlineThrowsSerialAndParallel) {
  const TransactionDatabase db = testing::TinyQuestDb();
  for (MiningAlgorithm algorithm :
       {MiningAlgorithm::kSerial, MiningAlgorithm::kCD}) {
    MiningRequest request;
    request.algorithm = algorithm;
    request.num_ranks = 2;
    request.config.apriori.minsup_fraction = 0.03;
    request.deadline_ms = 0.0001;  // expired by the first check point
    MiningSession session;
    try {
      session.Run(request, db);
      FAIL() << "expected CancelledError for "
             << MiningAlgorithmName(algorithm);
    } catch (const CancelledError& e) {
      EXPECT_EQ(e.reason(), CancelReason::kDeadline);
    }
  }
}

TEST(SessionCancelTest, PreCancelledTokenThrowsCancelled) {
  const TransactionDatabase db = testing::TinyQuestDb();
  MiningRequest request;
  request.algorithm = MiningAlgorithm::kIDD;
  request.num_ranks = 2;
  request.config.apriori.minsup_fraction = 0.03;
  request.cancel = CancelToken::Create();
  request.cancel.Cancel();
  MiningSession session;
  try {
    session.Run(request, db);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kCancelled);
  }
}

TEST(SessionCancelTest, GenerousDeadlineStaysByteIdentical) {
  // A deadline that never fires must not perturb the arithmetic: the
  // token threads through every pass and counting stride, but the counts
  // are the solo counts.
  const TransactionDatabase db = testing::SmallQuestDb();
  AprioriConfig cfg;
  cfg.minsup_fraction = 0.02;
  const auto reference = testing::SerialReference(db, cfg);
  for (MiningAlgorithm algorithm :
       {MiningAlgorithm::kSerial, MiningAlgorithm::kCD,
        MiningAlgorithm::kIDD, MiningAlgorithm::kHD}) {
    MiningRequest request;
    request.algorithm = algorithm;
    request.num_ranks = 4;
    request.config.apriori.minsup_fraction = 0.02;
    request.config.apriori.threads_per_rank = 2;
    request.deadline_ms = 600000.0;
    MiningSession session;
    EXPECT_EQ(testing::Flatten(session.Run(request, db).frequent),
              reference)
        << MiningAlgorithmName(algorithm);
  }
}

TEST(ServeCancelTest, DeadlineMidRunIsTypedAndReturnsLease) {
  ServerConfig config;
  config.pool_ranks = 4;
  config.workers = 1;
  MiningServer server(config);
  server.datasets().RegisterLoaded("tiny", testing::TinyQuestDb());

  // Every message stalls 300ms, so the run cannot finish inside 100ms;
  // the deadline fires mid-run and unwinds through the comm waits.
  MiningRequest request = SlowRequest("tiny", /*ranks=*/3, /*stall_ms=*/300);
  request.deadline_ms = 100.0;
  ServeResponse response = server.Execute(std::move(request));
  EXPECT_EQ(response.status, ServeStatus::kDeadlineExceeded);
  EXPECT_FALSE(response.error.empty());
  EXPECT_GT(response.service_seconds, 0.0);

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.expired_in_queue, 0u);  // it was running, not queued
  ExpectBalancedStats(stats);
  server.Shutdown();
  ExpectPoolWhole(server, config);
}

TEST(ServeCancelTest, TokenFiredWhileQueuedShedsBeforeLeasing) {
  // One worker, held inside a gated dataset load; everything behind it
  // waits in the queue. A queued request whose token fires is shed at
  // dequeue — no rank lease, no dataset load, typed response.
  ServerConfig config;
  config.pool_ranks = 4;
  config.workers = 1;
  MiningServer server(config);
  auto gate_db = std::make_shared<std::promise<void>>();
  std::shared_future<void> gate(gate_db->get_future());
  server.datasets().Register("gated", [gate]() -> Result<TransactionDatabase> {
    gate.wait();
    return testing::TinyQuestDb();
  });
  server.datasets().RegisterLoaded("tiny", testing::TinyQuestDb());

  MiningRequest blocker;
  blocker.tenant = "t";
  blocker.dataset = "gated";
  blocker.algorithm = MiningAlgorithm::kSerial;
  blocker.config.apriori.minsup_fraction = 0.03;
  std::future<ServeResponse> blocked = server.Submit(std::move(blocker));

  // Queued behind the blocker: one explicitly cancelled, one whose
  // deadline expires while it waits.
  MiningRequest cancelled_req;
  cancelled_req.tenant = "t";
  cancelled_req.dataset = "tiny";
  cancelled_req.algorithm = MiningAlgorithm::kSerial;
  cancelled_req.config.apriori.minsup_fraction = 0.03;
  cancelled_req.cancel = CancelToken::Create();
  CancelToken cancel_handle = cancelled_req.cancel;
  std::future<ServeResponse> cancelled = server.Submit(std::move(cancelled_req));

  MiningRequest expiring;
  expiring.tenant = "t";
  expiring.dataset = "tiny";
  expiring.algorithm = MiningAlgorithm::kSerial;
  expiring.config.apriori.minsup_fraction = 0.03;
  expiring.deadline_ms = 20.0;  // armed at admission: queue time counts
  std::future<ServeResponse> expired = server.Submit(std::move(expiring));

  cancel_handle.Cancel();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate_db->set_value();

  EXPECT_EQ(blocked.get().status, ServeStatus::kOk);
  ServeResponse r1 = cancelled.get();
  EXPECT_EQ(r1.status, ServeStatus::kCancelled);
  ServeResponse r2 = expired.get();
  EXPECT_EQ(r2.status, ServeStatus::kDeadlineExceeded);

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.expired_in_queue, 1u);
  ExpectBalancedStats(stats);
  server.Shutdown();
  ExpectPoolWhole(server, config);
}

TEST(ServeCancelTest, ClientCancelMidRunIsTypedAndReturnsLease) {
  ServerConfig config;
  config.pool_ranks = 4;
  config.workers = 1;
  MiningServer server(config);
  server.datasets().RegisterLoaded("tiny", testing::TinyQuestDb());

  MiningRequest request = SlowRequest("tiny", /*ranks=*/3, /*stall_ms=*/200);
  request.cancel = CancelToken::Create();
  CancelToken handle = request.cancel;
  std::future<ServeResponse> future = server.Submit(std::move(request));
  // Let the run get under way (a ring round takes >= 200ms), then pull
  // the plug from the client side — mid-pass, mid-collective.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  handle.Cancel();

  ServeResponse response = future.get();
  EXPECT_EQ(response.status, ServeStatus::kCancelled);
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.cancelled, 1u);
  ExpectBalancedStats(stats);
  server.Shutdown();
  ExpectPoolWhole(server, config);
}

TEST(ServeCancelTest, WatchdogConvertsStallIntoTypedFault) {
  // Heartbeats come only from progress points, and an all-stall fault
  // plan keeps the world between them for >= 600ms at a time — so a
  // 100ms watchdog sees a flatlined token and fires kWatchdog, which the
  // server reports as an infrastructure kMiningFault. Without the
  // watchdog this run would simply take ~seconds; with it the lease is
  // back long before that.
  ServerConfig config;
  config.pool_ranks = 4;
  config.workers = 1;
  config.watchdog_ms = 100.0;
  MiningServer server(config);
  server.datasets().RegisterLoaded("tiny", testing::TinyQuestDb());

  ServeResponse response =
      server.Execute(SlowRequest("tiny", /*ranks=*/3, /*stall_ms=*/600));
  EXPECT_EQ(response.status, ServeStatus::kMiningFault);
  EXPECT_NE(response.error.find("watchdog"), std::string::npos)
      << response.error;

  const ServerStats stats = server.Stats();
  EXPECT_GE(stats.watchdog_fired, 1u);
  EXPECT_EQ(stats.mining_faults, 1u);
  ExpectBalancedStats(stats);
  server.Shutdown();
  ExpectPoolWhole(server, config);
}

TEST(ServeCancelTest, WatchdogLeavesHealthyRunsAlone) {
  // A clean fast run beats at every pass boundary and counting stride;
  // a generous watchdog must never fire on it.
  ServerConfig config;
  config.pool_ranks = 4;
  config.workers = 2;
  config.watchdog_ms = 60000.0;
  MiningServer server(config);
  const TransactionDatabase db = testing::SmallQuestDb();
  server.datasets().RegisterLoaded("small", TransactionDatabase(db));
  AprioriConfig cfg;
  cfg.minsup_fraction = 0.02;
  const auto reference = testing::SerialReference(db, cfg);

  MiningRequest request;
  request.tenant = "t";
  request.dataset = "small";
  request.algorithm = MiningAlgorithm::kHD;
  request.num_ranks = 4;
  request.config.apriori.minsup_fraction = 0.02;
  ServeResponse response = server.Execute(std::move(request));
  ASSERT_EQ(response.status, ServeStatus::kOk);
  EXPECT_EQ(testing::Flatten(response.report.frequent), reference);
  EXPECT_EQ(server.Stats().watchdog_fired, 0u);
  server.Shutdown();
  ExpectPoolWhole(server, config);
}

TEST(ServeCancelTest, ShutdownDuringCancellationDrainsTyped) {
  // Queue several requests behind a gated load, cancel some of them,
  // then shut down while the drain is in flight: every future resolves
  // with a typed status, the counters balance, and the pool is whole.
  ServerConfig config;
  config.pool_ranks = 4;
  config.workers = 1;
  MiningServer server(config);
  auto gate_db = std::make_shared<std::promise<void>>();
  std::shared_future<void> gate(gate_db->get_future());
  server.datasets().Register("gated", [gate]() -> Result<TransactionDatabase> {
    gate.wait();
    return testing::TinyQuestDb();
  });
  server.datasets().RegisterLoaded("tiny", testing::TinyQuestDb());

  MiningRequest blocker;
  blocker.tenant = "t";
  blocker.dataset = "gated";
  blocker.algorithm = MiningAlgorithm::kSerial;
  blocker.config.apriori.minsup_fraction = 0.03;
  std::future<ServeResponse> blocked = server.Submit(std::move(blocker));

  std::vector<std::future<ServeResponse>> queued;
  std::vector<CancelToken> handles;
  for (int i = 0; i < 6; ++i) {
    MiningRequest request;
    request.tenant = "t";
    request.dataset = "tiny";
    request.algorithm = MiningAlgorithm::kCD;
    request.num_ranks = 2;
    request.config.apriori.minsup_fraction = 0.03;
    request.cancel = CancelToken::Create();
    handles.push_back(request.cancel);
    queued.push_back(server.Submit(std::move(request)));
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].Cancel();
  gate_db->set_value();
  server.Shutdown();  // drains the whole queue before returning

  EXPECT_EQ(blocked.get().status, ServeStatus::kOk);
  int ok = 0, cancelled = 0;
  for (auto& future : queued) {
    const ServeResponse response = future.get();
    if (response.status == ServeStatus::kOk) ++ok;
    else if (response.status == ServeStatus::kCancelled) ++cancelled;
    else ADD_FAILURE() << serve::ServeStatusName(response.status) << ": "
                       << response.error;
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(cancelled, 3);
  ExpectBalancedStats(server.Stats());
  ExpectPoolWhole(server, config);
  EXPECT_EQ(server.Stats().queue_depth, 0u);
}

TEST(CacheBudgetTest, LruEvictionKeepsResidencyUnderBudget) {
  // Measure one dataset's wire image, then budget for ~1.5 of them:
  // loading a second dataset must evict the first, never exceed budget.
  std::size_t wire = 0;
  {
    DatasetCache probe(4096);
    probe.Register("a", [] { return Result<TransactionDatabase>(
                                 testing::TinyQuestDb()); });
    wire = probe.Get("a").value()->wire_bytes;
    ASSERT_GT(wire, 0u);
  }

  DatasetCache cache(4096, /*budget_bytes=*/wire + wire / 2);
  for (const char* id : {"a", "b", "c"}) {
    cache.Register(id, [] { return Result<TransactionDatabase>(
                                testing::TinyQuestDb()); });
  }
  { DatasetHandle a = cache.Get("a").value(); }
  EXPECT_EQ(cache.ResidentBytes(), wire);
  { DatasetHandle b = cache.Get("b").value(); }  // evicts a
  EXPECT_EQ(cache.Evictions(), 1u);
  EXPECT_EQ(cache.ResidentBytes(), wire);
  { DatasetHandle c = cache.Get("c").value(); }  // evicts b
  EXPECT_EQ(cache.Evictions(), 2u);
  EXPECT_LE(cache.ResidentBytes(), cache.BudgetBytes());
  // "a" reloads on demand — eviction degraded sharing, not correctness.
  EXPECT_TRUE(cache.Get("a").ok());
  EXPECT_EQ(cache.Misses(), 4u);
}

TEST(CacheBudgetTest, PinnedEntriesSurviveAndOverflowLoadsThrough) {
  std::size_t wire = 0;
  {
    DatasetCache probe(4096);
    probe.Register("a", [] { return Result<TransactionDatabase>(
                                 testing::TinyQuestDb()); });
    wire = probe.Get("a").value()->wire_bytes;
  }

  DatasetCache cache(4096, /*budget_bytes=*/wire);
  for (const char* id : {"a", "b"}) {
    cache.Register(id, [] { return Result<TransactionDatabase>(
                                testing::TinyQuestDb()); });
  }
  DatasetHandle pinned = cache.Get("a").value();  // held: in use
  Result<DatasetHandle> b = cache.Get("b");       // cannot evict a
  ASSERT_TRUE(b.ok());
  EXPECT_NE(b.value()->db, nullptr);  // served load-through, fully usable
  EXPECT_EQ(cache.Evictions(), 0u);   // the pin protected residency
  EXPECT_EQ(cache.ResidentBytes(), wire);
  EXPECT_LE(cache.ResidentBytes(), cache.BudgetBytes());

  // Once unpinned, the normal LRU rules apply again.
  pinned.reset();
  EXPECT_TRUE(cache.Get("b").ok());  // now evicts a
  EXPECT_EQ(cache.Evictions(), 1u);
}

TEST(CacheBudgetTest, TtlDropsIdleEntries) {
  DatasetCache cache(4096, /*budget_bytes=*/0, /*ttl_ms=*/1.0);
  for (const char* id : {"a", "b"}) {
    cache.Register(id, [] { return Result<TransactionDatabase>(
                                testing::TinyQuestDb()); });
  }
  { DatasetHandle a = cache.Get("a").value(); }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  { DatasetHandle b = cache.Get("b").value(); }  // sweep drops idle "a"
  EXPECT_EQ(cache.Evictions(), 1u);
}

TEST(ServeCancelTest, FaultPlanDeadlineMatrixStaysTyped) {
  // The serve chaos matrix (scripts/ci.sh): stall and drop fault plans,
  // each with and without a deadline. Every cell must resolve typed —
  // recoverable faults repair to byte-identical results, deadlines shed —
  // and the pool must be whole afterwards regardless of which way each
  // cell went.
  const TransactionDatabase db = testing::TinyQuestDb();
  AprioriConfig ref_cfg;
  ref_cfg.minsup_fraction = 0.03;
  const auto reference = testing::SerialReference(db, ref_cfg);

  ServerConfig config;
  config.pool_ranks = 4;
  config.workers = 2;
  MiningServer server(config);
  server.datasets().RegisterLoaded("tiny", TransactionDatabase(db));

  const FaultKind kinds[] = {FaultKind::kStall, FaultKind::kDrop};
  for (FaultKind kind : kinds) {
    for (bool tight_deadline : {false, true}) {
      MiningRequest request;
      request.tenant = "chaos";
      request.dataset = "tiny";
      request.algorithm = MiningAlgorithm::kCD;
      request.num_ranks = 3;
      request.config.apriori.minsup_fraction = 0.03;
      request.config.fault =
          FaultConfig::Uniform(kind, 0.3, /*seed=*/17, /*max_retries=*/8);
      if (kind == FaultKind::kStall) {
        request.config.fault.stall_ticks_ms = 20;
        request.config.fault.recv_timeout_ms = 120000;
      } else {
        // Bound the wait on an unrecoverable drop cell; its typed
        // kMiningFault is an acceptable matrix outcome, just a slow one.
        request.config.fault.recv_timeout_ms = 1000;
      }
      if (tight_deadline) request.deadline_ms = 25.0;
      ServeResponse response = server.Execute(std::move(request));
      switch (response.status) {
        case ServeStatus::kOk:
          // Recovered faults must repair to byte-identical results.
          EXPECT_EQ(testing::Flatten(response.report.frequent), reference)
              << FaultKindName(kind);
          break;
        case ServeStatus::kDeadlineExceeded:
          EXPECT_TRUE(tight_deadline) << response.error;
          break;
        case ServeStatus::kMiningFault:
          // An unrecoverable fault cell: typed, never an exception.
          EXPECT_FALSE(response.error.empty());
          break;
        default:
          ADD_FAILURE() << "untyped matrix outcome: "
                        << serve::ServeStatusName(response.status) << ": "
                        << response.error;
      }
      EXPECT_EQ(server.pool().LeasesOutstanding(), 0);
    }
  }
  ExpectBalancedStats(server.Stats());
  server.Shutdown();
  ExpectPoolWhole(server, config);
}

// The acceptance soak (ISSUE 8): a request mix where 25% carry a tight
// deadline, slow cells run under a stall fault plan, and the working set
// is twice the cache budget. Every response must be typed, every ok
// response byte-identical to its solo reference, the cache must stay
// within budget, and the pool must be whole at the end.
TEST(ServeCancelSoakTest, DeadlineMixEveryResponseTyped) {
  constexpr int kDatasets = 4;
  std::vector<TransactionDatabase> dbs;
  for (int d = 0; d < kDatasets; ++d) {
    dbs.push_back(testing::SeededQuestDb(100 + static_cast<std::uint64_t>(d)));
  }

  // Solo references per dataset (all cells mine at the same minsup).
  AprioriConfig ref_cfg;
  ref_cfg.minsup_fraction = 0.02;
  std::vector<std::map<std::vector<Item>, Count>> references;
  for (const TransactionDatabase& db : dbs) {
    references.push_back(testing::SerialReference(db, ref_cfg));
  }

  // Budget = 2 datasets' wire image -> working set (4 datasets) is 2x.
  std::size_t wire = 0;
  {
    DatasetCache probe(4096);
    probe.RegisterLoaded("p", TransactionDatabase(dbs[0]));
    wire = probe.Get("p").value()->wire_bytes;
  }
  ServerConfig config;
  config.pool_ranks = 8;
  config.workers = 4;
  config.max_queue = 256;
  config.cache_page_bytes = 4096;
  config.cache_budget_bytes = 2 * wire + wire / 2;
  MiningServer server(config);
  for (int d = 0; d < kDatasets; ++d) {
    server.datasets().RegisterLoaded("ds" + std::to_string(d),
                                     TransactionDatabase(dbs[d]));
  }

  const MiningAlgorithm algorithms[] = {
      MiningAlgorithm::kSerial, MiningAlgorithm::kCD, MiningAlgorithm::kIDD,
      MiningAlgorithm::kHD};
  constexpr int kClients = 4;
  constexpr int kPerClient = 12;
  std::vector<int> ok(kClients, 0), deadline(kClients, 0),
      cancelled(kClients, 0), faulted(kClients, 0), wrong(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int cell = c * kPerClient + i;
        const int ds = cell % kDatasets;
        MiningRequest request;
        request.tenant = "client" + std::to_string(c);
        request.dataset = "ds" + std::to_string(ds);
        request.algorithm = algorithms[cell % std::size(algorithms)];
        request.num_ranks = 2 + cell % 3;
        request.config.apriori.minsup_fraction = 0.02;
        if (cell % 4 == 0) {
          // The tight-deadline quarter: slowed by stalls and given a
          // deadline it cannot reliably make — shed in queue or killed
          // mid-run, but always typed. Forced parallel so the stall plan
          // actually applies (serial runs have no messages to stall).
          request.algorithm = MiningAlgorithm::kCD;
          request.num_ranks = 3;
          request.config.fault =
              FaultConfig::Uniform(FaultKind::kStall, 1.0,
                                   /*seed=*/static_cast<std::uint64_t>(cell));
          request.config.fault.stall_ticks_ms = 40;
          request.config.fault.recv_timeout_ms = 120000;
          request.deadline_ms = 30.0;
        }
        ServeResponse response = server.Execute(std::move(request));
        switch (response.status) {
          case ServeStatus::kOk:
            ++ok[static_cast<std::size_t>(c)];
            if (testing::Flatten(response.report.frequent) !=
                references[static_cast<std::size_t>(ds)]) {
              ++wrong[static_cast<std::size_t>(c)];
            }
            break;
          case ServeStatus::kDeadlineExceeded:
            ++deadline[static_cast<std::size_t>(c)];
            break;
          case ServeStatus::kCancelled:
            ++cancelled[static_cast<std::size_t>(c)];
            break;
          case ServeStatus::kMiningFault:
            ++faulted[static_cast<std::size_t>(c)];
            break;
          default:
            ADD_FAILURE() << "untyped response: "
                          << serve::ServeStatusName(response.status) << ": "
                          << response.error;
        }
        // Degradation is graceful: the budget holds even under load.
        EXPECT_LE(server.datasets().ResidentBytes(),
                  config.cache_budget_bytes);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  int total_ok = 0, total_deadline = 0, total_other = 0, total_wrong = 0;
  for (int c = 0; c < kClients; ++c) {
    total_ok += ok[static_cast<std::size_t>(c)];
    total_deadline += deadline[static_cast<std::size_t>(c)];
    total_other += cancelled[static_cast<std::size_t>(c)] +
                   faulted[static_cast<std::size_t>(c)];
    total_wrong += wrong[static_cast<std::size_t>(c)];
  }
  constexpr int kTotal = kClients * kPerClient;
  EXPECT_EQ(total_ok + total_deadline + total_other, kTotal);
  EXPECT_EQ(total_wrong, 0);
  EXPECT_GT(total_ok, 0);        // the clean 75% overwhelmingly succeed
  EXPECT_GT(total_deadline, 0);  // the tight quarter reliably sheds some

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kTotal));
  ExpectBalancedStats(stats);
  EXPECT_GT(stats.cache_evictions, 0u);  // 2x working set forced turnover
  server.Shutdown();
  ExpectPoolWhole(server, config);
  EXPECT_LE(server.datasets().ResidentBytes(), config.cache_budget_bytes);
}

}  // namespace
}  // namespace pam
