// Concurrency and correctness suite for the multi-tenant MiningServer
// (ctest label `serve`; the TSan CI job runs it alongside threaded|chaos).
//
// The server's contract under test:
//   - served results are byte-identical to a solo MiningSession::Run of
//     the same request, no matter how many tenants race;
//   - admission control rejects synchronously with a typed status
//     (bounded queue, per-tenant in-flight and rank-seconds quotas,
//     unknown dataset, malformed request, shutdown);
//   - the dataset cache hands every request the same immutable Payload
//     pages — a cache hit moves zero bytes (BufferPool::CopyCount guard);
//   - every rank lease is back in the pool after Shutdown.

#include <algorithm>
#include <condition_variable>
#include <future>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pam/mp/payload.h"
#include "pam/obs/trace.h"
#include "pam/serve/server.h"
#include "testing/test_support.h"

namespace pam {
namespace {

using serve::MiningServer;
using serve::ServeResponse;
using serve::ServeStatus;
using serve::ServerConfig;
using serve::ServerStats;

/// A latch the gated-loader tests use to hold a worker inside a dataset
/// load, making queue and quota occupancy deterministic.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  }
};

/// Registers dataset `id` whose load blocks until `gate` opens.
void RegisterGated(MiningServer& server, const std::string& id,
                   std::shared_ptr<Gate> gate) {
  server.datasets().Register(id, [gate]() -> Result<TransactionDatabase> {
    gate->Wait();
    return testing::TinyQuestDb();
  });
}

MiningRequest Request(const std::string& tenant, const std::string& dataset,
                      MiningAlgorithm algorithm, int ranks,
                      double minsup = 0.02) {
  MiningRequest request;
  request.tenant = tenant;
  request.dataset = dataset;
  request.algorithm = algorithm;
  request.num_ranks = ranks;
  request.config.apriori.minsup_fraction = minsup;
  return request;
}

/// Spin-waits until `predicate` holds (the suite's only time dependence;
/// bounded by the gtest per-test timeout).
template <typename Predicate>
void AwaitTrue(Predicate predicate) {
  while (!predicate()) std::this_thread::yield();
}

TEST(ServeTest, ConcurrentMixedAlgorithmsMatchSolo) {
  const TransactionDatabase db = testing::SmallQuestDb();

  const struct {
    MiningAlgorithm algorithm;
    int ranks;
  } mix[] = {
      {MiningAlgorithm::kSerial, 1}, {MiningAlgorithm::kCD, 4},
      {MiningAlgorithm::kDD, 3},     {MiningAlgorithm::kIDD, 4},
      {MiningAlgorithm::kHD, 4},     {MiningAlgorithm::kHPA, 3},
  };

  // Solo references, mined outside the server.
  std::map<int, std::map<std::vector<Item>, Count>> references;
  for (std::size_t i = 0; i < std::size(mix); ++i) {
    MiningSession solo;
    references[static_cast<int>(i)] = testing::Flatten(
        solo.Run(Request("solo", "quest", mix[i].algorithm, mix[i].ranks), db)
            .frequent);
  }

  ServerConfig config;
  config.pool_ranks = 8;
  config.workers = 4;
  MiningServer server(config);
  server.datasets().RegisterLoaded("quest", TransactionDatabase(db));

  // One client thread per mix cell, each submitting its cell three times
  // under a distinct tenant; every response must equal the solo run.
  constexpr int kRepeats = 3;
  std::vector<std::future<ServeResponse>> futures(std::size(mix) * kRepeats);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < std::size(mix); ++i) {
    clients.emplace_back([&, i] {
      for (int r = 0; r < kRepeats; ++r) {
        futures[i * kRepeats + static_cast<std::size_t>(r)] = server.Submit(
            Request("tenant" + std::to_string(i), "quest", mix[i].algorithm,
                    mix[i].ranks));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (std::size_t i = 0; i < std::size(mix); ++i) {
    for (int r = 0; r < kRepeats; ++r) {
      ServeResponse response =
          futures[i * kRepeats + static_cast<std::size_t>(r)].get();
      ASSERT_EQ(response.status, ServeStatus::kOk) << response.error;
      EXPECT_EQ(testing::Flatten(response.report.frequent),
                references[static_cast<int>(i)])
          << MiningAlgorithmName(mix[i].algorithm) << " repeat " << r;
    }
  }

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.admitted, std::size(mix) * kRepeats);
  EXPECT_EQ(stats.completed, std::size(mix) * kRepeats);
  EXPECT_EQ(stats.TotalRejected(), 0u);

  server.Shutdown();
  EXPECT_EQ(server.pool().Available(), config.pool_ranks);
  EXPECT_EQ(server.pool().LeasesOutstanding(), 0);
}

TEST(ServeTest, RuleGenerationMatchesSolo) {
  const TransactionDatabase db = testing::SmallQuestDb();
  MiningRequest request = Request("acme", "quest", MiningAlgorithm::kCD, 4);
  request.generate_rules = true;
  request.min_confidence = 0.6;

  MiningSession solo;
  const MiningReport reference = solo.Run(request, db);

  MiningServer server(ServerConfig{});
  server.datasets().RegisterLoaded("quest", TransactionDatabase(db));
  ServeResponse response = server.Execute(request);
  ASSERT_TRUE(response.ok()) << response.error;
  EXPECT_EQ(testing::Flatten(response.report.frequent),
            testing::Flatten(reference.frequent));
  ASSERT_EQ(response.report.rules.size(), reference.rules.size());
  for (std::size_t i = 0; i < reference.rules.size(); ++i) {
    EXPECT_EQ(response.report.rules[i].antecedent,
              reference.rules[i].antecedent);
    EXPECT_EQ(response.report.rules[i].consequent,
              reference.rules[i].consequent);
  }
}

TEST(ServeTest, QueueFullRejectsTyped) {
  ServerConfig config;
  config.pool_ranks = 4;
  config.workers = 1;
  config.max_queue = 1;
  MiningServer server(config);
  auto gate = std::make_shared<Gate>();
  RegisterGated(server, "gated", gate);

  // First request: the lone worker dequeues it and parks inside the gated
  // loader. Wait for the dequeue so queue occupancy is deterministic.
  auto first = server.Submit(
      Request("acme", "gated", MiningAlgorithm::kSerial, 1, 0.03));
  AwaitTrue([&] { return server.Stats().queue_depth == 0; });

  // Second fills the 1-deep queue; third must be rejected synchronously.
  auto second = server.Submit(
      Request("acme", "gated", MiningAlgorithm::kSerial, 1, 0.03));
  auto third = server.Submit(
      Request("acme", "gated", MiningAlgorithm::kSerial, 1, 0.03));
  ServeResponse rejected = third.get();  // already resolved
  EXPECT_EQ(rejected.status, ServeStatus::kQueueFull);
  EXPECT_TRUE(rejected.rejected());
  EXPECT_FALSE(rejected.error.empty());

  gate->Open();
  EXPECT_TRUE(first.get().ok());
  EXPECT_TRUE(second.get().ok());
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.admitted, 2u);
}

TEST(ServeTest, TenantInFlightQuotaEnforced) {
  ServerConfig config;
  config.pool_ranks = 4;
  config.workers = 2;
  config.tenant_quotas["capped"] = {/*max_in_flight=*/1,
                                    /*rank_seconds=*/0.0};
  MiningServer server(config);
  auto gate = std::make_shared<Gate>();
  RegisterGated(server, "gated", gate);

  auto first = server.Submit(
      Request("capped", "gated", MiningAlgorithm::kSerial, 1, 0.03));
  // In-flight is counted from admission, so the second submit of the
  // capped tenant is rejected while the first is still loading...
  ServeResponse rejected =
      server
          .Submit(Request("capped", "gated", MiningAlgorithm::kSerial, 1,
                          0.03))
          .get();
  EXPECT_EQ(rejected.status, ServeStatus::kTenantInFlightExceeded);
  // ...but an uncapped tenant is admitted fine.
  auto other = server.Submit(
      Request("other", "gated", MiningAlgorithm::kSerial, 1, 0.03));

  gate->Open();
  EXPECT_TRUE(first.get().ok());
  EXPECT_TRUE(other.get().ok());

  // With the first request finished, the tenant is under quota again.
  EXPECT_TRUE(server
                  .Execute(Request("capped", "gated",
                                   MiningAlgorithm::kSerial, 1, 0.03))
                  .ok());
  EXPECT_EQ(server.Stats().rejected_tenant_in_flight, 1u);
  EXPECT_EQ(server.UsageFor("capped").in_flight, 0);
}

TEST(ServeTest, TenantBudgetQuotaEnforced) {
  ServerConfig config;
  config.pool_ranks = 4;
  // A budget so small the first completed request exhausts it.
  config.tenant_quotas["metered"] = {/*max_in_flight=*/0,
                                     /*rank_seconds=*/1e-9};
  MiningServer server(config);
  server.datasets().RegisterLoaded("quest", testing::SmallQuestDb());

  ServeResponse first =
      server.Execute(Request("metered", "quest", MiningAlgorithm::kCD, 4));
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_GT(server.UsageFor("metered").rank_seconds, 0.0);

  ServeResponse second =
      server.Execute(Request("metered", "quest", MiningAlgorithm::kCD, 4));
  EXPECT_EQ(second.status, ServeStatus::kTenantBudgetExhausted);
  EXPECT_EQ(server.Stats().rejected_tenant_budget, 1u);

  // The budget meters the tenant, not the server.
  EXPECT_TRUE(
      server.Execute(Request("other", "quest", MiningAlgorithm::kCD, 4))
          .ok());
}

TEST(ServeTest, DatasetCacheServesOneSharedCopy) {
  MiningServer server(ServerConfig{});
  server.datasets().RegisterLoaded("quest", testing::SmallQuestDb());

  // First request pays the one-time load (CSR copy + wire paging)...
  ServeResponse first =
      server.Execute(Request("a", "quest", MiningAlgorithm::kSerial, 1));
  ASSERT_TRUE(first.ok()) << first.error;
  ASSERT_NE(first.dataset, nullptr);
  ASSERT_FALSE(first.dataset->pages.empty());
  const std::uint64_t copies_after_load = BufferPool::CopyCount();

  // ...and every later request over the dataset moves zero bytes: same
  // handle, same underlying payload buffers, no new Payload::Copy.
  ServeResponse second =
      server.Execute(Request("b", "quest", MiningAlgorithm::kSerial, 1));
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_EQ(BufferPool::CopyCount(), copies_after_load);
  EXPECT_EQ(first.dataset, second.dataset);
  EXPECT_TRUE(
      first.dataset->pages[0].SharesBufferWith(second.dataset->pages[0]));

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(server.datasets().ResidentBytes(), first.dataset->wire_bytes);
}

TEST(ServeTest, RejectsUnknownDatasetAndMalformedRequests) {
  ServerConfig config;
  config.pool_ranks = 4;
  MiningServer server(config);
  server.datasets().RegisterLoaded("quest", testing::SmallQuestDb());

  ServeResponse unknown =
      server.Execute(Request("a", "nope", MiningAlgorithm::kSerial, 1));
  EXPECT_EQ(unknown.status, ServeStatus::kUnknownDataset);

  ServeResponse no_dataset =
      server.Execute(Request("a", "", MiningAlgorithm::kSerial, 1));
  EXPECT_EQ(no_dataset.status, ServeStatus::kInvalidRequest);

  // More ranks than the pool can ever grant: rejected up front instead of
  // blocking a worker forever.
  ServeResponse too_wide =
      server.Execute(Request("a", "quest", MiningAlgorithm::kCD,
                             config.pool_ranks + 1));
  EXPECT_EQ(too_wide.status, ServeStatus::kInvalidRequest);

  // A serial request's num_ranks is ignored (effective width 1), matching
  // MiningSession semantics.
  MiningRequest serial_wide =
      Request("a", "quest", MiningAlgorithm::kSerial, 1);
  serial_wide.num_ranks = 99;
  EXPECT_TRUE(server.Execute(serial_wide).ok());

  EXPECT_EQ(server.Stats().rejected_invalid, 2u);
  EXPECT_EQ(server.Stats().rejected_unknown_dataset, 1u);
}

TEST(ServeTest, ShutdownRejectsNewAndDrainsAdmitted) {
  ServerConfig config;
  config.workers = 2;
  MiningServer server(config);
  server.datasets().RegisterLoaded("quest", testing::SmallQuestDb());

  // A burst of admitted work, then an immediate shutdown: every admitted
  // future must still resolve ok (drain-first), and submits after the
  // shutdown are rejected with the typed status.
  std::vector<std::future<ServeResponse>> admitted;
  for (int i = 0; i < 6; ++i) {
    admitted.push_back(
        server.Submit(Request("a", "quest", MiningAlgorithm::kDD, 2)));
  }
  server.Shutdown();
  for (auto& f : admitted) {
    ServeResponse response = f.get();
    EXPECT_TRUE(response.ok()) << response.error;
  }
  ServeResponse late =
      server.Execute(Request("a", "quest", MiningAlgorithm::kSerial, 1));
  EXPECT_EQ(late.status, ServeStatus::kShuttingDown);
  EXPECT_EQ(server.pool().Available(), config.pool_ranks);
  EXPECT_EQ(server.pool().LeasesOutstanding(), 0);
  EXPECT_TRUE(server.pool().closed());
}

TEST(ServeTest, EmitsOneServeSpanPerExecutedRequest) {
  obs::TimelineSink sink;  // must outlive the server
  ServerConfig config;
  MiningServer server(config);
  server.AddTraceSink(&sink);
  server.datasets().RegisterLoaded("quest", testing::SmallQuestDb());

  EXPECT_TRUE(
      server.Execute(Request("a", "quest", MiningAlgorithm::kCD, 2)).ok());
  EXPECT_TRUE(
      server.Execute(Request("a", "quest", MiningAlgorithm::kSerial, 1))
          .ok());
  // Rejections never execute, so they must not produce a span.
  EXPECT_EQ(
      server.Execute(Request("a", "nope", MiningAlgorithm::kSerial, 1))
          .status,
      ServeStatus::kUnknownDataset);
  server.Shutdown();

  obs::Timeline timeline = sink.Take();
  ASSERT_EQ(timeline.size(), 2u);
  std::vector<std::int64_t> sequences;
  for (const obs::SpanRecord& span : timeline.spans) {
    EXPECT_EQ(span.kind, obs::SpanKind::kServeRequest);
    EXPECT_GT(span.dur_us, 0.0);
    sequences.push_back(span.index);
  }
  // Span index is the admission sequence number.
  std::sort(sequences.begin(), sequences.end());
  EXPECT_EQ(sequences, (std::vector<std::int64_t>{0, 1}));
}

}  // namespace
}  // namespace pam
