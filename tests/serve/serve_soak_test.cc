// Soak / chaos test for the MiningServer: a long-running server under a
// live multi-tenant mix that includes fault-injected requests — some with
// a recoverable transport fault schedule, some deliberately unrecoverable.
//
// The server must survive the whole mix: every ok response byte-identical
// to its solo reference, every unrecoverable run terminated with a typed
// kMiningFault response (never a crash, never silently wrong counts), and
// at shutdown every rank lease back in the pool with the admission
// counters balancing exactly.

#include <cstdint>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pam/mp/fault.h"
#include "pam/serve/server.h"
#include "testing/test_support.h"

namespace pam {
namespace {

using serve::MiningServer;
using serve::ServeResponse;
using serve::ServeStatus;
using serve::ServerConfig;
using serve::ServerStats;

/// One cell of a tenant's request loop.
struct SoakCell {
  const char* dataset;
  MiningAlgorithm algorithm;
  int ranks;
  double minsup;
  enum class Faults { kNone, kRecoverable, kUnrecoverable } faults;
};

MiningRequest SoakRequest(const std::string& tenant, const SoakCell& cell,
                          std::uint64_t fault_seed) {
  MiningRequest request;
  request.tenant = tenant;
  request.dataset = cell.dataset;
  request.algorithm = cell.algorithm;
  request.num_ranks = cell.ranks;
  request.config.apriori.minsup_fraction = cell.minsup;
  switch (cell.faults) {
    case SoakCell::Faults::kNone:
      break;
    case SoakCell::Faults::kRecoverable:
      // Modest mixed storm with a retransmit budget: the communicator
      // repairs everything and the result must stay exact.
      request.config.fault =
          FaultConfig::Mixed(0.02, fault_seed, /*max_retries=*/8);
      request.config.fault.recv_timeout_ms = 10000;
      break;
    case SoakCell::Faults::kUnrecoverable:
      // Heavy drops with no retransmit budget and a short receive
      // deadline: the run must die with CommError(kTimeout), which the
      // server converts to a typed kMiningFault response.
      request.config.fault = FaultConfig::Uniform(
          FaultKind::kDrop, 0.4, fault_seed, /*max_retries=*/0);
      request.config.fault.recv_timeout_ms = 300;
      break;
  }
  return request;
}

TEST(ServeSoakTest, SurvivesMultiTenantFaultMix) {
  const TransactionDatabase small = testing::SmallQuestDb();
  const TransactionDatabase tiny = testing::TinyQuestDb();

  // The per-tenant request loop: clean cells on the small dataset,
  // fault-injected cells on the tiny one (each chaos cell pays the
  // fault-injection overhead on every message, so it gets the cheaper
  // workload — same sizing logic as the chaos matrix).
  const SoakCell cells[] = {
      {"small", MiningAlgorithm::kSerial, 1, 0.02,
       SoakCell::Faults::kNone},
      {"small", MiningAlgorithm::kCD, 4, 0.02, SoakCell::Faults::kNone},
      {"tiny", MiningAlgorithm::kCD, 3, 0.03,
       SoakCell::Faults::kRecoverable},
      {"small", MiningAlgorithm::kHD, 4, 0.025, SoakCell::Faults::kNone},
      {"tiny", MiningAlgorithm::kDD, 3, 0.03,
       SoakCell::Faults::kRecoverable},
      {"tiny", MiningAlgorithm::kCD, 2, 0.03,
       SoakCell::Faults::kUnrecoverable},
      {"small", MiningAlgorithm::kIDD, 3, 0.02, SoakCell::Faults::kNone},
      {"tiny", MiningAlgorithm::kHPA, 2, 0.03,
       SoakCell::Faults::kRecoverable},
  };

  // Solo references per cell (fault-free equivalents: any cell that
  // completes — recoverable, or an unrecoverable one whose schedule got
  // lucky — must produce exactly the clean result).
  std::map<const SoakCell*, std::map<std::vector<Item>, Count>> references;
  for (const SoakCell& cell : cells) {
    MiningRequest clean = SoakRequest("ref", cell, /*fault_seed=*/0);
    clean.config.fault = FaultConfig();
    MiningSession solo;
    references[&cell] = testing::Flatten(
        solo.Run(clean, std::string(cell.dataset) == "small" ? small : tiny)
            .frequent);
  }

  ServerConfig config;
  config.pool_ranks = 8;
  config.workers = 4;
  config.max_queue = 256;
  MiningServer server(config);
  server.datasets().RegisterLoaded("small", TransactionDatabase(small));
  server.datasets().RegisterLoaded("tiny", TransactionDatabase(tiny));

  constexpr int kTenants = 4;
  constexpr int kRequestsPerTenant = 16;
  std::vector<int> ok_count(kTenants, 0);
  std::vector<int> fault_count(kTenants, 0);
  std::vector<int> wrong_count(kTenants, 0);
  std::vector<std::thread> tenants;
  for (int t = 0; t < kTenants; ++t) {
    tenants.emplace_back([&, t] {
      const std::string tenant = "tenant" + std::to_string(t);
      for (int i = 0; i < kRequestsPerTenant; ++i) {
        // Stagger tenants through the cell table; vary the fault seed so
        // the soak covers different schedules, deterministically.
        const SoakCell& cell =
            cells[static_cast<std::size_t>(t + i) % std::size(cells)];
        const std::uint64_t fault_seed =
            static_cast<std::uint64_t>(1000 + t * 100 + i);
        ServeResponse response =
            server.Execute(SoakRequest(tenant, cell, fault_seed));
        if (response.ok()) {
          ++ok_count[static_cast<std::size_t>(t)];
          if (testing::Flatten(response.report.frequent) !=
              references.at(&cell)) {
            ++wrong_count[static_cast<std::size_t>(t)];
          }
        } else if (response.status == ServeStatus::kMiningFault) {
          ++fault_count[static_cast<std::size_t>(t)];
          EXPECT_FALSE(response.error.empty());
        } else {
          ADD_FAILURE() << "unexpected status "
                        << serve::ServeStatusName(response.status) << ": "
                        << response.error;
        }
      }
    });
  }
  for (std::thread& t : tenants) t.join();

  int total_ok = 0, total_faults = 0, total_wrong = 0;
  for (int t = 0; t < kTenants; ++t) {
    total_ok += ok_count[static_cast<std::size_t>(t)];
    total_faults += fault_count[static_cast<std::size_t>(t)];
    total_wrong += wrong_count[static_cast<std::size_t>(t)];
  }
  constexpr int kTotal = kTenants * kRequestsPerTenant;
  // Every ok response was exact; every request resolved ok or typed-fault.
  EXPECT_EQ(total_wrong, 0);
  EXPECT_EQ(total_ok + total_faults, kTotal);
  // The mix guarantees unrecoverable cells ran, and that they are the
  // minority: the server spent the soak mostly serving, not failing.
  EXPECT_GT(total_faults, 0);
  EXPECT_GT(total_ok, total_faults);

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(stats.admitted, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(total_ok));
  EXPECT_EQ(stats.mining_faults, static_cast<std::uint64_t>(total_faults));
  EXPECT_EQ(stats.TotalRejected(), 0u);
  EXPECT_GT(stats.rank_seconds_charged, 0.0);

  // No leaked rank leases: the pool is whole again after the storm.
  server.Shutdown();
  EXPECT_EQ(server.pool().Available(), config.pool_ranks);
  EXPECT_EQ(server.pool().LeasesOutstanding(), 0);
  EXPECT_EQ(server.Stats().queue_depth, 0u);
}

}  // namespace
}  // namespace pam
