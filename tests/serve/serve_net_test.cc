// Wire protocol, network front-end, weighted fair queueing, and result
// cache suite (ctest label `serve`; runs under ASan and TSan in CI).
//
// Contracts under test (DESIGN.md §15):
//   - every frame type round-trips through encode/decode byte-exactly,
//     and the FrameReader reassembles arbitrarily fragmented streams;
//   - MiningRequest::CanonicalDigest is invariant to formulation and
//     spelling (algorithm/ranks/threads; defaults vs explicit defaults)
//     and sensitive to every result-affecting field;
//   - a loopback round trip through NetServer returns responses
//     byte-identical to solo MiningSession runs, for all six algorithms;
//   - protocol violations (wrong version, garbage bytes, frames before
//     hello) answer a typed kError and close; per-request refusals
//     (unknown tag, forbidden shutdown) leave the stream healthy;
//   - a half-closed client still receives every pending response;
//   - start-time fair queueing gives a weight-3 tenant ~3x the service
//     share of a weight-1 peer under saturation, with a starvation bound;
//   - a result-cache hit returns a byte-identical report without leasing
//     a rank, and the counter invariants extend to the new counters.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pam/serve/net_server.h"
#include "pam/serve/protocol.h"
#include "pam/serve/server.h"
#include "testing/test_support.h"

namespace pam {
namespace {

using serve::Command;
using serve::ErrorFrame;
using serve::FrameReader;
using serve::FrameType;
using serve::HelloAckFrame;
using serve::HelloFrame;
using serve::MineFrame;
using serve::MiningServer;
using serve::NetClient;
using serve::NetServer;
using serve::NetServerConfig;
using serve::ResponseFrame;
using serve::ServeResponse;
using serve::ServeStatus;
using serve::ServerConfig;
using serve::StatsResponseFrame;
using serve::WireError;

MiningRequest Request(const std::string& tenant, const std::string& dataset,
                      MiningAlgorithm algorithm, int ranks,
                      double minsup = 0.02) {
  MiningRequest request;
  request.tenant = tenant;
  request.dataset = dataset;
  request.algorithm = algorithm;
  request.num_ranks = ranks;
  request.config.apriori.minsup_fraction = minsup;
  return request;
}

// ---------------------------------------------------------------------------
// Frame round trips

TEST(ProtocolTest, HelloRoundTripAndNegotiation) {
  HelloFrame hello;
  const std::vector<std::byte> frame = serve::EncodeHello(hello);
  FrameReader reader;
  reader.Feed(frame);
  FrameType type;
  std::vector<std::byte> body;
  ASSERT_EQ(reader.Next(&type, &body), FrameReader::NextResult::kFrame);
  EXPECT_EQ(type, FrameType::kHello);
  Result<HelloFrame> decoded = serve::DecodeHello(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded.value().min_version, hello.min_version);
  EXPECT_EQ(decoded.value().max_version, hello.max_version);

  Result<serve::ProtocolVersion> version =
      serve::NegotiateVersion(decoded.value());
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(version.value(), serve::kMaxProtocolVersion);

  // A client from the future that still speaks v1 negotiates v1.
  HelloFrame future;
  future.min_version = 1;
  future.max_version = 40;
  Result<serve::ProtocolVersion> downgraded =
      serve::NegotiateVersion(future);
  ASSERT_TRUE(downgraded.ok());
  EXPECT_EQ(downgraded.value(), serve::ProtocolVersion::kV1);

  // Disjoint ranges and inverted ranges fail.
  HelloFrame disjoint;
  disjoint.min_version = 40;
  disjoint.max_version = 41;
  EXPECT_FALSE(serve::NegotiateVersion(disjoint).ok());
  HelloFrame inverted;
  inverted.min_version = 2;
  inverted.max_version = 1;
  EXPECT_FALSE(serve::NegotiateVersion(inverted).ok());
}

TEST(ProtocolTest, MineFrameRoundTripsEveryField) {
  MineFrame mine;
  mine.tag = 0xDEADBEEFCAFEull;
  mine.request = Request("acme", "retail", MiningAlgorithm::kHPA, 6, 0.031);
  mine.request.config.apriori.minsup_count = 17;
  mine.request.config.apriori.max_k = 5;
  mine.request.config.apriori.threads_per_rank = 3;
  mine.request.generate_rules = true;
  mine.request.min_confidence = 0.625;
  mine.request.deadline_ms = 1500.0;

  FrameReader reader;
  reader.Feed(serve::EncodeMine(mine));
  FrameType type;
  std::vector<std::byte> body;
  ASSERT_EQ(reader.Next(&type, &body), FrameReader::NextResult::kFrame);
  ASSERT_EQ(type, FrameType::kMine);
  Result<MineFrame> decoded = serve::DecodeMine(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  const MiningRequest& r = decoded.value().request;
  EXPECT_EQ(decoded.value().tag, mine.tag);
  EXPECT_EQ(r.tenant, "acme");
  EXPECT_EQ(r.dataset, "retail");
  EXPECT_EQ(r.algorithm, MiningAlgorithm::kHPA);
  EXPECT_EQ(r.num_ranks, 6);
  EXPECT_EQ(r.config.apriori.minsup_count, 17u);
  EXPECT_DOUBLE_EQ(r.config.apriori.minsup_fraction, 0.031);
  EXPECT_EQ(r.config.apriori.max_k, 5);
  EXPECT_EQ(r.config.apriori.threads_per_rank, 3);
  EXPECT_TRUE(r.generate_rules);
  EXPECT_DOUBLE_EQ(r.min_confidence, 0.625);
  EXPECT_DOUBLE_EQ(r.deadline_ms, 1500.0);
}

TEST(ProtocolTest, ResponseFrameRoundTripsItemsetsAndRules) {
  // Mine a real report so the frame carries non-trivial levels and rules.
  const TransactionDatabase db = testing::TinyQuestDb();
  MiningSession session;
  MiningRequest request = Request("t", "d", MiningAlgorithm::kSerial, 1);
  request.generate_rules = true;
  request.min_confidence = 0.3;
  ServeResponse response;
  response.report = session.Run(request, db);
  response.queue_seconds = 0.25;
  response.service_seconds = 1.5;
  response.from_result_cache = true;

  FrameReader reader;
  reader.Feed(serve::EncodeResponse(serve::ToResponseFrame(42, response)));
  FrameType type;
  std::vector<std::byte> body;
  ASSERT_EQ(reader.Next(&type, &body), FrameReader::NextResult::kFrame);
  ASSERT_EQ(type, FrameType::kResponse);
  Result<ResponseFrame> decoded = serve::DecodeResponse(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  ResponseFrame& frame = decoded.value();
  EXPECT_EQ(frame.tag, 42u);
  EXPECT_EQ(frame.status, ServeStatus::kOk);
  EXPECT_TRUE(frame.from_result_cache);
  EXPECT_DOUBLE_EQ(frame.queue_seconds, 0.25);
  EXPECT_DOUBLE_EQ(frame.service_seconds, 1.5);
  EXPECT_EQ(frame.minsup_count, response.report.minsup_count);
  // Byte-identity of the mining payload across the wire.
  EXPECT_EQ(testing::Flatten(frame.frequent),
            testing::Flatten(response.report.frequent));
  ASSERT_EQ(frame.rules.size(), response.report.rules.size());
  ASSERT_GT(frame.rules.size(), 0u) << "test wants a non-trivial rule set";
  for (std::size_t i = 0; i < frame.rules.size(); ++i) {
    EXPECT_EQ(frame.rules[i].antecedent, response.report.rules[i].antecedent);
    EXPECT_EQ(frame.rules[i].consequent, response.report.rules[i].consequent);
    EXPECT_EQ(frame.rules[i].joint_count, response.report.rules[i].joint_count);
    EXPECT_DOUBLE_EQ(frame.rules[i].confidence,
                     response.report.rules[i].confidence);
  }
}

TEST(ProtocolTest, StatsResponseRoundTripsEveryCounter) {
  StatsResponseFrame stats;
  stats.tag = 7;
  stats.stats.submitted = 101;
  stats.stats.admitted = 90;
  stats.stats.completed = 80;
  stats.stats.mining_faults = 4;
  stats.stats.cancelled = 3;
  stats.stats.deadline_exceeded = 3;
  stats.stats.expired_in_queue = 2;
  stats.stats.watchdog_fired = 1;
  stats.stats.rejected_queue_full = 5;
  stats.stats.rejected_tenant_in_flight = 2;
  stats.stats.rejected_tenant_budget = 1;
  stats.stats.rejected_unknown_dataset = 1;
  stats.stats.rejected_invalid = 1;
  stats.stats.rejected_shutdown = 1;
  stats.stats.cache_hits = 33;
  stats.stats.cache_misses = 4;
  stats.stats.cache_evictions = 2;
  stats.stats.result_hits = 21;
  stats.stats.result_misses = 59;
  stats.stats.result_evictions = 6;
  stats.stats.cache_resident_bytes = 1 << 20;
  stats.stats.result_resident_bytes = 4096;
  stats.stats.queue_depth = 3;
  stats.stats.peak_queue_depth = 11;
  stats.stats.leased_ranks = 6;
  stats.stats.rank_seconds_charged = 12.75;

  FrameReader reader;
  reader.Feed(serve::EncodeStatsResponse(stats));
  FrameType type;
  std::vector<std::byte> body;
  ASSERT_EQ(reader.Next(&type, &body), FrameReader::NextResult::kFrame);
  ASSERT_EQ(type, FrameType::kStatsResponse);
  Result<StatsResponseFrame> decoded = serve::DecodeStatsResponse(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  const serve::ServerStats& s = decoded.value().stats;
  EXPECT_EQ(decoded.value().tag, 7u);
  EXPECT_EQ(s.submitted, 101u);
  EXPECT_EQ(s.admitted, 90u);
  EXPECT_EQ(s.completed, 80u);
  EXPECT_EQ(s.mining_faults, 4u);
  EXPECT_EQ(s.cancelled, 3u);
  EXPECT_EQ(s.deadline_exceeded, 3u);
  EXPECT_EQ(s.expired_in_queue, 2u);
  EXPECT_EQ(s.watchdog_fired, 1u);
  EXPECT_EQ(s.TotalRejected(), 11u);
  EXPECT_EQ(s.cache_hits, 33u);
  EXPECT_EQ(s.cache_misses, 4u);
  EXPECT_EQ(s.cache_evictions, 2u);
  EXPECT_EQ(s.result_hits, 21u);
  EXPECT_EQ(s.result_misses, 59u);
  EXPECT_EQ(s.result_evictions, 6u);
  EXPECT_EQ(s.cache_resident_bytes, std::size_t{1} << 20);
  EXPECT_EQ(s.result_resident_bytes, 4096u);
  EXPECT_EQ(s.queue_depth, 3u);
  EXPECT_EQ(s.peak_queue_depth, 11u);
  EXPECT_EQ(s.leased_ranks, 6);
  EXPECT_DOUBLE_EQ(s.rank_seconds_charged, 12.75);
  // The wire invariant the audit satellite protects: the decoded snapshot
  // still satisfies submitted == admitted + SUM(rejections).
  EXPECT_EQ(s.submitted, s.admitted + s.TotalRejected());
}

TEST(ProtocolTest, ErrorFrameRoundTripAndCloseTable) {
  ErrorFrame error;
  error.error = WireError::kDuplicateTag;
  error.message = "tag 9 already in flight";
  FrameReader reader;
  reader.Feed(serve::EncodeError(error));
  FrameType type;
  std::vector<std::byte> body;
  ASSERT_EQ(reader.Next(&type, &body), FrameReader::NextResult::kFrame);
  ASSERT_EQ(type, FrameType::kError);
  Result<ErrorFrame> decoded = serve::DecodeError(body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().error, WireError::kDuplicateTag);
  EXPECT_EQ(decoded.value().message, "tag 9 already in flight");

  // Framing-lost errors close; per-request refusals do not.
  EXPECT_TRUE(serve::WireErrorClosesConnection(WireError::kVersionMismatch));
  EXPECT_TRUE(serve::WireErrorClosesConnection(WireError::kMalformedFrame));
  EXPECT_TRUE(serve::WireErrorClosesConnection(WireError::kFrameTooLarge));
  EXPECT_TRUE(serve::WireErrorClosesConnection(WireError::kUnexpectedFrame));
  EXPECT_FALSE(serve::WireErrorClosesConnection(WireError::kDuplicateTag));
  EXPECT_FALSE(serve::WireErrorClosesConnection(WireError::kUnknownTag));
  EXPECT_FALSE(
      serve::WireErrorClosesConnection(WireError::kShutdownForbidden));
}

TEST(ProtocolTest, FrameReaderReassemblesByteAtATime) {
  // Three frames, delivered one byte at a time: the reader must yield
  // exactly those frames in order regardless of fragmentation.
  std::vector<std::byte> stream;
  for (const std::vector<std::byte>& f :
       {serve::EncodeHello(HelloFrame{}),
        serve::EncodeCancel(serve::CancelFrame{99}),
        serve::EncodeShutdown()}) {
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameReader reader;
  std::vector<FrameType> types;
  FrameType type;
  std::vector<std::byte> body;
  for (const std::byte b : stream) {
    reader.Feed(std::span<const std::byte>(&b, 1));
    while (reader.Next(&type, &body) == FrameReader::NextResult::kFrame) {
      types.push_back(type);
    }
  }
  EXPECT_EQ(types, (std::vector<FrameType>{FrameType::kHello,
                                           FrameType::kCancel,
                                           FrameType::kShutdown}));
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(ProtocolTest, FrameReaderRejectsOversizeAndUnknownType) {
  {
    FrameReader reader(/*max_frame_bytes=*/64);
    // Length prefix claiming 1 MiB against a 64-byte limit.
    const std::uint32_t huge = 1 << 20;
    std::byte header[5] = {};
    std::memcpy(header, &huge, 4);
    header[4] = std::byte{static_cast<unsigned char>(FrameType::kMine)};
    reader.Feed(header);
    FrameType type;
    std::vector<std::byte> body;
    EXPECT_EQ(reader.Next(&type, &body), FrameReader::NextResult::kError);
    EXPECT_NE(reader.error().find("exceeds"), std::string::npos);
  }
  {
    FrameReader reader;
    const std::uint32_t len = 0;
    std::byte header[5] = {};
    std::memcpy(header, &len, 4);
    header[4] = std::byte{200};  // no such frame type
    reader.Feed(header);
    FrameType type;
    std::vector<std::byte> body;
    EXPECT_EQ(reader.Next(&type, &body), FrameReader::NextResult::kError);
  }
}

TEST(ProtocolTest, DecodersRejectTruncatedBodies) {
  MineFrame mine;
  mine.tag = 5;
  mine.request = Request("t", "d", MiningAlgorithm::kCD, 2);
  const std::vector<std::byte> frame = serve::EncodeMine(mine);
  // Strip the 5-byte header; truncate the body at every length. No prefix
  // may decode (or crash) — the decoder must fail with a Status.
  const std::span<const std::byte> body(frame.data() + 5, frame.size() - 5);
  for (std::size_t n = 0; n < body.size(); ++n) {
    EXPECT_FALSE(serve::DecodeMine(body.first(n)).ok()) << "prefix " << n;
  }
  // Trailing garbage is rejected too.
  std::vector<std::byte> padded(body.begin(), body.end());
  padded.push_back(std::byte{1});
  EXPECT_FALSE(serve::DecodeMine(padded).ok());
}

// ---------------------------------------------------------------------------
// Line protocol (the scripting surface shared by pam_serve and pam_client)

TEST(ProtocolTest, ParseCommandLineVerbsAndDefaults) {
  Result<Command> mine = serve::ParseCommandLine(
      "mine id=r1 tenant=acme dataset=web algorithm=hd ranks=4 minsup=2 "
      "minconf=30 rules threads=2 max-k=3 deadline-ms=500");
  ASSERT_TRUE(mine.ok()) << mine.status().message();
  EXPECT_EQ(mine.value().verb, Command::Verb::kMine);
  EXPECT_EQ(mine.value().id, "r1");
  const MiningRequest& r = mine.value().request;
  EXPECT_EQ(r.tenant, "acme");
  EXPECT_EQ(r.dataset, "web");
  EXPECT_EQ(r.algorithm, MiningAlgorithm::kHD);
  EXPECT_EQ(r.num_ranks, 4);
  EXPECT_DOUBLE_EQ(r.config.apriori.minsup_fraction, 0.02);
  EXPECT_TRUE(r.generate_rules);
  EXPECT_DOUBLE_EQ(r.min_confidence, 0.30);
  EXPECT_EQ(r.config.apriori.threads_per_rank, 2);
  EXPECT_EQ(r.config.apriori.max_k, 3);
  EXPECT_DOUBLE_EQ(r.deadline_ms, 500.0);

  Result<Command> cancel = serve::ParseCommandLine("cancel r1");
  ASSERT_TRUE(cancel.ok());
  EXPECT_EQ(cancel.value().verb, Command::Verb::kCancel);
  EXPECT_EQ(cancel.value().id, "r1");

  ASSERT_TRUE(serve::ParseCommandLine("stats").ok());
  ASSERT_TRUE(serve::ParseCommandLine("shutdown").ok());
  // Blank and comment lines are no-ops, not errors.
  EXPECT_EQ(serve::ParseCommandLine("").value().verb, Command::Verb::kNone);
  EXPECT_EQ(serve::ParseCommandLine("  # note").value().verb,
            Command::Verb::kNone);
  // Unknown verbs, algorithms, and keys are typed failures.
  EXPECT_FALSE(serve::ParseCommandLine("mien id=x").ok());
  EXPECT_FALSE(
      serve::ParseCommandLine("mine id=x dataset=d algorithm=zz").ok());
  EXPECT_FALSE(
      serve::ParseCommandLine("mine id=x dataset=d minsupp=2").ok());
}

// ---------------------------------------------------------------------------
// CanonicalDigest

TEST(CanonicalDigestTest, InvariantToFormulationKnobs) {
  // Every formulation of the same mining problem computes byte-identical
  // results, so the digest must ignore algorithm/rank/thread spelling.
  MiningRequest base = Request("a", "d", MiningAlgorithm::kSerial, 1, 0.02);
  const std::uint64_t digest = base.CanonicalDigest();
  for (const MiningAlgorithm algorithm :
       {MiningAlgorithm::kCD, MiningAlgorithm::kDD, MiningAlgorithm::kDDComm,
        MiningAlgorithm::kIDD, MiningAlgorithm::kHD, MiningAlgorithm::kHPA}) {
    MiningRequest other = Request("b", "e", algorithm, 7, 0.02);
    other.config.apriori.threads_per_rank = 4;
    other.deadline_ms = 250;
    EXPECT_EQ(other.CanonicalDigest(), digest)
        << MiningAlgorithmName(algorithm);
  }
}

TEST(CanonicalDigestTest, ExplicitDefaultCollidesWithImplicitDefault) {
  // Spelling a field at its default must hash like omitting it — the
  // classic cache-miss bug when a digest hashes raw struct bytes.
  MiningRequest implicit_default =
      Request("a", "d", MiningAlgorithm::kSerial, 1);
  MiningRequest explicit_default =
      Request("a", "d", MiningAlgorithm::kSerial, 1);
  explicit_default.config.apriori.minsup_fraction = 0.02;  // == default arg
  explicit_default.min_confidence = 0.5;  // default, rules off: ignored
  EXPECT_EQ(implicit_default.CanonicalDigest(),
            explicit_default.CanonicalDigest());

  // minsup precedence: when the explicit count is set, the fraction is
  // dead config (ResolveMinsup never reads it) — digests must agree.
  MiningRequest count_a = Request("a", "d", MiningAlgorithm::kSerial, 1);
  count_a.config.apriori.minsup_count = 25;
  count_a.config.apriori.minsup_fraction = 0.02;
  MiningRequest count_b = Request("a", "d", MiningAlgorithm::kSerial, 1);
  count_b.config.apriori.minsup_count = 25;
  count_b.config.apriori.minsup_fraction = 0.9;
  EXPECT_EQ(count_a.CanonicalDigest(), count_b.CanonicalDigest());

  // min_confidence only matters once rules are requested.
  MiningRequest conf_a = Request("a", "d", MiningAlgorithm::kSerial, 1);
  conf_a.min_confidence = 0.3;
  MiningRequest conf_b = Request("a", "d", MiningAlgorithm::kSerial, 1);
  conf_b.min_confidence = 0.7;
  EXPECT_EQ(conf_a.CanonicalDigest(), conf_b.CanonicalDigest());
  conf_a.generate_rules = true;
  conf_b.generate_rules = true;
  EXPECT_NE(conf_a.CanonicalDigest(), conf_b.CanonicalDigest());
}

TEST(CanonicalDigestTest, SensitiveToResultAffectingFields) {
  const MiningRequest base = Request("a", "d", MiningAlgorithm::kSerial, 1);
  const std::uint64_t digest = base.CanonicalDigest();

  MiningRequest minsup = base;
  minsup.config.apriori.minsup_fraction = 0.05;
  EXPECT_NE(minsup.CanonicalDigest(), digest);

  MiningRequest count = base;
  count.config.apriori.minsup_count = 3;
  EXPECT_NE(count.CanonicalDigest(), digest);

  MiningRequest max_k = base;
  max_k.config.apriori.max_k = 2;
  EXPECT_NE(max_k.CanonicalDigest(), digest);

  MiningRequest rules = base;
  rules.generate_rules = true;
  EXPECT_NE(rules.CanonicalDigest(), digest);
}

// ---------------------------------------------------------------------------
// Loopback round trips

/// A raw TCP client for protocol-violation tests: speaks bytes, not the
/// protocol, so it can impersonate broken or hostile peers.
class RawClient {
 public:
  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }
  bool Send(std::span<const std::byte> bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }
  /// Reads until EOF; returns everything the server sent.
  std::vector<std::byte> RecvAll() {
    std::vector<std::byte> all;
    std::byte buf[4096];
    ssize_t n;
    while ((n = ::recv(fd_, buf, sizeof(buf), 0)) > 0) {
      all.insert(all.end(), buf, buf + n);
    }
    return all;
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

 private:
  int fd_ = -1;
};

/// Decodes the single kError frame a violation test expects back.
ErrorFrame ExpectErrorFrame(const std::vector<std::byte>& bytes) {
  FrameReader reader;
  reader.Feed(bytes);
  FrameType type = FrameType::kHello;
  std::vector<std::byte> body;
  EXPECT_EQ(reader.Next(&type, &body), FrameReader::NextResult::kFrame);
  EXPECT_EQ(type, FrameType::kError);
  Result<ErrorFrame> decoded = serve::DecodeError(body);
  EXPECT_TRUE(decoded.ok());
  return decoded.ok() ? decoded.value() : ErrorFrame{};
}

/// A NetServer over a fresh MiningServer with the quest dataset loaded.
struct LoopbackHarness {
  explicit LoopbackHarness(ServerConfig config = {},
                           NetServerConfig net_config = {})
      : server(config), net(&server, net_config) {
    server.datasets().RegisterLoaded(
        "quest", TransactionDatabase(testing::SmallQuestDb()));
    const Status status = net.Start();
    EXPECT_TRUE(status.ok()) << status.message();
  }
  ~LoopbackHarness() {
    server.Shutdown();
    net.Stop();
  }

  MiningServer server;
  NetServer net;
};

TEST(NetServeTest, LoopbackAllAlgorithmsMatchSolo) {
  const TransactionDatabase db = testing::SmallQuestDb();
  LoopbackHarness harness;

  NetClient client;
  const Status connected = client.Connect("127.0.0.1", harness.net.port());
  ASSERT_TRUE(connected.ok()) << connected.message();
  EXPECT_EQ(client.version(), serve::ProtocolVersion::kV1);

  const struct {
    MiningAlgorithm algorithm;
    int ranks;
  } mix[] = {
      {MiningAlgorithm::kSerial, 1}, {MiningAlgorithm::kCD, 4},
      {MiningAlgorithm::kDD, 3},     {MiningAlgorithm::kIDD, 4},
      {MiningAlgorithm::kHD, 4},     {MiningAlgorithm::kHPA, 3},
  };

  // Pipeline all six, then collect by tag: WFQ may complete them in any
  // order, and the wire must carry each one back byte-identical.
  for (std::size_t i = 0; i < std::size(mix); ++i) {
    MiningRequest request =
        Request("net", "quest", mix[i].algorithm, mix[i].ranks);
    request.generate_rules = true;
    request.min_confidence = 0.3;
    ASSERT_TRUE(client.SendMine(i + 1, request).ok());
  }
  std::map<std::uint64_t, ResponseFrame> responses;
  for (std::size_t i = 0; i < std::size(mix); ++i) {
    Result<NetClient::ServerFrame> frame = client.Recv();
    ASSERT_TRUE(frame.ok()) << frame.status().message();
    ASSERT_EQ(frame.value().type, FrameType::kResponse);
    const std::uint64_t tag = frame.value().response.tag;
    responses[tag] = std::move(frame.value().response);
  }
  ASSERT_EQ(responses.size(), std::size(mix));

  for (std::size_t i = 0; i < std::size(mix); ++i) {
    MiningRequest solo_request =
        Request("solo", "quest", mix[i].algorithm, mix[i].ranks);
    solo_request.generate_rules = true;
    solo_request.min_confidence = 0.3;
    MiningSession solo;
    const MiningReport reference = solo.Run(solo_request, db);

    const ResponseFrame& response = responses.at(i + 1);
    EXPECT_EQ(response.status, ServeStatus::kOk)
        << MiningAlgorithmName(mix[i].algorithm) << ": " << response.error;
    EXPECT_EQ(testing::Flatten(response.frequent),
              testing::Flatten(reference.frequent))
        << MiningAlgorithmName(mix[i].algorithm);
    EXPECT_EQ(response.rules.size(), reference.rules.size());
    EXPECT_EQ(response.minsup_count, reference.minsup_count);
  }

  // A stats poll over the same connection sees the six completions.
  ASSERT_TRUE(client.SendStats(100).ok());
  Result<NetClient::ServerFrame> stats = client.Recv();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().type, FrameType::kStatsResponse);
  EXPECT_EQ(stats.value().stats.tag, 100u);
  EXPECT_EQ(stats.value().stats.stats.completed, std::size(mix));
  EXPECT_EQ(stats.value().stats.stats.submitted,
            stats.value().stats.stats.admitted +
                stats.value().stats.stats.TotalRejected());
  EXPECT_EQ(harness.net.ConnectionsAccepted(), 1u);
}

TEST(NetServeTest, VersionMismatchAnswersTypedErrorAndCloses) {
  LoopbackHarness harness;
  RawClient raw;
  ASSERT_TRUE(raw.Connect(harness.net.port()));
  HelloFrame hello;
  hello.min_version = 99;
  hello.max_version = 120;
  ASSERT_TRUE(raw.Send(serve::EncodeHello(hello)));
  // The server answers one kError{kVersionMismatch} and closes (RecvAll
  // returning means EOF arrived).
  const ErrorFrame error = ExpectErrorFrame(raw.RecvAll());
  EXPECT_EQ(error.error, WireError::kVersionMismatch);
}

TEST(NetServeTest, GarbageConnectionAnswersTypedErrorAndCloses) {
  LoopbackHarness harness;
  RawClient raw;
  ASSERT_TRUE(raw.Connect(harness.net.port()));
  const char garbage[] = "GET / HTTP/1.0\r\n\r\n";
  ASSERT_TRUE(raw.Send(std::as_bytes(std::span(garbage))));
  // "GET " reads as a ~1.2 GB length prefix: framing is lost, the server
  // answers a typed error and closes without buffering the claimed body.
  const ErrorFrame error = ExpectErrorFrame(raw.RecvAll());
  EXPECT_EQ(error.error, WireError::kFrameTooLarge);
}

TEST(NetServeTest, MineBeforeHelloIsUnexpectedFrame) {
  LoopbackHarness harness;
  RawClient raw;
  ASSERT_TRUE(raw.Connect(harness.net.port()));
  MineFrame mine;
  mine.tag = 1;
  mine.request = Request("t", "quest", MiningAlgorithm::kSerial, 1);
  ASSERT_TRUE(raw.Send(serve::EncodeMine(mine)));
  const ErrorFrame error = ExpectErrorFrame(raw.RecvAll());
  EXPECT_EQ(error.error, WireError::kUnexpectedFrame);
}

TEST(NetServeTest, HalfClosedClientStillReceivesResponses) {
  LoopbackHarness harness;
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.net.port()).ok());
  ASSERT_TRUE(
      client.SendMine(1, Request("t", "quest", MiningAlgorithm::kHD, 4))
          .ok());
  // EOF the request direction before the response exists: the server must
  // hold the connection until the pending response flushes.
  client.CloseWrite();
  Result<NetClient::ServerFrame> frame = client.Recv();
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  ASSERT_EQ(frame.value().type, FrameType::kResponse);
  EXPECT_EQ(frame.value().response.status, ServeStatus::kOk);
  // ... then closes: the next read is EOF, not a hang.
  EXPECT_FALSE(client.Recv().ok());
}

TEST(NetServeTest, PerRequestRefusalsKeepStreamHealthy) {
  LoopbackHarness harness;  // allow_shutdown defaults to false
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.net.port()).ok());

  // Cancel of a tag never submitted: typed refusal.
  ASSERT_TRUE(client.SendCancel(404).ok());
  Result<NetClient::ServerFrame> frame = client.Recv();
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame.value().type, FrameType::kError);
  EXPECT_EQ(frame.value().error.error, WireError::kUnknownTag);

  // Shutdown without --allow-shutdown: typed refusal.
  ASSERT_TRUE(client.SendShutdown().ok());
  frame = client.Recv();
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame.value().type, FrameType::kError);
  EXPECT_EQ(frame.value().error.error, WireError::kShutdownForbidden);

  // The stream survived both refusals: a real request still works.
  ASSERT_TRUE(
      client.SendMine(1, Request("t", "quest", MiningAlgorithm::kSerial, 1))
          .ok());
  frame = client.Recv();
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame.value().type, FrameType::kResponse);
  EXPECT_EQ(frame.value().response.status, ServeStatus::kOk);
}

TEST(NetServeTest, DuplicateTagRefusedWhileOriginalInFlight) {
  ServerConfig config;
  config.workers = 1;
  LoopbackHarness harness(config);
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.net.port()).ok());
  ASSERT_TRUE(
      client.SendMine(7, Request("t", "quest", MiningAlgorithm::kCD, 4))
          .ok());
  ASSERT_TRUE(
      client.SendMine(7, Request("t", "quest", MiningAlgorithm::kCD, 4))
          .ok());
  // First frame back is the duplicate-tag refusal (the original is still
  // mining); then the original's response arrives normally.
  Result<NetClient::ServerFrame> frame = client.Recv();
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame.value().type, FrameType::kError);
  EXPECT_EQ(frame.value().error.error, WireError::kDuplicateTag);
  frame = client.Recv();
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame.value().type, FrameType::kResponse);
  EXPECT_EQ(frame.value().response.tag, 7u);
  EXPECT_EQ(frame.value().response.status, ServeStatus::kOk);
}

TEST(NetServeTest, RemoteShutdownDrainsWhenAllowed) {
  ServerConfig config;
  NetServerConfig net_config;
  net_config.allow_shutdown = true;
  auto harness = std::make_unique<LoopbackHarness>(config, net_config);
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness->net.port()).ok());
  ASSERT_TRUE(
      client.SendMine(1, Request("t", "quest", MiningAlgorithm::kSerial, 1))
          .ok());
  ASSERT_TRUE(client.SendShutdown().ok());

  // The daemon main-loop contract: wait, drain, stop. The in-flight
  // request completes and its response reaches the client.
  std::thread daemon([&] {
    EXPECT_TRUE(harness->net.WaitForShutdownRequest());
    harness->server.Shutdown();
    harness->net.Stop();
  });
  Result<NetClient::ServerFrame> frame = client.Recv();
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  ASSERT_EQ(frame.value().type, FrameType::kResponse);
  EXPECT_EQ(frame.value().response.status, ServeStatus::kOk);
  daemon.join();
  harness.reset();
}

// ---------------------------------------------------------------------------
// Weighted fair queueing

TEST(WfqTest, ServiceSharesTrackWeightsUnderSaturation) {
  // One worker, hold it on a gated dataset load, then queue 12 equal-cost
  // jobs each for a weight-3 and a weight-1 tenant. SFQ dispatch order is
  // then fully deterministic: the heavy tenant's virtual clock advances
  // 1/3 as fast, so it receives ~3 completions per light completion.
  ServerConfig config;
  config.pool_ranks = 2;
  config.workers = 1;
  config.max_queue = 64;
  config.tenant_quotas["heavy"].weight = 3.0;
  config.tenant_quotas["light"].weight = 1.0;
  MiningServer server(config);
  server.datasets().RegisterLoaded(
      "quest", TransactionDatabase(testing::TinyQuestDb()));

  // The primer job blocks inside its dataset load until the gate opens,
  // holding the single worker while both tenants' backlogs queue up.
  auto gate = std::make_shared<std::promise<void>>();
  auto opened = std::make_shared<std::shared_future<void>>(
      gate->get_future().share());
  server.datasets().Register(
      "gated", [opened]() -> Result<TransactionDatabase> {
        opened->wait();
        return testing::TinyQuestDb();
      });
  std::future<ServeResponse> primer =
      server.Submit(Request("primer", "gated", MiningAlgorithm::kSerial, 1));

  std::mutex mu;
  std::vector<std::string> completion_order;
  constexpr int kJobsPerTenant = 12;
  for (int i = 0; i < kJobsPerTenant; ++i) {
    for (const char* tenant : {"heavy", "light"}) {
      server.SubmitWith(
          Request(tenant, "quest", MiningAlgorithm::kSerial, 1),
          [&mu, &completion_order, tenant](ServeResponse response) {
            EXPECT_EQ(response.status, ServeStatus::kOk);
            std::lock_guard<std::mutex> lock(mu);
            completion_order.emplace_back(tenant);
          });
    }
  }

  gate->set_value();
  EXPECT_EQ(primer.get().status, ServeStatus::kOk);
  server.Shutdown();
  ASSERT_EQ(completion_order.size(), 2u * kJobsPerTenant);

  // Early-window share: among the first 8 completions the heavy tenant
  // must hold >= 2.5x the light tenant's share (exact SFQ gives 6:2).
  constexpr std::size_t kWindow = 8;
  const auto heavy_in_window = static_cast<double>(
      std::count(completion_order.begin(),
                 completion_order.begin() + kWindow, "heavy"));
  const double light_in_window = kWindow - heavy_in_window;
  ASSERT_GT(light_in_window, 0.0) << "starved light tenant";
  EXPECT_GE(heavy_in_window / light_in_window, 2.5);

  // Starvation bound: the light tenant's k-th completion arrives within
  // (weight_ratio + 1) * (k + 1) total completions — SFQ admits at most
  // ~3 heavy jobs between consecutive light dispatches.
  std::size_t light_seen = 0;
  for (std::size_t i = 0; i < completion_order.size(); ++i) {
    if (completion_order[i] == "light") {
      EXPECT_LE(i + 1, 4 * (light_seen + 1) + 1)
          << "light completion " << light_seen << " delayed to slot " << i;
      ++light_seen;
    }
  }
  EXPECT_EQ(light_seen, kJobsPerTenant);

  // Post-drain invariants, extended per-tenant: dispatched sums to
  // admitted, and rank-second charges reproduce the global counter.
  const serve::ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, stats.admitted + stats.TotalRejected());
  const serve::TenantUsage heavy = server.UsageFor("heavy");
  const serve::TenantUsage light = server.UsageFor("light");
  const serve::TenantUsage primer_usage = server.UsageFor("primer");
  EXPECT_EQ(heavy.dispatched + light.dispatched + primer_usage.dispatched,
            stats.admitted);
  EXPECT_EQ(heavy.dispatched, static_cast<std::uint64_t>(kJobsPerTenant));
  EXPECT_NEAR(heavy.rank_seconds + light.rank_seconds +
                  primer_usage.rank_seconds,
              stats.rank_seconds_charged, 1e-9);
}

TEST(WfqTest, EqualWeightsInterleaveFairly) {
  // Control: with equal weights the same setup alternates tenants, so
  // neither ever leads by more than one completed job.
  ServerConfig config;
  config.pool_ranks = 2;
  config.workers = 1;
  config.max_queue = 64;
  MiningServer server(config);
  server.datasets().RegisterLoaded(
      "quest", TransactionDatabase(testing::TinyQuestDb()));
  auto gate = std::make_shared<std::promise<void>>();
  auto opened = std::make_shared<std::shared_future<void>>(
      gate->get_future().share());
  server.datasets().Register(
      "gated", [opened]() -> Result<TransactionDatabase> {
        opened->wait();
        return testing::TinyQuestDb();
      });
  std::future<ServeResponse> primer =
      server.Submit(Request("primer", "gated", MiningAlgorithm::kSerial, 1));

  std::mutex mu;
  std::vector<std::string> completion_order;
  for (int i = 0; i < 8; ++i) {
    for (const char* tenant : {"a", "b"}) {
      server.SubmitWith(
          Request(tenant, "quest", MiningAlgorithm::kSerial, 1),
          [&mu, &completion_order, tenant](ServeResponse response) {
            EXPECT_EQ(response.status, ServeStatus::kOk);
            std::lock_guard<std::mutex> lock(mu);
            completion_order.emplace_back(tenant);
          });
    }
  }
  gate->set_value();
  primer.get();
  server.Shutdown();

  int lead = 0;
  for (const std::string& tenant : completion_order) {
    lead += tenant == "a" ? 1 : -1;
    EXPECT_LE(std::abs(lead), 1);
  }
}

// ---------------------------------------------------------------------------
// Result cache

TEST(ResultCacheTest, HitIsByteIdenticalAndLeasesNoRank) {
  ServerConfig config;
  config.result_cache = true;
  MiningServer server(config);
  server.datasets().RegisterLoaded(
      "quest", TransactionDatabase(testing::SmallQuestDb()));

  MiningRequest cold = Request("acme", "quest", MiningAlgorithm::kHD, 4);
  cold.generate_rules = true;
  cold.min_confidence = 0.3;
  const ServeResponse cold_response = server.Execute(std::move(cold));
  ASSERT_EQ(cold_response.status, ServeStatus::kOk);
  EXPECT_FALSE(cold_response.from_result_cache);
  const std::uint64_t leases_after_cold = server.pool().LeasesGranted();

  // Same mining problem, different tenant AND different formulation: the
  // canonical digest normalizes both away, so this must hit.
  MiningRequest hot = Request("globex", "quest", MiningAlgorithm::kSerial, 1);
  hot.generate_rules = true;
  hot.min_confidence = 0.3;
  const ServeResponse hot_response = server.Execute(std::move(hot));
  ASSERT_EQ(hot_response.status, ServeStatus::kOk);
  EXPECT_TRUE(hot_response.from_result_cache);

  // Byte-identity with the cold run's report.
  EXPECT_EQ(testing::Flatten(hot_response.report.frequent),
            testing::Flatten(cold_response.report.frequent));
  ASSERT_EQ(hot_response.report.rules.size(),
            cold_response.report.rules.size());
  EXPECT_EQ(hot_response.report.minsup_count,
            cold_response.report.minsup_count);

  // Zero machine cost: no new rank lease, no tenant charge.
  EXPECT_EQ(server.pool().LeasesGranted(), leases_after_cold);
  EXPECT_DOUBLE_EQ(server.UsageFor("globex").rank_seconds, 0.0);

  server.Shutdown();
  const serve::ServerStats stats = server.Stats();
  EXPECT_EQ(stats.result_hits, 1u);
  EXPECT_EQ(stats.result_misses, 1u);
  EXPECT_GT(stats.result_resident_bytes, 0u);
  // A hit is still an admitted, completed, dispatched request — every
  // Submit early-return path must keep the ledger balanced.
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.submitted, stats.admitted + stats.TotalRejected());
  EXPECT_EQ(server.UsageFor("acme").dispatched +
                server.UsageFor("globex").dispatched,
            stats.admitted);
}

TEST(ResultCacheTest, DisabledByDefaultAndDistinctProblemsMiss) {
  MiningServer server{ServerConfig{}};
  server.datasets().RegisterLoaded(
      "quest", TransactionDatabase(testing::TinyQuestDb()));
  const ServeResponse first =
      server.Execute(Request("t", "quest", MiningAlgorithm::kSerial, 1));
  const ServeResponse second =
      server.Execute(Request("t", "quest", MiningAlgorithm::kSerial, 1));
  ASSERT_EQ(first.status, ServeStatus::kOk);
  ASSERT_EQ(second.status, ServeStatus::kOk);
  EXPECT_FALSE(second.from_result_cache);
  server.Shutdown();
  EXPECT_EQ(server.Stats().result_hits, 0u);
  EXPECT_EQ(server.Stats().result_misses, 0u);
}

TEST(ResultCacheTest, DifferentMinsupMisses) {
  ServerConfig config;
  config.result_cache = true;
  MiningServer server(config);
  server.datasets().RegisterLoaded(
      "quest", TransactionDatabase(testing::TinyQuestDb()));

  const ServeResponse a = server.Execute(
      Request("t", "quest", MiningAlgorithm::kSerial, 1, 0.02));
  const ServeResponse b = server.Execute(
      Request("t", "quest", MiningAlgorithm::kSerial, 1, 0.05));
  ASSERT_EQ(a.status, ServeStatus::kOk);
  ASSERT_EQ(b.status, ServeStatus::kOk);
  EXPECT_FALSE(b.from_result_cache);
  server.Shutdown();
  EXPECT_EQ(server.Stats().result_hits, 0u);
  EXPECT_EQ(server.Stats().result_misses, 2u);
}

TEST(ResultCacheTest, NetResponsesByteIdenticalAcrossHit) {
  // End to end: the same request twice over TCP; the second is served
  // from the cache and its wire payload must match the first exactly.
  ServerConfig config;
  config.result_cache = true;
  LoopbackHarness harness(config);
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.net.port()).ok());

  MiningRequest request = Request("t", "quest", MiningAlgorithm::kCD, 4);
  request.generate_rules = true;
  request.min_confidence = 0.3;
  ASSERT_TRUE(client.SendMine(1, request).ok());
  Result<NetClient::ServerFrame> first = client.Recv();
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().type, FrameType::kResponse);
  ASSERT_EQ(first.value().response.status, ServeStatus::kOk);
  EXPECT_FALSE(first.value().response.from_result_cache);

  ASSERT_TRUE(client.SendMine(2, request).ok());
  Result<NetClient::ServerFrame> second = client.Recv();
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value().type, FrameType::kResponse);
  ASSERT_EQ(second.value().response.status, ServeStatus::kOk);
  EXPECT_TRUE(second.value().response.from_result_cache);
  EXPECT_EQ(testing::Flatten(second.value().response.frequent),
            testing::Flatten(first.value().response.frequent));
  EXPECT_EQ(second.value().response.rules.size(),
            first.value().response.rules.size());
  EXPECT_EQ(second.value().response.minsup_count,
            first.value().response.minsup_count);
}

}  // namespace
}  // namespace pam
