#ifndef PAM_UTIL_STATUS_H_
#define PAM_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace pam {

/// Minimal error type for fallible operations (mostly I/O). The library does
/// not use exceptions; functions that can fail return `Status` or
/// `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status with a human readable message.
  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  /// Constructs an OK status (same as the default constructor; spelled out
  /// for readability at call sites).
  static Status Ok() { return Status(); }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

/// A value-or-error holder, a small stand-in for absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return my_db;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value access. Must only be called when `ok()`.
  T& value() { return value_; }
  const T& value() const { return value_; }
  T* operator->() { return &value_; }
  const T* operator->() const { return &value_; }

 private:
  T value_{};
  Status status_;
};

}  // namespace pam

#endif  // PAM_UTIL_STATUS_H_
