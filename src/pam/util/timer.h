#ifndef PAM_UTIL_TIMER_H_
#define PAM_UTIL_TIMER_H_

#include <chrono>

namespace pam {

/// Simple wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pam

#endif  // PAM_UTIL_TIMER_H_
