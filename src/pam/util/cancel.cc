#include "pam/util/cancel.h"

#include <algorithm>

namespace pam {
namespace {

std::int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             CancelToken::Clock::now().time_since_epoch())
      .count();
}

std::int64_t ToUs(CancelToken::Clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             tp.time_since_epoch())
      .count();
}

}  // namespace

const char* CancelReasonName(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kDeadline:
      return "deadline";
    case CancelReason::kCancelled:
      return "cancelled";
    case CancelReason::kWatchdog:
      return "watchdog";
  }
  return "?";
}

CancelledError::CancelledError(CancelReason reason, int rank,
                               const std::string& detail)
    : std::runtime_error("run " + std::string(CancelReasonName(reason)) +
                         " at rank " + std::to_string(rank) + ": " + detail),
      reason_(reason),
      rank_(rank) {}

CancelToken CancelToken::Create() {
  auto state = std::make_shared<State>();
  state->last_beat_us.store(NowUs(), std::memory_order_relaxed);
  return CancelToken(std::move(state));
}

CancelToken CancelToken::WithDeadline(Clock::time_point deadline) {
  CancelToken token = Create();
  token.ArmDeadline(deadline);
  return token;
}

CancelToken CancelToken::AfterMs(double ms) {
  return WithDeadline(Clock::now() +
                      std::chrono::microseconds(
                          static_cast<std::int64_t>(ms * 1000.0)));
}

bool CancelToken::has_deadline() const {
  return state_ != nullptr &&
         state_->deadline_us.load(std::memory_order_relaxed) !=
             std::numeric_limits<std::int64_t>::max();
}

void CancelToken::ArmDeadline(Clock::time_point deadline) {
  if (state_ == nullptr) return;
  const std::int64_t us = ToUs(deadline);
  // Deadlines only tighten: keep the minimum of all armed values.
  std::int64_t current = state_->deadline_us.load(std::memory_order_relaxed);
  while (us < current && !state_->deadline_us.compare_exchange_weak(
                             current, us, std::memory_order_relaxed)) {
  }
}

void CancelToken::ArmDeadlineIn(double ms) {
  ArmDeadline(Clock::now() + std::chrono::microseconds(
                                 static_cast<std::int64_t>(ms * 1000.0)));
}

void CancelToken::Cancel(CancelReason reason) {
  if (state_ == nullptr || reason == CancelReason::kNone) return;
  int expected = 0;
  state_->reason.compare_exchange_strong(expected, static_cast<int>(reason),
                                         std::memory_order_release);
}

CancelReason CancelToken::Check() const {
  if (state_ == nullptr) return CancelReason::kNone;
  const int latched = state_->reason.load(std::memory_order_acquire);
  if (latched != 0) return static_cast<CancelReason>(latched);
  const std::int64_t deadline =
      state_->deadline_us.load(std::memory_order_relaxed);
  if (deadline != std::numeric_limits<std::int64_t>::max() &&
      NowUs() >= deadline) {
    int expected = 0;
    state_->reason.compare_exchange_strong(
        expected, static_cast<int>(CancelReason::kDeadline),
        std::memory_order_release);
    return static_cast<CancelReason>(
        state_->reason.load(std::memory_order_acquire));
  }
  return CancelReason::kNone;
}

void CancelToken::ThrowIfCancelled(int rank) const {
  const CancelReason reason = Check();
  if (reason == CancelReason::kNone) return;
  throw CancelledError(reason, rank, "cancellation check point");
}

void CancelToken::Beat() const {
  if (state_ == nullptr) return;
  state_->last_beat_us.store(NowUs(), std::memory_order_relaxed);
}

void CancelToken::Checkpoint(int rank) const {
  if (state_ == nullptr) return;
  Beat();
  ThrowIfCancelled(rank);
}

double CancelToken::MillisSinceBeat() const {
  if (state_ == nullptr) return 0.0;
  const std::int64_t last =
      state_->last_beat_us.load(std::memory_order_relaxed);
  return static_cast<double>(NowUs() - last) / 1000.0;
}

}  // namespace pam
