#ifndef PAM_UTIL_TYPES_H_
#define PAM_UTIL_TYPES_H_

#include <cstdint>
#include <span>
#include <vector>

namespace pam {

/// An item identifier. Items in a transaction database are dense integers
/// starting at 0. Itemsets are always stored with items in ascending order,
/// which is the invariant the candidate hash tree and apriori_gen rely on.
using Item = std::uint32_t;

/// A read-only view over the (sorted) items of one itemset or transaction.
using ItemSpan = std::span<const Item>;

/// Support counter. 64-bit so that global reductions over billions of
/// transactions cannot overflow.
using Count = std::uint64_t;

/// Returns true if `needle` (sorted) is a subset of `haystack` (sorted).
inline bool IsSortedSubset(ItemSpan needle, ItemSpan haystack) {
  std::size_t j = 0;
  for (Item x : needle) {
    while (j < haystack.size() && haystack[j] < x) ++j;
    if (j == haystack.size() || haystack[j] != x) return false;
    ++j;
  }
  return true;
}

/// Lexicographic comparison of two sorted itemsets.
inline int CompareItemsets(ItemSpan a, ItemSpan b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

/// 64-bit FNV-1a style hash of an itemset, used by apriori_gen's prune
/// lookup table and by tests.
inline std::uint64_t HashItemset(ItemSpan items) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (Item x : items) {
    h ^= static_cast<std::uint64_t>(x) + 0x9e3779b97f4a7c15ULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace pam

#endif  // PAM_UTIL_TYPES_H_
