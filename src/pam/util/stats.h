#ifndef PAM_UTIL_STATS_H_
#define PAM_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace pam {

/// Summary statistics over a set of per-processor quantities; used to report
/// load imbalance the way the paper does (max / average).
struct LoadSummary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double total = 0.0;
  /// max / mean; 1.0 when perfectly balanced. The paper quotes
  /// "load imbalance of 1.3%" for (max/mean - 1) * 100.
  double imbalance = 1.0;
  /// (max / mean - 1) * 100, the paper's percentage formulation.
  double imbalance_percent = 0.0;
  /// Population standard deviation; 0.0 when perfectly balanced (or empty).
  double stddev = 0.0;
};

/// Computes a LoadSummary over `values`. Empty input yields all zeros with
/// imbalance 1.0.
LoadSummary Summarize(const std::vector<double>& values);
LoadSummary Summarize(const std::vector<std::uint64_t>& values);

}  // namespace pam

#endif  // PAM_UTIL_STATS_H_
