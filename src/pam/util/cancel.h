#ifndef PAM_UTIL_CANCEL_H_
#define PAM_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

namespace pam {

/// Why a cooperative run stopped early.
enum class CancelReason : int {
  kNone = 0,
  kDeadline,   // the token's deadline passed
  kCancelled,  // an explicit Cancel() (client abort, server shutdown)
  kWatchdog,   // the serve watchdog saw no progress heartbeat in time
};

/// Stable lowercase name ("none", "deadline", "cancelled", "watchdog").
const char* CancelReasonName(CancelReason reason);

/// Thrown from a cancellation check point when its token has fired. The
/// mining stack treats this like CommError: the first rank to throw aborts
/// the world, the others unwind with CommError{kAborted}, and Runtime::Run
/// rethrows this — so a cancelled MiningSession::Run surfaces exactly one
/// typed CancelledError to its caller (the serve layer maps the reason to
/// kDeadlineExceeded / kCancelled / a watchdog kMiningFault).
class CancelledError : public std::runtime_error {
 public:
  CancelledError(CancelReason reason, int rank, const std::string& detail);

  CancelReason reason() const { return reason_; }
  /// Rank whose check point fired (0 for serial / non-rank contexts).
  int rank() const { return rank_; }

 private:
  CancelReason reason_;
  int rank_;
};

/// Shared cancellation + deadline handle threaded from serve admission down
/// to the counting loop (DESIGN.md §13). Copies share one state: the serve
/// layer, the client, the watchdog, every rank thread, and every counting
/// shard all observe the same flag.
///
/// A default-constructed token is *null*: valid() is false and every check
/// degenerates to one pointer test — the solo mining paths pay nothing.
///
/// Check points come in two flavours:
///  - Check() / ThrowIfCancelled(): polls the flag (and latches kDeadline
///    once the deadline passes). Called from blocking comm waits on every
///    bounded slice, so a fired token unblocks a waiting rank promptly.
///  - Beat(): stamps the progress heartbeat the serve watchdog reads.
///    Stamped only where the run has genuinely advanced (pass boundaries,
///    ring rounds, counting intervals) — never inside a blocked wait, so a
///    stalled world stops beating and the watchdog can convert it into a
///    typed abort instead of a hung lease.
///
/// Thread-safe; all operations are lock-free atomics.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Null token: never cancels, all checks are no-ops.
  CancelToken() = default;

  /// A live token with no deadline (cancel/watchdog only).
  static CancelToken Create();
  /// A live token that fires kDeadline at `deadline`.
  static CancelToken WithDeadline(Clock::time_point deadline);
  /// A live token that fires kDeadline `ms` from now.
  static CancelToken AfterMs(double ms);

  bool valid() const { return state_ != nullptr; }
  bool has_deadline() const;

  /// Arms (or tightens) the deadline on a live token: the effective
  /// deadline only ever moves earlier. No-op on a null token.
  void ArmDeadline(Clock::time_point deadline);
  void ArmDeadlineIn(double ms);

  /// Fires the token with `reason` (first reason wins; later calls are
  /// no-ops). No-op on a null token.
  void Cancel(CancelReason reason = CancelReason::kCancelled);

  /// Polls the token: kNone while live, else the latched reason. Observes
  /// a passed deadline by latching kDeadline.
  CancelReason Check() const;

  /// Check() + throw CancelledError when fired.
  void ThrowIfCancelled(int rank = 0) const;

  /// Stamps the watchdog progress heartbeat.
  void Beat() const;
  /// Beat() + ThrowIfCancelled(): the standard progress check point.
  void Checkpoint(int rank = 0) const;
  /// Milliseconds since the last Beat() (token creation counts as one).
  /// Returns 0 on a null token.
  double MillisSinceBeat() const;

 private:
  struct State {
    std::atomic<int> reason{0};
    /// Deadline as microseconds on the steady clock; INT64_MAX = none.
    std::atomic<std::int64_t> deadline_us{
        std::numeric_limits<std::int64_t>::max()};
    /// Last progress heartbeat, microseconds on the steady clock.
    std::atomic<std::int64_t> last_beat_us{0};
  };

  explicit CancelToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

}  // namespace pam

#endif  // PAM_UTIL_CANCEL_H_
