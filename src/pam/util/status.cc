#include "pam/util/status.h"

// Status is header-only today; this translation unit anchors the library so
// the target always has at least one object file.
namespace pam {
namespace internal_status {
void AnchorStatusLibrary() {}
}  // namespace internal_status
}  // namespace pam
