#ifndef PAM_UTIL_BITMAP_H_
#define PAM_UTIL_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pam {

/// A fixed-size dynamic bitset. IDD uses one per processor to record which
/// candidate first-items the local hash tree owns, so that the root level of
/// the subset operation can skip transaction items whose candidates live on
/// other processors (paper Section III-C, Figure 8).
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  std::size_t size() const { return num_bits_; }

  void Set(std::size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
  void Clear(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  bool Test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Number of set bits.
  std::size_t Popcount() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += __builtin_popcountll(w);
    return n;
  }

  /// Resets all bits to zero.
  void Reset() {
    for (auto& w : words_) w = 0;
  }

  /// Raw word access for serialization across the message-passing layer.
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::size_t num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace pam

#endif  // PAM_UTIL_BITMAP_H_
