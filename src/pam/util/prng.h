#ifndef PAM_UTIL_PRNG_H_
#define PAM_UTIL_PRNG_H_

#include <cmath>
#include <cstdint>

namespace pam {

/// Deterministic, seedable pseudo random number generator
/// (xoshiro256** seeded through splitmix64). Every randomized component of
/// the library takes an explicit seed so that data generation and the
/// parallel algorithms are bit-reproducible across runs and rank counts.
class Prng {
 public:
  explicit Prng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(NextU64()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(NextU64()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed double with the given mean.
  double NextExponential(double mean) {
    double u = NextDouble();
    // Avoid log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Poisson distributed integer with the given mean (Knuth's method for
  /// small means, normal approximation for large means).
  std::uint64_t NextPoisson(double mean) {
    if (mean <= 0.0) return 0;
    if (mean < 32.0) {
      const double limit = std::exp(-mean);
      double product = NextDouble();
      std::uint64_t n = 0;
      while (product > limit) {
        ++n;
        product *= NextDouble();
      }
      return n;
    }
    const double g = mean + std::sqrt(mean) * NextGaussian();
    return g < 0.0 ? 0 : static_cast<std::uint64_t>(g + 0.5);
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace pam

#endif  // PAM_UTIL_PRNG_H_
