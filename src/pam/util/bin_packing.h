#ifndef PAM_UTIL_BIN_PACKING_H_
#define PAM_UTIL_BIN_PACKING_H_

#include <cstdint>
#include <vector>

namespace pam {

/// Result of partitioning weighted elements into a fixed number of bins.
struct BinPackingResult {
  /// bin_of[i] is the bin index assigned to element i.
  std::vector<int> bin_of;
  /// Total weight per bin.
  std::vector<std::uint64_t> bin_weight;

  /// Maximum bin weight divided by the average bin weight, >= 1.0.
  /// 1.0 means a perfectly even partition. Returns 1.0 for empty inputs.
  double Imbalance() const;
};

/// Partitions `weights` into exactly `num_bins` bins, minimizing the maximum
/// bin weight, using the longest-processing-time (first-fit-decreasing onto
/// the lightest bin) greedy heuristic — the "bin-packing" partitioner of
/// paper Section III-C used by IDD to assign candidate first-items to
/// processors so every processor owns a roughly equal number of candidates.
///
/// Deterministic: ties between equally heavy elements are broken by element
/// index, ties between equally light bins by bin index.
BinPackingResult PackBins(const std::vector<std::uint64_t>& weights,
                          int num_bins);

/// Naive contiguous partitioner used as the ablation baseline: splits the
/// element index range into `num_bins` contiguous chunks with (as close as
/// possible) equal *element counts*, ignoring weights. This reproduces the
/// paper's "items 1..50 to P0, items 51..100 to P1" bad-partition example.
BinPackingResult PackContiguous(const std::vector<std::uint64_t>& weights,
                                int num_bins);

}  // namespace pam

#endif  // PAM_UTIL_BIN_PACKING_H_
