#ifndef PAM_UTIL_FLAGS_H_
#define PAM_UTIL_FLAGS_H_

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace pam {

/// A minimal command-line flag parser for the CLI tools: accepts
/// `--name=value`, `--name value`, and bare `--name` (boolean true).
/// Anything not starting with `--` is collected as a positional argument.
class FlagParser {
 public:
  /// Parses argv. Returns false (and records an error) on a malformed
  /// argument list (e.g., `--name` at the end when a value was expected is
  /// treated as boolean, so the only failure mode is an empty flag name).
  bool Parse(int argc, const char* const* argv);

  /// True if the flag was present on the command line.
  bool Has(const std::string& name) const {
    return values_.count(name) > 0;
  }

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  std::int64_t GetInt(const std::string& name,
                      std::int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  /// Flags seen that are not in `known`; lets tools reject typos.
  std::vector<std::string> UnknownFlags(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string error_;
};

inline bool FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      error_ = "empty flag name in '" + arg + "'";
      return false;
    }
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not a flag, else boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
  return true;
}

inline std::string FlagParser::GetString(
    const std::string& name, const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

inline std::int64_t FlagParser::GetInt(const std::string& name,
                                       std::int64_t default_value) const {
  auto it = values_.find(name);
  return it == values_.end()
             ? default_value
             : static_cast<std::int64_t>(std::atoll(it->second.c_str()));
}

inline double FlagParser::GetDouble(const std::string& name,
                                    double default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value
                             : std::atof(it->second.c_str());
}

inline bool FlagParser::GetBool(const std::string& name,
                                bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

inline std::vector<std::string> FlagParser::UnknownFlags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    bool found = false;
    for (const std::string& k : known) {
      if (k == name) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace pam

#endif  // PAM_UTIL_FLAGS_H_
