#include "pam/util/bin_packing.h"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <queue>

namespace pam {

double BinPackingResult::Imbalance() const {
  if (bin_weight.empty()) return 1.0;
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (std::uint64_t w : bin_weight) {
    total += w;
    max = std::max(max, w);
  }
  if (total == 0) return 1.0;
  const double avg =
      static_cast<double>(total) / static_cast<double>(bin_weight.size());
  return static_cast<double>(max) / avg;
}

BinPackingResult PackBins(const std::vector<std::uint64_t>& weights,
                          int num_bins) {
  BinPackingResult result;
  result.bin_of.assign(weights.size(), 0);
  result.bin_weight.assign(static_cast<std::size_t>(num_bins), 0);
  if (num_bins <= 0 || weights.empty()) return result;

  // Sort element indices by decreasing weight (stable on index for ties).
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });

  // Min-heap of (bin weight, bin index).
  using Entry = std::pair<std::uint64_t, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (int b = 0; b < num_bins; ++b) heap.emplace(0, b);

  for (std::size_t i : order) {
    auto [w, b] = heap.top();
    heap.pop();
    result.bin_of[i] = b;
    result.bin_weight[static_cast<std::size_t>(b)] += weights[i];
    heap.emplace(w + weights[i], b);
  }
  return result;
}

BinPackingResult PackContiguous(const std::vector<std::uint64_t>& weights,
                                int num_bins) {
  BinPackingResult result;
  result.bin_of.assign(weights.size(), 0);
  result.bin_weight.assign(static_cast<std::size_t>(num_bins), 0);
  if (num_bins <= 0 || weights.empty()) return result;

  const std::size_t n = weights.size();
  for (std::size_t i = 0; i < n; ++i) {
    int b = static_cast<int>(i * static_cast<std::size_t>(num_bins) / n);
    result.bin_of[i] = b;
    result.bin_weight[static_cast<std::size_t>(b)] += weights[i];
  }
  return result;
}

}  // namespace pam
