#include "pam/util/stats.h"

#include <algorithm>
#include <cmath>

namespace pam {

LoadSummary Summarize(const std::vector<double>& values) {
  LoadSummary s;
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    s.total += v;
  }
  s.mean = s.total / static_cast<double>(values.size());
  if (s.mean > 0.0) {
    s.imbalance = s.max / s.mean;
    s.imbalance_percent = (s.imbalance - 1.0) * 100.0;
  }
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return s;
}

LoadSummary Summarize(const std::vector<std::uint64_t>& values) {
  std::vector<double> d(values.begin(), values.end());
  return Summarize(d);
}

}  // namespace pam
