#include "pam/util/stats.h"

#include <algorithm>

namespace pam {

LoadSummary Summarize(const std::vector<double>& values) {
  LoadSummary s;
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    s.total += v;
  }
  s.mean = s.total / static_cast<double>(values.size());
  if (s.mean > 0.0) {
    s.imbalance = s.max / s.mean;
    s.imbalance_percent = (s.imbalance - 1.0) * 100.0;
  }
  return s;
}

LoadSummary Summarize(const std::vector<std::uint64_t>& values) {
  std::vector<double> d(values.begin(), values.end());
  return Summarize(d);
}

}  // namespace pam
