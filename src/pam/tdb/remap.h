#ifndef PAM_TDB_REMAP_H_
#define PAM_TDB_REMAP_H_

#include <vector>

#include "pam/tdb/database.h"

namespace pam {

/// A bijective item relabeling.
struct ItemRemap {
  /// old_to_new[old_id] = new_id; identity for ids never seen.
  std::vector<Item> old_to_new;
  /// new_to_old[new_id] = old_id.
  std::vector<Item> new_to_old;
};

/// Builds the frequency-descending relabeling: the most frequent item gets
/// id 0, ties broken by old id. A classic Apriori preprocessing step: the
/// hash tree hashes `item % fanout` and IDD partitions candidates by first
/// item, so packing the frequent items into a dense id prefix spreads them
/// uniformly over hash buckets and bin-packing weights — useful when the
/// source data has clustered ids (e.g. the paper's 100-item example where
/// all activity sits on ids 1..50).
ItemRemap BuildFrequencyRemap(const TransactionDatabase& db);

/// Returns a database with every item relabeled through `old_to_new`
/// (transactions re-sorted under the new labels).
TransactionDatabase ApplyRemap(const TransactionDatabase& db,
                               const std::vector<Item>& old_to_new);

/// Translates a mined itemset back to the original labels (sorted under
/// the original ids).
std::vector<Item> TranslateBack(const ItemRemap& remap, ItemSpan items);

}  // namespace pam

#endif  // PAM_TDB_REMAP_H_
