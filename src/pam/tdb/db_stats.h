#ifndef PAM_TDB_DB_STATS_H_
#define PAM_TDB_DB_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pam/tdb/database.h"

namespace pam {

/// Descriptive statistics of a transaction database — the quantities the
/// paper's analysis parameterizes on (N, I = average transaction length,
/// item skew that drives IDD's bin packing) plus distribution detail for
/// workload characterization in examples and tools.
struct DbStats {
  std::size_t num_transactions = 0;
  std::size_t num_items = 0;       // alphabet size
  std::size_t distinct_items = 0;  // items that actually occur
  std::uint64_t total_item_occurrences = 0;
  double avg_transaction_len = 0.0;
  std::size_t min_transaction_len = 0;
  std::size_t max_transaction_len = 0;
  /// Per-item occurrence counts (size num_items).
  std::vector<Count> item_frequencies;
  /// Gini coefficient of the item frequency distribution in [0, 1):
  /// 0 = perfectly uniform, ->1 = all mass on one item. Skew here is what
  /// makes naive contiguous candidate partitioning unbalanced (paper
  /// Section III-C).
  double item_gini = 0.0;
  /// Smallest number of items covering half of all occurrences.
  std::size_t items_covering_half = 0;

  /// Multi-line human readable rendering.
  std::string ToString() const;
};

/// Computes statistics in one pass over the database.
DbStats ComputeDbStats(const TransactionDatabase& db);

}  // namespace pam

#endif  // PAM_TDB_DB_STATS_H_
