#include "pam/tdb/io.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

namespace pam {
namespace {

constexpr std::uint64_t kBinaryMagic = 0x50414d5442303146ULL;  // "PAMTB01F"

}  // namespace

Status WriteText(const TransactionDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Error("cannot open for writing: " + path);
  for (std::size_t t = 0; t < db.size(); ++t) {
    ItemSpan items = db.Transaction(t);
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i) out << ' ';
      out << items[i];
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::Error("write failed: " + path);
  return Status::Ok();
}

Result<TransactionDatabase> ReadText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::Error("cannot open for reading: " + path);
  TransactionDatabase db;
  std::string line;
  std::vector<Item> items;
  while (std::getline(in, line)) {
    items.clear();
    std::istringstream ls(line);
    std::uint64_t v = 0;
    while (ls >> v) items.push_back(static_cast<Item>(v));
    if (ls.fail() && !ls.eof()) {
      return Status::Error("malformed line in " + path + ": " + line);
    }
    if (!items.empty()) db.Add(items);
  }
  return db;
}

Status WriteBinary(const TransactionDatabase& db, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Error("cannot open for writing: " + path);
  auto put_u64 = [&out](std::uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put_u64(kBinaryMagic);
  put_u64(db.size());
  put_u64(db.items().size());
  for (std::size_t off : db.offsets()) put_u64(off);
  out.write(reinterpret_cast<const char*>(db.items().data()),
            static_cast<std::streamsize>(db.items().size() * sizeof(Item)));
  out.flush();
  if (!out) return Status::Error("write failed: " + path);
  return Status::Ok();
}

Result<TransactionDatabase> ReadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::Error("cannot open for reading: " + path);
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  auto get_u64 = [&in]() {
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  if (file_bytes < 3 * sizeof(std::uint64_t) || get_u64() != kBinaryMagic) {
    return Status::Error("bad magic in " + path);
  }
  const std::uint64_t num_tx = get_u64();
  const std::uint64_t num_items = get_u64();
  // Validate the header against the actual file size BEFORE allocating:
  // corrupt counts must not trigger multi-gigabyte allocations.
  const std::uint64_t expected_bytes =
      3 * sizeof(std::uint64_t) + (num_tx + 1) * sizeof(std::uint64_t) +
      num_items * sizeof(Item);
  if (num_tx >= file_bytes || num_items > file_bytes ||
      expected_bytes != file_bytes) {
    return Status::Error("size header does not match file length in " +
                         path);
  }
  std::vector<std::uint64_t> offsets(num_tx + 1);
  for (auto& off : offsets) off = get_u64();
  std::vector<Item> items(num_items);
  in.read(reinterpret_cast<char*>(items.data()),
          static_cast<std::streamsize>(num_items * sizeof(Item)));
  if (!in) return Status::Error("truncated file: " + path);
  if (offsets.front() != 0 || offsets.back() != num_items) {
    return Status::Error("corrupt offsets in " + path);
  }
  TransactionDatabase db;
  for (std::uint64_t t = 0; t < num_tx; ++t) {
    if (offsets[t] > offsets[t + 1]) {
      return Status::Error("non-monotone offsets in " + path);
    }
    ItemSpan span(items.data() + offsets[t], offsets[t + 1] - offsets[t]);
    for (std::size_t i = 1; i < span.size(); ++i) {
      if (span[i - 1] >= span[i]) {
        return Status::Error("unsorted transaction in " + path);
      }
    }
    db.AddSorted(span);
  }
  return db;
}

}  // namespace pam
