#include "pam/tdb/database.h"

#include <algorithm>
#include <cassert>

namespace pam {

void TransactionDatabase::Add(std::vector<Item> items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  AddSorted(ItemSpan(items.data(), items.size()));
}

void TransactionDatabase::Add(std::initializer_list<Item> items) {
  Add(std::vector<Item>(items));
}

void TransactionDatabase::AddSorted(ItemSpan items) {
#ifndef NDEBUG
  for (std::size_t i = 1; i < items.size(); ++i) {
    assert(items[i - 1] < items[i] && "AddSorted requires strictly ascending");
  }
#endif
  items_.insert(items_.end(), items.begin(), items.end());
  offsets_.push_back(items_.size());
  if (!items.empty()) {
    num_items_ = std::max(num_items_, items.back() + 1);
  }
}

TransactionDatabase::Slice TransactionDatabase::RankSlice(
    int rank, int num_ranks) const {
  assert(num_ranks > 0 && rank >= 0 && rank < num_ranks);
  const std::size_t n = size();
  const std::size_t p = static_cast<std::size_t>(num_ranks);
  const std::size_t r = static_cast<std::size_t>(rank);
  // Block distribution: first (n % p) ranks get one extra transaction.
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  Slice s;
  s.begin = r * base + std::min(r, extra);
  s.end = s.begin + base + (r < extra ? 1 : 0);
  return s;
}

}  // namespace pam
