#include "pam/tdb/page_buffer.h"

#include <cassert>

namespace pam {

std::vector<Page> Paginate(const TransactionDatabase& db,
                           TransactionDatabase::Slice slice,
                           std::size_t page_bytes) {
  std::vector<Page> pages;
  const std::size_t page_words =
      page_bytes / sizeof(std::uint32_t) > 0
          ? page_bytes / sizeof(std::uint32_t)
          : 1;
  Page current;
  for (std::size_t t = slice.begin; t < slice.end; ++t) {
    ItemSpan items = db.Transaction(t);
    const std::size_t need = items.size() + 1;
    if (!current.empty() && current.size() + need > page_words) {
      pages.push_back(std::move(current));
      current = Page();
    }
    current.push_back(static_cast<std::uint32_t>(items.size()));
    current.insert(current.end(), items.begin(), items.end());
  }
  if (!current.empty()) pages.push_back(std::move(current));
  return pages;
}

void ForEachTransaction(PageView page, const std::function<void(ItemSpan)>& fn) {
  std::size_t pos = 0;
  while (pos < page.size()) {
    const std::size_t len = page[pos++];
    assert(pos + len <= page.size() && "corrupt page");
    fn(ItemSpan(reinterpret_cast<const Item*>(page.data() + pos), len));
    pos += len;
  }
}

std::size_t PageTransactionCount(PageView page) {
  std::size_t pos = 0;
  std::size_t count = 0;
  while (pos < page.size()) {
    const std::size_t len = page[pos++];
    pos += len;
    ++count;
  }
  return count;
}

}  // namespace pam
