#ifndef PAM_TDB_IO_H_
#define PAM_TDB_IO_H_

#include <string>

#include "pam/tdb/database.h"
#include "pam/util/status.h"

namespace pam {

/// Writes the database as whitespace-separated item ids, one transaction per
/// line (the common "basket file" interchange format).
Status WriteText(const TransactionDatabase& db, const std::string& path);

/// Reads a basket text file. Blank lines are skipped; items on a line may be
/// in any order and may repeat (they are sorted/deduplicated on load).
Result<TransactionDatabase> ReadText(const std::string& path);

/// Writes a compact binary image: magic, transaction count, offsets, items.
Status WriteBinary(const TransactionDatabase& db, const std::string& path);

/// Reads a binary image written by WriteBinary, validating the magic and
/// structural invariants (monotone offsets, sorted transactions).
Result<TransactionDatabase> ReadBinary(const std::string& path);

}  // namespace pam

#endif  // PAM_TDB_IO_H_
