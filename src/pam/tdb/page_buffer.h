#ifndef PAM_TDB_PAGE_BUFFER_H_
#define PAM_TDB_PAGE_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "pam/tdb/database.h"
#include "pam/util/types.h"

namespace pam {

/// A wire page: a length-prefixed run of transactions, the unit of data
/// movement in the DD and IDD algorithms (the paper moves the database one
/// "page" at a time through P buffers in DD, and through the SBuf/RBuf ring
/// pipeline of Figure 6 in IDD).
///
/// Layout: repeated { u32 transaction_length, u32 items[transaction_length] }.
using Page = std::vector<std::uint32_t>;

/// Read-only view of a wire page. Pages received from the transport are
/// scanned in place through one of these (backed by the shared Payload
/// buffer) instead of being copied into an owned Page first.
using PageView = std::span<const std::uint32_t>;

/// Reinterprets a received payload's bytes as a page view (pages are
/// word-aligned u32 runs; payload buffers are allocator-aligned).
inline PageView PageViewOfBytes(std::span<const std::byte> bytes) {
  return PageView(reinterpret_cast<const std::uint32_t*>(bytes.data()),
                  bytes.size() / sizeof(std::uint32_t));
}

/// Splits the given slice of a database into pages of at most
/// `page_bytes` bytes each (always at least one transaction per page, so a
/// jumbo transaction simply yields an oversized page).
std::vector<Page> Paginate(const TransactionDatabase& db,
                           TransactionDatabase::Slice slice,
                           std::size_t page_bytes);

/// Invokes `fn` for every transaction serialized in `page` (a Page
/// converts implicitly).
void ForEachTransaction(PageView page, const std::function<void(ItemSpan)>& fn);

/// Number of transactions serialized in `page`.
std::size_t PageTransactionCount(PageView page);

/// Size of a page in wire bytes.
inline std::size_t PageBytes(PageView page) {
  return page.size() * sizeof(std::uint32_t);
}

}  // namespace pam

#endif  // PAM_TDB_PAGE_BUFFER_H_
