#ifndef PAM_TDB_PAGE_BUFFER_H_
#define PAM_TDB_PAGE_BUFFER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "pam/tdb/database.h"
#include "pam/util/types.h"

namespace pam {

/// A wire page: a length-prefixed run of transactions, the unit of data
/// movement in the DD and IDD algorithms (the paper moves the database one
/// "page" at a time through P buffers in DD, and through the SBuf/RBuf ring
/// pipeline of Figure 6 in IDD).
///
/// Layout: repeated { u32 transaction_length, u32 items[transaction_length] }.
using Page = std::vector<std::uint32_t>;

/// Splits the given slice of a database into pages of at most
/// `page_bytes` bytes each (always at least one transaction per page, so a
/// jumbo transaction simply yields an oversized page).
std::vector<Page> Paginate(const TransactionDatabase& db,
                           TransactionDatabase::Slice slice,
                           std::size_t page_bytes);

/// Invokes `fn` for every transaction serialized in `page`.
void ForEachTransaction(const Page& page,
                        const std::function<void(ItemSpan)>& fn);

/// Number of transactions serialized in `page`.
std::size_t PageTransactionCount(const Page& page);

/// Size of a page in wire bytes.
inline std::size_t PageBytes(const Page& page) {
  return page.size() * sizeof(std::uint32_t);
}

}  // namespace pam

#endif  // PAM_TDB_PAGE_BUFFER_H_
