#include "pam/tdb/db_stats.h"

#include <algorithm>
#include <sstream>

namespace pam {

DbStats ComputeDbStats(const TransactionDatabase& db) {
  DbStats stats;
  stats.num_transactions = db.size();
  stats.num_items = db.NumItems();
  stats.item_frequencies.assign(db.NumItems(), 0);
  stats.min_transaction_len = db.empty() ? 0 : db.Transaction(0).size();

  for (std::size_t t = 0; t < db.size(); ++t) {
    ItemSpan tx = db.Transaction(t);
    stats.total_item_occurrences += tx.size();
    stats.min_transaction_len = std::min(stats.min_transaction_len,
                                         tx.size());
    stats.max_transaction_len = std::max(stats.max_transaction_len,
                                         tx.size());
    for (Item x : tx) ++stats.item_frequencies[x];
  }
  if (!db.empty()) {
    stats.avg_transaction_len =
        static_cast<double>(stats.total_item_occurrences) /
        static_cast<double>(db.size());
  }
  for (Count c : stats.item_frequencies) {
    if (c > 0) ++stats.distinct_items;
  }

  // Gini coefficient over the sorted frequency vector:
  // G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n for ascending x_i
  // (1-indexed).
  if (stats.total_item_occurrences > 0 && stats.num_items > 0) {
    std::vector<Count> sorted = stats.item_frequencies;
    std::sort(sorted.begin(), sorted.end());
    long double weighted = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      weighted += static_cast<long double>(i + 1) *
                  static_cast<long double>(sorted[i]);
    }
    const long double n = static_cast<long double>(sorted.size());
    const long double total =
        static_cast<long double>(stats.total_item_occurrences);
    stats.item_gini =
        static_cast<double>(2.0L * weighted / (n * total) - (n + 1) / n);

    // Items covering half the mass (from the heaviest down).
    Count covered = 0;
    for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
      covered += *it;
      ++stats.items_covering_half;
      if (2 * covered >= stats.total_item_occurrences) break;
    }
  }
  return stats;
}

std::string DbStats::ToString() const {
  std::ostringstream os;
  os << "transactions: " << num_transactions << "\n"
     << "items: " << distinct_items << " occurring / " << num_items
     << " alphabet\n"
     << "occurrences: " << total_item_occurrences << " (avg length "
     << avg_transaction_len << ", min " << min_transaction_len << ", max "
     << max_transaction_len << ")\n"
     << "item skew: gini " << item_gini << ", " << items_covering_half
     << " items cover half the mass\n";
  return os.str();
}

}  // namespace pam
