#ifndef PAM_TDB_DATABASE_H_
#define PAM_TDB_DATABASE_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "pam/util/types.h"

namespace pam {

/// An in-memory transaction database in CSR (compressed sparse row) layout:
/// one flat array of items plus an offsets array. Transactions always store
/// their items sorted ascending and deduplicated — the invariant every
/// consumer (hash tree, apriori_gen) relies on.
///
/// The layout makes horizontal partitioning (assigning N/P transactions to
/// each processor, as all four parallel formulations do) a pair of index
/// computations, and lets P reader threads share one database without
/// copies.
class TransactionDatabase {
 public:
  TransactionDatabase() : offsets_{0} {}

  /// Appends a transaction. Items are copied, sorted, and deduplicated.
  void Add(std::vector<Item> items);
  void Add(std::initializer_list<Item> items);

  /// Appends a transaction that the caller guarantees is already sorted
  /// ascending with no duplicates (checked in debug builds only). The data
  /// generator uses this to avoid a redundant sort.
  void AddSorted(ItemSpan items);

  /// Number of transactions.
  std::size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  /// Total number of item occurrences across all transactions.
  std::size_t TotalItems() const { return items_.size(); }

  /// Average transaction length (0 for an empty database).
  double AverageLength() const {
    return empty() ? 0.0
                   : static_cast<double>(items_.size()) /
                         static_cast<double>(size());
  }

  /// One larger than the largest item id present (0 for empty databases).
  /// This is the alphabet size assumed by F1 counting and bitmap sizing.
  Item NumItems() const { return num_items_; }

  /// Items of transaction `t`.
  ItemSpan Transaction(std::size_t t) const {
    return ItemSpan(items_.data() + offsets_[t],
                    offsets_[t + 1] - offsets_[t]);
  }

  /// A half-open transaction index range [begin, end) owned by processor
  /// `rank` when the database is split evenly across `num_ranks` processors
  /// (the "transactions are evenly distributed among the processors"
  /// assumption of paper Section III).
  struct Slice {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t size() const { return end - begin; }
  };
  Slice RankSlice(int rank, int num_ranks) const;

  /// Serialized size in bytes when shipped across the message-passing layer
  /// (4 bytes per item + 4 bytes length per transaction). Used by the cost
  /// model to charge data-movement bytes.
  std::size_t WireBytes(const Slice& slice) const {
    return (offsets_[slice.end] - offsets_[slice.begin] + slice.size()) *
           sizeof(std::uint32_t);
  }

  /// Raw CSR access for I/O and paging.
  const std::vector<Item>& items() const { return items_; }
  const std::vector<std::size_t>& offsets() const { return offsets_; }

 private:
  std::vector<Item> items_;
  std::vector<std::size_t> offsets_;  // size() + 1 entries, offsets_[0] == 0
  Item num_items_ = 0;
};

}  // namespace pam

#endif  // PAM_TDB_DATABASE_H_
