#include "pam/tdb/remap.h"

#include <algorithm>
#include <numeric>

namespace pam {

ItemRemap BuildFrequencyRemap(const TransactionDatabase& db) {
  const std::size_t n = db.NumItems();
  std::vector<Count> freq(n, 0);
  for (std::size_t t = 0; t < db.size(); ++t) {
    for (Item x : db.Transaction(t)) ++freq[x];
  }
  std::vector<Item> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&freq](Item a, Item b) {
    if (freq[a] != freq[b]) return freq[a] > freq[b];
    return a < b;
  });

  ItemRemap remap;
  remap.old_to_new.resize(n);
  remap.new_to_old.resize(n);
  for (Item new_id = 0; new_id < n; ++new_id) {
    const Item old_id = order[new_id];
    remap.old_to_new[old_id] = new_id;
    remap.new_to_old[new_id] = old_id;
  }
  return remap;
}

TransactionDatabase ApplyRemap(const TransactionDatabase& db,
                               const std::vector<Item>& old_to_new) {
  TransactionDatabase out;
  std::vector<Item> scratch;
  for (std::size_t t = 0; t < db.size(); ++t) {
    ItemSpan tx = db.Transaction(t);
    scratch.assign(tx.begin(), tx.end());
    for (Item& x : scratch) x = old_to_new[x];
    std::sort(scratch.begin(), scratch.end());
    out.AddSorted(ItemSpan(scratch.data(), scratch.size()));
  }
  return out;
}

std::vector<Item> TranslateBack(const ItemRemap& remap, ItemSpan items) {
  std::vector<Item> out(items.begin(), items.end());
  for (Item& x : out) x = remap.new_to_old[x];
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pam
