#include "pam/core/maximal.h"

#include <algorithm>

namespace pam {
namespace {

// Shared scan: keep itemset (level, i) when no superset one level up
// satisfies `dominates(count_sub, count_super)`.
FrequentItemsets Filter(const FrequentItemsets& frequent,
                        bool require_equal_support) {
  FrequentItemsets out;
  for (std::size_t level = 0; level < frequent.levels.size(); ++level) {
    const ItemsetCollection& sets = frequent.levels[level];
    ItemsetCollection kept(sets.k());
    const ItemsetCollection* supersets =
        level + 1 < frequent.levels.size() ? &frequent.levels[level + 1]
                                           : nullptr;
    for (std::size_t i = 0; i < sets.size(); ++i) {
      ItemSpan s = sets.Get(i);
      bool dominated = false;
      if (supersets != nullptr) {
        // A (k+1)-superset exists iff some extension of s is frequent;
        // scan supersets and subset-test (supersets are sorted, and any
        // frequent superset chain implies a one-larger frequent superset
        // by downward closure, so checking level+1 suffices).
        for (std::size_t j = 0; j < supersets->size() && !dominated; ++j) {
          if (IsSortedSubset(s, supersets->Get(j))) {
            dominated = !require_equal_support ||
                        supersets->count(j) == sets.count(i);
          }
        }
      }
      if (!dominated) kept.AddWithCount(s, sets.count(i));
    }
    out.levels.push_back(std::move(kept));
  }
  while (!out.levels.empty() && out.levels.back().empty()) {
    out.levels.pop_back();
  }
  return out;
}

}  // namespace

FrequentItemsets ExtractMaximal(const FrequentItemsets& frequent) {
  return Filter(frequent, /*require_equal_support=*/false);
}

FrequentItemsets ExtractClosed(const FrequentItemsets& frequent) {
  return Filter(frequent, /*require_equal_support=*/true);
}

bool CoveredByClosure(const FrequentItemsets& maximal, ItemSpan items) {
  if (items.empty()) return false;
  for (std::size_t level = items.size() - 1; level < maximal.levels.size();
       ++level) {
    const ItemsetCollection& sets = maximal.levels[level];
    for (std::size_t i = 0; i < sets.size(); ++i) {
      if (IsSortedSubset(items, sets.Get(i))) return true;
    }
  }
  return false;
}

}  // namespace pam
