#include "pam/core/rulegen.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "pam/core/apriori_gen.h"

namespace pam {
namespace {

// Sorted set difference: full \ part (part must be a subset of full).
std::vector<Item> Difference(ItemSpan full, ItemSpan part) {
  std::vector<Item> out;
  out.reserve(full.size() - part.size());
  std::set_difference(full.begin(), full.end(), part.begin(), part.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace

namespace rulegen_internal {

void SortRules(std::vector<Rule>& rules) {
  std::sort(rules.begin(), rules.end(), [](const Rule& a, const Rule& b) {
    if (a.confidence != b.confidence) return a.confidence > b.confidence;
    if (a.support != b.support) return a.support > b.support;
    if (a.antecedent != b.antecedent) return a.antecedent < b.antecedent;
    return a.consequent < b.consequent;
  });
}

void RulesForItemset(const FrequentItemsets& frequent, std::size_t level,
                     std::size_t index, std::size_t num_transactions,
                     double min_confidence, std::vector<Rule>* rules) {
  const ItemsetCollection& sets = frequent.levels[level];
  const double n = static_cast<double>(num_transactions);
  ItemSpan full = sets.Get(index);
  const Count joint = sets.count(index);

  // Consequents of size 1 that clear the confidence bar.
  ItemsetCollection consequents(1);
  for (Item item : full) {
    std::vector<Item> antecedent = Difference(full, ItemSpan(&item, 1));
    Count ante_count = 0;
    const bool found = frequent.Lookup(
        ItemSpan(antecedent.data(), antecedent.size()), &ante_count);
    assert(found && "antecedent of a frequent set must be frequent");
    if (!found || ante_count == 0) continue;
    const double conf =
        static_cast<double>(joint) / static_cast<double>(ante_count);
    if (conf >= min_confidence) {
      rules->push_back(Rule{std::move(antecedent),
                            {item},
                            joint,
                            static_cast<double>(joint) / n,
                            conf});
      consequents.AddWithCount(ItemSpan(&item, 1), 0);
    }
  }

  // Grow consequents level-wise while the antecedent stays non-empty.
  while (consequents.size() >= 2 &&
         static_cast<std::size_t>(consequents.k()) + 1 < full.size()) {
    ItemsetCollection next = AprioriGen(consequents);
    ItemsetCollection surviving(next.k());
    for (std::size_t c = 0; c < next.size(); ++c) {
      ItemSpan consequent = next.Get(c);
      std::vector<Item> antecedent = Difference(full, consequent);
      Count ante_count = 0;
      if (!frequent.Lookup(ItemSpan(antecedent.data(), antecedent.size()),
                           &ante_count) ||
          ante_count == 0) {
        continue;
      }
      const double conf =
          static_cast<double>(joint) / static_cast<double>(ante_count);
      if (conf >= min_confidence) {
        rules->push_back(
            Rule{std::move(antecedent),
                 std::vector<Item>(consequent.begin(), consequent.end()),
                 joint,
                 static_cast<double>(joint) / n,
                 conf});
        surviving.AddWithCount(consequent, 0);
      }
    }
    consequents = std::move(surviving);
  }
}

}  // namespace rulegen_internal

std::string Rule::ToString() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < antecedent.size(); ++i) {
    if (i) os << ' ';
    os << antecedent[i];
  }
  os << "} => {";
  for (std::size_t i = 0; i < consequent.size(); ++i) {
    if (i) os << ' ';
    os << consequent[i];
  }
  os << "} (sup " << support << ", conf " << confidence << ')';
  return os.str();
}

std::vector<Rule> GenerateRules(const FrequentItemsets& frequent,
                                std::size_t num_transactions,
                                double min_confidence) {
  std::vector<Rule> rules;
  for (std::size_t level = 1; level < frequent.levels.size(); ++level) {
    for (std::size_t s = 0; s < frequent.levels[level].size(); ++s) {
      rulegen_internal::RulesForItemset(frequent, level, s,
                                        num_transactions, min_confidence,
                                        &rules);
    }
  }
  rulegen_internal::SortRules(rules);
  return rules;
}

std::vector<Rule> GenerateRulesBruteForce(const FrequentItemsets& frequent,
                                          std::size_t num_transactions,
                                          double min_confidence) {
  std::vector<Rule> rules;
  const double n = static_cast<double>(num_transactions);

  for (std::size_t level = 1; level < frequent.levels.size(); ++level) {
    const ItemsetCollection& sets = frequent.levels[level];
    for (std::size_t s = 0; s < sets.size(); ++s) {
      ItemSpan full = sets.Get(s);
      const Count joint = sets.count(s);
      const std::size_t k = full.size();
      assert(k < 64);
      // Every non-empty proper subset mask chooses the consequent.
      for (std::uint64_t mask = 1; mask + 1 < (1ULL << k); ++mask) {
        std::vector<Item> antecedent;
        std::vector<Item> consequent;
        for (std::size_t i = 0; i < k; ++i) {
          if (mask & (1ULL << i)) {
            consequent.push_back(full[i]);
          } else {
            antecedent.push_back(full[i]);
          }
        }
        Count ante_count = 0;
        if (!frequent.Lookup(ItemSpan(antecedent.data(), antecedent.size()),
                             &ante_count) ||
            ante_count == 0) {
          continue;
        }
        const double conf =
            static_cast<double>(joint) / static_cast<double>(ante_count);
        if (conf >= min_confidence) {
          rules.push_back(Rule{std::move(antecedent), std::move(consequent),
                               joint, static_cast<double>(joint) / n, conf});
        }
      }
    }
  }
  rulegen_internal::SortRules(rules);
  return rules;
}

}  // namespace pam
