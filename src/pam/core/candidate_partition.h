#ifndef PAM_CORE_CANDIDATE_PARTITION_H_
#define PAM_CORE_CANDIDATE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "pam/core/itemset_collection.h"
#include "pam/util/bin_packing.h"
#include "pam/util/bitmap.h"
#include "pam/util/stats.h"

namespace pam {

/// How IDD-style prefix partitioning assigns candidate first-items to
/// processors.
enum class PrefixStrategy {
  /// First-fit-decreasing bin packing over the per-first-item candidate
  /// histogram (the paper's scheme, Section III-C).
  kBinPacked,
  /// Contiguous item ranges ignoring weights — the paper's motivating bad
  /// example ("items 1..50 to P0, 51..100 to P1"); kept as an ablation.
  kContiguous,
};

/// A partition of a candidate set C_k across `num_parts` processors.
struct CandidatePartition {
  /// ids_per_part[p] = candidate indices owned by part p, ascending.
  std::vector<std::vector<std::uint32_t>> ids_per_part;
  /// For prefix partitions: per-part bitmap over item ids marking the
  /// first-items whose candidates (possibly a sub-range, see
  /// split_heavy_prefixes) live on that part. Empty for round-robin
  /// partitions, which cannot support root filtering.
  std::vector<Bitmap> first_item_filter;

  /// Balance of candidate counts across parts (the paper reports 1.3% for
  /// P=4 and 2.3% for P=8).
  LoadSummary CandidateBalance() const;
};

/// DD's round-robin partition: candidate i goes to part i % num_parts.
CandidatePartition PartitionRoundRobin(std::size_t num_candidates,
                                       int num_parts);

/// IDD's intelligent partition: candidates grouped by first item, items
/// packed into parts by total candidate weight (PrefixStrategy picks the
/// packer). When `split_heavy_prefixes` is true, any first-item owning more
/// than ceil(M / num_parts) candidates is split into sub-ranges by position
/// (the paper's "partition based on more than the first items" refinement
/// for skewed prefixes); the affected item's filter bit is then set on every
/// part holding one of its sub-ranges.
///
/// `candidates` must be sorted lexicographically so that candidates sharing
/// a first item are contiguous. `num_items` sizes the filter bitmaps.
///
/// When `item_cost` is non-null it must hold one fixed-point cost per item
/// id (relative scale is arbitrary); a run of c candidates with first item
/// f then weighs c * (*item_cost)[f] instead of c, both for the heavy-split
/// threshold and for the packer. This is how the adaptive load balancer
/// (DESIGN.md §14) re-packs with measured weights: null reproduces the
/// static candidate-count partition bit for bit.
CandidatePartition PartitionByPrefix(
    const ItemsetCollection& candidates, Item num_items, int num_parts,
    PrefixStrategy strategy, bool split_heavy_prefixes = true,
    const std::vector<std::uint64_t>* item_cost = nullptr);

/// FNV-1a fingerprint of a partition's candidate-to-part assignment
/// (part boundaries and the ascending candidate ids of each part). Two
/// partitions of the same candidate set collide iff every candidate landed
/// on the same part — the chaos suite pins rebalancing determinism on it.
std::uint64_t PartitionDigest(const CandidatePartition& partition);

/// Number of candidates that `b` assigns to a different part than `a`
/// (both must partition the same candidate set). This is the adaptive
/// balancer's "repartition delta": how far the measured-weight packing
/// moved from the static one.
std::uint64_t PartitionMoves(const CandidatePartition& a,
                             const CandidatePartition& b);

}  // namespace pam

#endif  // PAM_CORE_CANDIDATE_PARTITION_H_
