#include "pam/core/count_team.h"

#include <algorithm>
#include <cassert>
#include <optional>

namespace pam {

void AccumulateShardWork(std::vector<std::uint64_t>& into,
                         const std::vector<std::uint64_t>& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
}

TeamCounter::TeamCounter(CountingPool* pool, HashTree* tree,
                         std::span<Count> counts, SubsetStats* stats,
                         const Bitmap* root_filter,
                         const CancelToken* cancel,
                         std::span<std::uint64_t> item_work,
                         std::span<std::uint64_t> leaf_visits)
    : pool_(pool),
      tree_(tree),
      counts_(counts),
      stats_(stats),
      filter_(root_filter),
      cancel_(cancel != nullptr && cancel->valid() ? cancel : nullptr),
      tracer_(obs::CurrentTracer()),
      team_(pool->num_threads() > 1 &&
                    tree->kernel() == HashTreeKernel::kFlat
                ? pool->num_threads()
                : 1),
      item_work_(item_work),
      leaf_visits_(leaf_visits) {
  // Mirrors the kernel's contract: attribution needs leaf_visits sized to
  // the tree, which is legitimately empty for a rank whose candidate
  // partition is empty this pass (zero-leaf tree).
  assert(item_work_.empty() ? leaf_visits_.empty()
                            : leaf_visits_.size() == tree->num_leaves());
  if (team_ > 1) {
    strips_.Reset(team_, counts.size());
    scratch_.resize(static_cast<std::size_t>(team_));
    for (HashTree::Scratch& s : scratch_) s = tree->MakeScratch();
    shard_stats_.assign(static_cast<std::size_t>(team_), SubsetStats{});
    if (!item_work_.empty()) {
      shard_item_work_.assign(
          static_cast<std::size_t>(team_ - 1),
          std::vector<std::uint64_t>(item_work_.size(), 0));
      shard_leaf_visits_.assign(
          static_cast<std::size_t>(team_ - 1),
          std::vector<std::uint64_t>(leaf_visits_.size(), 0));
    }
  }
}

template <typename TxAt>
void TeamCounter::RunBatch(std::size_t n, const TxAt& tx_at) {
  pool_->Run(n, [&](int shard, std::size_t begin, std::size_t end) {
    // Workers install the rank's tracer so their shard spans land on the
    // rank's track; shard 0 already runs on the rank thread.
    std::optional<obs::ScopedTracerInstall> install;
    if (shard != 0) install.emplace(tracer_);
    obs::ScopedSpan span(obs::SpanKind::kSubsetCountShard, shard);
    const std::span<Count> out =
        shard == 0 ? counts_ : strips_.strip(shard);
    SubsetStats* stats =
        stats_ != nullptr
            ? &shard_stats_[static_cast<std::size_t>(shard)]
            : nullptr;
    const std::span<std::uint64_t> item_work =
        item_work_.empty() ? std::span<std::uint64_t>{}
        : shard == 0
            ? item_work_
            : std::span<std::uint64_t>(
                  shard_item_work_[static_cast<std::size_t>(shard - 1)]);
    const std::span<std::uint64_t> leaf_visits =
        leaf_visits_.empty() ? std::span<std::uint64_t>{}
        : shard == 0
            ? leaf_visits_
            : std::span<std::uint64_t>(
                  shard_leaf_visits_[static_cast<std::size_t>(shard - 1)]);
    HashTree::Scratch& scratch = scratch_[static_cast<std::size_t>(shard)];
    const HashTree* tree = tree_;
    for (std::size_t i = begin; i < end; ++i) {
      tree->Subset(tx_at(i), out, stats, filter_, scratch, item_work,
                   leaf_visits);
    }
  });
}

std::size_t TeamCounter::CountSlice(const TransactionDatabase& db,
                                    TransactionDatabase::Slice slice) {
  const std::size_t n = slice.end - slice.begin;
  // With a live token, count in kCancelCheckStride sub-batches and run a
  // progress check point between them — on the rank thread, with the pool
  // idle, so a throw never abandons in-flight workers. Counts and merged
  // stats are byte-identical either way (shard merge order is fixed).
  for (std::size_t begin = slice.begin; begin < slice.end;) {
    std::size_t end = slice.end;
    if (cancel_ != nullptr) {
      cancel_->Checkpoint();
      end = std::min(end, begin + kCancelCheckStride);
    }
    if (team_ == 1) {
      for (std::size_t t = begin; t < end; ++t) {
        tree_->Subset(db.Transaction(t), counts_, stats_, filter_,
                      item_work_, leaf_visits_);
      }
    } else {
      RunBatch(end - begin, [&db, begin](std::size_t i) {
        return db.Transaction(begin + i);
      });
    }
    begin = end;
  }
  return n;
}

std::size_t TeamCounter::CountPage(PageView page) {
  if (cancel_ != nullptr) cancel_->Checkpoint();
  if (team_ == 1) {
    std::size_t n = 0;
    ForEachTransaction(page, [&](ItemSpan tx) {
      tree_->Subset(tx, counts_, stats_, filter_, item_work_, leaf_visits_);
      ++n;
    });
    return n;
  }
  page_tx_.clear();
  ForEachTransaction(page, [this](ItemSpan tx) { page_tx_.push_back(tx); });
  RunBatch(page_tx_.size(), [this](std::size_t i) { return page_tx_[i]; });
  return page_tx_.size();
}

void TeamCounter::Finish() {
  assert(!finished_);
  finished_ = true;
  if (team_ == 1) return;
  strips_.MergeInto(counts_);
  // Fold the worker shards' item-work strips into the caller's span
  // (shard 0 wrote it directly); u64 sums, so order is immaterial, but
  // keep fixed shard order anyway for symmetry with the stats merge.
  for (const std::vector<std::uint64_t>& strip : shard_item_work_) {
    for (std::size_t f = 0; f < strip.size(); ++f) item_work_[f] += strip[f];
  }
  for (const std::vector<std::uint64_t>& strip : shard_leaf_visits_) {
    for (std::size_t l = 0; l < strip.size(); ++l) {
      leaf_visits_[l] += strip[l];
    }
  }
  if (stats_ == nullptr) return;
  // Fixed shard order: the merged stats are identical for every team size
  // (u64 sums of per-transaction contributions) and identical across runs.
  shard_work_.assign(static_cast<std::size_t>(team_), 0);
  for (int w = 0; w < team_; ++w) {
    const SubsetStats& s = shard_stats_[static_cast<std::size_t>(w)];
    stats_->Accumulate(s);
    shard_work_[static_cast<std::size_t>(w)] =
        s.traversal_steps + s.leaf_candidates_checked;
  }
}

TriangleTeam::TriangleTeam(CountingPool* pool, TrianglePairCounter* tri,
                           SubsetStats* stats, const CancelToken* cancel)
    : pool_(pool),
      tri_(tri),
      stats_(stats),
      cancel_(cancel != nullptr && cancel->valid() ? cancel : nullptr),
      tracer_(obs::CurrentTracer()),
      team_(pool->num_threads()) {
  if (team_ > 1) {
    shards_.reserve(static_cast<std::size_t>(team_ - 1));
    for (int w = 1; w < team_; ++w) shards_.emplace_back(*tri);
    shard_stats_.assign(static_cast<std::size_t>(team_), SubsetStats{});
  }
}

template <typename TxAt>
void TriangleTeam::RunBatch(std::size_t n, const TxAt& tx_at) {
  pool_->Run(n, [&](int shard, std::size_t begin, std::size_t end) {
    std::optional<obs::ScopedTracerInstall> install;
    if (shard != 0) install.emplace(tracer_);
    obs::ScopedSpan span(obs::SpanKind::kSubsetCountShard, shard);
    SubsetStats* stats =
        stats_ != nullptr
            ? &shard_stats_[static_cast<std::size_t>(shard)]
            : nullptr;
    if (shard == 0) {
      for (std::size_t i = begin; i < end; ++i) {
        tri_->AddTransaction(tx_at(i), stats);
      }
    } else {
      TrianglePairCounter::Shard& mine =
          shards_[static_cast<std::size_t>(shard - 1)];
      for (std::size_t i = begin; i < end; ++i) {
        mine.AddTransaction(tx_at(i), stats);
      }
    }
  });
}

std::size_t TriangleTeam::CountSlice(const TransactionDatabase& db,
                                     TransactionDatabase::Slice slice) {
  const std::size_t n = slice.end - slice.begin;
  for (std::size_t begin = slice.begin; begin < slice.end;) {
    std::size_t end = slice.end;
    if (cancel_ != nullptr) {
      cancel_->Checkpoint();
      end = std::min(end, begin + kCancelCheckStride);
    }
    if (team_ == 1) {
      for (std::size_t t = begin; t < end; ++t) {
        tri_->AddTransaction(db.Transaction(t), stats_);
      }
    } else {
      RunBatch(end - begin, [&db, begin](std::size_t i) {
        return db.Transaction(begin + i);
      });
    }
    begin = end;
  }
  return n;
}

std::size_t TriangleTeam::CountPage(PageView page) {
  if (cancel_ != nullptr) cancel_->Checkpoint();
  if (team_ == 1) {
    std::size_t n = 0;
    ForEachTransaction(page, [&](ItemSpan tx) {
      tri_->AddTransaction(tx, stats_);
      ++n;
    });
    return n;
  }
  page_tx_.clear();
  ForEachTransaction(page, [this](ItemSpan tx) { page_tx_.push_back(tx); });
  RunBatch(page_tx_.size(), [this](std::size_t i) { return page_tx_[i]; });
  return page_tx_.size();
}

void TriangleTeam::Finish() {
  assert(!finished_);
  finished_ = true;
  if (team_ == 1) return;
  for (const TrianglePairCounter::Shard& shard : shards_) {
    tri_->MergeShard(shard);
  }
  if (stats_ == nullptr) return;
  shard_work_.assign(static_cast<std::size_t>(team_), 0);
  for (int w = 0; w < team_; ++w) {
    const SubsetStats& s = shard_stats_[static_cast<std::size_t>(w)];
    stats_->Accumulate(s);
    shard_work_[static_cast<std::size_t>(w)] =
        s.traversal_steps + s.leaf_candidates_checked;
  }
}

}  // namespace pam
