#include "pam/core/itemset_collection.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace pam {

ItemsetCollection::ItemsetCollection(int k) : k_(k) { assert(k >= 1); }

void ItemsetCollection::Add(ItemSpan items) { AddWithCount(items, 0); }

void ItemsetCollection::AddWithCount(ItemSpan items, Count count) {
  assert(items.size() == static_cast<std::size_t>(k_));
#ifndef NDEBUG
  for (std::size_t i = 1; i < items.size(); ++i) {
    assert(items[i - 1] < items[i] && "itemset must be sorted ascending");
  }
#endif
  items_.insert(items_.end(), items.begin(), items.end());
  counts_.push_back(count);
}

void ItemsetCollection::SortLexicographic() {
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return CompareItemsets(Get(a), Get(b)) < 0;
  });
  std::vector<Item> new_items;
  new_items.reserve(items_.size());
  std::vector<Count> new_counts;
  new_counts.reserve(counts_.size());
  for (std::size_t i : order) {
    ItemSpan s = Get(i);
    new_items.insert(new_items.end(), s.begin(), s.end());
    new_counts.push_back(counts_[i]);
  }
  items_ = std::move(new_items);
  counts_ = std::move(new_counts);
}

bool ItemsetCollection::IsSortedUnique() const {
  for (std::size_t i = 1; i < size(); ++i) {
    if (CompareItemsets(Get(i - 1), Get(i)) >= 0) return false;
  }
  return true;
}

void ItemsetCollection::PruneBelow(Count minsup) {
  std::size_t out = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    if (counts_[i] >= minsup) {
      if (out != i) {
        std::copy_n(items_.begin() + static_cast<std::ptrdiff_t>(
                                         static_cast<std::size_t>(k_) * i),
                    static_cast<std::size_t>(k_),
                    items_.begin() + static_cast<std::ptrdiff_t>(
                                         static_cast<std::size_t>(k_) * out));
        counts_[out] = counts_[i];
      }
      ++out;
    }
  }
  items_.resize(static_cast<std::size_t>(k_) * out);
  counts_.resize(out);
}

std::size_t ItemsetCollection::Find(ItemSpan items) const {
  std::size_t lo = 0;
  std::size_t hi = size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const int c = CompareItemsets(Get(mid), items);
    if (c == 0) return mid;
    if (c < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return npos;
}

std::vector<std::uint64_t> ItemsetCollection::Serialize() const {
  std::vector<std::uint64_t> out;
  out.reserve(2 + items_.size() + counts_.size());
  out.push_back(static_cast<std::uint64_t>(k_));
  out.push_back(size());
  for (Item x : items_) out.push_back(x);
  for (Count c : counts_) out.push_back(c);
  return out;
}

ItemsetCollection ItemsetCollection::Deserialize(const std::uint64_t* data,
                                                 std::size_t num_words) {
  assert(num_words >= 2);
  const int k = static_cast<int>(data[0]);
  const std::size_t n = data[1];
  assert(num_words == 2 + static_cast<std::size_t>(k) * n + n);
  (void)num_words;
  ItemsetCollection col(k);
  std::vector<Item> scratch(static_cast<std::size_t>(k));
  const std::uint64_t* items = data + 2;
  const std::uint64_t* counts = items + static_cast<std::size_t>(k) * n;
  for (std::size_t i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      scratch[static_cast<std::size_t>(j)] = static_cast<Item>(
          items[i * static_cast<std::size_t>(k) + static_cast<std::size_t>(j)]);
    }
    col.AddWithCount(ItemSpan(scratch.data(), scratch.size()), counts[i]);
  }
  return col;
}

}  // namespace pam
