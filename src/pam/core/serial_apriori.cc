#include "pam/core/serial_apriori.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "pam/core/apriori_gen.h"
#include "pam/core/count_team.h"
#include "pam/hashtree/counting_pool.h"
#include "pam/hashtree/pair_counter.h"
#include "pam/obs/trace.h"
#include "pam/util/timer.h"

namespace pam {

Count AprioriConfig::ResolveMinsup(std::size_t n) const {
  if (minsup_count > 0) return minsup_count;
  const double raw = minsup_fraction * static_cast<double>(n);
  const Count c = static_cast<Count>(std::ceil(raw));
  return c > 0 ? c : 1;
}

std::size_t FrequentItemsets::TotalCount() const {
  std::size_t total = 0;
  for (const auto& level : levels) total += level.size();
  return total;
}

bool FrequentItemsets::Lookup(ItemSpan items, Count* count) const {
  if (items.empty() || items.size() > levels.size()) return false;
  const ItemsetCollection& level = levels[items.size() - 1];
  const std::size_t idx = level.Find(items);
  if (idx == ItemsetCollection::npos) return false;
  if (count != nullptr) *count = level.count(idx);
  return true;
}

namespace {

// Counts `candidates` over the slice, honoring the memory cap by chunking.
// Returns the number of database scans performed and accumulates subset
// stats and tree-build inserts. When `f1_for_triangle` is non-null (pass 2
// with the triangle path enabled) and the triangular array fits the memory
// cap, the hash tree is bypassed entirely.
std::size_t CountCandidates(const TransactionDatabase& db,
                            TransactionDatabase::Slice slice,
                            ItemsetCollection& candidates,
                            const AprioriConfig& config, CountingPool* pool,
                            const ItemsetCollection* f1_for_triangle,
                            SerialPassInfo* info) {
  const std::size_t m = candidates.size();
  if (f1_for_triangle != nullptr &&
      TrianglePairCounter::Fits(f1_for_triangle->size(),
                                config.max_candidates_in_memory)) {
    TrianglePairCounter tri(*f1_for_triangle);
    SubsetStats* stats = info != nullptr ? &info->subset : nullptr;
    {
      obs::ScopedSpan count_span(obs::SpanKind::kSubsetCount, /*index=*/0,
                                 "triangle");
      TriangleTeam team(pool, &tri, stats, &config.cancel);
      team.CountSlice(db, slice);
      team.Finish();
      if (info != nullptr) {
        AccumulateShardWork(info->shard_subset_work, team.shard_work());
      }
    }
    std::vector<Count> counts(m, 0);
    tri.Extract(candidates, std::span<Count>(counts));
    candidates.counts() = std::move(counts);
    return 1;
  }
  const std::size_t cap = config.max_candidates_in_memory == 0
                              ? m
                              : config.max_candidates_in_memory;
  const std::size_t num_chunks = m == 0 ? 1 : (m + cap - 1) / cap;

  std::vector<Count> counts(m, 0);
  std::span<Count> counts_span(counts);
  for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
    const std::size_t lo = chunk * cap;
    const std::size_t hi = std::min(m, lo + cap);
    std::vector<std::uint32_t> ids(hi - lo);
    std::iota(ids.begin(), ids.end(), static_cast<std::uint32_t>(lo));
    obs::ScopedSpan build_span(obs::SpanKind::kTreeBuild,
                               static_cast<std::int64_t>(chunk));
    HashTree tree(candidates, std::move(ids), config.tree);
    if (info != nullptr) {
      info->tree_build_inserts += tree.build_inserts();
      if (chunk == 0) info->num_leaves = tree.num_leaves();
    }
    build_span.End();
    obs::ScopedSpan count_span(obs::SpanKind::kSubsetCount,
                               static_cast<std::int64_t>(chunk));
    TeamCounter team(pool, &tree, counts_span,
                     info != nullptr ? &info->subset : nullptr,
                     /*root_filter=*/nullptr, &config.cancel);
    team.CountSlice(db, slice);
    team.Finish();
    if (info != nullptr) {
      AccumulateShardWork(info->shard_subset_work, team.shard_work());
    }
    count_span.End();
  }
  candidates.counts() = std::move(counts);
  return num_chunks;
}

}  // namespace

SerialResult MineSerial(const TransactionDatabase& db,
                        const AprioriConfig& config,
                        std::optional<TransactionDatabase::Slice> slice_opt) {
  const TransactionDatabase::Slice slice =
      slice_opt.value_or(TransactionDatabase::Slice{0, db.size()});
  WallTimer total_timer;
  SerialResult result;
  result.minsup_count = config.ResolveMinsup(slice.size());
  CountingPool pool(config.threads_per_rank);

  // Pass 1: direct counting array, no hash tree needed. With DHP enabled,
  // the same scan also hashes every transaction pair into buckets.
  std::vector<Count> dhp_buckets;
  config.cancel.Checkpoint();
  {
    obs::ScopedSpan pass_span(obs::SpanKind::kPass, /*pass_k=*/1, -1,
                              nullptr);
    WallTimer timer;
    SerialPassInfo info;
    info.k = 1;
    info.threads_per_rank = pool.num_threads();
    std::vector<Count> item_counts = CountItems(db, slice);
    if (config.dhp_buckets > 0) {
      dhp_buckets = CountPairBuckets(db, slice, config.dhp_buckets);
    }
    info.num_candidates = item_counts.size();
    ItemsetCollection f1 = MakeF1(item_counts, result.minsup_count);
    info.num_frequent = f1.size();
    info.seconds = timer.Seconds();
    result.passes.push_back(info);
    result.frequent.levels.push_back(std::move(f1));
  }

  for (int k = 2; config.max_k == 0 || k <= config.max_k; ++k) {
    const ItemsetCollection& prev = result.frequent.levels.back();
    if (prev.size() < 2) break;
    config.cancel.Checkpoint();
    obs::ScopedSpan pass_span(obs::SpanKind::kPass, k, -1, nullptr);
    WallTimer timer;
    SerialPassInfo info;
    info.k = k;
    info.threads_per_rank = pool.num_threads();
    ItemsetCollection candidates = AprioriGen(prev);
    if (k == 2 && !dhp_buckets.empty()) {
      candidates =
          FilterByBuckets(candidates, dhp_buckets, result.minsup_count);
    }
    info.num_candidates = candidates.size();
    if (candidates.empty()) {
      pass_span.Cancel();  // no SerialPassInfo row, so no pass span either
      break;
    }

    const ItemsetCollection* f1_for_triangle =
        (k == 2 && config.use_pass2_triangle) ? &prev : nullptr;
    info.db_scans = CountCandidates(db, slice, candidates, config, &pool,
                                    f1_for_triangle, &info);
    candidates.PruneBelow(result.minsup_count);
    info.num_frequent = candidates.size();
    info.seconds = timer.Seconds();
    result.passes.push_back(info);
    if (candidates.empty()) break;
    result.frequent.levels.push_back(std::move(candidates));
  }

  // Drop a trailing empty level if the loop appended one.
  while (!result.frequent.levels.empty() &&
         result.frequent.levels.back().empty()) {
    result.frequent.levels.pop_back();
  }
  result.total_seconds = total_timer.Seconds();
  return result;
}

}  // namespace pam
