#include "pam/core/apriori_gen.h"

#include <algorithm>
#include <cassert>

namespace pam {

std::vector<Count> CountItems(const TransactionDatabase& db,
                              TransactionDatabase::Slice slice,
                              Item num_items) {
  const Item n = std::max(num_items, db.NumItems());
  std::vector<Count> counts(n, 0);
  for (std::size_t t = slice.begin; t < slice.end; ++t) {
    for (Item x : db.Transaction(t)) ++counts[x];
  }
  return counts;
}

ItemsetCollection MakeF1(const std::vector<Count>& item_counts,
                         Count minsup) {
  ItemsetCollection f1(1);
  for (Item x = 0; x < item_counts.size(); ++x) {
    if (item_counts[x] >= minsup) {
      f1.AddWithCount(ItemSpan(&x, 1), item_counts[x]);
    }
  }
  return f1;
}

std::vector<Count> CountPairBuckets(const TransactionDatabase& db,
                                    TransactionDatabase::Slice slice,
                                    std::size_t num_buckets) {
  assert(num_buckets > 0);
  std::vector<Count> buckets(num_buckets, 0);
  Item pair[2];
  for (std::size_t t = slice.begin; t < slice.end; ++t) {
    ItemSpan tx = db.Transaction(t);
    for (std::size_t i = 0; i < tx.size(); ++i) {
      for (std::size_t j = i + 1; j < tx.size(); ++j) {
        pair[0] = tx[i];
        pair[1] = tx[j];
        ++buckets[HashItemset(ItemSpan(pair, 2)) % num_buckets];
      }
    }
  }
  return buckets;
}

ItemsetCollection FilterByBuckets(const ItemsetCollection& c2,
                                  const std::vector<Count>& buckets,
                                  Count minsup) {
  assert(c2.k() == 2);
  assert(!buckets.empty());
  ItemsetCollection kept(2);
  for (std::size_t i = 0; i < c2.size(); ++i) {
    ItemSpan s = c2.Get(i);
    if (buckets[HashItemset(s) % buckets.size()] >= minsup) {
      kept.AddWithCount(s, c2.count(i));
    }
  }
  return kept;
}

ItemsetCollection AprioriGen(const ItemsetCollection& frequent) {
  assert(frequent.IsSortedUnique());
  const int k_prev = frequent.k();
  const int k = k_prev + 1;
  ItemsetCollection candidates(k);
  if (frequent.size() < 2) return candidates;

  std::vector<Item> joined(static_cast<std::size_t>(k));
  std::vector<Item> subset(static_cast<std::size_t>(k_prev));

  // Join step: scan blocks of itemsets that share their first k-2 items
  // (lexicographic order groups them contiguously) and join each pair.
  std::size_t block_begin = 0;
  while (block_begin < frequent.size()) {
    std::size_t block_end = block_begin + 1;
    ItemSpan first = frequent.Get(block_begin);
    while (block_end < frequent.size()) {
      ItemSpan other = frequent.Get(block_end);
      bool same_prefix = true;
      for (int i = 0; i + 1 < k_prev; ++i) {
        if (first[static_cast<std::size_t>(i)] !=
            other[static_cast<std::size_t>(i)]) {
          same_prefix = false;
          break;
        }
      }
      if (!same_prefix) break;
      ++block_end;
    }

    for (std::size_t a = block_begin; a < block_end; ++a) {
      ItemSpan ia = frequent.Get(a);
      for (std::size_t b = a + 1; b < block_end; ++b) {
        ItemSpan ib = frequent.Get(b);
        // joined = ia + last item of ib (kept sorted because ib > ia
        // lexicographically with equal prefix implies ib.last > ia.last).
        std::copy(ia.begin(), ia.end(), joined.begin());
        joined[static_cast<std::size_t>(k_prev)] =
            ib[static_cast<std::size_t>(k_prev - 1)];

        // Prune step: every (k-1)-subset must be frequent. Subsets formed
        // by dropping position d for d in [0, k-2] (dropping the last or
        // second-to-last reproduces ia/ib which are frequent by input).
        bool all_frequent = true;
        for (int drop = 0; drop + 2 < k && all_frequent; ++drop) {
          std::size_t out = 0;
          for (int i = 0; i < k; ++i) {
            if (i != drop) {
              subset[out++] = joined[static_cast<std::size_t>(i)];
            }
          }
          all_frequent = frequent.Find(ItemSpan(
                             subset.data(), subset.size())) !=
                         ItemsetCollection::npos;
        }
        if (all_frequent) {
          candidates.Add(ItemSpan(joined.data(), joined.size()));
        }
      }
    }
    block_begin = block_end;
  }
  assert(candidates.IsSortedUnique());
  return candidates;
}

}  // namespace pam
