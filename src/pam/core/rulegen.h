#ifndef PAM_CORE_RULEGEN_H_
#define PAM_CORE_RULEGEN_H_

#include <string>
#include <vector>

#include "pam/core/serial_apriori.h"
#include "pam/util/types.h"

namespace pam {

/// An association rule X => Y with X, Y disjoint non-empty itemsets
/// (paper Section II). `support` is sigma(X u Y) / |T| and `confidence`
/// is sigma(X u Y) / sigma(X).
struct Rule {
  std::vector<Item> antecedent;  // X, sorted
  std::vector<Item> consequent;  // Y, sorted
  Count joint_count = 0;         // sigma(X u Y)
  double support = 0.0;
  double confidence = 0.0;

  /// "[1 2] => [3] (sup 0.40, conf 0.66)" style rendering for examples.
  std::string ToString() const;
};

/// Generates every association rule meeting `min_confidence` from the
/// frequent itemsets, using the ap-genrules strategy: consequents of a
/// frequent itemset are grown level-wise (via AprioriGen over the current
/// consequent set) and a consequent is abandoned as soon as its rule falls
/// below the confidence threshold — valid because moving items from the
/// antecedent to the consequent can only lower confidence.
///
/// `num_transactions` converts counts into relative support. Rules are
/// returned sorted by descending confidence, then descending support.
std::vector<Rule> GenerateRules(const FrequentItemsets& frequent,
                                std::size_t num_transactions,
                                double min_confidence);

/// Reference implementation for tests: enumerates every non-empty proper
/// subset of every frequent itemset. Exponential in k — test-sized inputs
/// only.
std::vector<Rule> GenerateRulesBruteForce(const FrequentItemsets& frequent,
                                          std::size_t num_transactions,
                                          double min_confidence);

namespace rulegen_internal {

/// Appends every rule derivable from frequent itemset `index` of
/// `levels[level]` (ap-genrules for a single source itemset). The unit the
/// parallel rule generator distributes across processors — rule
/// generation partitions perfectly because each source itemset's rules
/// are independent (the paper defers to [6] for this step).
void RulesForItemset(const FrequentItemsets& frequent, std::size_t level,
                     std::size_t index, std::size_t num_transactions,
                     double min_confidence, std::vector<Rule>* rules);

/// Canonical ordering used by all rule generators: descending confidence,
/// then descending support, then lexicographic.
void SortRules(std::vector<Rule>& rules);

}  // namespace rulegen_internal

}  // namespace pam

#endif  // PAM_CORE_RULEGEN_H_
