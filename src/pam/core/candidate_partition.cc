#include "pam/core/candidate_partition.h"

#include <algorithm>
#include <cassert>

namespace pam {

LoadSummary CandidatePartition::CandidateBalance() const {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(ids_per_part.size());
  for (const auto& ids : ids_per_part) sizes.push_back(ids.size());
  return Summarize(sizes);
}

CandidatePartition PartitionRoundRobin(std::size_t num_candidates,
                                       int num_parts) {
  assert(num_parts > 0);
  CandidatePartition out;
  out.ids_per_part.resize(static_cast<std::size_t>(num_parts));
  for (std::size_t i = 0; i < num_candidates; ++i) {
    out.ids_per_part[i % static_cast<std::size_t>(num_parts)].push_back(
        static_cast<std::uint32_t>(i));
  }
  return out;
}

CandidatePartition PartitionByPrefix(const ItemsetCollection& candidates,
                                     Item num_items, int num_parts,
                                     PrefixStrategy strategy,
                                     bool split_heavy_prefixes,
                                     const std::vector<std::uint64_t>* item_cost) {
  assert(num_parts > 0);
  assert(candidates.IsSortedUnique());
  const std::size_t m = candidates.size();

  // Contiguous runs of candidates sharing a first item.
  struct Run {
    Item first_item = 0;
    std::uint32_t begin = 0;  // candidate index range [begin, end)
    std::uint32_t end = 0;
  };
  std::vector<Run> runs;
  for (std::size_t i = 0; i < m;) {
    const Item first = candidates.Get(i)[0];
    std::size_t j = i + 1;
    while (j < m && candidates.Get(j)[0] == first) ++j;
    runs.push_back(Run{first, static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(j)});
    i = j;
  }

  // A run of c candidates weighs c (the static candidate-count scheme)
  // or c * item_cost[first] when measured per-item costs are supplied.
  const auto run_weight = [&](const Run& r) -> std::uint64_t {
    const std::uint64_t c = r.end - r.begin;
    if (item_cost == nullptr) return c;
    const auto f = static_cast<std::size_t>(r.first_item);
    return c * (f < item_cost->size() ? (*item_cost)[f] : 1);
  };
  std::uint64_t total_weight = 0;
  for (const Run& r : runs) total_weight += run_weight(r);

  // Optionally split heavy first-items into sub-ranges so no single element
  // exceeds the ideal per-part share (of weight, which equals candidate
  // count in the static scheme).
  if (split_heavy_prefixes && total_weight > 0) {
    const std::uint64_t threshold =
        (total_weight + static_cast<std::uint64_t>(num_parts) - 1) /
        static_cast<std::uint64_t>(num_parts);
    std::vector<Run> refined;
    for (const Run& r : runs) {
      const std::uint64_t w = run_weight(r);
      const std::size_t c = r.end - r.begin;
      if (threshold == 0 || w <= threshold) {
        refined.push_back(r);
        continue;
      }
      // Split by weight, but sub-range boundaries are positional: never
      // finer than one candidate per piece.
      const std::size_t pieces = static_cast<std::size_t>(
          std::min<std::uint64_t>((w + threshold - 1) / threshold, c));
      for (std::size_t p = 0; p < pieces; ++p) {
        Run piece = r;
        piece.begin = r.begin + static_cast<std::uint32_t>(p * c / pieces);
        piece.end = r.begin + static_cast<std::uint32_t>((p + 1) * c / pieces);
        if (piece.end > piece.begin) refined.push_back(piece);
      }
    }
    runs = std::move(refined);
  }

  std::vector<std::uint64_t> weights;
  weights.reserve(runs.size());
  for (const Run& r : runs) weights.push_back(run_weight(r));

  const BinPackingResult packing = strategy == PrefixStrategy::kBinPacked
                                       ? PackBins(weights, num_parts)
                                       : PackContiguous(weights, num_parts);

  CandidatePartition out;
  out.ids_per_part.resize(static_cast<std::size_t>(num_parts));
  out.first_item_filter.assign(static_cast<std::size_t>(num_parts),
                               Bitmap(num_items));
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const int part = packing.bin_of[r];
    auto& ids = out.ids_per_part[static_cast<std::size_t>(part)];
    for (std::uint32_t i = runs[r].begin; i < runs[r].end; ++i) {
      ids.push_back(i);
    }
    out.first_item_filter[static_cast<std::size_t>(part)].Set(
        runs[r].first_item);
  }
  for (auto& ids : out.ids_per_part) std::sort(ids.begin(), ids.end());
  return out;
}

std::uint64_t PartitionDigest(const CandidatePartition& partition) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xffULL;
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  mix(partition.ids_per_part.size());
  for (const auto& ids : partition.ids_per_part) {
    mix(ids.size());
    for (std::uint32_t id : ids) mix(id);
  }
  return h;
}

std::uint64_t PartitionMoves(const CandidatePartition& a,
                             const CandidatePartition& b) {
  std::size_t m = 0;
  for (const auto& ids : a.ids_per_part) m += ids.size();
  std::vector<int> owner(m, -1);
  for (std::size_t p = 0; p < a.ids_per_part.size(); ++p) {
    for (std::uint32_t id : a.ids_per_part[p]) {
      if (id < m) owner[id] = static_cast<int>(p);
    }
  }
  std::uint64_t moves = 0;
  for (std::size_t p = 0; p < b.ids_per_part.size(); ++p) {
    for (std::uint32_t id : b.ids_per_part[p]) {
      if (id >= m || owner[id] != static_cast<int>(p)) ++moves;
    }
  }
  return moves;
}

}  // namespace pam
