#include "pam/core/candidate_partition.h"

#include <algorithm>
#include <cassert>

namespace pam {

LoadSummary CandidatePartition::CandidateBalance() const {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(ids_per_part.size());
  for (const auto& ids : ids_per_part) sizes.push_back(ids.size());
  return Summarize(sizes);
}

CandidatePartition PartitionRoundRobin(std::size_t num_candidates,
                                       int num_parts) {
  assert(num_parts > 0);
  CandidatePartition out;
  out.ids_per_part.resize(static_cast<std::size_t>(num_parts));
  for (std::size_t i = 0; i < num_candidates; ++i) {
    out.ids_per_part[i % static_cast<std::size_t>(num_parts)].push_back(
        static_cast<std::uint32_t>(i));
  }
  return out;
}

CandidatePartition PartitionByPrefix(const ItemsetCollection& candidates,
                                     Item num_items, int num_parts,
                                     PrefixStrategy strategy,
                                     bool split_heavy_prefixes) {
  assert(num_parts > 0);
  assert(candidates.IsSortedUnique());
  const std::size_t m = candidates.size();

  // Contiguous runs of candidates sharing a first item.
  struct Run {
    Item first_item = 0;
    std::uint32_t begin = 0;  // candidate index range [begin, end)
    std::uint32_t end = 0;
  };
  std::vector<Run> runs;
  for (std::size_t i = 0; i < m;) {
    const Item first = candidates.Get(i)[0];
    std::size_t j = i + 1;
    while (j < m && candidates.Get(j)[0] == first) ++j;
    runs.push_back(Run{first, static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(j)});
    i = j;
  }

  // Optionally split heavy first-items into sub-ranges so no single element
  // exceeds the ideal per-part share.
  if (split_heavy_prefixes && m > 0) {
    const std::size_t threshold =
        (m + static_cast<std::size_t>(num_parts) - 1) /
        static_cast<std::size_t>(num_parts);
    std::vector<Run> refined;
    for (const Run& r : runs) {
      const std::size_t w = r.end - r.begin;
      if (threshold == 0 || w <= threshold) {
        refined.push_back(r);
        continue;
      }
      const std::size_t pieces = (w + threshold - 1) / threshold;
      for (std::size_t p = 0; p < pieces; ++p) {
        Run piece = r;
        piece.begin = r.begin + static_cast<std::uint32_t>(p * w / pieces);
        piece.end = r.begin + static_cast<std::uint32_t>((p + 1) * w / pieces);
        if (piece.end > piece.begin) refined.push_back(piece);
      }
    }
    runs = std::move(refined);
  }

  std::vector<std::uint64_t> weights;
  weights.reserve(runs.size());
  for (const Run& r : runs) weights.push_back(r.end - r.begin);

  const BinPackingResult packing = strategy == PrefixStrategy::kBinPacked
                                       ? PackBins(weights, num_parts)
                                       : PackContiguous(weights, num_parts);

  CandidatePartition out;
  out.ids_per_part.resize(static_cast<std::size_t>(num_parts));
  out.first_item_filter.assign(static_cast<std::size_t>(num_parts),
                               Bitmap(num_items));
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const int part = packing.bin_of[r];
    auto& ids = out.ids_per_part[static_cast<std::size_t>(part)];
    for (std::uint32_t i = runs[r].begin; i < runs[r].end; ++i) {
      ids.push_back(i);
    }
    out.first_item_filter[static_cast<std::size_t>(part)].Set(
        runs[r].first_item);
  }
  for (auto& ids : out.ids_per_part) std::sort(ids.begin(), ids.end());
  return out;
}

}  // namespace pam
