#ifndef PAM_CORE_SERIAL_APRIORI_H_
#define PAM_CORE_SERIAL_APRIORI_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "pam/core/itemset_collection.h"
#include "pam/hashtree/hash_tree.h"
#include "pam/tdb/database.h"
#include "pam/util/cancel.h"

namespace pam {

/// Mining parameters shared by the serial algorithm and all four parallel
/// formulations.
struct AprioriConfig {
  /// Absolute minimum support count. If 0, it is derived as
  /// ceil(minsup_fraction * |T|).
  Count minsup_count = 0;
  /// Relative minimum support; only used when minsup_count == 0. The
  /// paper's experiments use 0.1% .. 0.025%.
  double minsup_fraction = 0.01;
  /// Hash tree shape.
  HashTreeConfig tree;
  /// Stop after this pass (0 = run until F_k is empty). The paper's
  /// Figures 13-15 measure pass 3 only (max_k = 3 with count_only_last_pass
  /// semantics handled by the benches).
  int max_k = 0;
  /// When non-zero, at most this many candidates may be resident in memory
  /// at once: the candidate set is partitioned into ceil(M / capacity)
  /// chunks and the transactions are re-scanned once per chunk, exactly the
  /// multi-pass behaviour the paper describes for CD when the hash tree
  /// overflows memory (Figure 12). 0 = unlimited.
  std::size_t max_candidates_in_memory = 0;
  /// DHP-style pair-hash filtering (Park/Chen/Yu, the paper's refs [12]
  /// and [15]; PDM = CD + DHP): when non-zero, pass 1 additionally hashes
  /// every item pair of every transaction into this many buckets, and C_2
  /// keeps only candidates whose bucket count reaches minsup. Bucket
  /// counts upper-bound true supports, so results are identical — only
  /// C_2 (the pass the paper's Table II shows ballooning) shrinks.
  /// 0 = disabled.
  std::size_t dhp_buckets = 0;
  /// Pass-2 specialization: count C_2 with a flat triangular array over
  /// F_1 ranks instead of the hash tree (see TrianglePairCounter). Exact
  /// same counts and frequent itemsets, much faster — but no tree means no
  /// traversal/leaf-visit stats for pass 2, so the Figure 11/12
  /// instrumentation runs disable it. Only taken when the triangle fits
  /// max_candidates_in_memory. Used by the serial miner and every parallel
  /// formulation: CD counts the full triangle and reduces it, DD/IDD/HD
  /// count the full triangle over the circulating pages and extract only
  /// their candidate partition, HPA counts locally and reduces (its subset
  /// routing has nothing to route when every rank already holds the
  /// triangle).
  bool use_pass2_triangle = true;
  /// Size of the intra-rank counting team (DESIGN.md §11): the counting
  /// hot path of every pass splits its transactions across this many
  /// shards — shard 0 on the rank thread, the rest on a CountingPool of
  /// worker threads, each accumulating into a cache-line padded counter
  /// strip merged deterministically at the end of the batch. 1 (the
  /// default) spawns no threads and takes exactly the old code path;
  /// results are byte-identical for every value.
  int threads_per_rank = 1;
  /// Cooperative cancellation/deadline handle (DESIGN.md §13). Checked at
  /// every pass boundary and on every bounded interval inside the
  /// subset-count team; a fired token makes the miner throw
  /// CancelledError. The default null token costs one pointer test per
  /// check point and nothing on the counting hot loop.
  CancelToken cancel;

  /// Resolves the absolute support threshold for a database of size n.
  Count ResolveMinsup(std::size_t n) const;
};

/// Per-pass measurements of a serial run; the parallel metrics extend this.
struct SerialPassInfo {
  int k = 0;
  std::size_t num_candidates = 0;
  std::size_t num_frequent = 0;
  std::size_t num_leaves = 0;
  std::uint64_t tree_build_inserts = 0;
  /// Number of full scans of the transactions in this pass (> 1 only when
  /// max_candidates_in_memory forces chunking).
  std::size_t db_scans = 1;
  SubsetStats subset;
  /// Counting-team shape of this pass: configured team size and the subset
  /// work (traversal steps + candidates checked) done by each shard, in
  /// shard order. shard_subset_work is empty when the team was inactive.
  int threads_per_rank = 1;
  std::vector<std::uint64_t> shard_subset_work;
  double seconds = 0.0;
};

/// All frequent itemsets, one collection per size k (levels[0] is F_1).
struct FrequentItemsets {
  std::vector<ItemsetCollection> levels;

  std::size_t TotalCount() const;
  /// Largest k with non-empty F_k (0 if nothing is frequent).
  int MaxK() const { return static_cast<int>(levels.size()); }
  /// Lookup of an itemset's global support count; returns npos-like
  /// `found=false` if the set is not frequent.
  bool Lookup(ItemSpan items, Count* count) const;
};

/// Result of a serial mining run.
struct SerialResult {
  FrequentItemsets frequent;
  std::vector<SerialPassInfo> passes;
  Count minsup_count = 0;
  double total_seconds = 0.0;
};

/// The serial Apriori algorithm of the paper's Figure 1. Mines the whole
/// database by default; pass `slice` to restrict the run to a transaction
/// range (minsup resolves against the slice size).
SerialResult MineSerial(
    const TransactionDatabase& db, const AprioriConfig& config,
    std::optional<TransactionDatabase::Slice> slice = std::nullopt);

}  // namespace pam

#endif  // PAM_CORE_SERIAL_APRIORI_H_
