#ifndef PAM_CORE_ITEMSETS_IO_H_
#define PAM_CORE_ITEMSETS_IO_H_

#include <string>

#include "pam/core/serial_apriori.h"
#include "pam/util/status.h"

namespace pam {

/// Persists mined frequent itemsets so the expensive counting step can be
/// decoupled from rule generation (pam_mine --save-itemsets /
/// --load-itemsets). Binary format: magic, number of levels, then each
/// level's ItemsetCollection serialization.
Status WriteFrequentItemsets(const FrequentItemsets& frequent,
                             const std::string& path);

/// Reads a file written by WriteFrequentItemsets, validating the magic
/// and structural invariants (level k at position k-1, sorted-unique
/// collections).
Result<FrequentItemsets> ReadFrequentItemsets(const std::string& path);

}  // namespace pam

#endif  // PAM_CORE_ITEMSETS_IO_H_
