#ifndef PAM_CORE_MAXIMAL_H_
#define PAM_CORE_MAXIMAL_H_

#include <vector>

#include "pam/core/serial_apriori.h"

namespace pam {

/// Extracts the *maximal* frequent itemsets: frequent itemsets with no
/// frequent superset. The union of all frequent itemsets is exactly the
/// downward closure of this set, so it is the most compact lossless
/// summary of which itemsets are frequent (the paper's synthetic
/// generator is parameterized by the "maximal potentially frequent
/// itemsets" for the same reason). Result is grouped by size like the
/// input, counts preserved.
FrequentItemsets ExtractMaximal(const FrequentItemsets& frequent);

/// Extracts the *closed* frequent itemsets: frequent itemsets with no
/// superset of equal support. Closed sets preserve not just frequency
/// membership but every support count.
FrequentItemsets ExtractClosed(const FrequentItemsets& frequent);

/// True if `items` is frequent according to `frequent` — i.e. present in
/// the downward closure of the maximal sets. Works on outputs of
/// ExtractMaximal as well as full FrequentItemsets.
bool CoveredByClosure(const FrequentItemsets& maximal, ItemSpan items);

}  // namespace pam

#endif  // PAM_CORE_MAXIMAL_H_
