#ifndef PAM_CORE_COUNT_TEAM_H_
#define PAM_CORE_COUNT_TEAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "pam/hashtree/counting_pool.h"
#include "pam/hashtree/hash_tree.h"
#include "pam/hashtree/pair_counter.h"
#include "pam/obs/trace.h"
#include "pam/tdb/database.h"
#include "pam/tdb/page_buffer.h"
#include "pam/util/bitmap.h"
#include "pam/util/cancel.h"
#include "pam/util/types.h"

namespace pam {

/// Transactions counted between two cancellation checks inside the team
/// (DESIGN.md §13): with a live token, CountSlice splits its batch at this
/// stride and runs Beat() + ThrowIfCancelled() between sub-batches, so a
/// fired deadline interrupts even a single enormous counting call within a
/// bounded amount of work. A null token takes the unsplit fast path.
inline constexpr std::size_t kCancelCheckStride = 2048;

/// Elementwise `into[i] += from[i]`, growing `into` as needed: folds one
/// counting batch's per-shard work vector into a pass accumulator.
void AccumulateShardWork(std::vector<std::uint64_t>& into,
                         const std::vector<std::uint64_t>& from);

/// Drives one pass's hash-tree counting through the intra-rank team
/// (DESIGN.md §11): transactions are split across the pool's shards, shard
/// 0 counting on the calling rank thread directly into `counts`, shards
/// 1..T-1 counting into cache-line padded CounterStrips with per-shard
/// HashTree::Scratch. Finish() merges strips and per-shard stats in fixed
/// shard order, so counts and SubsetStats are byte-identical to the
/// single-threaded path for every team size.
///
/// With a 1-thread pool (or the kClassic kernel, whose traversal mutates
/// the tree) the team degenerates to direct Subset() calls — the exact
/// pre-team code path, no strips, no extra allocation.
class TeamCounter {
 public:
  /// `pool`, `tree`, `counts`, `stats`, `root_filter`, `cancel` and the
  /// memory behind `item_work` must outlive the counter. `stats` may be
  /// null (work counters are then not collected); `cancel` may be null or
  /// point at a null token (no cancellation checks — the exact pre-token
  /// code path). A non-empty `item_work` span (indexed by item id, caller
  /// zeroed) turns on work attribution: after Finish() it holds each root
  /// item's share of the measured subset work, and `leaf_visits` (size
  /// tree->num_leaves(), caller zeroed, required alongside item_work)
  /// holds each leaf's distinct-visit count — both merged over shards in
  /// fixed order (see HashTree::Subset).
  TeamCounter(CountingPool* pool, HashTree* tree, std::span<Count> counts,
              SubsetStats* stats, const Bitmap* root_filter = nullptr,
              const CancelToken* cancel = nullptr,
              std::span<std::uint64_t> item_work = {},
              std::span<std::uint64_t> leaf_visits = {});

  /// Counts transactions [slice.begin, slice.end) of `db`; returns how
  /// many transactions were processed.
  std::size_t CountSlice(const TransactionDatabase& db,
                         TransactionDatabase::Slice slice);

  /// Counts every transaction of one wire page; returns how many.
  std::size_t CountPage(PageView page);

  /// Merges the team's strips and stats into `counts` / `stats`. Call
  /// exactly once, after the last CountSlice/CountPage.
  void Finish();

  /// Effective team size (1 when the team is degenerate).
  int team() const { return team_; }

  /// Subset work (traversal steps + candidates checked) per shard, valid
  /// after Finish(). Empty when the team is degenerate or stats was null.
  const std::vector<std::uint64_t>& shard_work() const { return shard_work_; }

 private:
  template <typename TxAt>
  void RunBatch(std::size_t n, const TxAt& tx_at);

  CountingPool* pool_;
  HashTree* tree_;
  std::span<Count> counts_;
  SubsetStats* stats_;
  const Bitmap* filter_;
  const CancelToken* cancel_;
  obs::RankTracer* tracer_;  // the rank's tracer, re-installed on workers
  int team_;
  bool finished_ = false;

  std::span<std::uint64_t> item_work_;
  std::span<std::uint64_t> leaf_visits_;

  // Team-active (team_ > 1) state.
  CounterStrips strips_;
  std::vector<HashTree::Scratch> scratch_;     // one per shard
  std::vector<SubsetStats> shard_stats_;       // one per shard
  std::vector<std::uint64_t> shard_work_;
  // Per-shard attribution strips (shards 1..T-1; shard 0 writes the
  // caller spans directly), merged by Finish() in fixed shard order.
  std::vector<std::vector<std::uint64_t>> shard_item_work_;
  std::vector<std::vector<std::uint64_t>> shard_leaf_visits_;
  std::vector<ItemSpan> page_tx_;  // reusable page-decode buffer
};

/// The TeamCounter counterpart for the pass-2 triangle kernel: shard 0
/// counts into the shared TrianglePairCounter, shards 1..T-1 into private
/// TrianglePairCounter::Shard triangles merged in fixed shard order by
/// Finish(). Same determinism guarantee as TeamCounter.
class TriangleTeam {
 public:
  TriangleTeam(CountingPool* pool, TrianglePairCounter* tri,
               SubsetStats* stats, const CancelToken* cancel = nullptr);

  std::size_t CountSlice(const TransactionDatabase& db,
                         TransactionDatabase::Slice slice);
  std::size_t CountPage(PageView page);

  /// Merges shard triangles and stats. Call exactly once; afterwards the
  /// parent TrianglePairCounter holds the complete counts.
  void Finish();

  int team() const { return team_; }
  const std::vector<std::uint64_t>& shard_work() const { return shard_work_; }

 private:
  template <typename TxAt>
  void RunBatch(std::size_t n, const TxAt& tx_at);

  CountingPool* pool_;
  TrianglePairCounter* tri_;
  SubsetStats* stats_;
  const CancelToken* cancel_;
  obs::RankTracer* tracer_;
  int team_;
  bool finished_ = false;

  std::vector<TrianglePairCounter::Shard> shards_;  // shards 1..T-1
  std::vector<SubsetStats> shard_stats_;
  std::vector<std::uint64_t> shard_work_;
  std::vector<ItemSpan> page_tx_;
};

}  // namespace pam

#endif  // PAM_CORE_COUNT_TEAM_H_
