#ifndef PAM_CORE_APRIORI_GEN_H_
#define PAM_CORE_APRIORI_GEN_H_

#include <vector>

#include "pam/core/itemset_collection.h"
#include "pam/tdb/database.h"

namespace pam {

/// Counts how often each item id occurs across the transactions in `slice`.
/// The result has `db.NumItems()` entries (or `num_items` if larger, so the
/// parallel algorithms can size the array consistently across ranks whose
/// local slices may not contain the globally largest item).
std::vector<Count> CountItems(const TransactionDatabase& db,
                              TransactionDatabase::Slice slice,
                              Item num_items = 0);

/// Builds F_1 from per-item counts: all items with count >= minsup, in item
/// order (which is lexicographic order for 1-itemsets).
ItemsetCollection MakeF1(const std::vector<Count>& item_counts, Count minsup);

/// DHP pair-bucket counting: hashes every 2-subset of every transaction in
/// `slice` into `num_buckets` counters (via HashItemset % num_buckets).
/// A pair's bucket count always upper-bounds its true support, so C_2
/// candidates in light buckets can be pruned safely.
std::vector<Count> CountPairBuckets(const TransactionDatabase& db,
                                    TransactionDatabase::Slice slice,
                                    std::size_t num_buckets);

/// Drops the candidates of `c2` (k must be 2) whose DHP bucket count is
/// below `minsup`. Returns the filtered collection (order preserved).
ItemsetCollection FilterByBuckets(const ItemsetCollection& c2,
                                  const std::vector<Count>& buckets,
                                  Count minsup);

/// The apriori_gen(F_{k-1}) candidate generation of the paper's Figure 1:
/// joins pairs of frequent (k-1)-itemsets sharing their first k-2 items and
/// prunes any candidate with an infrequent (k-1)-subset. `frequent` must be
/// sorted lexicographically (IsSortedUnique()); the result is sorted.
ItemsetCollection AprioriGen(const ItemsetCollection& frequent);

}  // namespace pam

#endif  // PAM_CORE_APRIORI_GEN_H_
