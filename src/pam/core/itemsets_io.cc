#include "pam/core/itemsets_io.h"

#include <fstream>
#include <vector>

namespace pam {
namespace {

constexpr std::uint64_t kItemsetsMagic = 0x50414d4649303146ULL;  // PAMFI01F

}  // namespace

Status WriteFrequentItemsets(const FrequentItemsets& frequent,
                             const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Error("cannot open for writing: " + path);
  auto put_u64 = [&out](std::uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put_u64(kItemsetsMagic);
  put_u64(frequent.levels.size());
  for (const ItemsetCollection& level : frequent.levels) {
    const std::vector<std::uint64_t> words = level.Serialize();
    put_u64(words.size());
    out.write(reinterpret_cast<const char*>(words.data()),
              static_cast<std::streamsize>(words.size() *
                                           sizeof(std::uint64_t)));
  }
  out.flush();
  if (!out) return Status::Error("write failed: " + path);
  return Status::Ok();
}

Result<FrequentItemsets> ReadFrequentItemsets(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::Error("cannot open for reading: " + path);
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  auto get_u64 = [&in]() {
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  if (file_bytes < 2 * sizeof(std::uint64_t) ||
      get_u64() != kItemsetsMagic) {
    return Status::Error("bad magic in " + path);
  }
  const std::uint64_t num_levels = get_u64();
  if (num_levels > file_bytes) {
    return Status::Error("corrupt level count in " + path);
  }
  FrequentItemsets frequent;
  for (std::uint64_t level = 0; level < num_levels; ++level) {
    const std::uint64_t num_words = get_u64();
    if (!in || num_words < 2 ||
        num_words * sizeof(std::uint64_t) > file_bytes) {
      return Status::Error("corrupt level size in " + path);
    }
    std::vector<std::uint64_t> words(num_words);
    in.read(reinterpret_cast<char*>(words.data()),
            static_cast<std::streamsize>(num_words *
                                         sizeof(std::uint64_t)));
    if (!in) return Status::Error("truncated file: " + path);
    // Validate the collection header against its own word count before
    // deserializing.
    const std::uint64_t k = words[0];
    const std::uint64_t n = words[1];
    if (k != level + 1 || 2 + (k + 1) * n != num_words) {
      return Status::Error("corrupt level header in " + path);
    }
    // Each itemset must be strictly ascending and item-sized.
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t* set = words.data() + 2 + i * k;
      for (std::uint64_t j = 0; j < k; ++j) {
        if (set[j] > 0xffffffffULL ||
            (j > 0 && set[j - 1] >= set[j])) {
          return Status::Error("corrupt itemset in " + path);
        }
      }
    }
    ItemsetCollection collection =
        ItemsetCollection::Deserialize(words.data(), words.size());
    if (!collection.IsSortedUnique()) {
      return Status::Error("level not sorted-unique in " + path);
    }
    frequent.levels.push_back(std::move(collection));
  }
  return frequent;
}

}  // namespace pam
