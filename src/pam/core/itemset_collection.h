#ifndef PAM_CORE_ITEMSET_COLLECTION_H_
#define PAM_CORE_ITEMSET_COLLECTION_H_

#include <cstdint>
#include <vector>

#include "pam/util/types.h"

namespace pam {

/// A flat, cache-friendly collection of fixed-arity itemsets with one
/// support counter per itemset. Used for candidate sets C_k and frequent
/// sets F_k: storing k*|C| items contiguously instead of |C| separate
/// vectors keeps pass-k memory proportional to the paper's M and makes
/// serialization across the message-passing layer trivial.
class ItemsetCollection {
 public:
  /// Creates an empty collection of k-itemsets. k must be >= 1.
  explicit ItemsetCollection(int k);

  int k() const { return k_; }
  std::size_t size() const { return counts_.size(); }
  bool empty() const { return counts_.empty(); }

  /// Appends an itemset with count 0. `items.size()` must equal k and items
  /// must be sorted ascending.
  void Add(ItemSpan items);

  /// Appends an itemset with an explicit count.
  void AddWithCount(ItemSpan items, Count count);

  /// Items of itemset `i`.
  ItemSpan Get(std::size_t i) const {
    return ItemSpan(items_.data() + static_cast<std::size_t>(k_) * i,
                    static_cast<std::size_t>(k_));
  }

  Count count(std::size_t i) const { return counts_[i]; }
  void set_count(std::size_t i, Count c) { counts_[i] = c; }
  void add_count(std::size_t i, Count delta) { counts_[i] += delta; }

  /// Mutable access to all counts (used by global reductions).
  std::vector<Count>& counts() { return counts_; }
  const std::vector<Count>& counts() const { return counts_; }

  /// Sorts itemsets lexicographically, permuting counts along. apriori_gen
  /// requires its input F_{k-1} in lexicographic order.
  void SortLexicographic();

  /// Returns true if itemsets are in strictly increasing lexicographic
  /// order (i.e., sorted and duplicate-free).
  bool IsSortedUnique() const;

  /// Keeps only itemsets with count >= minsup (the F_k = {c in C_k |
  /// c.count >= minsup} pruning step), preserving order.
  void PruneBelow(Count minsup);

  /// Index of `items` via binary search, or npos. Requires IsSortedUnique().
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t Find(ItemSpan items) const;

  /// Serialization for the message-passing layer: k, size, items, counts
  /// flattened into u64 words.
  std::vector<std::uint64_t> Serialize() const;
  static ItemsetCollection Deserialize(const std::uint64_t* data,
                                       std::size_t num_words);

 private:
  int k_;
  std::vector<Item> items_;   // k_ * size() entries
  std::vector<Count> counts_;
};

}  // namespace pam

#endif  // PAM_CORE_ITEMSET_COLLECTION_H_
