#include "pam/model/vij.h"

#include <cmath>

namespace pam {

double ExpectedDistinctLeaves(double num_potential_candidates,
                              double num_leaves) {
  const double i = num_potential_candidates;
  const double j = num_leaves;
  if (i <= 0.0 || j <= 0.0) return 0.0;
  if (j <= 1.0) return 1.0;
  // j * (1 - ((j-1)/j)^i) computed via expm1/log1p for stability when j is
  // large (where (j-1)/j is close to 1).
  const double log_ratio = std::log1p(-1.0 / j);
  return -j * std::expm1(i * log_ratio);
}

double ExpectedDistinctLeavesRecurrence(
    std::uint64_t num_potential_candidates, double num_leaves) {
  if (num_potential_candidates == 0 || num_leaves <= 0.0) return 0.0;
  if (num_leaves <= 1.0) return 1.0;
  double v = 1.0;
  const double keep = (num_leaves - 1.0) / num_leaves;
  for (std::uint64_t i = 2; i <= num_potential_candidates; ++i) {
    v = 1.0 + keep * v;
  }
  return v;
}

double BinomialCoefficient(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (std::uint64_t i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i);
    result /= static_cast<double>(i);
    if (std::isinf(result)) return result;
  }
  return result;
}

}  // namespace pam
