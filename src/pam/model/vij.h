#ifndef PAM_MODEL_VIJ_H_
#define PAM_MODEL_VIJ_H_

#include <cstdint>

namespace pam {

/// The paper's Equation 1: V_{i,j}, the expected number of *distinct* leaf
/// nodes visited when a transaction generates i potential candidates
/// against a hash tree with j leaves (each traversal equally likely to
/// reach any leaf):
///
///   V_{i,j} = (j^i - (j-1)^i) / j^(i-1)  =  j * (1 - ((j-1)/j)^i)
///
/// The closed form below uses the numerically stable right-hand expression.
/// For j -> infinity, V_{i,j} -> i (the paper's Equation 2): every
/// potential candidate reaches a fresh leaf when the tree dwarfs the
/// transaction.
double ExpectedDistinctLeaves(double num_potential_candidates,
                              double num_leaves);

/// The recurrence the closed form is derived from:
///   V_{1,j} = 1;  V_{i,j} = 1 + (j-1)/j * V_{i-1,j}
/// Used by tests to validate the closed form.
double ExpectedDistinctLeavesRecurrence(std::uint64_t num_potential_candidates,
                                        double num_leaves);

/// Binomial coefficient C(n, k) as double (saturates gracefully for large
/// inputs); the paper's C = (I choose k) potential-candidate count for a
/// transaction with I items in pass k.
double BinomialCoefficient(std::uint64_t n, std::uint64_t k);

}  // namespace pam

#endif  // PAM_MODEL_VIJ_H_
