#ifndef PAM_MODEL_EXPLAIN_H_
#define PAM_MODEL_EXPLAIN_H_

#include <string>

#include "pam/model/cost_model.h"

namespace pam {

/// Renders a per-pass explanation of a parallel run under a cost model:
/// pass, grid, candidate counts, subset work distribution (with load
/// imbalance), communication, and the modeled time split by component —
/// the decomposition the paper uses in its Figure-13 discussion. Used by
/// examples and the pam_mine CLI (--explain).
std::string ExplainRun(const CostModel& model, Algorithm algorithm,
                       const RunMetrics& metrics);

/// One-line per-pass summary table without machine modeling (exact
/// counters only).
std::string SummarizeCounters(const RunMetrics& metrics);

}  // namespace pam

#endif  // PAM_MODEL_EXPLAIN_H_
