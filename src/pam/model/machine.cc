#include "pam/model/machine.h"

namespace pam {

MachineModel MachineModel::CrayT3E() {
  MachineModel m;
  m.name = "Cray T3E";
  // 600 MHz EV5: a hash-step is a few tens of cycles; leaf checks touch
  // more memory.
  m.t_travers = 60e-9;
  m.t_root = 25e-9;
  m.t_check = 200e-9;
  m.t_compare = 50e-9;
  m.t_build = 500e-9;
  m.t_gen = 250e-9;
  // Paper: 303 MB/s measured for 16 KB messages, 16 us effective startup.
  m.latency = 16e-6;
  m.bandwidth = 303.0 * 1024 * 1024;
  // 3D torus, one outstanding transfer per node: the unstructured
  // all-to-all pays heavy contention relative to the ring.
  m.dd_contention = 4.0;
  // Transactions buffered in memory on the T3E runs; I/O free.
  m.io_bandwidth = 0.0;
  m.memory_capacity_candidates = 0;
  return m;
}

MachineModel MachineModel::IbmSp2() {
  MachineModel m;
  m.name = "IBM SP2";
  // 66.7 MHz Power2: roughly an order of magnitude slower per operation.
  m.t_travers = 500e-9;
  m.t_root = 200e-9;
  m.t_check = 1.6e-6;
  m.t_compare = 400e-9;
  m.t_build = 4e-6;
  m.t_gen = 2e-6;
  m.latency = 40e-6;
  m.bandwidth = 35.0 * 1024 * 1024;  // effective HPS throughput
  m.dd_contention = 3.0;
  // Disk-resident database (Figure 12).
  m.io_bandwidth = 8.0 * 1024 * 1024;
  // ~0.7M candidates per node fit comfortably; Figure 12 sweeps past it.
  m.memory_capacity_candidates = 700000;
  return m;
}

}  // namespace pam
