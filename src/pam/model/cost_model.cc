#include "pam/model/cost_model.h"

#include <algorithm>
#include <cmath>

namespace pam {
namespace {

double CeilLog2(int n) {
  if (n <= 1) return 0.0;
  return std::ceil(std::log2(static_cast<double>(n)));
}

}  // namespace

double CostModel::SubsetSeconds(const SubsetStats& stats) const {
  return static_cast<double>(stats.root_items_considered +
                             stats.root_items_skipped) *
             machine_.t_root +
         static_cast<double>(stats.traversal_steps) * machine_.t_travers +
         static_cast<double>(stats.distinct_leaf_visits) * machine_.t_check +
         static_cast<double>(stats.leaf_candidates_checked) *
             machine_.t_compare;
}

PassTimeBreakdown CostModel::PassTime(
    Algorithm algorithm, const std::vector<PassMetrics>& ranks) const {
  PassTimeBreakdown out;
  if (ranks.empty()) return out;
  const int p = static_cast<int>(ranks.size());

  // Compute terms: the slowest rank paces the pass (ranks meet at the
  // pass-end collectives), so load imbalance surfaces as a larger max.
  std::uint64_t max_reduction_words = 0;
  std::uint64_t sum_broadcast_words = 0;
  double max_data_comm = 0.0;
  for (const PassMetrics& m : ranks) {
    out.subset = std::max(out.subset, SubsetSeconds(m.subset));
    out.tree_build = std::max(
        out.tree_build,
        static_cast<double>(m.tree_build_inserts) * machine_.t_build +
            static_cast<double>(m.num_candidates_global) * machine_.t_gen);
    max_reduction_words = std::max(max_reduction_words, m.reduction_words);
    sum_broadcast_words += m.broadcast_words;
    const double comm =
        static_cast<double>(m.data_bytes_sent) / machine_.bandwidth +
        static_cast<double>(m.data_messages_sent) * machine_.latency;
    max_data_comm = std::max(max_data_comm, comm);
    if (machine_.io_bandwidth > 0.0) {
      out.io = std::max(
          out.io, static_cast<double>(m.db_scans) *
                      static_cast<double>(m.local_db_wire_bytes) /
                      machine_.io_bandwidth);
    }
  }

  // Data movement: the unstructured all-to-all patterns (DD's page
  // scatter, HPA's subset scatter) additionally pay network contention;
  // the ring pipeline (DD+comm / IDD / HD columns) does not.
  out.data_comm =
      algorithm == Algorithm::kDD || algorithm == Algorithm::kHPA
          ? max_data_comm * machine_.dd_contention
          : max_data_comm;

  // Count reduction: recursive-halving tree over the participating group
  // (all P ranks for CD; grid rows of width cols for HD).
  if (max_reduction_words > 0) {
    int group = p;
    if (algorithm == Algorithm::kHD) group = ranks[0].grid_cols;
    const double stages = CeilLog2(group);
    out.reduction =
        stages * (machine_.latency +
                  static_cast<double>(max_reduction_words) * 8.0 /
                      machine_.bandwidth);
  }

  // Frequent-set exchange: ring all-gather within each exchange group
  // (whole machine for DD/IDD, grid columns for HD; the groups proceed in
  // parallel, so the per-group volume is the summed contribution divided
  // by the number of groups).
  if (sum_broadcast_words > 0) {
    int group_members = p;
    int num_groups = 1;
    if (algorithm == Algorithm::kHD) {
      group_members = ranks[0].grid_rows;
      num_groups = ranks[0].grid_cols;
    }
    const double group_words = static_cast<double>(sum_broadcast_words) /
                               static_cast<double>(num_groups);
    out.broadcast = static_cast<double>(group_members - 1) *
                        machine_.latency +
                    group_words * 8.0 / machine_.bandwidth;
  }
  return out;
}

double CostModel::RunTime(Algorithm algorithm,
                          const RunMetrics& metrics) const {
  double total = 0.0;
  for (const auto& pass : metrics.per_pass) {
    total += PassTime(algorithm, pass).Total();
  }
  return total;
}

double CostModel::SerialPassTime(const SerialPassInfo& pass,
                                 std::uint64_t db_wire_bytes) const {
  double t = SubsetSeconds(pass.subset) +
             static_cast<double>(pass.tree_build_inserts) * machine_.t_build +
             static_cast<double>(pass.num_candidates) * machine_.t_gen;
  if (machine_.io_bandwidth > 0.0) {
    t += static_cast<double>(pass.db_scans) *
         static_cast<double>(db_wire_bytes) / machine_.io_bandwidth;
  }
  return t;
}

double CostModel::SerialRunTime(const SerialResult& result,
                                std::uint64_t db_wire_bytes) const {
  double total = 0.0;
  for (const SerialPassInfo& pass : result.passes) {
    total += SerialPassTime(pass, db_wire_bytes);
  }
  return total;
}

}  // namespace pam
