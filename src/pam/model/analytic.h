#ifndef PAM_MODEL_ANALYTIC_H_
#define PAM_MODEL_ANALYTIC_H_

#include "pam/model/machine.h"
#include "pam/parallel/algorithms.h"

namespace pam {

/// Inputs of the paper's Section IV closed-form analysis (Table III):
/// everything is a *given* here — no mining is run. The analytic
/// predictor is the paper's Equations 3-7 executed literally; the
/// measured-counter CostModel is its empirical counterpart, and
/// bench_section4_predictions compares the two.
struct AnalyticWorkload {
  double num_transactions = 0;       // N (total)
  double num_candidates = 0;         // M (total, this pass)
  double avg_transaction_items = 15; // I
  int pass_k = 2;                    // k
  double avg_leaf_candidates = 16;   // S (so L = M / S)
  int num_processors = 1;            // P
  int hd_grid_rows = 1;              // G (HD only)

  /// C = (I choose k), the potential candidates per transaction.
  double PotentialCandidates() const;
  /// L = M / S, the serial tree's expected leaf count.
  double SerialLeaves() const;
};

/// Per-pass time predictions (seconds) from the paper's equations:
///   Eq. 3: T_serial = N*C*t_travers + N*V(C, L)*t_check + O(M)
///   Eq. 4: T_CD     = (N/P)*C*t_tr + (N/P)*V(C, L)*t_ch + O(M)
///   Eq. 5: T_DD     = N*C*t_tr + N*V(C, L/P)*t_ch + O(M/P) + O(N)
///   Eq. 6: T_IDD    = N*(C/P)*t_tr + N*V(C/P, L/P)*t_ch + O(M/P) + O(N)
///   Eq. 7: T_HD     = (GN/P)*(C/G)*t_tr + (GN/P)*V(C/G, L/G)*t_ch
///                     + O(M/G) + O(GN/P)
/// The O(M)-family terms are charged as hash tree construction
/// (t_build + t_gen per candidate) plus the reduction/broadcast the
/// algorithm performs; the O(N)-family terms as data movement over the
/// machine's bandwidth (with DD paying the contention multiplier).
double PredictSerialPassSeconds(const AnalyticWorkload& workload,
                                const MachineModel& machine);
double PredictParallelPassSeconds(Algorithm algorithm,
                                  const AnalyticWorkload& workload,
                                  const MachineModel& machine);

/// Efficiency E = T_serial / (P * T_p) (the paper's scalability metric).
double PredictEfficiency(Algorithm algorithm,
                         const AnalyticWorkload& workload,
                         const MachineModel& machine);

/// The paper's Equation 8 feasibility band: HD beats CD when
/// 1 < G < O(M * P / N). Returns the largest admissible G under the
/// literal reading (M * P / N), or 1 when the band is empty.
double HdAdvantageUpperG(const AnalyticWorkload& workload);

}  // namespace pam

#endif  // PAM_MODEL_ANALYTIC_H_
