#include "pam/model/explain.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace pam {
namespace {

void Appendf(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string& out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  const int n = vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (n > 0) out.append(buffer, static_cast<std::size_t>(n));
}

}  // namespace

std::string ExplainRun(const CostModel& model, Algorithm algorithm,
                       const RunMetrics& metrics) {
  std::string out;
  Appendf(out, "%s on %d ranks, machine: %s\n",
          AlgorithmName(algorithm).c_str(), metrics.num_ranks(),
          model.machine().name.c_str());
  Appendf(out, "%4s %9s %10s %9s | %9s %9s %9s %9s %9s %9s | %9s %8s\n",
          "pass", "grid", "cands", "freq", "subset", "build", "moveData",
          "reduce", "bcast", "io", "total", "imbal");

  double run_total = 0.0;
  for (int pass = 0; pass < metrics.num_passes(); ++pass) {
    const auto& row = metrics.per_pass[static_cast<std::size_t>(pass)];
    const PassMetrics& first = row[0];
    const PassTimeBreakdown t = model.PassTime(algorithm, row);
    const LoadSummary balance = metrics.SubsetWorkBalance(pass);
    run_total += t.Total();
    char grid[16];
    snprintf(grid, sizeof(grid), "%dx%d", first.grid_rows,
             first.grid_cols);
    Appendf(out,
            "%4d %9s %10zu %9zu | %8.3fs %8.3fs %8.3fs %8.3fs %8.3fs "
            "%8.3fs | %8.3fs %7.1f%%\n",
            first.k, grid, first.num_candidates_global,
            first.num_frequent_global, t.subset, t.tree_build, t.data_comm,
            t.reduction, t.broadcast, t.io, t.Total(),
            balance.imbalance_percent);
  }
  Appendf(out, "modeled response time: %.3fs\n", run_total);
  return out;
}

std::string SummarizeCounters(const RunMetrics& metrics) {
  std::string out;
  Appendf(out, "%4s %10s %9s | %14s %14s %14s | %12s %12s\n", "pass",
          "cands", "freq", "traversals", "leaf visits", "checks",
          "data bytes", "reduce words");
  for (int pass = 0; pass < metrics.num_passes(); ++pass) {
    const auto& row = metrics.per_pass[static_cast<std::size_t>(pass)];
    const SubsetStats stats = metrics.PassSubsetStats(pass);
    std::uint64_t reduce_words = 0;
    for (const PassMetrics& m : row) reduce_words += m.reduction_words;
    Appendf(out,
            "%4d %10zu %9zu | %14" PRIu64 " %14" PRIu64 " %14" PRIu64
            " | %12" PRIu64 " %12" PRIu64 "\n",
            row[0].k, row[0].num_candidates_global,
            row[0].num_frequent_global, stats.traversal_steps,
            stats.distinct_leaf_visits, stats.leaf_candidates_checked,
            metrics.TotalDataBytes(pass), reduce_words);
  }
  return out;
}

}  // namespace pam
