#ifndef PAM_MODEL_MACHINE_H_
#define PAM_MODEL_MACHINE_H_

#include <string>

namespace pam {

/// Machine parameters used by the cost model to convert exact work counts
/// into response times. Two presets reproduce the paper's testbeds; the
/// constants are calibrated to the hardware the paper describes (T3E:
/// 600 MHz EV5, 303 MB/s measured bandwidth, 16 us startup; SP2: 66.7 MHz
/// Power2, ~110 MB/s HPS peak, disk-resident database).
struct MachineModel {
  std::string name;

  // ---- Compute (seconds per unit of work) ----
  /// One hash-node traversal step (the paper's t_travers).
  double t_travers = 0.0;
  /// One root-level transaction item considered or skipped (bitmap test /
  /// loop overhead). Small, but DD/IDD/HD pay it for every transaction in
  /// the database per pass (not just the local N/P), which is part of why
  /// IDD's scaleup curve rises while HD's bounded grid keeps it flat.
  double t_root = 0.0;
  /// Fixed overhead of checking one distinct leaf (the paper's t_check).
  double t_check = 0.0;
  /// One candidate-vs-transaction subset comparison at a leaf.
  double t_compare = 0.0;
  /// One candidate insertion during hash tree construction.
  double t_build = 0.0;
  /// One candidate produced by apriori_gen (join + prune).
  double t_gen = 0.0;

  // ---- Network ----
  /// Per-message startup latency (seconds).
  double latency = 0.0;
  /// Per-link bandwidth (bytes/second).
  double bandwidth = 1.0;
  /// Multiplier applied to DD's unstructured all-to-all page traffic,
  /// modeling the contention the paper describes for sparse interconnects
  /// where a node can drive only one link at a time.
  double dd_contention = 1.0;

  // ---- Storage ----
  /// Disk scan rate (bytes/second); 0 means the database is memory
  /// resident and scans are free (the paper's T3E setup buffers the data in
  /// memory; the SP2 runs of Figure 12 read from disk).
  double io_bandwidth = 0.0;
  /// Candidates that fit in one processor's memory; when a pass exceeds
  /// this, CD must partition its hash tree and rescan (Figure 12). 0 =
  /// unbounded.
  std::size_t memory_capacity_candidates = 0;

  /// The paper's Cray T3E (Section V).
  static MachineModel CrayT3E();
  /// The paper's IBM SP2 with a disk-resident database (Figure 12).
  static MachineModel IbmSp2();
};

}  // namespace pam

#endif  // PAM_MODEL_MACHINE_H_
