#ifndef PAM_MODEL_COST_MODEL_H_
#define PAM_MODEL_COST_MODEL_H_

#include <vector>

#include "pam/core/serial_apriori.h"
#include "pam/model/machine.h"
#include "pam/parallel/algorithms.h"
#include "pam/parallel/driver.h"

namespace pam {

/// Time components of one pass under the machine model (seconds).
struct PassTimeBreakdown {
  double subset = 0.0;      // hash tree traversal + leaf checking
  double tree_build = 0.0;  // candidate generation + hash tree construction
  double data_comm = 0.0;   // transaction movement (ring or all-to-all)
  double reduction = 0.0;   // count reduction
  double broadcast = 0.0;   // frequent itemset all-to-all broadcast
  double io = 0.0;          // database scan traffic

  double Total() const {
    return subset + tree_build + data_comm + reduction + broadcast + io;
  }
};

/// Converts the exact per-rank work counts measured by a run into response
/// times for a target machine — the reproduction substitute for wall-clock
/// measurements on the paper's Cray T3E / IBM SP2 (see DESIGN.md). Compute
/// terms take the maximum over ranks (ranks synchronize at each pass's
/// collectives, so the slowest rank sets the pace — this is also where
/// load imbalance shows up); communication terms follow the collective
/// algorithms of Section IV.
class CostModel {
 public:
  explicit CostModel(MachineModel machine) : machine_(std::move(machine)) {}

  const MachineModel& machine() const { return machine_; }

  /// Seconds of subset-function work implied by the counters.
  double SubsetSeconds(const SubsetStats& stats) const;

  /// Response time of one pass of a parallel run.
  PassTimeBreakdown PassTime(Algorithm algorithm,
                             const std::vector<PassMetrics>& ranks) const;

  /// Response time of a whole parallel run (sum of pass times).
  double RunTime(Algorithm algorithm, const RunMetrics& metrics) const;

  /// Response time of one serial pass / a whole serial run, for speedup
  /// baselines. `db_wire_bytes` charges I/O scans on disk-based machines.
  double SerialPassTime(const SerialPassInfo& pass,
                        std::uint64_t db_wire_bytes) const;
  double SerialRunTime(const SerialResult& result,
                       std::uint64_t db_wire_bytes) const;

 private:
  MachineModel machine_;
};

}  // namespace pam

#endif  // PAM_MODEL_COST_MODEL_H_
