#include "pam/model/analytic.h"

#include <algorithm>
#include <cmath>

#include "pam/model/vij.h"

namespace pam {
namespace {

// Compute-side of the subset function: C_eff traversal paths and
// V(C_eff, L_eff) distinct leaf checks (each over S candidates) per
// transaction, times the number of transactions a processor handles.
double SubsetSeconds(double transactions, double c_eff, double l_eff,
                     double avg_leaf_candidates, double items_scanned,
                     const MachineModel& machine) {
  const double v = ExpectedDistinctLeaves(c_eff, l_eff);
  return transactions *
         (items_scanned * machine.t_root + c_eff * machine.t_travers +
          v * machine.t_check +
          v * avg_leaf_candidates * machine.t_compare);
}

double TreeBuildSeconds(double candidates_built, double candidates_generated,
                        const MachineModel& machine) {
  return candidates_built * machine.t_build +
         candidates_generated * machine.t_gen;
}

double ReductionSeconds(double words, int group, const MachineModel& m) {
  if (group <= 1 || words <= 0) return 0.0;
  const double stages = std::ceil(std::log2(static_cast<double>(group)));
  return stages * (m.latency + words * 8.0 / m.bandwidth);
}

// Transaction bytes: one length word plus one word per item.
double WireBytes(double transactions, double avg_items) {
  return transactions * (avg_items + 1.0) * 4.0;
}

}  // namespace

double AnalyticWorkload::PotentialCandidates() const {
  return BinomialCoefficient(
      static_cast<std::uint64_t>(avg_transaction_items + 0.5),
      static_cast<std::uint64_t>(pass_k));
}

double AnalyticWorkload::SerialLeaves() const {
  return avg_leaf_candidates > 0 ? num_candidates / avg_leaf_candidates
                                 : num_candidates;
}

double PredictSerialPassSeconds(const AnalyticWorkload& w,
                                const MachineModel& machine) {
  return SubsetSeconds(w.num_transactions, w.PotentialCandidates(),
                       w.SerialLeaves(), w.avg_leaf_candidates,
                       w.avg_transaction_items, machine) +
         TreeBuildSeconds(w.num_candidates, w.num_candidates, machine);
}

double PredictParallelPassSeconds(Algorithm algorithm,
                                  const AnalyticWorkload& w,
                                  const MachineModel& machine) {
  const double n = w.num_transactions;
  const double m = w.num_candidates;
  const double p = static_cast<double>(w.num_processors);
  const double c = w.PotentialCandidates();
  const double l = w.SerialLeaves();
  const double i = w.avg_transaction_items;
  const double s = w.avg_leaf_candidates;

  switch (algorithm) {
    case Algorithm::kCD:
      // Eq. 4: serial work over N/P transactions, full tree per rank,
      // plus the global reduction of M words.
      return SubsetSeconds(n / p, c, l, s, i, machine) +
             TreeBuildSeconds(m, m, machine) +
             ReductionSeconds(m, w.num_processors, machine);
    case Algorithm::kDD:
    case Algorithm::kDDComm: {
      // Eq. 5: all N transactions, full C per transaction, 1/P-th tree.
      const double compute =
          SubsetSeconds(n, c, l / p, s, i, machine) +
          TreeBuildSeconds(m / p, m, machine);
      double comm = WireBytes(n, i) * (p - 1.0) / p / machine.bandwidth;
      if (algorithm == Algorithm::kDD) comm *= machine.dd_contention;
      return compute + comm;
    }
    case Algorithm::kIDD: {
      // Eq. 6: the intelligent partition also divides C by P.
      const double compute =
          SubsetSeconds(n, c / p, l / p, s, i, machine) +
          TreeBuildSeconds(m / p, m, machine);
      const double comm =
          WireBytes(n, i) * (p - 1.0) / p / machine.bandwidth;
      return compute + comm;
    }
    case Algorithm::kHD: {
      // Eq. 7 on the G x (P/G) grid.
      const double g = static_cast<double>(w.hd_grid_rows);
      const int cols = w.num_processors / w.hd_grid_rows;
      const double compute =
          SubsetSeconds(g * n / p, c / g, l / g, s, i, machine) +
          TreeBuildSeconds(m / g, m, machine);
      const double comm =
          WireBytes(g * n / p, i) * (g - 1.0) / g / machine.bandwidth;
      return compute + comm + ReductionSeconds(m / g, cols, machine);
    }
    case Algorithm::kHPA: {
      // Section III-E: C potential candidates per transaction are
      // generated, hashed, and (P-1)/P of them shipped (k+ items each).
      const double compute =
          n / p * c * (machine.t_travers + machine.t_compare) +
          TreeBuildSeconds(m / p, m, machine);
      const double bytes =
          n / p * c * (p - 1.0) / p * w.pass_k * 4.0;
      return compute +
             bytes * machine.dd_contention / machine.bandwidth;
    }
  }
  return 0.0;
}

double PredictEfficiency(Algorithm algorithm, const AnalyticWorkload& w,
                         const MachineModel& machine) {
  const double serial = PredictSerialPassSeconds(w, machine);
  const double parallel = PredictParallelPassSeconds(algorithm, w, machine);
  if (parallel <= 0.0) return 0.0;
  return serial / (static_cast<double>(w.num_processors) * parallel);
}

double HdAdvantageUpperG(const AnalyticWorkload& w) {
  if (w.num_transactions <= 0) return 1.0;
  return std::max(
      1.0, w.num_candidates *
               static_cast<double>(w.num_processors) / w.num_transactions);
}

}  // namespace pam
