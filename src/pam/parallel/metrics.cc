#include "pam/parallel/metrics.h"

namespace pam {
namespace {

/// Sums `field(m)` over the ranks of one pass.
template <typename Projection>
std::uint64_t SumOverPass(const RunMetrics& metrics, int pass_index,
                          Projection field) {
  std::uint64_t total = 0;
  for (const PassMetrics& m :
       metrics.per_pass[static_cast<std::size_t>(pass_index)]) {
    total += field(m);
  }
  return total;
}

/// Sums `field(m)` over every pass and rank of the run.
template <typename Projection>
std::uint64_t SumOverRun(const RunMetrics& metrics, Projection field) {
  std::uint64_t total = 0;
  for (int pass = 0; pass < metrics.num_passes(); ++pass) {
    total += SumOverPass(metrics, pass, field);
  }
  return total;
}

}  // namespace

LoadSummary RunMetrics::SubsetWorkBalance(int pass_index) const {
  std::vector<double> work;
  for (const PassMetrics& m :
       per_pass[static_cast<std::size_t>(pass_index)]) {
    work.push_back(static_cast<double>(m.subset.traversal_steps +
                                       m.subset.leaf_candidates_checked));
  }
  return Summarize(work);
}

std::uint64_t RunMetrics::TotalDataBytes(int pass_index) const {
  return SumOverPass(*this, pass_index,
                     [](const PassMetrics& m) { return m.data_bytes_sent; });
}

std::uint64_t RunMetrics::TotalLeafVisits(int pass_index) const {
  return SumOverPass(*this, pass_index, [](const PassMetrics& m) {
    return m.subset.distinct_leaf_visits;
  });
}

std::uint64_t RunMetrics::TotalTransactionsProcessed(int pass_index) const {
  return SumOverPass(*this, pass_index, [](const PassMetrics& m) {
    return m.transactions_processed;
  });
}

std::uint64_t RunMetrics::TotalFaultsInjected() const {
  return SumOverRun(
      *this, [](const PassMetrics& m) { return m.comm_faults_injected; });
}

std::uint64_t RunMetrics::TotalCommRetries() const {
  return SumOverRun(*this,
                    [](const PassMetrics& m) { return m.comm_retries; });
}

std::uint64_t RunMetrics::TotalFaultsDetected() const {
  return SumOverRun(
      *this, [](const PassMetrics& m) { return m.comm_faults_detected; });
}

SubsetStats RunMetrics::PassSubsetStats(int pass_index) const {
  SubsetStats out;
  for (const PassMetrics& m :
       per_pass[static_cast<std::size_t>(pass_index)]) {
    out.Accumulate(m.subset);
  }
  return out;
}

}  // namespace pam
