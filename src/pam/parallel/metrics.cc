#include "pam/parallel/metrics.h"

namespace pam {

LoadSummary RunMetrics::SubsetWorkBalance(int pass_index) const {
  std::vector<double> work;
  for (const PassMetrics& m :
       per_pass[static_cast<std::size_t>(pass_index)]) {
    work.push_back(static_cast<double>(m.subset.traversal_steps +
                                       m.subset.leaf_candidates_checked));
  }
  return Summarize(work);
}

std::uint64_t RunMetrics::TotalDataBytes(int pass_index) const {
  std::uint64_t total = 0;
  for (const PassMetrics& m :
       per_pass[static_cast<std::size_t>(pass_index)]) {
    total += m.data_bytes_sent;
  }
  return total;
}

std::uint64_t RunMetrics::TotalLeafVisits(int pass_index) const {
  std::uint64_t total = 0;
  for (const PassMetrics& m :
       per_pass[static_cast<std::size_t>(pass_index)]) {
    total += m.subset.distinct_leaf_visits;
  }
  return total;
}

std::uint64_t RunMetrics::TotalTransactionsProcessed(int pass_index) const {
  std::uint64_t total = 0;
  for (const PassMetrics& m :
       per_pass[static_cast<std::size_t>(pass_index)]) {
    total += m.transactions_processed;
  }
  return total;
}

std::uint64_t RunMetrics::TotalFaultsInjected() const {
  std::uint64_t total = 0;
  for (const auto& pass : per_pass) {
    for (const PassMetrics& m : pass) total += m.comm_faults_injected;
  }
  return total;
}

std::uint64_t RunMetrics::TotalCommRetries() const {
  std::uint64_t total = 0;
  for (const auto& pass : per_pass) {
    for (const PassMetrics& m : pass) total += m.comm_retries;
  }
  return total;
}

std::uint64_t RunMetrics::TotalFaultsDetected() const {
  std::uint64_t total = 0;
  for (const auto& pass : per_pass) {
    for (const PassMetrics& m : pass) total += m.comm_faults_detected;
  }
  return total;
}

SubsetStats RunMetrics::PassSubsetStats(int pass_index) const {
  SubsetStats out;
  for (const PassMetrics& m :
       per_pass[static_cast<std::size_t>(pass_index)]) {
    out.Accumulate(m.subset);
  }
  return out;
}

}  // namespace pam
