#include <numeric>

#include "pam/core/apriori_gen.h"
#include "pam/obs/trace.h"
#include "pam/parallel/algorithms.h"
#include "pam/util/timer.h"

namespace pam {

// Count Distribution (paper Section III-A, Figure 4): every rank holds the
// full candidate hash tree, counts over its local N/P transactions, and the
// global counts are formed by one global reduction. When the candidate set
// exceeds the configured memory cap, the tree is partitioned and the local
// transactions are re-scanned once per partition — the behaviour Figure 12
// charges with extra I/O.
RankOutput RunCdRank(const TransactionDatabase& db, Comm& comm,
                     const ParallelConfig& config) {
  using parallel_internal::ParallelPass1;

  RankOutput out;
  const TransactionDatabase::Slice slice =
      db.RankSlice(comm.rank(), comm.size());
  const Count minsup = config.apriori.ResolveMinsup(db.size());
  std::vector<Count> dhp_buckets;  // PDM-style DHP filter state (optional)
  const std::size_t cap = config.apriori.max_candidates_in_memory;
  CountingPool pool(config.apriori.threads_per_rank);

  {
    obs::ScopedSpan pass_span(obs::SpanKind::kPass, /*pass_k=*/1, -1,
                              nullptr);
    WallTimer timer;
    PassMetrics m;
    m.grid_cols = comm.size();
    const CommFaultStats faults_at_start = comm.MyFaultStats();
    ItemsetCollection f1 = ParallelPass1(db, slice, comm, minsup, &m,
                                         &config, &dhp_buckets);
    parallel_internal::RecordFaultDelta(comm, faults_at_start, &m);
    m.wall_seconds = timer.Seconds();
    obs::EmitPassMetrics(m);
    out.passes.push_back(m);
    out.frequent.levels.push_back(std::move(f1));
  }

  for (int k = 2; config.apriori.max_k == 0 || k <= config.apriori.max_k;
       ++k) {
    const ItemsetCollection& prev = out.frequent.levels.back();
    if (prev.size() < 2) break;
    config.apriori.cancel.Checkpoint(comm.rank());
    obs::ScopedSpan pass_span(obs::SpanKind::kPass, k, -1, nullptr);
    WallTimer timer;
    PassMetrics m;
    m.k = k;
    m.local_db_wire_bytes = db.WireBytes(slice);
    m.grid_cols = comm.size();
    const CommFaultStats faults_at_start = comm.MyFaultStats();

    ItemsetCollection candidates =
        parallel_internal::GenerateCandidates(prev, k, dhp_buckets, minsup);
    const std::size_t num_candidates = candidates.size();
    if (num_candidates == 0) {
      pass_span.Cancel();  // no PassMetrics row, so no pass span either
      break;
    }
    m.num_candidates_global = num_candidates;
    m.num_candidates_local = num_candidates;
    m.transactions_processed = slice.size();
    m.threads_per_rank = pool.num_threads();

    std::vector<Count> counts(num_candidates, 0);
    if (parallel_internal::TryTrianglePass2(db, slice, prev, candidates, k,
                                            config.apriori, &pool,
                                            std::span<Count>(counts),
                                            &m.subset, &m)) {
      // Triangular pass-2 kernel: one scan, one full-width reduction.
      m.db_scans = 1;
      comm.AllReduceSum(std::span<std::uint64_t>(counts));
      m.reduction_words += num_candidates;
    } else {
      const std::size_t chunk_cap = cap == 0 ? num_candidates : cap;
      const std::size_t num_chunks =
          (num_candidates + chunk_cap - 1) / chunk_cap;
      m.db_scans = num_chunks;

      for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
        const std::size_t lo = chunk * chunk_cap;
        const std::size_t hi = std::min(num_candidates, lo + chunk_cap);
        std::vector<std::uint32_t> ids(hi - lo);
        std::iota(ids.begin(), ids.end(), static_cast<std::uint32_t>(lo));
        obs::ScopedSpan build_span(obs::SpanKind::kTreeBuild,
                                   static_cast<std::int64_t>(chunk));
        HashTree tree(candidates, std::move(ids), config.apriori.tree);
        m.tree_build_inserts += tree.build_inserts();
        build_span.End();
        obs::ScopedSpan count_span(obs::SpanKind::kSubsetCount,
                                   static_cast<std::int64_t>(chunk));
        TeamCounter team(&pool, &tree, std::span<Count>(counts), &m.subset,
                         /*root_filter=*/nullptr, &config.apriori.cancel);
        team.CountSlice(db, slice);
        team.Finish();
        AccumulateShardWork(m.shard_subset_work, team.shard_work());
        count_span.End();
        // Global reduction of this chunk's counts (the paper reduces per
        // hash-tree partition when memory-capped).
        comm.AllReduceSum(
            std::span<std::uint64_t>(counts.data() + lo, hi - lo));
        m.reduction_words += hi - lo;
      }
    }

    candidates.counts() = std::move(counts);
    candidates.PruneBelow(minsup);
    m.num_frequent_global = candidates.size();
    parallel_internal::RecordFaultDelta(comm, faults_at_start, &m);
    m.wall_seconds = timer.Seconds();
    obs::EmitPassMetrics(m);
    out.passes.push_back(m);
    if (candidates.empty()) break;
    out.frequent.levels.push_back(std::move(candidates));
  }

  while (!out.frequent.levels.empty() && out.frequent.levels.back().empty()) {
    out.frequent.levels.pop_back();
  }
  return out;
}

}  // namespace pam
