#ifndef PAM_PARALLEL_COMMON_H_
#define PAM_PARALLEL_COMMON_H_

#include <cstdint>
#include <vector>

#include "pam/core/candidate_partition.h"
#include "pam/core/count_team.h"
#include "pam/core/serial_apriori.h"
#include "pam/hashtree/counting_pool.h"
#include "pam/mp/comm.h"
#include "pam/parallel/metrics.h"
#include "pam/tdb/database.h"
#include "pam/tdb/page_buffer.h"

namespace pam {

/// Parameters for the parallel formulations, extending the mining knobs of
/// AprioriConfig.
struct ParallelConfig {
  /// Shared mining parameters (minsup, tree shape, max_k, memory cap).
  AprioriConfig apriori;
  /// Wire page size for the DD all-to-all and the IDD/HD ring pipeline
  /// (the paper moves the database "one page at a time").
  std::size_t page_bytes = 16 * 1024;
  /// HD's user threshold m: minimum candidates per candidate-partition;
  /// G = smallest divisor of P that is >= ceil(M / m), capped at P
  /// (paper Table II uses m = 50K on 64 processors).
  std::size_t hd_threshold_m = 50000;
  /// When > 0, pin HD's grid rows G to the smallest divisor of P that is
  /// >= this value instead of deriving G from hd_threshold_m — the paper
  /// pins 8x2 / 8x4 / 8x8 grids in its Figure 13 speedup runs.
  int hd_forced_rows = 0;
  /// IDD first-item packing strategy (bin-packed vs contiguous ablation).
  PrefixStrategy prefix_strategy = PrefixStrategy::kBinPacked;
  /// Disable to measure IDD without root bitmap filtering (ablation).
  bool idd_use_bitmap = true;
  /// Split first-items owning more than M/P candidates across parts
  /// (paper's skew refinement).
  bool split_heavy_prefixes = true;
  /// Feedback-driven load balancing (DESIGN.md §14). IDD re-runs the
  /// bin-packed candidate partitioner between passes with measured
  /// per-first-item costs instead of candidate counts (seeded from pass-1
  /// supports, refined from each pass's per-rank subset work shared via one
  /// small AllReduceSum); HD additionally chooses its grid rows G per pass
  /// from the measured compute/comm ratio. Mining output is byte-identical
  /// to the static mode — the ring delivers the whole database to every
  /// rank, so global counts don't depend on who owns which candidate. Only
  /// honored by IDD and HD; requires prefix_strategy == kBinPacked for the
  /// repartitioning part (the contiguous ablation stays static).
  bool adaptive_balance = false;
  /// Single-source mode for IDD (paper Section VI: "when all the data is
  /// coming from a database server or a single file system, one processor
  /// can read data from the single source and pass the data along the
  /// communication pipeline"): the whole database resides on rank 0, which
  /// feeds the ring; the other ranks hold no local transactions. Only
  /// honored by the IDD formulation.
  bool single_source = false;
  /// Transport fault injection (disabled by default). When enabled, the
  /// driver installs this schedule into the runtime: every send of every
  /// formulation runs under it, recoverable faults are repaired by the
  /// communicator (and counted in PassMetrics), and unrecoverable ones
  /// make MineParallel throw CommError instead of returning bad counts.
  FaultConfig fault;
};

/// Message tags used by the algorithm implementations (all below the
/// collective-reserved range).
inline constexpr int kTagRingData = 1;
inline constexpr int kTagDdPage = 2;
inline constexpr int kTagHpaSubsets = 3;

namespace parallel_internal {

/// Pass 1, common to every formulation: count items over the local slice,
/// globally reduce, build F_1 (identical on every rank). When
/// `dhp_buckets` is non-null and config.apriori.dhp_buckets > 0, the same
/// scan hashes every local transaction pair into buckets and reduces them
/// globally (the PDM-style DHP filter; every rank ends with identical
/// buckets).
ItemsetCollection ParallelPass1(const TransactionDatabase& db,
                                TransactionDatabase::Slice slice, Comm& comm,
                                Count minsup, PassMetrics* metrics,
                                const ParallelConfig* config = nullptr,
                                std::vector<Count>* dhp_buckets = nullptr);

/// apriori_gen plus the optional DHP filter at k == 2. All ranks call
/// this with identical inputs and obtain identical candidate sets.
ItemsetCollection GenerateCandidates(const ItemsetCollection& prev, int k,
                                     const std::vector<Count>& dhp_buckets,
                                     Count minsup);

/// True when pass k may use the pass-2 triangle kernel instead of a hash
/// tree: k == 2, the flag is on, and the R*(R-1)/2 counter array fits the
/// candidate-memory cap. Deterministic from replicated inputs, so every
/// rank takes the same branch.
bool TriangleEligible(int k, const AprioriConfig& config,
                      std::size_t f1_size);

/// Pass-2 specialization of the common counting path (CD and HPA count the
/// full candidate set over their local slice): when TriangleEligible,
/// counts all pairs of frequent items into a flat triangular array over
/// F_1 ranks — through the intra-rank counting team of `pool` — and
/// scatters the result into `counts`, bypassing the hash tree (see
/// TrianglePairCounter). Records per-shard work into `metrics` when
/// non-null. Returns false when ineligible; the caller falls back to
/// chunked hash-tree counting.
bool TryTrianglePass2(const TransactionDatabase& db,
                      TransactionDatabase::Slice slice,
                      const ItemsetCollection& f1,
                      const ItemsetCollection& candidates, int k,
                      const AprioriConfig& config, CountingPool* pool,
                      std::span<Count> counts, SubsetStats* stats,
                      PassMetrics* metrics);

/// Serializes `sets`, all-gathers across `comm`, and returns the
/// lexicographically sorted union (partitions must be disjoint). Adds the
/// exchanged words to `broadcast_words`.
ItemsetCollection ExchangeFrequent(Comm& comm, const ItemsetCollection& sets,
                                   std::uint64_t* broadcast_words);

/// Builds the frequent subset of `candidates` restricted to `owned_ids`
/// (candidates whose global count is already in candidates.counts()).
ItemsetCollection FrequentSubset(const ItemsetCollection& candidates,
                                 const std::vector<std::uint32_t>& owned_ids,
                                 Count minsup);

/// Runs the Figure-6 ring pipeline over this rank's pages within `comm`:
/// every page of every member circulates through all members; `process` is
/// invoked for each page (own pages included), with a view into the page's
/// in-flight transport buffer — no copy out. Each local page is wrapped
/// into a shared payload once; every forwarding hop re-sends the received
/// handle, so circulation costs zero byte copies and zero checksum
/// recomputes beyond the initial wrap. Rounds are padded with empty
/// payloads so ranks with fewer pages stay in lockstep. Returns bytes sent.
std::uint64_t RingShiftAll(Comm& comm, const std::vector<Page>& local_pages,
                           const std::function<void(PageView)>& process,
                           std::uint64_t* messages_sent);

/// HD grid-rows choice: 1 if M < m, else the smallest divisor of P that is
/// >= ceil(M / m) (capped at P).
int ChooseGridRows(std::size_t num_candidates, std::size_t threshold_m,
                   int num_ranks);

/// Globally-reduced counting feedback for the adaptive balancer: each
/// rank's measured subset work, the global transaction / traversal /
/// leaf-check totals, and the globally-summed per-first-item measured
/// work (`local_item_work`, the kernel's attribution vector compacted by
/// the caller to the pass's distinct first items — identical layout on
/// every rank), all identical on every rank after one AllReduceSum of a
/// (P + 3 + |first items|)-word vector. `words` is that collective's size
/// (charged to PassMetrics::{reduction_words, balance_sync_words}). Only
/// deterministic work counters travel — never wall time — so every rank
/// folds identical feedback into its LoadModel and recomputes identical
/// decisions, even under (recoverable) transport faults.
struct BalanceSync {
  std::vector<std::uint64_t> rank_work;
  std::vector<std::uint64_t> item_work;  // summed, caller's compact layout
  std::uint64_t transactions = 0;
  std::uint64_t traversal_steps = 0;
  std::uint64_t leaf_checks = 0;
  std::uint64_t words = 0;
};
BalanceSync ShareBalanceFeedback(Comm& comm, const PassMetrics& m,
                                 std::span<const std::uint64_t> local_item_work);

/// Adds the fault activity since `start` (a snapshot of
/// comm.MyFaultStats() taken at pass start) to this pass's metrics.
void RecordFaultDelta(const Comm& comm, const CommFaultStats& start,
                      PassMetrics* metrics);

}  // namespace parallel_internal
}  // namespace pam

#endif  // PAM_PARALLEL_COMMON_H_
