#include "pam/parallel/common.h"

#include <algorithm>
#include <cassert>

#include "pam/core/apriori_gen.h"
#include "pam/hashtree/pair_counter.h"
#include "pam/obs/trace.h"

namespace pam {
namespace parallel_internal {

ItemsetCollection ParallelPass1(const TransactionDatabase& db,
                                TransactionDatabase::Slice slice, Comm& comm,
                                Count minsup, PassMetrics* metrics,
                                const ParallelConfig* config,
                                std::vector<Count>* dhp_buckets) {
  std::vector<Count> counts = CountItems(db, slice, db.NumItems());
  comm.AllReduceSum(std::span<std::uint64_t>(counts));
  if (metrics != nullptr) {
    metrics->k = 1;
    metrics->num_candidates_global = counts.size();
    metrics->num_candidates_local = counts.size();
    metrics->reduction_words = counts.size();
    metrics->transactions_processed = slice.size();
  }
  if (dhp_buckets != nullptr && config != nullptr &&
      config->apriori.dhp_buckets > 0) {
    *dhp_buckets = CountPairBuckets(db, slice, config->apriori.dhp_buckets);
    comm.AllReduceSum(std::span<std::uint64_t>(*dhp_buckets));
    if (metrics != nullptr) metrics->reduction_words += dhp_buckets->size();
  }
  ItemsetCollection f1 = MakeF1(counts, minsup);
  if (metrics != nullptr) metrics->num_frequent_global = f1.size();
  return f1;
}

ItemsetCollection GenerateCandidates(const ItemsetCollection& prev, int k,
                                     const std::vector<Count>& dhp_buckets,
                                     Count minsup) {
  ItemsetCollection candidates = AprioriGen(prev);
  if (k == 2 && !dhp_buckets.empty()) {
    candidates = FilterByBuckets(candidates, dhp_buckets, minsup);
  }
  return candidates;
}

bool TriangleEligible(int k, const AprioriConfig& config,
                      std::size_t f1_size) {
  return k == 2 && config.use_pass2_triangle &&
         TrianglePairCounter::Fits(f1_size,
                                   config.max_candidates_in_memory);
}

bool TryTrianglePass2(const TransactionDatabase& db,
                      TransactionDatabase::Slice slice,
                      const ItemsetCollection& f1,
                      const ItemsetCollection& candidates, int k,
                      const AprioriConfig& config, CountingPool* pool,
                      std::span<Count> counts, SubsetStats* stats,
                      PassMetrics* metrics) {
  if (!TriangleEligible(k, config, f1.size())) return false;
  TrianglePairCounter tri(f1);
  {
    obs::ScopedSpan count_span(obs::SpanKind::kSubsetCount, /*index=*/0,
                               "triangle");
    TriangleTeam team(pool, &tri, stats, &config.cancel);
    team.CountSlice(db, slice);
    team.Finish();
    if (metrics != nullptr) {
      AccumulateShardWork(metrics->shard_subset_work, team.shard_work());
    }
  }
  tri.Extract(candidates, counts);
  return true;
}

ItemsetCollection ExchangeFrequent(Comm& comm, const ItemsetCollection& sets,
                                   std::uint64_t* broadcast_words) {
  const std::vector<std::uint64_t> mine = sets.Serialize();
  if (broadcast_words != nullptr) *broadcast_words += mine.size();
  // Ring all-gather of payload handles: the serialized partitions are
  // deserialized straight out of the shared transport buffers.
  const std::vector<Payload> blobs =
      comm.AllGatherPayload(Payload::Copy(std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(mine.data()),
          mine.size() * sizeof(std::uint64_t))));

  ItemsetCollection merged(sets.k());
  for (const Payload& blob : blobs) {
    const auto* words = reinterpret_cast<const std::uint64_t*>(blob.data());
    const std::size_t num_words = blob.size() / sizeof(std::uint64_t);
    ItemsetCollection part =
        ItemsetCollection::Deserialize(words, num_words);
    assert(part.k() == sets.k());
    for (std::size_t i = 0; i < part.size(); ++i) {
      merged.AddWithCount(part.Get(i), part.count(i));
    }
  }
  merged.SortLexicographic();
  assert(merged.IsSortedUnique() && "frequent partitions must be disjoint");
  return merged;
}

ItemsetCollection FrequentSubset(const ItemsetCollection& candidates,
                                 const std::vector<std::uint32_t>& owned_ids,
                                 Count minsup) {
  ItemsetCollection frequent(candidates.k());
  for (std::uint32_t id : owned_ids) {
    if (candidates.count(id) >= minsup) {
      frequent.AddWithCount(candidates.Get(id), candidates.count(id));
    }
  }
  return frequent;
}

std::uint64_t RingShiftAll(Comm& comm, const std::vector<Page>& local_pages,
                           const std::function<void(PageView)>& process,
                           std::uint64_t* messages_sent) {
  const int p = comm.size();
  if (p == 1) {
    for (const Page& page : local_pages) process(page);
    return 0;
  }

  // Agree on a common round count (max pages over members) with one
  // log-P max-reduction; short ranks pad with empty payloads so the
  // pipeline stays in lockstep.
  std::uint64_t rounds = local_pages.size();
  comm.AllReduceMax(std::span<std::uint64_t>(&rounds, 1));

  std::uint64_t bytes_sent = 0;
  const std::uint64_t my_pages = local_pages.size();
  const CancelToken& cancel = comm.cancel_token();
  for (std::uint64_t round = 0; round < rounds; ++round) {
    // Ring-round check point: completing a round is progress (Beat), and a
    // fired token stops the pipeline here — mid-round waits are already
    // bounded by the cancellable receive slices in comm.cc.
    cancel.Checkpoint(comm.rank());
    obs::ScopedSpan round_span(obs::SpanKind::kRingRound,
                               static_cast<std::int64_t>(round));
    // FillBuffer(fd, SBuf): wrap the next local page into a shared
    // payload — the only copy this page ever pays for the whole lap.
    Payload sbuf =
        round < my_pages
            ? Payload::Copy(std::span<const std::byte>(
                  reinterpret_cast<const std::byte*>(local_pages[round].data()),
                  local_pages[round].size() * sizeof(std::uint32_t)))
            : Payload();
    // for (k = 0; k < P-1; ++k) { Irecv(left); Isend(right);
    //   Subset(SBuf); Waitall(); swap(SBuf, RBuf); }
    for (int step = 0; step < p - 1; ++step) {
      RecvRequest req = comm.Irecv(comm.LeftNeighbor(), kTagRingData);
      comm.Isend(comm.RightNeighbor(), kTagRingData, sbuf);  // same handle
      bytes_sent += sbuf.size();
      if (messages_sent != nullptr) ++*messages_sent;
      // Overlap: complete the posted receive early if the neighbor's page
      // is already deliverable, then count SBuf while RBuf sits ready.
      (void)comm.Test(req);
      if (!sbuf.empty()) process(PageViewOfBytes(sbuf.bytes()));
      comm.Wait(req);
      sbuf = req.payload();  // forwarded next step: zero-copy hand-off
    }
    // Final buffer (originating P-1 hops away).
    if (!sbuf.empty()) process(PageViewOfBytes(sbuf.bytes()));
  }
  return bytes_sent;
}

int ChooseGridRows(std::size_t num_candidates, std::size_t threshold_m,
                   int num_ranks) {
  if (threshold_m == 0 || num_candidates < threshold_m) return 1;
  const std::size_t want =
      (num_candidates + threshold_m - 1) / threshold_m;  // ceil(M / m)
  if (want >= static_cast<std::size_t>(num_ranks)) return num_ranks;
  // Smallest divisor of P that is >= want.
  for (int g = static_cast<int>(want); g <= num_ranks; ++g) {
    if (num_ranks % g == 0) return g;
  }
  return num_ranks;
}

BalanceSync ShareBalanceFeedback(
    Comm& comm, const PassMetrics& m,
    std::span<const std::uint64_t> local_item_work) {
  const int p = comm.size();
  const std::uint64_t my_work =
      m.subset.traversal_steps + m.subset.leaf_candidates_checked;
  std::vector<std::uint64_t> buf(
      static_cast<std::size_t>(p) + 3 + local_item_work.size(), 0);
  buf[static_cast<std::size_t>(comm.rank())] = my_work;
  buf[static_cast<std::size_t>(p)] = m.transactions_processed;
  buf[static_cast<std::size_t>(p) + 1] = m.subset.traversal_steps;
  buf[static_cast<std::size_t>(p) + 2] = m.subset.leaf_candidates_checked;
  std::copy(local_item_work.begin(), local_item_work.end(),
            buf.begin() + p + 3);
  comm.AllReduceSum(std::span<std::uint64_t>(buf));
  BalanceSync out;
  out.rank_work.assign(buf.begin(), buf.begin() + p);
  out.item_work.assign(buf.begin() + p + 3, buf.end());
  out.transactions = buf[static_cast<std::size_t>(p)];
  out.traversal_steps = buf[static_cast<std::size_t>(p) + 1];
  out.leaf_checks = buf[static_cast<std::size_t>(p) + 2];
  out.words = buf.size();
  return out;
}

void RecordFaultDelta(const Comm& comm, const CommFaultStats& start,
                      PassMetrics* metrics) {
  if (metrics == nullptr) return;
  const CommFaultStats now = comm.MyFaultStats();
  metrics->comm_faults_injected += now.injected - start.injected;
  metrics->comm_retries += now.retries - start.retries;
  metrics->comm_faults_detected += now.detected - start.detected;
}

}  // namespace parallel_internal
}  // namespace pam
