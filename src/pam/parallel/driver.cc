#include "pam/parallel/driver.h"

#include <cassert>
#include <vector>

#include "pam/mp/runtime.h"
#include "pam/util/timer.h"

namespace pam {

std::string AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kCD:
      return "CD";
    case Algorithm::kDD:
      return "DD";
    case Algorithm::kDDComm:
      return "DD+comm";
    case Algorithm::kIDD:
      return "IDD";
    case Algorithm::kHD:
      return "HD";
    case Algorithm::kHPA:
      return "HPA";
  }
  return "?";
}

ParallelResult MineParallel(Algorithm algorithm,
                            const TransactionDatabase& db, int num_ranks,
                            const ParallelConfig& config) {
  return MineParallelObserved(algorithm, db, num_ranks, config,
                              /*observers=*/nullptr);
}

ParallelResult MineParallelObserved(Algorithm algorithm,
                                    const TransactionDatabase& db,
                                    int num_ranks,
                                    const ParallelConfig& config,
                                    obs::SessionObs* observers) {
  WallTimer timer;
  Runtime runtime(num_ranks);
  runtime.SetFaultConfig(config.fault);
  runtime.SetCancelToken(config.apriori.cancel);
  std::vector<RankOutput> outputs(static_cast<std::size_t>(num_ranks));

  runtime.Run([&](Comm& comm) {
    // Give this rank's thread its span/metrics emitter (a null observer
    // set disables it). Everything the rank does below — formulation
    // code, ring pipeline, collectives — reaches it thread-locally.
    obs::RankTracer tracer(observers, comm.rank());
    obs::ScopedTracerInstall install(&tracer);
    RankOutput out;
    switch (algorithm) {
      case Algorithm::kCD:
        out = RunCdRank(db, comm, config);
        break;
      case Algorithm::kDD:
        out = RunDdRank(db, comm, config, /*ring_movement=*/false);
        break;
      case Algorithm::kDDComm:
        out = RunDdRank(db, comm, config, /*ring_movement=*/true);
        break;
      case Algorithm::kIDD:
        out = RunIddRank(db, comm, config);
        break;
      case Algorithm::kHD:
        out = RunHdRank(db, comm, config);
        break;
      case Algorithm::kHPA:
        out = RunHpaRank(db, comm, config);
        break;
    }
    outputs[static_cast<std::size_t>(comm.rank())] = std::move(out);
  });

  ParallelResult result;
  result.minsup_count = config.apriori.ResolveMinsup(db.size());
  result.frequent = std::move(outputs[0].frequent);
  const std::size_t num_passes = outputs[0].passes.size();
#ifndef NDEBUG
  for (const RankOutput& out : outputs) {
    assert(out.passes.size() == num_passes &&
           "ranks must execute identical pass structure");
  }
#endif
  result.metrics.per_pass.resize(num_passes);
  for (std::size_t pass = 0; pass < num_passes; ++pass) {
    auto& row = result.metrics.per_pass[pass];
    row.reserve(static_cast<std::size_t>(num_ranks));
    for (const RankOutput& out : outputs) {
      row.push_back(out.passes[pass]);
    }
  }
  result.wall_seconds = timer.Seconds();
  return result;
}

}  // namespace pam
