#include "pam/parallel/rulegen_parallel.h"

#include <bit>
#include <cassert>

namespace pam {

std::vector<std::uint64_t> SerializeRules(const std::vector<Rule>& rules) {
  std::vector<std::uint64_t> out;
  out.push_back(rules.size());
  for (const Rule& rule : rules) {
    out.push_back(rule.antecedent.size());
    for (Item x : rule.antecedent) out.push_back(x);
    out.push_back(rule.consequent.size());
    for (Item x : rule.consequent) out.push_back(x);
    out.push_back(rule.joint_count);
    out.push_back(std::bit_cast<std::uint64_t>(rule.support));
    out.push_back(std::bit_cast<std::uint64_t>(rule.confidence));
  }
  return out;
}

std::vector<Rule> DeserializeRules(const std::uint64_t* words,
                                   std::size_t num_words) {
  assert(num_words >= 1);
  std::size_t pos = 0;
  const std::uint64_t count = words[pos++];
  std::vector<Rule> rules;
  rules.reserve(count);
  for (std::uint64_t r = 0; r < count; ++r) {
    Rule rule;
    const std::uint64_t ante_len = words[pos++];
    for (std::uint64_t i = 0; i < ante_len; ++i) {
      rule.antecedent.push_back(static_cast<Item>(words[pos++]));
    }
    const std::uint64_t cons_len = words[pos++];
    for (std::uint64_t i = 0; i < cons_len; ++i) {
      rule.consequent.push_back(static_cast<Item>(words[pos++]));
    }
    rule.joint_count = words[pos++];
    rule.support = std::bit_cast<double>(words[pos++]);
    rule.confidence = std::bit_cast<double>(words[pos++]);
    rules.push_back(std::move(rule));
  }
  assert(pos == num_words);
  (void)num_words;
  return rules;
}

std::vector<Rule> GenerateRulesParallel(Comm& comm,
                                        const FrequentItemsets& frequent,
                                        std::size_t num_transactions,
                                        double min_confidence) {
  const int p = comm.size();
  const int rank = comm.rank();

  // Round-robin over the global index of rule-source itemsets (size >= 2).
  std::vector<Rule> local;
  std::size_t global_index = 0;
  for (std::size_t level = 1; level < frequent.levels.size(); ++level) {
    for (std::size_t s = 0; s < frequent.levels[level].size(); ++s) {
      if (global_index % static_cast<std::size_t>(p) ==
          static_cast<std::size_t>(rank)) {
        rulegen_internal::RulesForItemset(frequent, level, s,
                                          num_transactions, min_confidence,
                                          &local);
      }
      ++global_index;
    }
  }

  const std::vector<std::uint64_t> mine = SerializeRules(local);
  // Ring all-gather of payload handles; rules deserialize straight out of
  // the shared transport buffers.
  const std::vector<Payload> blobs =
      comm.AllGatherPayload(Payload::Copy(std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(mine.data()),
          mine.size() * sizeof(std::uint64_t))));

  std::vector<Rule> merged;
  for (const Payload& blob : blobs) {
    std::vector<Rule> part = DeserializeRules(
        reinterpret_cast<const std::uint64_t*>(blob.data()),
        blob.size() / sizeof(std::uint64_t));
    merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  rulegen_internal::SortRules(merged);
  return merged;
}

}  // namespace pam
