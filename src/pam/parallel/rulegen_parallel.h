#ifndef PAM_PARALLEL_RULEGEN_PARALLEL_H_
#define PAM_PARALLEL_RULEGEN_PARALLEL_H_

#include <vector>

#include "pam/core/rulegen.h"
#include "pam/mp/comm.h"

namespace pam {

/// Parallel rule generation — the second step of association rule
/// discovery (the paper focuses on frequent-itemset counting and notes
/// this step's parallel implementation is straightforward, deferring to
/// Agrawal & Shafer): every rank holds the complete frequent itemsets
/// (which all four counting formulations guarantee), the rule-source
/// itemsets are partitioned round-robin by global index, each rank runs
/// ap-genrules on its share, and the rule sets are all-gathered.
///
/// Every rank returns the identical, canonically sorted rule set. Must be
/// called collectively by every member of `comm`.
std::vector<Rule> GenerateRulesParallel(Comm& comm,
                                        const FrequentItemsets& frequent,
                                        std::size_t num_transactions,
                                        double min_confidence);

/// Serializes rules into a flat word stream and back; exposed for tests.
std::vector<std::uint64_t> SerializeRules(const std::vector<Rule>& rules);
std::vector<Rule> DeserializeRules(const std::uint64_t* words,
                                   std::size_t num_words);

}  // namespace pam

#endif  // PAM_PARALLEL_RULEGEN_PARALLEL_H_
