#include <optional>

#include "pam/core/apriori_gen.h"
#include "pam/obs/trace.h"
#include "pam/parallel/algorithms.h"
#include "pam/util/timer.h"

namespace pam {

// Hybrid Distribution (paper Section III-D, Figure 9): the P processors
// form a logical G x (P/G) grid, chosen per pass from the candidate count
// (Table II). Candidates are partitioned (IDD-style) among the G rows;
// transactions circulate through the IDD ring within each column (step 1),
// counts are reduced CD-style along rows (step 2), and the frequent subsets
// are exchanged along columns (step 3).
RankOutput RunHdRank(const TransactionDatabase& db, Comm& comm,
                     const ParallelConfig& config) {
  using parallel_internal::ChooseGridRows;
  using parallel_internal::ExchangeFrequent;
  using parallel_internal::FrequentSubset;
  using parallel_internal::ParallelPass1;
  using parallel_internal::RingShiftAll;

  RankOutput out;
  const int p = comm.size();
  const int rank = comm.rank();
  const TransactionDatabase::Slice slice = db.RankSlice(rank, p);
  const Count minsup = config.apriori.ResolveMinsup(db.size());
  std::vector<Count> dhp_buckets;  // PDM-style DHP filter state (optional)
  CountingPool pool(config.apriori.threads_per_rank);

  {
    obs::ScopedSpan pass_span(obs::SpanKind::kPass, /*pass_k=*/1, -1,
                              nullptr);
    WallTimer timer;
    PassMetrics m;
    const CommFaultStats faults_at_start = comm.MyFaultStats();
    ItemsetCollection f1 = ParallelPass1(db, slice, comm, minsup, &m,
                                         &config, &dhp_buckets);
    parallel_internal::RecordFaultDelta(comm, faults_at_start, &m);
    m.wall_seconds = timer.Seconds();
    obs::EmitPassMetrics(m);
    out.passes.push_back(m);
    out.frequent.levels.push_back(std::move(f1));
  }

  for (int k = 2; config.apriori.max_k == 0 || k <= config.apriori.max_k;
       ++k) {
    const ItemsetCollection& prev = out.frequent.levels.back();
    if (prev.size() < 2) break;
    config.apriori.cancel.Checkpoint(rank);
    obs::ScopedSpan pass_span(obs::SpanKind::kPass, k, -1, nullptr);
    WallTimer timer;
    PassMetrics m;
    m.k = k;
    m.local_db_wire_bytes = db.WireBytes(slice);
    const CommFaultStats faults_at_start = comm.MyFaultStats();

    ItemsetCollection candidates =
        parallel_internal::GenerateCandidates(prev, k, dhp_buckets, minsup);
    if (candidates.empty()) {
      pass_span.Cancel();  // no PassMetrics row, so no pass span either
      break;
    }
    m.num_candidates_global = candidates.size();

    // Dynamic grid configuration (Table II), unless pinned by the caller.
    int rows;
    if (config.hd_forced_rows > 0) {
      rows = p;
      for (int g = config.hd_forced_rows; g <= p; ++g) {
        if (p % g == 0) {
          rows = g;
          break;
        }
      }
    } else {
      rows = ChooseGridRows(candidates.size(), config.hd_threshold_m, p);
    }
    const int cols = p / rows;
    const int my_row = rank / cols;
    const int my_col = rank % cols;
    m.grid_rows = rows;
    m.grid_cols = cols;

    std::vector<int> column_members;
    for (int r = 0; r < rows; ++r) column_members.push_back(my_col + r * cols);
    std::vector<int> row_members;
    for (int c = 0; c < cols; ++c) row_members.push_back(my_row * cols + c);
    Comm col_comm = comm.Sub(
        column_members,
        (static_cast<std::uint64_t>(k) << 32) | 0x0000434fULL /* "CO" */);
    Comm row_comm = comm.Sub(
        row_members,
        (static_cast<std::uint64_t>(k) << 32) | 0x0000524fULL /* "RO" */);

    // Candidate partition among the G rows; identical in every column.
    CandidatePartition partition = PartitionByPrefix(
        candidates, db.NumItems(), rows, config.prefix_strategy,
        config.split_heavy_prefixes);
    std::vector<std::uint32_t> my_ids =
        partition.ids_per_part[static_cast<std::size_t>(my_row)];
    m.num_candidates_local = my_ids.size();
    m.threads_per_rank = pool.num_threads();

    // Pass-2 triangle: the column ring delivers the column's G * N/P
    // transactions, so the local triangle holds this column's partial
    // counts; the step-2 row reduction below completes the owned share.
    const bool triangle = parallel_internal::TriangleEligible(
        k, config.apriori, prev.size());
    std::optional<TrianglePairCounter> tri;
    std::optional<TriangleTeam> tri_team;
    std::optional<HashTree> tree;
    std::optional<TeamCounter> tree_team;
    std::vector<Count> counts(candidates.size(), 0);
    if (triangle) {
      tri.emplace(prev);
      tri_team.emplace(&pool, &*tri, &m.subset, &config.apriori.cancel);
    } else {
      obs::ScopedSpan build_span(obs::SpanKind::kTreeBuild);
      tree.emplace(candidates, my_ids, config.apriori.tree);
      m.tree_build_inserts = tree->build_inserts();
      build_span.End();
      const Bitmap* filter =
          config.idd_use_bitmap
              ? &partition.first_item_filter[static_cast<std::size_t>(my_row)]
              : nullptr;
      tree_team.emplace(&pool, &*tree, std::span<Count>(counts), &m.subset,
                        filter, &config.apriori.cancel);
    }

    // Step 1: IDD within the column — each rank sees the G * N/P
    // transactions of its column.
    std::int64_t page_index = 0;
    auto process = [&](PageView page) {
      obs::ScopedSpan count_span(obs::SpanKind::kSubsetCount, page_index++);
      m.transactions_processed +=
          triangle ? tri_team->CountPage(page) : tree_team->CountPage(page);
    };
    const std::vector<Page> local_pages =
        Paginate(db, slice, config.page_bytes);
    m.data_bytes_sent += RingShiftAll(col_comm, local_pages, process,
                                      &m.data_messages_sent);
    if (triangle) {
      tri_team->Finish();
      AccumulateShardWork(m.shard_subset_work, tri_team->shard_work());
      tri->Extract(candidates, std::span<Count>(counts));
    } else {
      tree_team->Finish();
      AccumulateShardWork(m.shard_subset_work, tree_team->shard_work());
    }

    // Step 2: reduction along the row — every rank of a row holds the same
    // candidate subset; sum their per-column counts.
    if (cols > 1) {
      std::vector<std::uint64_t> dense(my_ids.size());
      for (std::size_t i = 0; i < my_ids.size(); ++i) {
        dense[i] = counts[my_ids[i]];
      }
      row_comm.AllReduceSum(std::span<std::uint64_t>(dense));
      for (std::size_t i = 0; i < my_ids.size(); ++i) {
        counts[my_ids[i]] = dense[i];
      }
      m.reduction_words += my_ids.size();
    }

    // Step 3: all-to-all broadcast of frequent subsets along the column
    // (one representative of every row per column).
    candidates.counts() = std::move(counts);
    ItemsetCollection local_frequent =
        FrequentSubset(candidates, my_ids, minsup);
    ItemsetCollection frequent =
        ExchangeFrequent(col_comm, local_frequent, &m.broadcast_words);
    m.num_frequent_global = frequent.size();
    parallel_internal::RecordFaultDelta(comm, faults_at_start, &m);
    m.wall_seconds = timer.Seconds();
    obs::EmitPassMetrics(m);
    out.passes.push_back(m);
    if (frequent.empty()) break;
    out.frequent.levels.push_back(std::move(frequent));
  }

  while (!out.frequent.levels.empty() && out.frequent.levels.back().empty()) {
    out.frequent.levels.pop_back();
  }
  return out;
}

}  // namespace pam
