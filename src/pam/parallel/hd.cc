#include <optional>

#include "pam/core/apriori_gen.h"
#include "pam/obs/trace.h"
#include "pam/parallel/algorithms.h"
#include "pam/parallel/load_model.h"
#include "pam/util/timer.h"

namespace pam {

// Hybrid Distribution (paper Section III-D, Figure 9): the P processors
// form a logical G x (P/G) grid, chosen per pass from the candidate count
// (Table II). Candidates are partitioned (IDD-style) among the G rows;
// transactions circulate through the IDD ring within each column (step 1),
// counts are reduced CD-style along rows (step 2), and the frequent subsets
// are exchanged along columns (step 3).
//
// With config.adaptive_balance the per-pass G comes from the LoadModel's
// measured compute/comm ratio once a tree pass has calibrated it (falling
// back to the static Table-II heuristic before that), and the row
// partition uses measured per-first-item weights (DESIGN.md §14). Every
// input to both decisions is a globally-reduced deterministic counter, so
// all ranks pick the same grid; output stays byte-identical to static.
RankOutput RunHdRank(const TransactionDatabase& db, Comm& comm,
                     const ParallelConfig& config) {
  using parallel_internal::ChooseGridRows;
  using parallel_internal::ExchangeFrequent;
  using parallel_internal::FrequentSubset;
  using parallel_internal::ParallelPass1;
  using parallel_internal::RingShiftAll;

  RankOutput out;
  const int p = comm.size();
  const int rank = comm.rank();
  const TransactionDatabase::Slice slice = db.RankSlice(rank, p);
  const Count minsup = config.apriori.ResolveMinsup(db.size());
  std::vector<Count> dhp_buckets;  // PDM-style DHP filter state (optional)
  CountingPool pool(config.apriori.threads_per_rank);
  const bool adaptive = config.adaptive_balance;
  const bool adaptive_weights =
      adaptive && config.prefix_strategy == PrefixStrategy::kBinPacked;
  LoadModel model(db.NumItems());
  // The dynamic-G comm term must be identical on every rank: use the
  // whole database's wire size divided by P, not this rank's slice.
  const std::uint64_t wire_bytes_per_rank =
      db.WireBytes(TransactionDatabase::Slice{0, db.size()}) /
      static_cast<std::uint64_t>(p);

  {
    obs::ScopedSpan pass_span(obs::SpanKind::kPass, /*pass_k=*/1, -1,
                              nullptr);
    WallTimer timer;
    PassMetrics m;
    const CommFaultStats faults_at_start = comm.MyFaultStats();
    ItemsetCollection f1 = ParallelPass1(db, slice, comm, minsup, &m,
                                         &config, &dhp_buckets);
    parallel_internal::RecordFaultDelta(comm, faults_at_start, &m);
    m.wall_seconds = timer.Seconds();
    obs::EmitPassMetrics(m);
    out.passes.push_back(m);
    out.frequent.levels.push_back(std::move(f1));
  }

  for (int k = 2; config.apriori.max_k == 0 || k <= config.apriori.max_k;
       ++k) {
    const ItemsetCollection& prev = out.frequent.levels.back();
    if (prev.size() < 2) break;
    config.apriori.cancel.Checkpoint(rank);
    obs::ScopedSpan pass_span(obs::SpanKind::kPass, k, -1, nullptr);
    WallTimer timer;
    PassMetrics m;
    m.k = k;
    m.local_db_wire_bytes = db.WireBytes(slice);
    const CommFaultStats faults_at_start = comm.MyFaultStats();

    ItemsetCollection candidates =
        parallel_internal::GenerateCandidates(prev, k, dhp_buckets, minsup);
    if (candidates.empty()) {
      pass_span.Cancel();  // no PassMetrics row, so no pass span either
      break;
    }
    m.num_candidates_global = candidates.size();

    // Dynamic grid configuration (Table II), unless pinned by the caller.
    // With adaptive_balance, a calibrated LoadModel overrides the static
    // threshold heuristic using the measured compute/comm ratio; until the
    // first hash-tree pass calibrates it, the static choice stands.
    int rows;
    if (config.hd_forced_rows > 0) {
      rows = p;
      for (int g = config.hd_forced_rows; g <= p; ++g) {
        if (p % g == 0) {
          rows = g;
          break;
        }
      }
    } else {
      rows = ChooseGridRows(candidates.size(), config.hd_threshold_m, p);
      if (adaptive) {
        rows = model.ChooseGridRows(
            candidates.size(),
            static_cast<std::uint64_t>(db.size()) /
                static_cast<std::uint64_t>(p),
            wire_bytes_per_rank, p, rows);
      }
    }
    const int cols = p / rows;
    const int my_row = rank / cols;
    const int my_col = rank % cols;
    m.grid_rows = rows;
    m.grid_cols = cols;

    std::vector<int> column_members;
    for (int r = 0; r < rows; ++r) column_members.push_back(my_col + r * cols);
    std::vector<int> row_members;
    for (int c = 0; c < cols; ++c) row_members.push_back(my_row * cols + c);
    Comm col_comm = comm.Sub(
        column_members,
        (static_cast<std::uint64_t>(k) << 32) | 0x0000434fULL /* "CO" */);
    Comm row_comm = comm.Sub(
        row_members,
        (static_cast<std::uint64_t>(k) << 32) | 0x0000524fULL /* "RO" */);

    // Candidate partition among the G rows; identical in every column.
    // Measured weights kick in once the model is calibrated.
    const std::vector<std::uint64_t> item_costs =
        adaptive_weights ? model.ItemCosts(candidates)
                         : std::vector<std::uint64_t>();
    CandidatePartition partition = PartitionByPrefix(
        candidates, db.NumItems(), rows, config.prefix_strategy,
        config.split_heavy_prefixes,
        item_costs.empty() ? nullptr : &item_costs);
    m.partition_digest = PartitionDigest(partition);
    if (!item_costs.empty()) {
      const CandidatePartition static_partition = PartitionByPrefix(
          candidates, db.NumItems(), rows, config.prefix_strategy,
          config.split_heavy_prefixes);
      m.rebalanced_candidates = PartitionMoves(static_partition, partition);
    }
    std::vector<std::uint32_t> my_ids =
        partition.ids_per_part[static_cast<std::size_t>(my_row)];
    m.num_candidates_local = my_ids.size();
    m.threads_per_rank = pool.num_threads();

    // Pass-2 triangle: the column ring delivers the column's G * N/P
    // transactions, so the local triangle holds this column's partial
    // counts; the step-2 row reduction below completes the owned share.
    const bool triangle = parallel_internal::TriangleEligible(
        k, config.apriori, prev.size());
    std::optional<TrianglePairCounter> tri;
    std::optional<TriangleTeam> tri_team;
    std::optional<HashTree> tree;
    std::optional<TeamCounter> tree_team;
    std::vector<Count> counts(candidates.size(), 0);
    // Kernel-side per-first-item work attribution, the adaptive
    // balancer's measurement (empty span = attribution off, zero kernel
    // overhead).
    std::vector<std::uint64_t> item_work;
    std::vector<std::uint64_t> leaf_visits;
    if (adaptive && !triangle) {
      item_work.assign(static_cast<std::size_t>(db.NumItems()), 0);
    }
    if (triangle) {
      tri.emplace(prev);
      tri_team.emplace(&pool, &*tri, &m.subset, &config.apriori.cancel);
    } else {
      obs::ScopedSpan build_span(obs::SpanKind::kTreeBuild);
      // Identity root dispatch keeps the per-first-item attribution exact
      // (no co-bucket cross-charging); counts are shape-independent, so
      // output stays byte-identical to the static hashed-root tree.
      HashTreeConfig tree_config = config.apriori.tree;
      tree_config.identity_root = adaptive;
      tree.emplace(candidates, my_ids, tree_config);
      m.tree_build_inserts = tree->build_inserts();
      build_span.End();
      const Bitmap* filter =
          config.idd_use_bitmap
              ? &partition.first_item_filter[static_cast<std::size_t>(my_row)]
              : nullptr;
      if (!item_work.empty()) leaf_visits.assign(tree->num_leaves(), 0);
      tree_team.emplace(&pool, &*tree, std::span<Count>(counts), &m.subset,
                        filter, &config.apriori.cancel,
                        std::span<std::uint64_t>(item_work),
                        std::span<std::uint64_t>(leaf_visits));
    }

    // Step 1: IDD within the column — each rank sees the G * N/P
    // transactions of its column.
    std::int64_t page_index = 0;
    auto process = [&](PageView page) {
      obs::ScopedSpan count_span(obs::SpanKind::kSubsetCount, page_index++);
      m.transactions_processed +=
          triangle ? tri_team->CountPage(page) : tree_team->CountPage(page);
    };
    const std::vector<Page> local_pages =
        Paginate(db, slice, config.page_bytes);
    m.data_bytes_sent += RingShiftAll(col_comm, local_pages, process,
                                      &m.data_messages_sent);
    if (triangle) {
      tri_team->Finish();
      AccumulateShardWork(m.shard_subset_work, tri_team->shard_work());
      tri->Extract(candidates, std::span<Count>(counts));
    } else {
      tree_team->Finish();
      AccumulateShardWork(m.shard_subset_work, tree_team->shard_work());
    }

    // Adaptive feedback: reduce the measured per-first-item subset work
    // over the full grid (each row's items are counted once per column;
    // the union of the columns' rings covers the whole database exactly
    // once, so the sums are the items' true global work). Triangle passes
    // have no hash tree and hence no per-item attribution, so they are
    // skipped.
    if (adaptive && !triangle) {
      LoadModel::PassFeedback feedback;
      feedback.first_items = LoadModel::DistinctFirstItems(candidates);
      feedback.item_candidates.assign(feedback.first_items.size(), 0);
      std::vector<std::uint64_t> compact(feedback.first_items.size(), 0);
      for (std::size_t i = 0; i < feedback.first_items.size(); ++i) {
        const auto f = static_cast<std::size_t>(feedback.first_items[i]);
        compact[i] = item_work[f];
      }
      for (std::size_t i = 0, run = 0; i < candidates.size(); ++i) {
        while (feedback.first_items[run] != candidates.Get(i)[0]) ++run;
        ++feedback.item_candidates[run];
      }
      const parallel_internal::BalanceSync sync =
          parallel_internal::ShareBalanceFeedback(comm, m, compact);
      m.balance_sync_words = sync.words;
      m.reduction_words += sync.words;
      feedback.part_work.assign(static_cast<std::size_t>(rows), 0);
      for (int r = 0; r < p; ++r) {
        feedback.part_work[static_cast<std::size_t>(r / cols)] +=
            sync.rank_work[static_cast<std::size_t>(r)];
      }
      feedback.item_work = sync.item_work;
      feedback.transactions = sync.transactions;
      feedback.traversal_steps = sync.traversal_steps;
      feedback.leaf_checks = sync.leaf_checks;
      feedback.num_candidates = candidates.size();
      feedback.grid_rows = rows;
      feedback.tree_pass = true;
      model.Observe(feedback);
    }

    // Step 2: reduction along the row — every rank of a row holds the same
    // candidate subset; sum their per-column counts.
    if (cols > 1) {
      std::vector<std::uint64_t> dense(my_ids.size());
      for (std::size_t i = 0; i < my_ids.size(); ++i) {
        dense[i] = counts[my_ids[i]];
      }
      row_comm.AllReduceSum(std::span<std::uint64_t>(dense));
      for (std::size_t i = 0; i < my_ids.size(); ++i) {
        counts[my_ids[i]] = dense[i];
      }
      m.reduction_words += my_ids.size();
    }

    // Step 3: all-to-all broadcast of frequent subsets along the column
    // (one representative of every row per column).
    candidates.counts() = std::move(counts);
    ItemsetCollection local_frequent =
        FrequentSubset(candidates, my_ids, minsup);
    ItemsetCollection frequent =
        ExchangeFrequent(col_comm, local_frequent, &m.broadcast_words);
    m.num_frequent_global = frequent.size();
    parallel_internal::RecordFaultDelta(comm, faults_at_start, &m);
    m.wall_seconds = timer.Seconds();
    obs::EmitPassMetrics(m);
    out.passes.push_back(m);
    if (frequent.empty()) break;
    out.frequent.levels.push_back(std::move(frequent));
  }

  while (!out.frequent.levels.empty() && out.frequent.levels.back().empty()) {
    out.frequent.levels.pop_back();
  }
  return out;
}

}  // namespace pam
