#ifndef PAM_PARALLEL_DRIVER_H_
#define PAM_PARALLEL_DRIVER_H_

#include "pam/obs/trace.h"
#include "pam/parallel/algorithms.h"
#include "pam/parallel/metrics.h"
#include "pam/tdb/database.h"

namespace pam {

/// Result of a parallel mining run.
struct ParallelResult {
  /// Globally frequent itemsets (identical on every rank; rank 0's copy).
  FrequentItemsets frequent;
  /// Exact per-pass, per-rank work and traffic counters.
  RunMetrics metrics;
  Count minsup_count = 0;
  /// End-to-end wall-clock of the run (informational: logical ranks share
  /// the host's cores, so figures use the cost model instead).
  double wall_seconds = 0.0;
};

/// Runs `algorithm` with `num_ranks` logical processors over `db`.
/// Deterministic: identical inputs produce identical frequent itemsets and
/// work counters on every invocation, for any rank count. When
/// `config.fault` is enabled, the run executes under the transport fault
/// schedule: it either completes with the exact same frequent itemsets
/// (recoverable faults are repaired by the communicator) or throws a
/// CommError — never returns silently wrong counts.
/// Thin wrapper over MineParallelObserved with observers disabled. New
/// code should prefer the MiningSession facade in pam/api/session.h,
/// which fronts both this and the serial miner and can attach trace and
/// metrics sinks.
ParallelResult MineParallel(Algorithm algorithm,
                            const TransactionDatabase& db, int num_ranks,
                            const ParallelConfig& config);

/// MineParallel with observer wiring: when `observers` is non-null, each
/// rank thread installs a RankTracer for it, so the formulations' span
/// emission (pass / tree build / ring round / collective / subset count)
/// and per-pass metrics streaming reach the session's sinks. A null
/// `observers` is the exact zero-overhead path of MineParallel. Driven by
/// MiningSession; callers outside the api layer should not need it.
ParallelResult MineParallelObserved(Algorithm algorithm,
                                    const TransactionDatabase& db,
                                    int num_ranks,
                                    const ParallelConfig& config,
                                    obs::SessionObs* observers);

}  // namespace pam

#endif  // PAM_PARALLEL_DRIVER_H_
