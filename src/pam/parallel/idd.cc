#include <optional>

#include "pam/core/apriori_gen.h"
#include "pam/obs/trace.h"
#include "pam/parallel/algorithms.h"
#include "pam/parallel/load_model.h"
#include "pam/util/timer.h"

namespace pam {

// Intelligent Data Distribution (paper Section III-C, Figure 7): candidates
// are partitioned by first item via bin packing, each rank filters the root
// level of the subset function with a bitmap of its owned first-items
// (Figure 8), and the database circulates through the ring pipeline of
// Figure 6 instead of DD's contention-prone all-to-all.
//
// With config.adaptive_balance the partitioner's weights come from a
// LoadModel instead of raw candidate counts: the counting kernel
// attributes its measured subset work to the root item each descent
// started from, and one AllReduceSum per pass gives every rank the exact
// global cost of every first item's candidates (DESIGN.md §14). The ring
// still delivers every transaction to every rank, so the mining output is
// byte-identical either way.
RankOutput RunIddRank(const TransactionDatabase& db, Comm& comm,
                      const ParallelConfig& config) {
  using parallel_internal::ExchangeFrequent;
  using parallel_internal::FrequentSubset;
  using parallel_internal::ParallelPass1;
  using parallel_internal::RingShiftAll;

  RankOutput out;
  const int p = comm.size();
  const int rank = comm.rank();
  // Single-source mode: rank 0 owns the entire database and feeds the
  // ring; everyone else starts with an empty slice (the ring's round
  // padding keeps the pipeline in lockstep).
  const TransactionDatabase::Slice slice =
      config.single_source
          ? (rank == 0 ? TransactionDatabase::Slice{0, db.size()}
                       : TransactionDatabase::Slice{db.size(), db.size()})
          : db.RankSlice(rank, p);
  const Count minsup = config.apriori.ResolveMinsup(db.size());
  std::vector<Count> dhp_buckets;  // PDM-style DHP filter state (optional)
  CountingPool pool(config.apriori.threads_per_rank);
  // Measured-weight repartitioning requires the bin-packing strategy; the
  // contiguous ablation stays static even with the flag on.
  const bool adaptive = config.adaptive_balance &&
                        config.prefix_strategy == PrefixStrategy::kBinPacked;
  LoadModel model(db.NumItems());

  {
    obs::ScopedSpan pass_span(obs::SpanKind::kPass, /*pass_k=*/1, -1,
                              nullptr);
    WallTimer timer;
    PassMetrics m;
    const CommFaultStats faults_at_start = comm.MyFaultStats();
    ItemsetCollection f1 = ParallelPass1(db, slice, comm, minsup, &m,
                                         &config, &dhp_buckets);
    parallel_internal::RecordFaultDelta(comm, faults_at_start, &m);
    m.wall_seconds = timer.Seconds();
    obs::EmitPassMetrics(m);
    out.passes.push_back(m);
    out.frequent.levels.push_back(std::move(f1));
  }

  for (int k = 2; config.apriori.max_k == 0 || k <= config.apriori.max_k;
       ++k) {
    const ItemsetCollection& prev = out.frequent.levels.back();
    if (prev.size() < 2) break;
    config.apriori.cancel.Checkpoint(rank);
    obs::ScopedSpan pass_span(obs::SpanKind::kPass, k, -1, nullptr);
    WallTimer timer;
    PassMetrics m;
    m.k = k;
    m.local_db_wire_bytes = db.WireBytes(slice);
    m.grid_rows = p;
    const CommFaultStats faults_at_start = comm.MyFaultStats();

    // Regenerate C_k locally, then keep only the bin-packed share; the
    // paper's implementation likewise computes the first-item histogram,
    // bin-packs, and regenerates the local partition.
    ItemsetCollection candidates =
        parallel_internal::GenerateCandidates(prev, k, dhp_buckets, minsup);
    if (candidates.empty()) {
      pass_span.Cancel();  // no PassMetrics row, so no pass span either
      break;
    }
    m.num_candidates_global = candidates.size();
    m.threads_per_rank = pool.num_threads();
    // Empty until the first measured hash-tree pass calibrates the model:
    // before that the partition is the static candidate-count one.
    const std::vector<std::uint64_t> item_costs =
        adaptive ? model.ItemCosts(candidates) : std::vector<std::uint64_t>();
    CandidatePartition partition = PartitionByPrefix(
        candidates, db.NumItems(), p, config.prefix_strategy,
        config.split_heavy_prefixes,
        item_costs.empty() ? nullptr : &item_costs);
    m.partition_digest = PartitionDigest(partition);
    if (!item_costs.empty()) {
      // Repartition delta vs the static candidate-count packing the pass
      // would have used without feedback.
      const CandidatePartition static_partition = PartitionByPrefix(
          candidates, db.NumItems(), p, config.prefix_strategy,
          config.split_heavy_prefixes);
      m.rebalanced_candidates = PartitionMoves(static_partition, partition);
    }
    std::vector<std::uint32_t> my_ids =
        partition.ids_per_part[static_cast<std::size_t>(rank)];
    m.num_candidates_local = my_ids.size();

    // Pass-2 triangle: the ring pipeline delivers every transaction to
    // every rank, so counting all F1 pairs locally yields complete counts
    // for the owned prefix partition — no hash tree, no root bitmap.
    const bool triangle = parallel_internal::TriangleEligible(
        k, config.apriori, prev.size());
    std::optional<TrianglePairCounter> tri;
    std::optional<TriangleTeam> tri_team;
    std::optional<HashTree> tree;
    std::optional<TeamCounter> tree_team;
    std::vector<Count> counts(candidates.size(), 0);
    // Kernel-side per-first-item work attribution, the adaptive
    // balancer's measurement (empty span = attribution off, zero kernel
    // overhead).
    std::vector<std::uint64_t> item_work;
    std::vector<std::uint64_t> leaf_visits;
    if (adaptive && !triangle) {
      item_work.assign(static_cast<std::size_t>(db.NumItems()), 0);
    }
    if (triangle) {
      tri.emplace(prev);
      tri_team.emplace(&pool, &*tri, &m.subset, &config.apriori.cancel);
    } else {
      obs::ScopedSpan build_span(obs::SpanKind::kTreeBuild);
      // Identity root dispatch keeps the per-first-item attribution exact
      // (no co-bucket cross-charging) and skips false root descents into
      // unowned subtrees; counts are shape-independent, so output stays
      // byte-identical to the static hashed-root tree.
      HashTreeConfig tree_config = config.apriori.tree;
      tree_config.identity_root = adaptive;
      tree.emplace(candidates, my_ids, tree_config);
      m.tree_build_inserts = tree->build_inserts();
      build_span.End();
      const Bitmap* filter =
          config.idd_use_bitmap
              ? &partition.first_item_filter[static_cast<std::size_t>(rank)]
              : nullptr;
      if (!item_work.empty()) leaf_visits.assign(tree->num_leaves(), 0);
      tree_team.emplace(&pool, &*tree, std::span<Count>(counts), &m.subset,
                        filter, &config.apriori.cancel,
                        std::span<std::uint64_t>(item_work),
                        std::span<std::uint64_t>(leaf_visits));
    }
    std::int64_t page_index = 0;
    auto process = [&](PageView page) {
      obs::ScopedSpan count_span(obs::SpanKind::kSubsetCount, page_index++);
      m.transactions_processed +=
          triangle ? tri_team->CountPage(page) : tree_team->CountPage(page);
    };
    const std::vector<Page> local_pages =
        Paginate(db, slice, config.page_bytes);
    m.data_bytes_sent +=
        RingShiftAll(comm, local_pages, process, &m.data_messages_sent);
    if (triangle) {
      tri_team->Finish();
      AccumulateShardWork(m.shard_subset_work, tri_team->shard_work());
      tri->Extract(candidates, std::span<Count>(counts));
    } else {
      tree_team->Finish();
      AccumulateShardWork(m.shard_subset_work, tree_team->shard_work());
    }

    // Feed the measured per-first-item subset work back into the model
    // (one AllReduceSum of P + 3 + |first items| words; every rank folds
    // identical totals, so the next pass's partition is recomputed
    // identically with no decision broadcast). Triangle passes have no
    // hash tree and hence no per-item attribution, so they are skipped.
    if (adaptive && !triangle) {
      LoadModel::PassFeedback feedback;
      feedback.first_items = LoadModel::DistinctFirstItems(candidates);
      feedback.item_candidates.assign(feedback.first_items.size(), 0);
      std::vector<std::uint64_t> compact(feedback.first_items.size(), 0);
      for (std::size_t i = 0; i < feedback.first_items.size(); ++i) {
        const auto f = static_cast<std::size_t>(feedback.first_items[i]);
        compact[i] = item_work[f];
      }
      for (std::size_t i = 0, run = 0; i < candidates.size(); ++i) {
        while (feedback.first_items[run] != candidates.Get(i)[0]) ++run;
        ++feedback.item_candidates[run];
      }
      const parallel_internal::BalanceSync sync =
          parallel_internal::ShareBalanceFeedback(comm, m, compact);
      m.balance_sync_words = sync.words;
      m.reduction_words += sync.words;
      feedback.part_work = sync.rank_work;
      feedback.item_work = sync.item_work;
      feedback.transactions = sync.transactions;
      feedback.traversal_steps = sync.traversal_steps;
      feedback.leaf_checks = sync.leaf_checks;
      feedback.num_candidates = candidates.size();
      feedback.grid_rows = p;
      feedback.tree_pass = true;
      model.Observe(feedback);
    }

    candidates.counts() = std::move(counts);
    ItemsetCollection local_frequent =
        FrequentSubset(candidates, my_ids, minsup);
    ItemsetCollection frequent =
        ExchangeFrequent(comm, local_frequent, &m.broadcast_words);
    m.num_frequent_global = frequent.size();
    parallel_internal::RecordFaultDelta(comm, faults_at_start, &m);
    m.wall_seconds = timer.Seconds();
    obs::EmitPassMetrics(m);
    out.passes.push_back(m);
    if (frequent.empty()) break;
    out.frequent.levels.push_back(std::move(frequent));
  }

  while (!out.frequent.levels.empty() && out.frequent.levels.back().empty()) {
    out.frequent.levels.pop_back();
  }
  return out;
}

}  // namespace pam
