#ifndef PAM_PARALLEL_METRICS_H_
#define PAM_PARALLEL_METRICS_H_

#include <cstdint>
#include <vector>

#include "pam/hashtree/hash_tree.h"
#include "pam/util/stats.h"

namespace pam {

/// Exact per-rank, per-pass work and traffic counters. These are the
/// quantities of the paper's Section IV analysis; the cost model converts
/// them into response times for the target machine (T3E / SP2), and the
/// figure benches aggregate them directly (e.g., Figure 11 plots
/// subset.AvgLeafVisitsPerTransaction()).
struct PassMetrics {
  int k = 0;

  /// |C_k| globally, and the number of candidates in this rank's tree.
  std::size_t num_candidates_global = 0;
  std::size_t num_candidates_local = 0;
  std::size_t num_frequent_global = 0;

  /// Hash tree construction inserts performed by this rank (the O(M) /
  /// O(M/P) / O(M/G) term).
  std::uint64_t tree_build_inserts = 0;

  /// Subset-function work over every transaction this rank processed.
  SubsetStats subset;

  /// Transactions this rank pushed through its tree this pass
  /// (N/P for CD, N for DD/IDD, G*N/P for HD).
  std::uint64_t transactions_processed = 0;

  /// Bytes of transaction data this rank sent (DD all-to-all, IDD/HD ring).
  std::uint64_t data_bytes_sent = 0;
  std::uint64_t data_messages_sent = 0;

  /// Elements this rank contributed to count reductions (M for CD,
  /// M/G for HD rows, 0 for DD/IDD).
  std::uint64_t reduction_words = 0;

  /// Serialized words exchanged in the frequent-itemset all-to-all
  /// broadcast.
  std::uint64_t broadcast_words = 0;

  /// Database scans this pass (> 1 only for memory-capped CD, Figure 12).
  std::size_t db_scans = 1;

  /// Wire bytes of this rank's local database slice; the cost model charges
  /// db_scans * local_db_wire_bytes of disk traffic on machines with a
  /// finite I/O rate (Figure 12's SP2 runs).
  std::uint64_t local_db_wire_bytes = 0;

  /// Transport fault activity this pass (non-zero only under fault
  /// injection): faults the schedule applied to this rank's sends, extra
  /// delivery attempts, and bad envelopes this rank's receives discarded.
  /// bench_robustness reports these as recovery overhead.
  std::uint64_t comm_faults_injected = 0;
  std::uint64_t comm_retries = 0;
  std::uint64_t comm_faults_detected = 0;

  /// HD grid configuration used this pass (rows = G); 1x1 for serial-like
  /// settings, 1xP for CD, Px1 for IDD.
  int grid_rows = 1;
  int grid_cols = 1;

  /// Adaptive load balancing (DESIGN.md §14). partition_digest fingerprints
  /// this pass's candidate-to-part assignment (0 when the pass used no
  /// prefix partition); it is identical on every rank and invariant under
  /// recoverable transport faults — the chaos suite pins rebalancing
  /// determinism on it. rebalanced_candidates counts candidates the
  /// measured-weight packing placed on a different part than the static
  /// candidate-count packing would have (always 0 with adaptive_balance
  /// off), and balance_sync_words is the size of the feedback all-reduce
  /// (also charged to reduction_words).
  std::uint64_t partition_digest = 0;
  std::uint64_t rebalanced_candidates = 0;
  std::uint64_t balance_sync_words = 0;

  /// Intra-rank counting team shape this pass (DESIGN.md §11): configured
  /// team size, and the subset work (traversal steps + candidates checked)
  /// each shard performed, in shard order. shard_subset_work is empty when
  /// the team was inactive (threads_per_rank == 1 or nothing counted).
  int threads_per_rank = 1;
  std::vector<std::uint64_t> shard_subset_work;

  /// Local wall-clock (informational only; figures use the cost model).
  double wall_seconds = 0.0;
};

/// Metrics for a whole run: per_pass[p][r] is pass p (0-based; pass k =
/// p + 1) on rank r.
struct RunMetrics {
  std::vector<std::vector<PassMetrics>> per_pass;

  int num_passes() const { return static_cast<int>(per_pass.size()); }
  int num_ranks() const {
    return per_pass.empty() ? 0 : static_cast<int>(per_pass[0].size());
  }

  /// Balance of subset-function work (traversal + checking) across ranks in
  /// one pass — the paper's computation-time load imbalance.
  LoadSummary SubsetWorkBalance(int pass_index) const;

  /// Sum of a field over ranks in one pass.
  std::uint64_t TotalDataBytes(int pass_index) const;
  std::uint64_t TotalLeafVisits(int pass_index) const;
  std::uint64_t TotalTransactionsProcessed(int pass_index) const;

  /// Aggregate transport fault activity over every pass and rank.
  std::uint64_t TotalFaultsInjected() const;
  std::uint64_t TotalCommRetries() const;
  std::uint64_t TotalFaultsDetected() const;

  /// Aggregated subset stats across all ranks of one pass.
  SubsetStats PassSubsetStats(int pass_index) const;
};

}  // namespace pam

#endif  // PAM_PARALLEL_METRICS_H_
