#include <cstring>
#include <optional>

#include "pam/core/apriori_gen.h"
#include "pam/obs/trace.h"
#include "pam/parallel/algorithms.h"
#include "pam/util/timer.h"

namespace pam {
namespace {

using parallel_internal::ExchangeFrequent;
using parallel_internal::FrequentSubset;
using parallel_internal::ParallelPass1;
using parallel_internal::RingShiftAll;

// DD's data movement (paper Section III-B): every rank pushes each of its
// local pages to every other rank with P-1 point-to-point sends, receiving
// and processing remote pages as they arrive. Each page is wrapped into a
// shared payload once; the P-1 sends all carry the same handle, and remote
// pages are scanned in place through a view of the transport buffer. The
// communication volume per rank is (P-1) * N/P sent and received; on real
// sparse networks this pattern additionally suffers contention, which the
// cost model charges analytically (our mailboxes are unbounded, so the
// finite-buffer idling the paper describes cannot physically deadlock
// here).
void DdAllToAllMovement(Comm& comm, const std::vector<Page>& local_pages,
                        const std::function<void(PageView)>& process,
                        PassMetrics* metrics) {
  const int p = comm.size();
  if (p == 1) {
    for (const Page& page : local_pages) process(page);
    return;
  }
  obs::ScopedSpan exchange_span(obs::SpanKind::kAllToAll, -1, "dd_pages");

  // One log-P sum-reduction tells every rank the global page total; its
  // remote expectation is the total minus its own contribution.
  std::uint64_t total_pages = local_pages.size();
  comm.AllReduceSum(std::span<std::uint64_t>(&total_pages, 1));
  const std::uint64_t expected_remote = total_pages - local_pages.size();

  std::uint64_t received = 0;
  Payload incoming;
  for (const Page& page : local_pages) {
    const Payload handle = Payload::Copy(std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(page.data()),
        page.size() * sizeof(std::uint32_t)));
    for (int r = 0; r < p; ++r) {
      if (r == comm.rank()) continue;
      comm.Isend(r, kTagDdPage, handle);  // same handle to every peer
      if (metrics != nullptr) {
        metrics->data_bytes_sent += handle.size();
        ++metrics->data_messages_sent;
      }
    }
    process(page);
    // Drain whatever remote pages already arrived (ties broken in favor of
    // other processors' buffers, as in the paper).
    while (received < expected_remote &&
           comm.TryRecvPayload(-1, kTagDdPage, &incoming)) {
      ++received;
      process(PageViewOfBytes(incoming.bytes()));
    }
  }
  while (received < expected_remote) {
    incoming = comm.RecvPayload(-1, kTagDdPage);
    ++received;
    process(PageViewOfBytes(incoming.bytes()));
  }
}

}  // namespace

// Data Distribution (paper Section III-B, Figure 5) and its "DD+comm"
// variant (Figure 10) that swaps the all-to-all page movement for IDD's
// ring pipeline while keeping the round-robin candidate partition (and
// hence DD's redundant subset work).
RankOutput RunDdRank(const TransactionDatabase& db, Comm& comm,
                     const ParallelConfig& config, bool ring_movement) {
  RankOutput out;
  const int p = comm.size();
  const int rank = comm.rank();
  const TransactionDatabase::Slice slice = db.RankSlice(rank, p);
  const Count minsup = config.apriori.ResolveMinsup(db.size());
  std::vector<Count> dhp_buckets;  // PDM-style DHP filter state (optional)
  CountingPool pool(config.apriori.threads_per_rank);

  {
    obs::ScopedSpan pass_span(obs::SpanKind::kPass, /*pass_k=*/1, -1,
                              nullptr);
    WallTimer timer;
    PassMetrics m;
    const CommFaultStats faults_at_start = comm.MyFaultStats();
    ItemsetCollection f1 = ParallelPass1(db, slice, comm, minsup, &m,
                                         &config, &dhp_buckets);
    parallel_internal::RecordFaultDelta(comm, faults_at_start, &m);
    m.wall_seconds = timer.Seconds();
    obs::EmitPassMetrics(m);
    out.passes.push_back(m);
    out.frequent.levels.push_back(std::move(f1));
  }

  for (int k = 2; config.apriori.max_k == 0 || k <= config.apriori.max_k;
       ++k) {
    const ItemsetCollection& prev = out.frequent.levels.back();
    if (prev.size() < 2) break;
    config.apriori.cancel.Checkpoint(rank);
    obs::ScopedSpan pass_span(obs::SpanKind::kPass, k, -1, nullptr);
    WallTimer timer;
    PassMetrics m;
    m.k = k;
    m.local_db_wire_bytes = db.WireBytes(slice);
    m.grid_rows = p;
    const CommFaultStats faults_at_start = comm.MyFaultStats();

    // Every rank regenerates the full candidate set, then keeps its
    // round-robin share in its hash tree.
    ItemsetCollection candidates =
        parallel_internal::GenerateCandidates(prev, k, dhp_buckets, minsup);
    if (candidates.empty()) {
      pass_span.Cancel();  // no PassMetrics row, so no pass span either
      break;
    }
    m.num_candidates_global = candidates.size();
    m.threads_per_rank = pool.num_threads();
    CandidatePartition partition =
        PartitionRoundRobin(candidates.size(), p);
    std::vector<std::uint32_t> my_ids =
        partition.ids_per_part[static_cast<std::size_t>(rank)];
    m.num_candidates_local = my_ids.size();

    // Pass-2 triangle: every transaction circulates through every rank, so
    // counting all F1 pairs locally yields complete counts for the owned
    // round-robin share without any hash tree.
    const bool triangle = parallel_internal::TriangleEligible(
        k, config.apriori, prev.size());
    std::optional<TrianglePairCounter> tri;
    std::optional<TriangleTeam> tri_team;
    std::optional<HashTree> tree;
    std::optional<TeamCounter> tree_team;
    std::vector<Count> counts(candidates.size(), 0);
    if (triangle) {
      tri.emplace(prev);
      tri_team.emplace(&pool, &*tri, &m.subset, &config.apriori.cancel);
    } else {
      obs::ScopedSpan build_span(obs::SpanKind::kTreeBuild);
      tree.emplace(candidates, my_ids, config.apriori.tree);
      m.tree_build_inserts = tree->build_inserts();
      build_span.End();
      tree_team.emplace(&pool, &*tree, std::span<Count>(counts), &m.subset,
                        /*root_filter=*/nullptr, &config.apriori.cancel);
    }
    std::int64_t page_index = 0;
    auto process = [&](PageView page) {
      obs::ScopedSpan count_span(obs::SpanKind::kSubsetCount, page_index++);
      m.transactions_processed +=
          triangle ? tri_team->CountPage(page) : tree_team->CountPage(page);
    };
    const std::vector<Page> local_pages =
        Paginate(db, slice, config.page_bytes);
    if (ring_movement) {
      m.data_bytes_sent +=
          RingShiftAll(comm, local_pages, process, &m.data_messages_sent);
    } else {
      DdAllToAllMovement(comm, local_pages, process, &m);
    }
    if (triangle) {
      tri_team->Finish();
      AccumulateShardWork(m.shard_subset_work, tri_team->shard_work());
      tri->Extract(candidates, std::span<Count>(counts));
    } else {
      tree_team->Finish();
      AccumulateShardWork(m.shard_subset_work, tree_team->shard_work());
    }

    // Counts of owned candidates are complete (every transaction passed
    // through this rank): select local frequent sets and exchange them.
    candidates.counts() = std::move(counts);
    ItemsetCollection local_frequent =
        FrequentSubset(candidates, my_ids, minsup);
    ItemsetCollection frequent =
        ExchangeFrequent(comm, local_frequent, &m.broadcast_words);
    m.num_frequent_global = frequent.size();
    parallel_internal::RecordFaultDelta(comm, faults_at_start, &m);
    m.wall_seconds = timer.Seconds();
    obs::EmitPassMetrics(m);
    out.passes.push_back(m);
    if (frequent.empty()) break;
    out.frequent.levels.push_back(std::move(frequent));
  }

  while (!out.frequent.levels.empty() && out.frequent.levels.back().empty()) {
    out.frequent.levels.pop_back();
  }
  return out;
}

}  // namespace pam
