#ifndef PAM_PARALLEL_ALGORITHMS_H_
#define PAM_PARALLEL_ALGORITHMS_H_

#include <string>
#include <vector>

#include "pam/mp/comm.h"
#include "pam/parallel/common.h"
#include "pam/parallel/metrics.h"
#include "pam/tdb/database.h"

namespace pam {

/// The parallel formulations implemented by this repository
/// (paper Section III). kDDComm is the paper's "DD+comm" ablation:
/// DD's round-robin candidate partition combined with IDD's ring-based
/// data movement (Figure 10 uses it to attribute IDD's win over DD to its
/// two separate improvements). kHPA is the hash-partitioned algorithm of
/// Shintani & Kitsuregawa that Section III-E contrasts with IDD:
/// candidates are owned by hash, and every k-subset of every transaction
/// is shipped to the owner's processor — communication grows as
/// O(|t| choose k) per transaction instead of IDD's O(|t|).
enum class Algorithm { kCD, kDD, kDDComm, kIDD, kHD, kHPA };

/// Short display name ("CD", "DD", "DD+comm", "IDD", "HD").
std::string AlgorithmName(Algorithm algorithm);

/// What one rank returns from a run. All ranks compute identical frequent
/// itemsets; the driver keeps rank 0's copy.
struct RankOutput {
  FrequentItemsets frequent;
  std::vector<PassMetrics> passes;
};

/// Rank programs. Each must be executed by every rank of `comm` (the
/// driver wires them into Runtime::Run); `db` is the shared read-only
/// database, of which this rank mines slice RankSlice(rank, size).
RankOutput RunCdRank(const TransactionDatabase& db, Comm& comm,
                     const ParallelConfig& config);
RankOutput RunDdRank(const TransactionDatabase& db, Comm& comm,
                     const ParallelConfig& config, bool ring_movement);
RankOutput RunIddRank(const TransactionDatabase& db, Comm& comm,
                      const ParallelConfig& config);
RankOutput RunHdRank(const TransactionDatabase& db, Comm& comm,
                     const ParallelConfig& config);
RankOutput RunHpaRank(const TransactionDatabase& db, Comm& comm,
                      const ParallelConfig& config);

}  // namespace pam

#endif  // PAM_PARALLEL_ALGORITHMS_H_
