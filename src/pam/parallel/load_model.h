#ifndef PAM_PARALLEL_LOAD_MODEL_H_
#define PAM_PARALLEL_LOAD_MODEL_H_

#include <cstdint>
#include <vector>

#include "pam/core/candidate_partition.h"
#include "pam/core/itemset_collection.h"

namespace pam {

/// Feedback-driven load model for the adaptive balancer (DESIGN.md §14).
///
/// Folds each completed pass's measured per-first-item subset work into
/// per-item cost densities (used by IDD/HD to re-run the candidate
/// bin-packer with measured weights instead of candidate counts) and into
/// a calibrated compute/comm model (used by HD to choose its grid rows G
/// per pass instead of the static Table-II heuristic).
///
/// The density signal is measured, not modeled: the counting kernel
/// attributes every traversal step and leaf check to the root item the
/// descent started from (HashTree::Subset's item_work span), so after one
/// AllReduceSum each rank knows exactly how much work the candidates of
/// every first item cost this pass. The model stores the scale-free
/// per-candidate density of each first item (work per candidate relative
/// to the pass mean, EMA-smoothed across passes) and hands the packer
/// fixed-point weights specialized to the next pass's candidate counts.
/// Until the first hash-tree pass produces a measurement the model offers
/// no weights and callers fall back to the static candidate-count
/// partition — adaptive mode is never worse than static before any
/// measurement exists.
///
/// Every input is a deterministic work counter (traversal steps, leaf
/// candidate checks, transactions) shared across ranks via one small
/// AllReduceSum — never wall time, which is nondeterministic. All ranks
/// therefore hold identical models and recompute identical scheduling
/// decisions with no decision broadcast; PassMetrics::partition_digest
/// pins this invariant in the chaos suite.
class LoadModel {
 public:
  /// Fixed-point scale of the per-item cost densities handed to
  /// PartitionByPrefix: kCostScale means "a candidate with this first item
  /// costs the average amount".
  static constexpr std::uint64_t kCostScale = 1024;
  /// Densities are clamped to [kCostScale / kMaxSkew, kCostScale * kMaxSkew]
  /// so one noisy pass can never starve a part or overflow a weight.
  static constexpr std::uint64_t kMaxSkew = 64;

  explicit LoadModel(Item num_items);

  /// The distinct first items of `candidates`, ascending (candidates are
  /// sorted lexicographically, so this is one linear scan). This is the
  /// compact wire layout of per-item work: every rank derives the same
  /// list from the same candidate set, so a vector indexed by it needs no
  /// item ids on the wire.
  static std::vector<Item> DistinctFirstItems(
      const ItemsetCollection& candidates);

  /// Globally-reduced counters of one completed counting pass. Identical
  /// on every rank (see ShareBalanceFeedback).
  struct PassFeedback {
    /// Measured subset work (traversal steps + leaf candidate checks) per
    /// candidate-partition part: per rank for IDD, summed per grid row for
    /// HD.
    std::vector<std::uint64_t> part_work;
    /// The pass's distinct candidate first items (DistinctFirstItems) and,
    /// in the same layout, the globally-summed measured work and candidate
    /// count of each first item.
    std::vector<Item> first_items;
    std::vector<std::uint64_t> item_work;
    std::vector<std::uint32_t> item_candidates;
    std::uint64_t transactions = 0;     // global transaction visits
    std::uint64_t traversal_steps = 0;  // global
    std::uint64_t leaf_checks = 0;      // global
    std::size_t num_candidates = 0;     // |C_k|
    int grid_rows = 1;                  // parts the pass counted with
    /// False for the pass-2 triangle kernel, which counts all pairs with
    /// no hash tree — there is no per-item attribution to fold, so such
    /// passes are ignored.
    bool tree_pass = false;
  };

  /// Folds one completed pass into the model: updates each first item's
  /// relative per-candidate density (equal-blend EMA of measured work per
  /// candidate over the pass mean) and calibrates the grid policy.
  void Observe(const PassFeedback& feedback);

  /// Fixed-point per-item costs for PartitionByPrefix's item_cost input,
  /// specialized to this pass's candidate set: cost_f = the stored density
  /// of f normalized so the mean candidate of `candidates` costs
  /// kCostScale (items never measured count as average). Empty until the
  /// first Observe() — callers then use the static partition.
  std::vector<std::uint64_t> ItemCosts(
      const ItemsetCollection& candidates) const;

  /// True once a hash-tree pass has calibrated the model.
  bool HasCalibration() const { return calibrated_; }

  /// Stored relative density of one first item (1.0 = average candidate,
  /// 0 until that item has been measured). Exposed for tests and bench
  /// reporting.
  double DensityOf(Item item) const;

  /// HD dynamic grid rows: picks the divisor G of num_ranks minimizing
  ///   G * txns_per_rank * per_visit(M/G)   (ring counting, G tree visits)
  /// + kWorkPerCommByte * (G-1) * wire_bytes_per_rank   (ring forwarding)
  /// + kWorkPerTreeInsert * M/G                         (tree build)
  /// + kWorkPerReduceWord * M/G  when cols > 1          (row reduction)
  /// where per_visit scales the calibrated work split by local tree size.
  /// Returns `fallback` (the static Table-II choice) until calibrated.
  int ChooseGridRows(std::size_t num_candidates,
                     std::uint64_t transactions_per_rank,
                     std::uint64_t wire_bytes_per_rank, int num_ranks,
                     int fallback) const;

  /// Relative exchange-rate constants between one byte/word of
  /// communication or tree build and one unit of subset work. Coarse by
  /// design: G only moves when the measured compute/comm ratio shifts by
  /// integer factors, which is the paper's own granularity (Table II).
  static constexpr double kWorkPerCommByte = 4.0;
  static constexpr double kWorkPerTreeInsert = 32.0;
  static constexpr double kWorkPerReduceWord = 16.0;

 private:
  // Relative per-candidate density per item id; 0 = never measured.
  std::vector<double> density_;
  bool calibrated_ = false;
  double work_per_txn_visit_ = 0.0;   // subset work per (txn, tree) visit
  double size_sensitive_frac_ = 0.0;  // leaf-check share of subset work
  double cal_candidates_local_ = 1.0;  // M/G at calibration time
};

}  // namespace pam

#endif  // PAM_PARALLEL_LOAD_MODEL_H_
