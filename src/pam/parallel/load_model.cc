#include "pam/parallel/load_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pam {
namespace {

constexpr double kCorrLo =
    static_cast<double>(LoadModel::kCostScale / LoadModel::kMaxSkew);
constexpr double kCorrHi =
    static_cast<double>(LoadModel::kCostScale * LoadModel::kMaxSkew);

std::uint64_t ClampFixed(double value) {
  return static_cast<std::uint64_t>(
      std::llround(std::clamp(value, kCorrLo, kCorrHi)));
}

}  // namespace

LoadModel::LoadModel(Item num_items)
    : density_(static_cast<std::size_t>(num_items), 0.0) {}

std::vector<Item> LoadModel::DistinctFirstItems(
    const ItemsetCollection& candidates) {
  std::vector<Item> items;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Item f = candidates.Get(i)[0];
    if (items.empty() || items.back() != f) items.push_back(f);
  }
  return items;
}

double LoadModel::DensityOf(Item item) const {
  const auto f = static_cast<std::size_t>(item);
  return f < density_.size() ? density_[f] : 0.0;
}

void LoadModel::Observe(const PassFeedback& fb) {
  if (!fb.tree_pass) return;
  std::uint64_t total_meas = 0;
  for (std::uint64_t w : fb.part_work) total_meas += w;

  // Grid-policy calibration: how much subset work one (transaction, tree)
  // visit costs, and how much of it is leaf checking (which scales with
  // the local tree size) vs traversal (which barely does).
  if (fb.transactions > 0 && fb.num_candidates > 0 && total_meas > 0 &&
      fb.grid_rows > 0) {
    work_per_txn_visit_ = static_cast<double>(total_meas) /
                          static_cast<double>(fb.transactions);
    const std::uint64_t split_total = fb.traversal_steps + fb.leaf_checks;
    size_sensitive_frac_ =
        split_total > 0 ? static_cast<double>(fb.leaf_checks) /
                              static_cast<double>(split_total)
                        : 0.0;
    cal_candidates_local_ =
        std::max(1.0, static_cast<double>(fb.num_candidates) /
                          static_cast<double>(fb.grid_rows));
    calibrated_ = true;
  }

  // Density update: each measured first item's work per candidate,
  // relative to this pass's mean candidate, equal-blend EMA'd into the
  // stored density. Relative (scale-free) so measurements from passes of
  // very different total work mix cleanly. Identical inputs in identical
  // order on every rank keep the model bit-identical across ranks.
  if (fb.first_items.size() != fb.item_work.size() ||
      fb.first_items.size() != fb.item_candidates.size()) {
    return;
  }
  std::uint64_t item_total = 0;
  std::uint64_t cand_total = 0;
  for (std::size_t i = 0; i < fb.first_items.size(); ++i) {
    item_total += fb.item_work[i];
    cand_total += fb.item_candidates[i];
  }
  if (item_total == 0 || cand_total == 0) return;
  const double mean_per_candidate =
      static_cast<double>(item_total) / static_cast<double>(cand_total);
  for (std::size_t i = 0; i < fb.first_items.size(); ++i) {
    const auto f = static_cast<std::size_t>(fb.first_items[i]);
    if (f >= density_.size() || fb.item_candidates[i] == 0) continue;
    const double measured =
        static_cast<double>(fb.item_work[i]) /
        (static_cast<double>(fb.item_candidates[i]) * mean_per_candidate);
    density_[f] =
        density_[f] > 0.0 ? 0.5 * (density_[f] + measured) : measured;
  }
}

std::vector<std::uint64_t> LoadModel::ItemCosts(
    const ItemsetCollection& candidates) const {
  if (!calibrated_ || candidates.empty()) return {};
  // Per-item candidate counts of this pass (runs are contiguous in the
  // sorted collection), then a normalization pass so the mean candidate
  // costs exactly kCostScale under the current composition.
  std::vector<std::uint32_t> count(density_.size(), 0);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto f = static_cast<std::size_t>(candidates.Get(i)[0]);
    if (f < count.size()) ++count[f];
  }
  double total_weight = 0.0;
  for (std::size_t f = 0; f < count.size(); ++f) {
    if (count[f] == 0) continue;
    const double d = density_[f] > 0.0 ? density_[f] : 1.0;
    total_weight += d * static_cast<double>(count[f]);
  }
  if (total_weight <= 0.0) return {};
  const double mean_density =
      total_weight / static_cast<double>(candidates.size());
  std::vector<std::uint64_t> costs(density_.size(), kCostScale);
  for (std::size_t f = 0; f < count.size(); ++f) {
    if (count[f] == 0) continue;
    const double d = density_[f] > 0.0 ? density_[f] : 1.0;
    costs[f] =
        ClampFixed(static_cast<double>(kCostScale) * d / mean_density);
  }
  return costs;
}

int LoadModel::ChooseGridRows(std::size_t num_candidates,
                              std::uint64_t transactions_per_rank,
                              std::uint64_t wire_bytes_per_rank,
                              int num_ranks, int fallback) const {
  if (!calibrated_ || num_ranks <= 1 || num_candidates == 0) return fallback;
  const double check_frac = size_sensitive_frac_;
  const double base_frac = 1.0 - check_frac;
  int best_g = fallback > 0 ? fallback : 1;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int g = 1; g <= num_ranks; ++g) {
    if (num_ranks % g != 0) continue;
    const double local_candidates =
        static_cast<double>(num_candidates) / static_cast<double>(g);
    const double per_visit =
        work_per_txn_visit_ *
        (base_frac + check_frac * (local_candidates / cal_candidates_local_));
    const double count_work = static_cast<double>(g) *
                              static_cast<double>(transactions_per_rank) *
                              per_visit;
    const double ring_work = kWorkPerCommByte * static_cast<double>(g - 1) *
                             static_cast<double>(wire_bytes_per_rank);
    const double build_work = kWorkPerTreeInsert * local_candidates;
    const double reduce_work =
        num_ranks / g > 1 ? kWorkPerReduceWord * local_candidates : 0.0;
    const double cost = count_work + ring_work + build_work + reduce_work;
    // Strict < keeps ties on the smaller G: fewer DB copies in flight.
    if (cost < best_cost) {
      best_cost = cost;
      best_g = g;
    }
  }
  return best_g;
}

}  // namespace pam
