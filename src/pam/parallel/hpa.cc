#include <cstring>

#include "pam/core/apriori_gen.h"
#include "pam/obs/trace.h"
#include "pam/parallel/algorithms.h"
#include "pam/util/timer.h"

namespace pam {
namespace {

// Enumerates every k-subset of `transaction` and routes it to the rank
// `HashItemset(subset) % P`; subsets owned locally are probed directly.
// This is the defining move of HPA (paper Section III-E): instead of
// moving candidates (DD/IDD) or counts (CD), it moves the potential
// candidates themselves — C = (|t| choose k) of them per transaction,
// which is why its communication volume explodes for k > 2.
class SubsetRouter {
 public:
  SubsetRouter(Comm& comm, int k, std::size_t flush_words,
               std::function<void(ItemSpan)> probe, PassMetrics* metrics)
      : comm_(comm),
        k_(k),
        flush_words_(flush_words < static_cast<std::size_t>(k) * 2
                         ? static_cast<std::size_t>(k) * 2
                         : flush_words),
        probe_(std::move(probe)),
        metrics_(metrics),
        buffers_(static_cast<std::size_t>(comm.size())),
        done_received_(0),
        chosen_(static_cast<std::size_t>(k)) {}

  /// Routes all k-subsets of one transaction.
  void RouteTransaction(ItemSpan transaction) {
    if (transaction.size() < static_cast<std::size_t>(k_)) return;
    Enumerate(transaction, 0, 0);
    // Opportunistically process what other ranks sent us so mailboxes do
    // not pile up the full subset stream.
    DrainNonBlocking();
  }

  /// Flushes remaining buffers, announces completion (an empty batch is
  /// the end-of-stream marker; real batches are never empty), and
  /// processes incoming subsets until every peer has completed. Message
  /// order is FIFO per sender, so a sender's marker always arrives after
  /// all of its batches.
  void Finish() {
    for (int dst = 0; dst < comm_.size(); ++dst) {
      if (dst == comm_.rank()) continue;
      FlushBuffer(dst);
      comm_.Send(dst, kTagHpaSubsets, std::span<const std::byte>());
    }
    while (done_received_ < comm_.size() - 1) {
      Dispatch(comm_.RecvPayload(-1, kTagHpaSubsets).bytes());
    }
  }

 private:
  void Enumerate(ItemSpan transaction, std::size_t pos, int depth) {
    if (depth == k_) {
      Route(ItemSpan(chosen_.data(), chosen_.size()));
      return;
    }
    const std::size_t remaining_needed =
        static_cast<std::size_t>(k_ - depth);
    for (std::size_t i = pos;
         i + remaining_needed <= transaction.size(); ++i) {
      chosen_[static_cast<std::size_t>(depth)] = transaction[i];
      Enumerate(transaction, i + 1, depth + 1);
    }
  }

  void Route(ItemSpan subset) {
    if (metrics_ != nullptr) ++metrics_->subset.traversal_steps;
    const int owner = static_cast<int>(HashItemset(subset) %
                                       static_cast<std::uint64_t>(
                                           comm_.size()));
    if (owner == comm_.rank()) {
      probe_(subset);
      return;
    }
    auto& buffer = buffers_[static_cast<std::size_t>(owner)];
    buffer.insert(buffer.end(), subset.begin(), subset.end());
    if (buffer.size() >= flush_words_) FlushBuffer(owner);
  }

  void FlushBuffer(int dst) {
    auto& buffer = buffers_[static_cast<std::size_t>(dst)];
    if (buffer.empty()) return;
    const auto bytes = std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(buffer.data()),
        buffer.size() * sizeof(Item));
    comm_.Send(dst, kTagHpaSubsets, bytes);
    if (metrics_ != nullptr) {
      metrics_->data_bytes_sent += bytes.size();
      ++metrics_->data_messages_sent;
    }
    buffer.clear();
  }

  // Routes an incoming message (a view into its shared transport buffer;
  // subsets are probed in place): an empty message is a peer's
  // end-of-stream marker (a fast peer may finish while we are still
  // routing, so markers can arrive at any time), everything else is a
  // batch of subsets to probe.
  void Dispatch(std::span<const std::byte> raw) {
    if (raw.empty()) {
      ++done_received_;
      return;
    }
    const auto* items = reinterpret_cast<const Item*>(raw.data());
    const std::size_t n = raw.size() / sizeof(Item);
    for (std::size_t i = 0; i + static_cast<std::size_t>(k_) <= n;
         i += static_cast<std::size_t>(k_)) {
      probe_(ItemSpan(items + i, static_cast<std::size_t>(k_)));
    }
  }

  void DrainNonBlocking() {
    Payload raw;
    while (comm_.TryRecvPayload(-1, kTagHpaSubsets, &raw, nullptr)) {
      Dispatch(raw.bytes());
    }
  }

  Comm& comm_;
  const int k_;
  const std::size_t flush_words_;
  std::function<void(ItemSpan)> probe_;
  PassMetrics* metrics_;
  std::vector<std::vector<Item>> buffers_;
  int done_received_;
  std::vector<Item> chosen_;
};

}  // namespace

// Hash Partitioned Apriori (Shintani & Kitsuregawa), as characterized in
// paper Section III-E: candidate ownership is determined by a hash
// function over the itemset, every k-subset of every local transaction is
// shipped to its owner, and owners probe the subsets against their
// candidate partition. Compared here as the paper compares it to IDD: its
// candidate balance is left to the hash (no bin packing possible) and its
// communication volume per transaction is (|t| choose k) items rather
// than |t|.
RankOutput RunHpaRank(const TransactionDatabase& db, Comm& comm,
                      const ParallelConfig& config) {
  using parallel_internal::ExchangeFrequent;
  using parallel_internal::FrequentSubset;
  using parallel_internal::ParallelPass1;

  RankOutput out;
  const int p = comm.size();
  const int rank = comm.rank();
  const TransactionDatabase::Slice slice = db.RankSlice(rank, p);
  const Count minsup = config.apriori.ResolveMinsup(db.size());
  std::vector<Count> dhp_buckets;  // PDM-style DHP filter state (optional)
  CountingPool pool(config.apriori.threads_per_rank);

  {
    obs::ScopedSpan pass_span(obs::SpanKind::kPass, /*pass_k=*/1, -1,
                              nullptr);
    WallTimer timer;
    PassMetrics m;
    const CommFaultStats faults_at_start = comm.MyFaultStats();
    ItemsetCollection f1 = ParallelPass1(db, slice, comm, minsup, &m,
                                         &config, &dhp_buckets);
    parallel_internal::RecordFaultDelta(comm, faults_at_start, &m);
    m.wall_seconds = timer.Seconds();
    obs::EmitPassMetrics(m);
    out.passes.push_back(m);
    out.frequent.levels.push_back(std::move(f1));
  }

  for (int k = 2; config.apriori.max_k == 0 || k <= config.apriori.max_k;
       ++k) {
    const ItemsetCollection& prev = out.frequent.levels.back();
    if (prev.size() < 2) break;
    config.apriori.cancel.Checkpoint(rank);
    obs::ScopedSpan pass_span(obs::SpanKind::kPass, k, -1, nullptr);
    WallTimer timer;
    PassMetrics m;
    m.k = k;
    m.local_db_wire_bytes = db.WireBytes(slice);
    m.grid_rows = p;
    const CommFaultStats faults_at_start = comm.MyFaultStats();

    ItemsetCollection candidates =
        parallel_internal::GenerateCandidates(prev, k, dhp_buckets, minsup);
    if (candidates.empty()) {
      pass_span.Cancel();  // no PassMetrics row, so no pass span either
      break;
    }
    m.num_candidates_global = candidates.size();

    // Hash ownership; the collection stays sorted so owners can probe
    // incoming subsets with one binary search.
    std::vector<std::uint32_t> my_ids;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (HashItemset(candidates.Get(i)) %
              static_cast<std::uint64_t>(p) ==
          static_cast<std::uint64_t>(rank)) {
        my_ids.push_back(static_cast<std::uint32_t>(i));
      }
    }
    m.num_candidates_local = my_ids.size();
    m.threads_per_rank = pool.num_threads();

    std::vector<Count> counts(candidates.size(), 0);
    if (parallel_internal::TryTrianglePass2(db, slice, prev, candidates, k,
                                            config.apriori, &pool,
                                            std::span<Count>(counts),
                                            &m.subset, &m)) {
      // Pass-2 triangle: count the full pair set over the local slice and
      // reduce CD-style — no subsets move on the wire at k == 2. Hash
      // ownership (my_ids) still partitions the frequent-set exchange.
      m.transactions_processed = slice.size();
      comm.AllReduceSum(std::span<std::uint64_t>(counts));
      m.reduction_words += counts.size();
    } else {
      m.tree_build_inserts = my_ids.size();
      SubsetRouter router(
          comm, k, config.page_bytes / sizeof(Item),
          [&](ItemSpan subset) {
            ++m.subset.leaf_candidates_checked;
            const std::size_t idx = candidates.Find(subset);
            if (idx != ItemsetCollection::npos) ++counts[idx];
          },
          &m);
      {
        // The routing loop and the closing drain are HPA's all-to-all: the
        // potential candidates themselves move, interleaved with local
        // probes.
        obs::ScopedSpan exchange_span(obs::SpanKind::kAllToAll, -1,
                                      "hpa_subsets");
        for (std::size_t t = slice.begin; t < slice.end; ++t) {
          if ((t - slice.begin) % kCancelCheckStride == 0) {
            config.apriori.cancel.Checkpoint(rank);
          }
          router.RouteTransaction(db.Transaction(t));
          ++m.transactions_processed;
        }
        router.Finish();
      }
      comm.Barrier();
      m.subset.transactions = m.transactions_processed;
    }

    candidates.counts() = std::move(counts);
    ItemsetCollection local_frequent =
        FrequentSubset(candidates, my_ids, minsup);
    ItemsetCollection frequent =
        ExchangeFrequent(comm, local_frequent, &m.broadcast_words);
    m.num_frequent_global = frequent.size();
    parallel_internal::RecordFaultDelta(comm, faults_at_start, &m);
    m.wall_seconds = timer.Seconds();
    obs::EmitPassMetrics(m);
    out.passes.push_back(m);
    if (frequent.empty()) break;
    out.frequent.levels.push_back(std::move(frequent));
  }

  while (!out.frequent.levels.empty() && out.frequent.levels.back().empty()) {
    out.frequent.levels.pop_back();
  }
  return out;
}

}  // namespace pam
