#ifndef PAM_HASHTREE_HASH_TREE_H_
#define PAM_HASHTREE_HASH_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "pam/core/itemset_collection.h"
#include "pam/tdb/database.h"
#include "pam/util/bitmap.h"
#include "pam/util/types.h"

namespace pam {

/// Which traversal implementation Subset() uses. Both kernels visit the
/// exact same tree (construction is shared) and produce bit-identical
/// counts and SubsetStats; kFlat is the production kernel, kClassic is the
/// original pointer-chasing recursive traversal, kept as a reference for
/// differential tests and the old-vs-new microbenchmark.
enum class HashTreeKernel {
  /// Frozen structure-of-arrays layout: one contiguous children array,
  /// CSR leaf candidate ids, leaf-ordered candidate tuples, iterative
  /// explicit-stack traversal, zero allocations per transaction.
  kFlat,
  /// Node-per-allocation tree with recursive traversal (the seed
  /// implementation).
  kClassic,
};

/// Shape parameters of the candidate hash tree (paper Section II). The
/// paper tunes the branching factor so that the average number of
/// candidates per leaf is S; here both knobs are explicit.
struct HashTreeConfig {
  /// Branching factor of internal nodes. Rounded up to the next power of
  /// two at construction so hashing is a bit mask; items hash as
  /// `item & (fanout - 1)`.
  int fanout = 8;
  /// A leaf splits into an internal node when it would exceed this many
  /// candidates (unless its depth already equals k, where chaining is
  /// unavoidable because the hash path is exhausted).
  int leaf_capacity = 16;
  /// Traversal kernel selection (see HashTreeKernel).
  HashTreeKernel kernel = HashTreeKernel::kFlat;
  /// When true the root level dispatches on the first item's value
  /// directly (child index == item id, grown on demand) instead of
  /// hashing it with the fanout mask. Every first item then owns a
  /// disjoint subtree, which is the paper's IDD picture of the tree — and
  /// it makes Subset's per-root-item work attribution exact: with a
  /// hashed root, items sharing a root bucket are charged for each
  /// other's candidates, so measured densities are partition-dependent
  /// and useless for rebalancing. The adaptive balancer turns this on;
  /// deeper levels hash exactly as before, and counts are unaffected
  /// either way (only tree shape and stats change).
  bool identity_root = false;

  /// The paper's tuning rule: "the desired value of S can be obtained by
  /// adjusting the branching factor". Returns a config whose fanout is
  /// large enough that a tree over `num_candidates` k-itemsets has at
  /// least num_candidates / target_s distinct depth-k hash paths, so the
  /// average leaf holds about `target_s` candidates instead of chaining
  /// (fanout^k >= M / S, fanout a power of two in [4, 1024]). When even
  /// fanout == 1024 cannot reach M / S paths, leaf chaining at depth k is
  /// unavoidable and leaf_capacity is raised to ceil(M / fanout^k) so the
  /// configured capacity matches the achievable occupancy (splitting past
  /// that depth would only add traversal levels, not shrink leaves).
  static HashTreeConfig TunedFor(std::size_t num_candidates, int k,
                                 int target_s);
};

/// Work counters accumulated by Subset(). These are the exact quantities of
/// the paper's Section IV analysis: `traversal_steps` corresponds to the
/// C * t_travers term, `distinct_leaf_visits` to the V_{C,L} * t_check term
/// (Figure 11 plots its per-transaction average for DD vs IDD), and
/// `leaf_candidates_checked` counts candidate-vs-transaction subset tests.
struct SubsetStats {
  std::uint64_t transactions = 0;
  std::uint64_t root_items_considered = 0;
  std::uint64_t root_items_skipped = 0;  // filtered out by the IDD bitmap
  std::uint64_t traversal_steps = 0;
  std::uint64_t distinct_leaf_visits = 0;
  std::uint64_t leaf_candidates_checked = 0;

  void Accumulate(const SubsetStats& other);
  /// Average distinct leaves visited per transaction (the y-axis of
  /// Figure 11).
  double AvgLeafVisitsPerTransaction() const;
};

/// The candidate hash tree of the Apriori algorithm: internal nodes hash
/// successive itemset items to children, leaves store candidate indices.
/// `Subset(t)` updates the counts of every candidate contained in
/// transaction t by traversing the tree once per viable start item
/// (Figures 2 and 3 of the paper).
///
/// A HashTree holds a subset of the candidates of an ItemsetCollection
/// (possibly all of them); counts are written into an external array
/// indexed by the collection's candidate index, so CD's global reduction
/// and DD/IDD/HD's partitioned counting all reuse the same counting code.
///
/// Construction inserts into a conventional node-based tree; with the
/// default kFlat kernel the finished tree is then frozen into a flat
/// structure-of-arrays layout (see DESIGN.md, "Counting kernel memory
/// layout") and the node storage is released. Subset() never allocates.
///
/// Thread safety: the frozen tree is immutable, but each traversal needs
/// mutable scratch (visit epochs, item stamps, the DFS stack). The
/// one-argument Subset() uses an internal Scratch and is single-threaded;
/// the intra-rank counting team gives every worker its own MakeScratch()
/// and calls the const overload concurrently on one shared tree.
class HashTree {
 private:
  // Flat child encoding: kAbsent for no child, >= 0 for an internal node
  // id (index into children_ blocks), <= kLeafBase for a leaf (leaf id ==
  // kLeafBase - value).
  static constexpr std::int32_t kAbsent = -1;
  static constexpr std::int32_t kLeafBase = -2;
  struct Frame {
    std::int32_t node;  // internal node id
    std::uint32_t pos;  // next transaction position to hash
  };

 public:
  /// Per-traversal mutable state for the kFlat kernel, factored out of the
  /// tree so concurrent workers can share one frozen tree. Opaque: obtain
  /// via MakeScratch(), pass back to the const Subset() overload.
  class Scratch {
   public:
    Scratch() = default;

   private:
    friend class HashTree;
    // Distinct-leaf-visit epoch (64-bit: never wraps in practice).
    std::uint64_t epoch = 0;
    // Item stamp for the O(k) leaf containment check. 32-bit so the AVX2
    // kernel gathers one stamp per lane; on wrap the array is cleared and
    // the stamp restarts at 1, preserving exactness.
    std::uint32_t stamp = 0;
    std::vector<std::uint64_t> leaf_epoch;
    std::vector<std::uint32_t> item_stamp;
    std::vector<Frame> stack;  // preallocated DFS stack, depth <= k
  };

  /// Builds a tree over candidates `candidate_ids` of `candidates`.
  /// The collection must outlive the tree.
  HashTree(const ItemsetCollection& candidates,
           std::vector<std::uint32_t> candidate_ids, HashTreeConfig config);

  /// Builds a tree over *all* candidates of the collection.
  HashTree(const ItemsetCollection& candidates, HashTreeConfig config);

  /// Counts the candidates contained in `transaction` into `counts`
  /// (indexed by candidate index in the collection; must have size
  /// `candidates.size()`). If `root_filter` is non-null, transaction items
  /// without their bit set are skipped at the root level — the IDD bitmap
  /// pruning of Figure 8. `stats` may be null.
  ///
  /// If `item_work` is non-empty, the kFlat kernel additionally attributes
  /// its work counters (traversal steps + leaf candidates checked) to the
  /// root item each descent started from: the work of the subtree entered
  /// via transaction item f accumulates into item_work[f] (items >= the
  /// span size are skipped), and each distinct leaf visit increments
  /// `leaf_visits[leaf id]` (which must then have size num_leaves()).
  /// Together these are the adaptive balancer's measured load signal
  /// (DESIGN.md §14): item_work gives exact per-first-item run totals,
  /// leaf_visits gives the exact per-candidate check counts within a run
  /// (every candidate of a leaf is checked once per distinct visit). The
  /// kClassic kernel ignores both.
  void Subset(ItemSpan transaction, std::span<Count> counts,
              SubsetStats* stats, const Bitmap* root_filter = nullptr,
              std::span<std::uint64_t> item_work = {},
              std::span<std::uint64_t> leaf_visits = {});

  /// Thread-safe counting against caller-owned scratch (kFlat only): the
  /// tree itself is read-only here, so any number of workers may call this
  /// concurrently, each with its own Scratch, its own counts strip, and
  /// its own attribution spans (empty to disable attribution).
  void Subset(ItemSpan transaction, std::span<Count> counts,
              SubsetStats* stats, const Bitmap* root_filter,
              Scratch& scratch, std::span<std::uint64_t> item_work = {},
              std::span<std::uint64_t> leaf_visits = {}) const;

  /// Expands per-leaf distinct-visit counts (as filled by Subset's
  /// leaf_visits span) into per-candidate check counts: out[candidate id]
  /// += visits of the candidate's leaf, for every candidate in this tree.
  /// `out` is indexed by collection candidate id (size candidates.size()).
  void AccumulateCandidateChecks(std::span<const std::uint64_t> leaf_visits,
                                 std::span<std::uint64_t> out) const;

  /// Fresh zeroed scratch sized for this tree.
  Scratch MakeScratch() const;

  HashTreeKernel kernel() const { return kernel_; }

  /// Number of leaf nodes (the L of the paper's analysis).
  std::size_t num_leaves() const { return num_leaves_; }
  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_candidates() const { return num_candidates_; }
  /// Effective branching factor (config fanout rounded up to a power of
  /// two).
  int fanout() const { return fanout_; }
  /// Number of candidate insertions performed during construction; the cost
  /// model charges hash tree construction (the O(M) term) per insertion.
  std::uint64_t build_inserts() const { return build_inserts_; }

 private:
  struct Node {
    bool is_leaf = true;
    // For internal nodes: child index per hash bucket, -1 when absent.
    std::vector<std::int32_t> children;
    // For leaves: candidate ids (indices into the collection).
    std::vector<std::uint32_t> leaf_candidates;
    // Epoch marker for distinct-leaf-visit detection within a transaction.
    std::uint64_t visit_epoch = 0;
  };

  void Insert(std::uint32_t candidate_id);
  void SplitLeaf(std::int32_t node_index, int depth);
  void Freeze();
  void SubsetClassic(ItemSpan transaction, std::span<Count> counts,
                     SubsetStats* stats, const Bitmap* root_filter);
  void Visit(std::int32_t node_index, ItemSpan transaction, std::size_t pos,
             std::span<Count> counts, SubsetStats* stats);
  template <bool WithStats, bool WithFilter, bool WithItemWork>
  void SubsetFlat(ItemSpan transaction, std::span<Count> counts,
                  SubsetStats* stats, const Bitmap* root_filter,
                  Scratch& scratch, std::span<std::uint64_t> item_work,
                  std::span<std::uint64_t> leaf_visits) const;
  template <bool WithStats, bool WithItemWork>
  std::uint32_t CheckLeafFlat(std::int32_t leaf, std::span<Count> counts,
                              SubsetStats* stats, Scratch& scratch,
                              std::span<std::uint64_t> leaf_visits) const;

  int Hash(Item item) const { return static_cast<int>(item & mask_); }

  const ItemsetCollection& candidates_;
  const int fanout_;       // power of two
  const Item mask_;        // fanout_ - 1
  const int shift_;        // log2(fanout_)
  const int leaf_capacity_;
  const int k_;
  const HashTreeKernel kernel_;
  const bool identity_root_;
  std::vector<Node> nodes_;  // cleared after Freeze() under kFlat
  std::size_t num_nodes_ = 0;
  std::size_t num_leaves_ = 0;
  std::size_t num_candidates_ = 0;
  std::uint64_t build_inserts_ = 0;
  std::uint64_t epoch_ = 0;  // kClassic per-transaction epoch

  // Frozen structure-of-arrays layout (kFlat only). children_ holds one
  // fanout_-sized block per internal node; leaves are a CSR pair
  // (leaf_offsets_, leaf_ids_) plus the candidates' item tuples copied
  // leaf-ordered into leaf_items_ so the inner subset check reads
  // contiguous memory. Scalar builds store a leaf's tuples row-major
  // (candidate-contiguous); the AVX2 build stores them column-major per
  // leaf (item position a of candidate j of an n-candidate leaf at
  // base + a*n + j) so one 8-lane load reads item column a of eight
  // neighbouring candidates — the SIMD lane layout of DESIGN.md §11.
  std::int32_t root_ref_ = kAbsent;
  std::vector<std::int32_t> children_;
  // identity_root only: encoded root child per first-item value (the
  // root's children block has item-indexed width, not fanout width).
  std::vector<std::int32_t> root_children_;
  std::vector<std::uint32_t> leaf_offsets_;
  std::vector<std::uint32_t> leaf_ids_;
  std::vector<Item> leaf_items_;
  std::size_t item_stamp_size_ = 0;  // largest candidate item + 1
  Scratch scratch_;  // backs the single-threaded Subset() overload
};

/// Reference counter: O(|T| * |C_k|) subset matching, used to validate the
/// hash tree in tests. Counts every candidate of `candidates` over the
/// transactions [slice.begin, slice.end) of `db`.
std::vector<Count> CountBruteForce(const TransactionDatabase& db,
                                   TransactionDatabase::Slice slice,
                                   const ItemsetCollection& candidates);

}  // namespace pam

#endif  // PAM_HASHTREE_HASH_TREE_H_
