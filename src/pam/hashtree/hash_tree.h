#ifndef PAM_HASHTREE_HASH_TREE_H_
#define PAM_HASHTREE_HASH_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "pam/core/itemset_collection.h"
#include "pam/tdb/database.h"
#include "pam/util/bitmap.h"
#include "pam/util/types.h"

namespace pam {

/// Shape parameters of the candidate hash tree (paper Section II). The
/// paper tunes the branching factor so that the average number of
/// candidates per leaf is S; here both knobs are explicit.
struct HashTreeConfig {
  /// Branching factor of internal nodes; items hash as `item % fanout`.
  int fanout = 8;
  /// A leaf splits into an internal node when it would exceed this many
  /// candidates (unless its depth already equals k, where chaining is
  /// unavoidable because the hash path is exhausted).
  int leaf_capacity = 16;

  /// The paper's tuning rule: "the desired value of S can be obtained by
  /// adjusting the branching factor". Returns a config whose fanout is
  /// large enough that a tree over `num_candidates` k-itemsets has at
  /// least num_candidates / target_s distinct depth-k hash paths, so the
  /// average leaf holds about `target_s` candidates instead of chaining
  /// (fanout^k >= M / S, clamped to [4, 1024]).
  static HashTreeConfig TunedFor(std::size_t num_candidates, int k,
                                 int target_s);
};

/// Work counters accumulated by Subset(). These are the exact quantities of
/// the paper's Section IV analysis: `traversal_steps` corresponds to the
/// C * t_travers term, `distinct_leaf_visits` to the V_{C,L} * t_check term
/// (Figure 11 plots its per-transaction average for DD vs IDD), and
/// `leaf_candidates_checked` counts candidate-vs-transaction subset tests.
struct SubsetStats {
  std::uint64_t transactions = 0;
  std::uint64_t root_items_considered = 0;
  std::uint64_t root_items_skipped = 0;  // filtered out by the IDD bitmap
  std::uint64_t traversal_steps = 0;
  std::uint64_t distinct_leaf_visits = 0;
  std::uint64_t leaf_candidates_checked = 0;

  void Accumulate(const SubsetStats& other);
  /// Average distinct leaves visited per transaction (the y-axis of
  /// Figure 11).
  double AvgLeafVisitsPerTransaction() const;
};

/// The candidate hash tree of the Apriori algorithm: internal nodes hash
/// successive itemset items to children, leaves store candidate indices.
/// `Subset(t)` updates the counts of every candidate contained in
/// transaction t by traversing the tree once per viable start item
/// (Figures 2 and 3 of the paper).
///
/// A HashTree holds a subset of the candidates of an ItemsetCollection
/// (possibly all of them); counts are written into an external array
/// indexed by the collection's candidate index, so CD's global reduction
/// and DD/IDD/HD's partitioned counting all reuse the same counting code.
class HashTree {
 public:
  /// Builds a tree over candidates `candidate_ids` of `candidates`.
  /// The collection must outlive the tree.
  HashTree(const ItemsetCollection& candidates,
           std::vector<std::uint32_t> candidate_ids, HashTreeConfig config);

  /// Builds a tree over *all* candidates of the collection.
  HashTree(const ItemsetCollection& candidates, HashTreeConfig config);

  /// Counts the candidates contained in `transaction` into `counts`
  /// (indexed by candidate index in the collection; must have size
  /// `candidates.size()`). If `root_filter` is non-null, transaction items
  /// without their bit set are skipped at the root level — the IDD bitmap
  /// pruning of Figure 8. `stats` may be null.
  void Subset(ItemSpan transaction, std::span<Count> counts,
              SubsetStats* stats, const Bitmap* root_filter = nullptr);

  /// Number of leaf nodes (the L of the paper's analysis).
  std::size_t num_leaves() const { return num_leaves_; }
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_candidates() const { return num_candidates_; }
  /// Number of candidate insertions performed during construction; the cost
  /// model charges hash tree construction (the O(M) term) per insertion.
  std::uint64_t build_inserts() const { return build_inserts_; }

 private:
  struct Node {
    bool is_leaf = true;
    // For internal nodes: child index per hash bucket, -1 when absent.
    std::vector<std::int32_t> children;
    // For leaves: candidate ids (indices into the collection).
    std::vector<std::uint32_t> leaf_candidates;
    // Epoch marker for distinct-leaf-visit detection within a transaction.
    std::uint64_t visit_epoch = 0;
  };

  void Insert(std::uint32_t candidate_id);
  void SplitLeaf(std::int32_t node_index, int depth);
  void Visit(std::int32_t node_index, ItemSpan transaction, std::size_t pos,
             std::span<Count> counts, SubsetStats* stats);

  int Hash(Item item) const { return static_cast<int>(item % fanout_); }

  const ItemsetCollection& candidates_;
  const int fanout_;
  const int leaf_capacity_;
  const int k_;
  std::vector<Node> nodes_;
  std::size_t num_leaves_ = 0;
  std::size_t num_candidates_ = 0;
  std::uint64_t build_inserts_ = 0;
  std::uint64_t epoch_ = 0;
};

/// Reference counter: O(|T| * |C_k|) subset matching, used to validate the
/// hash tree in tests. Counts every candidate of `candidates` over the
/// transactions [slice.begin, slice.end) of `db`.
std::vector<Count> CountBruteForce(const TransactionDatabase& db,
                                   TransactionDatabase::Slice slice,
                                   const ItemsetCollection& candidates);

}  // namespace pam

#endif  // PAM_HASHTREE_HASH_TREE_H_
