#include "pam/hashtree/pair_counter.h"

#include <cassert>

namespace pam {

TrianglePairCounter::TrianglePairCounter(const ItemsetCollection& f1)
    : r_(f1.size()) {
  assert(f1.k() == 1);
  Item max_item = 0;
  for (std::size_t i = 0; i < f1.size(); ++i) {
    max_item = std::max(max_item, f1.Get(i)[0]);
  }
  rank_.assign(f1.empty() ? 0 : static_cast<std::size_t>(max_item) + 1,
               kNotFrequent);
  for (std::size_t i = 0; i < f1.size(); ++i) {
    rank_[f1.Get(i)[0]] = static_cast<std::uint32_t>(i);
  }
  tri_.assign(CellsFor(r_), 0);
  scratch_.reserve(64);
}

void TrianglePairCounter::AddTransaction(ItemSpan transaction,
                                         SubsetStats* stats) {
  if (stats != nullptr) ++stats->transactions;
  // Transactions are sorted by item and F_1 is sorted too, so the
  // collected ranks come out ascending — exactly the ri < rj order the
  // triangle indexing needs.
  scratch_.clear();
  for (Item item : transaction) {
    if (static_cast<std::size_t>(item) >= rank_.size()) continue;
    const std::uint32_t r = rank_[item];
    if (r != kNotFrequent) scratch_.push_back(r);
  }
  const std::size_t n = scratch_.size();
  if (n < 2) return;
  if (stats != nullptr) {
    stats->leaf_candidates_checked += n * (n - 1) / 2;
  }
  for (std::size_t a = 0; a + 1 < n; ++a) {
    const std::size_t ri = scratch_[a];
    // Hoist the row base: cells of row ri are contiguous, so the inner
    // loop is a sequential streak of increments.
    Count* row = tri_.data() + ri * (2 * r_ - ri - 1) / 2;
    const std::size_t off = ri + 1;
    for (std::size_t b = a + 1; b < n; ++b) {
      ++row[scratch_[b] - off];
    }
  }
}

void TrianglePairCounter::Extract(const ItemsetCollection& c2,
                                  std::span<Count> counts) const {
  assert(c2.k() == 2);
  assert(counts.size() == c2.size());
  for (std::size_t i = 0; i < c2.size(); ++i) {
    ItemSpan pair = c2.Get(i);
    const std::uint32_t ra = rank_[pair[0]];
    const std::uint32_t rb = rank_[pair[1]];
    assert(ra != kNotFrequent && rb != kNotFrequent && ra < rb);
    counts[i] = tri_[Index(ra, rb)];
  }
}

}  // namespace pam
