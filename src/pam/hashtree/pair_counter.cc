#include "pam/hashtree/pair_counter.h"

#include <algorithm>
#include <cassert>

#if defined(PAM_ENABLE_SIMD) && defined(__AVX2__)
#define PAM_PAIR_COUNTER_AVX2 1
#include <immintrin.h>

#include <bit>
#endif

namespace pam {

#if PAM_PAIR_COUNTER_AVX2
namespace {

// Order-preserving left-compaction permutations for
// _mm256_permutevar8x32_epi32: entry m lists the lane indices of the set
// bits of m, ascending, padded with 0 (the padded lanes are overstored
// past the logical end and never read).
struct CompactLut {
  alignas(32) std::uint32_t idx[256][8];
  CompactLut() {
    for (int m = 0; m < 256; ++m) {
      int n = 0;
      for (int b = 0; b < 8; ++b) {
        if (m & (1 << b)) idx[m][n++] = static_cast<std::uint32_t>(b);
      }
      for (; n < 8; ++n) idx[m][n] = 0;
    }
  }
};

const CompactLut& Lut() {
  static const CompactLut lut;
  return lut;
}

}  // namespace
#endif  // PAM_PAIR_COUNTER_AVX2

TrianglePairCounter::TrianglePairCounter(const ItemsetCollection& f1)
    : r_(f1.size()) {
  assert(f1.k() == 1);
  Item max_item = 0;
  for (std::size_t i = 0; i < f1.size(); ++i) {
    max_item = std::max(max_item, f1.Get(i)[0]);
  }
  rank_.assign(f1.empty() ? 0 : static_cast<std::size_t>(max_item) + 1,
               kNotFrequent);
  for (std::size_t i = 0; i < f1.size(); ++i) {
    rank_[f1.Get(i)[0]] = static_cast<std::uint32_t>(i);
  }
  tri_.assign(CellsFor(r_), 0);
  scratch_.reserve(64);
}

std::size_t TrianglePairCounter::CollectRanks(
    ItemSpan transaction, std::vector<std::uint32_t>& ranks) const {
  if (ranks.size() < transaction.size() + 8) {
    ranks.resize(transaction.size() + 8);
  }
  std::size_t n = 0;
  std::size_t i = 0;
#if PAM_PAIR_COUNTER_AVX2
  if (!rank_.empty()) {
    // 8 items per iteration: masked gather of item -> rank (bounds mask
    // via signed compares — item values are dense ids < 2^31, so an
    // out-of-range unsigned item reads as negative or >= limit and its
    // lane keeps the kNotFrequent src), then an order-preserving
    // compaction of the frequent lanes.
    const CompactLut& lut = Lut();
    const __m256i vzero = _mm256_setzero_si256();
    const __m256i vlimit =
        _mm256_set1_epi32(static_cast<int>(rank_.size()));
    const __m256i vnf = _mm256_set1_epi32(static_cast<int>(kNotFrequent));
    const int* base = reinterpret_cast<const int*>(rank_.data());
    for (; i + 8 <= transaction.size(); i += 8) {
      const __m256i items = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(transaction.data() + i));
      const __m256i neg = _mm256_cmpgt_epi32(vzero, items);
      const __m256i below = _mm256_cmpgt_epi32(vlimit, items);
      const __m256i inb = _mm256_andnot_si256(neg, below);
      const __m256i got =
          _mm256_mask_i32gather_epi32(vnf, base, items, inb, 4);
      const unsigned drop = static_cast<unsigned>(_mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(got, vnf))));
      const unsigned keep = ~drop & 0xffu;
      const __m256i packed = _mm256_permutevar8x32_epi32(
          got, _mm256_load_si256(
                   reinterpret_cast<const __m256i*>(lut.idx[keep])));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(ranks.data() + n),
                          packed);
      n += static_cast<std::size_t>(std::popcount(keep));
    }
  }
#endif
  for (; i < transaction.size(); ++i) {
    const Item item = transaction[i];
    if (static_cast<std::size_t>(item) >= rank_.size()) continue;
    const std::uint32_t r = rank_[item];
    if (r != kNotFrequent) ranks[n++] = r;
  }
  return n;
}

void TrianglePairCounter::CountInto(ItemSpan transaction, SubsetStats* stats,
                                    Count* tri,
                                    std::vector<std::uint32_t>& ranks) const {
  if (stats != nullptr) ++stats->transactions;
  // Transactions are sorted by item and F_1 is sorted too, so the
  // collected ranks come out ascending — exactly the ri < rj order the
  // triangle indexing needs.
  const std::size_t n = CollectRanks(transaction, ranks);
  if (n < 2) return;
  if (stats != nullptr) {
    stats->leaf_candidates_checked += n * (n - 1) / 2;
  }
  for (std::size_t a = 0; a + 1 < n; ++a) {
    const std::size_t ri = ranks[a];
    // Hoist the row base: cells of row ri are contiguous, so the inner
    // loop is a sequential streak of increments.
    Count* row = tri + ri * (2 * r_ - ri - 1) / 2;
    const std::size_t off = ri + 1;
    for (std::size_t b = a + 1; b < n; ++b) {
      ++row[ranks[b] - off];
    }
  }
}

void TrianglePairCounter::AddTransaction(ItemSpan transaction,
                                         SubsetStats* stats) {
  CountInto(transaction, stats, tri_.data(), scratch_);
}

void TrianglePairCounter::MergeShard(const Shard& shard) {
  assert(shard.tri_.size() == tri_.size());
  for (std::size_t i = 0; i < tri_.size(); ++i) tri_[i] += shard.tri_[i];
}

void TrianglePairCounter::Extract(const ItemsetCollection& c2,
                                  std::span<Count> counts) const {
  assert(c2.k() == 2);
  assert(counts.size() == c2.size());
  for (std::size_t i = 0; i < c2.size(); ++i) {
    ItemSpan pair = c2.Get(i);
    const std::uint32_t ra = rank_[pair[0]];
    const std::uint32_t rb = rank_[pair[1]];
    assert(ra != kNotFrequent && rb != kNotFrequent && ra < rb);
    counts[i] = tri_[Index(ra, rb)];
  }
}

}  // namespace pam
