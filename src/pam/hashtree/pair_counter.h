#ifndef PAM_HASHTREE_PAIR_COUNTER_H_
#define PAM_HASHTREE_PAIR_COUNTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "pam/core/itemset_collection.h"
#include "pam/hashtree/hash_tree.h"
#include "pam/util/types.h"

namespace pam {

/// Specialized pass-2 counting kernel: a flat triangular count array over
/// F_1 ranks that replaces the candidate hash tree for k = 2, the pass the
/// paper's Table II shows dominating candidate volume. Because C_2 =
/// apriori_gen(F_1) is (a subset of, after DHP filtering) all pairs of
/// frequent items, every candidate maps to a unique (rank_a, rank_b) cell;
/// counting a transaction is one pass collecting the ranks of its frequent
/// items followed by a dense double loop — no hashing, no tree traversal,
/// no pointer chasing.
///
/// The result is bit-identical to hash-tree counting (it is exact pair
/// counting, not an approximation); only the SubsetStats work profile
/// differs, which is why the AprioriConfig::use_pass2_triangle flag exists
/// for the paper's Section IV instrumentation runs.
class TrianglePairCounter {
 public:
  /// Builds the item -> F_1-rank map. `f1` must be the frequent
  /// 1-itemsets, sorted (rank == position in the collection).
  explicit TrianglePairCounter(const ItemsetCollection& f1);

  /// Number of triangular counters needed for |F_1| frequent items.
  static std::size_t CellsFor(std::size_t f1_size) {
    return f1_size < 2 ? 0 : f1_size * (f1_size - 1) / 2;
  }

  /// True when the triangle path may replace hash-tree counting: the
  /// counter array must respect the candidate-memory cap the hash tree
  /// would otherwise be chunked under (cap == 0 means unlimited).
  static bool Fits(std::size_t f1_size,
                   std::size_t max_candidates_in_memory) {
    return f1_size >= 2 && (max_candidates_in_memory == 0 ||
                            CellsFor(f1_size) <= max_candidates_in_memory);
  }

  /// Counts every pair of frequent items of `transaction`. Mirrors one
  /// HashTree::Subset call for the stats that remain meaningful without a
  /// tree: `transactions` always increments and `leaf_candidates_checked`
  /// counts the pair cells touched; the traversal/leaf-visit counters stay
  /// zero (there is no tree — disable the triangle path to reproduce the
  /// paper's Figure 11/12 traversal instrumentation). `stats` may be null.
  void AddTransaction(ItemSpan transaction, SubsetStats* stats);

  /// A per-worker shard of the counting team: the same kernel accumulating
  /// into a private triangle, merged into the parent with MergeShard().
  /// The parent must outlive and not be mutated under its shards; shards
  /// on distinct threads never share state.
  class Shard {
   public:
    explicit Shard(const TrianglePairCounter& parent)
        : parent_(&parent), tri_(parent.tri_.size(), 0) {}

    void AddTransaction(ItemSpan transaction, SubsetStats* stats) {
      parent_->CountInto(transaction, stats, tri_.data(), ranks_);
    }

   private:
    friend class TrianglePairCounter;
    const TrianglePairCounter* parent_;
    std::vector<Count> tri_;
    std::vector<std::uint32_t> ranks_;  // per-transaction rank buffer
  };

  /// Adds a shard's triangle into this counter. Call once per shard, in
  /// fixed shard order, after the team has joined.
  void MergeShard(const Shard& shard);

  /// Scatters the triangle into `counts` (indexed by candidate position in
  /// `c2`). Every candidate of `c2` must be a pair of frequent items —
  /// true for apriori_gen(F_1) output, DHP-filtered or not.
  void Extract(const ItemsetCollection& c2, std::span<Count> counts) const;

  std::size_t num_cells() const { return tri_.size(); }

 private:
  static constexpr std::uint32_t kNotFrequent = 0xffffffffu;

  // Cell of the pair with ranks ri < rj: row ri starts at
  // ri * (2R - ri - 1) / 2 and holds columns ri+1 .. R-1.
  std::size_t Index(std::size_t ri, std::size_t rj) const {
    return ri * (2 * r_ - ri - 1) / 2 + (rj - ri - 1);
  }

  // Collects the F_1 ranks of the transaction's frequent items into
  // `ranks` (ascending, because transactions and F_1 are both sorted) and
  // returns how many. `ranks` is grown to transaction.size() + 8: the AVX2
  // path stores a full 8-lane vector per iteration and relies on the
  // slack.
  std::size_t CollectRanks(ItemSpan transaction,
                           std::vector<std::uint32_t>& ranks) const;

  // The shared kernel behind AddTransaction and Shard::AddTransaction:
  // counts into the caller-supplied triangle using the caller's rank
  // buffer. Touches no mutable state of *this.
  void CountInto(ItemSpan transaction, SubsetStats* stats, Count* tri,
                 std::vector<std::uint32_t>& ranks) const;

  std::size_t r_ = 0;                 // |F_1|
  std::vector<std::uint32_t> rank_;   // item -> rank, kNotFrequent if absent
  std::vector<Count> tri_;            // R * (R-1) / 2 cells
  std::vector<std::uint32_t> scratch_;  // per-transaction rank buffer
};

}  // namespace pam

#endif  // PAM_HASHTREE_PAIR_COUNTER_H_
