#ifndef PAM_HASHTREE_COUNTING_POOL_H_
#define PAM_HASHTREE_COUNTING_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "pam/util/types.h"

namespace pam {

/// A persistent team of counting worker threads for the intra-rank
/// shared-memory counting path (DESIGN.md Section 11). The pool mirrors
/// the paper's grid decomposition one level down: each simulated rank
/// splits its transaction stream across `num_threads` shards, shard 0
/// running on the calling (rank) thread and shards 1..T-1 on pool workers.
///
/// `CountingPool(1)` spawns no threads and Run() degenerates to a direct
/// call on the caller — the zero-overhead configuration and the default.
class CountingPool {
 public:
  using ShardFn = std::function<void(int shard, std::size_t begin,
                                     std::size_t end)>;

  /// Spawns `num_threads - 1` workers (clamped below at 1 thread total).
  explicit CountingPool(int num_threads);
  ~CountingPool();

  CountingPool(const CountingPool&) = delete;
  CountingPool& operator=(const CountingPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Splits [0, n) into num_threads() near-equal contiguous shards and
  /// runs fn(shard, begin, end) for every non-empty shard: shard 0 on the
  /// calling thread, the rest on the pool workers. Blocks until all shards
  /// finish. An exception escaping any shard is rethrown here after every
  /// shard has completed (the caller's own exception wins when both
  /// throw). Not reentrant: one Run() at a time per pool.
  void Run(std::size_t n, const ShardFn& fn);

 private:
  struct Range {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void WorkerLoop(int shard);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a new generation
  std::condition_variable done_cv_;  // Run() waits for pending_ == 0
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  const ShardFn* job_ = nullptr;
  std::vector<Range> ranges_;
  int pending_ = 0;
  std::exception_ptr error_;
};

/// Cache-line padded per-shard counter strips. Shard 0 accumulates
/// directly into the pass's output array (it runs on the rank thread and
/// its writes need no isolation); shards 1..T-1 each get a private strip
/// here, padded so neighbouring strips never share a 64-byte line.
/// MergeInto() folds the strips into the output in fixed ascending shard
/// order, so the merged counts are identical for every thread count (each
/// cell is a sum of per-transaction contributions; sharding only
/// repartitions the addends).
class CounterStrips {
 public:
  /// Prepares zeroed strips for shards 1..num_shards-1, each of logical
  /// width `width`. Reuses the backing allocation across passes.
  void Reset(int num_shards, std::size_t width);

  /// The strip of shard `shard` (>= 1), as a width-sized span.
  std::span<Count> strip(int shard) {
    return {data_.data() + static_cast<std::size_t>(shard - 1) * stride_,
            width_};
  }

  /// Adds every strip into `out` (size width), strips in shard order.
  void MergeInto(std::span<Count> out) const;

  int num_strips() const { return num_strips_; }

 private:
  // 8 Counts == one 64-byte cache line.
  static constexpr std::size_t kLineCounts = 8;

  std::size_t width_ = 0;
  std::size_t stride_ = 0;
  int num_strips_ = 0;
  std::vector<Count> data_;
};

}  // namespace pam

#endif  // PAM_HASHTREE_COUNTING_POOL_H_
