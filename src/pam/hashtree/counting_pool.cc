#include "pam/hashtree/counting_pool.h"

#include <algorithm>
#include <cassert>

namespace pam {

CountingPool::CountingPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  if (num_threads_ == 1) return;  // zero-overhead default: no threads at all
  ranges_.resize(static_cast<std::size_t>(num_threads_));
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int shard = 1; shard < num_threads_; ++shard) {
    workers_.emplace_back([this, shard] { WorkerLoop(shard); });
  }
}

CountingPool::~CountingPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void CountingPool::Run(std::size_t n, const ShardFn& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    fn(0, 0, n);
    return;
  }
  const std::size_t t = static_cast<std::size_t>(num_threads_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(job_ == nullptr && "CountingPool::Run is not reentrant");
    for (std::size_t w = 0; w < t; ++w) {
      ranges_[w] = Range{w * n / t, (w + 1) * n / t};
    }
    job_ = &fn;
    error_ = nullptr;
    pending_ = num_threads_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();

  // Shard 0 runs here on the rank thread; a throw still waits for the
  // workers (they hold a reference to fn) before propagating.
  std::exception_ptr caller_error;
  if (ranges_[0].begin < ranges_[0].end) {
    try {
      fn(0, ranges_[0].begin, ranges_[0].end);
    } catch (...) {
      caller_error = std::current_exception();
    }
  }

  std::exception_ptr worker_error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
    worker_error = error_;
    error_ = nullptr;
  }
  if (caller_error) std::rethrow_exception(caller_error);
  if (worker_error) std::rethrow_exception(worker_error);
}

void CountingPool::WorkerLoop(int shard) {
  std::uint64_t seen = 0;
  for (;;) {
    const ShardFn* job = nullptr;
    Range range;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this, seen] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
      range = ranges_[static_cast<std::size_t>(shard)];
    }
    if (range.begin < range.end) {
      try {
        (*job)(shard, range.begin, range.end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void CounterStrips::Reset(int num_shards, std::size_t width) {
  width_ = width;
  // Round the strip stride up to whole cache lines plus one line of
  // separation so two shards never write the same line.
  stride_ = (width + kLineCounts - 1) / kLineCounts * kLineCounts +
            kLineCounts;
  num_strips_ = num_shards > 1 ? num_shards - 1 : 0;
  data_.assign(stride_ * static_cast<std::size_t>(num_strips_), 0);
}

void CounterStrips::MergeInto(std::span<Count> out) const {
  assert(out.size() >= width_);
  for (int s = 0; s < num_strips_; ++s) {
    const Count* strip = data_.data() + static_cast<std::size_t>(s) * stride_;
    for (std::size_t i = 0; i < width_; ++i) out[i] += strip[i];
  }
}

}  // namespace pam
