#include "pam/hashtree/hash_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "pam/tdb/database.h"

namespace pam {

namespace {

// Smallest power of two >= v (v >= 1).
int NextPow2(int v) {
  int p = 1;
  while (p < v) p <<= 1;
  return p;
}

int Log2Pow2(int v) {
  int s = 0;
  while ((1 << s) < v) ++s;
  return s;
}

}  // namespace

HashTreeConfig HashTreeConfig::TunedFor(std::size_t num_candidates, int k,
                                        int target_s) {
  HashTreeConfig config;
  config.leaf_capacity = target_s > 0 ? target_s : 1;
  const double needed_leaves =
      static_cast<double>(num_candidates) /
      static_cast<double>(config.leaf_capacity);
  // Smallest power-of-two fanout in [4, 1024] with fanout^k >= needed
  // leaves (powers of two keep the construction-time rounding a no-op, so
  // the tuned shape is exactly what the tree builds).
  int fanout = 4;
  while (fanout < 1024 &&
         std::pow(static_cast<double>(fanout), k) < needed_leaves) {
    fanout <<= 1;
  }
  config.fanout = fanout;
  const double paths = std::pow(static_cast<double>(fanout), k);
  if (paths < needed_leaves) {
    // Even the widest tree cannot reach M / S depth-k paths: leaves will
    // chain at depth k regardless, so raise the capacity to the occupancy
    // the tree can actually achieve. This keeps upper levels from
    // splitting into chains of single-bucket internal nodes that add
    // traversal steps without reducing leaf size.
    config.leaf_capacity = static_cast<int>(
        std::ceil(static_cast<double>(num_candidates) / paths));
  }
  return config;
}

void SubsetStats::Accumulate(const SubsetStats& other) {
  transactions += other.transactions;
  root_items_considered += other.root_items_considered;
  root_items_skipped += other.root_items_skipped;
  traversal_steps += other.traversal_steps;
  distinct_leaf_visits += other.distinct_leaf_visits;
  leaf_candidates_checked += other.leaf_candidates_checked;
}

double SubsetStats::AvgLeafVisitsPerTransaction() const {
  if (transactions == 0) return 0.0;
  return static_cast<double>(distinct_leaf_visits) /
         static_cast<double>(transactions);
}

HashTree::HashTree(const ItemsetCollection& candidates,
                   std::vector<std::uint32_t> candidate_ids,
                   HashTreeConfig config)
    : candidates_(candidates),
      fanout_(NextPow2(std::max(2, config.fanout))),
      mask_(static_cast<Item>(fanout_ - 1)),
      shift_(Log2Pow2(fanout_)),
      leaf_capacity_(config.leaf_capacity),
      k_(candidates.k()),
      kernel_(config.kernel) {
  assert(fanout_ >= 2);
  assert(leaf_capacity_ >= 1);
  nodes_.emplace_back();  // root starts as an empty leaf
  num_leaves_ = 1;
  num_candidates_ = candidate_ids.size();
  for (std::uint32_t id : candidate_ids) Insert(id);
  num_nodes_ = nodes_.size();
  if (kernel_ == HashTreeKernel::kFlat) Freeze();
}

HashTree::HashTree(const ItemsetCollection& candidates, HashTreeConfig config)
    : HashTree(candidates,
               [&candidates] {
                 std::vector<std::uint32_t> all(candidates.size());
                 std::iota(all.begin(), all.end(), 0);
                 return all;
               }(),
               config) {}

void HashTree::Insert(std::uint32_t candidate_id) {
  ++build_inserts_;
  ItemSpan items = candidates_.Get(candidate_id);
  std::int32_t node = 0;
  int depth = 0;
  while (!nodes_[static_cast<std::size_t>(node)].is_leaf) {
    const int bucket = Hash(items[static_cast<std::size_t>(depth)]);
    std::int32_t& child = nodes_[static_cast<std::size_t>(node)]
                              .children[static_cast<std::size_t>(bucket)];
    if (child < 0) {
      child = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
      ++num_leaves_;
    }
    node = child;
    ++depth;
  }
  Node& leaf = nodes_[static_cast<std::size_t>(node)];
  leaf.leaf_candidates.push_back(candidate_id);
  // Split when over capacity, unless the hash path is exhausted (depth == k):
  // then candidates must chain in the leaf, exactly as in the paper.
  if (leaf.leaf_candidates.size() >
          static_cast<std::size_t>(leaf_capacity_) &&
      depth < k_) {
    SplitLeaf(node, depth);
  }
}

void HashTree::SplitLeaf(std::int32_t node_index, int depth) {
  std::vector<std::uint32_t> moved =
      std::move(nodes_[static_cast<std::size_t>(node_index)].leaf_candidates);
  Node& node = nodes_[static_cast<std::size_t>(node_index)];
  node.is_leaf = false;
  node.leaf_candidates.clear();
  node.children.assign(static_cast<std::size_t>(fanout_), -1);
  --num_leaves_;
  for (std::uint32_t id : moved) {
    ItemSpan items = candidates_.Get(id);
    const int bucket = Hash(items[static_cast<std::size_t>(depth)]);
    // Re-fetch the child reference each iteration: recursive splits may
    // reallocate nodes_.
    std::int32_t child = nodes_[static_cast<std::size_t>(node_index)]
                             .children[static_cast<std::size_t>(bucket)];
    if (child < 0) {
      child = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
      ++num_leaves_;
      nodes_[static_cast<std::size_t>(node_index)]
          .children[static_cast<std::size_t>(bucket)] = child;
    }
    Node& leaf = nodes_[static_cast<std::size_t>(child)];
    leaf.leaf_candidates.push_back(id);
    if (leaf.leaf_candidates.size() >
            static_cast<std::size_t>(leaf_capacity_) &&
        depth + 1 < k_) {
      SplitLeaf(child, depth + 1);
    }
  }
}

void HashTree::Freeze() {
  // Assign dense ids: internal nodes index blocks of children_, leaves
  // index the CSR arrays. nodes_ insertion order is preserved so the flat
  // ids are deterministic.
  const std::size_t n = nodes_.size();
  std::vector<std::int32_t> flat_id(n);
  std::int32_t next_internal = 0;
  std::int32_t next_leaf = 0;
  for (std::size_t i = 0; i < n; ++i) {
    flat_id[i] = nodes_[i].is_leaf ? next_leaf++ : next_internal++;
  }
  const std::size_t num_internal = static_cast<std::size_t>(next_internal);
  const std::size_t num_leaves = static_cast<std::size_t>(next_leaf);
  assert(num_leaves == num_leaves_);

  const auto encode = [&](std::int32_t node_index) {
    if (node_index < 0) return kAbsent;
    const std::size_t idx = static_cast<std::size_t>(node_index);
    return nodes_[idx].is_leaf ? kLeafBase - flat_id[idx] : flat_id[idx];
  };

  children_.assign(num_internal << shift_, kAbsent);
  leaf_offsets_.assign(num_leaves + 1, 0);
  leaf_ids_.clear();
  leaf_ids_.reserve(num_candidates_);
  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = nodes_[i];
    if (node.is_leaf) continue;
    std::int32_t* block =
        children_.data() +
        (static_cast<std::size_t>(flat_id[i]) << shift_);
    for (int b = 0; b < fanout_; ++b) {
      block[b] = encode(node.children[static_cast<std::size_t>(b)]);
    }
  }
  // CSR leaves, in leaf-id order (= nodes_ order restricted to leaves).
  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = nodes_[i];
    if (!node.is_leaf) continue;
    leaf_offsets_[static_cast<std::size_t>(flat_id[i]) + 1] =
        static_cast<std::uint32_t>(node.leaf_candidates.size());
  }
  for (std::size_t l = 0; l < num_leaves; ++l) {
    leaf_offsets_[l + 1] += leaf_offsets_[l];
  }
  leaf_ids_.resize(leaf_offsets_[num_leaves]);
  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = nodes_[i];
    if (!node.is_leaf) continue;
    std::uint32_t at = leaf_offsets_[static_cast<std::size_t>(flat_id[i])];
    for (std::uint32_t id : node.leaf_candidates) leaf_ids_[at++] = id;
  }
  // Candidate item tuples copied leaf-ordered: the inner subset check
  // walks this array sequentially instead of bouncing through the
  // collection in candidate-id order.
  leaf_items_.resize(leaf_ids_.size() * static_cast<std::size_t>(k_));
  Item max_item = 0;
  for (std::size_t j = 0; j < leaf_ids_.size(); ++j) {
    ItemSpan items = candidates_.Get(leaf_ids_[j]);
    std::copy(items.begin(), items.end(),
              leaf_items_.begin() + j * static_cast<std::size_t>(k_));
    max_item = std::max(max_item, items.back());
  }
  leaf_epoch_.assign(num_leaves, 0);
  item_epoch_.assign(
      leaf_ids_.empty() ? 0 : static_cast<std::size_t>(max_item) + 1, 0);
  root_ref_ = encode(0);
  stack_.resize(static_cast<std::size_t>(k_) + 1);

  // The node-based tree is no longer needed; release it.
  std::vector<Node>().swap(nodes_);
}

void HashTree::Subset(ItemSpan transaction, std::span<Count> counts,
                      SubsetStats* stats, const Bitmap* root_filter) {
  if (kernel_ == HashTreeKernel::kClassic) {
    SubsetClassic(transaction, counts, stats, root_filter);
    return;
  }
  // Hoist the stats / root-filter branches out of the hot loops: pick one
  // of four specialized instantiations once per transaction.
  if (stats != nullptr) {
    if (root_filter != nullptr) {
      SubsetFlat<true, true>(transaction, counts, stats, root_filter);
    } else {
      SubsetFlat<true, false>(transaction, counts, stats, nullptr);
    }
  } else {
    if (root_filter != nullptr) {
      SubsetFlat<false, true>(transaction, counts, nullptr, root_filter);
    } else {
      SubsetFlat<false, false>(transaction, counts, nullptr, nullptr);
    }
  }
}

template <bool WithStats>
void HashTree::CheckLeafFlat(std::int32_t leaf, ItemSpan transaction,
                             std::span<Count> counts, SubsetStats* stats) {
  (void)transaction;  // containment reads the item stamps, not the span
  const std::size_t l = static_cast<std::size_t>(leaf);
  // Distinct-leaf detection: a leaf already visited for this transaction
  // contributes no further checking work (paper Section IV).
  if (leaf_epoch_[l] == epoch_) return;
  leaf_epoch_[l] = epoch_;
  const std::uint32_t begin = leaf_offsets_[l];
  const std::uint32_t end = leaf_offsets_[l + 1];
  if constexpr (WithStats) {
    ++stats->distinct_leaf_visits;
    stats->leaf_candidates_checked += end - begin;
  }
  const Item* tuple =
      leaf_items_.data() + static_cast<std::size_t>(begin) *
                               static_cast<std::size_t>(k_);
  // Containment via the per-item epoch stamps: every item of the
  // transaction was stamped with the current epoch on entry, so a
  // candidate is contained iff all k of its items carry the stamp.
  const std::uint64_t e = epoch_;
  const std::uint64_t* present = item_epoch_.data();
  for (std::uint32_t j = begin; j < end;
       ++j, tuple += static_cast<std::size_t>(k_)) {
    bool all = true;
    for (int a = 0; a < k_; ++a) {
      if (present[tuple[static_cast<std::size_t>(a)]] != e) {
        all = false;
        break;
      }
    }
    if (all) ++counts[leaf_ids_[j]];
  }
}

template <bool WithStats, bool WithFilter>
void HashTree::SubsetFlat(ItemSpan transaction, std::span<Count> counts,
                          SubsetStats* stats, const Bitmap* root_filter) {
  assert(counts.size() == candidates_.size());
  if (static_cast<int>(transaction.size()) < k_) {
    if constexpr (WithStats) ++stats->transactions;
    return;
  }
  ++epoch_;
  if constexpr (WithStats) ++stats->transactions;
  // Stamp the transaction's items for the O(k) leaf containment check.
  // Items beyond the largest candidate item cannot occur in any tuple.
  {
    const std::size_t limit = item_epoch_.size();
    for (const Item item : transaction) {
      if (static_cast<std::size_t>(item) < limit) item_epoch_[item] = epoch_;
    }
  }
  const std::size_t last_start =
      transaction.size() - static_cast<std::size_t>(k_) + 1;
  const std::int32_t* children = children_.data();
  Frame* frames = stack_.data();
  const std::uint32_t tx_size = static_cast<std::uint32_t>(transaction.size());
  for (std::size_t i = 0; i < last_start; ++i) {
    const Item item = transaction[i];
    if constexpr (WithFilter) {
      if (!root_filter->Test(item)) {
        if constexpr (WithStats) ++stats->root_items_skipped;
        continue;
      }
    }
    if constexpr (WithStats) ++stats->root_items_considered;
    if (root_ref_ <= kLeafBase) {
      // Degenerate single-node tree: check once (first viable item) and
      // stop; further starts revisit the same leaf.
      CheckLeafFlat<WithStats>(kLeafBase - root_ref_, transaction, counts,
                               stats);
      break;
    }
    if constexpr (WithStats) ++stats->traversal_steps;
    const std::int32_t child =
        children[(static_cast<std::size_t>(root_ref_) << shift_) +
                 (item & mask_)];
    if (child == kAbsent) continue;
    if (child <= kLeafBase) {
      CheckLeafFlat<WithStats>(kLeafBase - child, transaction, counts,
                               stats);
      continue;
    }
    // Iterative depth-first traversal below the root child; frames resume
    // the per-node position loop, so the stack never exceeds k entries.
    std::int32_t depth = 0;
    frames[0] = Frame{child, static_cast<std::uint32_t>(i + 1)};
    while (depth >= 0) {
      Frame& f = frames[depth];
      if (f.pos >= tx_size) {
        --depth;
        continue;
      }
      const Item next = transaction[f.pos++];
      if constexpr (WithStats) ++stats->traversal_steps;
      const std::int32_t c =
          children[(static_cast<std::size_t>(f.node) << shift_) +
                   (next & mask_)];
      if (c == kAbsent) continue;
      if (c <= kLeafBase) {
        CheckLeafFlat<WithStats>(kLeafBase - c, transaction, counts, stats);
      } else {
        const std::uint32_t pos = f.pos;
        frames[++depth] = Frame{c, pos};
      }
    }
  }
}

void HashTree::SubsetClassic(ItemSpan transaction, std::span<Count> counts,
                             SubsetStats* stats, const Bitmap* root_filter) {
  assert(counts.size() == candidates_.size());
  if (static_cast<int>(transaction.size()) < k_) {
    if (stats) ++stats->transactions;
    return;
  }
  ++epoch_;
  if (stats) ++stats->transactions;
  // Root level: try every item as the starting item of a candidate,
  // filtered by the IDD ownership bitmap when present. Items beyond
  // size-k+1 cannot start a k-candidate.
  const std::size_t last_start = transaction.size() -
                                 static_cast<std::size_t>(k_) + 1;
  Node& root = nodes_[0];
  for (std::size_t i = 0; i < last_start; ++i) {
    const Item item = transaction[i];
    if (root_filter != nullptr && !root_filter->Test(item)) {
      if (stats) ++stats->root_items_skipped;
      continue;
    }
    if (stats) ++stats->root_items_considered;
    if (root.is_leaf) {
      // Degenerate single-node tree: check once (first viable item) and
      // stop; further starts revisit the same leaf.
      Visit(0, transaction, i + 1, counts, stats);
      break;
    }
    const int bucket = Hash(item);
    const std::int32_t child =
        root.children[static_cast<std::size_t>(bucket)];
    if (stats) ++stats->traversal_steps;
    if (child >= 0) Visit(child, transaction, i + 1, counts, stats);
  }
}

void HashTree::Visit(std::int32_t node_index, ItemSpan transaction,
                     std::size_t pos, std::span<Count> counts,
                     SubsetStats* stats) {
  Node& node = nodes_[static_cast<std::size_t>(node_index)];
  if (node.is_leaf) {
    // Distinct-leaf detection: a leaf already visited for this transaction
    // contributes no further checking work (paper Section IV).
    if (node.visit_epoch == epoch_) return;
    node.visit_epoch = epoch_;
    if (stats) {
      ++stats->distinct_leaf_visits;
      stats->leaf_candidates_checked += node.leaf_candidates.size();
    }
    for (std::uint32_t id : node.leaf_candidates) {
      if (IsSortedSubset(candidates_.Get(id), transaction)) {
        ++counts[id];
      }
    }
    return;
  }
  for (std::size_t i = pos; i < transaction.size(); ++i) {
    const int bucket = Hash(transaction[i]);
    const std::int32_t child =
        node.children[static_cast<std::size_t>(bucket)];
    if (stats) ++stats->traversal_steps;
    if (child >= 0) Visit(child, transaction, i + 1, counts, stats);
  }
}

std::vector<Count> CountBruteForce(const TransactionDatabase& db,
                                   TransactionDatabase::Slice slice,
                                   const ItemsetCollection& candidates) {
  std::vector<Count> counts(candidates.size(), 0);
  for (std::size_t t = slice.begin; t < slice.end; ++t) {
    ItemSpan tx = db.Transaction(t);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (IsSortedSubset(candidates.Get(c), tx)) ++counts[c];
    }
  }
  return counts;
}

}  // namespace pam
