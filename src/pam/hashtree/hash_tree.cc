#include "pam/hashtree/hash_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "pam/tdb/database.h"

// The AVX2 subset kernel is compiled in only when the build enables SIMD
// (PAM_ENABLE_SIMD, set by the PAM_ENABLE_SIMD CMake option) and the
// compiler targets AVX2; every other build uses the portable scalar path.
// Both produce bit-identical counts and stats.
#if defined(PAM_ENABLE_SIMD) && defined(__AVX2__)
#define PAM_HASHTREE_AVX2 1
#include <immintrin.h>

#include <bit>
#endif

namespace pam {

namespace {

// Smallest power of two >= v (v >= 1).
int NextPow2(int v) {
  int p = 1;
  while (p < v) p <<= 1;
  return p;
}

int Log2Pow2(int v) {
  int s = 0;
  while ((1 << s) < v) ++s;
  return s;
}

}  // namespace

HashTreeConfig HashTreeConfig::TunedFor(std::size_t num_candidates, int k,
                                        int target_s) {
  HashTreeConfig config;
  config.leaf_capacity = target_s > 0 ? target_s : 1;
  const double needed_leaves =
      static_cast<double>(num_candidates) /
      static_cast<double>(config.leaf_capacity);
  // Smallest power-of-two fanout in [4, 1024] with fanout^k >= needed
  // leaves (powers of two keep the construction-time rounding a no-op, so
  // the tuned shape is exactly what the tree builds).
  int fanout = 4;
  while (fanout < 1024 &&
         std::pow(static_cast<double>(fanout), k) < needed_leaves) {
    fanout <<= 1;
  }
  config.fanout = fanout;
  const double paths = std::pow(static_cast<double>(fanout), k);
  if (paths < needed_leaves) {
    // Even the widest tree cannot reach M / S depth-k paths: leaves will
    // chain at depth k regardless, so raise the capacity to the occupancy
    // the tree can actually achieve. This keeps upper levels from
    // splitting into chains of single-bucket internal nodes that add
    // traversal steps without reducing leaf size.
    config.leaf_capacity = static_cast<int>(
        std::ceil(static_cast<double>(num_candidates) / paths));
  }
  return config;
}

void SubsetStats::Accumulate(const SubsetStats& other) {
  transactions += other.transactions;
  root_items_considered += other.root_items_considered;
  root_items_skipped += other.root_items_skipped;
  traversal_steps += other.traversal_steps;
  distinct_leaf_visits += other.distinct_leaf_visits;
  leaf_candidates_checked += other.leaf_candidates_checked;
}

double SubsetStats::AvgLeafVisitsPerTransaction() const {
  if (transactions == 0) return 0.0;
  return static_cast<double>(distinct_leaf_visits) /
         static_cast<double>(transactions);
}

HashTree::HashTree(const ItemsetCollection& candidates,
                   std::vector<std::uint32_t> candidate_ids,
                   HashTreeConfig config)
    : candidates_(candidates),
      fanout_(NextPow2(std::max(2, config.fanout))),
      mask_(static_cast<Item>(fanout_ - 1)),
      shift_(Log2Pow2(fanout_)),
      leaf_capacity_(config.leaf_capacity),
      k_(candidates.k()),
      kernel_(config.kernel),
      identity_root_(config.identity_root) {
  assert(fanout_ >= 2);
  assert(leaf_capacity_ >= 1);
  if (identity_root_) {
    // Root is internal from the start: its children are indexed by first
    // item value and grown on demand in Insert. num_leaves_ stays 0 until
    // the first child leaf appears.
    nodes_.emplace_back();
    nodes_[0].is_leaf = false;
  } else {
    nodes_.emplace_back();  // root starts as an empty leaf
    num_leaves_ = 1;
  }
  num_candidates_ = candidate_ids.size();
  for (std::uint32_t id : candidate_ids) Insert(id);
  num_nodes_ = nodes_.size();
  if (kernel_ == HashTreeKernel::kFlat) Freeze();
}

HashTree::HashTree(const ItemsetCollection& candidates, HashTreeConfig config)
    : HashTree(candidates,
               [&candidates] {
                 std::vector<std::uint32_t> all(candidates.size());
                 std::iota(all.begin(), all.end(), 0);
                 return all;
               }(),
               config) {}

void HashTree::Insert(std::uint32_t candidate_id) {
  ++build_inserts_;
  ItemSpan items = candidates_.Get(candidate_id);
  std::int32_t node = 0;
  int depth = 0;
  while (!nodes_[static_cast<std::size_t>(node)].is_leaf) {
    const Item it = items[static_cast<std::size_t>(depth)];
    const std::size_t bucket =
        identity_root_ && depth == 0
            ? static_cast<std::size_t>(it)
            : static_cast<std::size_t>(Hash(it));
    Node& parent = nodes_[static_cast<std::size_t>(node)];
    if (bucket >= parent.children.size()) {
      // Only reachable at the identity root, whose children grow with the
      // largest first item seen; hashed levels are always fanout-sized.
      parent.children.resize(bucket + 1, -1);
    }
    std::int32_t& child = parent.children[bucket];
    if (child < 0) {
      child = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
      ++num_leaves_;
    }
    node = child;
    ++depth;
  }
  Node& leaf = nodes_[static_cast<std::size_t>(node)];
  leaf.leaf_candidates.push_back(candidate_id);
  // Split when over capacity, unless the hash path is exhausted (depth == k):
  // then candidates must chain in the leaf, exactly as in the paper.
  if (leaf.leaf_candidates.size() >
          static_cast<std::size_t>(leaf_capacity_) &&
      depth < k_) {
    SplitLeaf(node, depth);
  }
}

void HashTree::SplitLeaf(std::int32_t node_index, int depth) {
  std::vector<std::uint32_t> moved =
      std::move(nodes_[static_cast<std::size_t>(node_index)].leaf_candidates);
  Node& node = nodes_[static_cast<std::size_t>(node_index)];
  node.is_leaf = false;
  node.leaf_candidates.clear();
  node.children.assign(static_cast<std::size_t>(fanout_), -1);
  --num_leaves_;
  for (std::uint32_t id : moved) {
    ItemSpan items = candidates_.Get(id);
    const int bucket = Hash(items[static_cast<std::size_t>(depth)]);
    // Re-fetch the child reference each iteration: recursive splits may
    // reallocate nodes_.
    std::int32_t child = nodes_[static_cast<std::size_t>(node_index)]
                             .children[static_cast<std::size_t>(bucket)];
    if (child < 0) {
      child = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
      ++num_leaves_;
      nodes_[static_cast<std::size_t>(node_index)]
          .children[static_cast<std::size_t>(bucket)] = child;
    }
    Node& leaf = nodes_[static_cast<std::size_t>(child)];
    leaf.leaf_candidates.push_back(id);
    if (leaf.leaf_candidates.size() >
            static_cast<std::size_t>(leaf_capacity_) &&
        depth + 1 < k_) {
      SplitLeaf(child, depth + 1);
    }
  }
}

void HashTree::Freeze() {
  // Assign dense ids: internal nodes index blocks of children_, leaves
  // index the CSR arrays. nodes_ insertion order is preserved so the flat
  // ids are deterministic.
  const std::size_t n = nodes_.size();
  std::vector<std::int32_t> flat_id(n);
  std::int32_t next_internal = 0;
  std::int32_t next_leaf = 0;
  for (std::size_t i = 0; i < n; ++i) {
    flat_id[i] = nodes_[i].is_leaf ? next_leaf++ : next_internal++;
  }
  const std::size_t num_internal = static_cast<std::size_t>(next_internal);
  const std::size_t num_leaves = static_cast<std::size_t>(next_leaf);
  assert(num_leaves == num_leaves_);

  const auto encode = [&](std::int32_t node_index) {
    if (node_index < 0) return kAbsent;
    const std::size_t idx = static_cast<std::size_t>(node_index);
    return nodes_[idx].is_leaf ? kLeafBase - flat_id[idx] : flat_id[idx];
  };

  children_.assign(num_internal << shift_, kAbsent);
  leaf_offsets_.assign(num_leaves + 1, 0);
  leaf_ids_.clear();
  leaf_ids_.reserve(num_candidates_);
  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = nodes_[i];
    if (node.is_leaf) continue;
    if (identity_root_ && i == 0) {
      // The identity root's children block has item-indexed width, not
      // fanout width; it freezes into its own array (its fanout-sized
      // slot in children_ stays kAbsent and is never read).
      root_children_.assign(node.children.size(), kAbsent);
      for (std::size_t b = 0; b < node.children.size(); ++b) {
        root_children_[b] = encode(node.children[b]);
      }
      continue;
    }
    std::int32_t* block =
        children_.data() +
        (static_cast<std::size_t>(flat_id[i]) << shift_);
    for (int b = 0; b < fanout_; ++b) {
      block[b] = encode(node.children[static_cast<std::size_t>(b)]);
    }
  }
  // CSR leaves, in leaf-id order (= nodes_ order restricted to leaves).
  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = nodes_[i];
    if (!node.is_leaf) continue;
    leaf_offsets_[static_cast<std::size_t>(flat_id[i]) + 1] =
        static_cast<std::uint32_t>(node.leaf_candidates.size());
  }
  for (std::size_t l = 0; l < num_leaves; ++l) {
    leaf_offsets_[l + 1] += leaf_offsets_[l];
  }
  leaf_ids_.resize(leaf_offsets_[num_leaves]);
  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = nodes_[i];
    if (!node.is_leaf) continue;
    std::uint32_t at = leaf_offsets_[static_cast<std::size_t>(flat_id[i])];
    for (std::uint32_t id : node.leaf_candidates) leaf_ids_[at++] = id;
  }
  // Candidate item tuples copied leaf-ordered: the inner subset check
  // walks this array sequentially instead of bouncing through the
  // collection in candidate-id order.
  const std::size_t k = static_cast<std::size_t>(k_);
  leaf_items_.resize(leaf_ids_.size() * k);
  Item max_item = 0;
#if PAM_HASHTREE_AVX2
  // Column-major per leaf: item column a of an n-candidate leaf occupies
  // n contiguous slots, so the SIMD kernel loads eight candidates' a-th
  // items with one unaligned load.
  for (std::size_t l = 0; l < num_leaves; ++l) {
    const std::size_t off = leaf_offsets_[l];
    const std::size_t cnt = leaf_offsets_[l + 1] - off;
    Item* base = leaf_items_.data() + off * k;
    for (std::size_t j = 0; j < cnt; ++j) {
      ItemSpan items = candidates_.Get(leaf_ids_[off + j]);
      for (std::size_t a = 0; a < k; ++a) base[a * cnt + j] = items[a];
      max_item = std::max(max_item, items.back());
    }
  }
#else
  // Row-major: candidate j's whole tuple is contiguous.
  for (std::size_t j = 0; j < leaf_ids_.size(); ++j) {
    ItemSpan items = candidates_.Get(leaf_ids_[j]);
    std::copy(items.begin(), items.end(), leaf_items_.begin() + j * k);
    max_item = std::max(max_item, items.back());
  }
#endif
  item_stamp_size_ =
      leaf_ids_.empty() ? 0 : static_cast<std::size_t>(max_item) + 1;
  root_ref_ = encode(0);
  scratch_ = MakeScratch();

  // The node-based tree is no longer needed; release it.
  std::vector<Node>().swap(nodes_);
}

HashTree::Scratch HashTree::MakeScratch() const {
  Scratch s;
  s.leaf_epoch.assign(num_leaves_, 0);
  s.item_stamp.assign(item_stamp_size_, 0);
  s.stack.resize(static_cast<std::size_t>(k_) + 1);
  return s;
}

void HashTree::Subset(ItemSpan transaction, std::span<Count> counts,
                      SubsetStats* stats, const Bitmap* root_filter,
                      std::span<std::uint64_t> item_work,
                      std::span<std::uint64_t> leaf_visits) {
  if (kernel_ == HashTreeKernel::kClassic) {
    SubsetClassic(transaction, counts, stats, root_filter);
    return;
  }
  Subset(transaction, counts, stats, root_filter, scratch_, item_work,
         leaf_visits);
}

void HashTree::Subset(ItemSpan transaction, std::span<Count> counts,
                      SubsetStats* stats, const Bitmap* root_filter,
                      Scratch& scratch, std::span<std::uint64_t> item_work,
                      std::span<std::uint64_t> leaf_visits) const {
  assert(kernel_ == HashTreeKernel::kFlat &&
         "scratch-based Subset requires the flat kernel");
  assert((item_work.empty() && leaf_visits.empty()) ||
         leaf_visits.size() == num_leaves_);
  // Hoist the stats / root-filter / attribution branches out of the hot
  // loops: pick one specialized instantiation once per transaction.
  if (!item_work.empty()) {
    if (stats != nullptr) {
      if (root_filter != nullptr) {
        SubsetFlat<true, true, true>(transaction, counts, stats, root_filter,
                                     scratch, item_work, leaf_visits);
      } else {
        SubsetFlat<true, false, true>(transaction, counts, stats, nullptr,
                                      scratch, item_work, leaf_visits);
      }
    } else {
      if (root_filter != nullptr) {
        SubsetFlat<false, true, true>(transaction, counts, nullptr,
                                      root_filter, scratch, item_work,
                                      leaf_visits);
      } else {
        SubsetFlat<false, false, true>(transaction, counts, nullptr, nullptr,
                                       scratch, item_work, leaf_visits);
      }
    }
  } else if (stats != nullptr) {
    if (root_filter != nullptr) {
      SubsetFlat<true, true, false>(transaction, counts, stats, root_filter,
                                    scratch, {}, {});
    } else {
      SubsetFlat<true, false, false>(transaction, counts, stats, nullptr,
                                     scratch, {}, {});
    }
  } else {
    if (root_filter != nullptr) {
      SubsetFlat<false, true, false>(transaction, counts, nullptr,
                                     root_filter, scratch, {}, {});
    } else {
      SubsetFlat<false, false, false>(transaction, counts, nullptr, nullptr,
                                      scratch, {}, {});
    }
  }
}

void HashTree::AccumulateCandidateChecks(
    std::span<const std::uint64_t> leaf_visits,
    std::span<std::uint64_t> out) const {
  assert(leaf_visits.size() == num_leaves_);
  for (std::size_t l = 0; l < num_leaves_; ++l) {
    const std::uint64_t visits = leaf_visits[l];
    if (visits == 0) continue;
    for (std::uint32_t j = leaf_offsets_[l]; j < leaf_offsets_[l + 1]; ++j) {
      out[leaf_ids_[j]] += visits;
    }
  }
}

template <bool WithStats, bool WithItemWork>
std::uint32_t HashTree::CheckLeafFlat(
    std::int32_t leaf, std::span<Count> counts, SubsetStats* stats,
    Scratch& scratch, std::span<std::uint64_t> leaf_visits) const {
  const std::size_t l = static_cast<std::size_t>(leaf);
  // Distinct-leaf detection: a leaf already visited for this transaction
  // contributes no further checking work (paper Section IV).
  if (scratch.leaf_epoch[l] == scratch.epoch) return 0;
  scratch.leaf_epoch[l] = scratch.epoch;
  const std::uint32_t begin = leaf_offsets_[l];
  const std::uint32_t end = leaf_offsets_[l + 1];
  if constexpr (WithStats) {
    ++stats->distinct_leaf_visits;
    stats->leaf_candidates_checked += end - begin;
  }
  if constexpr (WithItemWork) ++leaf_visits[l];
  // Containment via the per-item stamps: every item of the transaction
  // was stamped with the current value on entry, so a candidate is
  // contained iff all k of its items carry the stamp.
  const std::uint32_t e = scratch.stamp;
  const std::uint32_t* present = scratch.item_stamp.data();
  const std::size_t k = static_cast<std::size_t>(k_);
#if PAM_HASHTREE_AVX2
  // Column-major leaf layout: 8 candidates per iteration, one gathered
  // stamp compare per item column, AND-accumulated into a lane mask.
  // Candidate items are always < item_stamp_size_, so the gather needs no
  // bounds mask.
  const std::uint32_t cnt = end - begin;
  const Item* base = leaf_items_.data() + static_cast<std::size_t>(begin) * k;
  const __m256i vstamp = _mm256_set1_epi32(static_cast<int>(e));
  std::uint32_t j = 0;
  for (; j + 8 <= cnt; j += 8) {
    __m256i all = _mm256_set1_epi32(-1);
    for (std::size_t a = 0; a < k; ++a) {
      const __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + a * cnt + j));
      const __m256i got = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(present), idx, 4);
      all = _mm256_and_si256(all, _mm256_cmpeq_epi32(got, vstamp));
    }
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(all)));
    while (mask != 0) {
      const unsigned lane = static_cast<unsigned>(std::countr_zero(mask));
      mask &= mask - 1;
      ++counts[leaf_ids_[begin + j + lane]];
    }
  }
  // Scalar tail over the same columns.
  for (; j < cnt; ++j) {
    bool all = true;
    for (std::size_t a = 0; a < k; ++a) {
      if (present[base[a * cnt + j]] != e) {
        all = false;
        break;
      }
    }
    if (all) ++counts[leaf_ids_[begin + j]];
  }
#else
  const Item* tuple = leaf_items_.data() + static_cast<std::size_t>(begin) * k;
  for (std::uint32_t j = begin; j < end; ++j, tuple += k) {
    bool all = true;
    for (std::size_t a = 0; a < k; ++a) {
      if (present[tuple[a]] != e) {
        all = false;
        break;
      }
    }
    if (all) ++counts[leaf_ids_[j]];
  }
#endif
  return end - begin;
}

template <bool WithStats, bool WithFilter, bool WithItemWork>
void HashTree::SubsetFlat(ItemSpan transaction, std::span<Count> counts,
                          SubsetStats* stats, const Bitmap* root_filter,
                          Scratch& scratch,
                          std::span<std::uint64_t> item_work,
                          std::span<std::uint64_t> leaf_visits) const {
  assert(counts.size() == candidates_.size());
  if (static_cast<int>(transaction.size()) < k_) {
    if constexpr (WithStats) ++stats->transactions;
    return;
  }
  ++scratch.epoch;
  if (++scratch.stamp == 0) {
    // The 32-bit stamp wrapped: clear the array so stale stamps from 2^32
    // transactions ago cannot collide, then restart at 1.
    std::fill(scratch.item_stamp.begin(), scratch.item_stamp.end(), 0);
    scratch.stamp = 1;
  }
  if constexpr (WithStats) ++stats->transactions;
  // Stamp the transaction's items for the O(k) leaf containment check.
  // Items beyond the largest candidate item cannot occur in any tuple.
  {
    const std::size_t limit = scratch.item_stamp.size();
    const std::uint32_t stamp = scratch.stamp;
    for (const Item item : transaction) {
      if (static_cast<std::size_t>(item) < limit) {
        scratch.item_stamp[item] = stamp;
      }
    }
  }
  const std::size_t last_start =
      transaction.size() - static_cast<std::size_t>(k_) + 1;
  const std::int32_t* children = children_.data();
  Frame* frames = scratch.stack.data();
  const std::uint32_t tx_size = static_cast<std::uint32_t>(transaction.size());
  for (std::size_t i = 0; i < last_start; ++i) {
    const Item item = transaction[i];
    if constexpr (WithFilter) {
      if (!root_filter->Test(item)) {
        if constexpr (WithStats) ++stats->root_items_skipped;
        continue;
      }
    }
    if constexpr (WithStats) ++stats->root_items_considered;
    // Attribution: all work of the descent starting at position i is
    // charged to transaction[i], the root item that triggered it. Kept in
    // a register and flushed once per root entry.
    [[maybe_unused]] std::uint64_t entry_work = 0;
    if (root_ref_ <= kLeafBase) {
      // Degenerate single-node tree: check once (first viable item) and
      // stop; further starts revisit the same leaf.
      const std::uint32_t checked = CheckLeafFlat<WithStats, WithItemWork>(
          kLeafBase - root_ref_, counts, stats, scratch, leaf_visits);
      if constexpr (WithItemWork) {
        if (static_cast<std::size_t>(item) < item_work.size()) {
          item_work[item] += checked;
        }
      }
      break;
    }
    if constexpr (WithStats) ++stats->traversal_steps;
    if constexpr (WithItemWork) ++entry_work;
    const std::int32_t child =
        identity_root_
            ? (static_cast<std::size_t>(item) < root_children_.size()
                   ? root_children_[static_cast<std::size_t>(item)]
                   : kAbsent)
            : children[(static_cast<std::size_t>(root_ref_) << shift_) +
                       (item & mask_)];
    if (child != kAbsent) {
      if (child <= kLeafBase) {
        const std::uint32_t checked = CheckLeafFlat<WithStats, WithItemWork>(
            kLeafBase - child, counts, stats, scratch, leaf_visits);
        if constexpr (WithItemWork) entry_work += checked;
      } else {
        // Iterative depth-first traversal below the root child; frames
        // resume the per-node position loop, so the stack never exceeds k
        // entries.
        std::int32_t depth = 0;
        frames[0] = Frame{child, static_cast<std::uint32_t>(i + 1)};
        while (depth >= 0) {
          Frame& f = frames[depth];
          if (f.pos >= tx_size) {
            --depth;
            continue;
          }
          const Item next = transaction[f.pos++];
          if constexpr (WithStats) ++stats->traversal_steps;
          if constexpr (WithItemWork) ++entry_work;
          const std::int32_t c =
              children[(static_cast<std::size_t>(f.node) << shift_) +
                       (next & mask_)];
          if (c == kAbsent) continue;
          if (c <= kLeafBase) {
            const std::uint32_t checked =
                CheckLeafFlat<WithStats, WithItemWork>(
                    kLeafBase - c, counts, stats, scratch, leaf_visits);
            if constexpr (WithItemWork) entry_work += checked;
          } else {
            const std::uint32_t pos = f.pos;
            frames[++depth] = Frame{c, pos};
          }
        }
      }
    }
    if constexpr (WithItemWork) {
      if (static_cast<std::size_t>(item) < item_work.size()) {
        item_work[item] += entry_work;
      }
    }
  }
}

void HashTree::SubsetClassic(ItemSpan transaction, std::span<Count> counts,
                             SubsetStats* stats, const Bitmap* root_filter) {
  assert(counts.size() == candidates_.size());
  if (static_cast<int>(transaction.size()) < k_) {
    if (stats) ++stats->transactions;
    return;
  }
  ++epoch_;
  if (stats) ++stats->transactions;
  // Root level: try every item as the starting item of a candidate,
  // filtered by the IDD ownership bitmap when present. Items beyond
  // size-k+1 cannot start a k-candidate.
  const std::size_t last_start = transaction.size() -
                                 static_cast<std::size_t>(k_) + 1;
  Node& root = nodes_[0];
  for (std::size_t i = 0; i < last_start; ++i) {
    const Item item = transaction[i];
    if (root_filter != nullptr && !root_filter->Test(item)) {
      if (stats) ++stats->root_items_skipped;
      continue;
    }
    if (stats) ++stats->root_items_considered;
    if (root.is_leaf) {
      // Degenerate single-node tree: check once (first viable item) and
      // stop; further starts revisit the same leaf.
      Visit(0, transaction, i + 1, counts, stats);
      break;
    }
    const std::size_t bucket =
        identity_root_ ? static_cast<std::size_t>(item)
                       : static_cast<std::size_t>(Hash(item));
    const std::int32_t child =
        bucket < root.children.size() ? root.children[bucket] : kAbsent;
    if (stats) ++stats->traversal_steps;
    if (child >= 0) Visit(child, transaction, i + 1, counts, stats);
  }
}

void HashTree::Visit(std::int32_t node_index, ItemSpan transaction,
                     std::size_t pos, std::span<Count> counts,
                     SubsetStats* stats) {
  Node& node = nodes_[static_cast<std::size_t>(node_index)];
  if (node.is_leaf) {
    // Distinct-leaf detection: a leaf already visited for this transaction
    // contributes no further checking work (paper Section IV).
    if (node.visit_epoch == epoch_) return;
    node.visit_epoch = epoch_;
    if (stats) {
      ++stats->distinct_leaf_visits;
      stats->leaf_candidates_checked += node.leaf_candidates.size();
    }
    for (std::uint32_t id : node.leaf_candidates) {
      if (IsSortedSubset(candidates_.Get(id), transaction)) {
        ++counts[id];
      }
    }
    return;
  }
  for (std::size_t i = pos; i < transaction.size(); ++i) {
    const int bucket = Hash(transaction[i]);
    const std::int32_t child =
        node.children[static_cast<std::size_t>(bucket)];
    if (stats) ++stats->traversal_steps;
    if (child >= 0) Visit(child, transaction, i + 1, counts, stats);
  }
}

std::vector<Count> CountBruteForce(const TransactionDatabase& db,
                                   TransactionDatabase::Slice slice,
                                   const ItemsetCollection& candidates) {
  std::vector<Count> counts(candidates.size(), 0);
  for (std::size_t t = slice.begin; t < slice.end; ++t) {
    ItemSpan tx = db.Transaction(t);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (IsSortedSubset(candidates.Get(c), tx)) ++counts[c];
    }
  }
  return counts;
}

}  // namespace pam
