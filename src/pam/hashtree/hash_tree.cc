#include "pam/hashtree/hash_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "pam/tdb/database.h"

namespace pam {

HashTreeConfig HashTreeConfig::TunedFor(std::size_t num_candidates, int k,
                                        int target_s) {
  HashTreeConfig config;
  config.leaf_capacity = target_s > 0 ? target_s : 1;
  const double needed_leaves =
      static_cast<double>(num_candidates) /
      static_cast<double>(config.leaf_capacity);
  // Smallest fanout with fanout^k >= needed_leaves.
  double fanout = 4.0;
  if (needed_leaves > 1.0 && k >= 1) {
    fanout = std::ceil(std::pow(needed_leaves, 1.0 / k));
  }
  config.fanout = static_cast<int>(std::min(1024.0, std::max(4.0, fanout)));
  return config;
}

void SubsetStats::Accumulate(const SubsetStats& other) {
  transactions += other.transactions;
  root_items_considered += other.root_items_considered;
  root_items_skipped += other.root_items_skipped;
  traversal_steps += other.traversal_steps;
  distinct_leaf_visits += other.distinct_leaf_visits;
  leaf_candidates_checked += other.leaf_candidates_checked;
}

double SubsetStats::AvgLeafVisitsPerTransaction() const {
  if (transactions == 0) return 0.0;
  return static_cast<double>(distinct_leaf_visits) /
         static_cast<double>(transactions);
}

HashTree::HashTree(const ItemsetCollection& candidates,
                   std::vector<std::uint32_t> candidate_ids,
                   HashTreeConfig config)
    : candidates_(candidates),
      fanout_(config.fanout),
      leaf_capacity_(config.leaf_capacity),
      k_(candidates.k()) {
  assert(fanout_ >= 2);
  assert(leaf_capacity_ >= 1);
  nodes_.emplace_back();  // root starts as an empty leaf
  num_leaves_ = 1;
  num_candidates_ = candidate_ids.size();
  for (std::uint32_t id : candidate_ids) Insert(id);
}

HashTree::HashTree(const ItemsetCollection& candidates, HashTreeConfig config)
    : HashTree(candidates,
               [&candidates] {
                 std::vector<std::uint32_t> all(candidates.size());
                 std::iota(all.begin(), all.end(), 0);
                 return all;
               }(),
               config) {}

void HashTree::Insert(std::uint32_t candidate_id) {
  ++build_inserts_;
  ItemSpan items = candidates_.Get(candidate_id);
  std::int32_t node = 0;
  int depth = 0;
  while (!nodes_[static_cast<std::size_t>(node)].is_leaf) {
    const int bucket = Hash(items[static_cast<std::size_t>(depth)]);
    std::int32_t& child = nodes_[static_cast<std::size_t>(node)]
                              .children[static_cast<std::size_t>(bucket)];
    if (child < 0) {
      child = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
      ++num_leaves_;
    }
    node = child;
    ++depth;
  }
  Node& leaf = nodes_[static_cast<std::size_t>(node)];
  leaf.leaf_candidates.push_back(candidate_id);
  // Split when over capacity, unless the hash path is exhausted (depth == k):
  // then candidates must chain in the leaf, exactly as in the paper.
  if (leaf.leaf_candidates.size() >
          static_cast<std::size_t>(leaf_capacity_) &&
      depth < k_) {
    SplitLeaf(node, depth);
  }
}

void HashTree::SplitLeaf(std::int32_t node_index, int depth) {
  std::vector<std::uint32_t> moved =
      std::move(nodes_[static_cast<std::size_t>(node_index)].leaf_candidates);
  Node& node = nodes_[static_cast<std::size_t>(node_index)];
  node.is_leaf = false;
  node.leaf_candidates.clear();
  node.children.assign(static_cast<std::size_t>(fanout_), -1);
  --num_leaves_;
  for (std::uint32_t id : moved) {
    ItemSpan items = candidates_.Get(id);
    const int bucket = Hash(items[static_cast<std::size_t>(depth)]);
    // Re-fetch the child reference each iteration: recursive splits may
    // reallocate nodes_.
    std::int32_t child = nodes_[static_cast<std::size_t>(node_index)]
                             .children[static_cast<std::size_t>(bucket)];
    if (child < 0) {
      child = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
      ++num_leaves_;
      nodes_[static_cast<std::size_t>(node_index)]
          .children[static_cast<std::size_t>(bucket)] = child;
    }
    Node& leaf = nodes_[static_cast<std::size_t>(child)];
    leaf.leaf_candidates.push_back(id);
    if (leaf.leaf_candidates.size() >
            static_cast<std::size_t>(leaf_capacity_) &&
        depth + 1 < k_) {
      SplitLeaf(child, depth + 1);
    }
  }
}

void HashTree::Subset(ItemSpan transaction, std::span<Count> counts,
                      SubsetStats* stats, const Bitmap* root_filter) {
  assert(counts.size() == candidates_.size());
  if (static_cast<int>(transaction.size()) < k_) {
    if (stats) ++stats->transactions;
    return;
  }
  ++epoch_;
  if (stats) ++stats->transactions;
  // Root level: try every item as the starting item of a candidate,
  // filtered by the IDD ownership bitmap when present. Items beyond
  // size-k+1 cannot start a k-candidate.
  const std::size_t last_start = transaction.size() -
                                 static_cast<std::size_t>(k_) + 1;
  Node& root = nodes_[0];
  for (std::size_t i = 0; i < last_start; ++i) {
    const Item item = transaction[i];
    if (root_filter != nullptr && !root_filter->Test(item)) {
      if (stats) ++stats->root_items_skipped;
      continue;
    }
    if (stats) ++stats->root_items_considered;
    if (root.is_leaf) {
      // Degenerate single-node tree: check once (first viable item) and
      // stop; further starts revisit the same leaf.
      Visit(0, transaction, i + 1, counts, stats);
      break;
    }
    const int bucket = Hash(item);
    const std::int32_t child =
        root.children[static_cast<std::size_t>(bucket)];
    if (stats) ++stats->traversal_steps;
    if (child >= 0) Visit(child, transaction, i + 1, counts, stats);
  }
}

void HashTree::Visit(std::int32_t node_index, ItemSpan transaction,
                     std::size_t pos, std::span<Count> counts,
                     SubsetStats* stats) {
  Node& node = nodes_[static_cast<std::size_t>(node_index)];
  if (node.is_leaf) {
    // Distinct-leaf detection: a leaf already visited for this transaction
    // contributes no further checking work (paper Section IV).
    if (node.visit_epoch == epoch_) return;
    node.visit_epoch = epoch_;
    if (stats) {
      ++stats->distinct_leaf_visits;
      stats->leaf_candidates_checked += node.leaf_candidates.size();
    }
    for (std::uint32_t id : node.leaf_candidates) {
      if (IsSortedSubset(candidates_.Get(id), transaction)) {
        ++counts[id];
      }
    }
    return;
  }
  for (std::size_t i = pos; i < transaction.size(); ++i) {
    const int bucket = Hash(transaction[i]);
    const std::int32_t child =
        node.children[static_cast<std::size_t>(bucket)];
    if (stats) ++stats->traversal_steps;
    if (child >= 0) Visit(child, transaction, i + 1, counts, stats);
  }
}

std::vector<Count> CountBruteForce(const TransactionDatabase& db,
                                   TransactionDatabase::Slice slice,
                                   const ItemsetCollection& candidates) {
  std::vector<Count> counts(candidates.size(), 0);
  for (std::size_t t = slice.begin; t < slice.end; ++t) {
    ItemSpan tx = db.Transaction(t);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (IsSortedSubset(candidates.Get(c), tx)) ++counts[c];
    }
  }
  return counts;
}

}  // namespace pam
