#include "pam/mp/runtime.h"

#include <cassert>
#include <numeric>
#include <thread>
#include <vector>

namespace pam {

Runtime::Runtime(int num_ranks)
    : num_ranks_(num_ranks),
      world_(std::make_shared<internal_mp::WorldState>(num_ranks)) {
  assert(num_ranks >= 1);
}

void Runtime::Run(const std::function<void(Comm&)>& rank_main) {
  std::vector<int> members(static_cast<std::size_t>(num_ranks_));
  std::iota(members.begin(), members.end(), 0);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, &rank_main, &members, r] {
      Comm comm(world_, /*comm_id=*/1, members, r);
      rank_main(comm);
    });
  }
  for (auto& t : threads) t.join();
}

std::uint64_t Runtime::TotalBytesSent() const {
  std::uint64_t total = 0;
  for (const auto& b : world_->bytes_sent) total += b.load();
  return total;
}

std::uint64_t Runtime::TotalMessagesSent() const {
  std::uint64_t total = 0;
  for (const auto& m : world_->messages_sent) total += m.load();
  return total;
}

}  // namespace pam
