#include "pam/mp/runtime.h"

#include <cassert>
#include <exception>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

namespace pam {

Runtime::Runtime(int num_ranks)
    : num_ranks_(num_ranks),
      world_(std::make_shared<internal_mp::WorldState>(num_ranks)) {
  assert(num_ranks >= 1);
}

void Runtime::SetFaultConfig(const FaultConfig& config) {
  world_->fault_plan = FaultPlan(config);
}

void Runtime::SetCancelToken(const CancelToken& token) {
  world_->cancel = token;
}

void Runtime::Run(const std::function<void(Comm&)>& rank_main) {
  std::vector<int> members(static_cast<std::size_t>(num_ranks_));
  std::iota(members.begin(), members.end(), 0);
  world_->ResetAbort();

  std::mutex error_mu;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, &rank_main, &members, &error_mu,
                          &first_error, r] {
      Comm comm(world_, /*comm_id=*/1, members, r);
      try {
        rank_main(comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        // Wake every rank blocked in a receive so the join below cannot
        // deadlock; they unwind with CommError{kAborted}, which loses the
        // race for first_error and is discarded.
        world_->Abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::uint64_t Runtime::TotalBytesSent() const {
  std::uint64_t total = 0;
  for (const auto& b : world_->bytes_sent) total += b.load();
  return total;
}

std::uint64_t Runtime::TotalMessagesSent() const {
  std::uint64_t total = 0;
  for (const auto& m : world_->messages_sent) total += m.load();
  return total;
}

CommFaultStats Runtime::TotalFaultStats() const {
  CommFaultStats total;
  for (int r = 0; r < num_ranks_; ++r) {
    const auto i = static_cast<std::size_t>(r);
    total.injected += world_->faults_injected[i].load();
    total.retries += world_->send_retries[i].load();
    total.detected += world_->mailboxes[i].DiscardedCount();
  }
  return total;
}

}  // namespace pam
