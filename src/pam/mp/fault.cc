#include "pam/mp/fault.h"

#include <cassert>

namespace pam {
namespace {

// splitmix64 finalizer: full-avalanche mix of a 64-bit state.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double ToUnitDouble(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kStall:
      return "stall";
  }
  return "?";
}

const char* CommErrorKindName(CommErrorKind kind) {
  switch (kind) {
    case CommErrorKind::kTimeout:
      return "timeout";
    case CommErrorKind::kAborted:
      return "aborted";
  }
  return "?";
}

CommError::CommError(CommErrorKind kind, int rank, int peer, int tag,
                     const std::string& detail)
    : std::runtime_error("CommError{" + std::string(CommErrorKindName(kind)) +
                         " rank=" + std::to_string(rank) +
                         " peer=" + std::to_string(peer) +
                         " tag=" + std::to_string(tag) + "}: " + detail),
      kind_(kind),
      rank_(rank),
      peer_(peer),
      tag_(tag) {}

FaultConfig FaultConfig::Uniform(FaultKind kind, double prob,
                                 std::uint64_t seed, int max_retries) {
  FaultConfig config;
  config.enabled = true;
  config.seed = seed;
  config.max_retries = max_retries;
  switch (kind) {
    case FaultKind::kNone:
      break;
    case FaultKind::kCorrupt:
      config.corrupt_prob = prob;
      break;
    case FaultKind::kTruncate:
      config.truncate_prob = prob;
      break;
    case FaultKind::kDuplicate:
      config.duplicate_prob = prob;
      break;
    case FaultKind::kDrop:
      config.drop_prob = prob;
      break;
    case FaultKind::kReorder:
      config.reorder_prob = prob;
      break;
    case FaultKind::kStall:
      config.stall_prob = prob;
      break;
  }
  return config;
}

FaultConfig FaultConfig::Mixed(double total_prob, std::uint64_t seed,
                               int max_retries) {
  FaultConfig config;
  config.enabled = true;
  config.seed = seed;
  config.max_retries = max_retries;
  const double each = total_prob / 6.0;
  config.corrupt_prob = each;
  config.truncate_prob = each;
  config.duplicate_prob = each;
  config.drop_prob = each;
  config.reorder_prob = each;
  config.stall_prob = each;
  return config;
}

std::uint64_t FaultPlan::Derive(int src_world, int dst_world, int tag,
                                std::uint64_t seq, int attempt,
                                std::uint64_t salt) const {
  std::uint64_t x = config_.seed;
  x = Mix64(x ^ static_cast<std::uint64_t>(src_world));
  x = Mix64(x ^ static_cast<std::uint64_t>(dst_world));
  x = Mix64(x ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  x = Mix64(x ^ seq);
  x = Mix64(x ^ static_cast<std::uint64_t>(attempt));
  return Mix64(x ^ salt);
}

FaultKind FaultPlan::Decide(int src_world, int dst_world, int tag,
                            std::uint64_t seq, int attempt) const {
  if (!config_.enabled) return FaultKind::kNone;
  const double u =
      ToUnitDouble(Derive(src_world, dst_world, tag, seq, attempt, 0));
  double edge = 0.0;
  const struct {
    FaultKind kind;
    double prob;
  } table[] = {
      {FaultKind::kCorrupt, config_.corrupt_prob},
      {FaultKind::kTruncate, config_.truncate_prob},
      {FaultKind::kDuplicate, config_.duplicate_prob},
      {FaultKind::kDrop, config_.drop_prob},
      {FaultKind::kReorder, config_.reorder_prob},
      {FaultKind::kStall, config_.stall_prob},
  };
  for (const auto& row : table) {
    edge += row.prob;
    if (u < edge) return row.kind;
  }
  return FaultKind::kNone;
}

void CorruptBytes(std::vector<std::byte>* data, std::uint64_t r) {
  if (data->empty()) return;
  // Flip up to three bytes at derived positions; always at least one, and
  // always a real change (xor with a non-zero mask).
  const std::size_t n = data->size();
  for (int i = 0; i < 3; ++i) {
    const std::size_t pos = static_cast<std::size_t>(Mix64(r + i) % n);
    (*data)[pos] ^= static_cast<std::byte>(0xA5);
  }
}

std::size_t TruncatedSize(std::size_t size, std::uint64_t r) {
  assert(size > 0);
  return static_cast<std::size_t>(Mix64(r) % size);
}

}  // namespace pam
