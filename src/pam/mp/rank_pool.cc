#include "pam/mp/rank_pool.h"

#include <utility>

namespace pam {

RankLease::RankLease(RankLease&& other) noexcept
    : pool_(std::exchange(other.pool_, nullptr)),
      ranks_(std::exchange(other.ranks_, 0)) {}

RankLease& RankLease::operator=(RankLease&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = std::exchange(other.pool_, nullptr);
    ranks_ = std::exchange(other.ranks_, 0);
  }
  return *this;
}

RankLease::~RankLease() { Release(); }

void RankLease::Release() {
  if (pool_ != nullptr) {
    pool_->Return(ranks_);
    pool_ = nullptr;
    ranks_ = 0;
  }
}

RankPool::RankPool(int capacity)
    : capacity_(capacity > 0 ? capacity : 1), available_(capacity_) {}

int RankPool::Available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return available_;
}

int RankPool::LeasesOutstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outstanding_;
}

std::uint64_t RankPool::LeasesGranted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return granted_;
}

RankLease RankPool::Lease(int ranks) {
  if (ranks <= 0 || ranks > capacity_) return RankLease();
  std::unique_lock<std::mutex> lock(mu_);
  const std::uint64_t ticket = next_ticket_++;
  cv_.wait(lock, [&] {
    return closed_ || (serving_ == ticket && available_ >= ranks);
  });
  if (closed_) {
    // This waiter will never be granted; advance the FIFO past it so the
    // ticket sequence stays dense for any concurrent waiters.
    if (serving_ == ticket) {
      ++serving_;
      cv_.notify_all();
    }
    return RankLease();
  }
  available_ -= ranks;
  ++outstanding_;
  ++granted_;
  ++serving_;
  cv_.notify_all();
  return RankLease(this, ranks);
}

void RankPool::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

bool RankPool::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

void RankPool::Return(int ranks) {
  std::lock_guard<std::mutex> lock(mu_);
  available_ += ranks;
  --outstanding_;
  cv_.notify_all();
}

}  // namespace pam
