#ifndef PAM_MP_RANK_POOL_H_
#define PAM_MP_RANK_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace pam {

class RankPool;

/// RAII lease over a block of logical ranks drawn from a RankPool. A
/// default-constructed (or moved-from) lease holds nothing; a held lease
/// returns its ranks to the pool on destruction or explicit Release().
class RankLease {
 public:
  RankLease() = default;
  RankLease(RankLease&& other) noexcept;
  RankLease& operator=(RankLease&& other) noexcept;
  ~RankLease();
  RankLease(const RankLease&) = delete;
  RankLease& operator=(const RankLease&) = delete;

  bool held() const { return pool_ != nullptr; }
  int ranks() const { return ranks_; }

  /// Returns the ranks to the pool now (idempotent).
  void Release();

 private:
  friend class RankPool;
  RankLease(RankPool* pool, int ranks) : pool_(pool), ranks_(ranks) {}

  RankPool* pool_ = nullptr;
  int ranks_ = 0;
};

/// A shared pool of logical mining ranks. The serving layer sizes one of
/// these to the machine (the moral equivalent of "this host runs P rank
/// threads at a time") and every admitted request leases the rank count it
/// wants to mine with before spinning up its Runtime; the lease is the
/// server's back-pressure mechanism, so concurrent requests time-share the
/// machine instead of oversubscribing it without bound.
///
/// Leases are granted strictly in FIFO order: a waiter blocks until every
/// earlier waiter has been served AND its own rank count is free. The
/// head-of-line blocking is deliberate — a wide request (P close to
/// capacity) can never be starved by a stream of narrow ones, which is
/// what guarantees the soak suite's drain-to-idle property.
///
/// Thread-safe. Close() wakes every waiter with an unheld lease, which is
/// how server shutdown unblocks workers parked in Lease().
class RankPool {
 public:
  explicit RankPool(int capacity);

  int capacity() const { return capacity_; }
  /// Ranks currently free (not covered by an outstanding lease).
  int Available() const;
  /// Leases currently outstanding (granted, not yet released).
  int LeasesOutstanding() const;
  /// Total leases ever granted.
  std::uint64_t LeasesGranted() const;

  /// Blocks until `ranks` ranks are free and every earlier waiter has been
  /// served, then grants the lease. Returns an unheld lease when `ranks`
  /// is non-positive, exceeds the pool capacity, or the pool was closed
  /// (before or during the wait).
  RankLease Lease(int ranks);

  /// Wakes all waiters; every pending and future Lease() returns unheld.
  /// Outstanding leases may still be released normally.
  void Close();
  bool closed() const;

 private:
  friend class RankLease;
  void Return(int ranks);

  const int capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int available_;
  int outstanding_ = 0;
  std::uint64_t granted_ = 0;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t serving_ = 0;
  bool closed_ = false;
};

}  // namespace pam

#endif  // PAM_MP_RANK_POOL_H_
