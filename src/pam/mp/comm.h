#ifndef PAM_MP_COMM_H_
#define PAM_MP_COMM_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <tuple>
#include <vector>

#include "pam/mp/fault.h"
#include "pam/mp/payload.h"
#include "pam/util/cancel.h"

namespace pam {

/// Thread-backed message-passing substrate with MPI-like semantics. This is
/// the repository's stand-in for the MPI layer of the paper's Cray T3E /
/// IBM SP2: point-to-point sends/receives (with the non-blocking
/// Isend/Irecv/Waitall shapes used by the Figure 6 ring pipeline), global
/// reductions, all-gather, broadcast, barriers, and sub-communicators for
/// the HD processor grid's rows and columns.
///
/// Message bodies are refcounted immutable Payload handles: a send wraps
/// raw bytes into a payload exactly once (or takes an existing handle),
/// the in-process mailbox passes the handle, and the receiver exposes a
/// read-only view. Forwarding a received message (ring pipeline, binomial
/// broadcast, ring all-gather) re-sends the *same* handle — zero byte
/// copies and zero checksum recomputes per hop. Sends are buffered (they
/// deposit into the destination's mailbox and return), so programs cannot
/// deadlock on finite communication buffers; the cost model charges DD's
/// finite-buffer idling analytically instead. Message order is FIFO per
/// (source, communicator, tag).
///
/// Unlike the paper's substrate, this one does not assume the transport is
/// perfect: every envelope carries a framing header (sequence number,
/// length, payload checksum), receives deliver a stream's envelopes in
/// sequence order after verifying integrity, and a deterministic
/// fault-injection schedule (FaultPlan) can corrupt, truncate, duplicate,
/// drop, reorder, or stall any delivery attempt. Mutilating faults are
/// copy-on-write: the shared payload is cloned only when the fault
/// actually fires, so the lossless fast path stays zero-copy. Recoverable
/// faults are repaired transparently (bounded sender retransmit + receiver
/// resequencing/dup-discard); unrecoverable ones surface as a structured
/// CommError instead of silently wrong counts.

namespace internal_mp {

struct Envelope {
  std::uint64_t comm_id = 0;
  int src_world = 0;
  int tag = 0;
  /// Framing header: position in the (comm_id, src, dst, tag) stream,
  /// declared payload length, and PayloadChecksum of the payload at send
  /// time. Duplicates and reorders are repaired from `seq`; corruption
  /// and truncation are detected from `declared_size`/`checksum`.
  std::uint64_t seq = 0;
  std::uint64_t declared_size = 0;
  std::uint64_t checksum = 0;
  /// Shared immutable body. Duplicated/forwarded envelopes alias the same
  /// buffer; corrupt/truncate faults carry a private clone instead.
  Payload payload;
};

/// True if the envelope's payload matches its framing header. For intact
/// envelopes this is a memo compare (the sender already computed the
/// payload's checksum); only fault clones pay a recompute — which then
/// mismatches the header.
bool EnvelopeIntact(const Envelope& envelope);

/// One rank's incoming message queue. Matching is by (comm_id, src, tag)
/// stream; within a stream, envelopes are delivered strictly in sequence
/// order, and envelopes that fail integrity checks (or repeat an already
/// delivered sequence number) are discarded on sight.
class Mailbox {
 public:
  enum class TakeStatus {
    kOk,       // *envelope filled
    kTimeout,  // deadline expired (TakeFor) / nothing deliverable (TryTake)
    kAborted,  // Shutdown() was called; the world is tearing down
  };

  /// `front` = true injects at the head of the queue (reorder fault).
  void Put(Envelope envelope, bool front = false);

  /// Removes and returns the next in-sequence intact message matching
  /// (comm_id, src, tag); src == -1 matches any source. Blocks until one
  /// arrives, the deadline expires (timeout_ms >= 0), or Shutdown() is
  /// called. timeout_ms < 0 means no deadline.
  TakeStatus TakeFor(std::uint64_t comm_id, int src_world, int tag,
                     int timeout_ms, Envelope* envelope);

  /// Non-blocking TakeFor: never waits. kTimeout means nothing
  /// deliverable is queued right now.
  TakeStatus TryTake(std::uint64_t comm_id, int src_world, int tag,
                     Envelope* envelope);

  /// Wakes all blocked takers; they (and all future takers that find no
  /// deliverable message) return kAborted until ResetAbort().
  void Shutdown();
  void ResetAbort();

  /// Bad envelopes (corrupt, truncated, stale duplicate) discarded so far.
  std::uint64_t DiscardedCount() const;

 private:
  /// Scans the queue for the first deliverable envelope, erasing stale
  /// duplicates and corrupt attempts along the way. Caller holds mu_.
  bool ScanLocked(std::uint64_t comm_id, int src_world, int tag,
                  Envelope* envelope);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
  /// Next expected sequence number per (comm_id, src_world, tag) stream.
  std::map<std::tuple<std::uint64_t, int, int>, std::uint64_t> expected_seq_;
  std::uint64_t discarded_ = 0;
  bool aborted_ = false;
};

/// Per-sender stream state: next sequence number per destination stream.
/// Each rank's thread only ever touches its own SenderState, so no lock.
struct SenderState {
  std::map<std::tuple<std::uint64_t, int, int>, std::uint64_t> next_seq;
};

/// State shared by every rank of one Runtime: mailboxes, traffic
/// counters, sender sequence state, and the fault-injection plan.
struct WorldState {
  explicit WorldState(int num_ranks);
  const int num_ranks;
  std::vector<Mailbox> mailboxes;
  std::vector<std::atomic<std::uint64_t>> bytes_sent;
  std::vector<std::atomic<std::uint64_t>> messages_sent;
  std::vector<SenderState> senders;
  std::vector<std::atomic<std::uint64_t>> faults_injected;
  std::vector<std::atomic<std::uint64_t>> send_retries;
  FaultPlan fault_plan;  // default: disabled
  /// Cooperative cancellation handle installed by Runtime::SetCancelToken.
  /// When valid, every blocking receive waits in bounded slices and
  /// re-checks the token between slices, so a fired deadline or cancel
  /// unblocks every rank promptly (with CancelledError) instead of letting
  /// it sit in an infinite mailbox wait. Default: null (zero overhead).
  CancelToken cancel;

  /// Wakes every blocked receive; used when a rank fails so the others
  /// unwind (with CommError{kAborted}) instead of deadlocking the join.
  void Abort();
  void ResetAbort();
};

}  // namespace internal_mp

/// Handle for a pending non-blocking receive, obtained from Comm::Irecv.
/// Poll it with Comm::Test or block in Comm::Wait; once done, the payload
/// view is valid until the request is destroyed (the handle keeps the
/// buffer alive — and can be forwarded with Comm::Send at zero cost).
class RecvRequest {
 public:
  bool done() const { return done_; }

  /// The received message body; valid once done() is true.
  const Payload& payload() const { return payload_; }

  /// Read-only byte view of the received message body.
  std::span<const std::byte> data() const { return payload_.bytes(); }

 private:
  friend class Comm;
  int src_ = -1;
  int tag_ = 0;
  bool posted_ = false;
  bool done_ = false;
  Payload payload_;
};

/// A communicator: a rank's endpoint within a group of ranks. The world
/// communicator is handed to each rank by Runtime::Run; sub-communicators
/// are created with Sub(). Copyable (cheap; shares world state).
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_.size()); }

  // ---- Point to point ------------------------------------------------

  /// Blocking-buffered send of raw bytes to rank `dst` of this comm:
  /// wraps the bytes into a pooled Payload (the one copy the transport
  /// ever makes) and sends the handle. Consults the world's FaultPlan:
  /// recoverable injected faults trigger bounded retransmits; an
  /// exhausted retransmit budget loses the message (the receiver's
  /// deadline turns that into CommError).
  void Send(int dst, int tag, std::span<const std::byte> data) {
    Send(dst, tag, Payload::Copy(data));
  }

  /// Zero-copy send of an existing payload handle: no byte copy, and the
  /// checksum memoized inside the handle is reused — forwarding a
  /// received message costs O(1) regardless of its size.
  void Send(int dst, int tag, Payload payload);

  /// Receives a message from `src` (-1 = any member) with tag `tag` as a
  /// shared payload handle (no copy out of the transport). If
  /// `actual_src` is non-null it receives the sender's comm rank. Throws
  /// CommError on receive deadline (fault injection enabled) or world
  /// abort.
  Payload RecvPayload(int src, int tag, int* actual_src = nullptr);

  /// Recv convenience that copies the payload into an owned vector.
  std::vector<std::byte> Recv(int src, int tag, int* actual_src = nullptr) {
    const Payload payload = RecvPayload(src, tag, actual_src);
    return std::vector<std::byte>(payload.bytes().begin(),
                                  payload.bytes().end());
  }

  /// Non-blocking receive: returns true and fills `payload` if a matching
  /// message was already queued. DD uses this to process remote pages as
  /// they arrive while still generating its own sends. Throws CommError
  /// {kAborted} if the world is tearing down.
  bool TryRecvPayload(int src, int tag, Payload* payload,
                      int* actual_src = nullptr);

  /// TryRecv convenience that copies the payload into an owned vector.
  bool TryRecv(int src, int tag, std::vector<std::byte>* data,
               int* actual_src = nullptr) {
    Payload payload;
    if (!TryRecvPayload(src, tag, &payload, actual_src)) return false;
    data->assign(payload.bytes().begin(), payload.bytes().end());
    return true;
  }

  /// Non-blocking sends (complete immediately; sends are buffered).
  void Isend(int dst, int tag, std::span<const std::byte> data) {
    Send(dst, tag, data);
  }
  void Isend(int dst, int tag, Payload payload) {
    Send(dst, tag, std::move(payload));
  }

  /// Posts a non-blocking receive. The request is genuinely pending:
  /// complete it with Wait(), or poll it with Test() to overlap delivery
  /// with local work (the ring pipeline tests between counting batches).
  RecvRequest Irecv(int src, int tag);

  /// Non-blocking completion probe: takes the message out of the mailbox
  /// into the request if one is deliverable now. Returns done().
  bool Test(RecvRequest& request);

  /// Blocks until the request's message has been received into payload().
  void Wait(RecvRequest& request);

  /// Typed conveniences (trivially copyable element types only).
  template <typename T>
  void SendVec(int dst, int tag, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Send(dst, tag,
         std::span<const std::byte>(
             reinterpret_cast<const std::byte*>(v.data()),
             v.size() * sizeof(T)));
  }
  template <typename T>
  std::vector<T> RecvVec(int src, int tag, int* actual_src = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    const Payload payload = RecvPayload(src, tag, actual_src);
    std::vector<T> out(payload.size() / sizeof(T));
    std::memcpy(out.data(), payload.data(), out.size() * sizeof(T));
    return out;
  }

  // ---- Collectives (must be called by every member) --------------------

  /// Synchronizes all members.
  void Barrier();

  /// Element-wise sum of `inout` across all members; every member ends up
  /// with the reduced array (the paper's "global reduction" used by CD and
  /// by HD along grid rows). log2(P) exchange rounds for every group
  /// size: non-powers-of-two fold the surplus ranks into the nearest
  /// power of two first, then recursive-double.
  void AllReduceSum(std::span<std::uint64_t> inout);

  /// Element-wise max across all members, same schedule as AllReduceSum.
  /// RingShiftAll negotiates its common round count with one of these.
  void AllReduceMax(std::span<std::uint64_t> inout);

  /// Gathers each member's payload; every member receives all payloads
  /// indexed by comm rank (the "all-to-all broadcast" used to exchange
  /// frequent itemsets in DD/IDD and along HD grid columns). Ring
  /// schedule; intermediate hops forward handles without copying.
  std::vector<Payload> AllGatherPayload(Payload mine);

  /// AllGather convenience over raw bytes, returning owned vectors.
  std::vector<std::vector<std::byte>> AllGather(
      std::span<const std::byte> mine);

  /// Broadcasts `data` from `root` to all members along a binomial tree
  /// (log2(P) depth; interior nodes forward the received handle without
  /// copying); returns the payload on all members.
  Payload BcastPayload(int root, Payload data);

  /// Bcast convenience over raw bytes, returning an owned vector.
  std::vector<std::byte> Bcast(int root, std::span<const std::byte> data);

  // ---- Topology --------------------------------------------------------

  /// Creates a sub-communicator containing `member_ranks` (ranks of *this*
  /// comm, which must include rank()). Every listed member must call Sub
  /// with the same list and label. Purely local: comm ids derive
  /// deterministically from (parent id, label, members).
  Comm Sub(const std::vector<int>& member_ranks, std::uint64_t label) const;

  /// Ring neighbors within this comm (IDD's logical ring of Section III-C).
  int RightNeighbor() const { return (rank_ + 1) % size(); }
  int LeftNeighbor() const { return (rank_ + size() - 1) % size(); }

  /// Total bytes this world rank has sent so far (all comms). Counts
  /// logical payload bytes only — zero-copy handle forwarding, injected
  /// duplicates, and retransmits all record the full logical payload, so
  /// the traffic figures are independent of the transport's internals.
  std::uint64_t MyBytesSent() const;

  /// Fault activity of this world rank so far (all comms): faults the
  /// plan injected on its sends, retransmit attempts, and bad envelopes
  /// its receives discarded.
  CommFaultStats MyFaultStats() const;

  /// The world's cancellation token (null unless the runtime installed
  /// one). Rank programs use this for ring-round / pass-boundary check
  /// points without threading the token through every call signature.
  const CancelToken& cancel_token() const { return world_->cancel; }

 private:
  friend class Runtime;
  Comm(std::shared_ptr<internal_mp::WorldState> world, std::uint64_t comm_id,
       std::vector<int> members, int rank);

  int WorldRankOf(int comm_rank) const {
    return members_[static_cast<std::size_t>(comm_rank)];
  }
  /// O(1): precomputed inverse of members_ (built once in the
  /// constructor; Recv consults it once per message).
  int CommRankOfWorld(int world_rank) const {
    return world_to_comm_[static_cast<std::size_t>(world_rank)];
  }

  /// Throws the CommError for a failed take.
  [[noreturn]] void ThrowTakeFailure(internal_mp::Mailbox::TakeStatus status,
                                     int src, int tag) const;

  std::shared_ptr<internal_mp::WorldState> world_;
  std::uint64_t comm_id_ = 0;
  std::vector<int> members_;        // comm rank -> world rank
  std::vector<int> world_to_comm_;  // world rank -> comm rank (-1 if absent)
  int rank_ = 0;                    // my comm rank
};

}  // namespace pam

#endif  // PAM_MP_COMM_H_
