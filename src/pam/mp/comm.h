#ifndef PAM_MP_COMM_H_
#define PAM_MP_COMM_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace pam {

/// Thread-backed message-passing substrate with MPI-like semantics. This is
/// the repository's stand-in for the MPI layer of the paper's Cray T3E /
/// IBM SP2: point-to-point sends/receives (with the non-blocking
/// Isend/Irecv/Waitall shapes used by the Figure 6 ring pipeline), global
/// reduction, all-gather, broadcast, barriers, and sub-communicators for
/// the HD processor grid's rows and columns.
///
/// Sends are buffered (they deposit into the destination's mailbox and
/// return), so programs cannot deadlock on finite communication buffers;
/// the cost model charges DD's finite-buffer idling analytically instead.
/// Message order is FIFO per (source, communicator, tag).

namespace internal_mp {

struct Envelope {
  std::uint64_t comm_id = 0;
  int src_world = 0;
  int tag = 0;
  std::vector<std::byte> data;
};

/// One rank's incoming message queue.
class Mailbox {
 public:
  void Put(Envelope envelope);
  /// Removes and returns the first message matching (comm_id, src, tag);
  /// src == -1 matches any source. Blocks until one arrives.
  Envelope Take(std::uint64_t comm_id, int src_world, int tag);

  /// Non-blocking Take: returns false if no matching message is queued.
  bool TryTake(std::uint64_t comm_id, int src_world, int tag,
               Envelope* envelope);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
};

/// State shared by every rank of one Runtime: mailboxes and traffic
/// counters.
struct WorldState {
  explicit WorldState(int num_ranks);
  const int num_ranks;
  std::vector<Mailbox> mailboxes;
  std::vector<std::atomic<std::uint64_t>> bytes_sent;
  std::vector<std::atomic<std::uint64_t>> messages_sent;
};

}  // namespace internal_mp

/// Handle for a pending non-blocking receive. Obtained from Comm::Irecv and
/// completed by Comm::Wait.
class RecvRequest {
 public:
  /// The received payload; valid after Comm::Wait returned.
  std::vector<std::byte>& data() { return data_; }

 private:
  friend class Comm;
  int src_ = -1;
  int tag_ = 0;
  bool done_ = false;
  std::vector<std::byte> data_;
};

/// A communicator: a rank's endpoint within a group of ranks. The world
/// communicator is handed to each rank by Runtime::Run; sub-communicators
/// are created with Sub(). Copyable (cheap; shares world state).
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_.size()); }

  // ---- Point to point ------------------------------------------------

  /// Blocking-buffered send of raw bytes to rank `dst` of this comm.
  void Send(int dst, int tag, std::span<const std::byte> data);
  /// Receives a message from `src` (-1 = any member) with tag `tag`.
  /// If `actual_src` is non-null it receives the sender's comm rank.
  std::vector<std::byte> Recv(int src, int tag, int* actual_src = nullptr);

  /// Non-blocking receive: returns true and fills `data` if a matching
  /// message was already queued. DD uses this to process remote pages as
  /// they arrive while still generating its own sends.
  bool TryRecv(int src, int tag, std::vector<std::byte>* data,
               int* actual_src = nullptr);

  /// Non-blocking send (completes immediately; sends are buffered).
  void Isend(int dst, int tag, std::span<const std::byte> data) {
    Send(dst, tag, data);
  }
  /// Posts a non-blocking receive; complete it with Wait().
  RecvRequest Irecv(int src, int tag);
  /// Blocks until the request's message has been received into data().
  void Wait(RecvRequest& request);

  /// Typed conveniences (trivially copyable element types only).
  template <typename T>
  void SendVec(int dst, int tag, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Send(dst, tag,
         std::span<const std::byte>(
             reinterpret_cast<const std::byte*>(v.data()),
             v.size() * sizeof(T)));
  }
  template <typename T>
  std::vector<T> RecvVec(int src, int tag, int* actual_src = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> raw = Recv(src, tag, actual_src);
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), out.size() * sizeof(T));
    return out;
  }

  // ---- Collectives (must be called by every member) --------------------

  /// Synchronizes all members.
  void Barrier();

  /// Element-wise sum of `inout` across all members; every member ends up
  /// with the reduced array (the paper's "global reduction" used by CD and
  /// by HD along grid rows).
  void AllReduceSum(std::span<std::uint64_t> inout);

  /// Gathers each member's byte blob; every member receives all blobs
  /// indexed by comm rank (the "all-to-all broadcast" used to exchange
  /// frequent itemsets in DD/IDD and along HD grid columns).
  std::vector<std::vector<std::byte>> AllGather(
      std::span<const std::byte> mine);

  /// Broadcasts `data` from `root` to all members; returns the data on all.
  std::vector<std::byte> Bcast(int root, std::span<const std::byte> data);

  // ---- Topology --------------------------------------------------------

  /// Creates a sub-communicator containing `member_ranks` (ranks of *this*
  /// comm, which must include rank()). Every listed member must call Sub
  /// with the same list and label. Purely local: comm ids derive
  /// deterministically from (parent id, label, members).
  Comm Sub(const std::vector<int>& member_ranks, std::uint64_t label) const;

  /// Ring neighbors within this comm (IDD's logical ring of Section III-C).
  int RightNeighbor() const { return (rank_ + 1) % size(); }
  int LeftNeighbor() const { return (rank_ + size() - 1) % size(); }

  /// Total bytes this world rank has sent so far (all comms).
  std::uint64_t MyBytesSent() const;

 private:
  friend class Runtime;
  Comm(std::shared_ptr<internal_mp::WorldState> world, std::uint64_t comm_id,
       std::vector<int> members, int rank)
      : world_(std::move(world)),
        comm_id_(comm_id),
        members_(std::move(members)),
        rank_(rank) {}

  int WorldRankOf(int comm_rank) const {
    return members_[static_cast<std::size_t>(comm_rank)];
  }
  int CommRankOfWorld(int world_rank) const;

  std::shared_ptr<internal_mp::WorldState> world_;
  std::uint64_t comm_id_ = 0;
  std::vector<int> members_;  // comm rank -> world rank
  int rank_ = 0;              // my comm rank
};

}  // namespace pam

#endif  // PAM_MP_COMM_H_
