#ifndef PAM_MP_RUNTIME_H_
#define PAM_MP_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "pam/mp/comm.h"
#include "pam/mp/fault.h"

namespace pam {

/// Spawns one thread per rank and runs a rank program on each, handing
/// every rank its world communicator — the moral equivalent of `mpirun -np
/// P`. Blocks until every rank returns.
///
/// The thread count is a *logical* processor count: programs written
/// against Comm behave identically whether ranks share one core (as on the
/// single-core build machines this repository targets) or run truly in
/// parallel. All experiment figures are therefore derived from exact work
/// and traffic counts plus the machine cost model, not from wall-clock.
class Runtime {
 public:
  explicit Runtime(int num_ranks);

  int num_ranks() const { return num_ranks_; }

  /// Installs a fault-injection plan consulted by every Comm of this
  /// runtime. Call before Run(); a default-constructed/disabled config
  /// restores the zero-overhead lossless path.
  void SetFaultConfig(const FaultConfig& config);

  /// Installs a cooperative cancellation token consulted by every Comm of
  /// this runtime: blocking receives become bounded-slice waits that throw
  /// CancelledError once the token fires. Call before Run(); a null token
  /// (the default) restores the plain infinite-wait path.
  void SetCancelToken(const CancelToken& token);

  /// Runs `rank_main` on every rank. May be called multiple times; traffic
  /// counters accumulate across calls.
  ///
  /// If a rank throws (e.g. a CommError under fault injection), the world
  /// is aborted: every other rank blocked in a receive is woken with
  /// CommError{kAborted}, all threads are joined, and the *first* thrown
  /// exception is rethrown here — no deadlocked join, no partial result.
  /// After an aborted Run the mailboxes may hold residual messages; use a
  /// fresh Runtime for subsequent runs.
  void Run(const std::function<void(Comm&)>& rank_main);

  /// Total bytes sent by all ranks across all Run() calls so far.
  std::uint64_t TotalBytesSent() const;
  /// Total messages sent by all ranks across all Run() calls so far.
  std::uint64_t TotalMessagesSent() const;
  /// Aggregate fault activity across all ranks and Run() calls.
  CommFaultStats TotalFaultStats() const;

 private:
  int num_ranks_;
  std::shared_ptr<internal_mp::WorldState> world_;
};

}  // namespace pam

#endif  // PAM_MP_RUNTIME_H_
