#include "pam/mp/payload.h"

#include <bit>
#include <cstring>

namespace pam {
namespace {

// Buffers larger than this are not pooled (one-off jumbo messages).
constexpr std::size_t kMaxPooledBytes = std::size_t{1} << 24;  // 16 MiB
// Free-list depth per size bucket; beyond this, returned buffers are freed.
constexpr std::size_t kMaxBuffersPerBucket = 64;

std::atomic<std::uint64_t> g_copy_count{0};

// Bucket index: bit width of the capacity (so bucket b holds buffers with
// capacity in [2^(b-1), 2^b)).
std::size_t BucketOf(std::size_t size) {
  return static_cast<std::size_t>(std::bit_width(size));
}

}  // namespace

std::uint64_t PayloadChecksum(std::span<const std::byte> bytes) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  const std::size_t n = bytes.size();
  std::size_t i = 0;
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t word;
    std::memcpy(&word, bytes.data() + i, sizeof(word));
    h ^= word;
    h *= kPrime;
  }
  if (i < n) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, bytes.data() + i, n - i);
    h ^= tail;
    h *= kPrime;
  }
  // Fold in the length so a payload truncated at a word boundary (tail
  // bytes happening to be zero) still changes the checksum.
  h ^= static_cast<std::uint64_t>(n);
  h *= kPrime;
  return h;
}

BufferPool& BufferPool::Global() {
  static BufferPool* pool = new BufferPool();  // leaked: outlives all Reps
  return *pool;
}

std::vector<std::byte> BufferPool::Acquire(std::size_t size) {
  if (size > 0 && size <= kMaxPooledBytes) {
    std::lock_guard<std::mutex> lock(mu_);
    // A released buffer's capacity is at least its bucket's lower bound,
    // so anything in the bucket of `size` or above fits without realloc.
    for (std::size_t b = BucketOf(size);
         b < sizeof(free_) / sizeof(free_[0]); ++b) {
      if (!free_[b].empty() && free_[b].back().capacity() >= size) {
        std::vector<std::byte> buffer = std::move(free_[b].back());
        free_[b].pop_back();
        ++hits_;
        buffer.resize(size);
        return buffer;
      }
    }
    ++misses_;
  }
  return std::vector<std::byte>(size);
}

void BufferPool::Release(std::vector<std::byte> buffer) {
  const std::size_t cap = buffer.capacity();
  if (cap == 0 || cap > kMaxPooledBytes) return;
  buffer.clear();
  std::lock_guard<std::mutex> lock(mu_);
  auto& bucket = free_[BucketOf(cap)];
  if (bucket.size() < kMaxBuffersPerBucket) {
    bucket.push_back(std::move(buffer));
  }
}

std::uint64_t BufferPool::CopyCount() {
  return g_copy_count.load(std::memory_order_relaxed);
}

void BufferPool::AddCopy() {
  g_copy_count.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t BufferPool::Hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t BufferPool::Misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

Payload::Rep::~Rep() { BufferPool::Global().Release(std::move(data)); }

Payload Payload::Copy(std::span<const std::byte> bytes) {
  if (bytes.empty()) return Payload();
  BufferPool::AddCopy();
  std::vector<std::byte> buffer = BufferPool::Global().Acquire(bytes.size());
  std::memcpy(buffer.data(), bytes.data(), bytes.size());
  return Payload(std::make_shared<const Rep>(std::move(buffer)));
}

Payload Payload::Adopt(std::vector<std::byte> bytes) {
  if (bytes.empty()) return Payload();
  return Payload(std::make_shared<const Rep>(std::move(bytes)));
}

std::uint64_t Payload::checksum() const {
  if (rep_ == nullptr) return PayloadChecksum({});
  if (rep_->memo_valid.load(std::memory_order_acquire)) {
    return rep_->memo.load(std::memory_order_relaxed);
  }
  const std::uint64_t value = PayloadChecksum(bytes());
  rep_->memo.store(value, std::memory_order_relaxed);
  rep_->memo_valid.store(true, std::memory_order_release);
  return value;
}

}  // namespace pam
