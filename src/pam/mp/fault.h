#ifndef PAM_MP_FAULT_H_
#define PAM_MP_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace pam {

/// Transport fault kinds the communicator can inject on a send attempt.
/// The paper's substrate (MPI on a Cray T3E / IBM SP2) is assumed
/// lossless; this taxonomy covers the ways a real transport breaks that
/// assumption, and each kind maps to the envelope-framing mechanism that
/// detects or repairs it (see DESIGN.md "Fault model").
enum class FaultKind {
  kNone = 0,
  kCorrupt,    // payload bytes flipped; caught by the envelope checksum
  kTruncate,   // payload shortened; caught by the length header
  kDuplicate,  // envelope delivered twice; filtered by the sequence number
  kDrop,       // envelope never delivered; repaired by sender retransmit
  kReorder,    // envelope jumps the mailbox queue; repaired by resequencing
  kStall,      // delivery delayed by stall_ticks_ms (timing only)
};

/// Short display name ("corrupt", "drop", ...).
const char* FaultKindName(FaultKind kind);

/// Why a communicator operation failed.
enum class CommErrorKind {
  /// No intact copy of an expected message arrived before the receive
  /// deadline (the message was lost: every delivery attempt was dropped,
  /// corrupted, or truncated and the retransmit budget ran out).
  kTimeout,
  /// Another rank failed first and the runtime aborted the world; this
  /// rank was woken out of a blocking receive mid-wait.
  kAborted,
};

const char* CommErrorKindName(CommErrorKind kind);

/// Structured transport failure: which rank, waiting on which peer and
/// tag, failed in which way. Thrown by Comm receive paths (including the
/// collectives built on them) and propagated out of Runtime::Run; a
/// mining run under fault injection therefore either completes with
/// exact results or terminates with one of these — never with silently
/// wrong counts.
class CommError : public std::runtime_error {
 public:
  CommError(CommErrorKind kind, int rank, int peer, int tag,
            const std::string& detail);

  CommErrorKind kind() const { return kind_; }
  /// Comm rank of the failing endpoint.
  int rank() const { return rank_; }
  /// Comm rank of the peer being waited on (-1 = any source).
  int peer() const { return peer_; }
  int tag() const { return tag_; }

 private:
  CommErrorKind kind_;
  int rank_;
  int peer_;
  int tag_;
};

/// Knobs of the seed-driven fault schedule. All probabilities are
/// per-delivery-attempt; the kinds are mutually exclusive per attempt
/// (their probabilities are consumed cumulatively, so the sum must be
/// <= 1).
struct FaultConfig {
  /// Master switch. When false the communicator takes the zero-overhead
  /// path: no schedule consultation, no receive deadlines.
  bool enabled = false;
  /// Seed of the deterministic schedule. Two runs with the same seed,
  /// configuration, and program inject byte-identical faults.
  std::uint64_t seed = 0;

  double corrupt_prob = 0.0;
  double truncate_prob = 0.0;
  double duplicate_prob = 0.0;
  double drop_prob = 0.0;
  double reorder_prob = 0.0;
  double stall_prob = 0.0;

  /// Sleep per injected stall, in milliseconds.
  int stall_ticks_ms = 1;
  /// Retransmit budget per message: after a corrupting/truncating/dropping
  /// attempt, the sender re-attempts delivery up to this many extra times
  /// (each retry is itself subject to the schedule). 0 = no retries, so
  /// any such fault loses the message.
  int max_retries = 3;
  /// Receive deadline while fault injection is enabled; a blocking receive
  /// that exceeds it throws CommError(kTimeout). Ignored when disabled
  /// (receives block forever, as the lossless substrate warrants).
  int recv_timeout_ms = 5000;

  /// A config injecting only `kind` at probability `prob`.
  static FaultConfig Uniform(FaultKind kind, double prob, std::uint64_t seed,
                             int max_retries = 3);
  /// A config spreading `total_prob` evenly over all six fault kinds.
  static FaultConfig Mixed(double total_prob, std::uint64_t seed,
                           int max_retries = 3);
};

/// Deterministic per-message fault schedule. The fault for a delivery
/// attempt is a pure function of (seed, src, dst, tag, seq, attempt) —
/// independent of thread interleaving — so a chaos run is reproducible
/// from its seed alone and a failing matrix cell can be replayed exactly.
class FaultPlan {
 public:
  /// Disabled plan (the default for every Runtime).
  FaultPlan() = default;
  explicit FaultPlan(const FaultConfig& config) : config_(config) {}

  bool enabled() const { return config_.enabled; }
  const FaultConfig& config() const { return config_; }

  /// The fault to inject on this delivery attempt (kNone = deliver intact).
  FaultKind Decide(int src_world, int dst_world, int tag, std::uint64_t seq,
                   int attempt) const;

  /// Auxiliary deterministic randomness for shaping an injected fault
  /// (which bytes to flip, how far to truncate), keyed like Decide plus a
  /// salt so it does not correlate with the kind decision.
  std::uint64_t Derive(int src_world, int dst_world, int tag,
                       std::uint64_t seq, int attempt,
                       std::uint64_t salt) const;

 private:
  FaultConfig config_;
};

/// Flips a few payload bytes in place, positions derived from `r`.
/// No-op on an empty payload (the caller substitutes a drop).
void CorruptBytes(std::vector<std::byte>* data, std::uint64_t r);

/// A truncated length strictly smaller than `size` (size must be > 0).
std::size_t TruncatedSize(std::size_t size, std::uint64_t r);

/// Per-world-rank counters of fault activity, exposed through
/// Comm::MyFaultStats() and threaded into PassMetrics by the parallel
/// drivers so bench_robustness can report recovery overhead.
struct CommFaultStats {
  /// Faults the schedule applied to this rank's sends.
  std::uint64_t injected = 0;
  /// Extra delivery attempts this rank's sends made.
  std::uint64_t retries = 0;
  /// Bad envelopes (corrupt, truncated, duplicate) this rank's receives
  /// detected and discarded.
  std::uint64_t detected = 0;
};

}  // namespace pam

#endif  // PAM_MP_FAULT_H_
