#ifndef PAM_MP_PAYLOAD_H_
#define PAM_MP_PAYLOAD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace pam {

/// FNV-1a 64-bit checksum folding 8 payload bytes per multiply (plus a
/// packed tail word and the length). This is the framing checksum of every
/// transport envelope; it is a process-local integrity check, not a wire
/// format, so the host byte order does not matter.
std::uint64_t PayloadChecksum(std::span<const std::byte> bytes);

/// Recycles page-sized byte blocks across transport rounds so the ring
/// pipeline does not churn the allocator: every Payload::Copy draws its
/// backing buffer here and returns it when the last handle drops.
///
/// The pool also owns the transport's copy counter: Payload::Copy is the
/// *only* way bytes enter the transport, so `CopyCount()` counts exactly
/// the payload materializations performed. The `comm_perf` guard test
/// pins ring forwarding to zero per-hop copies through this hook.
class BufferPool {
 public:
  /// The process-wide pool used by all Payload handles.
  static BufferPool& Global();

  /// A buffer of exactly `size` bytes (recycled when one of sufficient
  /// capacity is pooled, freshly allocated otherwise).
  std::vector<std::byte> Acquire(std::size_t size);

  /// Returns a buffer to the pool (dropped if its size bucket is full).
  void Release(std::vector<std::byte> buffer);

  /// Payloads materialized by copying bytes (monotonic, process-wide).
  /// Zero-copy forwarding of a handle never increments this.
  static std::uint64_t CopyCount();

  /// Acquire() calls satisfied from / missed by the free lists.
  std::uint64_t Hits() const;
  std::uint64_t Misses() const;

 private:
  friend class Payload;
  static void AddCopy();

  mutable std::mutex mu_;
  /// Free lists bucketed by power-of-two capacity (index = bit width).
  std::vector<std::vector<std::byte>> free_[48];
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// A refcounted immutable message payload. Handles are cheap to copy and
/// share one buffer; the buffer is never mutated after construction, so a
/// payload can sit in several mailboxes (ring forwarding, duplication
/// faults, one-to-many sends) at once without any aliasing hazard. The
/// framing checksum is computed once per payload — word-at-a-time, on
/// first use — and memoized, so forwarding hops and receiver verification
/// cost a load and a compare, not a recompute.
class Payload {
 public:
  /// Empty payload (zero bytes; HPA's end-of-stream markers).
  Payload() = default;

  /// Materializes a payload by copying `bytes` into a pooled buffer. The
  /// single point where the transport copies message bytes.
  static Payload Copy(std::span<const std::byte> bytes);

  /// Wraps an already-built buffer without copying (fault injection
  /// builds its corrupt/truncate clones explicitly, then adopts them).
  static Payload Adopt(std::vector<std::byte> bytes);

  std::span<const std::byte> bytes() const {
    return rep_ == nullptr
               ? std::span<const std::byte>()
               : std::span<const std::byte>(rep_->data.data(),
                                            rep_->data.size());
  }
  const std::byte* data() const {
    return rep_ == nullptr ? nullptr : rep_->data.data();
  }
  std::size_t size() const { return rep_ == nullptr ? 0 : rep_->data.size(); }
  bool empty() const { return size() == 0; }

  /// Memoized PayloadChecksum of the bytes. Thread-safe: concurrent first
  /// calls compute the same value and race benignly on the memo.
  std::uint64_t checksum() const;

  /// True if both handles share the same buffer (not a content compare).
  bool SharesBufferWith(const Payload& other) const {
    return rep_ == other.rep_ && rep_ != nullptr;
  }

 private:
  struct Rep {
    explicit Rep(std::vector<std::byte> b) : data(std::move(b)) {}
    ~Rep();
    Rep(const Rep&) = delete;
    Rep& operator=(const Rep&) = delete;
    std::vector<std::byte> data;  // never mutated; non-const so ~Rep can
                                  // move it back into the pool
    mutable std::atomic<std::uint64_t> memo{0};
    mutable std::atomic<bool> memo_valid{false};
  };
  explicit Payload(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

  std::shared_ptr<const Rep> rep_;
};

}  // namespace pam

#endif  // PAM_MP_PAYLOAD_H_
