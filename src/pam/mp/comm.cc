#include "pam/mp/comm.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "pam/obs/trace.h"
#include "pam/util/types.h"

namespace pam {
namespace internal_mp {

bool EnvelopeIntact(const Envelope& envelope) {
  return envelope.payload.size() == envelope.declared_size &&
         envelope.payload.checksum() == envelope.checksum;
}

void Mailbox::Put(Envelope envelope, bool front) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (front) {
      queue_.push_front(std::move(envelope));
    } else {
      queue_.push_back(std::move(envelope));
    }
  }
  cv_.notify_all();
}

bool Mailbox::ScanLocked(std::uint64_t comm_id, int src_world, int tag,
                         Envelope* envelope) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->comm_id != comm_id || it->tag != tag ||
        (src_world != -1 && it->src_world != src_world)) {
      ++it;
      continue;
    }
    std::uint64_t& expected =
        expected_seq_[std::make_tuple(comm_id, it->src_world, tag)];
    if (it->seq < expected) {
      // Stale duplicate of an already delivered message.
      it = queue_.erase(it);
      ++discarded_;
      continue;
    }
    if (it->seq > expected) {
      // Hole: an earlier message of this stream is still in flight
      // (reordered behind us, or awaiting retransmit). Deliver it first.
      ++it;
      continue;
    }
    if (!EnvelopeIntact(*it)) {
      // Corrupt or truncated attempt at the head of the stream; discard
      // and keep scanning — an intact retransmit with the same seq may
      // already be queued behind it.
      it = queue_.erase(it);
      ++discarded_;
      continue;
    }
    *envelope = std::move(*it);
    queue_.erase(it);
    ++expected;
    return true;
  }
  return false;
}

Mailbox::TakeStatus Mailbox::TakeFor(std::uint64_t comm_id, int src_world,
                                     int tag, int timeout_ms,
                                     Envelope* envelope) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool finite = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(finite ? timeout_ms : 0);
  for (;;) {
    if (ScanLocked(comm_id, src_world, tag, envelope)) {
      return TakeStatus::kOk;
    }
    if (aborted_) return TakeStatus::kAborted;
    if (finite) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        if (ScanLocked(comm_id, src_world, tag, envelope)) {
          return TakeStatus::kOk;
        }
        return aborted_ ? TakeStatus::kAborted : TakeStatus::kTimeout;
      }
    } else {
      cv_.wait(lock);
    }
  }
}

Mailbox::TakeStatus Mailbox::TryTake(std::uint64_t comm_id, int src_world,
                                     int tag, Envelope* envelope) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ScanLocked(comm_id, src_world, tag, envelope)) {
    return TakeStatus::kOk;
  }
  return aborted_ ? TakeStatus::kAborted : TakeStatus::kTimeout;
}

void Mailbox::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
  }
  cv_.notify_all();
}

void Mailbox::ResetAbort() {
  std::lock_guard<std::mutex> lock(mu_);
  aborted_ = false;
}

std::uint64_t Mailbox::DiscardedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return discarded_;
}

WorldState::WorldState(int n)
    : num_ranks(n),
      mailboxes(static_cast<std::size_t>(n)),
      bytes_sent(static_cast<std::size_t>(n)),
      messages_sent(static_cast<std::size_t>(n)),
      senders(static_cast<std::size_t>(n)),
      faults_injected(static_cast<std::size_t>(n)),
      send_retries(static_cast<std::size_t>(n)) {
  for (auto& b : bytes_sent) b.store(0);
  for (auto& m : messages_sent) m.store(0);
  for (auto& f : faults_injected) f.store(0);
  for (auto& r : send_retries) r.store(0);
}

void WorldState::Abort() {
  for (Mailbox& box : mailboxes) box.Shutdown();
}

void WorldState::ResetAbort() {
  for (Mailbox& box : mailboxes) box.ResetAbort();
}

}  // namespace internal_mp

namespace {

// Reserved tag space for collectives so they never collide with user tags
// (user tags must be < kCollectiveBase; all library call sites use small
// positive tags).
constexpr int kCollectiveBase = 0x40000000;
constexpr int kBarrierToken = kCollectiveBase + 0;
constexpr int kBarrierRelease = kCollectiveBase + 1;
constexpr int kReduceTag = kCollectiveBase + 2;
constexpr int kGatherTag = kCollectiveBase + 4;
constexpr int kBcastTag = kCollectiveBase + 6;

std::span<const std::byte> WordsAsBytes(std::span<const std::uint64_t> s) {
  return std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(s.data()),
      s.size() * sizeof(std::uint64_t));
}

}  // namespace

Comm::Comm(std::shared_ptr<internal_mp::WorldState> world,
           std::uint64_t comm_id, std::vector<int> members, int rank)
    : world_(std::move(world)),
      comm_id_(comm_id),
      members_(std::move(members)),
      world_to_comm_(static_cast<std::size_t>(world_->num_ranks), -1),
      rank_(rank) {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    world_to_comm_[static_cast<std::size_t>(members_[i])] =
        static_cast<int>(i);
  }
}

void Comm::Send(int dst, int tag, Payload payload) {
  assert(dst >= 0 && dst < size());
  const int src_world = WorldRankOf(rank_);
  const int dst_world = WorldRankOf(dst);
  // Sequence numbers are per (comm, src, dst, tag) stream; only this
  // rank's thread touches its own sender state, so no lock is needed.
  std::uint64_t& seq_counter =
      world_->senders[static_cast<std::size_t>(src_world)]
          .next_seq[std::make_tuple(comm_id_, dst_world, tag)];
  const std::uint64_t seq = seq_counter++;
  // Traffic counters record the logical payload once, whatever the fault
  // schedule does to its delivery — figure benches stay exact.
  world_->bytes_sent[static_cast<std::size_t>(src_world)] += payload.size();
  world_->messages_sent[static_cast<std::size_t>(src_world)] += 1;
  internal_mp::Mailbox& box =
      world_->mailboxes[static_cast<std::size_t>(dst_world)];

  // Header checksum of the *intact* payload: memoized inside the handle,
  // so a forwarded payload never recomputes it.
  const std::uint64_t checksum = payload.checksum();
  const std::uint64_t declared_size = payload.size();
  auto make_envelope = [&](Payload body) {
    internal_mp::Envelope env;
    env.comm_id = comm_id_;
    env.src_world = src_world;
    env.tag = tag;
    env.seq = seq;
    env.declared_size = declared_size;
    env.checksum = checksum;
    env.payload = std::move(body);
    return env;
  };

  const FaultPlan& plan = world_->fault_plan;
  if (!plan.enabled()) {
    box.Put(make_envelope(std::move(payload)));
    return;
  }

  const int max_attempts = 1 + std::max(0, plan.config().max_retries);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      world_->send_retries[static_cast<std::size_t>(src_world)] += 1;
      if (obs::RankTracer* tracer = obs::CurrentTracer()) {
        tracer->EmitInstant(obs::SpanKind::kFaultRetry, "retransmit");
      }
    }
    FaultKind fault = plan.Decide(src_world, dst_world, tag, seq, attempt);
    if (payload.empty() &&
        (fault == FaultKind::kCorrupt || fault == FaultKind::kTruncate)) {
      fault = FaultKind::kDrop;  // nothing to mutilate in an empty payload
    }
    if (fault != FaultKind::kNone) {
      world_->faults_injected[static_cast<std::size_t>(src_world)] += 1;
    }
    switch (fault) {
      case FaultKind::kNone:
        box.Put(make_envelope(payload));
        return;
      case FaultKind::kCorrupt: {
        // Copy-on-write: clone the shared bytes only now that the fault
        // actually fires, then mutilate the private clone. The clone's
        // own (lazily computed) checksum will mismatch the header.
        std::vector<std::byte> clone(payload.bytes().begin(),
                                     payload.bytes().end());
        CorruptBytes(&clone,
                     plan.Derive(src_world, dst_world, tag, seq, attempt, 1));
        box.Put(make_envelope(Payload::Adopt(std::move(clone))));
        break;  // detected at the receiver; retransmit
      }
      case FaultKind::kTruncate: {
        std::vector<std::byte> clone(payload.bytes().begin(),
                                     payload.bytes().end());
        clone.resize(TruncatedSize(
            clone.size(),
            plan.Derive(src_world, dst_world, tag, seq, attempt, 2)));
        box.Put(make_envelope(Payload::Adopt(std::move(clone))));
        break;  // detected at the receiver; retransmit
      }
      case FaultKind::kDrop:
        break;  // never delivered; retransmit
      case FaultKind::kDuplicate:
        box.Put(make_envelope(payload));
        box.Put(make_envelope(payload));  // second copy filtered by seq
        return;
      case FaultKind::kReorder:
        box.Put(make_envelope(payload),
                /*front=*/true);  // resequenced at receiver
        return;
      case FaultKind::kStall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(plan.config().stall_ticks_ms));
        box.Put(make_envelope(std::move(payload)));
        return;
    }
  }
  // Retransmit budget exhausted without an intact delivery: the message is
  // lost. The receiver's deadline converts this into CommError{kTimeout}.
}

void Comm::ThrowTakeFailure(internal_mp::Mailbox::TakeStatus status, int src,
                            int tag) const {
  using TakeStatus = internal_mp::Mailbox::TakeStatus;
  const CommErrorKind kind = status == TakeStatus::kTimeout
                                 ? CommErrorKind::kTimeout
                                 : CommErrorKind::kAborted;
  throw CommError(
      kind, rank_, src, tag,
      status == TakeStatus::kTimeout
          ? "no intact message arrived before the receive deadline (comm " +
                std::to_string(comm_id_) + ")"
          : "world aborted while waiting (comm " + std::to_string(comm_id_) +
                ")");
}

namespace {

/// Slice width of a cancellable blocking receive: a fired token unblocks
/// the waiting rank within this bound, whatever the peer is doing.
constexpr int kCancelPollMs = 10;

}  // namespace

Payload Comm::RecvPayload(int src, int tag, int* actual_src) {
  const int src_world = src == -1 ? -1 : WorldRankOf(src);
  const int timeout_ms = world_->fault_plan.enabled()
                             ? world_->fault_plan.config().recv_timeout_ms
                             : -1;
  internal_mp::Mailbox& box =
      world_->mailboxes[static_cast<std::size_t>(WorldRankOf(rank_))];
  internal_mp::Envelope env;
  internal_mp::Mailbox::TakeStatus status;
  const CancelToken& cancel = world_->cancel;
  if (!cancel.valid()) {
    status = box.TakeFor(comm_id_, src_world, tag, timeout_ms, &env);
  } else {
    // Cancellable wait: take in bounded slices and re-check the token
    // between slices. The token is checked, never beaten, here — a rank
    // blocked on a stalled peer makes no progress, and the serve watchdog
    // reads exactly that from the missing heartbeats.
    const bool finite = timeout_ms >= 0;
    const auto recv_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(finite ? timeout_ms : 0);
    for (;;) {
      if (const CancelReason reason = cancel.Check();
          reason != CancelReason::kNone) {
        if (obs::RankTracer* tracer = obs::CurrentTracer()) {
          tracer->EmitInstant(obs::SpanKind::kCancel,
                              CancelReasonName(reason));
        }
        throw CancelledError(reason, WorldRankOf(rank_),
                             "receive abandoned (tag " + std::to_string(tag) +
                                 ", comm " + std::to_string(comm_id_) + ")");
      }
      int slice_ms = kCancelPollMs;
      if (finite) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                recv_deadline - std::chrono::steady_clock::now())
                .count();
        if (remaining <= 0) {
          status = internal_mp::Mailbox::TakeStatus::kTimeout;
          break;
        }
        slice_ms = static_cast<int>(
            std::min<long long>(remaining, kCancelPollMs));
      }
      status = box.TakeFor(comm_id_, src_world, tag, slice_ms, &env);
      if (status != internal_mp::Mailbox::TakeStatus::kTimeout) break;
    }
  }
  if (status != internal_mp::Mailbox::TakeStatus::kOk) {
    ThrowTakeFailure(status, src, tag);
  }
  if (actual_src != nullptr) *actual_src = CommRankOfWorld(env.src_world);
  return std::move(env.payload);
}

bool Comm::TryRecvPayload(int src, int tag, Payload* payload,
                          int* actual_src) {
  const int src_world = src == -1 ? -1 : WorldRankOf(src);
  internal_mp::Envelope env;
  const auto status =
      world_->mailboxes[static_cast<std::size_t>(WorldRankOf(rank_))].TryTake(
          comm_id_, src_world, tag, &env);
  if (status == internal_mp::Mailbox::TakeStatus::kAborted) {
    ThrowTakeFailure(status, src, tag);
  }
  if (status != internal_mp::Mailbox::TakeStatus::kOk) return false;
  if (actual_src != nullptr) *actual_src = CommRankOfWorld(env.src_world);
  *payload = std::move(env.payload);
  return true;
}

RecvRequest Comm::Irecv(int src, int tag) {
  RecvRequest req;
  req.src_ = src;
  req.tag_ = tag;
  req.posted_ = true;
  return req;
}

bool Comm::Test(RecvRequest& request) {
  if (request.done_) return true;
  assert(request.posted_ && "Test on a request that was never posted");
  Payload payload;
  if (!TryRecvPayload(request.src_, request.tag_, &payload)) return false;
  request.payload_ = std::move(payload);
  request.done_ = true;
  return true;
}

void Comm::Wait(RecvRequest& request) {
  if (request.done_) return;
  assert(request.posted_ && "Wait on a request that was never posted");
  request.payload_ = RecvPayload(request.src_, request.tag_);
  request.done_ = true;
}

void Comm::Barrier() {
  if (size() == 1) return;
  obs::ScopedSpan span(obs::SpanKind::kCollective, -1, "barrier");
  const std::byte token{0};
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      (void)RecvPayload(r, kBarrierToken);
    }
    for (int r = 1; r < size(); ++r) {
      Send(r, kBarrierRelease, std::span<const std::byte>(&token, 1));
    }
  } else {
    Send(0, kBarrierToken, std::span<const std::byte>(&token, 1));
    (void)RecvPayload(0, kBarrierRelease);
  }
}

namespace {

using ReduceOp = void (*)(std::uint64_t*, const std::uint64_t*, std::size_t);

void SumWords(std::uint64_t* inout, const std::uint64_t* other,
              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) inout[i] += other[i];
}

void MaxWords(std::uint64_t* inout, const std::uint64_t* other,
              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) inout[i] = std::max(inout[i], other[i]);
}

/// log2(P)-round all-reduce for any group size (the schedule the cost
/// model charges for the paper's "global reduction"): the `rem = P -
/// 2^floor(log2 P)` surplus ranks first fold their vectors into a
/// neighbor, the remaining power-of-two core recursive-doubles, and the
/// folded ranks receive the finished result back. Every exchanged blob is
/// length-checked against the local vector before it is read — the wire
/// size is never trusted.
void AllReduceWith(Comm& comm, std::span<std::uint64_t> inout, ReduceOp op) {
  const int p = comm.size();
  if (p == 1) return;
  obs::ScopedSpan span(obs::SpanKind::kCollective,
                       static_cast<std::int64_t>(inout.size()), "allreduce");
  const int rank = comm.rank();

  auto accumulate = [&](const Payload& blob) {
    assert(blob.size() == inout.size() * sizeof(std::uint64_t) &&
           "reduction payload size mismatch");
    op(inout.data(), reinterpret_cast<const std::uint64_t*>(blob.data()),
       inout.size());
  };

  int pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  const int rem = p - pof2;

  // Fold the surplus: the first 2*rem ranks pair up (even absorbs odd) so
  // exactly pof2 ranks carry partial sums into the doubling rounds.
  int core_rank;  // rank within the power-of-two core, -1 if folded out
  if (rank < 2 * rem) {
    if (rank % 2 == 0) {
      accumulate(comm.RecvPayload(rank + 1, kReduceTag));
      core_rank = rank / 2;
    } else {
      comm.Send(rank - 1, kReduceTag, WordsAsBytes(inout));
      core_rank = -1;
    }
  } else {
    core_rank = rank - rem;
  }

  if (core_rank >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner_core = core_rank ^ mask;
      const int partner =
          partner_core < rem ? partner_core * 2 : partner_core + rem;
      comm.Send(partner, kReduceTag, WordsAsBytes(inout));
      accumulate(comm.RecvPayload(partner, kReduceTag));
    }
  }

  // Unfold: hand the finished vector back to the folded-out odd ranks.
  if (rank < 2 * rem) {
    if (rank % 2 == 0) {
      comm.Send(rank + 1, kReduceTag, WordsAsBytes(inout));
    } else {
      const Payload result = comm.RecvPayload(rank - 1, kReduceTag);
      assert(result.size() == inout.size() * sizeof(std::uint64_t) &&
             "reduction payload size mismatch");
      std::memcpy(inout.data(), result.data(),
                  inout.size() * sizeof(std::uint64_t));
    }
  }
}

}  // namespace

void Comm::AllReduceSum(std::span<std::uint64_t> inout) {
  AllReduceWith(*this, inout, SumWords);
}

void Comm::AllReduceMax(std::span<std::uint64_t> inout) {
  AllReduceWith(*this, inout, MaxWords);
}

std::vector<Payload> Comm::AllGatherPayload(Payload mine) {
  const int p = size();
  std::vector<Payload> out(static_cast<std::size_t>(p));
  out[static_cast<std::size_t>(rank_)] = std::move(mine);
  if (p == 1) return out;
  obs::ScopedSpan span(obs::SpanKind::kCollective, -1, "allgather");

  // Ring all-gather (the paper's "all-to-all broadcast" from [9]): P-1
  // steps; at step s every rank forwards the block it received at step
  // s-1 (starting from its own) to its right neighbor. The forwarded
  // block is the same payload handle every hop — no copies, no checksum
  // recomputes. Total traffic per rank equals the sum of all blocks, with
  // no contention.
  int incoming_owner = rank_;
  for (int step = 0; step < p - 1; ++step) {
    Isend(RightNeighbor(), kGatherTag,
          out[static_cast<std::size_t>(incoming_owner)]);
    incoming_owner = (incoming_owner + p - 1) % p;
    out[static_cast<std::size_t>(incoming_owner)] =
        RecvPayload(LeftNeighbor(), kGatherTag);
  }
  return out;
}

std::vector<std::vector<std::byte>> Comm::AllGather(
    std::span<const std::byte> mine) {
  std::vector<Payload> payloads = AllGatherPayload(Payload::Copy(mine));
  std::vector<std::vector<std::byte>> out;
  out.reserve(payloads.size());
  for (const Payload& payload : payloads) {
    out.emplace_back(payload.bytes().begin(), payload.bytes().end());
  }
  return out;
}

Payload Comm::BcastPayload(int root, Payload data) {
  const int p = size();
  if (p == 1) return data;
  obs::ScopedSpan span(obs::SpanKind::kCollective, -1, "bcast");

  // Binomial tree rooted at `root` over virtual ranks vrank = (rank -
  // root) mod P: a non-root receives once from the peer that clears its
  // lowest set bit, then every holder forwards down the remaining bit
  // positions. log2(P) depth, and interior nodes pass the received handle
  // along unchanged.
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int src = (vrank - mask + root) % p;
      data = RecvPayload(src, kBcastTag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p && (vrank & mask) == 0) {
      const int dst = (vrank + mask + root) % p;
      Isend(dst, kBcastTag, data);
    }
    mask >>= 1;
  }
  return data;
}

std::vector<std::byte> Comm::Bcast(int root,
                                   std::span<const std::byte> data) {
  Payload payload =
      rank_ == root ? Payload::Copy(data) : Payload();
  payload = BcastPayload(root, std::move(payload));
  return std::vector<std::byte>(payload.bytes().begin(),
                                payload.bytes().end());
}

Comm Comm::Sub(const std::vector<int>& member_ranks,
               std::uint64_t label) const {
  std::vector<int> world_members;
  world_members.reserve(member_ranks.size());
  int my_new_rank = -1;
  for (std::size_t i = 0; i < member_ranks.size(); ++i) {
    assert(member_ranks[i] >= 0 && member_ranks[i] < size());
    world_members.push_back(WorldRankOf(member_ranks[i]));
    if (member_ranks[i] == rank_) my_new_rank = static_cast<int>(i);
  }
  assert(my_new_rank >= 0 && "Sub() caller must be a member");

  // Deterministic id: every member computes the same hash locally.
  std::uint64_t id = comm_id_ * 0x9e3779b97f4a7c15ULL + label;
  for (int w : world_members) {
    id ^= static_cast<std::uint64_t>(w) + 0x9e3779b97f4a7c15ULL +
          (id << 6) + (id >> 2);
  }
  return Comm(world_, id, std::move(world_members), my_new_rank);
}

std::uint64_t Comm::MyBytesSent() const {
  return world_->bytes_sent[static_cast<std::size_t>(WorldRankOf(rank_))]
      .load();
}

CommFaultStats Comm::MyFaultStats() const {
  const auto me = static_cast<std::size_t>(WorldRankOf(rank_));
  CommFaultStats stats;
  stats.injected = world_->faults_injected[me].load();
  stats.retries = world_->send_retries[me].load();
  stats.detected = world_->mailboxes[me].DiscardedCount();
  return stats;
}

}  // namespace pam
