#include "pam/mp/comm.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "pam/util/types.h"

namespace pam {
namespace internal_mp {

std::uint64_t EnvelopeChecksum(std::span<const std::byte> data) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

bool EnvelopeIntact(const Envelope& envelope) {
  return envelope.data.size() == envelope.declared_size &&
         EnvelopeChecksum(std::span<const std::byte>(envelope.data.data(),
                                                     envelope.data.size())) ==
             envelope.checksum;
}

void Mailbox::Put(Envelope envelope, bool front) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (front) {
      queue_.push_front(std::move(envelope));
    } else {
      queue_.push_back(std::move(envelope));
    }
  }
  cv_.notify_all();
}

bool Mailbox::ScanLocked(std::uint64_t comm_id, int src_world, int tag,
                         Envelope* envelope) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->comm_id != comm_id || it->tag != tag ||
        (src_world != -1 && it->src_world != src_world)) {
      ++it;
      continue;
    }
    std::uint64_t& expected =
        expected_seq_[std::make_tuple(comm_id, it->src_world, tag)];
    if (it->seq < expected) {
      // Stale duplicate of an already delivered message.
      it = queue_.erase(it);
      ++discarded_;
      continue;
    }
    if (it->seq > expected) {
      // Hole: an earlier message of this stream is still in flight
      // (reordered behind us, or awaiting retransmit). Deliver it first.
      ++it;
      continue;
    }
    if (!EnvelopeIntact(*it)) {
      // Corrupt or truncated attempt at the head of the stream; discard
      // and keep scanning — an intact retransmit with the same seq may
      // already be queued behind it.
      it = queue_.erase(it);
      ++discarded_;
      continue;
    }
    *envelope = std::move(*it);
    queue_.erase(it);
    ++expected;
    return true;
  }
  return false;
}

Mailbox::TakeStatus Mailbox::TakeFor(std::uint64_t comm_id, int src_world,
                                     int tag, int timeout_ms,
                                     Envelope* envelope) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool finite = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(finite ? timeout_ms : 0);
  for (;;) {
    if (ScanLocked(comm_id, src_world, tag, envelope)) {
      return TakeStatus::kOk;
    }
    if (aborted_) return TakeStatus::kAborted;
    if (finite) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        if (ScanLocked(comm_id, src_world, tag, envelope)) {
          return TakeStatus::kOk;
        }
        return aborted_ ? TakeStatus::kAborted : TakeStatus::kTimeout;
      }
    } else {
      cv_.wait(lock);
    }
  }
}

Mailbox::TakeStatus Mailbox::TryTake(std::uint64_t comm_id, int src_world,
                                     int tag, Envelope* envelope) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ScanLocked(comm_id, src_world, tag, envelope)) {
    return TakeStatus::kOk;
  }
  return aborted_ ? TakeStatus::kAborted : TakeStatus::kTimeout;
}

void Mailbox::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
  }
  cv_.notify_all();
}

void Mailbox::ResetAbort() {
  std::lock_guard<std::mutex> lock(mu_);
  aborted_ = false;
}

std::uint64_t Mailbox::DiscardedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return discarded_;
}

WorldState::WorldState(int n)
    : num_ranks(n),
      mailboxes(static_cast<std::size_t>(n)),
      bytes_sent(static_cast<std::size_t>(n)),
      messages_sent(static_cast<std::size_t>(n)),
      senders(static_cast<std::size_t>(n)),
      faults_injected(static_cast<std::size_t>(n)),
      send_retries(static_cast<std::size_t>(n)) {
  for (auto& b : bytes_sent) b.store(0);
  for (auto& m : messages_sent) m.store(0);
  for (auto& f : faults_injected) f.store(0);
  for (auto& r : send_retries) r.store(0);
}

void WorldState::Abort() {
  for (Mailbox& box : mailboxes) box.Shutdown();
}

void WorldState::ResetAbort() {
  for (Mailbox& box : mailboxes) box.ResetAbort();
}

}  // namespace internal_mp

namespace {

// Reserved tag space for collectives so they never collide with user tags
// (user tags must be < kCollectiveBase; all library call sites use small
// positive tags).
constexpr int kCollectiveBase = 0x40000000;
constexpr int kBarrierToken = kCollectiveBase + 0;
constexpr int kBarrierRelease = kCollectiveBase + 1;
constexpr int kReduceTag = kCollectiveBase + 2;
constexpr int kGatherTag = kCollectiveBase + 4;
constexpr int kBcastTag = kCollectiveBase + 6;

}  // namespace

void Comm::Send(int dst, int tag, std::span<const std::byte> data) {
  assert(dst >= 0 && dst < size());
  const int src_world = WorldRankOf(rank_);
  const int dst_world = WorldRankOf(dst);
  // Sequence numbers are per (comm, src, dst, tag) stream; only this
  // rank's thread touches its own sender state, so no lock is needed.
  std::uint64_t& seq_counter =
      world_->senders[static_cast<std::size_t>(src_world)]
          .next_seq[std::make_tuple(comm_id_, dst_world, tag)];
  const std::uint64_t seq = seq_counter++;
  // Traffic counters record the logical payload once, whatever the fault
  // schedule does to its delivery — figure benches stay exact.
  world_->bytes_sent[static_cast<std::size_t>(src_world)] += data.size();
  world_->messages_sent[static_cast<std::size_t>(src_world)] += 1;
  internal_mp::Mailbox& box =
      world_->mailboxes[static_cast<std::size_t>(dst_world)];

  auto make_envelope = [&] {
    internal_mp::Envelope env;
    env.comm_id = comm_id_;
    env.src_world = src_world;
    env.tag = tag;
    env.seq = seq;
    env.declared_size = data.size();
    env.checksum = internal_mp::EnvelopeChecksum(data);
    env.data.assign(data.begin(), data.end());
    return env;
  };

  const FaultPlan& plan = world_->fault_plan;
  if (!plan.enabled()) {
    box.Put(make_envelope());
    return;
  }

  const int max_attempts = 1 + std::max(0, plan.config().max_retries);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      world_->send_retries[static_cast<std::size_t>(src_world)] += 1;
    }
    FaultKind fault = plan.Decide(src_world, dst_world, tag, seq, attempt);
    if (data.empty() &&
        (fault == FaultKind::kCorrupt || fault == FaultKind::kTruncate)) {
      fault = FaultKind::kDrop;  // nothing to mutilate in an empty payload
    }
    if (fault != FaultKind::kNone) {
      world_->faults_injected[static_cast<std::size_t>(src_world)] += 1;
    }
    switch (fault) {
      case FaultKind::kNone:
        box.Put(make_envelope());
        return;
      case FaultKind::kCorrupt: {
        internal_mp::Envelope env = make_envelope();
        CorruptBytes(&env.data,
                     plan.Derive(src_world, dst_world, tag, seq, attempt, 1));
        box.Put(std::move(env));
        break;  // detected at the receiver; retransmit
      }
      case FaultKind::kTruncate: {
        internal_mp::Envelope env = make_envelope();
        env.data.resize(TruncatedSize(
            env.data.size(),
            plan.Derive(src_world, dst_world, tag, seq, attempt, 2)));
        box.Put(std::move(env));
        break;  // detected at the receiver; retransmit
      }
      case FaultKind::kDrop:
        break;  // never delivered; retransmit
      case FaultKind::kDuplicate:
        box.Put(make_envelope());
        box.Put(make_envelope());  // second copy filtered by seq
        return;
      case FaultKind::kReorder:
        box.Put(make_envelope(), /*front=*/true);  // resequenced at receiver
        return;
      case FaultKind::kStall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(plan.config().stall_ticks_ms));
        box.Put(make_envelope());
        return;
    }
  }
  // Retransmit budget exhausted without an intact delivery: the message is
  // lost. The receiver's deadline converts this into CommError{kTimeout}.
}

void Comm::ThrowTakeFailure(internal_mp::Mailbox::TakeStatus status, int src,
                            int tag) const {
  using TakeStatus = internal_mp::Mailbox::TakeStatus;
  const CommErrorKind kind = status == TakeStatus::kTimeout
                                 ? CommErrorKind::kTimeout
                                 : CommErrorKind::kAborted;
  throw CommError(
      kind, rank_, src, tag,
      status == TakeStatus::kTimeout
          ? "no intact message arrived before the receive deadline (comm " +
                std::to_string(comm_id_) + ")"
          : "world aborted while waiting (comm " + std::to_string(comm_id_) +
                ")");
}

std::vector<std::byte> Comm::Recv(int src, int tag, int* actual_src) {
  const int src_world = src == -1 ? -1 : WorldRankOf(src);
  const int timeout_ms = world_->fault_plan.enabled()
                             ? world_->fault_plan.config().recv_timeout_ms
                             : -1;
  internal_mp::Envelope env;
  const auto status =
      world_->mailboxes[static_cast<std::size_t>(WorldRankOf(rank_))].TakeFor(
          comm_id_, src_world, tag, timeout_ms, &env);
  if (status != internal_mp::Mailbox::TakeStatus::kOk) {
    ThrowTakeFailure(status, src, tag);
  }
  if (actual_src != nullptr) *actual_src = CommRankOfWorld(env.src_world);
  return std::move(env.data);
}

bool Comm::TryRecv(int src, int tag, std::vector<std::byte>* data,
                   int* actual_src) {
  const int src_world = src == -1 ? -1 : WorldRankOf(src);
  internal_mp::Envelope env;
  const auto status =
      world_->mailboxes[static_cast<std::size_t>(WorldRankOf(rank_))].TryTake(
          comm_id_, src_world, tag, &env);
  if (status == internal_mp::Mailbox::TakeStatus::kAborted) {
    ThrowTakeFailure(status, src, tag);
  }
  if (status != internal_mp::Mailbox::TakeStatus::kOk) return false;
  if (actual_src != nullptr) *actual_src = CommRankOfWorld(env.src_world);
  *data = std::move(env.data);
  return true;
}

RecvRequest Comm::Irecv(int src, int tag) {
  RecvRequest req;
  req.src_ = src;
  req.tag_ = tag;
  return req;
}

void Comm::Wait(RecvRequest& request) {
  if (request.done_) return;
  request.data_ = Recv(request.src_, request.tag_);
  request.done_ = true;
}

void Comm::Barrier() {
  if (size() == 1) return;
  const std::byte token{0};
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      (void)Recv(r, kBarrierToken);
    }
    for (int r = 1; r < size(); ++r) {
      Send(r, kBarrierRelease, std::span<const std::byte>(&token, 1));
    }
  } else {
    Send(0, kBarrierToken, std::span<const std::byte>(&token, 1));
    (void)Recv(0, kBarrierRelease);
  }
}

void Comm::AllReduceSum(std::span<std::uint64_t> inout) {
  const int p = size();
  if (p == 1) return;
  auto as_bytes = [](std::span<std::uint64_t> s) {
    return std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(s.data()),
        s.size() * sizeof(std::uint64_t));
  };

  // Recursive doubling when the group is a power of two: log2(P) exchange
  // stages, each moving the whole vector — the schedule the cost model
  // charges for the paper's "global reduction".
  if ((p & (p - 1)) == 0) {
    for (int mask = 1; mask < p; mask <<= 1) {
      const int partner = rank_ ^ mask;
      // Stagger send/recv by rank order to keep pairings unambiguous.
      Send(partner, kReduceTag, as_bytes(inout));
      std::vector<std::byte> raw = Recv(partner, kReduceTag);
      assert(raw.size() == inout.size() * sizeof(std::uint64_t));
      const auto* vals = reinterpret_cast<const std::uint64_t*>(raw.data());
      for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += vals[i];
    }
    return;
  }

  // General group sizes: gather to the group root, sum, broadcast back.
  if (rank_ == 0) {
    for (int r = 1; r < p; ++r) {
      std::vector<std::byte> raw = Recv(r, kReduceTag);
      assert(raw.size() == inout.size() * sizeof(std::uint64_t));
      const auto* vals = reinterpret_cast<const std::uint64_t*>(raw.data());
      for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += vals[i];
    }
    for (int r = 1; r < p; ++r) {
      Send(r, kBcastTag, as_bytes(inout));
    }
  } else {
    Send(0, kReduceTag, as_bytes(inout));
    std::vector<std::byte> raw = Recv(0, kBcastTag);
    std::memcpy(inout.data(), raw.data(), raw.size());
  }
}

std::vector<std::vector<std::byte>> Comm::AllGather(
    std::span<const std::byte> mine) {
  const int p = size();
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
  out[static_cast<std::size_t>(rank_)].assign(mine.begin(), mine.end());
  if (p == 1) return out;

  // Ring all-gather (the paper's "all-to-all broadcast" from [9]): P-1
  // steps; at step s every rank forwards the block it received at step
  // s-1 (starting from its own) to its right neighbor. Total traffic per
  // rank equals the sum of all blocks, with no contention.
  int incoming_owner = rank_;
  for (int step = 0; step < p - 1; ++step) {
    const std::vector<std::byte>& to_send =
        out[static_cast<std::size_t>(incoming_owner)];
    Isend(RightNeighbor(), kGatherTag,
          std::span<const std::byte>(to_send.data(), to_send.size()));
    incoming_owner = (incoming_owner + p - 1) % p;
    out[static_cast<std::size_t>(incoming_owner)] =
        Recv(LeftNeighbor(), kGatherTag);
  }
  return out;
}

std::vector<std::byte> Comm::Bcast(int root,
                                   std::span<const std::byte> data) {
  if (size() == 1) return std::vector<std::byte>(data.begin(), data.end());
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) Send(r, kBcastTag, data);
    }
    return std::vector<std::byte>(data.begin(), data.end());
  }
  return Recv(root, kBcastTag);
}

Comm Comm::Sub(const std::vector<int>& member_ranks,
               std::uint64_t label) const {
  std::vector<int> world_members;
  world_members.reserve(member_ranks.size());
  int my_new_rank = -1;
  for (std::size_t i = 0; i < member_ranks.size(); ++i) {
    assert(member_ranks[i] >= 0 && member_ranks[i] < size());
    world_members.push_back(WorldRankOf(member_ranks[i]));
    if (member_ranks[i] == rank_) my_new_rank = static_cast<int>(i);
  }
  assert(my_new_rank >= 0 && "Sub() caller must be a member");

  // Deterministic id: every member computes the same hash locally.
  std::uint64_t id = comm_id_ * 0x9e3779b97f4a7c15ULL + label;
  for (int w : world_members) {
    id ^= static_cast<std::uint64_t>(w) + 0x9e3779b97f4a7c15ULL +
          (id << 6) + (id >> 2);
  }
  return Comm(world_, id, std::move(world_members), my_new_rank);
}

int Comm::CommRankOfWorld(int world_rank) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == world_rank) return static_cast<int>(i);
  }
  return -1;
}

std::uint64_t Comm::MyBytesSent() const {
  return world_->bytes_sent[static_cast<std::size_t>(WorldRankOf(rank_))]
      .load();
}

CommFaultStats Comm::MyFaultStats() const {
  const auto me = static_cast<std::size_t>(WorldRankOf(rank_));
  CommFaultStats stats;
  stats.injected = world_->faults_injected[me].load();
  stats.retries = world_->send_retries[me].load();
  stats.detected = world_->mailboxes[me].DiscardedCount();
  return stats;
}

}  // namespace pam
