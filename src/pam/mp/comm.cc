#include "pam/mp/comm.h"

#include <algorithm>
#include <cassert>

#include "pam/util/types.h"

namespace pam {
namespace internal_mp {

void Mailbox::Put(Envelope envelope) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(envelope));
  }
  cv_.notify_all();
}

Envelope Mailbox::Take(std::uint64_t comm_id, int src_world, int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->comm_id == comm_id && it->tag == tag &&
          (src_world == -1 || it->src_world == src_world)) {
        Envelope out = std::move(*it);
        queue_.erase(it);
        return out;
      }
    }
    cv_.wait(lock);
  }
}

bool Mailbox::TryTake(std::uint64_t comm_id, int src_world, int tag,
                      Envelope* envelope) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->comm_id == comm_id && it->tag == tag &&
        (src_world == -1 || it->src_world == src_world)) {
      *envelope = std::move(*it);
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

WorldState::WorldState(int n)
    : num_ranks(n),
      mailboxes(static_cast<std::size_t>(n)),
      bytes_sent(static_cast<std::size_t>(n)),
      messages_sent(static_cast<std::size_t>(n)) {
  for (auto& b : bytes_sent) b.store(0);
  for (auto& m : messages_sent) m.store(0);
}

}  // namespace internal_mp

namespace {

// Reserved tag space for collectives so they never collide with user tags
// (user tags must be < kCollectiveBase; all library call sites use small
// positive tags).
constexpr int kCollectiveBase = 0x40000000;
constexpr int kBarrierToken = kCollectiveBase + 0;
constexpr int kBarrierRelease = kCollectiveBase + 1;
constexpr int kReduceTag = kCollectiveBase + 2;
constexpr int kGatherTag = kCollectiveBase + 4;
constexpr int kBcastTag = kCollectiveBase + 6;

}  // namespace

void Comm::Send(int dst, int tag, std::span<const std::byte> data) {
  assert(dst >= 0 && dst < size());
  assert(tag < kCollectiveBase || tag >= kCollectiveBase);
  internal_mp::Envelope env;
  env.comm_id = comm_id_;
  env.src_world = WorldRankOf(rank_);
  env.tag = tag;
  env.data.assign(data.begin(), data.end());
  const int dst_world = WorldRankOf(dst);
  world_->bytes_sent[static_cast<std::size_t>(env.src_world)] += data.size();
  world_->messages_sent[static_cast<std::size_t>(env.src_world)] += 1;
  world_->mailboxes[static_cast<std::size_t>(dst_world)].Put(std::move(env));
}

std::vector<std::byte> Comm::Recv(int src, int tag, int* actual_src) {
  const int src_world = src == -1 ? -1 : WorldRankOf(src);
  internal_mp::Envelope env =
      world_->mailboxes[static_cast<std::size_t>(WorldRankOf(rank_))].Take(
          comm_id_, src_world, tag);
  if (actual_src != nullptr) *actual_src = CommRankOfWorld(env.src_world);
  return std::move(env.data);
}

bool Comm::TryRecv(int src, int tag, std::vector<std::byte>* data,
                   int* actual_src) {
  const int src_world = src == -1 ? -1 : WorldRankOf(src);
  internal_mp::Envelope env;
  if (!world_->mailboxes[static_cast<std::size_t>(WorldRankOf(rank_))]
           .TryTake(comm_id_, src_world, tag, &env)) {
    return false;
  }
  if (actual_src != nullptr) *actual_src = CommRankOfWorld(env.src_world);
  *data = std::move(env.data);
  return true;
}

RecvRequest Comm::Irecv(int src, int tag) {
  RecvRequest req;
  req.src_ = src;
  req.tag_ = tag;
  return req;
}

void Comm::Wait(RecvRequest& request) {
  if (request.done_) return;
  request.data_ = Recv(request.src_, request.tag_);
  request.done_ = true;
}

void Comm::Barrier() {
  if (size() == 1) return;
  const std::byte token{0};
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      (void)Recv(r, kBarrierToken);
    }
    for (int r = 1; r < size(); ++r) {
      Send(r, kBarrierRelease, std::span<const std::byte>(&token, 1));
    }
  } else {
    Send(0, kBarrierToken, std::span<const std::byte>(&token, 1));
    (void)Recv(0, kBarrierRelease);
  }
}

void Comm::AllReduceSum(std::span<std::uint64_t> inout) {
  const int p = size();
  if (p == 1) return;
  auto as_bytes = [](std::span<std::uint64_t> s) {
    return std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(s.data()),
        s.size() * sizeof(std::uint64_t));
  };

  // Recursive doubling when the group is a power of two: log2(P) exchange
  // stages, each moving the whole vector — the schedule the cost model
  // charges for the paper's "global reduction".
  if ((p & (p - 1)) == 0) {
    for (int mask = 1; mask < p; mask <<= 1) {
      const int partner = rank_ ^ mask;
      // Stagger send/recv by rank order to keep pairings unambiguous.
      Send(partner, kReduceTag, as_bytes(inout));
      std::vector<std::byte> raw = Recv(partner, kReduceTag);
      assert(raw.size() == inout.size() * sizeof(std::uint64_t));
      const auto* vals = reinterpret_cast<const std::uint64_t*>(raw.data());
      for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += vals[i];
    }
    return;
  }

  // General group sizes: gather to the group root, sum, broadcast back.
  if (rank_ == 0) {
    for (int r = 1; r < p; ++r) {
      std::vector<std::byte> raw = Recv(r, kReduceTag);
      assert(raw.size() == inout.size() * sizeof(std::uint64_t));
      const auto* vals = reinterpret_cast<const std::uint64_t*>(raw.data());
      for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += vals[i];
    }
    for (int r = 1; r < p; ++r) {
      Send(r, kBcastTag, as_bytes(inout));
    }
  } else {
    Send(0, kReduceTag, as_bytes(inout));
    std::vector<std::byte> raw = Recv(0, kBcastTag);
    std::memcpy(inout.data(), raw.data(), raw.size());
  }
}

std::vector<std::vector<std::byte>> Comm::AllGather(
    std::span<const std::byte> mine) {
  const int p = size();
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
  out[static_cast<std::size_t>(rank_)].assign(mine.begin(), mine.end());
  if (p == 1) return out;

  // Ring all-gather (the paper's "all-to-all broadcast" from [9]): P-1
  // steps; at step s every rank forwards the block it received at step
  // s-1 (starting from its own) to its right neighbor. Total traffic per
  // rank equals the sum of all blocks, with no contention.
  int incoming_owner = rank_;
  for (int step = 0; step < p - 1; ++step) {
    const std::vector<std::byte>& to_send =
        out[static_cast<std::size_t>(incoming_owner)];
    Isend(RightNeighbor(), kGatherTag,
          std::span<const std::byte>(to_send.data(), to_send.size()));
    incoming_owner = (incoming_owner + p - 1) % p;
    out[static_cast<std::size_t>(incoming_owner)] =
        Recv(LeftNeighbor(), kGatherTag);
  }
  return out;
}

std::vector<std::byte> Comm::Bcast(int root,
                                   std::span<const std::byte> data) {
  if (size() == 1) return std::vector<std::byte>(data.begin(), data.end());
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) Send(r, kBcastTag, data);
    }
    return std::vector<std::byte>(data.begin(), data.end());
  }
  return Recv(root, kBcastTag);
}

Comm Comm::Sub(const std::vector<int>& member_ranks,
               std::uint64_t label) const {
  std::vector<int> world_members;
  world_members.reserve(member_ranks.size());
  int my_new_rank = -1;
  for (std::size_t i = 0; i < member_ranks.size(); ++i) {
    assert(member_ranks[i] >= 0 && member_ranks[i] < size());
    world_members.push_back(WorldRankOf(member_ranks[i]));
    if (member_ranks[i] == rank_) my_new_rank = static_cast<int>(i);
  }
  assert(my_new_rank >= 0 && "Sub() caller must be a member");

  // Deterministic id: every member computes the same hash locally.
  std::uint64_t id = comm_id_ * 0x9e3779b97f4a7c15ULL + label;
  for (int w : world_members) {
    id ^= static_cast<std::uint64_t>(w) + 0x9e3779b97f4a7c15ULL +
          (id << 6) + (id >> 2);
  }
  return Comm(world_, id, std::move(world_members), my_new_rank);
}

int Comm::CommRankOfWorld(int world_rank) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == world_rank) return static_cast<int>(i);
  }
  return -1;
}

std::uint64_t Comm::MyBytesSent() const {
  return world_->bytes_sent[static_cast<std::size_t>(WorldRankOf(rank_))]
      .load();
}

}  // namespace pam
