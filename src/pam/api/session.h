#ifndef PAM_API_SESSION_H_
#define PAM_API_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pam/core/rulegen.h"
#include "pam/core/serial_apriori.h"
#include "pam/obs/trace.h"
#include "pam/parallel/driver.h"

namespace pam {

/// Every mining formulation behind the unified session API: the serial
/// baseline plus the six parallel formulations of Algorithm.
enum class MiningAlgorithm {
  kSerial,
  kCD,
  kDD,
  kDDComm,
  kIDD,
  kHD,
  kHPA,
};

/// Display name ("serial", "CD", ...).
std::string MiningAlgorithmName(MiningAlgorithm algorithm);

/// Parses the CLI spelling ("serial", "cd", "ddcomm", ...). Returns false
/// on an unknown name.
bool ParseMiningAlgorithm(const std::string& name, MiningAlgorithm* out);

bool IsParallel(MiningAlgorithm algorithm);

/// The parallel formulation behind a non-serial MiningAlgorithm.
Algorithm ToParallelAlgorithm(MiningAlgorithm algorithm);

/// The MiningAlgorithm wrapping a parallel formulation.
MiningAlgorithm FromParallelAlgorithm(Algorithm algorithm);

/// Everything a mining run needs: what to mine, how, and with how many
/// logical processors. One request shape for serial and parallel runs.
struct MiningRequest {
  MiningAlgorithm algorithm = MiningAlgorithm::kSerial;
  /// Logical processors for parallel formulations (ignored for kSerial).
  int num_ranks = 1;
  /// Unified mining configuration (config.apriori carries the knobs the
  /// serial algorithm shares with the parallel formulations).
  ParallelConfig config;
  /// Also derive association rules from the frequent itemsets.
  bool generate_rules = false;
  /// Minimum rule confidence in [0, 1] (only with generate_rules).
  double min_confidence = 0.5;
  /// Populate MiningReport::timeline even when no TraceSink is attached.
  /// Off by default: a session with no observers and no timeline request
  /// runs the exact zero-overhead path of the legacy entry points.
  bool collect_timeline = false;
  /// Multi-tenant serving identity (pam/serve/server.h): the tenant the
  /// request is billed to and the registered dataset id it mines. Ignored
  /// by direct MiningSession::Run calls, which are handed their database
  /// explicitly; the MiningServer resolves `dataset` through its cache and
  /// enforces per-`tenant` admission quotas.
  std::string tenant;
  std::string dataset;
  /// End-to-end deadline for the run, in milliseconds (0 = none). Direct
  /// MiningSession::Run calls arm it at run start; the MiningServer arms
  /// it at admission, so queue time counts against it. A fired deadline
  /// surfaces as CancelledError{kDeadline} from Run, or a typed
  /// kDeadlineExceeded response from the server.
  double deadline_ms = 0;
  /// Optional caller-held cancellation token. Cancel() it from any thread
  /// to abort the run cooperatively at the next check point; combines with
  /// deadline_ms (whichever fires first wins). Invalid (default) means the
  /// session creates one internally only if deadline_ms > 0.
  CancelToken cancel;

  /// Digest of the *result-affecting* configuration, normalized so that
  /// equivalent requests hash equal regardless of how they were spelled:
  /// only fields that change the mined output contribute (minsup — the
  /// explicit count when set, else the fraction — max_k, and the rule
  /// knobs when generate_rules is on). Algorithm choice, rank/thread
  /// counts, tree shape, page sizes, and balancing flags are performance
  /// knobs — every formulation produces byte-identical results (the
  /// library's exactness contract) — so a serial and an 8-rank HD run of
  /// the same mining problem share a digest. Keyed with the dataset id,
  /// this is the result-cache key (pam/serve/result_cache.h).
  std::uint64_t CanonicalDigest() const;
};

/// Everything a mining run produces.
struct MiningReport {
  FrequentItemsets frequent;
  /// Association rules (empty unless the request asked for them).
  std::vector<Rule> rules;
  /// Exact per-pass, per-rank work and traffic counters. Serial runs
  /// report one rank.
  RunMetrics metrics;
  Count minsup_count = 0;
  /// End-to-end wall-clock of the run (informational: logical ranks share
  /// the host's cores, so figures use the cost model instead).
  double wall_seconds = 0.0;
  /// Structured span timeline (empty unless a TraceSink was attached or
  /// the request set collect_timeline).
  obs::Timeline timeline;
};

/// The unified mining entry point: configure observers once, then run any
/// number of requests through them.
///
///   pam::MiningSession session;
///   pam::obs::ChromeTraceWriter trace;
///   session.AddTraceSink(&trace);
///   pam::MiningReport report = session.Run(request, db);
///   trace.WriteFile("run.trace.json");  // load in chrome://tracing
///
/// Sinks are borrowed, not owned, and must outlive the session's Run
/// calls; the provided sinks (ChromeTraceWriter, JsonMetricsWriter,
/// TimelineSink) are thread-safe as required. With no sinks attached and
/// collect_timeline off, a run does no clock reads and no allocation on
/// the subset-counting hot path — exactly the legacy MineSerial /
/// MineParallel behaviour those wrappers now delegate here.
///
/// Runs under fault injection behave like MineParallel: recoverable
/// faults are repaired (and visible as fault_retry trace events), and
/// unrecoverable ones throw CommError.
class MiningSession {
 public:
  void AddTraceSink(obs::TraceSink* sink);
  void AddMetricsSink(obs::MetricsSink* sink);

  MiningReport Run(const MiningRequest& request,
                   const TransactionDatabase& db);

 private:
  std::vector<obs::TraceSink*> trace_sinks_;
  std::vector<obs::MetricsSink*> metrics_sinks_;
};

}  // namespace pam

#endif  // PAM_API_SESSION_H_
