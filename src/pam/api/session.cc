#include "pam/api/session.h"

#include <cstring>
#include <utility>

#include "pam/util/timer.h"

namespace pam {
namespace {

/// Folds a serial run's per-pass info into the unified metrics matrix
/// (one rank), so every report exposes the same RunMetrics shape.
RunMetrics SerialRunMetrics(const SerialResult& result,
                            const TransactionDatabase& db) {
  RunMetrics metrics;
  metrics.per_pass.reserve(result.passes.size());
  const TransactionDatabase::Slice whole{0, db.size()};
  for (const SerialPassInfo& info : result.passes) {
    PassMetrics m;
    m.k = info.k;
    m.num_candidates_global = info.num_candidates;
    m.num_candidates_local = info.num_candidates;
    m.num_frequent_global = info.num_frequent;
    m.tree_build_inserts = info.tree_build_inserts;
    m.subset = info.subset;
    m.transactions_processed = db.size();
    m.db_scans = info.db_scans;
    m.local_db_wire_bytes = db.WireBytes(whole);
    m.threads_per_rank = info.threads_per_rank;
    m.shard_subset_work = info.shard_subset_work;
    m.wall_seconds = info.seconds;
    metrics.per_pass.push_back({m});
  }
  return metrics;
}

}  // namespace

std::string MiningAlgorithmName(MiningAlgorithm algorithm) {
  if (algorithm == MiningAlgorithm::kSerial) return "serial";
  return AlgorithmName(ToParallelAlgorithm(algorithm));
}

bool ParseMiningAlgorithm(const std::string& name, MiningAlgorithm* out) {
  if (name == "serial") *out = MiningAlgorithm::kSerial;
  else if (name == "cd") *out = MiningAlgorithm::kCD;
  else if (name == "dd") *out = MiningAlgorithm::kDD;
  else if (name == "ddcomm") *out = MiningAlgorithm::kDDComm;
  else if (name == "idd") *out = MiningAlgorithm::kIDD;
  else if (name == "hd") *out = MiningAlgorithm::kHD;
  else if (name == "hpa") *out = MiningAlgorithm::kHPA;
  else return false;
  return true;
}

bool IsParallel(MiningAlgorithm algorithm) {
  return algorithm != MiningAlgorithm::kSerial;
}

Algorithm ToParallelAlgorithm(MiningAlgorithm algorithm) {
  switch (algorithm) {
    case MiningAlgorithm::kSerial:
      break;  // no parallel counterpart; fall through to the assert
    case MiningAlgorithm::kCD:
      return Algorithm::kCD;
    case MiningAlgorithm::kDD:
      return Algorithm::kDD;
    case MiningAlgorithm::kDDComm:
      return Algorithm::kDDComm;
    case MiningAlgorithm::kIDD:
      return Algorithm::kIDD;
    case MiningAlgorithm::kHD:
      return Algorithm::kHD;
    case MiningAlgorithm::kHPA:
      return Algorithm::kHPA;
  }
  return Algorithm::kCD;
}

MiningAlgorithm FromParallelAlgorithm(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kCD:
      return MiningAlgorithm::kCD;
    case Algorithm::kDD:
      return MiningAlgorithm::kDD;
    case Algorithm::kDDComm:
      return MiningAlgorithm::kDDComm;
    case Algorithm::kIDD:
      return MiningAlgorithm::kIDD;
    case Algorithm::kHD:
      return MiningAlgorithm::kHD;
    case Algorithm::kHPA:
      return MiningAlgorithm::kHPA;
  }
  return MiningAlgorithm::kCD;
}

std::uint64_t MiningRequest::CanonicalDigest() const {
  // FNV-1a over a tagged, fixed-order field sequence. Tags keep distinct
  // fields from aliasing (e.g. max_k=2 vs min_confidence bits); fields at
  // their don't-care values are folded at a canonical spelling so
  // default-vs-explicit requests collide.
  std::uint64_t h = 1469598103934665603ull;
  const auto fold = [&h](std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      h ^= (word >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  const auto fold_f64 = [&fold](double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    fold(bits);
  };
  fold(1);  // digest layout version
  const AprioriConfig& apriori = config.apriori;
  if (apriori.minsup_count > 0) {
    // An explicit absolute threshold wins over the fraction (exactly the
    // ResolveMinsup precedence), so the fraction is a don't-care.
    fold(2);
    fold(apriori.minsup_count);
  } else {
    fold(3);
    fold_f64(apriori.minsup_fraction);
  }
  fold(4);
  fold(static_cast<std::uint64_t>(apriori.max_k));
  if (generate_rules) {
    // min_confidence only matters when rules are generated at all.
    fold(5);
    fold_f64(min_confidence);
  }
  return h;
}

void MiningSession::AddTraceSink(obs::TraceSink* sink) {
  if (sink != nullptr) trace_sinks_.push_back(sink);
}

void MiningSession::AddMetricsSink(obs::MetricsSink* sink) {
  if (sink != nullptr) metrics_sinks_.push_back(sink);
}

MiningReport MiningSession::Run(const MiningRequest& request,
                                const TransactionDatabase& db) {
  WallTimer timer;
  MiningReport report;
  report.minsup_count = request.config.apriori.ResolveMinsup(db.size());

  // Observer wiring. A null SessionObs* is the disabled fast path: the
  // run does no clock reads and no allocation beyond the mining itself.
  const bool observing = !trace_sinks_.empty() || !metrics_sinks_.empty() ||
                         request.collect_timeline;
  obs::TimelineSink timeline_sink;
  obs::SessionObs observers;
  obs::SessionObs* obs_ptr = nullptr;
  if (observing) {
    observers.trace_sinks = trace_sinks_;
    if (request.collect_timeline || !trace_sinks_.empty()) {
      observers.trace_sinks.push_back(&timeline_sink);
    }
    observers.metrics_sinks = metrics_sinks_;
    observers.origin = std::chrono::steady_clock::now();
    obs_ptr = &observers;

    obs::RunInfo info;
    info.algorithm = MiningAlgorithmName(request.algorithm);
    info.num_ranks = IsParallel(request.algorithm) ? request.num_ranks : 1;
    info.minsup_count = report.minsup_count;
    for (obs::MetricsSink* sink : metrics_sinks_) sink->OnRunBegin(info);
  }

  // Cancellation plumbing: resolve the effective token (the caller's, or
  // a fresh one when only a deadline was given), arm the deadline unless
  // someone armed it earlier (the server arms at admission so queue time
  // counts against it), stamp the first heartbeat, and install it into the
  // config copy the formulations read. With no token and no deadline the
  // copy carries a null token — the exact zero-overhead path.
  ParallelConfig config = request.config;
  {
    CancelToken cancel = request.cancel;
    if (!cancel.valid() && request.deadline_ms > 0) {
      cancel = CancelToken::Create();
    }
    if (cancel.valid()) {
      if (request.deadline_ms > 0 && !cancel.has_deadline()) {
        cancel.ArmDeadlineIn(request.deadline_ms);
      }
      cancel.Beat();
      config.apriori.cancel = cancel;
    }
  }

  // The session-level tracer covers the run span and the serial path; the
  // parallel rank threads install their own (thread-local, so the two
  // never collide even though rank 0 shares this tracer's track id).
  obs::RankTracer session_tracer(obs_ptr, /*rank=*/0);
  obs::ScopedTracerInstall install(&session_tracer);
  {
    obs::ScopedSpan run_span(obs::SpanKind::kRun, -1,
                             nullptr);
    if (IsParallel(request.algorithm)) {
      ParallelResult result =
          MineParallelObserved(ToParallelAlgorithm(request.algorithm), db,
                               request.num_ranks, config, obs_ptr);
      report.frequent = std::move(result.frequent);
      report.metrics = std::move(result.metrics);
    } else {
      SerialResult result = MineSerial(db, config.apriori);
      report.metrics = SerialRunMetrics(result, db);
      report.frequent = std::move(result.frequent);
      // Serial passes stream post-hoc (the serial miner records
      // SerialPassInfo; the matrix conversion happens here).
      if (session_tracer.has_metrics_sinks()) {
        for (const auto& pass : report.metrics.per_pass) {
          session_tracer.EmitPassMetrics(pass[0]);
        }
      }
    }
    if (request.generate_rules) {
      obs::ScopedSpan rule_span(obs::SpanKind::kRuleGen);
      report.rules =
          GenerateRules(report.frequent, db.size(), request.min_confidence);
    }
  }

  for (obs::MetricsSink* sink : metrics_sinks_) {
    sink->OnRunEnd(report.metrics);
  }
  if (obs_ptr != nullptr && (request.collect_timeline ||
                             !trace_sinks_.empty())) {
    report.timeline = timeline_sink.Take();
  }
  report.wall_seconds = timer.Seconds();
  return report;
}

}  // namespace pam
