#ifndef PAM_OBS_CHROME_TRACE_H_
#define PAM_OBS_CHROME_TRACE_H_

#include <mutex>
#include <string>
#include <vector>

#include "pam/obs/trace.h"
#include "pam/util/status.h"

namespace pam::obs {

/// TraceSink that renders the run as a chrome://tracing / Perfetto
/// document (Trace Event Format, JSON object form): one "X" complete
/// event per span, one "i" instant event per point event, all on
/// pid 0 with tid = rank, plus metadata events naming the tracks.
///
/// Buffered: spans accumulate in memory (thread-safe) and the document is
/// produced by ToJson() / WriteFile() after the run. Timestamps are the
/// session-relative microseconds of the SpanRecords, so concurrent rank
/// tracks line up on one timeline.
class ChromeTraceWriter : public TraceSink {
 public:
  explicit ChromeTraceWriter(std::string process_name = "pam")
      : process_name_(std::move(process_name)) {}

  void OnSpan(const SpanRecord& span) override;

  /// The complete trace document.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteFile(const std::string& path) const;

  /// Spans buffered so far.
  std::size_t size() const;

 private:
  std::string process_name_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

}  // namespace pam::obs

#endif  // PAM_OBS_CHROME_TRACE_H_
