#include "pam/obs/chrome_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>

namespace pam::obs {
namespace {

/// Formats a non-negative microsecond value with fixed 3-decimal
/// precision (Trace Event Format timestamps are fractional microseconds).
std::string FormatUs(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us < 0.0 ? 0.0 : us);
  return buf;
}

/// Human-facing event name: "pass 3", "ring round 7", "collective
/// allreduce", "subset count", ...
std::string EventName(const SpanRecord& span) {
  std::string name = SpanKindName(span.kind);
  std::replace(name.begin(), name.end(), '_', ' ');
  if (span.kind == SpanKind::kPass) {
    name += ' ';
    name += std::to_string(span.pass_k);
  } else if (span.kind == SpanKind::kRingRound && span.index >= 0) {
    name += ' ';
    name += std::to_string(span.index);
  } else if (span.detail != nullptr) {
    name += ' ';
    name += span.detail;
  }
  return name;
}

void AppendEvent(std::string* out, const SpanRecord& span) {
  out->append("{\"name\":\"");
  out->append(EventName(span));
  out->append("\",\"cat\":\"");
  out->append(SpanKindName(span.kind));
  out->append("\",\"ph\":\"");
  out->append(span.instant ? "i" : "X");
  out->append("\",\"ts\":");
  out->append(FormatUs(span.ts_us));
  if (!span.instant) {
    out->append(",\"dur\":");
    out->append(FormatUs(span.dur_us));
  }
  out->append(",\"pid\":0,\"tid\":");
  out->append(std::to_string(span.rank));
  if (span.instant) {
    out->append(",\"s\":\"t\"");  // thread-scoped instant marker
  }
  out->append(",\"args\":{\"k\":");
  out->append(std::to_string(span.pass_k));
  out->append(",\"index\":");
  out->append(std::to_string(span.index));
  out->append("}}");
}

}  // namespace

void ChromeTraceWriter::OnSpan(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(span);
}

std::size_t ChromeTraceWriter::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::string ChromeTraceWriter::ToJson() const {
  std::vector<SpanRecord> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
  }
  // Stable display order: by track, then start time (emission order closes
  // children before parents, which viewers accept but humans do not).
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.rank != b.rank) return a.rank < b.rank;
                     return a.ts_us < b.ts_us;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":"
         "{\"name\":\"" + process_name_ + "\"}}";
  std::set<int> ranks;
  for (const SpanRecord& span : spans) ranks.insert(span.rank);
  for (int rank : ranks) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    out += std::to_string(rank);
    out += ",\"args\":{\"name\":\"rank ";
    out += std::to_string(rank);
    out += "\"}}";
  }
  for (const SpanRecord& span : spans) {
    out += ",\n";
    AppendEvent(&out, span);
  }
  out += "\n]}\n";
  return out;
}

Status ChromeTraceWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Error("cannot open trace output '" + path + "'");
  }
  const std::string json = ToJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::Error("short write to trace output '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace pam::obs
