#ifndef PAM_OBS_SPAN_H_
#define PAM_OBS_SPAN_H_

#include <cstdint>
#include <vector>

namespace pam::obs {

/// The span taxonomy of a mining run (DESIGN.md §10). Spans nest strictly
/// within one track (one rank's timeline):
///
///   run
///   └── pass k
///       ├── tree build
///       ├── collective          (all-reduce / all-gather / bcast / barrier)
///       ├── ring round r        (IDD/HD/DD+comm ring pipeline)
///       │   └── subset count    (one counted page)
///       ├── all-to-all          (DD page exchange / HPA subset routing)
///       │   └── subset count
///       └── subset count        (CD / serial: one counted chunk)
///           └── subset count shard  (one counting-team worker, index =
///                                    shard; only with threads_per_rank > 1)
///
/// kFaultRetry is an *instant* event (a retransmit attempt under fault
/// injection), not an interval. kSubsetCountShard spans of one rank run
/// concurrently on the team's worker threads, so two shards of the same
/// batch may partially overlap on the rank's track — the only kind exempt
/// from the strict-nesting invariant.
enum class SpanKind : std::uint8_t {
  kRun,
  kPass,
  kTreeBuild,
  kRingRound,
  kAllToAll,
  kCollective,
  kSubsetCount,
  kSubsetCountShard,
  kFaultRetry,
  kRuleGen,
  /// One served request of a pam_serve MiningServer, emitted on the worker
  /// thread that executed it (track = worker id, index = request sequence
  /// number). Covers rank-lease wait plus the mining run; the nested run
  /// span taxonomy is available per request via collect_timeline.
  kServeRequest,
  /// Instant: a cancellation fired at this point (detail = the
  /// CancelReason name: "deadline", "cancelled", "watchdog", or
  /// "expired_in_queue" for queue-side shedding). Emitted by the comm
  /// layer when a blocked receive observes the token, and by the serve
  /// worker when it types the response.
  kCancel,
  /// Instant: the dataset cache evicted an entry to stay within its
  /// memory budget (detail = "budget", "ttl", or "uncacheable" when a
  /// dataset larger than the whole budget is served load-through).
  kCacheEvict,
  /// Instant: a served request was answered from the result cache — no
  /// dataset touch, no rank lease (detail = the dataset id).
  kResultCacheHit,
};

/// Stable lowercase name ("run", "pass", "ring_round", ...), used as the
/// chrome-trace category and in the JSON writers.
const char* SpanKindName(SpanKind kind);

/// One closed span (or instant event) as observed by a TraceSink. Plain
/// data: no allocation happens on the emitting thread beyond what the
/// sink itself does.
struct SpanRecord {
  SpanKind kind = SpanKind::kRun;
  /// Track id: the world rank whose thread executed the span (0 for
  /// serial runs and for the session-level run span).
  int rank = 0;
  /// Apriori pass the span belongs to (0 = outside any pass).
  int pass_k = 0;
  /// Kind-specific ordinal: ring round number, counting chunk / page
  /// index; -1 when not applicable.
  std::int64_t index = -1;
  /// Optional static label with kind-specific detail (e.g. the collective
  /// name "allreduce"); never owned, must point at static storage.
  const char* detail = nullptr;
  /// Start time in microseconds relative to the session origin.
  double ts_us = 0.0;
  /// Duration in microseconds (0 for instant events).
  double dur_us = 0.0;
  /// True for point events (ph "i" in the Trace Event Format).
  bool instant = false;
};

/// The structured timeline of a run: every span of every rank, in emission
/// order (children close before their parents). MiningReport carries one
/// of these when tracing was enabled.
struct Timeline {
  std::vector<SpanRecord> spans;

  bool empty() const { return spans.empty(); }
  std::size_t size() const { return spans.size(); }
};

}  // namespace pam::obs

#endif  // PAM_OBS_SPAN_H_
