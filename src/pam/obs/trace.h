#ifndef PAM_OBS_TRACE_H_
#define PAM_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "pam/obs/span.h"

namespace pam {
// Defined in pam/parallel/metrics.h; the observer interfaces only pass
// references through, so the obs layer stays below the parallel layer.
struct PassMetrics;
struct RunMetrics;
}  // namespace pam

namespace pam::obs {

/// Observer of closed spans. Implementations MUST be thread-safe: every
/// rank thread of a parallel run emits concurrently.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Called once per span, when it closes (children before parents) or,
  /// for instant events, when they fire.
  virtual void OnSpan(const SpanRecord& span) = 0;
};

/// Static facts about a run, handed to metrics sinks before the first
/// pass completes.
struct RunInfo {
  std::string algorithm;  // "serial", "CD", "HD", ...
  int num_ranks = 1;
  std::uint64_t minsup_count = 0;
};

/// Observer of per-pass work counters. PassMetrics rows stream in as each
/// rank finishes a pass (so a stalled pass is visible before the run
/// ends). Implementations MUST be thread-safe.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void OnRunBegin(const RunInfo& info) { (void)info; }
  /// One rank completed one pass. Ranks report passes in order, but
  /// interleaving across ranks is arbitrary.
  virtual void OnPassMetrics(int rank, const PassMetrics& metrics) = 0;
  /// The run finished; `metrics` is the fully assembled matrix.
  virtual void OnRunEnd(const RunMetrics& metrics) { (void)metrics; }
};

/// The observer wiring of one MiningSession run: the registered sinks and
/// the clock origin every rank timestamps against. Created by the session
/// only when at least one observer is attached — a null SessionObs* is
/// the disabled fast path (no clock reads, no allocation).
struct SessionObs {
  std::vector<TraceSink*> trace_sinks;
  std::vector<MetricsSink*> metrics_sinks;
  std::chrono::steady_clock::time_point origin;

  bool tracing() const { return !trace_sinks.empty(); }
};

/// Per-rank span emitter. One lives on each rank's stack for the duration
/// of the rank program (installed thread-locally via ScopedTracerInstall);
/// serial runs install one for rank 0 on the calling thread.
class RankTracer {
 public:
  /// `obs` may be null: the tracer is then disabled and emission is a
  /// no-op (ScopedSpan additionally skips its clock reads).
  RankTracer(SessionObs* obs, int rank) : obs_(obs), rank_(rank) {}

  bool tracing() const { return obs_ != nullptr && obs_->tracing(); }
  bool has_metrics_sinks() const {
    return obs_ != nullptr && !obs_->metrics_sinks.empty();
  }
  int rank() const { return rank_; }

  /// Microseconds since the session origin.
  double NowUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - obs_->origin)
        .count();
  }

  /// Emits a closed span to every trace sink.
  void Emit(const SpanRecord& span);

  /// Emits an instant event at the current time.
  void EmitInstant(SpanKind kind, const char* detail);

  /// Streams one completed pass row to every metrics sink.
  void EmitPassMetrics(const PassMetrics& metrics);

  /// Pass the emitting thread is currently inside (maintained by the
  /// kPass ScopedSpan); child spans stamp it into SpanRecord::pass_k.
  int current_pass_k = 0;

 private:
  SessionObs* obs_;
  int rank_;
};

/// The calling thread's tracer (null when no session is observing it).
/// Span emission sites reach their tracer through this so the signatures
/// of the formulations, the ring pipeline, and the collectives stay
/// unchanged; each rank thread installs its tracer at rank start.
RankTracer* CurrentTracer();

/// RAII thread-local install/restore of a RankTracer.
class ScopedTracerInstall {
 public:
  explicit ScopedTracerInstall(RankTracer* tracer);
  ~ScopedTracerInstall();
  ScopedTracerInstall(const ScopedTracerInstall&) = delete;
  ScopedTracerInstall& operator=(const ScopedTracerInstall&) = delete;

 private:
  RankTracer* previous_;
};

/// RAII interval span against the current thread's tracer. When tracing
/// is disabled this is one thread-local load and a null check — no clock
/// read, no allocation — which keeps the subset-counting hot path
/// zero-overhead (guarded by trace_test's BufferPool/span counters).
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanKind kind, std::int64_t index = -1,
                      const char* detail = nullptr)
      : ScopedSpan(kind, /*pass_k=*/-1, index, detail) {}

  /// kPass spans name their pass; children pick it up from the tracer.
  ScopedSpan(SpanKind kind, int pass_k, std::int64_t index,
             const char* detail);

  /// Closes and emits the span now (idempotent; the destructor becomes a
  /// no-op). Lets a span end mid-scope, e.g. a tree-build span that must
  /// not include the counting loop that follows it.
  void End();

  /// Drops the span without emitting (e.g. a pass that turned out to have
  /// no candidates and recorded no PassMetrics row).
  void Cancel();

  ~ScopedSpan() { End(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  RankTracer* tracer_;  // null when disabled or already ended
  SpanKind kind_;
  std::int64_t index_;
  const char* detail_;
  double start_us_ = 0.0;
  int restore_pass_k_ = 0;  // kPass only: tracer value to restore at End
};

/// Streams `metrics` to the current thread's metrics sinks (no-op when
/// none are attached). Called by every formulation as it records a
/// completed pass row.
void EmitPassMetrics(const PassMetrics& metrics);

/// Process-wide count of spans + instant events ever emitted. The
/// zero-overhead guard asserts this does not move when no sink is
/// attached.
std::uint64_t SpansEmittedTotal();

/// TraceSink that buffers every span in memory; the session drains one of
/// these into MiningReport::timeline.
class TimelineSink : public TraceSink {
 public:
  void OnSpan(const SpanRecord& span) override;

  /// Moves the collected timeline out (sink becomes empty).
  Timeline Take();

 private:
  std::mutex mu_;
  Timeline timeline_;
};

}  // namespace pam::obs

#endif  // PAM_OBS_TRACE_H_
