#include "pam/obs/json_metrics.h"

#include <cstdio>

namespace pam::obs {
namespace {

void AppendField(std::string* out, const char* name, std::uint64_t value,
                 bool* first) {
  if (!*first) out->append(",");
  *first = false;
  out->append("\"");
  out->append(name);
  out->append("\":");
  out->append(std::to_string(value));
}

std::string PassRowJson(int rank, const PassMetrics& m) {
  std::string out = "{";
  bool first = true;
  AppendField(&out, "rank", static_cast<std::uint64_t>(rank), &first);
  AppendField(&out, "k", static_cast<std::uint64_t>(m.k), &first);
  AppendField(&out, "candidates_global", m.num_candidates_global, &first);
  AppendField(&out, "candidates_local", m.num_candidates_local, &first);
  AppendField(&out, "frequent_global", m.num_frequent_global, &first);
  AppendField(&out, "tree_build_inserts", m.tree_build_inserts, &first);
  AppendField(&out, "transactions_processed", m.transactions_processed,
              &first);
  AppendField(&out, "traversal_steps", m.subset.traversal_steps, &first);
  AppendField(&out, "distinct_leaf_visits", m.subset.distinct_leaf_visits,
              &first);
  AppendField(&out, "leaf_candidates_checked",
              m.subset.leaf_candidates_checked, &first);
  AppendField(&out, "data_bytes_sent", m.data_bytes_sent, &first);
  AppendField(&out, "data_messages_sent", m.data_messages_sent, &first);
  AppendField(&out, "reduction_words", m.reduction_words, &first);
  AppendField(&out, "broadcast_words", m.broadcast_words, &first);
  AppendField(&out, "db_scans", static_cast<std::uint64_t>(m.db_scans),
              &first);
  AppendField(&out, "local_db_wire_bytes", m.local_db_wire_bytes, &first);
  AppendField(&out, "faults_injected", m.comm_faults_injected, &first);
  AppendField(&out, "comm_retries", m.comm_retries, &first);
  AppendField(&out, "faults_detected", m.comm_faults_detected, &first);
  AppendField(&out, "grid_rows", static_cast<std::uint64_t>(m.grid_rows),
              &first);
  AppendField(&out, "grid_cols", static_cast<std::uint64_t>(m.grid_cols),
              &first);
  AppendField(&out, "partition_digest", m.partition_digest, &first);
  AppendField(&out, "rebalanced_candidates", m.rebalanced_candidates,
              &first);
  AppendField(&out, "balance_sync_words", m.balance_sync_words, &first);
  AppendField(&out, "threads_per_rank",
              static_cast<std::uint64_t>(m.threads_per_rank), &first);
  out.append(",\"shard_subset_work\":[");
  for (std::size_t i = 0; i < m.shard_subset_work.size(); ++i) {
    if (i > 0) out.append(",");
    out.append(std::to_string(m.shard_subset_work[i]));
  }
  out.append("]");
  char wall[64];
  std::snprintf(wall, sizeof(wall), ",\"wall_seconds\":%.6f",
                m.wall_seconds);
  out.append(wall);
  out.append("}");
  return out;
}

}  // namespace

void JsonMetricsWriter::OnRunBegin(const RunInfo& info) {
  std::lock_guard<std::mutex> lock(mu_);
  info_ = info;
}

void JsonMetricsWriter::OnPassMetrics(int rank, const PassMetrics& metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  const int pass_index = passes_seen_[rank]++;
  rows_[{pass_index, rank}] = metrics;
  if (pass_index + 1 > num_passes_) num_passes_ = pass_index + 1;
}

void JsonMetricsWriter::OnRunEnd(const RunMetrics& metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  run_ended_ = true;
  total_data_bytes_ = 0;
  for (int p = 0; p < metrics.num_passes(); ++p) {
    total_data_bytes_ += metrics.TotalDataBytes(p);
  }
  total_faults_injected_ = metrics.TotalFaultsInjected();
  total_retries_ = metrics.TotalCommRetries();
  total_faults_detected_ = metrics.TotalFaultsDetected();
}

std::string JsonMetricsWriter::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"algorithm\":\"" + info_.algorithm + "\"";
  out += ",\"ranks\":" + std::to_string(info_.num_ranks);
  out += ",\"minsup_count\":" + std::to_string(info_.minsup_count);
  out += ",\"complete\":";
  out += run_ended_ ? "true" : "false";
  out += ",\"passes\":[\n";
  for (int pass = 0; pass < num_passes_; ++pass) {
    if (pass > 0) out += ",\n";
    out += "{\"pass\":" + std::to_string(pass) + ",\"per_rank\":[";
    bool first = true;
    std::vector<std::uint64_t> subset_work;
    for (const auto& [key, row] : rows_) {
      if (key.first != pass) continue;
      if (!first) out += ",\n";
      first = false;
      out += PassRowJson(key.second, row);
      subset_work.push_back(row.subset.traversal_steps +
                            row.subset.leaf_candidates_checked);
    }
    out += "]";
    // Per-pass load-imbalance summary over the ranks' subset work (the
    // paper's computation-time imbalance), visible without a bench run.
    const LoadSummary balance = Summarize(subset_work);
    char summary[160];
    std::snprintf(summary, sizeof(summary),
                  ",\"imbalance\":{\"max\":%.0f,\"mean\":%.3f,"
                  "\"stddev\":%.3f,\"max_over_mean\":%.4f}",
                  balance.max, balance.mean, balance.stddev,
                  balance.imbalance);
    out += summary;
    out += "}";
  }
  out += "\n]";
  if (run_ended_) {
    out += ",\"totals\":{\"data_bytes_sent\":" +
           std::to_string(total_data_bytes_);
    out += ",\"faults_injected\":" + std::to_string(total_faults_injected_);
    out += ",\"comm_retries\":" + std::to_string(total_retries_);
    out += ",\"faults_detected\":" + std::to_string(total_faults_detected_);
    out += "}";
  }
  out += "}\n";
  return out;
}

Status JsonMetricsWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Error("cannot open metrics output '" + path + "'");
  }
  const std::string json = ToJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::Error("short write to metrics output '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace pam::obs
