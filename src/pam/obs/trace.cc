#include "pam/obs/trace.h"

#include <atomic>

namespace pam::obs {
namespace {

thread_local RankTracer* t_current_tracer = nullptr;

std::atomic<std::uint64_t> g_spans_emitted{0};

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRun:
      return "run";
    case SpanKind::kPass:
      return "pass";
    case SpanKind::kTreeBuild:
      return "tree_build";
    case SpanKind::kRingRound:
      return "ring_round";
    case SpanKind::kAllToAll:
      return "all_to_all";
    case SpanKind::kCollective:
      return "collective";
    case SpanKind::kSubsetCount:
      return "subset_count";
    case SpanKind::kSubsetCountShard:
      return "subset_count_shard";
    case SpanKind::kFaultRetry:
      return "fault_retry";
    case SpanKind::kRuleGen:
      return "rule_gen";
    case SpanKind::kServeRequest:
      return "serve_request";
    case SpanKind::kCancel:
      return "cancel";
    case SpanKind::kCacheEvict:
      return "cache_evict";
    case SpanKind::kResultCacheHit:
      return "result_cache_hit";
  }
  return "?";
}

void RankTracer::Emit(const SpanRecord& span) {
  if (!tracing()) return;
  g_spans_emitted.fetch_add(1, std::memory_order_relaxed);
  for (TraceSink* sink : obs_->trace_sinks) sink->OnSpan(span);
}

void RankTracer::EmitInstant(SpanKind kind, const char* detail) {
  if (!tracing()) return;
  SpanRecord span;
  span.kind = kind;
  span.rank = rank_;
  span.pass_k = current_pass_k;
  span.detail = detail;
  span.ts_us = NowUs();
  span.instant = true;
  Emit(span);
}

void RankTracer::EmitPassMetrics(const PassMetrics& metrics) {
  if (obs_ == nullptr) return;
  for (MetricsSink* sink : obs_->metrics_sinks) {
    sink->OnPassMetrics(rank_, metrics);
  }
}

RankTracer* CurrentTracer() { return t_current_tracer; }

ScopedTracerInstall::ScopedTracerInstall(RankTracer* tracer)
    : previous_(t_current_tracer) {
  t_current_tracer = tracer;
}

ScopedTracerInstall::~ScopedTracerInstall() { t_current_tracer = previous_; }

ScopedSpan::ScopedSpan(SpanKind kind, int pass_k, std::int64_t index,
                       const char* detail)
    : tracer_(t_current_tracer), kind_(kind), index_(index), detail_(detail) {
  if (tracer_ == nullptr || !tracer_->tracing()) {
    tracer_ = nullptr;  // disabled: no clock read below
    return;
  }
  start_us_ = tracer_->NowUs();
  if (kind_ == SpanKind::kPass) {
    restore_pass_k_ = tracer_->current_pass_k;
    tracer_->current_pass_k = pass_k;
  }
}

void ScopedSpan::End() {
  if (tracer_ == nullptr) return;
  SpanRecord span;
  span.kind = kind_;
  span.rank = tracer_->rank();
  span.pass_k = tracer_->current_pass_k;
  span.index = index_;
  span.detail = detail_;
  span.ts_us = start_us_;
  span.dur_us = tracer_->NowUs() - start_us_;
  tracer_->Emit(span);
  if (kind_ == SpanKind::kPass) {
    tracer_->current_pass_k = restore_pass_k_;
  }
  tracer_ = nullptr;
}

void ScopedSpan::Cancel() {
  if (tracer_ == nullptr) return;
  if (kind_ == SpanKind::kPass) {
    tracer_->current_pass_k = restore_pass_k_;
  }
  tracer_ = nullptr;
}

void EmitPassMetrics(const PassMetrics& metrics) {
  RankTracer* tracer = t_current_tracer;
  if (tracer != nullptr) tracer->EmitPassMetrics(metrics);
}

std::uint64_t SpansEmittedTotal() {
  return g_spans_emitted.load(std::memory_order_relaxed);
}

void TimelineSink::OnSpan(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mu_);
  timeline_.spans.push_back(span);
}

Timeline TimelineSink::Take() {
  std::lock_guard<std::mutex> lock(mu_);
  Timeline out = std::move(timeline_);
  timeline_ = Timeline();
  return out;
}

}  // namespace pam::obs
