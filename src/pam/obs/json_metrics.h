#ifndef PAM_OBS_JSON_METRICS_H_
#define PAM_OBS_JSON_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "pam/obs/trace.h"
#include "pam/parallel/metrics.h"
#include "pam/util/status.h"

namespace pam::obs {

/// MetricsSink that renders the run's PassMetrics stream as one JSON
/// document: run facts, a per-pass array of per-rank counter objects, and
/// run totals. Buffered and thread-safe; produce the document with
/// ToJson() / WriteFile() after the run.
class JsonMetricsWriter : public MetricsSink {
 public:
  void OnRunBegin(const RunInfo& info) override;
  void OnPassMetrics(int rank, const PassMetrics& metrics) override;
  void OnRunEnd(const RunMetrics& metrics) override;

  /// The complete metrics document.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  RunInfo info_;
  /// (pass index within the rank's stream, rank) -> metrics row, ordered
  /// so the document lists passes ascending with ranks ascending inside.
  std::map<std::pair<int, int>, PassMetrics> rows_;
  /// Passes reported so far per rank (pass index of the next row).
  std::map<int, int> passes_seen_;
  bool run_ended_ = false;
  std::uint64_t total_data_bytes_ = 0;
  std::uint64_t total_faults_injected_ = 0;
  std::uint64_t total_retries_ = 0;
  std::uint64_t total_faults_detected_ = 0;
  int num_passes_ = 0;
};

}  // namespace pam::obs

#endif  // PAM_OBS_JSON_METRICS_H_
