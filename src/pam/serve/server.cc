#include "pam/serve/server.h"

#include <algorithm>
#include <utility>

#include "pam/mp/fault.h"
#include "pam/obs/trace.h"

namespace pam::serve {

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kQueueFull:
      return "queue_full";
    case ServeStatus::kTenantInFlightExceeded:
      return "tenant_in_flight_exceeded";
    case ServeStatus::kTenantBudgetExhausted:
      return "tenant_budget_exhausted";
    case ServeStatus::kUnknownDataset:
      return "unknown_dataset";
    case ServeStatus::kInvalidRequest:
      return "invalid_request";
    case ServeStatus::kShuttingDown:
      return "shutting_down";
    case ServeStatus::kMiningFault:
      return "mining_fault";
    case ServeStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case ServeStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

bool IsRejection(ServeStatus status) {
  switch (status) {
    case ServeStatus::kQueueFull:
    case ServeStatus::kTenantInFlightExceeded:
    case ServeStatus::kTenantBudgetExhausted:
    case ServeStatus::kUnknownDataset:
    case ServeStatus::kInvalidRequest:
    case ServeStatus::kShuttingDown:
      return true;
    case ServeStatus::kOk:
    case ServeStatus::kMiningFault:
    case ServeStatus::kDeadlineExceeded:
    case ServeStatus::kCancelled:
      return false;
  }
  return false;
}

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

/// Maps a fired token's reason onto the typed response. A watchdog abort
/// is a server-side fault (the request did nothing wrong), so it lands on
/// kMiningFault like any other infrastructure failure.
void SetCancelledResponse(ServeResponse* response, CancelReason reason,
                          const std::string& detail) {
  switch (reason) {
    case CancelReason::kDeadline:
      response->status = ServeStatus::kDeadlineExceeded;
      response->error = "deadline exceeded: " + detail;
      return;
    case CancelReason::kWatchdog:
      response->status = ServeStatus::kMiningFault;
      response->error = "watchdog: no progress heartbeat: " + detail;
      return;
    case CancelReason::kCancelled:
    case CancelReason::kNone:
      break;
  }
  response->status = ServeStatus::kCancelled;
  response->error = "cancelled: " + detail;
}

void EmitCancelInstant(const char* detail) {
  obs::RankTracer* tracer = obs::CurrentTracer();
  if (tracer != nullptr) tracer->EmitInstant(obs::SpanKind::kCancel, detail);
}

}  // namespace

MiningServer::MiningServer(const ServerConfig& config)
    : config_(config),
      pool_(config.pool_ranks),
      cache_(config.cache_page_bytes, config.cache_budget_bytes,
             config.cache_ttl_ms),
      results_(config.result_cache_budget_bytes, config.result_cache_ttl_ms) {
  serve_obs_.origin = std::chrono::steady_clock::now();
  const int workers = config_.workers > 0 ? config_.workers : 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { WorkerMain(w); });
  }
  if (config_.watchdog_ms > 0) {
    watchdog_ = std::thread([this] { WatchdogMain(); });
  }
}

MiningServer::~MiningServer() { Shutdown(); }

void MiningServer::AddTraceSink(obs::TraceSink* sink) {
  if (sink != nullptr) serve_obs_.trace_sinks.push_back(sink);
}

const TenantQuota& MiningServer::QuotaFor(const std::string& tenant) const {
  auto it = config_.tenant_quotas.find(tenant);
  return it == config_.tenant_quotas.end() ? config_.default_quota
                                           : it->second;
}

bool MiningServer::AdmitLocked(MiningRequest& request,
                               std::function<void(ServeResponse)>& done,
                               ServeResponse* rejection) {
  const auto reject = [rejection](ServeStatus status, std::string error) {
    rejection->status = status;
    rejection->error = std::move(error);
    return false;
  };
  ++stats_.submitted;
  if (!accepting_) {
    ++stats_.rejected_shutdown;
    return reject(ServeStatus::kShuttingDown, "server is shutting down");
  }
  if (request.dataset.empty()) {
    ++stats_.rejected_invalid;
    return reject(ServeStatus::kInvalidRequest, "request names no dataset");
  }
  const int ranks = IsParallel(request.algorithm) ? request.num_ranks : 1;
  if (ranks < 1 || ranks > pool_.capacity()) {
    ++stats_.rejected_invalid;
    return reject(ServeStatus::kInvalidRequest,
                  "requested " + std::to_string(ranks) + " ranks from a " +
                      std::to_string(pool_.capacity()) + "-rank pool");
  }
  if (!cache_.Contains(request.dataset)) {
    ++stats_.rejected_unknown_dataset;
    return reject(ServeStatus::kUnknownDataset,
                  "unknown dataset '" + request.dataset + "'");
  }
  const TenantQuota& quota = QuotaFor(request.tenant);
  TenantUsage& usage = tenants_[request.tenant];
  if (quota.max_in_flight > 0 && usage.in_flight >= quota.max_in_flight) {
    ++stats_.rejected_tenant_in_flight;
    return reject(ServeStatus::kTenantInFlightExceeded,
                  "tenant '" + request.tenant + "' already has " +
                      std::to_string(usage.in_flight) +
                      " requests in flight");
  }
  if (quota.rank_seconds > 0.0 && usage.rank_seconds >= quota.rank_seconds) {
    ++stats_.rejected_tenant_budget;
    return reject(ServeStatus::kTenantBudgetExhausted,
                  "tenant '" + request.tenant +
                      "' exhausted its rank-seconds budget");
  }
  if (queued_ >= config_.max_queue) {
    ++stats_.rejected_queue_full;
    return reject(ServeStatus::kQueueFull,
                  "admission queue is full (" +
                      std::to_string(config_.max_queue) + " requests)");
  }

  ++stats_.admitted;
  ++usage.in_flight;
  ++usage.admitted;
  Job job;
  job.request = std::move(request);
  job.done = std::move(done);
  // Cancellation plumbing at admission (DESIGN.md §13): apply the server
  // default deadline, materialize a token when a deadline or the watchdog
  // needs one, and arm the deadline *now* — queue time counts against it,
  // and MiningSession::Run sees has_deadline and will not re-arm later.
  if (job.request.deadline_ms <= 0) {
    job.request.deadline_ms = config_.default_deadline_ms;
  }
  if (!job.request.cancel.valid() &&
      (job.request.deadline_ms > 0 || config_.watchdog_ms > 0)) {
    job.request.cancel = CancelToken::Create();
  }
  if (job.request.cancel.valid()) {
    if (job.request.deadline_ms > 0 && !job.request.cancel.has_deadline()) {
      job.request.cancel.ArmDeadlineIn(job.request.deadline_ms);
    }
    job.request.cancel.Beat();
  }
  job.enqueued_at = std::chrono::steady_clock::now();
  job.sequence = next_sequence_++;

  // Start-time fair queueing (DESIGN.md §15): the job's virtual start is
  // the later of global virtual time and its tenant's last virtual
  // finish; the tenant's clock then advances by cost/weight, where cost
  // is the rank demand — so a weight-w tenant's clock advances 1/w as
  // fast per unit of service, and it is dispatched w times as often.
  const double weight = quota.weight > 0 ? quota.weight : 1.0;
  TenantQueue& tq = queues_[job.request.tenant];
  job.vstart = std::max(virtual_time_, tq.last_vfinish);
  tq.last_vfinish = job.vstart + static_cast<double>(ranks) / weight;
  tq.jobs.push_back(std::move(job));
  ++queued_;
  stats_.queue_depth = queued_;
  if (queued_ > stats_.peak_queue_depth) stats_.peak_queue_depth = queued_;
  queue_cv_.notify_one();
  return true;
}

void MiningServer::SubmitWith(MiningRequest request,
                              std::function<void(ServeResponse)> done) {
  ServeResponse rejection;
  bool admitted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    admitted = AdmitLocked(request, done, &rejection);
  }
  // Rejection callbacks run on the submitter's thread, outside mu_, so a
  // callback that calls back into the server (stats, resubmit) is safe.
  if (!admitted) done(std::move(rejection));
}

std::future<ServeResponse> MiningServer::Submit(MiningRequest request) {
  auto promise = std::make_shared<std::promise<ServeResponse>>();
  std::future<ServeResponse> future = promise->get_future();
  SubmitWith(std::move(request), [promise](ServeResponse response) {
    promise->set_value(std::move(response));
  });
  return future;
}

ServeResponse MiningServer::Execute(MiningRequest request) {
  return Submit(std::move(request)).get();
}

MiningServer::Job MiningServer::PopJobLocked() {
  // Dispatch the backlogged job with the smallest virtual start time,
  // breaking ties by submission order. Tenant count is small (it is the
  // quota map's scale), so a linear scan of queue heads beats maintaining
  // a heap under churn.
  TenantQueue* best = nullptr;
  for (auto& [tenant, tq] : queues_) {
    if (tq.jobs.empty()) continue;
    if (best == nullptr ||
        tq.jobs.front().vstart < best->jobs.front().vstart ||
        (tq.jobs.front().vstart == best->jobs.front().vstart &&
         tq.jobs.front().sequence < best->jobs.front().sequence)) {
      best = &tq;
    }
  }
  Job job = std::move(best->jobs.front());
  best->jobs.pop_front();
  --queued_;
  stats_.queue_depth = queued_;
  // Global virtual time tracks the start tag of the job in service; it
  // never runs ahead of unserved work, which is what bounds how long any
  // backlogged tenant can wait (DESIGN.md §15).
  virtual_time_ = std::max(virtual_time_, job.vstart);
  return job;
}

void MiningServer::WorkerMain(int worker_id) {
  // The worker's span emitter: one serve_request span per executed
  // request, on this worker's track, timestamped from server start.
  obs::RankTracer tracer(&serve_obs_, worker_id);
  obs::ScopedTracerInstall install(&tracer);
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || queued_ > 0; });
      if (queued_ == 0) return;  // stopping, fully drained
      job = PopJobLocked();
    }
    ServeResponse response = Process(job, worker_id);
    // The callback fires only after the rank lease is back in the pool
    // and the tenant accounting is settled, so a caller observing the
    // response observes a consistent server.
    job.done(std::move(response));
  }
}

ServeResponse MiningServer::Process(Job& job, int worker_id) {
  (void)worker_id;  // track identity comes from the installed tracer
  const auto dequeued_at = std::chrono::steady_clock::now();
  ServeResponse response;
  response.queue_seconds = SecondsSince(job.enqueued_at, dequeued_at);

  const CancelToken token = job.request.cancel;
  const int ranks =
      IsParallel(job.request.algorithm) ? job.request.num_ranks : 1;
  // A request is result-cacheable when its output is a pure function of
  // (dataset, canonical config): timeline collection and fault injection
  // make the report run-specific, so those bypass the cache both ways.
  const bool cacheable = config_.result_cache &&
                         !job.request.collect_timeline &&
                         !job.request.config.fault.enabled;
  const std::uint64_t digest = cacheable ? job.request.CanonicalDigest() : 0;
  double charged = 0.0;
  bool shed_in_queue = false;
  {
    obs::ScopedSpan span(obs::SpanKind::kServeRequest,
                         static_cast<std::int64_t>(job.sequence), nullptr);
    const CancelReason queued_reason = token.Check();
    ResultHandle hit;
    if (queued_reason == CancelReason::kNone && cacheable) {
      hit = results_.Get(job.request.dataset, digest);
    }
    if (queued_reason != CancelReason::kNone) {
      // Queue-side shedding: the token fired while the request waited, so
      // it dies here — no dataset load, no rank lease, no run.
      shed_in_queue = queued_reason == CancelReason::kDeadline;
      SetCancelledResponse(&response, queued_reason, "abandoned in queue");
      EmitCancelInstant(shed_in_queue ? "expired_in_queue"
                                      : "cancelled_in_queue");
      span.Cancel();
    } else if (hit != nullptr) {
      // Result-cache hit (DESIGN.md §15): serve the immutable cached
      // report as-is — no dataset touch, no rank lease, no tenant charge.
      // The handle pins the entry until the report copy below completes.
      response.report = hit->report;
      response.status = ServeStatus::kOk;
      response.from_result_cache = true;
      obs::RankTracer* tracer = obs::CurrentTracer();
      if (tracer != nullptr) {
        tracer->EmitInstant(obs::SpanKind::kResultCacheHit, "hit");
      }
    } else {
      Result<DatasetHandle> dataset = cache_.Get(job.request.dataset);
      if (!dataset.ok()) {
        // Registered at admission but gone or unloadable now (loader I/O
        // failure): a post-admission infrastructure failure, so it lands
        // on kMiningFault — keeping every admitted request inside
        // `ok + mining_fault + cancelled + deadline_exceeded`.
        response.status = ServeStatus::kMiningFault;
        response.error = "dataset load failed: " + dataset.status().message();
        span.Cancel();
      } else {
        response.dataset = dataset.value();
        RankLease lease = pool_.Lease(ranks);
        if (!lease.held()) {
          // Shutdown closed the pool after this request was admitted: a
          // post-admission cancellation, not an admission rejection.
          response.status = ServeStatus::kCancelled;
          response.error = "cancelled: rank pool closed";
          span.Cancel();
        } else {
          if (token.valid()) {
            token.Beat();
            std::lock_guard<std::mutex> lock(mu_);
            inflight_[job.sequence] = token;
          }
          MiningSession session;
          try {
            response.report = session.Run(job.request, *response.dataset->db);
            response.status = ServeStatus::kOk;
          } catch (const CancelledError& e) {
            SetCancelledResponse(&response, e.reason(), e.what());
          } catch (const CommError& e) {
            // Safety net: if the token fired, a secondary kAborted unwind
            // may have outrun the CancelledError — the reason on the token
            // is still the truth.
            const CancelReason reason = token.Check();
            if (reason != CancelReason::kNone) {
              SetCancelledResponse(&response, reason, e.what());
            } else {
              response.status = ServeStatus::kMiningFault;
              response.error = std::string("transport failure: kind=") +
                               CommErrorKindName(e.kind()) + " rank=" +
                               std::to_string(e.rank()) + " peer=" +
                               std::to_string(e.peer()) + ": " + e.what();
            }
          }
          if (token.valid()) {
            std::lock_guard<std::mutex> lock(mu_);
            inflight_.erase(job.sequence);
          }
          lease.Release();
          response.service_seconds =
              SecondsSince(dequeued_at, std::chrono::steady_clock::now());
          // The machine was used whether the run completed, faulted, or
          // was cancelled mid-flight.
          charged = static_cast<double>(ranks) * response.service_seconds;
          if (cacheable && response.status == ServeStatus::kOk) {
            // Publish the freshly mined report for later identical
            // requests (Put copies; the response keeps its own).
            results_.Put(job.request.dataset, digest, response.report);
          }
        }
      }
    }
  }
  if (response.service_seconds == 0.0) {
    response.service_seconds =
        SecondsSince(dequeued_at, std::chrono::steady_clock::now());
  }

  std::lock_guard<std::mutex> lock(mu_);
  TenantUsage& usage = tenants_[job.request.tenant];
  --usage.in_flight;
  ++usage.dispatched;
  usage.rank_seconds += charged;
  stats_.rank_seconds_charged += charged;
  switch (response.status) {
    case ServeStatus::kOk:
      ++stats_.completed;
      break;
    case ServeStatus::kMiningFault:
      ++stats_.mining_faults;
      break;
    case ServeStatus::kDeadlineExceeded:
      ++stats_.deadline_exceeded;
      if (shed_in_queue) ++stats_.expired_in_queue;
      break;
    case ServeStatus::kCancelled:
      ++stats_.cancelled;
      break;
    default:
      break;  // unreachable: Process only produces the statuses above
  }
  return response;
}

void MiningServer::WatchdogMain() {
  const auto poll = std::chrono::duration<double, std::milli>(
      config_.watchdog_ms / 4.0 > 1.0 ? config_.watchdog_ms / 4.0 : 1.0);
  std::unique_lock<std::mutex> lock(mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, poll);
    if (watchdog_stop_) break;
    for (auto& [sequence, token] : inflight_) {
      // Heartbeats come only from genuine progress points, so a token
      // that stopped beating is a world where *no* rank is advancing.
      if (token.Check() == CancelReason::kNone &&
          token.MillisSinceBeat() > config_.watchdog_ms) {
        token.Cancel(CancelReason::kWatchdog);
        ++stats_.watchdog_fired;
      }
    }
  }
}

ServerStats MiningServer::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats stats = stats_;
  stats.queue_depth = queued_;
  stats.cache_hits = cache_.Hits();
  stats.cache_misses = cache_.Misses();
  stats.cache_evictions = cache_.Evictions();
  stats.cache_resident_bytes = cache_.ResidentBytes();
  stats.result_hits = results_.Hits();
  stats.result_misses = results_.Misses();
  stats.result_evictions = results_.Evictions();
  stats.result_resident_bytes = results_.ResidentBytes();
  stats.leased_ranks = pool_.capacity() - pool_.Available();
  return stats;
}

TenantUsage MiningServer::UsageFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantUsage() : it->second;
}

void MiningServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Only now stop the watchdog: it stays armed through the drain, so a
  // request stalling during shutdown still becomes a typed abort instead
  // of wedging this join.
  {
    std::lock_guard<std::mutex> lock(mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  // Workers drained every queued request and returned every lease; close
  // the pool so any stray Lease call fails fast instead of blocking.
  pool_.Close();
}

}  // namespace pam::serve
