#include "pam/serve/server.h"

#include <utility>

#include "pam/mp/fault.h"
#include "pam/obs/trace.h"

namespace pam::serve {

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kQueueFull:
      return "queue_full";
    case ServeStatus::kTenantInFlightExceeded:
      return "tenant_in_flight_exceeded";
    case ServeStatus::kTenantBudgetExhausted:
      return "tenant_budget_exhausted";
    case ServeStatus::kUnknownDataset:
      return "unknown_dataset";
    case ServeStatus::kInvalidRequest:
      return "invalid_request";
    case ServeStatus::kShuttingDown:
      return "shutting_down";
    case ServeStatus::kMiningFault:
      return "mining_fault";
  }
  return "?";
}

bool IsRejection(ServeStatus status) {
  switch (status) {
    case ServeStatus::kQueueFull:
    case ServeStatus::kTenantInFlightExceeded:
    case ServeStatus::kTenantBudgetExhausted:
    case ServeStatus::kUnknownDataset:
    case ServeStatus::kInvalidRequest:
    case ServeStatus::kShuttingDown:
      return true;
    case ServeStatus::kOk:
    case ServeStatus::kMiningFault:
      return false;
  }
  return false;
}

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

MiningServer::MiningServer(const ServerConfig& config)
    : config_(config),
      pool_(config.pool_ranks),
      cache_(config.cache_page_bytes) {
  serve_obs_.origin = std::chrono::steady_clock::now();
  const int workers = config_.workers > 0 ? config_.workers : 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { WorkerMain(w); });
  }
}

MiningServer::~MiningServer() { Shutdown(); }

void MiningServer::AddTraceSink(obs::TraceSink* sink) {
  if (sink != nullptr) serve_obs_.trace_sinks.push_back(sink);
}

const TenantQuota& MiningServer::QuotaFor(const std::string& tenant) const {
  auto it = config_.tenant_quotas.find(tenant);
  return it == config_.tenant_quotas.end() ? config_.default_quota
                                           : it->second;
}

std::future<ServeResponse> MiningServer::Reject(ServeStatus status,
                                                std::string error) {
  std::promise<ServeResponse> promise;
  ServeResponse response;
  response.status = status;
  response.error = std::move(error);
  promise.set_value(std::move(response));
  return promise.get_future();
}

std::future<ServeResponse> MiningServer::Submit(MiningRequest request) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.submitted;
  if (!accepting_) {
    ++stats_.rejected_shutdown;
    return Reject(ServeStatus::kShuttingDown, "server is shutting down");
  }
  if (request.dataset.empty()) {
    ++stats_.rejected_invalid;
    return Reject(ServeStatus::kInvalidRequest, "request names no dataset");
  }
  const int ranks = IsParallel(request.algorithm) ? request.num_ranks : 1;
  if (ranks < 1 || ranks > pool_.capacity()) {
    ++stats_.rejected_invalid;
    return Reject(ServeStatus::kInvalidRequest,
                  "requested " + std::to_string(ranks) + " ranks from a " +
                      std::to_string(pool_.capacity()) + "-rank pool");
  }
  if (!cache_.Contains(request.dataset)) {
    ++stats_.rejected_unknown_dataset;
    return Reject(ServeStatus::kUnknownDataset,
                  "unknown dataset '" + request.dataset + "'");
  }
  const TenantQuota& quota = QuotaFor(request.tenant);
  TenantUsage& usage = tenants_[request.tenant];
  if (quota.max_in_flight > 0 && usage.in_flight >= quota.max_in_flight) {
    ++stats_.rejected_tenant_in_flight;
    return Reject(ServeStatus::kTenantInFlightExceeded,
                  "tenant '" + request.tenant + "' already has " +
                      std::to_string(usage.in_flight) +
                      " requests in flight");
  }
  if (quota.rank_seconds > 0.0 && usage.rank_seconds >= quota.rank_seconds) {
    ++stats_.rejected_tenant_budget;
    return Reject(ServeStatus::kTenantBudgetExhausted,
                  "tenant '" + request.tenant +
                      "' exhausted its rank-seconds budget");
  }
  if (queue_.size() >= config_.max_queue) {
    ++stats_.rejected_queue_full;
    return Reject(ServeStatus::kQueueFull,
                  "admission queue is full (" +
                      std::to_string(config_.max_queue) + " requests)");
  }

  ++stats_.admitted;
  ++usage.in_flight;
  ++usage.admitted;
  Job job;
  job.request = std::move(request);
  job.enqueued_at = std::chrono::steady_clock::now();
  job.sequence = next_sequence_++;
  std::future<ServeResponse> future = job.promise.get_future();
  queue_.push_back(std::move(job));
  stats_.queue_depth = queue_.size();
  if (queue_.size() > stats_.peak_queue_depth) {
    stats_.peak_queue_depth = queue_.size();
  }
  queue_cv_.notify_one();
  return future;
}

ServeResponse MiningServer::Execute(MiningRequest request) {
  return Submit(std::move(request)).get();
}

void MiningServer::WorkerMain(int worker_id) {
  // The worker's span emitter: one serve_request span per executed
  // request, on this worker's track, timestamped from server start.
  obs::RankTracer tracer(&serve_obs_, worker_id);
  obs::ScopedTracerInstall install(&tracer);
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      stats_.queue_depth = queue_.size();
    }
    ServeResponse response = Process(job, worker_id);
    // The promise resolves only after the rank lease is back in the pool
    // and the tenant accounting is settled, so a caller observing the
    // response observes a consistent server.
    job.promise.set_value(std::move(response));
  }
}

ServeResponse MiningServer::Process(Job& job, int worker_id) {
  (void)worker_id;  // track identity comes from the installed tracer
  const auto dequeued_at = std::chrono::steady_clock::now();
  ServeResponse response;
  response.queue_seconds = SecondsSince(job.enqueued_at, dequeued_at);

  const int ranks =
      IsParallel(job.request.algorithm) ? job.request.num_ranks : 1;
  double charged = 0.0;
  {
    obs::ScopedSpan span(obs::SpanKind::kServeRequest,
                         static_cast<std::int64_t>(job.sequence), nullptr);
    Result<DatasetHandle> dataset = cache_.Get(job.request.dataset);
    if (!dataset.ok()) {
      // Registered at admission but gone or unloadable now (loader I/O
      // failure); still a typed response, never an exception.
      response.status = ServeStatus::kUnknownDataset;
      response.error = dataset.status().message();
      span.Cancel();
    } else {
      response.dataset = dataset.value();
      RankLease lease = pool_.Lease(ranks);
      if (!lease.held()) {
        response.status = ServeStatus::kShuttingDown;
        response.error = "rank pool closed";
        span.Cancel();
      } else {
        MiningSession session;
        try {
          response.report = session.Run(job.request, *response.dataset->db);
          response.status = ServeStatus::kOk;
        } catch (const CommError& e) {
          response.status = ServeStatus::kMiningFault;
          response.error = std::string("transport failure: kind=") +
                           CommErrorKindName(e.kind()) + " rank=" +
                           std::to_string(e.rank()) + " peer=" +
                           std::to_string(e.peer()) + ": " + e.what();
        }
        lease.Release();
        response.service_seconds =
            SecondsSince(dequeued_at, std::chrono::steady_clock::now());
        // The machine was used whether the run completed or faulted.
        charged = static_cast<double>(ranks) * response.service_seconds;
      }
    }
  }
  if (response.service_seconds == 0.0) {
    response.service_seconds =
        SecondsSince(dequeued_at, std::chrono::steady_clock::now());
  }

  std::lock_guard<std::mutex> lock(mu_);
  TenantUsage& usage = tenants_[job.request.tenant];
  --usage.in_flight;
  usage.rank_seconds += charged;
  stats_.rank_seconds_charged += charged;
  if (response.status == ServeStatus::kOk) {
    ++stats_.completed;
  } else if (response.status == ServeStatus::kMiningFault) {
    ++stats_.mining_faults;
  }
  return response;
}

ServerStats MiningServer::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats stats = stats_;
  stats.queue_depth = queue_.size();
  stats.cache_hits = cache_.Hits();
  stats.cache_misses = cache_.Misses();
  stats.leased_ranks = pool_.capacity() - pool_.Available();
  return stats;
}

TenantUsage MiningServer::UsageFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantUsage() : it->second;
}

void MiningServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Workers drained every queued request and returned every lease; close
  // the pool so any stray Lease call fails fast instead of blocking.
  pool_.Close();
}

}  // namespace pam::serve
