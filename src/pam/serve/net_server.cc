#include "pam/serve/net_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <utility>

namespace pam::serve {

namespace {

Status Errno(const std::string& what) {
  return Status::Error(what + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Writes the whole buffer on a blocking fd, riding out EINTR.
Status WriteAll(int fd, const std::byte* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

/// One finished request's encoded response, routed back to its
/// connection by id (the connection may be gone — then it is dropped).
struct Completion {
  std::uint64_t conn_id = 0;
  std::uint64_t tag = 0;
  std::vector<std::byte> frame;
};

/// State shared between the loop thread and worker-thread completion
/// callbacks. Callbacks hold it via shared_ptr, so a callback firing
/// after Stop() (the MiningServer outlives the front-end) finds valid
/// memory and a closed flag rather than a dangling server.
struct NetServer::SharedState {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Completion> completions;
  int wake_write_fd = -1;
  bool stopped = false;
  bool shutdown_requested = false;
  std::uint64_t connections_accepted = 0;

  ~SharedState() {
    if (wake_write_fd >= 0) ::close(wake_write_fd);
  }

  void Push(Completion completion) {
    std::lock_guard<std::mutex> lock(mu);
    if (stopped) return;  // loop is gone; the response has no reader
    completions.push_back(std::move(completion));
    const char byte = 1;
    // The pipe is non-blocking: a full pipe is fine, the loop is already
    // scheduled to wake and will drain the whole queue.
    (void)::write(wake_write_fd, &byte, 1);
  }
};

struct NetServer::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  FrameReader reader;
  bool negotiated = false;
  bool read_closed = false;
  bool close_after_flush = false;
  std::vector<std::byte> out;
  std::size_t out_offset = 0;
  /// In-flight kMine tags and their cancel tokens (fired on kCancel, and
  /// en masse when the connection dies with requests outstanding).
  std::map<std::uint64_t, CancelToken> inflight;

  explicit Connection(std::size_t max_frame_bytes)
      : reader(max_frame_bytes) {}
  Connection() : reader(FrameReader::kDefaultMaxFrameBytes) {}
};

NetServer::NetServer(MiningServer* server, const NetServerConfig& config)
    : server_(server), config_(config) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (state_ != nullptr) return Status::Error("NetServer already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Error("bad bind address '" + config_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    const Status status = Errno("bind " + config_.bind_address + ":" +
                                std::to_string(config_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) != 0) {
    const Status status = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (!SetNonBlocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Errno("fcntl listener");
  }

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Errno("pipe2");
  }
  wake_read_fd_ = pipe_fds[0];
  state_ = std::make_shared<SharedState>();
  state_->wake_write_fd = pipe_fds[1];

  loop_ = std::thread([this] { LoopMain(); });
  return Status::Ok();
}

bool NetServer::WaitForShutdownRequest() {
  if (state_ == nullptr) return false;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] {
    return state_->shutdown_requested || state_->stopped;
  });
  return state_->shutdown_requested;
}

std::uint64_t NetServer::ConnectionsAccepted() const {
  if (state_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->connections_accepted;
}

void NetServer::Stop() {
  if (state_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->stopped) {
      // Already stopping/stopped; just make sure the loop is joined.
      if (loop_.joinable()) loop_.join();
      return;
    }
    state_->stopped = true;
    const char byte = 1;
    (void)::write(state_->wake_write_fd, &byte, 1);
  }
  state_->cv.notify_all();
  if (loop_.joinable()) loop_.join();
}

void NetServer::LoopMain() {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;  // conn id per fds entry (0 = none)
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->stopped) break;
    }
    fds.clear();
    fd_conn.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fd_conn.push_back(0);
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fd_conn.push_back(0);
    for (auto& [id, conn] : connections_) {
      short events = 0;
      if (!conn.read_closed && !conn.close_after_flush) events |= POLLIN;
      if (conn.out_offset < conn.out.size()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
      fd_conn.push_back(id);
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) {
      char drain[256];
      while (::read(wake_read_fd_, drain, sizeof drain) > 0) {
      }
      DrainCompletions();
    }
    if (fds[0].revents & POLLIN) AcceptNew();
    for (std::size_t i = 2; i < fds.size(); ++i) {
      const std::uint64_t id = fd_conn[i];
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;  // closed by an earlier event
      Connection& conn = it->second;
      if (fds[i].revents & (POLLERR | POLLNVAL | POLLHUP)) {
        // POLLHUP is a full peer close (a half-close via SHUT_WR arrives
        // as POLLIN + recv()==0 instead): nobody will read our
        // responses, so drop the connection and cancel its work.
        CloseConnection(id, /*cancel_inflight=*/true);
        continue;
      }
      if (fds[i].revents & POLLIN) {
        if (!ReadFrom(conn)) {
          CloseConnection(id, /*cancel_inflight=*/true);
          continue;
        }
        if (!DispatchFrames(conn)) {
          CloseConnection(id, /*cancel_inflight=*/true);
          continue;
        }
      }
      if (!FlushWrites(conn)) {
        CloseConnection(id, /*cancel_inflight=*/true);
        continue;
      }
      const bool flushed = conn.out_offset >= conn.out.size();
      if (flushed && conn.close_after_flush) {
        CloseConnection(id, /*cancel_inflight=*/true);
      } else if (flushed && conn.read_closed && conn.inflight.empty()) {
        // Half-close complete: the client sent EOF, every response it was
        // owed has been delivered.
        CloseConnection(id, /*cancel_inflight=*/false);
      }
    }
  }
  // Best-effort final flush, then tear everything down.
  for (auto& [id, conn] : connections_) {
    (void)FlushWrites(conn);
    for (auto& [tag, token] : conn.inflight) token.Cancel();
    ::close(conn.fd);
  }
  connections_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_read_fd_);
  wake_read_fd_ = -1;
  state_->cv.notify_all();
}

void NetServer::AcceptNew() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: nothing to accept
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    Connection conn(config_.max_frame_bytes);
    conn.fd = fd;
    conn.id = next_conn_id_++;
    connections_.emplace(conn.id, std::move(conn));
    std::lock_guard<std::mutex> lock(state_->mu);
    ++state_->connections_accepted;
  }
}

bool NetServer::ReadFrom(Connection& conn) {
  std::byte buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buffer, sizeof buffer, 0);
    if (n > 0) {
      conn.reader.Feed(std::span<const std::byte>(
          buffer, static_cast<std::size_t>(n)));
      continue;
    }
    if (n == 0) {
      // EOF: half-close. Responses still owed flow out before we close.
      conn.read_closed = true;
      return true;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;  // connection error
  }
}

bool NetServer::DispatchFrames(Connection& conn) {
  FrameType type;
  std::vector<std::byte> body;
  for (;;) {
    const FrameReader::NextResult next = conn.reader.Next(&type, &body);
    if (next == FrameReader::NextResult::kNeedMore) return true;
    if (next == FrameReader::NextResult::kError) {
      // Framing lost: a garbage or oversize stream. Say why, then close.
      const bool oversize =
          conn.reader.error().find("exceeds") != std::string::npos;
      QueueError(conn,
                 oversize ? WireError::kFrameTooLarge
                          : WireError::kMalformedFrame,
                 conn.reader.error());
      conn.close_after_flush = true;
      return true;
    }

    if (!conn.negotiated) {
      if (type != FrameType::kHello) {
        QueueError(conn, WireError::kUnexpectedFrame,
                   "expected hello before any other frame");
        conn.close_after_flush = true;
        return true;
      }
      Result<HelloFrame> hello = DecodeHello(body);
      if (!hello.ok()) {
        QueueError(conn, WireError::kMalformedFrame,
                   hello.status().message());
        conn.close_after_flush = true;
        return true;
      }
      Result<ProtocolVersion> version = NegotiateVersion(hello.value());
      if (!version.ok()) {
        QueueError(conn, WireError::kVersionMismatch,
                   version.status().message());
        conn.close_after_flush = true;
        return true;
      }
      HelloAckFrame ack;
      ack.version = version.value();
      ack.server = "pam_serve/1";
      QueueWrite(conn, EncodeHelloAck(ack));
      conn.negotiated = true;
      continue;
    }

    switch (type) {
      case FrameType::kMine:
        HandleMine(conn, body);
        break;
      case FrameType::kCancel: {
        Result<CancelFrame> cancel = DecodeCancel(body);
        if (!cancel.ok()) {
          QueueError(conn, WireError::kMalformedFrame,
                     cancel.status().message());
          conn.close_after_flush = true;
          return true;
        }
        auto it = conn.inflight.find(cancel->tag);
        if (it == conn.inflight.end()) {
          QueueError(conn, WireError::kUnknownTag,
                     "cancel of unknown tag " +
                         std::to_string(cancel->tag));
        } else {
          it->second.Cancel();
        }
        break;
      }
      case FrameType::kStats: {
        Result<StatsFrame> stats = DecodeStats(body);
        if (!stats.ok()) {
          QueueError(conn, WireError::kMalformedFrame,
                     stats.status().message());
          conn.close_after_flush = true;
          return true;
        }
        StatsResponseFrame response;
        response.tag = stats->tag;
        response.stats = server_->Stats();
        QueueWrite(conn, EncodeStatsResponse(response));
        break;
      }
      case FrameType::kShutdown: {
        if (!config_.allow_shutdown) {
          QueueError(conn, WireError::kShutdownForbidden,
                     "server does not honor remote shutdown");
          break;
        }
        std::lock_guard<std::mutex> lock(state_->mu);
        state_->shutdown_requested = true;
        state_->cv.notify_all();
        break;
      }
      default:
        QueueError(conn, WireError::kUnexpectedFrame,
                   "server received a server-to-client frame");
        conn.close_after_flush = true;
        return true;
    }
  }
}

void NetServer::HandleMine(Connection& conn,
                           std::span<const std::byte> body) {
  Result<MineFrame> mine = DecodeMine(body);
  if (!mine.ok()) {
    QueueError(conn, WireError::kMalformedFrame, mine.status().message());
    conn.close_after_flush = true;
    return;
  }
  const std::uint64_t tag = mine->tag;
  if (conn.inflight.count(tag) > 0) {
    QueueError(conn, WireError::kDuplicateTag,
               "tag " + std::to_string(tag) + " already in flight");
    return;
  }
  MiningRequest request = std::move(mine->request);
  // The connection holds the token so kCancel frames and connection death
  // can fire it; the server arms deadlines on the same token.
  request.cancel = CancelToken::Create();
  conn.inflight.emplace(tag, request.cancel);

  std::shared_ptr<SharedState> state = state_;
  const std::uint64_t conn_id = conn.id;
  server_->SubmitWith(
      std::move(request),
      [state, conn_id, tag](ServeResponse response) {
        // Worker thread: encode here, off the event loop, then hand the
        // bytes over through the self-pipe.
        Completion completion;
        completion.conn_id = conn_id;
        completion.tag = tag;
        completion.frame = EncodeResponse(ToResponseFrame(tag, response));
        state->Push(std::move(completion));
      });
}

void NetServer::QueueWrite(Connection& conn, std::vector<std::byte> frame) {
  // Compact the flushed prefix before appending.
  if (conn.out_offset > 0 && conn.out_offset >= conn.out.size() / 2) {
    conn.out.erase(conn.out.begin(),
                   conn.out.begin() +
                       static_cast<std::ptrdiff_t>(conn.out_offset));
    conn.out_offset = 0;
  }
  conn.out.insert(conn.out.end(), frame.begin(), frame.end());
}

void NetServer::QueueError(Connection& conn, WireError error,
                           std::string message) {
  ErrorFrame frame;
  frame.error = error;
  frame.message = std::move(message);
  QueueWrite(conn, EncodeError(frame));
}

bool NetServer::FlushWrites(Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_offset,
               conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void NetServer::CloseConnection(std::uint64_t conn_id, bool cancel_inflight) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  if (cancel_inflight) {
    // The client is unreachable: stop burning pool time on its requests.
    // Completions already in flight route to a dead conn id and drop.
    for (auto& [tag, token] : conn.inflight) token.Cancel();
  }
  ::close(conn.fd);
  connections_.erase(it);
}

void NetServer::DrainCompletions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    batch.swap(state_->completions);
  }
  for (Completion& completion : batch) {
    auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;  // connection died meanwhile
    it->second.inflight.erase(completion.tag);
    QueueWrite(it->second, std::move(completion.frame));
  }
}

// --- NetClient ------------------------------------------------------------

NetClient::~NetClient() { Close(); }

Status NetClient::Connect(const std::string& host, int port) {
  if (fd_ >= 0) return Status::Error("already connected");
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::Error("bad address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status status =
        Errno("connect " + host + ":" + std::to_string(port));
    Close();
    return status;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  const Status hello = SendFrame(EncodeHello(HelloFrame{}));
  if (!hello.ok()) {
    Close();
    return hello;
  }
  Result<ServerFrame> ack = Recv();
  if (!ack.ok()) {
    Close();
    return ack.status();
  }
  if (ack->type == FrameType::kError) {
    const Status status = Status::Error(
        std::string(WireErrorName(ack->error.error)) + ": " +
        ack->error.message);
    Close();
    return status;
  }
  if (ack->type != FrameType::kHelloAck) {
    Close();
    return Status::Error("expected hello_ack, got another frame");
  }
  return Status::Ok();
}

Status NetClient::SendFrame(const std::vector<std::byte>& frame) {
  if (fd_ < 0) return Status::Error("not connected");
  return WriteAll(fd_, frame.data(), frame.size());
}

Status NetClient::SendMine(std::uint64_t tag, const MiningRequest& request) {
  MineFrame mine;
  mine.tag = tag;
  mine.request = request;
  return SendFrame(EncodeMine(mine));
}

Status NetClient::SendCancel(std::uint64_t tag) {
  return SendFrame(EncodeCancel(CancelFrame{tag}));
}

Status NetClient::SendStats(std::uint64_t tag) {
  return SendFrame(EncodeStats(StatsFrame{tag}));
}

Status NetClient::SendShutdown() { return SendFrame(EncodeShutdown()); }

Status NetClient::SendRaw(std::span<const std::byte> bytes) {
  if (fd_ < 0) return Status::Error("not connected");
  return WriteAll(fd_, bytes.data(), bytes.size());
}

void NetClient::CloseWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void NetClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Result<NetClient::ServerFrame> NetClient::Recv() {
  if (fd_ < 0) return Status::Error("not connected");
  FrameType type;
  std::vector<std::byte> body;
  for (;;) {
    const FrameReader::NextResult next = reader_.Next(&type, &body);
    if (next == FrameReader::NextResult::kError) {
      return Status::Error("stream corrupt: " + reader_.error());
    }
    if (next == FrameReader::NextResult::kFrame) break;
    std::byte buffer[64 * 1024];
    const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
    if (n == 0) return Status::Error("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    reader_.Feed(
        std::span<const std::byte>(buffer, static_cast<std::size_t>(n)));
  }

  ServerFrame frame;
  frame.type = type;
  switch (type) {
    case FrameType::kHelloAck: {
      Result<HelloAckFrame> ack = DecodeHelloAck(body);
      if (!ack.ok()) return ack.status();
      version_ = ack->version;
      return frame;
    }
    case FrameType::kResponse: {
      Result<ResponseFrame> response = DecodeResponse(body);
      if (!response.ok()) return response.status();
      frame.response = std::move(response.value());
      return frame;
    }
    case FrameType::kStatsResponse: {
      Result<StatsResponseFrame> stats = DecodeStatsResponse(body);
      if (!stats.ok()) return stats.status();
      frame.stats = std::move(stats.value());
      return frame;
    }
    case FrameType::kError: {
      Result<ErrorFrame> error = DecodeError(body);
      if (!error.ok()) return error.status();
      frame.error = std::move(error.value());
      return frame;
    }
    default:
      return Status::Error("unexpected server frame type");
  }
}

}  // namespace pam::serve
