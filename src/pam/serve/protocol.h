#ifndef PAM_SERVE_PROTOCOL_H_
#define PAM_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pam/api/session.h"
#include "pam/serve/server.h"
#include "pam/util/status.h"

namespace pam::serve {

/// The pam_serve wire protocol (DESIGN.md §15): a versioned,
/// length-prefixed binary framing shared by every front-end of the mining
/// server — the TCP NetServer, the pam_client CLI, and the in-process
/// pam_serve tool (whose text lines parse through the same Command type
/// and print through the same formatter). One codec, three transports.
///
/// Every frame is
///
///   [u32 body_bytes (LE)] [u8 FrameType] [body]
///
/// and a connection opens with version negotiation: the client's kHello
/// carries the magic and its supported [min, max] version range, the
/// server answers kHelloAck with the highest version both sides speak, or
/// a typed kError{kVersionMismatch} frame and a close. All integers are
/// little-endian; strings are u32 length + bytes (no terminator).
enum class ProtocolVersion : std::uint16_t {
  kV1 = 1,
};

/// The version range this build speaks. Negotiation picks
/// min(client max, server max) if the ranges intersect.
inline constexpr ProtocolVersion kMinProtocolVersion = ProtocolVersion::kV1;
inline constexpr ProtocolVersion kMaxProtocolVersion = ProtocolVersion::kV1;

/// First field of the kHello body; anything else is not this protocol
/// (the fast garbage-connection reject).
inline constexpr std::uint32_t kProtocolMagic = 0x50414D57;  // "PAMW"

enum class FrameType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kMine = 3,          // submit one MiningRequest, tagged by the client
  kCancel = 4,        // fire the cancel token of an earlier kMine tag
  kStats = 5,         // poll the server's counter snapshot
  kResponse = 6,      // one ServeResponse, echoing its kMine tag
  kStatsResponse = 7, // counter snapshot, echoing its kStats tag
  kError = 8,         // typed protocol-level error
  kShutdown = 9,      // ask the daemon to drain and exit (if allowed)
};

/// True for the frame types a client may send after negotiation.
bool IsClientFrame(FrameType type);

/// Typed protocol-level errors (kError frames). Frame- and
/// connection-level failures only; mining failures travel as ServeStatus
/// inside kResponse frames.
enum class WireError : std::uint16_t {
  kVersionMismatch = 1,  // no common protocol version; connection closes
  kMalformedFrame = 2,   // body did not decode; connection closes
  kFrameTooLarge = 3,    // length prefix over the limit; connection closes
  kUnexpectedFrame = 4,  // e.g. kMine before kHello; connection closes
  kDuplicateTag = 5,     // kMine tag already in flight on this connection
  kUnknownTag = 6,       // kCancel names no in-flight tag
  kShutdownForbidden = 7,  // kShutdown without --allow-shutdown
};

/// Stable lowercase name ("version_mismatch", ...).
const char* WireErrorName(WireError error);

/// Does this error end the connection (after the error frame flushes)?
bool WireErrorClosesConnection(WireError error);

// ---------------------------------------------------------------------------
// Frame payload types

struct HelloFrame {
  std::uint16_t min_version =
      static_cast<std::uint16_t>(kMinProtocolVersion);
  std::uint16_t max_version =
      static_cast<std::uint16_t>(kMaxProtocolVersion);
};

struct HelloAckFrame {
  ProtocolVersion version = kMaxProtocolVersion;
  /// Server software banner, e.g. "pam_serve/1".
  std::string server;
};

/// One submitted request. `tag` is a client-chosen id echoed on the
/// response; it must be unique among the connection's in-flight requests.
/// Only the wire-expressible subset of MiningRequest travels (algorithm,
/// ranks, minsup, rules, threads, max_k, deadline); fault injection and
/// caller-held tokens are in-process concepts.
struct MineFrame {
  std::uint64_t tag = 0;
  MiningRequest request;
};

struct CancelFrame {
  std::uint64_t tag = 0;
};

struct StatsFrame {
  std::uint64_t tag = 0;
};

/// One served response. Carries the full MiningReport payload (frequent
/// itemsets and rules) so a remote client can verify byte-identity with a
/// local run; metrics and timelines stay server-side.
struct ResponseFrame {
  std::uint64_t tag = 0;
  ServeStatus status = ServeStatus::kOk;
  std::string error;
  double queue_seconds = 0.0;
  double service_seconds = 0.0;
  bool from_result_cache = false;
  FrequentItemsets frequent;
  std::vector<Rule> rules;
  Count minsup_count = 0;
};

struct StatsResponseFrame {
  std::uint64_t tag = 0;
  ServerStats stats;
};

struct ErrorFrame {
  WireError error = WireError::kMalformedFrame;
  std::string message;
};

// ---------------------------------------------------------------------------
// Encode / decode. Encoders return a complete frame (header + body);
// decoders take the body only (the FrameReader strips the header) and
// fail with a Status on truncation, trailing bytes, or invalid values —
// never by reading out of bounds.

std::vector<std::byte> EncodeHello(const HelloFrame& hello);
std::vector<std::byte> EncodeHelloAck(const HelloAckFrame& ack);
std::vector<std::byte> EncodeMine(const MineFrame& mine);
std::vector<std::byte> EncodeCancel(const CancelFrame& cancel);
std::vector<std::byte> EncodeStats(const StatsFrame& stats);
std::vector<std::byte> EncodeResponse(const ResponseFrame& response);
std::vector<std::byte> EncodeStatsResponse(const StatsResponseFrame& stats);
std::vector<std::byte> EncodeError(const ErrorFrame& error);
std::vector<std::byte> EncodeShutdown();

/// Convenience: builds a ResponseFrame from a served response.
ResponseFrame ToResponseFrame(std::uint64_t tag, const ServeResponse& response);
/// Convenience: rehydrates the client-visible slice of a ServeResponse.
ServeResponse FromResponseFrame(ResponseFrame&& frame);

Result<HelloFrame> DecodeHello(std::span<const std::byte> body);
Result<HelloAckFrame> DecodeHelloAck(std::span<const std::byte> body);
Result<MineFrame> DecodeMine(std::span<const std::byte> body);
Result<CancelFrame> DecodeCancel(std::span<const std::byte> body);
Result<StatsFrame> DecodeStats(std::span<const std::byte> body);
Result<ResponseFrame> DecodeResponse(std::span<const std::byte> body);
Result<StatsResponseFrame> DecodeStatsResponse(
    std::span<const std::byte> body);
Result<ErrorFrame> DecodeError(std::span<const std::byte> body);

/// Negotiates the protocol version for a client hello against this
/// build's [kMinProtocolVersion, kMaxProtocolVersion] range. Returns an
/// error Status when the ranges do not intersect (or the hello is
/// malformed, e.g. min > max).
Result<ProtocolVersion> NegotiateVersion(const HelloFrame& hello);

// ---------------------------------------------------------------------------
// Incremental frame reassembly for stream transports.

/// Splits a byte stream back into frames. Feed() appends raw bytes as
/// they arrive; Next() yields complete frames until the buffer runs dry.
/// A length prefix over `max_frame_bytes` or an unknown frame type is a
/// hard kError state: stream framing is lost and the connection must
/// close (there is no way to resynchronize a length-prefixed stream).
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  static constexpr std::size_t kDefaultMaxFrameBytes = 256u << 20;

  void Feed(std::span<const std::byte> bytes);

  enum class NextResult {
    kFrame,     // *type / *body filled with one complete frame
    kNeedMore,  // the buffer holds no complete frame yet
    kError,     // framing lost (oversize length or unknown type)
  };
  NextResult Next(FrameType* type, std::vector<std::byte>* body);

  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed as frames.
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  const std::size_t max_frame_bytes_;
  std::vector<std::byte> buffer_;
  std::size_t consumed_ = 0;
  bool failed_ = false;
  std::string error_;
};

// ---------------------------------------------------------------------------
// The text line protocol (the pam_serve scripting surface, now shared
// with pam_client). One command per line; '#' starts a comment:
//
//   mine id=TAG tenant=NAME dataset=NAME [algorithm=ALG] [ranks=P]
//        [minsup=PCT] [minconf=PCT] [rules] [threads=T] [max-k=K]
//        [deadline-ms=D]
//   cancel TAG
//   stats
//   shutdown

struct Command {
  enum class Verb {
    kNone,  // blank or comment-only line
    kMine,
    kCancel,
    kStats,
    kShutdown,
  };
  Verb verb = Verb::kNone;
  /// kMine: the request id (empty = caller assigns); kCancel: the target.
  std::string id;
  MiningRequest request;  // kMine only
};

/// Parses one line of the text protocol. Key order is free-form; bare
/// keys (e.g. `rules`) are booleans. Fails with a typed Status on an
/// unknown verb, an unknown algorithm, or a malformed field — the callers
/// print it as a warning and skip the line, exactly the old tool
/// behaviour.
Result<Command> ParseCommandLine(const std::string& line);

/// Renders one response as the tools' standard line, e.g.
///   response id=r1 tenant=acme dataset=retail status=ok itemsets=120
///   rules=4 cached=0 queue_ms=0.21 service_ms=14.80
/// (no trailing newline). Error statuses render status= and error= only.
std::string FormatResponseLine(const std::string& id,
                               const std::string& tenant,
                               const std::string& dataset,
                               ServeStatus status, const std::string& error,
                               std::size_t itemsets, std::size_t rules,
                               double queue_ms, double service_ms,
                               bool from_result_cache);

/// Renders the server counter summary the tools print at exit (two
/// lines, trailing newline included).
std::string FormatStatsSummary(const ServerStats& stats);

}  // namespace pam::serve

#endif  // PAM_SERVE_PROTOCOL_H_
