#include "pam/serve/protocol.h"

#include <cstring>
#include <sstream>
#include <utility>

namespace pam::serve {
namespace {

// --- little-endian primitive writer / reader over std::byte buffers.

class Writer {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }
  void U16(std::uint16_t v) {
    U8(static_cast<std::uint8_t>(v));
    U8(static_cast<std::uint8_t>(v >> 8));
  }
  void U32(std::uint32_t v) {
    U16(static_cast<std::uint16_t>(v));
    U16(static_cast<std::uint16_t>(v >> 16));
  }
  void U64(std::uint64_t v) {
    U32(static_cast<std::uint32_t>(v));
    U32(static_cast<std::uint32_t>(v >> 32));
  }
  void F64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    U64(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    out_.insert(out_.end(), p, p + s.size());
  }
  void Items(const std::vector<Item>& items) {
    U32(static_cast<std::uint32_t>(items.size()));
    for (Item item : items) U32(item);
  }

  std::vector<std::byte>& bytes() { return out_; }

 private:
  std::vector<std::byte> out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t U16() {
    const std::uint16_t lo = U8();
    return static_cast<std::uint16_t>(lo | (std::uint16_t{U8()} << 8));
  }
  std::uint32_t U32() {
    const std::uint32_t lo = U16();
    return lo | (std::uint32_t{U16()} << 16);
  }
  std::uint64_t U64() {
    const std::uint64_t lo = U32();
    return lo | (std::uint64_t{U32()} << 32);
  }
  double F64() {
    const std::uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string Str() {
    const std::uint32_t n = U32();
    if (!Need(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<Item> Items() {
    const std::uint32_t n = U32();
    // Bound the reserve by what the buffer could actually hold so a
    // corrupt length cannot force a huge allocation before Need() fails.
    if (!Need(static_cast<std::size_t>(n) * 4)) return {};
    std::vector<Item> items;
    items.reserve(n);
    for (std::uint32_t i = 0; i < n && ok_; ++i) items.push_back(U32());
    return items;
  }

  bool Need(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  /// True iff nothing failed and every byte was consumed.
  bool Done() const { return ok_ && pos_ == data_.size(); }
  bool ok() const { return ok_; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::vector<std::byte> Finish(FrameType type, Writer&& body) {
  Writer frame;
  frame.U32(static_cast<std::uint32_t>(body.bytes().size()));
  frame.U8(static_cast<std::uint8_t>(type));
  frame.bytes().insert(frame.bytes().end(), body.bytes().begin(),
                       body.bytes().end());
  return std::move(frame.bytes());
}

Status Malformed(const char* what) {
  return Status::Error(std::string("malformed ") + what + " frame");
}

}  // namespace

bool IsClientFrame(FrameType type) {
  switch (type) {
    case FrameType::kMine:
    case FrameType::kCancel:
    case FrameType::kStats:
    case FrameType::kShutdown:
      return true;
    default:
      return false;
  }
}

const char* WireErrorName(WireError error) {
  switch (error) {
    case WireError::kVersionMismatch: return "version_mismatch";
    case WireError::kMalformedFrame: return "malformed_frame";
    case WireError::kFrameTooLarge: return "frame_too_large";
    case WireError::kUnexpectedFrame: return "unexpected_frame";
    case WireError::kDuplicateTag: return "duplicate_tag";
    case WireError::kUnknownTag: return "unknown_tag";
    case WireError::kShutdownForbidden: return "shutdown_forbidden";
  }
  return "unknown";
}

bool WireErrorClosesConnection(WireError error) {
  switch (error) {
    case WireError::kDuplicateTag:
    case WireError::kUnknownTag:
    case WireError::kShutdownForbidden:
      return false;  // the request is refused; the stream is still framed
    default:
      return true;
  }
}

// --- encoders -------------------------------------------------------------

std::vector<std::byte> EncodeHello(const HelloFrame& hello) {
  Writer w;
  w.U32(kProtocolMagic);
  w.U16(hello.min_version);
  w.U16(hello.max_version);
  return Finish(FrameType::kHello, std::move(w));
}

std::vector<std::byte> EncodeHelloAck(const HelloAckFrame& ack) {
  Writer w;
  w.U16(static_cast<std::uint16_t>(ack.version));
  w.Str(ack.server);
  return Finish(FrameType::kHelloAck, std::move(w));
}

std::vector<std::byte> EncodeMine(const MineFrame& mine) {
  Writer w;
  w.U64(mine.tag);
  w.Str(mine.request.tenant);
  w.Str(mine.request.dataset);
  w.U8(static_cast<std::uint8_t>(mine.request.algorithm));
  w.U32(static_cast<std::uint32_t>(mine.request.num_ranks));
  w.U64(mine.request.config.apriori.minsup_count);
  w.F64(mine.request.config.apriori.minsup_fraction);
  w.U32(static_cast<std::uint32_t>(mine.request.config.apriori.max_k));
  w.U32(static_cast<std::uint32_t>(
      mine.request.config.apriori.threads_per_rank));
  w.U8(mine.request.generate_rules ? 1 : 0);
  w.F64(mine.request.min_confidence);
  w.F64(mine.request.deadline_ms);
  return Finish(FrameType::kMine, std::move(w));
}

std::vector<std::byte> EncodeCancel(const CancelFrame& cancel) {
  Writer w;
  w.U64(cancel.tag);
  return Finish(FrameType::kCancel, std::move(w));
}

std::vector<std::byte> EncodeStats(const StatsFrame& stats) {
  Writer w;
  w.U64(stats.tag);
  return Finish(FrameType::kStats, std::move(w));
}

std::vector<std::byte> EncodeResponse(const ResponseFrame& response) {
  Writer w;
  w.U64(response.tag);
  w.U8(static_cast<std::uint8_t>(response.status));
  w.Str(response.error);
  w.F64(response.queue_seconds);
  w.F64(response.service_seconds);
  w.U8(response.from_result_cache ? 1 : 0);
  w.U64(response.minsup_count);
  w.U32(static_cast<std::uint32_t>(response.frequent.levels.size()));
  for (const ItemsetCollection& level : response.frequent.levels) {
    w.U32(static_cast<std::uint32_t>(level.k()));
    w.U64(level.size());
    for (std::size_t i = 0; i < level.size(); ++i)
      for (Item item : level.Get(i)) w.U32(item);
    for (std::size_t i = 0; i < level.size(); ++i) w.U64(level.count(i));
  }
  w.U64(response.rules.size());
  for (const Rule& rule : response.rules) {
    w.Items(rule.antecedent);
    w.Items(rule.consequent);
    w.U64(rule.joint_count);
    w.F64(rule.support);
    w.F64(rule.confidence);
  }
  return Finish(FrameType::kResponse, std::move(w));
}

std::vector<std::byte> EncodeStatsResponse(const StatsResponseFrame& frame) {
  const ServerStats& s = frame.stats;
  Writer w;
  w.U64(frame.tag);
  w.U64(s.submitted);
  w.U64(s.admitted);
  w.U64(s.completed);
  w.U64(s.mining_faults);
  w.U64(s.cancelled);
  w.U64(s.deadline_exceeded);
  w.U64(s.expired_in_queue);
  w.U64(s.watchdog_fired);
  w.U64(s.rejected_queue_full);
  w.U64(s.rejected_tenant_in_flight);
  w.U64(s.rejected_tenant_budget);
  w.U64(s.rejected_unknown_dataset);
  w.U64(s.rejected_invalid);
  w.U64(s.rejected_shutdown);
  w.U64(s.cache_hits);
  w.U64(s.cache_misses);
  w.U64(s.cache_evictions);
  w.U64(s.result_hits);
  w.U64(s.result_misses);
  w.U64(s.result_evictions);
  w.U64(s.cache_resident_bytes);
  w.U64(s.result_resident_bytes);
  w.U64(s.queue_depth);
  w.U64(s.peak_queue_depth);
  w.U32(static_cast<std::uint32_t>(s.leased_ranks));
  w.F64(s.rank_seconds_charged);
  return Finish(FrameType::kStatsResponse, std::move(w));
}

std::vector<std::byte> EncodeError(const ErrorFrame& error) {
  Writer w;
  w.U16(static_cast<std::uint16_t>(error.error));
  w.Str(error.message);
  return Finish(FrameType::kError, std::move(w));
}

std::vector<std::byte> EncodeShutdown() {
  return Finish(FrameType::kShutdown, Writer());
}

ResponseFrame ToResponseFrame(std::uint64_t tag,
                              const ServeResponse& response) {
  ResponseFrame frame;
  frame.tag = tag;
  frame.status = response.status;
  frame.error = response.error;
  frame.queue_seconds = response.queue_seconds;
  frame.service_seconds = response.service_seconds;
  frame.from_result_cache = response.from_result_cache;
  frame.frequent = response.report.frequent;
  frame.rules = response.report.rules;
  frame.minsup_count = response.report.minsup_count;
  return frame;
}

ServeResponse FromResponseFrame(ResponseFrame&& frame) {
  ServeResponse response;
  response.status = frame.status;
  response.error = std::move(frame.error);
  response.queue_seconds = frame.queue_seconds;
  response.service_seconds = frame.service_seconds;
  response.from_result_cache = frame.from_result_cache;
  response.report.frequent = std::move(frame.frequent);
  response.report.rules = std::move(frame.rules);
  response.report.minsup_count = frame.minsup_count;
  return response;
}

// --- decoders -------------------------------------------------------------

Result<HelloFrame> DecodeHello(std::span<const std::byte> body) {
  Reader r(body);
  const std::uint32_t magic = r.U32();
  HelloFrame hello;
  hello.min_version = r.U16();
  hello.max_version = r.U16();
  if (!r.Done() || magic != kProtocolMagic) return Malformed("hello");
  return hello;
}

Result<HelloAckFrame> DecodeHelloAck(std::span<const std::byte> body) {
  Reader r(body);
  HelloAckFrame ack;
  ack.version = static_cast<ProtocolVersion>(r.U16());
  ack.server = r.Str();
  if (!r.Done()) return Malformed("hello_ack");
  return ack;
}

Result<MineFrame> DecodeMine(std::span<const std::byte> body) {
  Reader r(body);
  MineFrame mine;
  mine.tag = r.U64();
  mine.request.tenant = r.Str();
  mine.request.dataset = r.Str();
  const std::uint8_t algorithm = r.U8();
  mine.request.num_ranks = static_cast<int>(r.U32());
  mine.request.config.apriori.minsup_count = r.U64();
  mine.request.config.apriori.minsup_fraction = r.F64();
  mine.request.config.apriori.max_k = static_cast<int>(r.U32());
  mine.request.config.apriori.threads_per_rank = static_cast<int>(r.U32());
  mine.request.generate_rules = r.U8() != 0;
  mine.request.min_confidence = r.F64();
  mine.request.deadline_ms = r.F64();
  if (!r.Done() ||
      algorithm > static_cast<std::uint8_t>(MiningAlgorithm::kHPA))
    return Malformed("mine");
  mine.request.algorithm = static_cast<MiningAlgorithm>(algorithm);
  return mine;
}

Result<CancelFrame> DecodeCancel(std::span<const std::byte> body) {
  Reader r(body);
  CancelFrame cancel;
  cancel.tag = r.U64();
  if (!r.Done()) return Malformed("cancel");
  return cancel;
}

Result<StatsFrame> DecodeStats(std::span<const std::byte> body) {
  Reader r(body);
  StatsFrame stats;
  stats.tag = r.U64();
  if (!r.Done()) return Malformed("stats");
  return stats;
}

Result<ResponseFrame> DecodeResponse(std::span<const std::byte> body) {
  Reader r(body);
  ResponseFrame response;
  response.tag = r.U64();
  const std::uint8_t status = r.U8();
  response.error = r.Str();
  response.queue_seconds = r.F64();
  response.service_seconds = r.F64();
  response.from_result_cache = r.U8() != 0;
  response.minsup_count = r.U64();
  if (status > static_cast<std::uint8_t>(ServeStatus::kCancelled))
    return Malformed("response");
  response.status = static_cast<ServeStatus>(status);
  const std::uint32_t num_levels = r.U32();
  for (std::uint32_t l = 0; l < num_levels && r.ok(); ++l) {
    const std::uint32_t k = r.U32();
    const std::uint64_t n = r.U64();
    // Each itemset needs k*4 + 8 body bytes, so a valid n is bounded by the
    // body size — reject before allocating on a corrupt length.
    if (k == 0 || k > 4096 || n > body.size() ||
        !r.Need(n * (k * 4u + 8u))) {
      return Malformed("response");
    }
    ItemsetCollection level(static_cast<int>(k));
    std::vector<Item> items(k);
    for (std::uint64_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < k; ++j)
        items[j] = static_cast<Item>(r.U32());
      level.Add(ItemSpan(items.data(), items.size()));
    }
    for (std::uint64_t i = 0; i < n; ++i) level.set_count(i, r.U64());
    response.frequent.levels.push_back(std::move(level));
  }
  const std::uint64_t num_rules = r.U64();
  for (std::uint64_t i = 0; i < num_rules && r.ok(); ++i) {
    Rule rule;
    rule.antecedent = r.Items();
    rule.consequent = r.Items();
    rule.joint_count = r.U64();
    rule.support = r.F64();
    rule.confidence = r.F64();
    response.rules.push_back(std::move(rule));
  }
  if (!r.Done()) return Malformed("response");
  return response;
}

Result<StatsResponseFrame> DecodeStatsResponse(
    std::span<const std::byte> body) {
  Reader r(body);
  StatsResponseFrame frame;
  frame.tag = r.U64();
  ServerStats& s = frame.stats;
  s.submitted = r.U64();
  s.admitted = r.U64();
  s.completed = r.U64();
  s.mining_faults = r.U64();
  s.cancelled = r.U64();
  s.deadline_exceeded = r.U64();
  s.expired_in_queue = r.U64();
  s.watchdog_fired = r.U64();
  s.rejected_queue_full = r.U64();
  s.rejected_tenant_in_flight = r.U64();
  s.rejected_tenant_budget = r.U64();
  s.rejected_unknown_dataset = r.U64();
  s.rejected_invalid = r.U64();
  s.rejected_shutdown = r.U64();
  s.cache_hits = r.U64();
  s.cache_misses = r.U64();
  s.cache_evictions = r.U64();
  s.result_hits = r.U64();
  s.result_misses = r.U64();
  s.result_evictions = r.U64();
  s.cache_resident_bytes = static_cast<std::size_t>(r.U64());
  s.result_resident_bytes = static_cast<std::size_t>(r.U64());
  s.queue_depth = static_cast<std::size_t>(r.U64());
  s.peak_queue_depth = static_cast<std::size_t>(r.U64());
  s.leased_ranks = static_cast<int>(r.U32());
  s.rank_seconds_charged = r.F64();
  if (!r.Done()) return Malformed("stats_response");
  return frame;
}

Result<ErrorFrame> DecodeError(std::span<const std::byte> body) {
  Reader r(body);
  const std::uint16_t code = r.U16();
  ErrorFrame error;
  error.message = r.Str();
  if (!r.Done() || code < 1 ||
      code > static_cast<std::uint16_t>(WireError::kShutdownForbidden))
    return Malformed("error");
  error.error = static_cast<WireError>(code);
  return error;
}

Result<ProtocolVersion> NegotiateVersion(const HelloFrame& hello) {
  if (hello.min_version > hello.max_version)
    return Status::Error("malformed hello: min_version > max_version");
  const std::uint16_t lo = static_cast<std::uint16_t>(kMinProtocolVersion);
  const std::uint16_t hi = static_cast<std::uint16_t>(kMaxProtocolVersion);
  if (hello.max_version < lo || hello.min_version > hi) {
    std::ostringstream msg;
    msg << "no common protocol version: client speaks [" << hello.min_version
        << ", " << hello.max_version << "], server speaks [" << lo << ", "
        << hi << "]";
    return Status::Error(msg.str());
  }
  return static_cast<ProtocolVersion>(std::min(hello.max_version, hi));
}

// --- FrameReader ----------------------------------------------------------

void FrameReader::Feed(std::span<const std::byte> bytes) {
  // Compact before growing once the consumed prefix dominates.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

FrameReader::NextResult FrameReader::Next(FrameType* type,
                                          std::vector<std::byte>* body) {
  if (failed_) return NextResult::kError;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 5) return NextResult::kNeedMore;
  const std::byte* p = buffer_.data() + consumed_;
  std::uint32_t length = 0;
  for (int i = 3; i >= 0; --i)
    length = (length << 8) | static_cast<std::uint32_t>(p[i]);
  if (length > max_frame_bytes_) {
    failed_ = true;
    error_ = "frame length " + std::to_string(length) + " exceeds limit " +
             std::to_string(max_frame_bytes_);
    return NextResult::kError;
  }
  const std::uint8_t raw_type = static_cast<std::uint8_t>(p[4]);
  if (raw_type < static_cast<std::uint8_t>(FrameType::kHello) ||
      raw_type > static_cast<std::uint8_t>(FrameType::kShutdown)) {
    failed_ = true;
    error_ = "unknown frame type " + std::to_string(raw_type);
    return NextResult::kError;
  }
  if (available < 5u + length) return NextResult::kNeedMore;
  *type = static_cast<FrameType>(raw_type);
  body->assign(p + 5, p + 5 + length);
  consumed_ += 5u + length;
  return NextResult::kFrame;
}

// --- line protocol --------------------------------------------------------

namespace {

bool ParseTokens(const std::string& line, std::string* verb,
                 std::vector<std::pair<std::string, std::string>>* kv) {
  std::string body = line;
  const std::size_t hash = body.find('#');
  if (hash != std::string::npos) body.resize(hash);
  std::istringstream in(body);
  if (!(*verb = "", in >> *verb)) return false;
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      kv->emplace_back(token, "true");
    } else {
      kv->emplace_back(token.substr(0, eq), token.substr(eq + 1));
    }
  }
  return true;
}

}  // namespace

Result<Command> ParseCommandLine(const std::string& line) {
  Command command;
  std::string verb;
  std::vector<std::pair<std::string, std::string>> kv;
  if (!ParseTokens(line, &verb, &kv)) return command;  // blank: kNone

  if (verb == "cancel") {
    command.verb = Command::Verb::kCancel;
    if (kv.empty()) return Status::Error("cancel needs a request id");
    command.id = kv.front().first;
    return command;
  }
  if (verb == "stats") {
    command.verb = Command::Verb::kStats;
    return command;
  }
  if (verb == "shutdown") {
    command.verb = Command::Verb::kShutdown;
    return command;
  }
  if (verb != "mine")
    return Status::Error("unknown verb '" + verb + "'");

  command.verb = Command::Verb::kMine;
  MiningRequest& request = command.request;
  request.tenant = "anonymous";
  request.num_ranks = 4;
  request.config.apriori.minsup_fraction = 1.0 / 100.0;
  request.min_confidence = 0.5;
  for (const auto& [key, value] : kv) {
    if (key == "id") {
      command.id = value;
    } else if (key == "tenant") {
      request.tenant = value;
    } else if (key == "dataset") {
      request.dataset = value;
    } else if (key == "algorithm") {
      if (!ParseMiningAlgorithm(value, &request.algorithm))
        return Status::Error("unknown algorithm '" + value + "'");
    } else if (key == "ranks") {
      request.num_ranks = std::atoi(value.c_str());
    } else if (key == "minsup") {
      request.config.apriori.minsup_fraction =
          std::atof(value.c_str()) / 100.0;
    } else if (key == "threads") {
      request.config.apriori.threads_per_rank = std::atoi(value.c_str());
    } else if (key == "max-k") {
      request.config.apriori.max_k = std::atoi(value.c_str());
    } else if (key == "rules") {
      request.generate_rules = value == "true";
    } else if (key == "minconf") {
      request.min_confidence = std::atof(value.c_str()) / 100.0;
    } else if (key == "deadline-ms") {
      request.deadline_ms = std::atof(value.c_str());
    } else {
      return Status::Error("unknown key '" + key + "'");
    }
  }
  return command;
}

std::string FormatResponseLine(const std::string& id,
                               const std::string& tenant,
                               const std::string& dataset,
                               ServeStatus status, const std::string& error,
                               std::size_t itemsets, std::size_t rules,
                               double queue_ms, double service_ms,
                               bool from_result_cache) {
  char buffer[512];
  if (status == ServeStatus::kOk) {
    std::snprintf(buffer, sizeof buffer,
                  "response id=%s tenant=%s dataset=%s status=ok "
                  "itemsets=%zu rules=%zu cached=%d queue_ms=%.2f "
                  "service_ms=%.2f",
                  id.c_str(), tenant.c_str(), dataset.c_str(), itemsets,
                  rules, from_result_cache ? 1 : 0, queue_ms, service_ms);
  } else {
    std::snprintf(buffer, sizeof buffer,
                  "response id=%s tenant=%s dataset=%s status=%s "
                  "error=\"%s\"",
                  id.c_str(), tenant.c_str(), dataset.c_str(),
                  ServeStatusName(status), error.c_str());
  }
  return buffer;
}

std::string FormatStatsSummary(const ServerStats& stats) {
  char buffer[1024];
  std::string out;
  std::snprintf(
      buffer, sizeof buffer,
      "served %llu/%llu requests (%llu ok, %llu faulted, %llu cancelled, "
      "%llu deadline_exceeded [%llu expired_in_queue], %llu rejected: "
      "%llu queue_full, %llu quota, %llu budget, %llu unknown_dataset, "
      "%llu invalid, %llu shutdown)\n",
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.mining_faults),
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.deadline_exceeded),
      static_cast<unsigned long long>(stats.expired_in_queue),
      static_cast<unsigned long long>(stats.TotalRejected()),
      static_cast<unsigned long long>(stats.rejected_queue_full),
      static_cast<unsigned long long>(stats.rejected_tenant_in_flight),
      static_cast<unsigned long long>(stats.rejected_tenant_budget),
      static_cast<unsigned long long>(stats.rejected_unknown_dataset),
      static_cast<unsigned long long>(stats.rejected_invalid),
      static_cast<unsigned long long>(stats.rejected_shutdown));
  out += buffer;
  std::snprintf(
      buffer, sizeof buffer,
      "datasets: %llu hits, %llu misses, %llu evictions, %zu resident "
      "bytes; results: %llu hits, %llu misses, %llu evictions, %zu "
      "resident bytes; peak queue %zu; %llu watchdog fires; %.3f "
      "rank-seconds charged\n",
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      static_cast<unsigned long long>(stats.cache_evictions),
      stats.cache_resident_bytes,
      static_cast<unsigned long long>(stats.result_hits),
      static_cast<unsigned long long>(stats.result_misses),
      static_cast<unsigned long long>(stats.result_evictions),
      stats.result_resident_bytes, stats.peak_queue_depth,
      static_cast<unsigned long long>(stats.watchdog_fired),
      stats.rank_seconds_charged);
  out += buffer;
  return out;
}

}  // namespace pam::serve
