#ifndef PAM_SERVE_DATASET_CACHE_H_
#define PAM_SERVE_DATASET_CACHE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pam/mp/payload.h"
#include "pam/tdb/database.h"
#include "pam/util/status.h"

namespace pam::serve {

/// One resident dataset: the decoded CSR database every request mines
/// over, plus its wire image as immutable refcounted Payload pages (the
/// same page format DD/IDD circulate). Both are built exactly once per
/// load; every concurrent request over the dataset shares the one copy
/// through the handle's refcount — a cache hit moves zero bytes, which
/// the serve suite pins with a BufferPool::CopyCount guard.
struct CachedDataset {
  std::string id;
  std::shared_ptr<const TransactionDatabase> db;
  /// The dataset serialized into wire pages, each wrapped in a shared
  /// Payload handle (one Payload::Copy per page, at load time only).
  /// Ready to feed the transport — e.g. a single-source IDD run ships
  /// these without re-paginating — and the unit of cross-request sharing.
  std::vector<Payload> pages;
  /// Total wire bytes across `pages`.
  std::size_t wire_bytes = 0;

  std::size_t num_transactions() const { return db == nullptr ? 0 : db->size(); }
};

/// Shared handle to a cached dataset. Requests hold one for the duration
/// of their run, so eviction/replacement can never pull a database out
/// from under an in-flight miner — eviction only drops the cache's own
/// reference; the pages die when the last in-flight handle does.
using DatasetHandle = std::shared_ptr<const CachedDataset>;

/// Keyed, lazily-loading dataset cache of the mining server. Datasets are
/// registered up front (by id) with either a loader or an already-decoded
/// database; the first Get() materializes the entry — loader, CSR decode,
/// wire paging — and every later Get() of the same id is a refcount bump.
///
/// Keying is by caller-chosen id, not by content: two ids backed by the
/// same file are two entries (the server's datasets are a small static
/// catalog, so identity-by-name is the honest contract; see DESIGN.md
/// §12 "cache keying").
///
/// Graceful degradation (DESIGN.md §13): with a nonzero `budget_bytes`
/// the cache never keeps more than that many resident wire bytes. Before
/// caching a fresh load it evicts least-recently-used unpinned entries
/// (pinned = some request still holds the handle; use_count > 1) until
/// the newcomer fits; if it cannot fit — the dataset alone exceeds the
/// budget, or everything resident is pinned — the load is handed through
/// *uncached*, so requests still succeed, just without sharing. A nonzero
/// `ttl_ms` additionally drops unpinned entries idle longer than the TTL
/// (swept opportunistically on Get). ResidentBytes() therefore never
/// exceeds budget_bytes when one is set.
///
/// Thread-safe. Concurrent first Gets of one id serialize on the entry,
/// not the whole cache, so loading a cold dataset never blocks hits on a
/// hot one.
class DatasetCache {
 public:
  using Loader = std::function<Result<TransactionDatabase>()>;

  /// `page_bytes` sizes the wire pages of every cached dataset's image.
  /// `budget_bytes` caps resident wire bytes (0 = unlimited); `ttl_ms`
  /// drops entries idle longer than this (0 = never).
  explicit DatasetCache(std::size_t page_bytes = 64 * 1024,
                        std::size_t budget_bytes = 0, double ttl_ms = 0)
      : page_bytes_(page_bytes),
        budget_bytes_(budget_bytes),
        ttl_ms_(ttl_ms) {}

  /// Registers dataset `id`, loaded lazily by `loader` on first Get.
  /// Re-registering an id replaces its loader and drops any loaded entry
  /// (outstanding handles stay valid — they own the old copy).
  void Register(const std::string& id, Loader loader);

  /// Registers an already-decoded database under `id`.
  void RegisterLoaded(const std::string& id, TransactionDatabase db);

  /// True if `id` has been registered (loaded or not).
  bool Contains(const std::string& id) const;

  /// The cached dataset, loading it on first use. Fails for an
  /// unregistered id, or with the loader's error (the failure is not
  /// cached: a later Get retries the loader).
  Result<DatasetHandle> Get(const std::string& id);

  /// Gets satisfied by an already-loaded entry / requiring a load.
  std::uint64_t Hits() const;
  std::uint64_t Misses() const;
  /// Entries dropped from residency by the budget or the TTL.
  std::uint64_t Evictions() const;
  /// Total wire bytes resident across loaded entries; <= budget_bytes
  /// whenever a budget is set.
  std::size_t ResidentBytes() const;
  std::size_t BudgetBytes() const { return budget_bytes_; }

 private:
  struct Entry {
    /// Serializes the expensive load of this entry only; never held while
    /// touching cache-wide state. `loaded` and `last_use` live under the
    /// cache-wide mu_ (they are cheap shared_ptr / time_point ops), which
    /// is what lets eviction scan entries without taking every load_mu.
    std::mutex load_mu;
    Loader loader;
    DatasetHandle loaded;
    std::chrono::steady_clock::time_point last_use{};
  };

  /// Drops `entry`'s resident dataset (caller holds mu_).
  void EvictLocked(const std::string& id, Entry& entry, const char* why);
  /// Applies the TTL to every unpinned resident entry (caller holds mu_).
  void SweepTtlLocked(std::chrono::steady_clock::time_point now);
  /// Evicts LRU unpinned entries until `needed` more bytes fit the
  /// budget; returns false when they cannot (caller holds mu_).
  bool MakeRoomLocked(std::size_t needed);

  const std::size_t page_bytes_;
  const std::size_t budget_bytes_;
  const double ttl_ms_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  std::size_t resident_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace pam::serve

#endif  // PAM_SERVE_DATASET_CACHE_H_
