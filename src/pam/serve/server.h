#ifndef PAM_SERVE_SERVER_H_
#define PAM_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pam/api/session.h"
#include "pam/mp/rank_pool.h"
#include "pam/serve/dataset_cache.h"

namespace pam::serve {

/// Outcome of one served request. Rejections are decided synchronously at
/// Submit (admission control); kMiningFault is the one post-admission
/// failure — the run threw CommError under transport fault injection, so
/// the request terminated with a typed error instead of silently wrong
/// counts (the library's exactness contract, DESIGN.md §8).
enum class ServeStatus {
  kOk,
  /// Admission rejections (the request never ran):
  kQueueFull,              // bounded request queue at capacity
  kTenantInFlightExceeded, // tenant at its max concurrent admitted requests
  kTenantBudgetExhausted,  // tenant spent its rank-seconds budget
  kUnknownDataset,         // dataset id not registered with the cache
  kInvalidRequest,         // malformed (e.g. ranks outside the pool)
  kShuttingDown,           // server no longer accepting
  /// Post-admission typed failure:
  kMiningFault,            // run died with CommError (fault injection)
};

/// Stable lowercase name ("ok", "queue_full", ...).
const char* ServeStatusName(ServeStatus status);

/// True for the admission-control statuses (request was never executed).
bool IsRejection(ServeStatus status);

/// Per-tenant admission limits. Zero means unlimited.
struct TenantQuota {
  /// Max requests a tenant may have admitted-but-unfinished at once.
  int max_in_flight = 0;
  /// Rank-seconds budget: every completed request is charged
  /// leased_ranks x service_wall_seconds; once a tenant's cumulative
  /// charge reaches this, further submits are rejected.
  double rank_seconds = 0.0;
};

/// Server shape: how much machine it serves and how much it will queue.
struct ServerConfig {
  /// Logical mining ranks the server time-shares across requests (the
  /// RankPool capacity). A request leases its num_ranks out of this.
  int pool_ranks = 8;
  /// Worker threads executing admitted requests (each runs one request at
  /// a time; more workers than pool ranks just park in the lease FIFO).
  int workers = 4;
  /// Bounded admission queue: submits beyond this are rejected kQueueFull.
  std::size_t max_queue = 64;
  /// Quota applied to tenants without an explicit entry below.
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Wire page size of the dataset cache's payload image.
  std::size_t cache_page_bytes = 64 * 1024;
};

/// Everything the server says about one request.
struct ServeResponse {
  ServeStatus status = ServeStatus::kOk;
  /// Human-readable detail for any non-kOk status.
  std::string error;
  /// The mining result (kOk only).
  MiningReport report;
  /// The cached dataset served (kOk and kMiningFault; lets callers verify
  /// cross-request sharing — same dataset id means the same handle and the
  /// same underlying Payload pages).
  DatasetHandle dataset;
  /// Seconds spent queued before a worker picked the request up.
  double queue_seconds = 0.0;
  /// Seconds from dequeue to completion (rank-lease wait + mining run).
  double service_seconds = 0.0;

  bool ok() const { return status == ServeStatus::kOk; }
  bool rejected() const { return IsRejection(status); }
};

/// Monotonic server counters (snapshot).
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;      // kOk responses
  std::uint64_t mining_faults = 0;  // kMiningFault responses
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_tenant_in_flight = 0;
  std::uint64_t rejected_tenant_budget = 0;
  std::uint64_t rejected_unknown_dataset = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t queue_depth = 0;       // current
  std::size_t peak_queue_depth = 0;
  int leased_ranks = 0;              // current (pool capacity - available)
  double rank_seconds_charged = 0.0;

  std::uint64_t TotalRejected() const {
    return rejected_queue_full + rejected_tenant_in_flight +
           rejected_tenant_budget + rejected_unknown_dataset +
           rejected_invalid + rejected_shutdown;
  }
};

/// A tenant's live accounting.
struct TenantUsage {
  int in_flight = 0;
  std::uint64_t admitted = 0;
  double rank_seconds = 0.0;
};

/// Mining-as-a-service over the MiningSession facade: a long-lived,
/// multi-tenant server that accepts concurrent MiningRequests and
/// schedules them over one shared rank pool.
///
///   pam::serve::ServerConfig cfg;        // 8 ranks, 4 workers
///   pam::serve::MiningServer server(cfg);
///   server.datasets().Register("retail", [] { return pam::ReadBinary(...); });
///   pam::MiningRequest req;
///   req.tenant = "acme"; req.dataset = "retail";
///   req.algorithm = pam::MiningAlgorithm::kHD; req.num_ranks = 4;
///   pam::serve::ServeResponse r = server.Submit(std::move(req)).get();
///
/// Admission control happens synchronously in Submit: a request is either
/// admitted (future resolves when it finishes) or rejected with a typed
/// ServeStatus (future is already resolved). Admitted requests wait in a
/// bounded FIFO queue for a worker, lease their ranks from the shared
/// RankPool (FIFO, so wide requests are never starved), run through a
/// per-request MiningSession over the cached dataset, and are charged to
/// their tenant's rank-seconds budget.
///
/// Results are byte-identical to a solo MiningSession::Run of the same
/// request over the same database — the server adds scheduling, never
/// arithmetic. Requests carrying a FaultConfig run under fault injection
/// exactly like MineParallel: recoverable faults are repaired, and an
/// unrecoverable one yields a typed kMiningFault response (the worker and
/// its rank lease always survive and are returned).
///
/// Thread-safe: Submit may be called from any number of client threads.
class MiningServer {
 public:
  explicit MiningServer(const ServerConfig& config);
  ~MiningServer();
  MiningServer(const MiningServer&) = delete;
  MiningServer& operator=(const MiningServer&) = delete;

  /// The dataset catalog; register datasets before (or while) serving.
  DatasetCache& datasets() { return cache_; }

  /// Trace sinks observe one kServeRequest span per executed request
  /// (track = worker id, timestamps from server construction). Attach
  /// before the first Submit; sinks must outlive the server.
  void AddTraceSink(obs::TraceSink* sink);

  /// Submits a request. The returned future always resolves: immediately
  /// for rejections, at completion otherwise.
  std::future<ServeResponse> Submit(MiningRequest request);

  /// Blocking convenience: Submit + wait.
  ServeResponse Execute(MiningRequest request);

  ServerStats Stats() const;
  TenantUsage UsageFor(const std::string& tenant) const;
  const RankPool& pool() const { return pool_; }

  /// Stops admission (further submits are rejected kShuttingDown), drains
  /// the queue and all in-flight requests, and joins the workers. Every
  /// rank lease is back in the pool when this returns. Idempotent; the
  /// destructor calls it.
  void Shutdown();

 private:
  struct Job {
    MiningRequest request;
    std::promise<ServeResponse> promise;
    std::chrono::steady_clock::time_point enqueued_at;
    std::uint64_t sequence = 0;
  };

  void WorkerMain(int worker_id);
  ServeResponse Process(Job& job, int worker_id);
  const TenantQuota& QuotaFor(const std::string& tenant) const;
  std::future<ServeResponse> Reject(ServeStatus status, std::string error);

  const ServerConfig config_;
  RankPool pool_;
  DatasetCache cache_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  std::map<std::string, TenantUsage> tenants_;
  ServerStats stats_;
  std::uint64_t next_sequence_ = 0;
  bool accepting_ = true;
  bool stopping_ = false;

  obs::SessionObs serve_obs_;
  std::vector<std::thread> workers_;
};

}  // namespace pam::serve

#endif  // PAM_SERVE_SERVER_H_
