#ifndef PAM_SERVE_SERVER_H_
#define PAM_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pam/api/session.h"
#include "pam/mp/rank_pool.h"
#include "pam/serve/dataset_cache.h"
#include "pam/serve/result_cache.h"

namespace pam::serve {

/// Outcome of one served request. Rejections are decided synchronously at
/// Submit (admission control); everything after admission terminates with
/// one of the typed post-admission statuses — never an exception, never
/// silently wrong counts (the library's exactness contract, DESIGN.md §8).
enum class ServeStatus {
  kOk,
  /// Admission rejections (the request never ran):
  kQueueFull,              // bounded request queue at capacity
  kTenantInFlightExceeded, // tenant at its max concurrent admitted requests
  kTenantBudgetExhausted,  // tenant spent its rank-seconds budget
  kUnknownDataset,         // dataset id not registered with the cache
  kInvalidRequest,         // malformed (e.g. ranks outside the pool)
  kShuttingDown,           // server no longer accepting
  /// Post-admission typed failures (DESIGN.md §13):
  kMiningFault,            // run died with CommError (fault injection),
                           // a watchdog abort, or a dataset load failure
  kDeadlineExceeded,       // the request's deadline fired (queued or
                           // mid-run); partial work was discarded
  kCancelled,              // the caller's CancelToken fired, or shutdown
                           // overtook the request after admission
};

/// Stable lowercase name ("ok", "queue_full", ...).
const char* ServeStatusName(ServeStatus status);

/// True for the admission-control statuses (request was never executed).
bool IsRejection(ServeStatus status);

/// Per-tenant admission limits. Zero means unlimited.
struct TenantQuota {
  /// Max requests a tenant may have admitted-but-unfinished at once.
  int max_in_flight = 0;
  /// Rank-seconds budget: every completed request is charged
  /// leased_ranks x service_wall_seconds; once a tenant's cumulative
  /// charge reaches this, further submits are rejected.
  double rank_seconds = 0.0;
  /// Fair-queueing weight (DESIGN.md §15): under contention a tenant
  /// receives service in proportion to its weight — a weight-3 tenant is
  /// dispatched ~3x as often as a weight-1 tenant submitting equal-cost
  /// requests. Values <= 0 are treated as 1.
  double weight = 1.0;
};

/// Server shape: how much machine it serves and how much it will queue.
struct ServerConfig {
  /// Logical mining ranks the server time-shares across requests (the
  /// RankPool capacity). A request leases its num_ranks out of this.
  int pool_ranks = 8;
  /// Worker threads executing admitted requests (each runs one request at
  /// a time; more workers than pool ranks just park in the lease FIFO).
  int workers = 4;
  /// Bounded admission queue: submits beyond this are rejected kQueueFull.
  std::size_t max_queue = 64;
  /// Quota applied to tenants without an explicit entry below.
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Wire page size of the dataset cache's payload image.
  std::size_t cache_page_bytes = 64 * 1024;
  /// Deadline applied to requests that carry none, in milliseconds
  /// (0 = none). Armed at admission, so queue time counts against it.
  double default_deadline_ms = 0;
  /// Resident-bytes budget of the dataset cache (0 = unlimited): over
  /// budget, LRU unpinned datasets are evicted, and a dataset that cannot
  /// fit is served load-through uncached (graceful degradation).
  std::size_t cache_budget_bytes = 0;
  /// Idle TTL of cached datasets in milliseconds (0 = never expires).
  double cache_ttl_ms = 0;
  /// Per-request progress watchdog (0 = disabled): a monitor thread
  /// cancels (reason kWatchdog) any executing request whose token has not
  /// seen a progress heartbeat for this long, converting a stalled world
  /// into a typed kMiningFault response instead of a hung rank lease.
  double watchdog_ms = 0;
  /// Serve finished MiningReports from the result cache (DESIGN.md §15):
  /// a request whose (dataset, CanonicalDigest) matches a cached report
  /// is answered without touching the dataset or leasing a rank. Off by
  /// default — hits do not re-mine, so responses stop carrying a fresh
  /// dataset handle and per-run metrics, which callers must opt into.
  bool result_cache = false;
  /// Resident-bytes budget of the result cache (0 = unlimited).
  std::size_t result_cache_budget_bytes = 0;
  /// Idle TTL of cached results in milliseconds (0 = never expires).
  double result_cache_ttl_ms = 0;
};

/// Everything the server says about one request.
struct ServeResponse {
  ServeStatus status = ServeStatus::kOk;
  /// Human-readable detail for any non-kOk status.
  std::string error;
  /// The mining result (kOk only).
  MiningReport report;
  /// The cached dataset served (kOk and kMiningFault; lets callers verify
  /// cross-request sharing — same dataset id means the same handle and the
  /// same underlying Payload pages).
  DatasetHandle dataset;
  /// Seconds spent queued before a worker picked the request up.
  double queue_seconds = 0.0;
  /// Seconds from dequeue to completion (rank-lease wait + mining run).
  double service_seconds = 0.0;
  /// True when the report was served from the result cache: no dataset
  /// touch, no rank lease, no fresh metrics — the report is the cached
  /// run's, byte-identical in frequent itemsets and rules.
  bool from_result_cache = false;

  bool ok() const { return status == ServeStatus::kOk; }
  bool rejected() const { return IsRejection(status); }
};

/// Monotonic server counters (snapshot). Once the server has drained,
/// `submitted == admitted + TotalRejected()` and every admitted request
/// is accounted exactly once:
/// `admitted == completed + mining_faults + cancelled + deadline_exceeded`.
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;      // kOk responses
  std::uint64_t mining_faults = 0;  // kMiningFault responses
  std::uint64_t cancelled = 0;          // kCancelled responses
  std::uint64_t deadline_exceeded = 0;  // kDeadlineExceeded responses
  /// Of deadline_exceeded: shed at dequeue, before leasing any rank.
  std::uint64_t expired_in_queue = 0;
  /// Times the watchdog cancelled a stalled request's token.
  std::uint64_t watchdog_fired = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_tenant_in_flight = 0;
  std::uint64_t rejected_tenant_budget = 0;
  std::uint64_t rejected_unknown_dataset = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  /// Result-cache activity (all zero unless ServerConfig::result_cache).
  /// A hit is still a completed request — `completed` counts it — it just
  /// consumed no rank lease, which `pool().LeasesGranted()` can pin down.
  std::uint64_t result_hits = 0;
  std::uint64_t result_misses = 0;
  std::uint64_t result_evictions = 0;
  std::size_t cache_resident_bytes = 0;   // dataset cache residency
  std::size_t result_resident_bytes = 0;  // result cache residency
  std::size_t queue_depth = 0;       // current
  std::size_t peak_queue_depth = 0;
  int leased_ranks = 0;              // current (pool capacity - available)
  double rank_seconds_charged = 0.0;

  std::uint64_t TotalRejected() const {
    return rejected_queue_full + rejected_tenant_in_flight +
           rejected_tenant_budget + rejected_unknown_dataset +
           rejected_invalid + rejected_shutdown;
  }
};

/// A tenant's live accounting. Once the server has drained, summing
/// `rank_seconds` over all tenants reproduces
/// ServerStats::rank_seconds_charged exactly, and summing `dispatched`
/// reproduces `admitted` — the per-tenant service-share invariant the
/// serve suite asserts.
struct TenantUsage {
  int in_flight = 0;
  std::uint64_t admitted = 0;
  /// Jobs a worker has picked up and settled for this tenant.
  std::uint64_t dispatched = 0;
  double rank_seconds = 0.0;
};

/// Mining-as-a-service over the MiningSession facade: a long-lived,
/// multi-tenant server that accepts concurrent MiningRequests and
/// schedules them over one shared rank pool.
///
///   pam::serve::ServerConfig cfg;        // 8 ranks, 4 workers
///   pam::serve::MiningServer server(cfg);
///   server.datasets().Register("retail", [] { return pam::ReadBinary(...); });
///   pam::MiningRequest req;
///   req.tenant = "acme"; req.dataset = "retail";
///   req.algorithm = pam::MiningAlgorithm::kHD; req.num_ranks = 4;
///   pam::serve::ServeResponse r = server.Submit(std::move(req)).get();
///
/// Admission control happens synchronously in Submit: a request is either
/// admitted (future resolves when it finishes) or rejected with a typed
/// ServeStatus (future is already resolved). Admitted requests wait in a
/// bounded queue scheduled by start-time weighted fair queueing over the
/// tenants (DESIGN.md §15): each tenant owns a FIFO of its jobs tagged
/// with virtual start/finish times, workers always dispatch the eligible
/// job with the smallest virtual start, and a tenant's virtual clock
/// advances by cost/weight per job — so under saturation tenants receive
/// service shares proportional to their TenantQuota::weight, while any
/// backlogged tenant is dispatched within a bounded number of rounds
/// (never starved). Dispatched jobs lease their ranks from the shared
/// RankPool (FIFO, so wide requests are never starved), run through a
/// per-request MiningSession over the cached dataset, and are charged to
/// their tenant's rank-seconds budget.
///
/// Results are byte-identical to a solo MiningSession::Run of the same
/// request over the same database — the server adds scheduling, never
/// arithmetic. Requests carrying a FaultConfig run under fault injection
/// exactly like MineParallel: recoverable faults are repaired, and an
/// unrecoverable one yields a typed kMiningFault response (the worker and
/// its rank lease always survive and are returned).
///
/// Deadlines and cancellation (DESIGN.md §13): a request's deadline_ms
/// (or the server default) is armed on its CancelToken at admission, so
/// queue time counts; a request whose token fires while queued is shed at
/// dequeue without leasing ranks, and one that fires mid-run unwinds
/// cooperatively at the next check point. Either way the response is
/// typed (kDeadlineExceeded / kCancelled), the lease is returned, and the
/// tenant is charged for the machine time actually used. A configured
/// watchdog additionally cancels any executing request whose heartbeat
/// stops (kWatchdog -> kMiningFault).
///
/// Thread-safe: Submit may be called from any number of client threads.
class MiningServer {
 public:
  explicit MiningServer(const ServerConfig& config);
  ~MiningServer();
  MiningServer(const MiningServer&) = delete;
  MiningServer& operator=(const MiningServer&) = delete;

  /// The dataset catalog; register datasets before (or while) serving.
  DatasetCache& datasets() { return cache_; }

  /// Trace sinks observe one kServeRequest span per executed request
  /// (track = worker id, timestamps from server construction). Attach
  /// before the first Submit; sinks must outlive the server.
  void AddTraceSink(obs::TraceSink* sink);

  /// Submits a request. The returned future always resolves: immediately
  /// for rejections, at completion otherwise.
  std::future<ServeResponse> Submit(MiningRequest request);

  /// Callback form of Submit, for transport front-ends (pam/serve/
  /// net_server.h) that push responses into a connection rather than
  /// joining futures. `done` is invoked exactly once, from the submitting
  /// thread for rejections (after admission bookkeeping, never under the
  /// server lock) or from a worker thread otherwise; it must not block
  /// for long and may call back into the server.
  void SubmitWith(MiningRequest request,
                  std::function<void(ServeResponse)> done);

  /// Blocking convenience: Submit + wait.
  ServeResponse Execute(MiningRequest request);

  ServerStats Stats() const;
  TenantUsage UsageFor(const std::string& tenant) const;
  const RankPool& pool() const { return pool_; }

  /// Stops admission (further submits are rejected kShuttingDown), drains
  /// the queue and all in-flight requests, and joins the workers. Every
  /// rank lease is back in the pool when this returns. Idempotent; the
  /// destructor calls it.
  void Shutdown();

  /// The result cache (empty and idle unless config.result_cache).
  const ResultCache& results() const { return results_; }

 private:
  struct Job {
    MiningRequest request;
    std::function<void(ServeResponse)> done;
    std::chrono::steady_clock::time_point enqueued_at;
    std::uint64_t sequence = 0;
    /// SFQ virtual start time of this job (DESIGN.md §15).
    double vstart = 0.0;
  };

  /// One tenant's backlog plus its virtual clock. `last_vfinish` persists
  /// while the tenant is idle, so a tenant cannot bank credit by pausing:
  /// re-arrival starts at max(virtual_time_, last_vfinish).
  struct TenantQueue {
    std::deque<Job> jobs;
    double last_vfinish = 0.0;
  };

  void WorkerMain(int worker_id);
  void WatchdogMain();
  ServeResponse Process(Job& job, int worker_id);
  const TenantQuota& QuotaFor(const std::string& tenant) const;
  /// Admission + WFQ enqueue under mu_. On rejection, fills `rejection`
  /// and leaves `done` untouched (the caller invokes it lock-free).
  bool AdmitLocked(MiningRequest& request,
                   std::function<void(ServeResponse)>& done,
                   ServeResponse* rejection);
  /// Dequeues the job with the smallest vstart (caller holds mu_;
  /// queued_ must be > 0). Advances virtual_time_.
  Job PopJobLocked();

  const ServerConfig config_;
  RankPool pool_;
  DatasetCache cache_;
  ResultCache results_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable watchdog_cv_;
  std::map<std::string, TenantQueue> queues_;
  std::size_t queued_ = 0;
  /// Global SFQ virtual time: the vstart of the last dispatched job.
  double virtual_time_ = 0.0;
  std::map<std::string, TenantUsage> tenants_;
  /// Tokens of requests currently executing a mining run, keyed by job
  /// sequence — the watchdog's scan set.
  std::map<std::uint64_t, CancelToken> inflight_;
  ServerStats stats_;
  std::uint64_t next_sequence_ = 0;
  bool accepting_ = true;
  bool stopping_ = false;
  /// Set only after the workers drained, so the watchdog can still abort
  /// a request that stalls while shutdown is draining the queue.
  bool watchdog_stop_ = false;

  obs::SessionObs serve_obs_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace pam::serve

#endif  // PAM_SERVE_SERVER_H_
