#include "pam/serve/dataset_cache.h"

#include <span>
#include <utility>

#include "pam/obs/trace.h"
#include "pam/tdb/page_buffer.h"

namespace pam::serve {

namespace {

void EmitCacheInstant(const char* detail) {
  obs::RankTracer* tracer = obs::CurrentTracer();
  if (tracer != nullptr) tracer->EmitInstant(obs::SpanKind::kCacheEvict, detail);
}

}  // namespace

void DatasetCache::Register(const std::string& id, Loader loader) {
  auto entry = std::make_shared<Entry>();
  entry->loader = std::move(loader);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it != entries_.end() && it->second->loaded != nullptr) {
    // Replacement drops the old resident copy (handles keep it alive).
    resident_bytes_ -= it->second->loaded->wire_bytes;
  }
  entries_[id] = std::move(entry);
}

void DatasetCache::RegisterLoaded(const std::string& id,
                                  TransactionDatabase db) {
  auto shared = std::make_shared<TransactionDatabase>(std::move(db));
  Register(id, [shared]() -> Result<TransactionDatabase> {
    // The loader hands out a copy; the cache decodes it once and the copy
    // is what all requests share thereafter.
    return Result<TransactionDatabase>(TransactionDatabase(*shared));
  });
}

bool DatasetCache::Contains(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(id) > 0;
}

void DatasetCache::EvictLocked(const std::string& id, Entry& entry,
                               const char* why) {
  (void)id;
  resident_bytes_ -= entry.loaded->wire_bytes;
  entry.loaded.reset();
  ++evictions_;
  EmitCacheInstant(why);
}

void DatasetCache::SweepTtlLocked(
    std::chrono::steady_clock::time_point now) {
  if (ttl_ms_ <= 0) return;
  for (auto& [id, entry] : entries_) {
    if (entry->loaded == nullptr) continue;
    if (entry->loaded.use_count() > 1) continue;  // pinned by a request
    const double idle_ms =
        std::chrono::duration<double, std::milli>(now - entry->last_use)
            .count();
    if (idle_ms > ttl_ms_) EvictLocked(id, *entry, "ttl");
  }
}

bool DatasetCache::MakeRoomLocked(std::size_t needed) {
  if (budget_bytes_ == 0) return true;
  if (needed > budget_bytes_) return false;  // alone over budget
  while (resident_bytes_ + needed > budget_bytes_) {
    // LRU victim: the unpinned resident entry idle the longest.
    Entry* victim = nullptr;
    const std::string* victim_id = nullptr;
    for (auto& [id, entry] : entries_) {
      if (entry->loaded == nullptr) continue;
      if (entry->loaded.use_count() > 1) continue;  // pinned
      if (victim == nullptr || entry->last_use < victim->last_use) {
        victim = entry.get();
        victim_id = &id;
      }
    }
    if (victim == nullptr) return false;  // everything resident is pinned
    EvictLocked(*victim_id, *victim, "budget");
  }
  return true;
}

Result<DatasetHandle> DatasetCache::Get(const std::string& id) {
  const auto now = std::chrono::steady_clock::now();
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SweepTtlLocked(now);
    auto it = entries_.find(id);
    if (it == entries_.end()) {
      return Result<DatasetHandle>(
          Status::Error("unknown dataset '" + id + "'"));
    }
    entry = it->second;
    if (entry->loaded != nullptr) {
      ++hits_;
      entry->last_use = now;
      return Result<DatasetHandle>(DatasetHandle(entry->loaded));
    }
  }

  // Cold: serialize the load on this entry only, then re-check — another
  // worker may have finished the same load while we waited for load_mu.
  std::lock_guard<std::mutex> load_lock(entry->load_mu);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entry->loaded != nullptr) {
      ++hits_;
      entry->last_use = now;
      return Result<DatasetHandle>(DatasetHandle(entry->loaded));
    }
  }

  Result<TransactionDatabase> loaded = entry->loader();
  if (!loaded.ok()) return Result<DatasetHandle>(loaded.status());

  auto dataset = std::make_shared<CachedDataset>();
  dataset->id = id;
  auto db = std::make_shared<TransactionDatabase>(std::move(loaded.value()));
  dataset->db = db;
  const TransactionDatabase::Slice whole{0, db->size()};
  for (Page& page : Paginate(*db, whole, page_bytes_)) {
    dataset->wire_bytes += PageBytes(page);
    dataset->pages.push_back(Payload::Copy(std::as_bytes(
        std::span<const std::uint32_t>(page.data(), page.size()))));
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  auto it = entries_.find(id);
  const bool current = it != entries_.end() && it->second == entry;
  if (current && MakeRoomLocked(dataset->wire_bytes)) {
    entry->loaded = dataset;
    entry->last_use = now;
    resident_bytes_ += dataset->wire_bytes;
  } else {
    // Load-through: the request gets its dataset, the cache keeps no
    // reference, and the budget is never exceeded. The bytes die with the
    // last handle.
    EmitCacheInstant("uncacheable");
  }
  return Result<DatasetHandle>(DatasetHandle(std::move(dataset)));
}

std::uint64_t DatasetCache::Hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t DatasetCache::Misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t DatasetCache::Evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

std::size_t DatasetCache::ResidentBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

}  // namespace pam::serve
