#include "pam/serve/dataset_cache.h"

#include <span>
#include <utility>

#include "pam/tdb/page_buffer.h"

namespace pam::serve {

void DatasetCache::Register(const std::string& id, Loader loader) {
  auto entry = std::make_shared<Entry>();
  entry->loader = std::move(loader);
  std::lock_guard<std::mutex> lock(mu_);
  entries_[id] = std::move(entry);
}

void DatasetCache::RegisterLoaded(const std::string& id,
                                  TransactionDatabase db) {
  auto shared = std::make_shared<TransactionDatabase>(std::move(db));
  Register(id, [shared]() -> Result<TransactionDatabase> {
    // The loader hands out a copy; the cache decodes it once and the copy
    // is what all requests share thereafter.
    return Result<TransactionDatabase>(TransactionDatabase(*shared));
  });
}

bool DatasetCache::Contains(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(id) > 0;
}

Result<DatasetHandle> DatasetCache::Get(const std::string& id) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) {
      return Result<DatasetHandle>(
          Status::Error("unknown dataset '" + id + "'"));
    }
    entry = it->second;
  }

  std::lock_guard<std::mutex> entry_lock(entry->mu);
  if (entry->loaded != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    ++hits_;
    return Result<DatasetHandle>(DatasetHandle(entry->loaded));
  }

  Result<TransactionDatabase> loaded = entry->loader();
  if (!loaded.ok()) return Result<DatasetHandle>(loaded.status());

  auto dataset = std::make_shared<CachedDataset>();
  dataset->id = id;
  auto db = std::make_shared<TransactionDatabase>(std::move(loaded.value()));
  dataset->db = db;
  const TransactionDatabase::Slice whole{0, db->size()};
  for (Page& page : Paginate(*db, whole, page_bytes_)) {
    dataset->wire_bytes += PageBytes(page);
    dataset->pages.push_back(Payload::Copy(std::as_bytes(
        std::span<const std::uint32_t>(page.data(), page.size()))));
  }
  entry->loaded = std::move(dataset);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
  }
  return Result<DatasetHandle>(DatasetHandle(entry->loaded));
}

std::uint64_t DatasetCache::Hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t DatasetCache::Misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t DatasetCache::ResidentBytes() const {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& [id, entry] : entries_) entries.push_back(entry);
  }
  std::size_t total = 0;
  for (const auto& entry : entries) {
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    if (entry->loaded != nullptr) total += entry->loaded->wire_bytes;
  }
  return total;
}

}  // namespace pam::serve
