#include "pam/serve/result_cache.h"

#include <utility>

#include "pam/obs/trace.h"

namespace pam::serve {

namespace {

void EmitEvictInstant(const char* detail) {
  obs::RankTracer* tracer = obs::CurrentTracer();
  if (tracer != nullptr)
    tracer->EmitInstant(obs::SpanKind::kCacheEvict, detail);
}

}  // namespace

std::size_t ReportBytes(const MiningReport& report) {
  std::size_t bytes = sizeof(MiningReport);
  for (const ItemsetCollection& level : report.frequent.levels) {
    bytes += level.size() * (static_cast<std::size_t>(level.k()) *
                                 sizeof(Item) +
                             sizeof(Count));
  }
  for (const Rule& rule : report.rules) {
    bytes += sizeof(Rule) +
             (rule.antecedent.size() + rule.consequent.size()) * sizeof(Item);
  }
  for (const auto& pass : report.metrics.per_pass) {
    for (const PassMetrics& m : pass) {
      bytes += sizeof(PassMetrics) + m.shard_subset_work.size() * 8;
    }
  }
  bytes += report.timeline.spans.size() * sizeof(obs::SpanRecord);
  return bytes;
}

ResultHandle ResultCache::Get(const std::string& dataset,
                              std::uint64_t digest) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  SweepTtlLocked(now);
  auto it = entries_.find(Key(dataset, digest));
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  it->second.last_use = now;
  return it->second.result;
}

void ResultCache::Put(const std::string& dataset, std::uint64_t digest,
                      MiningReport report) {
  auto result = std::make_shared<CachedResult>();
  result->dataset = dataset;
  result->report = std::move(report);
  result->bytes = ReportBytes(result->report);

  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key(dataset, digest));
  if (it != entries_.end()) EvictLocked(it, "replaced");
  if (!MakeRoomLocked(result->bytes)) return;  // over budget: not cached
  Entry entry;
  entry.last_use = now;
  resident_bytes_ += result->bytes;
  entry.result = std::move(result);
  entries_[Key(dataset, digest)] = std::move(entry);
}

void ResultCache::Invalidate(const std::string& dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.first == dataset) {
      auto victim = it++;
      EvictLocked(victim, "invalidated");
    } else {
      ++it;
    }
  }
}

void ResultCache::EvictLocked(std::map<Key, Entry>::iterator it,
                              const char* why) {
  resident_bytes_ -= it->second.result->bytes;
  ++evictions_;
  EmitEvictInstant(why);
  entries_.erase(it);
}

void ResultCache::SweepTtlLocked(
    std::chrono::steady_clock::time_point now) {
  if (ttl_ms_ <= 0) return;
  for (auto it = entries_.begin(); it != entries_.end();) {
    auto next = std::next(it);
    if (it->second.result.use_count() == 1) {  // unpinned
      const double idle_ms = std::chrono::duration<double, std::milli>(
                                 now - it->second.last_use)
                                 .count();
      if (idle_ms > ttl_ms_) EvictLocked(it, "ttl");
    }
    it = next;
  }
}

bool ResultCache::MakeRoomLocked(std::size_t needed) {
  if (budget_bytes_ == 0) return true;
  if (needed > budget_bytes_) return false;  // alone over budget
  while (resident_bytes_ + needed > budget_bytes_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.result.use_count() > 1) continue;  // pinned
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return false;  // everything pinned
    EvictLocked(victim, "budget");
  }
  return true;
}

std::uint64_t ResultCache::Hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ResultCache::Misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t ResultCache::Evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

std::size_t ResultCache::ResidentBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

}  // namespace pam::serve
